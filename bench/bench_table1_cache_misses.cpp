// Table 1: cache misses incurred during batch inserts (paper: 100M elements
// added serially in batches of 1M, measured with `perf stat`).
//
// We measure with perf_event_open (L1D read misses + LLC misses). Inside
// containers the kernel often refuses perf events; in that case the bench
// reports "n/a" for the counters and falls back to printing the structures'
// resident bytes — the quantity whose reduction explains the paper's
// ordering (U-PaC > C-PaC ~ PMA > CPMA in misses).
#include <cstdio>
#include <vector>

#include "baselines/pactree.hpp"
#include "bench_common.hpp"
#include "pma/cpma.hpp"
#include "util/perf_counters.hpp"
#include "util/table.hpp"

namespace {

struct Result {
  cpma::util::PerfSample sample;
  uint64_t bytes;
  double seconds;
};

template <typename S>
Result run(const std::vector<uint64_t>& base,
           const std::vector<uint64_t>& inserts, uint64_t batch) {
  S s;
  std::vector<uint64_t> b = base;
  s.insert_batch(b.data(), b.size());
  cpma::util::PerfCounters pc;
  std::vector<uint64_t> scratch;
  cpma::util::Timer t;
  pc.start();
  for (uint64_t off = 0; off < inserts.size(); off += batch) {
    uint64_t len = std::min<uint64_t>(batch, inserts.size() - off);
    scratch.assign(inserts.begin() + off, inserts.begin() + off + len);
    s.insert_batch(scratch.data(), len);
  }
  Result r;
  r.sample = pc.stop();
  r.seconds = t.elapsed_seconds();
  r.bytes = s.get_size();
  return r;
}

void print_row(cpma::util::Table& table, const char* name, const Result& r) {
  table.cell_str(name);
  if (r.sample.valid) {
    table.cell_sci(static_cast<double>(r.sample.l1d_misses));
    table.cell_sci(static_cast<double>(r.sample.llc_misses));
  } else {
    table.cell_str("n/a");
    table.cell_str("n/a");
  }
  table.cell_sci(static_cast<double>(r.bytes));
  table.cell_fixed(r.seconds, 3);
  table.end_row();
}

}  // namespace

int main() {
  bench::print_config_line("Table 1: cache misses during batch inserts");
  auto base = bench::uniform_keys(bench::base_n(), 11);
  auto inserts = bench::uniform_keys(bench::insert_n(), 12);
  const uint64_t batch = std::max<uint64_t>(1, bench::insert_n() / 100);

  cpma::util::PerfCounters probe;
  if (!probe.available()) {
    std::printf("# perf_event_open unavailable: printing bytes fallback\n");
  }

  cpma::util::Table table(
      {"structure", "L1-misses", "LLC-misses", "bytes", "seconds"});
  table.print_header();
  print_row(table, "U-PaC",
            run<cpma::baselines::UPacTree>(base, inserts, batch));
  print_row(table, "C-PaC",
            run<cpma::baselines::CPacTree>(base, inserts, batch));
  print_row(table, "PMA", run<cpma::PMA>(base, inserts, batch));
  print_row(table, "CPMA", run<cpma::CPMA>(base, inserts, batch));
  return 0;
}
