// Ablation: F-Graph's vertex index (Section 6 discusses its rebuild cost,
// ~10% of BC time, and the alternative of searching per vertex).
//
// Three measurements on the same graph:
//   (1) vertex-index rebuild time alone (prepare()),
//   (2) PR via the index,
//   (3) PR via per-vertex binary search (map_neighbors_noindex).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "graph/algorithms.hpp"
#include "graph/fgraph.hpp"
#include "graph/generators.hpp"
#include "parallel/scheduler.hpp"
#include "util/table.hpp"

using namespace cpma::graph;

namespace {

// PR variant that bypasses the vertex index entirely.
std::vector<double> pagerank_noindex(const FGraph& g, int iterations = 10) {
  const vertex_t n = g.num_vertices();
  std::vector<double> rank(n, 1.0 / n), contrib(n), next(n), deg(n, 0);
  cpma::par::parallel_for(0, n, [&](uint64_t v) {
    uint64_t d = 0;
    g.map_neighbors_noindex(static_cast<vertex_t>(v),
                            [&](vertex_t) { ++d; });
    deg[v] = static_cast<double>(d);
  }, 16);
  for (int iter = 0; iter < iterations; ++iter) {
    cpma::par::parallel_for(0, n, [&](uint64_t v) {
      contrib[v] = deg[v] == 0 ? 0.0 : rank[v] / deg[v];
    });
    cpma::par::parallel_for(0, n, [&](uint64_t v) {
      double acc = 0;
      g.map_neighbors_noindex(static_cast<vertex_t>(v),
                              [&](vertex_t u) { acc += contrib[u]; });
      next[v] = 0.15 / n + 0.85 * acc;
    }, 16);
    std::swap(rank, next);
  }
  return rank;
}

}  // namespace

int main() {
  bench::print_config_line("Ablation: F-Graph vertex index");
  const uint32_t scale = static_cast<uint32_t>(
      cpma::util::env_u64("CPMA_BENCH_GRAPH_SCALE", 17));
  auto edges = symmetrize(rmat_edges(scale, cpma::util::scaled(2'000'000),
                                     131));
  FGraph g(1u << scale, edges);
  std::printf("# n=%u m=%zu\n", 1u << scale, edges.size());

  double prep = cpma::util::time_trials([&] { g.prepare(); },
                                        bench::trials(), 1);
  double pr_idx = cpma::util::time_trials([&] { pagerank(g); },
                                          bench::trials(), 1);
  double pr_noidx = cpma::util::time_trials([&] { pagerank_noindex(g); },
                                            bench::trials(), 1);

  cpma::util::Table table({"measurement", "seconds", "vs_indexed"});
  table.print_header();
  table.cell_str("index rebuild");
  table.cell_fixed(prep, 4);
  table.cell_ratio(prep / pr_idx);
  table.end_row();
  table.cell_str("PR (indexed)");
  table.cell_fixed(pr_idx, 4);
  table.cell_ratio(1.0);
  table.end_row();
  table.cell_str("PR (no index)");
  table.cell_fixed(pr_noidx, 4);
  table.cell_ratio(pr_noidx / pr_idx);
  table.end_row();
  return 0;
}
