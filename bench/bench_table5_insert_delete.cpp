// Table 5: parallel batch inserts AND deletes for the PMA and CPMA, under
// uniform (40-bit) and zipfian (34-bit, alpha=0.99) key distributions.
//
// Expected shape (paper): deletes 1.5-2x faster than inserts at large
// batches (no overflow buffers to allocate); zipfian inserts faster than
// uniform at large batches (shared search/redistribution work).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "pma/cpma.hpp"
#include "util/table.hpp"

namespace {

struct Row {
  double ins, del;
};

template <typename S>
Row run(const std::vector<uint64_t>& base, const std::vector<uint64_t>& ops,
        uint64_t batch) {
  S s;
  std::vector<uint64_t> b = base;
  s.insert_batch(b.data(), b.size());
  Row r;
  r.ins = bench::batch_insert_throughput(s, ops, batch);
  r.del = bench::batch_remove_throughput(s, ops, batch);
  return r;
}

}  // namespace

int main() {
  bench::print_config_line("Table 5: batch insert/delete, uniform & zipfian");
  auto base = bench::uniform_keys(bench::base_n(), 41);
  auto uni = bench::uniform_keys(bench::insert_n(), 42);
  auto zip = bench::zipf_keys(bench::insert_n(), 43);

  std::vector<uint64_t> batch_sizes{10, 100, 1000, 10000, 100000, 1000000};
  cpma::util::Table table({"dist", "batch", "PMA_ins", "PMA_del", "D/I",
                           "CPMA_ins", "CPMA_del", "D/I"},
                          12);
  table.print_header();
  for (int dist = 0; dist < 2; ++dist) {
    const auto& ops = dist == 0 ? uni : zip;
    for (uint64_t bs : batch_sizes) {
      Row pma = run<cpma::PMA>(base, ops, bs);
      Row cc = run<cpma::CPMA>(base, ops, bs);
      table.cell_str(dist == 0 ? "uniform" : "zipf");
      table.cell_u64(bs);
      table.cell_sci(pma.ins);
      table.cell_sci(pma.del);
      table.cell_ratio(pma.del / pma.ins);
      table.cell_sci(cc.ins);
      table.cell_sci(cc.del);
      table.cell_ratio(cc.del / cc.ins);
      table.end_row();
    }
  }
  return 0;
}
