// Figure 8 / Table 12: strong scaling of range queries in the PMA and CPMA.
//
// Paper protocol: 100,000 parallel queries of ~1.5M elements each over a
// 1e8-key structure. Scaled here: queries of ~1.5% of the structure.
//
// Expected shape (paper): near-linear scaling for both (queries don't
// coordinate); the CPMA scales further (118x vs 41x at 128 threads) because
// the PMA saturates memory bandwidth first. The PMA is faster at low core
// counts (no decompression), the CPMA wins once bandwidth-bound.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "parallel/scheduler.hpp"
#include "pma/cpma.hpp"
#include "util/table.hpp"

namespace {

template <typename S>
double run(const S& s, uint64_t len, uint64_t queries, uint64_t seed) {
  std::atomic<uint64_t> total{0};
  cpma::util::Timer t;
  cpma::par::parallel_for(0, queries, [&](uint64_t q) {
    uint64_t start = cpma::util::uniform_key(seed, q);
    uint64_t cnt = s.map_range_length([](uint64_t) {}, start, len);
    total.fetch_add(cnt, std::memory_order_relaxed);
  }, 1);
  return static_cast<double>(total.load()) / t.elapsed_seconds();
}

}  // namespace

int main() {
  bench::print_config_line("Figure 8 / Table 12: range-query scaling");
  auto base = bench::uniform_keys(bench::base_n(), 71);
  cpma::PMA pma;
  cpma::CPMA cc;
  {
    std::vector<uint64_t> b = base;
    pma.insert_batch(b.data(), b.size());
    b = base;
    cc.insert_batch(b.data(), b.size());
  }
  const uint64_t len = std::max<uint64_t>(1000, bench::base_n() * 15 / 1000);
  const uint64_t queries =
      std::max<uint64_t>(64, 30'000'000 / std::max<uint64_t>(len, 1));

  unsigned hw = std::thread::hardware_concurrency();
  std::vector<unsigned> cores;
  for (unsigned c = 1; c < hw; c *= 2) cores.push_back(c);
  cores.push_back(hw);

  double pma1 = 0, cpma1 = 0;
  cpma::util::Table table({"cores", "PMA_TP", "PMA_speedup", "CPMA_TP",
                           "CPMA_speedup"});
  table.print_header();
  for (unsigned c : cores) {
    cpma::par::Scheduler::set_num_workers(c);
    double p = run(pma, len, queries, 72);
    double cv = run(cc, len, queries, 72);
    if (c == 1) {
      pma1 = p;
      cpma1 = cv;
    }
    table.cell_u64(c);
    table.cell_sci(p);
    table.cell_ratio(p / pma1);
    table.cell_sci(cv);
    table.cell_ratio(cv / cpma1);
    table.end_row();
  }
  cpma::par::Scheduler::set_num_workers(hw);
  return 0;
}
