// Figures 12 & 13 (Appendix C): growing-factor sensitivity of the CPMA.
// Sweeps g in {1.1 .. 2.0}: batch-insert throughput, average and worst-case
// space per element, and average full-scan time per element.
//
// Expected shape (paper): smaller g => smaller average size and faster
// scans; insert throughput peaks at an intermediate g (~1.5): tiny factors
// copy too often, big factors search/rebalance larger arrays.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "pma/cpma.hpp"
#include "util/table.hpp"

int main() {
  bench::print_config_line("Figures 12-13: growing-factor sensitivity");
  const uint64_t total = bench::base_n() + bench::insert_n();
  const uint64_t batch = std::max<uint64_t>(1, total / 100);
  auto keys = bench::uniform_keys(total, 121);

  cpma::util::Table table({"factor", "ins_TP", "avg_B/elt", "max_B/elt",
                           "scan_ns/elt"});
  table.print_header();
  for (double g : {1.1, 1.2, 1.3, 1.5, 1.7, 2.0}) {
    cpma::pma::PmaSettings settings;
    settings.growth_factor = g;
    cpma::CPMA s(settings);
    std::vector<uint64_t> scratch;
    double avg_bpe = 0, max_bpe = 0, scan_total = 0;
    uint64_t rounds = 0;
    cpma::util::Timer insert_timer;
    double insert_secs = 0;
    for (uint64_t off = 0; off < total; off += batch) {
      uint64_t len = std::min<uint64_t>(batch, total - off);
      scratch.assign(keys.begin() + off, keys.begin() + off + len);
      insert_timer.reset();
      s.insert_batch(scratch.data(), len);
      insert_secs += insert_timer.elapsed_seconds();
      // After each batch: record space and scan time (Figure 13's series).
      double bpe = static_cast<double>(s.get_size()) /
                   static_cast<double>(s.size());
      avg_bpe += bpe;
      max_bpe = std::max(max_bpe, bpe);
      cpma::util::Timer scan_timer;
      volatile uint64_t sink = s.sum();
      (void)sink;
      scan_total +=
          scan_timer.elapsed_seconds() / static_cast<double>(s.size());
      ++rounds;
    }
    table.cell_ratio(g);
    table.cell_sci(static_cast<double>(total) / insert_secs);
    table.cell_ratio(avg_bpe / rounds);
    table.cell_ratio(max_bpe);
    table.cell_fixed(scan_total / rounds * 1e9, 3);
    table.end_row();
  }
  return 0;
}
