// Figure 2 / Table 10: range-query throughput (elements processed per
// second) as a function of the expected range length, for P-trees, U-PaC,
// C-PaC, PMA, and CPMA.
//
// Paper protocol: structure holds 1e8 keys; 100,000 parallel range queries
// per length. Scaled here: the query count adapts so each row processes a
// bounded number of elements.
//
// Expected shape (paper): PMA 9-27x P-trees; CPMA 1.2-10x C-PaC, advantage
// growing with range length; CPMA overtakes PMA on the longest ranges
// (compression = fewer bytes through the memory system).
//
// Machine-readable output: one RESULT line per (structure, len, dist, mode)
// for scripts/run_bench.py / compare_bench.py (tracked as
// BENCH_range_query.json). Beyond the paper's uniform per-op sweep:
//   dist=zipf    range starts drawn zipf (hot ranges rescanned)
//   dist=recent  ranges inside a monotone-appended suffix (newest data)
//   mode=batch   the SAME disjoint key ranges answered by one map_ranges
//                call instead of a per-op map_range loop — measures the
//                amortized multi-range path against its per-op twin.
// The eytz= field records which head-index descent kernel answered.
#include <atomic>
#include <cstdio>
#include <utility>
#include <vector>

#include "baselines/pactree.hpp"
#include "baselines/ptree.hpp"
#include "bench_common.hpp"
#include "parallel/scheduler.hpp"
#include "pma/cpma.hpp"
#include "pma/settings.hpp"
#include "util/table.hpp"

namespace {

// Parallel length-bounded range queries (the paper's protocol); returns
// elements/second.
template <typename S>
double query_throughput(const S& s, uint64_t len, uint64_t queries,
                        uint64_t seed) {
  std::atomic<uint64_t> total{0};
  cpma::util::Timer t;
  cpma::par::parallel_for(0, queries, [&](uint64_t q) {
    uint64_t start = cpma::util::uniform_key(seed ^ 0xabcd, q);
    uint64_t acc = 0;
    uint64_t cnt = s.map_range_length([&](uint64_t k) { acc += k; }, start,
                                      len);
    (void)acc;
    total.fetch_add(cnt, std::memory_order_relaxed);
  }, 1);
  double secs = t.elapsed_seconds();
  return static_cast<double>(total.load()) / secs;
}

// Same protocol with arbitrary start keys (zipf / recent scenarios).
template <typename S>
double query_throughput_starts(const S& s, uint64_t len,
                               const std::vector<uint64_t>& starts) {
  std::atomic<uint64_t> total{0};
  cpma::util::Timer t;
  cpma::par::parallel_for(0, starts.size(), [&](uint64_t q) {
    uint64_t acc = 0;
    uint64_t cnt = s.map_range_length([&](uint64_t k) { acc += k; },
                                      starts[q], len);
    (void)acc;
    total.fetch_add(cnt, std::memory_order_relaxed);
  }, 1);
  return static_cast<double>(total.load()) / t.elapsed_seconds();
}

// Disjoint sorted key ranges of expected length `len` elements: starts are
// sorted uniform keys, each range's end clamps to the next start. Used for
// the per-op-vs-batch pair so both modes answer IDENTICAL ranges.
std::vector<std::pair<uint64_t, uint64_t>> make_ranges(uint64_t len,
                                                       uint64_t queries,
                                                       uint64_t n,
                                                       uint64_t seed) {
  // Expected key span holding `len` elements at density n / 2^40.
  const double span_d =
      static_cast<double>(len) * (static_cast<double>(uint64_t{1} << 40) /
                                  static_cast<double>(n));
  const uint64_t span = span_d < 1 ? 1 : static_cast<uint64_t>(span_d);
  std::vector<uint64_t> starts(queries);
  for (uint64_t q = 0; q < queries; ++q) {
    starts[q] = cpma::util::uniform_key(seed ^ 0xfade, q);
  }
  std::sort(starts.begin(), starts.end());
  starts.erase(std::unique(starts.begin(), starts.end()), starts.end());
  std::vector<std::pair<uint64_t, uint64_t>> ranges;
  ranges.reserve(starts.size());
  for (uint64_t i = 0; i < starts.size(); ++i) {
    uint64_t end = starts[i] + span;
    if (end < starts[i]) end = UINT64_MAX;  // overflow clamp
    if (i + 1 < starts.size() && end > starts[i + 1]) end = starts[i + 1];
    if (end > starts[i]) ranges.emplace_back(starts[i], end);
  }
  return ranges;
}

template <typename S>
double per_op_ranges(const S& s,
                     const std::vector<std::pair<uint64_t, uint64_t>>& r) {
  std::atomic<uint64_t> total{0};
  cpma::util::Timer t;
  cpma::par::parallel_for(0, r.size(), [&](uint64_t q) {
    uint64_t cnt = 0, acc = 0;
    s.map_range([&](uint64_t k) { acc += k; ++cnt; }, r[q].first,
                r[q].second);
    (void)acc;
    total.fetch_add(cnt, std::memory_order_relaxed);
  }, 1);
  return static_cast<double>(total.load()) / t.elapsed_seconds();
}

// Per-range accumulators, not shared atomics: map_ranges hands each range
// index to exactly one worker, so plain slots are race-free — a shared
// fetch_add per element would serialize the measurement on cache-line
// ping-pong and hide the amortization being measured.
template <typename S>
double batch_ranges(const S& s,
                    const std::vector<std::pair<uint64_t, uint64_t>>& r) {
  std::vector<uint64_t> cnt(r.size(), 0);
  std::vector<uint64_t> acc(r.size(), 0);
  cpma::util::Timer t;
  s.map_ranges(r.data(), r.size(), [&](uint64_t ri, uint64_t k) {
    acc[ri] += k;
    ++cnt[ri];
  });
  double secs = t.elapsed_seconds();
  uint64_t total = 0, sink = 0;
  for (uint64_t i = 0; i < r.size(); ++i) {
    total += cnt[i];
    sink += acc[i];
  }
  volatile uint64_t keep = sink;
  (void)keep;
  return static_cast<double>(total) / secs;
}

template <typename S>
S build(const std::vector<uint64_t>& base) {
  S s;
  std::vector<uint64_t> b = base;
  s.insert_batch(b.data(), b.size());
  return s;
}

void emit(const char* name, uint64_t len, const char* dist, const char* mode,
          double tp) {
  std::printf("RESULT bench=range_query struct=%s len=%llu dist=%s mode=%s "
              "eytz=%s elems_per_s=%.6e\n",
              name, (unsigned long long)len, dist, mode,
              cpma::pma::eytzinger_enabled() ? "on" : "off", tp);
}

}  // namespace

int main() {
  bench::print_config_line("Figure 2 / Table 10: range-query throughput");
  auto base = bench::uniform_keys(bench::base_n(), 3);
  // Monotone-appended suffix above the 40-bit space: the "newest data" the
  // recent-scenario ranges scan.
  const uint64_t tail_n = bench::base_n() / 8;
  const uint64_t tail_base = uint64_t{1} << 40;
  std::vector<uint64_t> content = base;
  for (uint64_t i = 0; i < tail_n; ++i) content.push_back(tail_base + 3 * i);

  const bool ptree_on = bench::struct_enabled("ptree");
  const bool upac_on = bench::struct_enabled("upac");
  const bool cpac_on = bench::struct_enabled("cpac");
  const bool pma_on = bench::struct_enabled("pma");
  const bool cpma_on = bench::struct_enabled("cpma");
  const bool trees_on = ptree_on && upac_on && cpac_on;

  cpma::baselines::PTree ptree;
  cpma::baselines::UPacTree upac;
  cpma::baselines::CPacTree cpac;
  if (trees_on) {
    std::vector<uint64_t> b = base;
    ptree.insert_batch(b.data(), b.size());
    b = base;
    upac.insert_batch(b.data(), b.size());
    b = base;
    cpac.insert_batch(b.data(), b.size());
  }
  auto pma = build<cpma::PMA>(content);
  auto cpma_s = build<cpma::CPMA>(content);

  // Range lengths follow the paper's sweep, capped at ~20% of the data.
  std::vector<uint64_t> lengths{6, 50, 400, 3000, 20000, 200000};
  while (lengths.back() > bench::base_n() / 5) lengths.pop_back();
  const uint64_t target_volume = 50'000'000;

  cpma::util::Table table({"avg_len", "queries", "P-tree", "U-PaC", "PMA",
                           "PMA/P-tree", "C-PaC", "CPMA", "CPMA/C-PaC",
                           "CPMA/PMA"});
  if (trees_on) table.print_header();
  for (uint64_t len : lengths) {
    uint64_t queries =
        std::max<uint64_t>(64, std::min<uint64_t>(10000, target_volume / len));
    double tp_pt = 0, tp_up = 0, tp_cp = 0, tp_p = 0, tp_c = 0;
    for (int t = 0; t < bench::trials(); ++t) {
      if (trees_on) {
        tp_pt = std::max(tp_pt, query_throughput(ptree, len, queries, 7 + t));
        tp_up = std::max(tp_up, query_throughput(upac, len, queries, 7 + t));
        tp_cp = std::max(tp_cp, query_throughput(cpac, len, queries, 7 + t));
      }
      if (pma_on) {
        tp_p = std::max(tp_p, query_throughput(pma, len, queries, 7 + t));
      }
      if (cpma_on) {
        tp_c = std::max(tp_c, query_throughput(cpma_s, len, queries, 7 + t));
      }
    }
    if (trees_on) {
      emit("ptree", len, "uniform", "per_op", tp_pt);
      emit("upac", len, "uniform", "per_op", tp_up);
      emit("cpac", len, "uniform", "per_op", tp_cp);
    }
    if (pma_on) emit("pma", len, "uniform", "per_op", tp_p);
    if (cpma_on) emit("cpma", len, "uniform", "per_op", tp_c);

    // Scenario + batch rows for the engines.
    std::vector<uint64_t> zipf_starts = bench::zipf_keys(queries, 23 + len);
    std::vector<uint64_t> recent_starts(queries);
    for (uint64_t q = 0; q < queries; ++q) {
      recent_starts[q] =
          tail_base + cpma::util::hash64((29 + len) ^ q) % (3 * tail_n);
    }
    auto ranges = make_ranges(len, queries, content.size(), 31 + len);
    for (int which = 0; which < 2; ++which) {
      const char* name = which == 0 ? "pma" : "cpma";
      if (which == 0 && !pma_on) continue;
      if (which == 1 && !cpma_on) continue;
      double tp_z = 0, tp_r = 0, tp_po = 0, tp_b = 0;
      for (int t = 0; t < bench::trials(); ++t) {
        if (which == 0) {
          tp_z = std::max(tp_z, query_throughput_starts(pma, len, zipf_starts));
          tp_r = std::max(tp_r,
                          query_throughput_starts(pma, len, recent_starts));
          tp_po = std::max(tp_po, per_op_ranges(pma, ranges));
          tp_b = std::max(tp_b, batch_ranges(pma, ranges));
        } else {
          tp_z = std::max(tp_z,
                          query_throughput_starts(cpma_s, len, zipf_starts));
          tp_r = std::max(tp_r,
                          query_throughput_starts(cpma_s, len, recent_starts));
          tp_po = std::max(tp_po, per_op_ranges(cpma_s, ranges));
          tp_b = std::max(tp_b, batch_ranges(cpma_s, ranges));
        }
      }
      emit(name, len, "zipf", "per_op", tp_z);
      emit(name, len, "recent", "per_op", tp_r);
      emit(name, len, "uniform", "ranges_per_op", tp_po);
      emit(name, len, "uniform", "ranges_batch", tp_b);
    }

    if (!trees_on || !pma_on || !cpma_on) continue;
    table.cell_u64(len);
    table.cell_u64(queries);
    table.cell_sci(tp_pt);
    table.cell_sci(tp_up);
    table.cell_sci(tp_p);
    table.cell_ratio(tp_p / tp_pt);
    table.cell_sci(tp_cp);
    table.cell_sci(tp_c);
    table.cell_ratio(tp_c / tp_cp);
    table.cell_ratio(tp_c / tp_p);
    table.end_row();
  }
  return 0;
}
