// Figure 2 / Table 10: range-query throughput (elements processed per
// second) as a function of the expected range length, for P-trees, U-PaC,
// C-PaC, PMA, and CPMA.
//
// Paper protocol: structure holds 1e8 keys; 100,000 parallel range queries
// per length. Scaled here: the query count adapts so each row processes a
// bounded number of elements.
//
// Expected shape (paper): PMA 9-27x P-trees; CPMA 1.2-10x C-PaC, advantage
// growing with range length; CPMA overtakes PMA on the longest ranges
// (compression = fewer bytes through the memory system).
#include <atomic>
#include <cstdio>
#include <vector>

#include "baselines/pactree.hpp"
#include "baselines/ptree.hpp"
#include "bench_common.hpp"
#include "parallel/scheduler.hpp"
#include "pma/cpma.hpp"
#include "util/table.hpp"

namespace {

// Parallel range queries; returns elements/second.
template <typename S>
double query_throughput(const S& s, uint64_t len, uint64_t queries,
                        uint64_t seed) {
  std::atomic<uint64_t> total{0};
  cpma::util::Timer t;
  cpma::par::parallel_for(0, queries, [&](uint64_t q) {
    uint64_t start = cpma::util::uniform_key(seed ^ 0xabcd, q);
    uint64_t acc = 0;
    uint64_t cnt = s.map_range_length([&](uint64_t k) { acc += k; }, start,
                                      len);
    (void)acc;
    total.fetch_add(cnt, std::memory_order_relaxed);
  }, 1);
  double secs = t.elapsed_seconds();
  return static_cast<double>(total.load()) / secs;
}

template <typename S>
S build(const std::vector<uint64_t>& base) {
  S s;
  std::vector<uint64_t> b = base;
  s.insert_batch(b.data(), b.size());
  return s;
}

}  // namespace

int main() {
  bench::print_config_line("Figure 2 / Table 10: range-query throughput");
  auto base = bench::uniform_keys(bench::base_n(), 3);

  auto ptree = build<cpma::baselines::PTree>(base);
  auto upac = build<cpma::baselines::UPacTree>(base);
  auto cpac = build<cpma::baselines::CPacTree>(base);
  auto pma = build<cpma::PMA>(base);
  auto cpma_s = build<cpma::CPMA>(base);

  // Range lengths follow the paper's sweep, capped at ~20% of the data.
  std::vector<uint64_t> lengths{6, 50, 400, 3000, 20000, 200000};
  while (lengths.back() > bench::base_n() / 5) lengths.pop_back();
  const uint64_t target_volume = 50'000'000;

  cpma::util::Table table({"avg_len", "queries", "P-tree", "U-PaC", "PMA",
                           "PMA/P-tree", "C-PaC", "CPMA", "CPMA/C-PaC",
                           "CPMA/PMA"});
  table.print_header();
  for (uint64_t len : lengths) {
    uint64_t queries =
        std::max<uint64_t>(64, std::min<uint64_t>(10000, target_volume / len));
    double tp_pt = 0, tp_up = 0, tp_cp = 0, tp_p = 0, tp_c = 0;
    for (int t = 0; t < bench::trials(); ++t) {
      tp_pt = std::max(tp_pt, query_throughput(ptree, len, queries, 7 + t));
      tp_up = std::max(tp_up, query_throughput(upac, len, queries, 7 + t));
      tp_cp = std::max(tp_cp, query_throughput(cpac, len, queries, 7 + t));
      tp_p = std::max(tp_p, query_throughput(pma, len, queries, 7 + t));
      tp_c = std::max(tp_c, query_throughput(cpma_s, len, queries, 7 + t));
    }
    table.cell_u64(len);
    table.cell_u64(queries);
    table.cell_sci(tp_pt);
    table.cell_sci(tp_up);
    table.cell_sci(tp_p);
    table.cell_ratio(tp_p / tp_pt);
    table.cell_sci(tp_cp);
    table.cell_sci(tp_c);
    table.cell_ratio(tp_c / tp_cp);
    table.cell_ratio(tp_c / tp_p);
    table.end_row();
  }
  return 0;
}
