// Table 4: serial batch-insert throughput — the paper's work-efficient batch
// algorithm run on one core versus the Rewired-PMA-style serial batch
// baseline (per-leaf merges with per-leaf rebalance walks; see
// PackedMemoryArray::insert_batch_serial_baseline and DESIGN.md for the
// substitution rationale).
//
// Expected shape (paper): the paper's algorithm ~1.2-1.3x the RMA across
// batch sizes.
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "parallel/scheduler.hpp"
#include "pma/cpma.hpp"
#include "util/table.hpp"

namespace {

template <bool UseBaseline>
double run(const std::vector<uint64_t>& base,
           const std::vector<uint64_t>& inserts, uint64_t batch) {
  cpma::PMA s;
  std::vector<uint64_t> b = base;
  s.insert_batch(b.data(), b.size());
  std::vector<uint64_t> scratch;
  cpma::util::Timer t;
  for (uint64_t off = 0; off < inserts.size(); off += batch) {
    uint64_t len = std::min<uint64_t>(batch, inserts.size() - off);
    scratch.assign(inserts.begin() + off, inserts.begin() + off + len);
    if constexpr (UseBaseline) {
      s.insert_batch_serial_baseline(scratch.data(), len);
    } else {
      s.insert_batch(scratch.data(), len);
    }
  }
  return static_cast<double>(inserts.size()) / t.elapsed_seconds();
}

}  // namespace

int main() {
  bench::print_config_line("Table 4: serial batch insert, PMA vs RMA-like");
  auto base = bench::uniform_keys(bench::base_n(), 31);
  auto inserts = bench::uniform_keys(bench::insert_n(), 32);

  cpma::par::Scheduler::set_num_workers(1);  // the whole table is serial

  // Paper batches up to 10% of the structure; the RMA-style baseline's
  // per-leaf merges are designed for that regime (huge batches would push
  // every leaf into the point-insert fallback).
  std::vector<uint64_t> batch_sizes{10000, 100000,
                                    std::max<uint64_t>(bench::insert_n() / 4,
                                                       200000)};
  cpma::util::Table table({"batch", "RMA-like", "PMA", "PMA/RMA"});
  table.print_header();
  for (uint64_t bs : batch_sizes) {
    double rma = run<true>(base, inserts, bs);
    double pma = run<false>(base, inserts, bs);
    table.cell_u64(bs);
    table.cell_sci(rma);
    table.cell_sci(pma);
    table.cell_ratio(pma / rma);
    table.end_row();
  }
  cpma::par::Scheduler::set_num_workers(std::thread::hardware_concurrency());
  return 0;
}
