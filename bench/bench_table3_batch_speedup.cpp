// Table 3: throughput of serial and parallel batch insertion in the PMA as a
// function of batch size, with the speedups of (a) serial batch over serial
// point inserts, (b) parallel batch over serial batch.
//
// Expected shape (paper): serial batch up to ~3x point inserts at the
// largest batches; parallel batch up to ~19-24x serial batch at 1e6-1e7
// (bounded by core count here).
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "parallel/scheduler.hpp"
#include "pma/cpma.hpp"
#include "util/table.hpp"

namespace {

double serial_point_throughput(const std::vector<uint64_t>& base,
                               const std::vector<uint64_t>& inserts) {
  cpma::PMA s;
  std::vector<uint64_t> b = base;
  s.insert_batch(b.data(), b.size());
  cpma::util::Timer t;
  for (uint64_t k : inserts) s.insert(k);
  return static_cast<double>(inserts.size()) / t.elapsed_seconds();
}

double batch_throughput(const std::vector<uint64_t>& base,
                        const std::vector<uint64_t>& inserts, uint64_t batch) {
  cpma::PMA s;
  std::vector<uint64_t> b = base;
  s.insert_batch(b.data(), b.size());
  return bench::batch_insert_throughput(s, inserts, batch);
}

}  // namespace

int main() {
  bench::print_config_line("Table 3: serial vs parallel batch inserts (PMA)");
  auto base = bench::uniform_keys(bench::base_n(), 21);
  auto inserts = bench::uniform_keys(bench::insert_n(), 22);
  unsigned hw = std::thread::hardware_concurrency();

  // Serial point-insert baseline (the denominator of "overall speedup").
  cpma::par::Scheduler::set_num_workers(1);
  double point_tp = serial_point_throughput(base, inserts);
  std::printf("# serial point-insert throughput: %.1E inserts/s\n", point_tp);

  std::vector<uint64_t> batch_sizes{100, 1000, 10000, 100000, 1000000};
  cpma::util::Table table({"batch", "serial_TP", "ser/point", "parallel_TP",
                           "par/serial", "overall"});
  table.print_header();
  for (uint64_t bs : batch_sizes) {
    cpma::par::Scheduler::set_num_workers(1);
    double ser = batch_throughput(base, inserts, bs);
    cpma::par::Scheduler::set_num_workers(hw);
    double par_tp = batch_throughput(base, inserts, bs);
    table.cell_u64(bs);
    table.cell_sci(ser);
    table.cell_ratio(ser / point_tp);
    table.cell_sci(par_tp);
    table.cell_ratio(par_tp / ser);
    table.cell_ratio(par_tp / point_tp);
    table.end_row();
  }
  return 0;
}
