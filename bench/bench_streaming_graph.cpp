// Streaming dynamic-graph bench: analytics throughput on epoch-pinned
// snapshots vs concurrent ingest pressure, and the ingest rate the store
// sustains while analytics run.
//
// Protocol: preload a scale-S RMAT graph (CPMA_BENCH_GRAPH_SCALE, default
// 15; CPMA_BENCH_INSERT_N preload edges), then measure windows of
// CPMA_BENCH_STREAM_MS (default 2000 ms) per (structure, shards):
//
//   mode=ingest      edge-ingest rate through insert_edges + flush with NO
//                    analytics running — the reference rate.
//   mode=algo        analytics cycles/s (one cycle = BFS + PageRank + CC on
//                    a fresh pinned snapshot) while an ingest thread pushes
//                    load= batches per second (0bps / 1bps / 4bps), plus
//                    snapshot-age p50/p99 at pin time — how stale the data
//                    each cycle saw was.
//   mode=concurrent  ingest at full speed while the analytics thread runs
//                    at a realistic monitoring cadence (one cycle per
//                    second, or duty-cycled to <=20% of wall time when a
//                    cycle is slower than that, so a 1-core runner is not
//                    measuring pure timeslicing). The acceptance ratio
//                    concurrent/ingest >= 0.8x is printed as a comment.
//
// `load=` is a string field on purpose: it is part of the record identity
// for scripts/compare_bench.py (integer fields other than batch/shards/
// cores/clients are treated as metrics, not identity).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/streaming.hpp"
#include "util/timer.hpp"

namespace {

using namespace cpma::graph;

constexpr uint64_t kBatchKeys = 10'000;  // symmetrized keys per ingest batch

uint32_t graph_scale() {
  return static_cast<uint32_t>(
      cpma::util::env_u64("CPMA_BENCH_GRAPH_SCALE", 15));
}

double stream_seconds() {
  return static_cast<double>(
             cpma::util::env_u64("CPMA_BENCH_STREAM_MS", 2000)) /
         1e3;
}

uint64_t percentile(std::vector<uint64_t>& samples, double p) {
  if (samples.empty()) return 0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(samples.size() - 1));
  std::nth_element(samples.begin(), samples.begin() + idx, samples.end());
  return samples[idx];
}

// Pre-generated pool of symmetrized RMAT batches the ingest loops cycle
// through, so edge generation never lands inside a timed window.
std::vector<std::vector<uint64_t>> make_batch_pool(uint32_t scale,
                                                   uint64_t seed0) {
  std::vector<std::vector<uint64_t>> pool(32);
  for (size_t i = 0; i < pool.size(); ++i) {
    pool[i] = symmetrize(rmat_edges(scale, kBatchKeys / 2, seed0 + i));
  }
  return pool;
}

template <typename G>
uint64_t ingest_until(G& g, const std::vector<std::vector<uint64_t>>& pool,
                      const std::atomic<bool>& stop, double max_seconds) {
  uint64_t keys = 0, i = 0;
  cpma::util::Timer t;
  while (!stop.load(std::memory_order_acquire) &&
         t.elapsed_seconds() < max_seconds) {
    std::vector<uint64_t> batch = pool[i++ % pool.size()];
    keys += batch.size();
    g.insert_edges(std::move(batch));
    g.flush();
  }
  return keys;
}

// One analytics cycle on a fresh pinned snapshot; returns the snapshot age
// at pin time.
template <typename G>
uint64_t analytics_cycle(const G& g, vertex_t source) {
  auto snap = g.snapshot();
  const uint64_t age = snap.age_ns();
  auto depth = bfs(snap, source);
  auto pr = pagerank(snap);
  auto cc = connected_components(snap);
  // Keep the results observable so nothing is elided.
  if (depth.empty() || pr.empty() || cc.empty()) std::abort();
  return age;
}

struct AlgoResult {
  double cycles_per_s = 0;
  uint64_t age_p50_ns = 0;
  uint64_t age_p99_ns = 0;
};

// Analytics at full tilt while a paced ingest thread pushes `load_bps`
// batches per second (0 = quiescent).
template <typename G>
AlgoResult run_algo_mode(G& g, const std::vector<std::vector<uint64_t>>& pool,
                         uint64_t load_bps, double seconds) {
  std::atomic<bool> stop{false};
  std::thread ingest;
  if (load_bps > 0) {
    ingest = std::thread([&] {
      uint64_t i = 0;
      cpma::util::Timer t;
      while (!stop.load(std::memory_order_acquire)) {
        std::vector<uint64_t> batch = pool[i % pool.size()];
        g.insert_edges(std::move(batch));
        g.flush();
        ++i;
        const double next = static_cast<double>(i) / load_bps;
        double wait = next - t.elapsed_seconds();
        while (wait > 0 && !stop.load(std::memory_order_acquire)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(
              static_cast<int>(std::min(wait * 1e3, 10.0)) + 1));
          wait = next - t.elapsed_seconds();
        }
      }
    });
  }

  std::vector<uint64_t> ages;
  uint64_t cycles = 0;
  cpma::util::Timer t;
  while (t.elapsed_seconds() < seconds) {
    ages.push_back(analytics_cycle(g, 1));
    ++cycles;
  }
  const double elapsed = t.elapsed_seconds();
  stop.store(true, std::memory_order_release);
  if (ingest.joinable()) ingest.join();

  AlgoResult r;
  r.cycles_per_s = static_cast<double>(cycles) / elapsed;
  r.age_p50_ns = percentile(ages, 0.50);
  r.age_p99_ns = percentile(ages, 0.99);
  return r;
}

// Full-speed ingest while the analytics thread runs at monitoring cadence:
// one cycle per second, stretched to a <=20% duty cycle when a single
// cycle is slower than that (so single-core runs measure interference at a
// realistic analytics share, not 50/50 timeslicing).
template <typename G>
double run_concurrent_mode(G& g,
                           const std::vector<std::vector<uint64_t>>& pool,
                           double seconds) {
  std::atomic<bool> stop{false};
  std::thread analytics([&] {
    cpma::util::Timer t;
    while (!stop.load(std::memory_order_acquire)) {
      const double t0 = t.elapsed_seconds();
      analytics_cycle(g, 1);
      const double cycle = t.elapsed_seconds() - t0;
      const double next = t0 + std::max(1.0, 5.0 * cycle);
      double wait = next - t.elapsed_seconds();
      while (wait > 0 && !stop.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(
            static_cast<int>(std::min(wait * 1e3, 10.0)) + 1));
        wait = next - t.elapsed_seconds();
      }
    }
  });

  std::atomic<bool> never{false};
  cpma::util::Timer t;
  const uint64_t keys = ingest_until(g, pool, never, seconds);
  const double elapsed = t.elapsed_seconds();
  stop.store(true, std::memory_order_release);
  analytics.join();
  return static_cast<double>(keys) / elapsed;
}

template <typename Serve>
void run_struct(const char* name, uint64_t shards) {
  const uint32_t scale = graph_scale();
  const vertex_t n = uint32_t{1} << scale;
  const double seconds = stream_seconds();

  double best_ingest = 0, best_concurrent = 0;
  AlgoResult best_algo[3];
  const uint64_t loads[3] = {0, 1, 4};

  for (int trial = 0; trial < bench::trials(); ++trial) {
    cpma::serve::ServingSettings cfg;
    cfg.sharded.num_shards = shards;
    StreamingGraph<Serve> g(n, cfg);
    g.insert_edges(symmetrize(rmat_edges(scale, bench::insert_n() / 2, 7)));
    g.flush();
    const auto pool = make_batch_pool(scale, 100 * (trial + 1));

    std::atomic<bool> never{false};
    cpma::util::Timer t;
    const uint64_t keys = ingest_until(g, pool, never, seconds);
    best_ingest = std::max(best_ingest, keys / t.elapsed_seconds());

    for (int li = 0; li < 3; ++li) {
      AlgoResult r = run_algo_mode(g, pool, loads[li], seconds);
      if (r.cycles_per_s > best_algo[li].cycles_per_s) best_algo[li] = r;
    }

    best_concurrent =
        std::max(best_concurrent, run_concurrent_mode(g, pool, seconds));
  }

  std::printf("RESULT bench=streaming_graph struct=%s shards=%llu "
              "batch=%llu mode=ingest ingest_per_s=%.6e\n",
              name, (unsigned long long)shards,
              (unsigned long long)kBatchKeys, best_ingest);
  for (int li = 0; li < 3; ++li) {
    std::printf("RESULT bench=streaming_graph struct=%s shards=%llu "
                "batch=%llu mode=algo load=%llubps cycles_per_s=%.6e",
                name, (unsigned long long)shards,
                (unsigned long long)kBatchKeys,
                (unsigned long long)loads[li], best_algo[li].cycles_per_s);
    if (loads[li] > 0) {
      // Quiescent ages just measure time-since-preload; only report
      // staleness when ingest actually publishes during the window.
      std::printf(" snap_age_p50_ns=%llu snap_age_p99_ns=%llu",
                  (unsigned long long)best_algo[li].age_p50_ns,
                  (unsigned long long)best_algo[li].age_p99_ns);
    }
    std::printf("\n");
  }
  std::printf("RESULT bench=streaming_graph struct=%s shards=%llu "
              "batch=%llu mode=concurrent ingest_per_s=%.6e\n",
              name, (unsigned long long)shards,
              (unsigned long long)kBatchKeys, best_concurrent);
  std::printf("# %s shards=%llu concurrent ingest: %.3fx of mode=ingest "
              "(acceptance >= 0.8x)\n",
              name, (unsigned long long)shards,
              best_ingest > 0 ? best_concurrent / best_ingest : 0.0);
}

}  // namespace

int main() {
  bench::print_config_line("streaming graph: analytics vs concurrent ingest");
  std::printf("# graph_scale=%u stream_ms=%.0f (override with "
              "CPMA_BENCH_GRAPH_SCALE / CPMA_BENCH_STREAM_MS)\n",
              graph_scale(), stream_seconds() * 1e3);
  for (uint64_t sc : bench::shard_counts()) {
    if (bench::struct_enabled("streaming_pma")) {
      run_struct<cpma::ServingPMA>("streaming_pma", sc);
    }
    if (bench::struct_enabled("streaming_cpma")) {
      run_struct<cpma::ServingCPMA>("streaming_cpma", sc);
    }
  }
  return 0;
}
