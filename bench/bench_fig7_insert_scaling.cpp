// Figure 7 / Table 11: strong scaling of batch inserts in the PMA and CPMA,
// plus the keyspace-sharded compositions.
//
// Paper protocol: start with 1e8 keys, insert 100 batches of 1e6; sweep core
// counts. Scaled here (defaults: 1e6 base, batches of insert_n/100), sweeping
// 1, 2, 4, ... up to the machine's cores.
//
// Expected shape (paper): both engines scale; CPMA overtakes PMA at high
// core counts because inserts become memory-bound and compression buys
// bandwidth (PMA up to ~19x, CPMA up to ~43x on 64 cores / 128 threads).
// The sharded rows dispatch per-shard batches as sibling top-level tasks, so
// they add scaling headroom above what one engine's inner parallelism
// reaches — the S-CPMA column is the one the ROADMAP "Scale" item tracks.
// The shard count comes from CPMA_BENCH_SHARDS (largest entry; default 8).
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "parallel/scheduler.hpp"
#include "pma/cpma.hpp"
#include "util/table.hpp"

namespace {

template <typename S>
double run_with(const std::vector<uint64_t>& base,
                const std::vector<uint64_t>& inserts, uint64_t batch,
                auto make) {
  S s = make();
  std::vector<uint64_t> b = base;
  s.insert_batch(b.data(), b.size());
  return bench::batch_insert_throughput(s, inserts, batch);
}

void emit_result(const char* name, unsigned cores, uint64_t shards,
                 double tp) {
  std::printf("RESULT bench=insert_scaling struct=%s cores=%u ", name, cores);
  if (shards > 0) std::printf("shards=%llu ", (unsigned long long)shards);
  std::printf("inserts_per_s=%.6e\n", tp);
}

}  // namespace

int main() {
  bench::print_config_line("Figure 7 / Table 11: batch-insert scaling");
  auto base = bench::uniform_keys(bench::base_n(), 61);
  auto inserts = bench::uniform_keys(bench::insert_n(), 62);
  const uint64_t batch = std::max<uint64_t>(1, bench::insert_n() / 100);

  // Sharded series: the largest configured shard count (one series keeps
  // the table readable; sweep CPMA_BENCH_SHARDS externally for more),
  // gated by CPMA_BENCH_STRUCTS like every other structure.
  uint64_t shards = 0;
  if (bench::struct_enabled("sharded_pma") ||
      bench::struct_enabled("sharded_cpma")) {
    for (uint64_t sc : bench::shard_counts()) shards = std::max(shards, sc);
  }
  const bool spma_on = shards > 0 && bench::struct_enabled("sharded_pma");
  const bool scpma_on = shards > 0 && bench::struct_enabled("sharded_cpma");

  unsigned hw = std::thread::hardware_concurrency();
  std::vector<unsigned> cores;
  for (unsigned c = 1; c < hw; c *= 2) cores.push_back(c);
  cores.push_back(hw);

  double pma1 = 0, cpma1 = 0, spma1 = 0, scpma1 = 0;
  std::vector<std::string> headers{"cores", "PMA_TP", "PMA_speedup",
                                   "CPMA_TP", "CPMA_speedup"};
  if (shards > 0) {
    headers.insert(headers.end(),
                   {"S-PMA_TP", "S-PMA_speedup", "S-CPMA_TP",
                    "S-CPMA_speedup"});
  }
  cpma::util::Table table(headers);
  table.print_header();
  for (unsigned c : cores) {
    cpma::par::Scheduler::set_num_workers(c);
    double pma = run_with<cpma::PMA>(base, inserts, batch,
                                     [] { return cpma::PMA{}; });
    double cc = run_with<cpma::CPMA>(base, inserts, batch,
                                     [] { return cpma::CPMA{}; });
    emit_result("pma", c, 0, pma);
    emit_result("cpma", c, 0, cc);
    double spma = 0, scpma = 0;
    if (shards > 0) {
      cpma::pma::ShardedSettings st;
      st.num_shards = shards;
      if (spma_on) {
        spma = run_with<cpma::SPMA>(base, inserts, batch,
                                    [&] { return cpma::SPMA(st); });
        emit_result("sharded_pma", c, shards, spma);
      }
      if (scpma_on) {
        scpma = run_with<cpma::SCPMA>(base, inserts, batch,
                                      [&] { return cpma::SCPMA(st); });
        emit_result("sharded_cpma", c, shards, scpma);
      }
    }
    if (c == 1) {
      pma1 = pma;
      cpma1 = cc;
      spma1 = spma;
      scpma1 = scpma;
    }
    table.cell_u64(c);
    table.cell_sci(pma);
    table.cell_ratio(pma / pma1);
    table.cell_sci(cc);
    table.cell_ratio(cc / cpma1);
    if (shards > 0) {
      table.cell_sci(spma);
      table.cell_ratio(spma_on ? spma / spma1 : 0.0);
      table.cell_sci(scpma);
      table.cell_ratio(scpma_on ? scpma / scpma1 : 0.0);
    }
    table.end_row();
  }
  cpma::par::Scheduler::set_num_workers(hw);
  return 0;
}
