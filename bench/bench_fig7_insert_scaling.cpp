// Figure 7 / Table 11: strong scaling of batch inserts in the PMA and CPMA.
//
// Paper protocol: start with 1e8 keys, insert 100 batches of 1e6; sweep core
// counts. Scaled here (defaults: 1e6 base, batches of insert_n/100), sweeping
// 1, 2, 4, ... up to the machine's cores.
//
// Expected shape (paper): both scale; CPMA overtakes PMA at high core counts
// because inserts become memory-bound and compression buys bandwidth (PMA
// up to ~19x, CPMA up to ~43x on 64 cores / 128 threads).
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "parallel/scheduler.hpp"
#include "pma/cpma.hpp"
#include "util/table.hpp"

namespace {

template <typename S>
double run(const std::vector<uint64_t>& base,
           const std::vector<uint64_t>& inserts, uint64_t batch) {
  S s;
  std::vector<uint64_t> b = base;
  s.insert_batch(b.data(), b.size());
  return bench::batch_insert_throughput(s, inserts, batch);
}

}  // namespace

int main() {
  bench::print_config_line("Figure 7 / Table 11: batch-insert scaling");
  auto base = bench::uniform_keys(bench::base_n(), 61);
  auto inserts = bench::uniform_keys(bench::insert_n(), 62);
  const uint64_t batch = std::max<uint64_t>(1, bench::insert_n() / 100);

  unsigned hw = std::thread::hardware_concurrency();
  std::vector<unsigned> cores;
  for (unsigned c = 1; c < hw; c *= 2) cores.push_back(c);
  cores.push_back(hw);

  double pma1 = 0, cpma1 = 0;
  cpma::util::Table table({"cores", "PMA_TP", "PMA_speedup", "CPMA_TP",
                           "CPMA_speedup"});
  table.print_header();
  for (unsigned c : cores) {
    cpma::par::Scheduler::set_num_workers(c);
    double pma = run<cpma::PMA>(base, inserts, batch);
    double cc = run<cpma::CPMA>(base, inserts, batch);
    if (c == 1) {
      pma1 = pma;
      cpma1 = cc;
    }
    table.cell_u64(c);
    table.cell_sci(pma);
    table.cell_ratio(pma / pma1);
    table.cell_sci(cc);
    table.cell_ratio(cc / cpma1);
    table.end_row();
  }
  cpma::par::Scheduler::set_num_workers(hw);
  return 0;
}
