// Google-benchmark microbenchmarks for the point-operation layer: insert,
// sum, and leaf codec throughput for both PMA and CPMA. Complements the
// table-shaped harnesses with stable ns/op numbers.
//
// The point-QUERY rows (has / successor) moved to bench_point_query, which
// emits tracked RESULT lines (snapshot BENCH_point_query.json, compared in
// CI) and adds the batched forms plus zipf/recent scenarios — this binary
// keeps only the rows with no RESULT-protocol twin.
#include <benchmark/benchmark.h>

#include <vector>

#include "codec/varint.hpp"
#include "pma/cpma.hpp"
#include "util/random.hpp"

namespace {

template <typename S>
S build(uint64_t n, uint64_t seed) {
  std::vector<uint64_t> keys(n);
  for (uint64_t i = 0; i < n; ++i) keys[i] = cpma::util::uniform_key(seed, i);
  S s;
  s.insert_batch(keys.data(), keys.size());
  return s;
}

template <typename S>
void BM_PointInsert(benchmark::State& state) {
  auto s = build<S>(static_cast<uint64_t>(state.range(0)), 1);
  uint64_t i = 1'000'000'000;
  for (auto _ : state) {
    s.insert(cpma::util::uniform_key(2, i++));
  }
  state.SetItemsProcessed(state.iterations());
}

template <typename S>
void BM_Sum(benchmark::State& state) {
  auto s = build<S>(static_cast<uint64_t>(state.range(0)), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.sum());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_VarintEncodeDecode(benchmark::State& state) {
  std::vector<uint64_t> values(4096);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = cpma::util::hash64(i) >> (i % 40);
  }
  std::vector<uint8_t> buf(values.size() * cpma::codec::kMaxVarintBytes);
  for (auto _ : state) {
    size_t pos = 0;
    for (uint64_t v : values) {
      pos += cpma::codec::varint_encode(v, buf.data() + pos);
    }
    uint64_t total = 0;
    size_t rpos = 0;
    for (size_t i = 0; i < values.size(); ++i) {
      uint64_t v;
      rpos += cpma::codec::varint_decode(buf.data() + rpos, &v);
      total += v;
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}

}  // namespace

BENCHMARK_TEMPLATE(BM_PointInsert, cpma::PMA)->Arg(100000)->Arg(1000000);
BENCHMARK_TEMPLATE(BM_PointInsert, cpma::CPMA)->Arg(100000)->Arg(1000000);
BENCHMARK_TEMPLATE(BM_Sum, cpma::PMA)->Arg(1000000);
BENCHMARK_TEMPLATE(BM_Sum, cpma::CPMA)->Arg(1000000);
BENCHMARK(BM_VarintEncodeDecode);

BENCHMARK_MAIN();
