// Table 7: memory used to store the graphs in F-Graph, C-PaC, and
// Aspen-like, on RMAT and Erdős–Rényi graphs of growing size.
//
// Expected shape (paper): F/C-PaC ~0.9-1.0 (marginally smaller), F/Aspen
// ~0.5-0.8 (substantially smaller; the functional chunks and per-vertex
// indirection cost space).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "graph/fgraph.hpp"
#include "graph/generators.hpp"
#include "graph/tree_graphs.hpp"
#include "util/table.hpp"

using namespace cpma::graph;

int main() {
  bench::print_config_line("Table 7: graph memory footprint");
  cpma::util::Table table({"graph", "n", "m", "F-Graph_MB", "C-PaC_MB",
                           "Aspen_MB", "F/C", "F/A"});
  table.print_header();

  struct Config {
    const char* name;
    uint32_t scale;
    uint64_t m;
  };
  std::vector<Config> configs{{"RMAT-s15", 15, cpma::util::scaled(500'000)},
                              {"RMAT-s17", 17, cpma::util::scaled(2'000'000)},
                              {"ER-s17", 17, cpma::util::scaled(2'000'000)}};
  for (const auto& cfg : configs) {
    std::vector<uint64_t> edges;
    if (cfg.name[0] == 'E') {
      double p = static_cast<double>(cfg.m) / (1ull << (2 * cfg.scale));
      edges = symmetrize(erdos_renyi_edges(1u << cfg.scale, p, 111));
    } else {
      edges = symmetrize(rmat_edges(cfg.scale, cfg.m, 112));
    }
    FGraph f(1u << cfg.scale, edges);
    CPacGraph c(1u << cfg.scale, edges);
    AspenGraph a(1u << cfg.scale, edges);
    double fs = static_cast<double>(f.get_size()) / 1e6;
    double cs = static_cast<double>(c.get_size()) / 1e6;
    double as = static_cast<double>(a.get_size()) / 1e6;
    table.cell_str(cfg.name);
    table.cell_u64(1u << cfg.scale);
    table.cell_u64(edges.size());
    table.cell_ratio(fs);
    table.cell_ratio(cs);
    table.cell_ratio(as);
    table.cell_ratio(fs / cs);
    table.cell_ratio(fs / as);
    table.end_row();
  }
  return 0;
}
