// Table 6: bytes per element for U-PaC, PMA, C-PaC, CPMA (and P-trees' fixed
// 32 B/element) as the number of elements grows, plus the adaptive-codec
// ACPMA and a dense-run distribution where bitmap leaves must shine.
//
// Expected shape (paper): PMA ~10-12 B/elt; CPMA ~3-5 B/elt (>=2x smaller);
// CPMA/C-PaC ~1 (similar sizes); compression improves with n because key
// spacing shrinks. On dense_runs the ACPMA's bitmap leaves should cut
// bytes/key to <=0.5x the byte-varint CPMA.
//
// Output: one RESULT line per (dist, struct, n) — machine-parsed by
// scripts/run_bench.py into BENCH_space.json (bytes_per_key is compared
// lower-is-better by compare_bench.py).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/pactree.hpp"
#include "baselines/ptree.hpp"
#include "bench_common.hpp"
#include "pma/cpma.hpp"
#include "util/table.hpp"

namespace {

std::vector<uint64_t> dense_run_keys(uint64_t n, uint64_t seed) {
  // Clustered consecutive runs (256-1024 keys) at random 44-bit bases: the
  // per-leaf density regime where bitmap selection wins.
  std::vector<uint64_t> keys;
  keys.reserve(n);
  cpma::util::Rng r(seed);
  while (keys.size() < n) {
    uint64_t base = 1 + (r.next() >> 20);
    uint64_t len = std::min<uint64_t>(256 + r.next() % 768, n - keys.size());
    for (uint64_t i = 0; i < len; ++i) keys.push_back(base + i);
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

template <typename S>
double bytes_per_element(const std::vector<uint64_t>& keys) {
  S s;
  std::vector<uint64_t> copy(keys);
  s.insert_batch(copy.data(), copy.size());
  return static_cast<double>(s.get_size()) / static_cast<double>(s.size());
}

void report(const std::string& dist, const std::string& st, uint64_t n,
            double bpk) {
  std::printf("RESULT bench=space dist=%s struct=%s n=%llu bytes_per_key=%.3f\n",
              dist.c_str(), st.c_str(), (unsigned long long)n, bpk);
}

}  // namespace

int main() {
  bench::print_config_line("Table 6: bytes per element");
  std::vector<uint64_t> sizes{100'000, 1'000'000};
  if (cpma::util::bench_scale() >= 10) sizes.push_back(10'000'000);
  if (cpma::util::bench_scale() >= 100) sizes.push_back(100'000'000);

  cpma::util::Table table({"n", "P-tree", "U-PaC", "PMA", "PMA/U-PaC",
                           "C-PaC", "CPMA", "ACPMA", "CPMA/C-PaC",
                           "CPMA/PMA"});
  table.print_header();
  for (uint64_t n : sizes) {
    auto keys = bench::uniform_keys(n, 51);
    double ptree = bytes_per_element<cpma::baselines::PTree>(keys);
    double upac = bytes_per_element<cpma::baselines::UPacTree>(keys);
    double pma = bytes_per_element<cpma::PMA>(keys);
    double cpac = bytes_per_element<cpma::baselines::CPacTree>(keys);
    double cc = bytes_per_element<cpma::CPMA>(keys);
    double ac = bytes_per_element<cpma::ACPMA>(keys);
    table.cell_u64(n);
    table.cell_ratio(ptree);
    table.cell_ratio(upac);
    table.cell_ratio(pma);
    table.cell_ratio(pma / upac);
    table.cell_ratio(cpac);
    table.cell_ratio(cc);
    table.cell_ratio(ac);
    table.cell_ratio(cc / cpac);
    table.cell_ratio(cc / pma);
    table.end_row();
    report("uniform", "ptree", n, ptree);
    report("uniform", "upac", n, upac);
    report("uniform", "pma", n, pma);
    report("uniform", "cpac", n, cpac);
    report("uniform", "cpma", n, cc);
    report("uniform", "acpma", n, ac);
  }

  // Dense-run rows: the adaptive bitmap selection must at least halve
  // bytes/key vs the byte-varint CPMA here (engines only; the baselines'
  // uniform rows above anchor the cross-structure comparison).
  for (uint64_t n : sizes) {
    auto keys = dense_run_keys(n, 53);
    double pma = bytes_per_element<cpma::PMA>(keys);
    double cc = bytes_per_element<cpma::CPMA>(keys);
    double ac = bytes_per_element<cpma::ACPMA>(keys);
    report("dense_runs", "pma", keys.size(), pma);
    report("dense_runs", "cpma", keys.size(), cc);
    report("dense_runs", "acpma", keys.size(), ac);
  }
  return 0;
}
