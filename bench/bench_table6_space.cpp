// Table 6: bytes per element for U-PaC, PMA, C-PaC, CPMA (and P-trees' fixed
// 32 B/element) as the number of elements grows.
//
// Expected shape (paper): PMA ~10-12 B/elt; CPMA ~3-5 B/elt (>=2x smaller);
// CPMA/C-PaC ~1 (similar sizes); compression improves with n because key
// spacing shrinks.
#include <cstdio>
#include <vector>

#include "baselines/pactree.hpp"
#include "baselines/ptree.hpp"
#include "bench_common.hpp"
#include "pma/cpma.hpp"
#include "util/table.hpp"

namespace {

template <typename S>
double bytes_per_element(uint64_t n, uint64_t seed) {
  auto keys = bench::uniform_keys(n, seed);
  S s;
  s.insert_batch(keys.data(), keys.size());
  return static_cast<double>(s.get_size()) / static_cast<double>(s.size());
}

}  // namespace

int main() {
  bench::print_config_line("Table 6: bytes per element");
  std::vector<uint64_t> sizes{100'000, 1'000'000};
  if (cpma::util::bench_scale() >= 10) sizes.push_back(10'000'000);
  if (cpma::util::bench_scale() >= 100) sizes.push_back(100'000'000);

  cpma::util::Table table({"n", "P-tree", "U-PaC", "PMA", "PMA/U-PaC",
                           "C-PaC", "CPMA", "CPMA/C-PaC", "CPMA/PMA"});
  table.print_header();
  for (uint64_t n : sizes) {
    double ptree = bytes_per_element<cpma::baselines::PTree>(n, 51);
    double upac = bytes_per_element<cpma::baselines::UPacTree>(n, 51);
    double pma = bytes_per_element<cpma::PMA>(n, 51);
    double cpac = bytes_per_element<cpma::baselines::CPacTree>(n, 51);
    double cc = bytes_per_element<cpma::CPMA>(n, 51);
    table.cell_u64(n);
    table.cell_ratio(ptree);
    table.cell_ratio(upac);
    table.cell_ratio(pma);
    table.cell_ratio(pma / upac);
    table.cell_ratio(cpac);
    table.cell_ratio(cc);
    table.cell_ratio(cc / cpac);
    table.cell_ratio(cc / pma);
    table.end_row();
  }
  return 0;
}
