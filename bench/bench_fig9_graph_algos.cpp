// Figure 9 / Table 14: graph-algorithm runtimes (PR, CC, BC) for F-Graph,
// C-PaC, and Aspen-like containers, on RMAT and Erdős–Rényi graphs (the
// substitution for the paper's social-network datasets; see DESIGN.md).
//
// Expected shape (paper): F-Graph fastest on average (~1.2x over C-PaC,
// ~1.3x over Aspen), with the largest advantage on PR (arbitrary-order full
// scans, where the flat layout wins) and the smallest on BC
// (topology-order, where the vertex-index rebuild costs ~10%).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "graph/algorithms.hpp"
#include "graph/fgraph.hpp"
#include "graph/generators.hpp"
#include "graph/tree_graphs.hpp"
#include "util/table.hpp"

using namespace cpma::graph;

namespace {

struct Times {
  double pr, cc, bc;
};

template <typename G>
Times run(vertex_t n, const std::vector<uint64_t>& edges, vertex_t bc_src) {
  G g(n, edges);
  Times t;
  t.pr = cpma::util::time_trials([&] { pagerank(g); }, bench::trials(), 1);
  t.cc = cpma::util::time_trials([&] { connected_components(g); },
                                 bench::trials(), 1);
  t.bc = cpma::util::time_trials([&] { betweenness_centrality(g, bc_src); },
                                 bench::trials(), 1);
  return t;
}

void rows(cpma::util::Table& table, const char* graph_name, vertex_t n,
          const std::vector<uint64_t>& edges) {
  // BC source: highest-degree vertex (inside the giant component).
  std::vector<uint64_t> deg(n, 0);
  for (uint64_t e : edges) deg[edge_src(e)]++;
  vertex_t src = 0;
  for (vertex_t v = 0; v < n; ++v) {
    if (deg[v] > deg[src]) src = v;
  }
  Times f = run<FGraph>(n, edges, src);
  Times c = run<CPacGraph>(n, edges, src);
  Times a = run<AspenGraph>(n, edges, src);
  const char* algos[3] = {"PR", "CC", "BC"};
  double fv[3] = {f.pr, f.cc, f.bc};
  double cv[3] = {c.pr, c.cc, c.bc};
  double av[3] = {a.pr, a.cc, a.bc};
  for (int i = 0; i < 3; ++i) {
    table.cell_str(graph_name);
    table.cell_str(algos[i]);
    table.cell_fixed(av[i], 4);
    table.cell_fixed(cv[i], 4);
    table.cell_fixed(fv[i], 4);
    table.cell_ratio(av[i] / fv[i]);
    table.cell_ratio(cv[i] / fv[i]);
    table.end_row();
  }
}

}  // namespace

int main() {
  bench::print_config_line("Figure 9 / Table 14: graph algorithms");
  const uint32_t scale = static_cast<uint32_t>(
      cpma::util::env_u64("CPMA_BENCH_GRAPH_SCALE", 17));
  const uint64_t m = cpma::util::scaled(2'000'000);

  auto rmat = symmetrize(rmat_edges(scale, m, 91));
  auto er = symmetrize(
      erdos_renyi_edges(1u << scale,
                        static_cast<double>(m) / (1ull << (2 * scale)), 92));
  std::printf("# RMAT: n=%u m=%zu | ER: n=%u m=%zu\n", 1u << scale,
              rmat.size(), 1u << scale, er.size());

  cpma::util::Table table({"graph", "algo", "Aspen", "C-PaC", "F-Graph",
                           "Aspen/F", "C-PaC/F"});
  table.print_header();
  rows(table, "RMAT", 1u << scale, rmat);
  rows(table, "ER", 1u << scale, er);
  return 0;
}
