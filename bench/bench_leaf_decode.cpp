// Leaf decode-throughput microbench: measures the DeltaStream kernel that
// every CPMA scan/merge now routes through, at leaf granularity.
//
// Modes:
//   scalar  one key per DeltaStream::next() call (the search loops)
//   block   DeltaStream::next_block into a stack buffer (scans and merges;
//           takes the word-at-a-time / SIMD fast path on 1-byte deltas)
//   map     CompressedLeaf::map summing (what engine scans execute)
//   count   element_count (count_remaining: popcount, no value decode)
//
// Distributions sweep the delta width: dense (1-byte codes, the fast-path
// sweet spot), uniform 40-bit (~3-byte codes) and sparse 60-bit (~7-byte
// codes, scalar-dominated).
//
// Output: one RESULT line per (dist, mode) — machine-parsed by
// scripts/run_bench.py into BENCH_leaf_decode.json.
#include <algorithm>
#include <cstring>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "pma/leaf_compressed.hpp"
#include "pma/settings.hpp"

namespace {

using Leaf = cpma::pma::CompressedLeaf<>;
using Stream = Leaf::Stream;

constexpr size_t kLeafBytes = 1024;

volatile uint64_t g_sink;  // defeats dead-code elimination

struct LeafSet {
  std::vector<uint8_t> data;  // num_leaves * kLeafBytes
  uint64_t num_leaves = 0;
  uint64_t num_keys = 0;
  uint64_t encoded_bytes = 0;  // used bytes across leaves (heads included)
};

// Packs sorted unique keys into consecutive leaves at ~90% density.
LeafSet build_leaves(const std::vector<uint64_t>& keys) {
  LeafSet ls;
  const size_t budget = kLeafBytes - cpma::pma::kLeafSlack;
  size_t i = 0;
  while (i < keys.size()) {
    size_t cost = Leaf::kHeadBytes;
    size_t j = i + 1;
    while (j < keys.size()) {
      size_t c = Leaf::delta_bytes(keys[j - 1], keys[j]);
      if (cost + c > budget) break;
      cost += c;
      ++j;
    }
    ls.data.resize(ls.data.size() + kLeafBytes);
    Leaf::write(ls.data.data() + ls.num_leaves * kLeafBytes, kLeafBytes,
                keys.data() + i, j - i);
    ls.encoded_bytes += cost;
    ++ls.num_leaves;
    ls.num_keys += j - i;
    i = j;
  }
  return ls;
}

std::vector<uint64_t> make_dist(const std::string& dist, uint64_t n,
                                uint64_t seed) {
  std::vector<uint64_t> keys;
  if (dist == "dense") {
    keys.resize(n);
    for (uint64_t i = 0; i < n; ++i) keys[i] = 1 + 2 * i;  // delta 2: 1 byte
    return keys;
  }
  unsigned bits = dist == "uniform40" ? 40 : 60;
  cpma::util::Rng r(seed);
  keys.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    keys.push_back(1 + (r.next() >> (64 - bits)));
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

template <typename F>
double throughput_keys_per_s(const LeafSet& ls, F&& per_leaf) {
  double secs = cpma::util::time_trials(
      [&] {
        uint64_t acc = 0;
        for (uint64_t l = 0; l < ls.num_leaves; ++l) {
          acc += per_leaf(ls.data.data() + l * kLeafBytes);
        }
        g_sink = acc;
      },
      bench::trials());
  return static_cast<double>(ls.num_keys) / secs;
}

void report(const LeafSet& ls, const std::string& dist,
            const std::string& mode, double keys_per_s) {
  double bytes_per_key = static_cast<double>(ls.encoded_bytes) /
                         static_cast<double>(ls.num_keys);
  double mb_per_s = keys_per_s * bytes_per_key / 1e6;
  // The word-at-a-time path is unconditional (CPMA_SIMD only gates the
  // intrinsics variant), so the label is the path actually taken.
  const char* simd =
#if CPMA_SIMD_AVX2
      "avx2";
#else
      "word";
#endif
  std::printf(
      "RESULT bench=leaf_decode dist=%s mode=%s simd=%s keys=%llu "
      "bytes_per_key=%.2f keys_per_s=%.3e mb_per_s=%.1f\n",
      dist.c_str(), mode.c_str(), simd, (unsigned long long)ls.num_keys,
      bytes_per_key, keys_per_s, mb_per_s);
}

void run_dist(const std::string& dist) {
  auto keys = make_dist(dist, bench::base_n(), 42);
  LeafSet ls = build_leaves(keys);

  // The seed implementation each op used to carry: memchr for the stream
  // end, then a scalar varint loop bounded by it.
  report(ls, dist, "legacy", throughput_keys_per_s(ls, [](const uint8_t* lp) {
           uint64_t acc = Leaf::head(lp);
           if (acc == 0) return acc;
           const void* z =
               std::memchr(lp + Leaf::kHeadBytes, 0,
                           kLeafBytes - Leaf::kHeadBytes);
           size_t end = z == nullptr
                            ? kLeafBytes
                            : static_cast<size_t>(
                                  static_cast<const uint8_t*>(z) - lp);
           uint64_t cur = acc;
           size_t pos = Leaf::kHeadBytes;
           while (pos < end) {
             uint64_t delta;
             pos += cpma::codec::varint_decode(lp + pos, &delta);
             cur += delta;
             acc += cur;
           }
           return acc;
         }));
  report(ls, dist, "scalar", throughput_keys_per_s(ls, [](const uint8_t* lp) {
           uint64_t acc = Leaf::head(lp);
           Stream s = Leaf::stream(lp, kLeafBytes);
           while (s.next()) acc += s.value();
           return acc;
         }));
  report(ls, dist, "block", throughput_keys_per_s(ls, [](const uint8_t* lp) {
           uint64_t acc = Leaf::head(lp);
           Stream s = Leaf::stream(lp, kLeafBytes);
           uint64_t buf[Stream::kBlockKeys];
           while (size_t k = s.next_block(buf, Stream::kBlockKeys)) {
             for (size_t i = 0; i < k; ++i) acc += buf[i];
           }
           return acc;
         }));
  report(ls, dist, "map", throughput_keys_per_s(ls, [](const uint8_t* lp) {
           uint64_t acc = 0;
           Leaf::map(lp, kLeafBytes, [&](uint64_t k) {
             acc += k;
             return true;
           });
           return acc;
         }));
  report(ls, dist, "count", throughput_keys_per_s(ls, [](const uint8_t* lp) {
           return Leaf::element_count(lp, kLeafBytes);
         }));
}

}  // namespace

int main() {
  bench::print_config_line("leaf decode kernel throughput");
  for (const char* dist : {"dense", "uniform40", "sparse60"}) {
    run_dist(dist);
  }
  return 0;
}
