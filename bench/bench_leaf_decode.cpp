// Leaf decode-throughput microbench: measures the decode kernels that every
// CPMA scan/merge routes through, at leaf granularity, across the three leaf
// codecs (byte-varint, group-varint, adaptive selection).
//
// Modes:
//   scalar  one key per cursor_next call (the search loops)
//   block   block_next into a stack buffer (scans and merges; takes the
//           word-at-a-time / SIMD fast path on 1-byte deltas, the group
//           decode on group-varint, word popcount scans on bitmap leaves)
//   map     Leaf::map summing (what engine scans execute)
//   count   element_count (no value decode)
//   legacy  byte-varint only: the seed implementation (memchr + scalar loop)
//
// Distributions sweep the delta/density regime: dense (1-byte codes, the
// byte-varint fast-path sweet spot), dense_runs (clustered consecutive runs
// separated by large gaps — the regime bitmap selection must win), mixed
// (half dense runs, half uniform 40-bit), uniform40 (~3-byte codes, where
// group-varint must beat the scalar loop) and sparse60 (~7-byte codes).
//
// Output: one RESULT line per (codec, dist, mode) — machine-parsed by
// scripts/run_bench.py into BENCH_leaf_decode.json; the codec= field keys
// rows per codec in compare_bench.py.
#include <algorithm>
#include <cstring>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "codec/group_varint.hpp"
#include "pma/leaf_adaptive.hpp"
#include "pma/leaf_compressed.hpp"
#include "pma/settings.hpp"

namespace {

using BvLeaf = cpma::pma::CompressedLeaf<>;
using GvLeaf = cpma::pma::CompressedLeaf<cpma::codec::GroupVarintCodec>;
using ALeaf = cpma::pma::AdaptiveLeaf;

constexpr size_t kLeafBytes = 1024;

volatile uint64_t g_sink;  // defeats dead-code elimination

struct LeafSet {
  std::vector<uint8_t> data;  // num_leaves * kLeafBytes
  uint64_t num_leaves = 0;
  uint64_t num_keys = 0;
  uint64_t encoded_bytes = 0;  // used bytes across leaves (heads included)
};

// Packs sorted unique keys into consecutive leaves at ~90% density, splitting
// by each policy's own encoded cost (the adaptive policy packs by the size of
// the format it will select — exactly what the engine's spread does).
template <typename Leaf>
LeafSet build_leaves(const std::vector<uint64_t>& keys) {
  LeafSet ls;
  const size_t budget = kLeafBytes - cpma::pma::kLeafSlack;
  size_t i = 0;
  while (i < keys.size()) {
    size_t j = i;
    if constexpr (requires { typename Leaf::StreamSizer; }) {
      typename Leaf::StreamSizer s{};
      while (j < keys.size()) {
        typename Leaf::StreamSizer t = s;
        t.add(keys[j]);
        if (s.n > 0 && t.selected_bytes(kLeafBytes) > budget) break;
        s = t;
        ++j;
      }
    } else {
      size_t cost = Leaf::kHeadBytes;
      ++j;
      while (j < keys.size()) {
        size_t c = Leaf::delta_bytes(keys[j - 1], keys[j]);
        if (cost + c > budget) break;
        cost += c;
        ++j;
      }
    }
    ls.data.resize(ls.data.size() + kLeafBytes);
    uint8_t* lp = ls.data.data() + ls.num_leaves * kLeafBytes;
    Leaf::write(lp, kLeafBytes, keys.data() + i, j - i);
    ls.encoded_bytes += Leaf::used_bytes(lp, kLeafBytes);
    ++ls.num_leaves;
    ls.num_keys += j - i;
    i = j;
  }
  return ls;
}

std::vector<uint64_t> make_dist(const std::string& dist, uint64_t n,
                                uint64_t seed) {
  std::vector<uint64_t> keys;
  cpma::util::Rng r(seed);
  if (dist == "dense") {
    keys.resize(n);
    for (uint64_t i = 0; i < n; ++i) keys[i] = 1 + 2 * i;  // delta 2: 1 byte
    return keys;
  }
  if (dist == "dense_runs" || dist == "mixed") {
    // Clustered consecutive runs at random 40-bit bases; `mixed` interleaves
    // the runs with an equal volume of uniform 40-bit keys.
    keys.reserve(n);
    while (keys.size() < (dist == "mixed" ? n / 2 : n)) {
      uint64_t base = 1 + (r.next() >> 24);
      uint64_t len = 128 + r.next() % 384;
      for (uint64_t i = 0; i < len; ++i) keys.push_back(base + i);
    }
    if (dist == "mixed") {
      while (keys.size() < n) keys.push_back(1 + (r.next() >> 24));
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    return keys;
  }
  unsigned bits = dist == "uniform40" ? 40 : 60;
  keys.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    keys.push_back(1 + (r.next() >> (64 - bits)));
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

template <typename F>
double throughput_keys_per_s(const LeafSet& ls, F&& per_leaf) {
  double secs = cpma::util::time_trials(
      [&] {
        uint64_t acc = 0;
        for (uint64_t l = 0; l < ls.num_leaves; ++l) {
          acc += per_leaf(ls.data.data() + l * kLeafBytes);
        }
        g_sink = acc;
      },
      bench::trials());
  return static_cast<double>(ls.num_keys) / secs;
}

void report(const LeafSet& ls, const std::string& codec,
            const std::string& dist, const std::string& mode,
            double keys_per_s) {
  double bytes_per_key = static_cast<double>(ls.encoded_bytes) /
                         static_cast<double>(ls.num_keys);
  double mb_per_s = keys_per_s * bytes_per_key / 1e6;
  // The word-at-a-time path is unconditional (CPMA_SIMD only gates the
  // intrinsics variant), so the label is the path actually taken.
  const char* simd =
#if CPMA_SIMD_AVX2
      "avx2";
#else
      "word";
#endif
  std::printf(
      "RESULT bench=leaf_decode codec=%s dist=%s mode=%s simd=%s keys=%llu "
      "bytes_per_key=%.2f keys_per_s=%.3e mb_per_s=%.1f\n",
      codec.c_str(), dist.c_str(), mode.c_str(), simd,
      (unsigned long long)ls.num_keys, bytes_per_key, keys_per_s, mb_per_s);
}

template <typename Leaf>
void run_codec(const std::string& codec, const std::string& dist,
               const std::vector<uint64_t>& keys) {
  LeafSet ls = build_leaves<Leaf>(keys);

  if constexpr (std::is_same_v<Leaf, BvLeaf>) {
    // The seed implementation each op used to carry: memchr for the stream
    // end, then a scalar varint loop bounded by it.
    report(ls, codec, dist, "legacy",
           throughput_keys_per_s(ls, [](const uint8_t* lp) {
             uint64_t acc = Leaf::head(lp);
             if (acc == 0) return acc;
             const void* z = std::memchr(lp + Leaf::kHeadBytes, 0,
                                         kLeafBytes - Leaf::kHeadBytes);
             size_t end = z == nullptr
                              ? kLeafBytes
                              : static_cast<size_t>(
                                    static_cast<const uint8_t*>(z) - lp);
             uint64_t cur = acc;
             size_t pos = Leaf::kHeadBytes;
             while (pos < end) {
               uint64_t delta;
               pos += cpma::codec::varint_decode(lp + pos, &delta);
               cur += delta;
               acc += cur;
             }
             return acc;
           }));
  }
  report(ls, codec, dist, "scalar",
         throughput_keys_per_s(ls, [](const uint8_t* lp) {
           typename Leaf::Cursor c{};
           if (!Leaf::cursor_begin(lp, kLeafBytes, c)) return uint64_t{0};
           uint64_t acc = c.value;
           while (Leaf::cursor_next(lp, kLeafBytes, c)) acc += c.value;
           return acc;
         }));
  report(ls, codec, dist, "block",
         throughput_keys_per_s(ls, [](const uint8_t* lp) {
           uint64_t acc = 0;
           typename Leaf::BlockCursor bc{};
           uint64_t buf[Leaf::kBlockKeys];
           while (size_t k =
                      Leaf::block_next(lp, kLeafBytes, bc, buf,
                                       Leaf::kBlockKeys)) {
             for (size_t i = 0; i < k; ++i) acc += buf[i];
           }
           return acc;
         }));
  report(ls, codec, dist, "map",
         throughput_keys_per_s(ls, [](const uint8_t* lp) {
           uint64_t acc = 0;
           Leaf::map(lp, kLeafBytes, [&](uint64_t k) {
             acc += k;
             return true;
           });
           return acc;
         }));
  report(ls, codec, dist, "count",
         throughput_keys_per_s(ls, [](const uint8_t* lp) {
           return Leaf::element_count(lp, kLeafBytes);
         }));
}

void run_dist(const std::string& dist) {
  auto keys = make_dist(dist, bench::base_n(), 42);
  run_codec<BvLeaf>("bv", dist, keys);
  run_codec<GvLeaf>("gv", dist, keys);
  run_codec<ALeaf>("adaptive", dist, keys);
}

}  // namespace

int main() {
  bench::print_config_line("leaf decode kernel throughput");
  for (const char* dist :
       {"dense", "dense_runs", "mixed", "uniform40", "sparse60"}) {
    run_dist(dist);
  }
  return 0;
}
