// Shared helpers for the per-table/figure benchmark binaries.
//
// Protocol mirrors the paper (Section 6): structures start pre-loaded with
// BASE_N uniform-random 40-bit keys, batches insert/delete INSERT_N more,
// range queries run QUERIES parallel map_range_length calls. The paper runs
// at 1e8 elements on 64 cores; defaults here are scaled to finish in seconds
// (see DESIGN.md's substitution table) and every size can be raised with
//   CPMA_BENCH_SCALE=<mult>   (applies to all base sizes)
//   CPMA_BENCH_TRIALS=<n>     (measurement repetitions; default 3)
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/env.hpp"
#include "util/random.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "util/zipf.hpp"

namespace bench {

inline uint64_t base_n() {
  return cpma::util::env_u64("CPMA_BENCH_BASE_N",
                             cpma::util::scaled(1'000'000));
}
inline uint64_t insert_n() {
  return cpma::util::env_u64("CPMA_BENCH_INSERT_N",
                             cpma::util::scaled(1'000'000));
}
inline int trials() {
  return static_cast<int>(cpma::util::env_u64("CPMA_BENCH_TRIALS", 3));
}

// Structure filter: CPMA_BENCH_STRUCTS is a comma-separated subset of a
// bench's structure names (e.g. "pma,cpma"). Unset/empty enables all — CI
// uses the filter to skip the slow tree baselines on tracked runs.
inline bool struct_enabled(const char* name) {
  const char* v = std::getenv("CPMA_BENCH_STRUCTS");
  if (v == nullptr || *v == '\0') return true;
  std::string s(v);
  std::string n(name);
  size_t pos = 0;
  while (pos <= s.size()) {
    size_t c = s.find(',', pos);
    if (c == std::string::npos) c = s.size();
    if (s.compare(pos, c - pos, n) == 0) return true;
    pos = c + 1;
  }
  return false;
}

// Shard counts for the sharded rows: CPMA_BENCH_SHARDS is a comma-separated
// list of shard counts (default "1,8"; set to an empty-but-defined value or
// "0" to disable the sharded rows entirely). shards=1 tracks the routing
// overhead against the direct engines; larger counts track the fan-out.
inline std::vector<uint64_t> shard_counts() {
  const char* v = std::getenv("CPMA_BENCH_SHARDS");
  std::string s = (v == nullptr) ? "1,8" : v;
  std::vector<uint64_t> counts;
  size_t pos = 0;
  while (pos <= s.size()) {
    size_t c = s.find(',', pos);
    if (c == std::string::npos) c = s.size();
    uint64_t n = std::strtoull(s.substr(pos, c - pos).c_str(), nullptr, 10);
    if (n > 0) counts.push_back(n);
    pos = c + 1;
  }
  return counts;
}

// Client-thread counts for the serving-layer rows: CPMA_BENCH_CLIENTS is a
// comma-separated list of concurrent reader/ingest client counts (default
// "1,4"). clients=0 rows (pure-ingest baseline) are always emitted.
inline std::vector<uint64_t> client_counts() {
  const char* v = std::getenv("CPMA_BENCH_CLIENTS");
  std::string s = (v == nullptr) ? "1,4" : v;
  std::vector<uint64_t> counts;
  size_t pos = 0;
  while (pos <= s.size()) {
    size_t c = s.find(',', pos);
    if (c == std::string::npos) c = s.size();
    uint64_t n = std::strtoull(s.substr(pos, c - pos).c_str(), nullptr, 10);
    if (n > 0) counts.push_back(n);
    pos = c + 1;
  }
  return counts;
}

// Per-shard content-byte spread, reported on sharded RESULT lines so a
// regression caused by routing imbalance (splitter drift the rebalancer
// missed) is attributable from the snapshot alone.
struct ShardSpread {
  uint64_t min_bytes = 0;
  uint64_t max_bytes = 0;
};

template <typename S>
ShardSpread shard_spread(const S& s) {
  ShardSpread out;
  std::vector<uint64_t> bytes = s.shard_content_bytes();
  if (bytes.empty()) return out;
  out.min_bytes = bytes[0];
  out.max_bytes = bytes[0];
  for (uint64_t b : bytes) {
    out.min_bytes = std::min(out.min_bytes, b);
    out.max_bytes = std::max(out.max_bytes, b);
  }
  return out;
}

// Uniform-random 40-bit keys (the paper's default microbenchmark
// distribution), deterministic in (seed, index).
inline std::vector<uint64_t> uniform_keys(uint64_t n, uint64_t seed) {
  std::vector<uint64_t> keys(n);
  for (uint64_t i = 0; i < n; ++i) keys[i] = cpma::util::uniform_key(seed, i);
  return keys;
}

// Zipfian 34-bit keys with alpha = 0.99 (YCSB parameters, as in Table 5 /
// Figure 11).
inline std::vector<uint64_t> zipf_keys(uint64_t n, uint64_t seed) {
  cpma::util::ZipfGenerator z(uint64_t{1} << 27, 0.99, seed);
  std::vector<uint64_t> keys(n);
  for (uint64_t i = 0; i < n; ++i) keys[i] = z.key(i);
  return keys;
}

// Inserts `all` into `s` in batches of `batch_size`; returns inserts/second
// (counting attempted inserts, like the paper's throughput).
template <typename S>
double batch_insert_throughput(S& s, const std::vector<uint64_t>& all,
                               uint64_t batch_size) {
  std::vector<uint64_t> scratch;
  cpma::util::Timer t;
  for (uint64_t off = 0; off < all.size(); off += batch_size) {
    uint64_t len = std::min<uint64_t>(batch_size, all.size() - off);
    scratch.assign(all.begin() + off, all.begin() + off + len);
    s.insert_batch(scratch.data(), len);
  }
  return static_cast<double>(all.size()) / t.elapsed_seconds();
}

template <typename S>
double batch_remove_throughput(S& s, const std::vector<uint64_t>& all,
                               uint64_t batch_size) {
  std::vector<uint64_t> scratch;
  cpma::util::Timer t;
  for (uint64_t off = 0; off < all.size(); off += batch_size) {
    uint64_t len = std::min<uint64_t>(batch_size, all.size() - off);
    scratch.assign(all.begin() + off, all.begin() + off + len);
    s.remove_batch(scratch.data(), len);
  }
  return static_cast<double>(all.size()) / t.elapsed_seconds();
}

inline void print_config_line(const char* what) {
  std::printf("# %s | base_n=%llu insert_n=%llu trials=%d (scale with "
              "CPMA_BENCH_SCALE)\n",
              what, (unsigned long long)base_n(),
              (unsigned long long)insert_n(), trials());
}

}  // namespace bench
