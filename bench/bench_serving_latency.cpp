// Serving-layer latency/throughput bench: read p50/p99 under live ingest.
//
// Protocol: preload BASE_N uniform keys, then stream INSERT_N more through
// the serving layer's synchronous batch path (batch=10000, the merge regime
// the batch-insert bench tracks) while N client threads hammer the read
// path — each read pins a snapshot, runs has() + successor(), and unpins.
// Reported per (structure, shards, clients):
//
//   clients=0  pure-ingest: ingest_per_s through ServingPMA with budgeted
//              publishing, plus publishes/shard_copies — the cost of
//              snapshotting itself. Judged against same-run phase-based
//              sharded_* reference rows (also emitted here, and matching
//              the merge-regime rows of BENCH_batch_insert.json);
//              acceptance is within 0.9x.
//   clients=N  concurrent: ingest_per_s (writer), reads_per_s (sum over
//              clients), read_p50_ns / read_p99_ns (per-op pin+read+unpin
//              wall time, merged across clients).
//
// RESULT lines feed scripts/run_bench.py; read_p50_ns/read_p99_ns are
// compared by scripts/compare_bench.py as lower-is-better.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "pma/cpma.hpp"
#include "util/timer.hpp"

namespace {

constexpr uint64_t kBatchSize = 10'000;

struct ServeResult {
  double ingest_per_s = 0;
  double reads_per_s = 0;
  uint64_t read_p50_ns = 0;
  uint64_t read_p99_ns = 0;
  uint64_t publishes = 0;
  uint64_t shard_copies = 0;
};

uint64_t percentile(std::vector<uint64_t>& samples, double p) {
  if (samples.empty()) return 0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(samples.size() - 1));
  std::nth_element(samples.begin(), samples.begin() + idx, samples.end());
  return samples[idx];
}

// One trial: ingest `inserts` in kBatchSize batches while `clients` reader
// threads measure per-op snapshot-read latency.
template <typename S>
ServeResult run_trial(S& serving, const std::vector<uint64_t>& inserts,
                      const std::vector<uint64_t>& probes, uint64_t clients) {
  std::atomic<bool> done{false};
  std::vector<std::vector<uint64_t>> lat(clients);
  std::vector<uint64_t> reads(clients, 0);

  std::vector<std::thread> readers;
  for (uint64_t c = 0; c < clients; ++c) {
    readers.emplace_back([&, c]() {
      auto& samples = lat[c];
      samples.reserve(1 << 16);
      uint64_t i = c;  // stagger probe streams across clients
      cpma::util::Timer op;
      while (!done.load(std::memory_order_acquire)) {
        const uint64_t key = probes[i % probes.size()];
        i += clients;
        const double t0 = op.elapsed_seconds();
        {
          auto snap = serving.snapshot();
          bool hit = snap.has(key);
          auto suc = snap.successor(key);
          // Sanity the compiler cannot elide: a present key is its own
          // successor.
          if (hit && (!suc || *suc != key)) std::abort();
        }
        const double t1 = op.elapsed_seconds();
        ++reads[c];
        samples.push_back(static_cast<uint64_t>((t1 - t0) * 1e9));
      }
    });
  }

  std::vector<uint64_t> scratch;
  cpma::util::Timer t;
  for (uint64_t off = 0; off < inserts.size(); off += kBatchSize) {
    const uint64_t len =
        std::min<uint64_t>(kBatchSize, inserts.size() - off);
    scratch.assign(inserts.begin() + off, inserts.begin() + off + len);
    serving.insert_batch(scratch.data(), len);
  }
  const double ingest_seconds = t.elapsed_seconds();
  done.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  ServeResult r;
  r.ingest_per_s = static_cast<double>(inserts.size()) / ingest_seconds;
  std::vector<uint64_t> all;
  uint64_t total_reads = 0;
  for (uint64_t c = 0; c < clients; ++c) {
    total_reads += reads[c];
    all.insert(all.end(), lat[c].begin(), lat[c].end());
  }
  if (clients > 0) {
    r.reads_per_s = static_cast<double>(total_reads) / ingest_seconds;
    r.read_p50_ns = percentile(all, 0.50);
    r.read_p99_ns = percentile(all, 0.99);
  }
  const auto stats = serving.stats();
  r.publishes = stats.publishes;
  r.shard_copies = stats.shard_copies;
  return r;
}

template <typename S>
ServeResult run_row(const std::vector<uint64_t>& base,
                    const std::vector<uint64_t>& inserts,
                    const std::vector<uint64_t>& probes, uint64_t shards,
                    uint64_t clients) {
  ServeResult best;
  for (int trial = 0; trial < bench::trials(); ++trial) {
    cpma::serve::ServingSettings cfg;
    cfg.sharded.num_shards = shards;
    S serving(cfg);
    // Preload through the batch path, exactly like the batch-insert bench's
    // rows (a bulk build packs leaves tighter and taxes the timed inserts
    // with extra spreads — not the regime the baseline measures).
    std::vector<uint64_t> b = base;
    serving.insert_batch(b.data(), b.size());
    ServeResult r = run_trial(serving, inserts, probes, clients);
    if (r.ingest_per_s > best.ingest_per_s) best = r;
  }
  return best;
}

// Phase-based sharded baseline (no serving wrapper, no snapshots): the
// same-machine reference the serving ingest ratio is judged against.
template <typename S>
double run_baseline(const std::vector<uint64_t>& base,
                    const std::vector<uint64_t>& inserts, uint64_t shards) {
  double best = 0;
  for (int trial = 0; trial < bench::trials(); ++trial) {
    cpma::pma::ShardedSettings cfg;
    cfg.num_shards = shards;
    S s(cfg);
    std::vector<uint64_t> b = base;
    s.insert_batch(b.data(), b.size());
    best = std::max(best, bench::batch_insert_throughput(s, inserts,
                                                         kBatchSize));
  }
  return best;
}

void emit_result(const char* name, uint64_t shards, uint64_t clients,
                 const ServeResult& r) {
  std::printf("RESULT bench=serving_latency struct=%s shards=%llu "
              "batch=%llu clients=%llu ingest_per_s=%.6e",
              name, (unsigned long long)shards,
              (unsigned long long)kBatchSize, (unsigned long long)clients,
              r.ingest_per_s);
  if (clients > 0) {
    std::printf(" reads_per_s=%.6e read_p50_ns=%llu read_p99_ns=%llu",
                r.reads_per_s, (unsigned long long)r.read_p50_ns,
                (unsigned long long)r.read_p99_ns);
  }
  std::printf(" publishes=%llu shard_copies=%llu\n",
              (unsigned long long)r.publishes,
              (unsigned long long)r.shard_copies);
}

}  // namespace

int main() {
  bench::print_config_line("serving layer: read latency under live ingest");
  const auto base = bench::uniform_keys(bench::base_n(), 1);
  const auto inserts = bench::uniform_keys(bench::insert_n(), 2);
  // Probe stream: half present (from base), half drawn fresh (mostly
  // absent), deterministic.
  std::vector<uint64_t> probes = bench::uniform_keys(1 << 16, 3);
  for (size_t i = 0; i < probes.size(); i += 2) {
    probes[i] = base[(i * 2654435761u) % base.size()];
  }

  const bool pma_on = bench::struct_enabled("serving_pma");
  const bool cpma_on = bench::struct_enabled("serving_cpma");
  std::vector<uint64_t> clients = bench::client_counts();
  clients.insert(clients.begin(), 0);  // pure-ingest baseline row first

  for (uint64_t sc : bench::shard_counts()) {
    // Same-machine phase-based reference rows (clients is meaningless for
    // them; the serving clients=0 ingest ratio reads directly against
    // these).
    double base_pma = 0, base_cpma = 0;
    if (pma_on) {
      base_pma = run_baseline<cpma::SPMA>(base, inserts, sc);
      std::printf("RESULT bench=serving_latency struct=sharded_pma "
                  "shards=%llu batch=%llu inserts_per_s=%.6e\n",
                  (unsigned long long)sc, (unsigned long long)kBatchSize,
                  base_pma);
    }
    if (cpma_on) {
      base_cpma = run_baseline<cpma::SCPMA>(base, inserts, sc);
      std::printf("RESULT bench=serving_latency struct=sharded_cpma "
                  "shards=%llu batch=%llu inserts_per_s=%.6e\n",
                  (unsigned long long)sc, (unsigned long long)kBatchSize,
                  base_cpma);
    }
    for (uint64_t cl : clients) {
      if (pma_on) {
        ServeResult r = run_row<cpma::ServingPMA>(base, inserts, probes, sc,
                                                  cl);
        emit_result("serving_pma", sc, cl, r);
        if (cl == 0 && base_pma > 0) {
          std::printf("# serving_pma shards=%llu ingest overhead: %.3fx of "
                      "phase-based sharded_pma\n",
                      (unsigned long long)sc, r.ingest_per_s / base_pma);
        }
      }
      if (cpma_on) {
        ServeResult r = run_row<cpma::ServingCPMA>(base, inserts, probes, sc,
                                                   cl);
        emit_result("serving_cpma", sc, cl, r);
        if (cl == 0 && base_cpma > 0) {
          std::printf("# serving_cpma shards=%llu ingest overhead: %.3fx of "
                      "phase-based sharded_cpma\n",
                      (unsigned long long)sc, r.ingest_per_s / base_cpma);
        }
      }
    }
  }
  return 0;
}
