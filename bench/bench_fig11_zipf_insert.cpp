// Figure 11 / Table 13: parallel batch-insert throughput with batches drawn
// from a zipfian distribution (34-bit keys, alpha = 0.99), for P-trees,
// U-PaC, C-PaC, PMA, and CPMA. The base load is uniform 40-bit, as in the
// paper.
//
// Expected shape (paper): same ordering as the uniform case; the PMA/CPMA
// benefit more from skew than trees at mid-size batches (shared per-leaf
// work), and zipfian throughput exceeds uniform throughput at large batches.
#include <cstdio>
#include <vector>

#include "baselines/pactree.hpp"
#include "baselines/ptree.hpp"
#include "bench_common.hpp"
#include "pma/cpma.hpp"
#include "util/table.hpp"

namespace {

template <typename S>
double run_row(const std::vector<uint64_t>& base,
               const std::vector<uint64_t>& inserts, uint64_t batch_size) {
  double best = 0;
  for (int t = 0; t < bench::trials(); ++t) {
    S s;
    std::vector<uint64_t> b = base;
    s.insert_batch(b.data(), b.size());
    best = std::max(best,
                    bench::batch_insert_throughput(s, inserts, batch_size));
  }
  return best;
}

}  // namespace

int main() {
  bench::print_config_line("Figure 11 / Table 13: zipfian batch inserts");
  auto base = bench::uniform_keys(bench::base_n(), 81);
  auto inserts = bench::zipf_keys(bench::insert_n(), 82);

  std::vector<uint64_t> batch_sizes{10, 100, 1000, 10000, 100000, 1000000};
  cpma::util::Table table({"batch", "P-tree", "U-PaC", "PMA", "PMA/P-tree",
                           "C-PaC", "CPMA", "CPMA/C-PaC", "CPMA/PMA"});
  table.print_header();
  for (uint64_t bs : batch_sizes) {
    double ptree = run_row<cpma::baselines::PTree>(base, inserts, bs);
    double upac = run_row<cpma::baselines::UPacTree>(base, inserts, bs);
    double pma = run_row<cpma::PMA>(base, inserts, bs);
    double cpac = run_row<cpma::baselines::CPacTree>(base, inserts, bs);
    double cc = run_row<cpma::CPMA>(base, inserts, bs);
    table.cell_u64(bs);
    table.cell_sci(ptree);
    table.cell_sci(upac);
    table.cell_sci(pma);
    table.cell_ratio(pma / ptree);
    table.cell_sci(cpac);
    table.cell_sci(cc);
    table.cell_ratio(cc / cpac);
    table.cell_ratio(cc / pma);
    table.end_row();
  }
  return 0;
}
