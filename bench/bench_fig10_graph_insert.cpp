// Figure 10 / Table 15: dynamic-graph batch-insert throughput as a function
// of batch size, for F-Graph, C-PaC, and Aspen-like. The base graph is built
// first; the inserted batches are sampled from an RMAT generator (a=.5,
// b=c=.1, d=.3), the paper's configuration.
//
// Expected shape (paper): F-Graph ~2-3x both tree systems across batch
// sizes.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "graph/fgraph.hpp"
#include "graph/generators.hpp"
#include "graph/tree_graphs.hpp"
#include "util/table.hpp"

using namespace cpma::graph;

namespace {

template <typename G>
double run(vertex_t n, const std::vector<uint64_t>& base_edges,
           const std::vector<uint64_t>& stream, uint64_t batch) {
  G g(n, base_edges);
  std::vector<uint64_t> scratch;
  cpma::util::Timer t;
  for (uint64_t off = 0; off < stream.size(); off += batch) {
    uint64_t len = std::min<uint64_t>(batch, stream.size() - off);
    scratch.assign(stream.begin() + off, stream.begin() + off + len);
    g.insert_edges(std::move(scratch));
    scratch.clear();
  }
  return static_cast<double>(stream.size()) / t.elapsed_seconds();
}

}  // namespace

int main() {
  bench::print_config_line("Figure 10 / Table 15: graph batch inserts");
  const uint32_t scale = static_cast<uint32_t>(
      cpma::util::env_u64("CPMA_BENCH_GRAPH_SCALE", 17));
  const uint64_t m = cpma::util::scaled(2'000'000);
  auto base_edges = symmetrize(rmat_edges(scale, m, 101));
  // Directed insert stream with potential duplicates, as in the paper.
  auto stream = rmat_edges(scale, cpma::util::scaled(1'000'000), 102);
  std::printf("# base graph: n=%u m=%zu | stream=%zu directed edges\n",
              1u << scale, base_edges.size(), stream.size());

  std::vector<uint64_t> batch_sizes{100, 1000, 10000, 100000, 1000000};
  cpma::util::Table table({"batch", "Aspen", "C-PaC", "F-Graph", "F/Aspen",
                           "F/C-PaC"});
  table.print_header();
  for (uint64_t bs : batch_sizes) {
    double a = run<AspenGraph>(1u << scale, base_edges, stream, bs);
    double c = run<CPacGraph>(1u << scale, base_edges, stream, bs);
    double f = run<FGraph>(1u << scale, base_edges, stream, bs);
    table.cell_u64(bs);
    table.cell_sci(a);
    table.cell_sci(c);
    table.cell_sci(f);
    table.cell_ratio(f / a);
    table.cell_ratio(f / c);
    table.end_row();
  }
  return 0;
}
