// Figure 1 / Table 9: parallel batch-insert throughput as a function of
// batch size, for P-trees, U-PaC, C-PaC, PMA, and CPMA.
//
// Paper protocol: start with 1e8 uniform-random 40-bit keys, insert 1e8 more
// in batches of the given size; report inserts/second. Scaled here by
// CPMA_BENCH_SCALE (defaults: 1e6 + 1e6).
//
// Expected shape (paper): CPMA ~3x C-PaC on average; PMA ~1.5x P-trees;
// PMA/CPMA win most at small-to-medium batches, trees catch up at the
// largest batches.
#include <cstdio>
#include <vector>

#include "baselines/pactree.hpp"
#include "baselines/ptree.hpp"
#include "bench_common.hpp"
#include "pma/cpma.hpp"
#include "util/table.hpp"

namespace {

template <typename S>
double run_row(const std::vector<uint64_t>& base,
               const std::vector<uint64_t>& inserts, uint64_t batch_size) {
  double best = 0;
  for (int t = 0; t < bench::trials(); ++t) {
    S s;
    std::vector<uint64_t> b = base;
    s.insert_batch(b.data(), b.size());
    double tp = bench::batch_insert_throughput(s, inserts, batch_size);
    best = std::max(best, tp);
  }
  return best;
}

}  // namespace

int main() {
  bench::print_config_line("Figure 1 / Table 9: batch-insert throughput");
  auto base = bench::uniform_keys(bench::base_n(), 1);
  auto inserts = bench::uniform_keys(bench::insert_n(), 2);

  std::vector<uint64_t> batch_sizes{10, 100, 1000, 10000, 100000, 1000000};
  if (bench::insert_n() >= 10'000'000) batch_sizes.push_back(10'000'000);

  cpma::util::Table table({"batch", "P-tree", "U-PaC", "PMA", "PMA/P-tree",
                           "C-PaC", "CPMA", "CPMA/C-PaC", "CPMA/PMA"});
  table.print_header();
  for (uint64_t bs : batch_sizes) {
    double ptree = run_row<cpma::baselines::PTree>(base, inserts, bs);
    double upac = run_row<cpma::baselines::UPacTree>(base, inserts, bs);
    double pma = run_row<cpma::PMA>(base, inserts, bs);
    double cpac = run_row<cpma::baselines::CPacTree>(base, inserts, bs);
    double cc = run_row<cpma::CPMA>(base, inserts, bs);
    table.cell_u64(bs);
    table.cell_sci(ptree);
    table.cell_sci(upac);
    table.cell_sci(pma);
    table.cell_ratio(pma / ptree);
    table.cell_sci(cpac);
    table.cell_sci(cc);
    table.cell_ratio(cc / cpac);
    table.cell_ratio(cc / pma);
    table.end_row();
  }
  return 0;
}
