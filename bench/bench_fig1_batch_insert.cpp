// Figure 1 / Table 9: parallel batch-insert throughput as a function of
// batch size, for P-trees, U-PaC, C-PaC, PMA, and CPMA.
//
// Paper protocol: start with 1e8 uniform-random 40-bit keys, insert 1e8 more
// in batches of the given size; report inserts/second. Scaled here by
// CPMA_BENCH_SCALE (defaults: 1e6 + 1e6).
//
// Expected shape (paper): CPMA ~3x C-PaC on average; PMA ~1.5x P-trees;
// PMA/CPMA win most at small-to-medium batches, trees catch up at the
// largest batches.
//
// Machine-readable output: one RESULT line per (structure, batch size) for
// scripts/run_bench.py, carrying throughput and — for the PMA/CPMA engines —
// the batch pipeline's phase breakdown, so tracked regressions are
// attributable to route/merge/count/redistribute. CPMA_BENCH_STRUCTS
// (comma-separated) restricts the structures; the comparative table prints
// only when all five run.
#include <cstdio>
#include <vector>

#include "baselines/pactree.hpp"
#include "baselines/ptree.hpp"
#include "bench_common.hpp"
#include "pma/cpma.hpp"
#include "util/table.hpp"

namespace {

struct RowResult {
  double tp = 0;
  bool has_phases = false;
  cpma::pma::BatchPhaseTimes phases;
};

template <typename S>
RowResult run_row(const std::vector<uint64_t>& base,
                  const std::vector<uint64_t>& inserts, uint64_t batch_size) {
  RowResult r;
  for (int t = 0; t < bench::trials(); ++t) {
    S s;
    std::vector<uint64_t> b = base;
    s.insert_batch(b.data(), b.size());
    if constexpr (requires { s.reset_batch_phase_times(); }) {
      s.reset_batch_phase_times();
    }
    double tp = bench::batch_insert_throughput(s, inserts, batch_size);
    if (tp > r.tp) {
      r.tp = tp;
      if constexpr (requires { s.batch_phase_times(); }) {
        r.has_phases = true;
        r.phases = s.batch_phase_times();
      }
    }
  }
  return r;
}

void emit_result(const char* name, uint64_t batch, const RowResult& r) {
  std::printf("RESULT bench=batch_insert struct=%s batch=%llu "
              "inserts_per_s=%.6e",
              name, (unsigned long long)batch, r.tp);
  if (r.has_phases) {
    const auto& p = r.phases;
    std::printf(" route_ns=%llu merge_ns=%llu count_ns=%llu "
                "redistribute_ns=%llu spread_ns=%llu rebuild_ns=%llu "
                "batches=%llu rebuilds=%llu spreads=%llu",
                (unsigned long long)p.route_ns, (unsigned long long)p.merge_ns,
                (unsigned long long)p.count_ns,
                (unsigned long long)p.redistribute_ns,
                (unsigned long long)p.spread_ns,
                (unsigned long long)p.rebuild_ns,
                (unsigned long long)p.batches,
                (unsigned long long)p.rebuilds,
                (unsigned long long)p.spreads);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::print_config_line("Figure 1 / Table 9: batch-insert throughput");
  auto base = bench::uniform_keys(bench::base_n(), 1);
  auto inserts = bench::uniform_keys(bench::insert_n(), 2);

  std::vector<uint64_t> batch_sizes{10, 100, 1000, 10000, 100000, 1000000};
  if (bench::insert_n() >= 10'000'000) batch_sizes.push_back(10'000'000);

  const bool ptree_on = bench::struct_enabled("ptree");
  const bool upac_on = bench::struct_enabled("upac");
  const bool pma_on = bench::struct_enabled("pma");
  const bool cpac_on = bench::struct_enabled("cpac");
  const bool cpma_on = bench::struct_enabled("cpma");
  const bool all_on = ptree_on && upac_on && pma_on && cpac_on && cpma_on;

  cpma::util::Table table({"batch", "P-tree", "U-PaC", "PMA", "PMA/P-tree",
                           "C-PaC", "CPMA", "CPMA/C-PaC", "CPMA/PMA"});
  if (all_on) table.print_header();
  for (uint64_t bs : batch_sizes) {
    RowResult ptree, upac, pma, cpac, cc;
    if (ptree_on) {
      ptree = run_row<cpma::baselines::PTree>(base, inserts, bs);
      emit_result("ptree", bs, ptree);
    }
    if (upac_on) {
      upac = run_row<cpma::baselines::UPacTree>(base, inserts, bs);
      emit_result("upac", bs, upac);
    }
    if (pma_on) {
      pma = run_row<cpma::PMA>(base, inserts, bs);
      emit_result("pma", bs, pma);
    }
    if (cpac_on) {
      cpac = run_row<cpma::baselines::CPacTree>(base, inserts, bs);
      emit_result("cpac", bs, cpac);
    }
    if (cpma_on) {
      cc = run_row<cpma::CPMA>(base, inserts, bs);
      emit_result("cpma", bs, cc);
    }
    if (!all_on) continue;
    table.cell_u64(bs);
    table.cell_sci(ptree.tp);
    table.cell_sci(upac.tp);
    table.cell_sci(pma.tp);
    table.cell_ratio(pma.tp / ptree.tp);
    table.cell_sci(cpac.tp);
    table.cell_sci(cc.tp);
    table.cell_ratio(cc.tp / cpac.tp);
    table.cell_ratio(cc.tp / pma.tp);
    table.end_row();
  }
  return 0;
}
