// Figure 1 / Table 9: parallel batch-insert throughput as a function of
// batch size, for P-trees, U-PaC, C-PaC, PMA, and CPMA.
//
// Paper protocol: start with 1e8 uniform-random 40-bit keys, insert 1e8 more
// in batches of the given size; report inserts/second. Scaled here by
// CPMA_BENCH_SCALE (defaults: 1e6 + 1e6).
//
// Expected shape (paper): CPMA ~3x C-PaC on average; PMA ~1.5x P-trees;
// PMA/CPMA win most at small-to-medium batches, trees catch up at the
// largest batches.
//
// Machine-readable output: one RESULT line per (structure, batch size) for
// scripts/run_bench.py, carrying throughput and — for the PMA/CPMA engines —
// the batch pipeline's phase breakdown, so tracked regressions are
// attributable to route/merge/count/redistribute. CPMA_BENCH_STRUCTS
// (comma-separated) restricts the structures; the comparative table prints
// only when all five run.
#include <cstdio>
#include <vector>

#include "baselines/pactree.hpp"
#include "baselines/ptree.hpp"
#include "bench_common.hpp"
#include "pma/cpma.hpp"
#include "util/table.hpp"

namespace {

struct RowResult {
  double tp = 0;
  bool has_phases = false;
  cpma::pma::BatchPhaseTimes phases;
  bool has_spread = false;
  bench::ShardSpread spread;
};

template <typename S>
RowResult run_row_with(const std::vector<uint64_t>& base,
                       const std::vector<uint64_t>& inserts,
                       uint64_t batch_size, auto make) {
  RowResult r;
  for (int t = 0; t < bench::trials(); ++t) {
    S s = make();
    std::vector<uint64_t> b = base;
    s.insert_batch(b.data(), b.size());
    if constexpr (requires { s.reset_batch_phase_times(); }) {
      s.reset_batch_phase_times();
    }
    double tp = bench::batch_insert_throughput(s, inserts, batch_size);
    if (tp > r.tp) {
      r.tp = tp;
      if constexpr (requires { s.batch_phase_times(); }) {
        r.has_phases = true;
        r.phases = s.batch_phase_times();
      }
      if constexpr (requires { s.shard_content_bytes(); }) {
        r.has_spread = true;
        r.spread = bench::shard_spread(s);
      }
    }
  }
  return r;
}

template <typename S>
RowResult run_row(const std::vector<uint64_t>& base,
                  const std::vector<uint64_t>& inserts, uint64_t batch_size) {
  return run_row_with<S>(base, inserts, batch_size, [] { return S{}; });
}

void emit_result(const char* name, uint64_t batch, const RowResult& r,
                 uint64_t shards = 0) {
  std::printf("RESULT bench=batch_insert struct=%s ", name);
  if (shards > 0) std::printf("shards=%llu ", (unsigned long long)shards);
  std::printf("batch=%llu inserts_per_s=%.6e", (unsigned long long)batch,
              r.tp);
  if (r.has_spread) {
    std::printf(" min_shard_bytes=%llu max_shard_bytes=%llu",
                (unsigned long long)r.spread.min_bytes,
                (unsigned long long)r.spread.max_bytes);
  }
  if (r.has_phases) {
    const auto& p = r.phases;
    std::printf(" route_ns=%llu merge_ns=%llu count_ns=%llu "
                "redistribute_ns=%llu spread_ns=%llu rebuild_ns=%llu "
                "batches=%llu rebuilds=%llu spreads=%llu",
                (unsigned long long)p.route_ns, (unsigned long long)p.merge_ns,
                (unsigned long long)p.count_ns,
                (unsigned long long)p.redistribute_ns,
                (unsigned long long)p.spread_ns,
                (unsigned long long)p.rebuild_ns,
                (unsigned long long)p.batches,
                (unsigned long long)p.rebuilds,
                (unsigned long long)p.spreads);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::print_config_line("Figure 1 / Table 9: batch-insert throughput");
  auto base = bench::uniform_keys(bench::base_n(), 1);
  auto inserts = bench::uniform_keys(bench::insert_n(), 2);

  std::vector<uint64_t> batch_sizes{10, 100, 1000, 10000, 100000, 1000000};
  if (bench::insert_n() >= 10'000'000) batch_sizes.push_back(10'000'000);

  const bool ptree_on = bench::struct_enabled("ptree");
  const bool upac_on = bench::struct_enabled("upac");
  const bool pma_on = bench::struct_enabled("pma");
  const bool cpac_on = bench::struct_enabled("cpac");
  const bool cpma_on = bench::struct_enabled("cpma");
  const bool spma_on = bench::struct_enabled("sharded_pma");
  const bool scpma_on = bench::struct_enabled("sharded_cpma");
  const bool all_on = ptree_on && upac_on && pma_on && cpac_on && cpma_on;
  const std::vector<uint64_t> shard_counts = bench::shard_counts();

  cpma::util::Table table({"batch", "P-tree", "U-PaC", "PMA", "PMA/P-tree",
                           "C-PaC", "CPMA", "CPMA/C-PaC", "CPMA/PMA"});
  if (all_on) table.print_header();
  for (uint64_t bs : batch_sizes) {
    RowResult ptree, upac, pma, cpac, cc;
    if (ptree_on) {
      ptree = run_row<cpma::baselines::PTree>(base, inserts, bs);
      emit_result("ptree", bs, ptree);
    }
    if (upac_on) {
      upac = run_row<cpma::baselines::UPacTree>(base, inserts, bs);
      emit_result("upac", bs, upac);
    }
    if (pma_on) {
      pma = run_row<cpma::PMA>(base, inserts, bs);
      emit_result("pma", bs, pma);
    }
    if (cpac_on) {
      cpac = run_row<cpma::baselines::CPacTree>(base, inserts, bs);
      emit_result("cpac", bs, cpac);
    }
    if (cpma_on) {
      cc = run_row<cpma::CPMA>(base, inserts, bs);
      emit_result("cpma", bs, cc);
    }
    // Sharded rows: one per shard count, same protocol. shards=1 tracks the
    // router overhead against the engine rows; larger counts track the
    // sibling-task fan-out (and report the shard imbalance they ended at).
    for (uint64_t sc : shard_counts) {
      cpma::pma::ShardedSettings st;
      st.num_shards = sc;
      if (spma_on) {
        RowResult r = run_row_with<cpma::SPMA>(
            base, inserts, bs, [&] { return cpma::SPMA(st); });
        emit_result("sharded_pma", bs, r, sc);
      }
      if (scpma_on) {
        RowResult r = run_row_with<cpma::SCPMA>(
            base, inserts, bs, [&] { return cpma::SCPMA(st); });
        emit_result("sharded_cpma", bs, r, sc);
      }
    }
    if (!all_on) continue;
    table.cell_u64(bs);
    table.cell_sci(ptree.tp);
    table.cell_sci(upac.tp);
    table.cell_sci(pma.tp);
    table.cell_ratio(pma.tp / ptree.tp);
    table.cell_sci(cpac.tp);
    table.cell_sci(cc.tp);
    table.cell_ratio(cc.tp / cpac.tp);
    table.cell_ratio(cc.tp / pma.tp);
    table.end_row();
  }
  return 0;
}
