// Point-query throughput: single-key has/successor and the amortized batch
// forms (has_batch / successor_batch), per structure and distribution.
//
// The per-op rows are the read-side twin of bench_micro_ops' point rows and
// the Eytzinger kernel's acceptance gauge: the same binary run with
// CPMA_EYTZINGER=0 takes the flat head-index descent (pre-batch-engine
// behavior), so two runs of this bench isolate the layout's effect on the
// same build. The eytz= field on every RESULT line records which kernel
// answered, making tracked snapshots self-describing.
//
// The batch rows time ONE has_batch/successor_batch call over a sorted query
// batch against a parallel per-op loop over the same batch — both use the
// whole machine, so the ratio is pure amortization (shared routing gallop +
// one decode per touched leaf), not parallelism.
//
// Scenario rows beyond uniform:
//   dist=zipf    hot-key lookups (YCSB-style alpha=0.99 probes against a
//                structure that also holds a zipf sample: the hot keys hit)
//   dist=recent  monotone-append tail: structure carries an appended suffix
//                above the uniform base; successor probes land in it — the
//                "query the newest data" pattern of streaming ingest.
//
// RESULT lines feed scripts/run_bench.py; ops_per_s is compared by
// scripts/compare_bench.py against the tracked BENCH_point_query.json.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "pma/cpma.hpp"
#include "pma/settings.hpp"

namespace {

uint64_t query_n() {
  return cpma::util::env_u64("CPMA_BENCH_QUERY_N",
                             cpma::util::scaled(1'000'000));
}

// SERIAL per-op loop; returns ops/second. Single-threaded on purpose: these
// rows measure per-lookup latency (the serving point-read path and the
// descent kernel's single-core cache behavior). A parallel loop here would
// be DRAM-bandwidth-bound and bury the descent difference; the machine-wide
// form is what the mode=batch rows measure. `sink` defeats dead-code
// elimination.
template <typename S>
double per_op_has(const S& s, const std::vector<uint64_t>& q) {
  uint64_t sink = 0;
  cpma::util::Timer t;
  for (uint64_t i = 0; i < q.size(); ++i) sink += s.has(q[i]);
  double secs = t.elapsed_seconds();
  volatile uint64_t keep = sink;
  (void)keep;
  return static_cast<double>(q.size()) / secs;
}

template <typename S>
double per_op_successor(const S& s, const std::vector<uint64_t>& q) {
  uint64_t sink = 0;
  cpma::util::Timer t;
  for (uint64_t i = 0; i < q.size(); ++i) {
    auto v = s.successor(q[i]);
    if (v) sink += *v;
  }
  double secs = t.elapsed_seconds();
  volatile uint64_t keep = sink;
  (void)keep;
  return static_cast<double>(q.size()) / secs;
}

// One call per `chunk` keys; chunk == q.size() is the single-call form,
// chunk == 1 degenerates to the per-op API cost.
template <typename S>
double batch_has(const S& s, const std::vector<uint64_t>& q, uint64_t chunk) {
  std::vector<uint64_t> bits((q.size() + 63) / 64, 0);
  cpma::util::Timer t;
  for (uint64_t off = 0; off < q.size(); off += chunk) {
    uint64_t len = std::min<uint64_t>(chunk, q.size() - off);
    s.has_batch(q.data() + off, len, bits.data(), off);
  }
  return static_cast<double>(q.size()) / t.elapsed_seconds();
}

template <typename S>
double batch_successor(const S& s, const std::vector<uint64_t>& q,
                       uint64_t chunk) {
  std::vector<uint64_t> out(q.size());
  std::vector<uint64_t> found((q.size() + 63) / 64, 0);
  cpma::util::Timer t;
  for (uint64_t off = 0; off < q.size(); off += chunk) {
    uint64_t len = std::min<uint64_t>(chunk, q.size() - off);
    s.successor_batch(q.data() + off, len, out.data() + off, found.data(),
                      off);
  }
  return static_cast<double>(q.size()) / t.elapsed_seconds();
}

void emit(const char* name, const char* op, const char* dist, const char* mode,
          uint64_t batch, double tp, uint64_t shards = 0) {
  std::printf("RESULT bench=point_query struct=%s ", name);
  if (shards > 0) std::printf("shards=%llu ", (unsigned long long)shards);
  std::printf("op=%s dist=%s mode=%s ", op, dist, mode);
  if (batch > 0) std::printf("batch=%llu ", (unsigned long long)batch);
  std::printf("eytz=%s ops_per_s=%.6e\n",
              cpma::pma::eytzinger_enabled() ? "on" : "off", tp);
}

// Each distribution in two orders: the per-op rows probe in arrival (random)
// order — a sorted probe stream would hand the per-op descent near-perfect
// branch and cache locality no real point-lookup workload has — while the
// batch APIs take the sorted form their contract requires (the sort is the
// client's cost of admission to the amortized path, done once off-clock
// here, exactly like the routed insert path's presorted batches).
struct ProbeSet {
  std::vector<uint64_t> raw;
  std::vector<uint64_t> sorted;
};

struct QuerySets {
  ProbeSet uniform;  // 40-bit uniform probes
  ProbeSet zipf;     // zipf probes (hot keys repeat)
  ProbeSet recent;   // probes inside the appended monotone tail
};

// All structures hold the same key set: uniform base + zipf sample + a
// monotone tail appended above the 40-bit space.
template <typename S, typename Make>
void run_struct(const char* name, const std::vector<uint64_t>& content,
                const QuerySets& qs, Make make, uint64_t shards = 0) {
  S s = make();
  std::vector<uint64_t> b = content;
  s.insert_batch(b.data(), b.size());

  struct Dist {
    const char* name;
    const ProbeSet* q;
    bool successor_rows;  // recent is the successor scenario; zipf the has one
    bool has_rows;
  };
  const Dist dists[] = {
      {"uniform", &qs.uniform, true, true},
      {"zipf", &qs.zipf, false, true},
      {"recent", &qs.recent, true, false},
  };
  const uint64_t big = 10'000;
  for (const Dist& d : dists) {
    double po_has = 0, b1_has = 0, bn_has = 0;
    double po_suc = 0, bn_suc = 0;
    for (int t = 0; t < bench::trials(); ++t) {
      if (d.has_rows) {
        po_has = std::max(po_has, per_op_has(s, d.q->raw));
        bn_has = std::max(bn_has, batch_has(s, d.q->sorted, big));
        if (d.q == &qs.uniform) {
          b1_has = std::max(b1_has, batch_has(s, d.q->sorted, 1));
        }
      }
      if (d.successor_rows) {
        po_suc = std::max(po_suc, per_op_successor(s, d.q->raw));
        bn_suc = std::max(bn_suc, batch_successor(s, d.q->sorted, big));
      }
    }
    if (d.has_rows) {
      emit(name, "has", d.name, "per_op", 0, po_has, shards);
      emit(name, "has", d.name, "batch", big, bn_has, shards);
      if (d.q == &qs.uniform) {
        emit(name, "has", d.name, "batch", 1, b1_has, shards);
      }
    }
    if (d.successor_rows) {
      emit(name, "successor", d.name, "per_op", 0, po_suc, shards);
      emit(name, "successor", d.name, "batch", big, bn_suc, shards);
    }
  }
}

}  // namespace

int main() {
  bench::print_config_line("point-query throughput (has/successor, batched)");
  const uint64_t qn = query_n();

  // Content: uniform base + zipf sample (so zipf probes hit their hot keys)
  // + a monotone tail of base_n/8 keys appended above the 40-bit space.
  std::vector<uint64_t> content = bench::uniform_keys(bench::base_n(), 11);
  {
    std::vector<uint64_t> z = bench::zipf_keys(bench::base_n() / 4, 13);
    content.insert(content.end(), z.begin(), z.end());
    const uint64_t tail_n = bench::base_n() / 8;
    const uint64_t tail_base = uint64_t{1} << 40;
    for (uint64_t i = 0; i < tail_n; ++i) {
      content.push_back(tail_base + 3 * i);  // gaps: successor has work to do
    }
  }

  QuerySets qs;
  qs.uniform.raw = bench::uniform_keys(qn, 17);
  qs.zipf.raw = bench::zipf_keys(qn, 19);
  {
    const uint64_t tail_n = bench::base_n() / 8;
    const uint64_t tail_base = uint64_t{1} << 40;
    qs.recent.raw.resize(qn);
    for (uint64_t i = 0; i < qn; ++i) {
      qs.recent.raw[i] =
          tail_base + cpma::util::hash64(0x5eed + i) % (3 * tail_n);
    }
  }
  for (ProbeSet* p : {&qs.uniform, &qs.zipf, &qs.recent}) {
    p->sorted = p->raw;
    std::sort(p->sorted.begin(), p->sorted.end());
  }

  if (bench::struct_enabled("pma")) {
    run_struct<cpma::PMA>("pma", content, qs, [] { return cpma::PMA{}; });
  }
  if (bench::struct_enabled("cpma")) {
    run_struct<cpma::CPMA>("cpma", content, qs, [] { return cpma::CPMA{}; });
  }
  if (bench::struct_enabled("acpma")) {
    run_struct<cpma::ACPMA>("acpma", content, qs,
                            [] { return cpma::ACPMA{}; });
  }
  if (bench::struct_enabled("sharded_cpma")) {
    for (uint64_t sc : bench::shard_counts()) {
      cpma::pma::ShardedSettings st;
      st.num_shards = sc;
      run_struct<cpma::SCPMA>("sharded_cpma", content, qs,
                              [&] { return cpma::SCPMA(st); }, sc);
    }
  }
  return 0;
}
