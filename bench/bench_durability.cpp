// Durability bench: WAL-on ingest overhead, checkpoint throughput, and
// crash-recovery speed, on real files through io::PosixVfs.
//
// Protocol per (engine, shards): preload BASE_N uniform keys, then stream
// INSERT_N more in batch=10000 batches (the serving bench's merge regime)
// and report, one RESULT row per wal mode:
//
//   wal=off       plain ServingPMA ingest — the same-run reference the
//                 serving-latency snapshot's clients=0 rows track; the
//                 wal=interval ingest ratio is judged against this
//                 (acceptance: within 0.9x).
//   wal=interval  DurablePMA with the default group-commit fsync policy
//                 (kInterval). The same row also times a full checkpoint
//                 of the loaded store (ckpt_bytes_per_s), then ingests a
//                 WAL tail of INSERT_N/2 more keys, syncs, drops the
//                 store, and times a cold reopen — checkpoint load + WAL
//                 replay + fresh post-recovery checkpoint —
//                 as recover_keys_per_s over the recovered key count.
//   wal=always    fsync on every record: the latency floor of per-batch
//                 durability, reported for attribution only.
//
// RESULT lines feed scripts/run_bench.py; every *_per_s field is compared
// higher-is-better by scripts/compare_bench.py. Scratch files live under
// CPMA_BENCH_DURABLE_DIR (default bench_durability_tmp/ in the cwd) and
// are wiped before each trial.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "pma/cpma.hpp"
#include "util/timer.hpp"

namespace {

constexpr uint64_t kBatchSize = 10'000;

struct DurResult {
  double ingest_per_s = 0;
  double ckpt_bytes_per_s = 0;
  uint64_t ckpt_bytes = 0;
  double recover_keys_per_s = 0;
  uint64_t recovered_keys = 0;
  uint64_t replay_records = 0;
  uint64_t wal_bytes = 0;
  uint64_t wal_syncs = 0;
};

std::string scratch_dir() {
  const char* v = std::getenv("CPMA_BENCH_DURABLE_DIR");
  return (v == nullptr || *v == '\0') ? "bench_durability_tmp" : v;
}

void wipe(cpma::durable::io::Vfs& vfs, const std::string& dir) {
  std::vector<std::string> names;
  if (!vfs.list(dir, names).ok()) return;
  for (const std::string& name : names) vfs.remove(dir + "/" + name);
}

template <typename S>
double timed_ingest(S& s, const std::vector<uint64_t>& inserts) {
  std::vector<uint64_t> scratch;
  cpma::util::Timer t;
  for (uint64_t off = 0; off < inserts.size(); off += kBatchSize) {
    const uint64_t len = std::min<uint64_t>(kBatchSize, inserts.size() - off);
    scratch.assign(inserts.begin() + off, inserts.begin() + off + len);
    s.insert_batch(std::move(scratch));
    scratch.clear();
  }
  return static_cast<double>(inserts.size()) / t.elapsed_seconds();
}

// The wal=off reference: the serving layer alone, same shards, no
// durability observer — the clients=0 protocol of bench_serving_latency.
template <typename Engine>
double run_reference(const std::vector<uint64_t>& base,
                     const std::vector<uint64_t>& inserts, uint64_t shards) {
  double best = 0;
  for (int trial = 0; trial < bench::trials(); ++trial) {
    cpma::serve::ServingSettings cfg;
    cfg.sharded.num_shards = shards;
    cpma::serve::ServingPMA<Engine> serving(cfg);
    std::vector<uint64_t> b = base;
    serving.insert_batch(std::move(b));
    best = std::max(best, timed_ingest(serving, inserts));
  }
  return best;
}

template <typename Engine>
DurResult run_durable(cpma::durable::io::Vfs& vfs, const std::string& dir,
                      const std::vector<uint64_t>& base,
                      const std::vector<uint64_t>& inserts,
                      const std::vector<uint64_t>& tail, uint64_t shards,
                      cpma::durable::FsyncPolicy policy) {
  namespace dur = cpma::durable;
  DurResult best;
  for (int trial = 0; trial < bench::trials(); ++trial) {
    wipe(vfs, dir);
    dur::DurableSettings cfg;
    cfg.serving.sharded.num_shards = shards;
    cfg.wal.policy = policy;
    if (policy == dur::FsyncPolicy::kInterval) {
      // Group commit sized so the fsync cadence amortizes at merge-regime
      // ingest (a few syncs per second at the measured rates). The library
      // default stays much tighter (1 MiB / 50 ms) for a smaller loss
      // window; both knobs still yield to an explicit env override.
      cfg.wal.interval_bytes =
          cpma::util::env_u64("CPMA_WAL_INTERVAL_BYTES", 8u << 20);
      cfg.wal.interval_ns =
          cpma::util::env_u64("CPMA_WAL_INTERVAL_NS", 1'000'000'000);
    }
    DurResult r;
    {
      dur::DurablePMA<Engine> d(vfs, dir, cfg);
      std::vector<uint64_t> b = base;
      d.insert_batch(std::move(b));
      r.ingest_per_s = timed_ingest(d, inserts);

      cpma::util::Timer ct;
      if (d.checkpoint().ok()) {
        const double ckpt_seconds = ct.elapsed_seconds();
        r.ckpt_bytes = d.stats().checkpoint_bytes;
        r.ckpt_bytes_per_s =
            static_cast<double>(r.ckpt_bytes) / ckpt_seconds;
      }

      // WAL tail beyond the checkpoint, batched like the ingest stream, so
      // the timed reopen replays a real record sequence instead of just
      // loading the checkpoint.
      timed_ingest(d, tail);
      d.sync_wal();
      const dur::DurableStats st = d.stats();
      r.wal_bytes = st.wal_bytes;
      r.wal_syncs = st.wal_syncs;
    }
    {
      cpma::util::Timer rt;
      dur::DurablePMA<Engine> d(vfs, dir, cfg);
      const double recover_seconds = rt.elapsed_seconds();
      r.recovered_keys = d.size();
      r.recover_keys_per_s =
          static_cast<double>(r.recovered_keys) / recover_seconds;
      r.replay_records = d.recovery_report().records_replayed;
    }
    if (r.ingest_per_s > best.ingest_per_s) best = r;
  }
  wipe(vfs, dir);
  return best;
}

void emit_durable(const char* name, uint64_t shards, const char* wal,
                  const DurResult& r) {
  std::printf("RESULT bench=durability struct=%s shards=%llu batch=%llu "
              "wal=%s ingest_per_s=%.6e",
              name, (unsigned long long)shards,
              (unsigned long long)kBatchSize, wal, r.ingest_per_s);
  if (r.ckpt_bytes_per_s > 0) {
    std::printf(" ckpt_bytes_per_s=%.6e ckpt_bytes=%llu", r.ckpt_bytes_per_s,
                (unsigned long long)r.ckpt_bytes);
  }
  if (r.recovered_keys > 0) {
    std::printf(" recover_keys_per_s=%.6e recovered_keys=%llu "
                "replay_records=%llu",
                r.recover_keys_per_s, (unsigned long long)r.recovered_keys,
                (unsigned long long)r.replay_records);
  }
  std::printf(" wal_bytes=%llu wal_syncs=%llu\n",
              (unsigned long long)r.wal_bytes,
              (unsigned long long)r.wal_syncs);
}

template <typename Engine>
void run_struct(const char* name, cpma::durable::io::Vfs& vfs,
                const std::string& dir, const std::vector<uint64_t>& base,
                const std::vector<uint64_t>& inserts,
                const std::vector<uint64_t>& tail, uint64_t shards) {
  namespace dur = cpma::durable;
  const double ref = run_reference<Engine>(base, inserts, shards);
  std::printf("RESULT bench=durability struct=%s shards=%llu batch=%llu "
              "wal=off ingest_per_s=%.6e\n",
              name, (unsigned long long)shards,
              (unsigned long long)kBatchSize, ref);

  DurResult interval = run_durable<Engine>(vfs, dir, base, inserts, tail,
                                           shards, dur::FsyncPolicy::kInterval);
  emit_durable(name, shards, "interval", interval);
  if (ref > 0) {
    std::printf("# %s shards=%llu wal=interval ingest overhead: %.3fx of "
                "wal=off (acceptance: >= 0.9x)\n",
                name, (unsigned long long)shards,
                interval.ingest_per_s / ref);
  }

  DurResult always = run_durable<Engine>(vfs, dir, base, inserts, tail,
                                         shards, dur::FsyncPolicy::kAlways);
  emit_durable(name, shards, "always", always);
}

}  // namespace

int main() {
  bench::print_config_line("durability: WAL ingest / checkpoint / recovery");
  const auto base = bench::uniform_keys(bench::base_n(), 1);
  const auto inserts = bench::uniform_keys(bench::insert_n(), 2);
  const auto tail = bench::uniform_keys(bench::insert_n() / 2, 3);

  cpma::durable::io::PosixVfs vfs;
  const std::string dir = scratch_dir();

  for (uint64_t sc : bench::shard_counts()) {
    if (bench::struct_enabled("durable_pma")) {
      run_struct<cpma::PMA>("durable_pma", vfs, dir, base, inserts, tail, sc);
    }
    if (bench::struct_enabled("durable_cpma")) {
      run_struct<cpma::CPMA>("durable_cpma", vfs, dir, base, inserts, tail,
                             sc);
    }
    if (bench::struct_enabled("durable_acpma")) {
      run_struct<cpma::ACPMA>("durable_acpma", vfs, dir, base, inserts, tail,
                              sc);
    }
  }
  return 0;
}
