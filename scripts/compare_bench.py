#!/usr/bin/env python3
"""Compare a fresh BENCH_*.json against a committed snapshot.

Records are matched on their identifying fields (every string-valued field
plus integer dimensions like batch= / shards= / clients=). Every *_per_s
throughput field is compared as new/old and every *_p50_ns / *_p99_ns
latency field as old/new, so a ratio >= 1.0 always means "no worse than the
snapshot". Exits 1 when any matched value falls below --tolerance — CI runs this with continue-on-error so the
comparison is informative, not blocking (snapshots come from different
hardware than the runners).

With --github-summary, a markdown table of the comparison is appended to the
file named by $GITHUB_STEP_SUMMARY (or printed, when the variable is unset),
so the result is readable from the workflow run page without digging through
logs.

Usage:
    scripts/compare_bench.py BENCH_batch_insert.json fresh.json
    scripts/compare_bench.py old.json new.json --tolerance 0.8 --github-summary
"""

import argparse
import json
import os
import sys

# Dimension keys that identify a record (when present) in addition to all
# string-valued fields. "len" separates the range-query rows, which differ
# only in their expected range length; "batch" likewise separates the batched
# point-query rows from each other.
ID_INT_KEYS = {"batch", "shards", "cores", "clients", "len"}


def record_id(record):
    parts = []
    for key in sorted(record):
        value = record[key]
        if isinstance(value, str) or key in ID_INT_KEYS:
            parts.append(f"{key}={value}")
    return " ".join(parts)


def throughput_fields(record):
    return {
        k: v
        for k, v in record.items()
        if k.endswith("_per_s") and isinstance(v, (int, float)) and v > 0
    }


def latency_fields(record):
    """Percentile-latency fields (serving p50/p99 rows): lower is better."""
    return {
        k: v
        for k, v in record.items()
        if (k.endswith("_p50_ns") or k.endswith("_p99_ns"))
        and isinstance(v, (int, float))
        and v > 0
    }


def space_fields(record):
    """Space rows (bench_table6_space): bytes_per_key, lower is better.

    Only consulted when a record carries no throughput or latency field, so
    decode-bench rows (which report bytes_per_key as a descriptive field
    next to keys_per_s) keep comparing on throughput alone."""
    if throughput_fields(record) or latency_fields(record):
        return {}
    return {
        k: v
        for k, v in record.items()
        if k == "bytes_per_key" and isinstance(v, (int, float)) and v > 0
    }


def compare(old, new, tolerance):
    """Yields (tag, record_id, field, new_value, old_value, ratio) rows;
    ratio/old_value are None for records absent from the snapshot. Ratios
    are oriented so >= 1.0 always means "no worse than the snapshot":
    new/old for throughput, old/new for latency."""
    old_by_id = {record_id(r): r for r in old.get("results", [])}
    for record in new.get("results", []):
        rid = record_id(record)
        base = old_by_id.get(rid)
        if base is None:
            yield ("NEW", rid, None, None, None, None)
            continue
        for field, value in throughput_fields(record).items():
            base_value = base.get(field)
            if not isinstance(base_value, (int, float)) or base_value <= 0:
                continue
            ratio = value / base_value
            tag = "OK" if ratio >= tolerance else "REGR"
            yield (tag, rid, field, value, base_value, ratio)
        for field, value in latency_fields(record).items():
            base_value = base.get(field)
            if not isinstance(base_value, (int, float)) or base_value <= 0:
                continue
            ratio = base_value / value
            tag = "OK" if ratio >= tolerance else "REGR"
            yield (tag, rid, field, value, base_value, ratio)
        for field, value in space_fields(record).items():
            base_value = base.get(field)
            if not isinstance(base_value, (int, float)) or base_value <= 0:
                continue
            ratio = base_value / value
            tag = "OK" if ratio >= tolerance else "REGR"
            yield (tag, rid, field, value, base_value, ratio)


def write_summary(path, bench_name, rows, tolerance, regressions, compared):
    lines = [
        f"### compare_bench: `{bench_name}` (tolerance {tolerance:.2f}x)",
        "",
        "| status | record | field | new | snapshot | ratio |",
        "|---|---|---|---|---|---|",
    ]
    for tag, rid, field, value, base_value, ratio in rows:
        if field is None:
            lines.append(f"| NEW | `{rid}` | — | — | — | — |")
            continue
        mark = "⚠️ REGR" if tag == "REGR" else "OK"
        lines.append(
            f"| {mark} | `{rid}` | {field} | {value:.3e} | {base_value:.3e} "
            f"| {ratio:.2f}x |"
        )
    lines.append("")
    lines.append(
        f"compared {compared} throughput values, {regressions} below "
        f"{tolerance:.2f}x"
    )
    lines.append("")
    text = "\n".join(lines)
    if path:
        with open(path, "a") as fh:
            fh.write(text + "\n")
    else:
        print(text)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("old", help="committed snapshot JSON")
    parser.add_argument("new", help="freshly produced JSON")
    parser.add_argument("--tolerance", type=float, default=0.8,
                        help="minimum acceptable new/old ratio (default 0.8)")
    parser.add_argument("--github-summary", action="store_true",
                        help="append a markdown table to $GITHUB_STEP_SUMMARY")
    args = parser.parse_args()

    with open(args.old) as fh:
        old = json.load(fh)
    with open(args.new) as fh:
        new = json.load(fh)

    rows = list(compare(old, new, args.tolerance))
    regressions = 0
    compared = 0
    for tag, rid, field, value, base_value, ratio in rows:
        if field is None:
            print(f"NEW       {rid} (no snapshot record)")
            continue
        compared += 1
        if tag == "REGR":
            regressions += 1
        print(f"{tag:<5} {rid} {field}: {value:.3e} vs {base_value:.3e} "
              f"({ratio:.2f}x)")
    print(f"compared {compared} throughput values, {regressions} below "
          f"{args.tolerance:.2f}x")

    if args.github_summary:
        write_summary(os.environ.get("GITHUB_STEP_SUMMARY"),
                      new.get("bench") or args.new, rows, args.tolerance,
                      regressions, compared)
    sys.exit(1 if regressions else 0)


if __name__ == "__main__":
    main()
