#!/usr/bin/env python3
"""Compare a fresh BENCH_*.json against a committed snapshot.

Records are matched on their identifying fields (every string-valued field
plus integer dimensions like batch=), and every *_per_s throughput field is
compared as new/old. Exits 1 when any matched throughput falls below
--tolerance of the snapshot — CI runs this with continue-on-error so the
comparison is informative, not blocking (snapshots come from different
hardware than the runners).

Usage:
    scripts/compare_bench.py BENCH_batch_insert.json fresh.json
    scripts/compare_bench.py old.json new.json --tolerance 0.8
"""

import argparse
import json
import sys

# Dimension keys that identify a record (when present) in addition to all
# string-valued fields.
ID_INT_KEYS = {"batch"}


def record_id(record):
    parts = []
    for key in sorted(record):
        value = record[key]
        if isinstance(value, str) or key in ID_INT_KEYS:
            parts.append(f"{key}={value}")
    return " ".join(parts)


def throughput_fields(record):
    return {
        k: v
        for k, v in record.items()
        if k.endswith("_per_s") and isinstance(v, (int, float)) and v > 0
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("old", help="committed snapshot JSON")
    parser.add_argument("new", help="freshly produced JSON")
    parser.add_argument("--tolerance", type=float, default=0.8,
                        help="minimum acceptable new/old ratio (default 0.8)")
    args = parser.parse_args()

    with open(args.old) as fh:
        old = json.load(fh)
    with open(args.new) as fh:
        new = json.load(fh)

    old_by_id = {record_id(r): r for r in old.get("results", [])}
    regressions = 0
    compared = 0
    for record in new.get("results", []):
        rid = record_id(record)
        base = old_by_id.get(rid)
        if base is None:
            print(f"NEW       {rid} (no snapshot record)")
            continue
        for field, value in throughput_fields(record).items():
            base_value = base.get(field)
            if not isinstance(base_value, (int, float)) or base_value <= 0:
                continue
            ratio = value / base_value
            compared += 1
            tag = "OK   "
            if ratio < args.tolerance:
                tag = "REGR "
                regressions += 1
            print(f"{tag} {rid} {field}: {value:.3e} vs {base_value:.3e} "
                  f"({ratio:.2f}x)")
    print(f"compared {compared} throughput values, {regressions} below "
          f"{args.tolerance:.2f}x")
    sys.exit(1 if regressions else 0)


if __name__ == "__main__":
    main()
