#!/usr/bin/env python3
"""Run a benchmark binary and persist its RESULT lines as JSON.

Benchmarks print machine-parsable lines of the form

    RESULT bench=leaf_decode dist=dense mode=block keys_per_s=1.234e+09 ...

This harness runs the binary, parses every RESULT line into a record
(numbers are converted when they parse), and writes BENCH_<name>.json next
to the repo root — the perf-trajectory artifacts successive PRs compare
against.

Usage:
    scripts/run_bench.py                          # bench_leaf_decode, ./build
    scripts/run_bench.py --bench bench_leaf_decode --build-dir build \
        --out BENCH_leaf_decode.json
Extra CPMA_BENCH_* environment knobs pass straight through to the binary.
"""

import argparse
import datetime
import json
import os
import platform
import subprocess
import sys


def parse_result_line(line):
    record = {}
    for token in line.split()[1:]:  # skip the RESULT tag
        if "=" not in token:
            continue
        key, value = token.split("=", 1)
        for cast in (int, float):
            try:
                value = cast(value)
                break
            except ValueError:
                continue
        record[key] = value
    return record


def git_revision():
    try:
        return subprocess.check_output(
            ["git", "rev-parse", "--short", "HEAD"], text=True
        ).strip()
    except (subprocess.CalledProcessError, OSError):
        return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", default="bench_leaf_decode",
                        help="benchmark binary name (under <build-dir>/bench)")
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default BENCH_<name>.json)")
    args = parser.parse_args()

    binary = os.path.join(args.build_dir, "bench", args.bench)
    if not os.path.exists(binary):
        sys.exit(
            f"error: {binary} not found — build first: "
            f"cmake -B {args.build_dir} -S . && "
            f"cmake --build {args.build_dir} -j"
        )

    proc = subprocess.run([binary], capture_output=True, text=True)
    sys.stdout.write(proc.stdout)
    sys.stderr.write(proc.stderr)
    if proc.returncode != 0:
        sys.exit(f"error: {binary} exited with {proc.returncode}")

    results = [
        parse_result_line(line)
        for line in proc.stdout.splitlines()
        if line.startswith("RESULT ")
    ]
    if not results:
        sys.exit(f"error: no RESULT lines in {args.bench} output")

    name = args.bench.removeprefix("bench_")
    out_path = args.out or f"BENCH_{name}.json"
    payload = {
        "bench": name,
        "binary": args.bench,
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "host": platform.node(),
        "machine": platform.machine(),
        "git_revision": git_revision(),
        "env": {
            k: v for k, v in os.environ.items() if k.startswith("CPMA_BENCH_")
        },
        "results": results,
    }
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out_path} ({len(results)} records)")


if __name__ == "__main__":
    main()
