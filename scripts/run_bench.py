#!/usr/bin/env python3
"""Run benchmark binaries and persist their RESULT lines as JSON.

Benchmarks print machine-parsable lines of the form

    RESULT bench=leaf_decode dist=dense mode=block keys_per_s=1.234e+09 ...

This harness runs each binary, parses every RESULT line into a record
(numbers are converted when they parse), and writes BENCH_<name>.json next
to the repo root — the perf-trajectory artifacts successive PRs compare
against. <name> is the records' own `bench=` field when present (so
bench_fig1_batch_insert emits BENCH_batch_insert.json), else the binary
name without its bench_ prefix.

Usage:
    scripts/run_bench.py                          # bench_leaf_decode, ./build
    scripts/run_bench.py --bench bench_leaf_decode bench_fig1_batch_insert
    scripts/run_bench.py --bench bench_fig1_batch_insert --out BENCH_x.json
    scripts/run_bench.py --bench bench_fig1_batch_insert --repeat 3
Extra CPMA_BENCH_* environment knobs pass straight through to the binaries
(CPMA_BENCH_STRUCTS=pma,cpma keeps the batch-insert bench to the engines).

--repeat N runs each binary N times and keeps, per RESULT key (the record's
identifying fields), the record from the run with the highest primary
throughput — best-of-N smooths the run-to-run noise that successive-PR
snapshot comparisons otherwise have to eyeball around.
"""

import argparse
import datetime
import json
import os
import platform
import subprocess
import sys


def parse_result_line(line):
    record = {}
    for token in line.split()[1:]:  # skip the RESULT tag
        if "=" not in token:
            continue
        key, value = token.split("=", 1)
        for cast in (int, float):
            try:
                value = cast(value)
                break
            except ValueError:
                continue
        record[key] = value
    return record


# Record identity comes from compare_bench so best-of-N grouping and the
# snapshot comparison can never disagree about what "the same record" is.
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from compare_bench import record_id  # noqa: E402


def primary_throughput(record):
    """Best-of-N selection metric: higher is better.

    Throughput records use their largest *_per_s field. Latency-only
    records (e.g. serving read-latency rows) used to all tie at the 0.0
    default, making best-of-N selection arbitrary; they now rank by
    negated smallest percentile-latency field, so the lowest-latency run
    wins.
    """
    tp = max(
        (
            v
            for k, v in record.items()
            if k.endswith("_per_s") and isinstance(v, (int, float))
        ),
        default=0.0,
    )
    if tp > 0.0:
        return tp
    latencies = [
        v
        for k, v in record.items()
        if (k.endswith("_p50_ns") or k.endswith("_p99_ns"))
        and isinstance(v, (int, float))
        and v > 0
    ]
    if latencies:
        return -min(latencies)
    # Space-only rows (bench_table6_space): smaller footprint wins.
    bpk = record.get("bytes_per_key")
    if isinstance(bpk, (int, float)) and bpk > 0:
        return -bpk
    return 0.0


def merge_best(runs):
    """Best-of-N: per record id, keep the whole record from the fastest run
    (whole record, so phase breakdowns stay consistent with the throughput
    they accompanied). Order follows first appearance."""
    best = {}
    order = []
    for records in runs:
        for record in records:
            rid = record_id(record)
            if rid not in best:
                order.append(rid)
                best[rid] = record
            elif primary_throughput(record) > primary_throughput(best[rid]):
                best[rid] = record
    return [best[rid] for rid in order]


def git_revision():
    try:
        return subprocess.check_output(
            ["git", "rev-parse", "--short", "HEAD"], text=True
        ).strip()
    except (subprocess.CalledProcessError, OSError):
        return None


def run_one(bench, build_dir, out, repeat):
    binary = os.path.join(build_dir, "bench", bench)
    if not os.path.exists(binary):
        sys.exit(
            f"error: {binary} not found — build first: "
            f"cmake -B {build_dir} -S . && "
            f"cmake --build {build_dir} -j"
        )

    runs = []
    for rep in range(repeat):
        if repeat > 1:
            print(f"# {bench}: run {rep + 1}/{repeat}")
        proc = subprocess.run([binary], capture_output=True, text=True)
        sys.stdout.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        if proc.returncode != 0:
            sys.exit(f"error: {binary} exited with {proc.returncode}")
        records = [
            parse_result_line(line)
            for line in proc.stdout.splitlines()
            if line.startswith("RESULT ")
        ]
        if not records:
            sys.exit(f"error: no RESULT lines in {bench} output")
        runs.append(records)
    results = merge_best(runs)

    name = results[0].get("bench") or bench.removeprefix("bench_")
    out_path = out or f"BENCH_{name}.json"
    payload = {
        "bench": name,
        "binary": bench,
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "host": platform.node(),
        "machine": platform.machine(),
        "git_revision": git_revision(),
        "env": {
            k: v for k, v in os.environ.items() if k.startswith("CPMA_BENCH_")
        },
        "repeat": repeat,
        "results": results,
    }
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out_path} ({len(results)} records)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", nargs="+", default=["bench_leaf_decode"],
                        help="benchmark binary names (under <build-dir>/bench)")
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--out", default=None,
                        help="output JSON path (single --bench only; default "
                             "BENCH_<name>.json)")
    parser.add_argument("--repeat", type=int, default=1,
                        help="run each binary N times and keep the best "
                             "record per RESULT key (default 1)")
    args = parser.parse_args()

    if args.out and len(args.bench) > 1:
        sys.exit("error: --out requires a single --bench")
    if args.repeat < 1:
        sys.exit("error: --repeat must be >= 1")
    for bench in args.bench:
        run_one(bench, args.build_dir, args.out, args.repeat)


if __name__ == "__main__":
    main()
