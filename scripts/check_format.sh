#!/usr/bin/env bash
# Reports files that deviate from .clang-format. BLOCKING in CI: a nonzero
# exit fails the format job. Run locally with no args to check, or with
# --fix to rewrite files in place.
set -euo pipefail
cd "$(dirname "$0")/.."

CLANG_FORMAT=${CLANG_FORMAT:-clang-format}
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "check_format: $CLANG_FORMAT not found; skipping" >&2
  exit 0
fi

mapfile -t files < <(git ls-files '*.cpp' '*.hpp')

if [[ "${1:-}" == "--fix" ]]; then
  "$CLANG_FORMAT" -i "${files[@]}"
  echo "check_format: reformatted ${#files[@]} files"
  exit 0
fi

bad=0
for f in "${files[@]}"; do
  if ! "$CLANG_FORMAT" --dry-run --Werror "$f" >/dev/null 2>&1; then
    echo "needs formatting: $f"
    bad=1
  fi
done

if [[ $bad -eq 0 ]]; then
  echo "check_format: all ${#files[@]} files clean"
fi
exit $bad
