// Side-by-side comparison of every set container in this repository on one
// mixed workload — a miniature version of the paper's microbenchmark suite
// that a prospective user can run to pick a structure.
//
//   $ ./examples/set_comparison [n]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "baselines/pactree.hpp"
#include "baselines/ptree.hpp"
#include "pma/cpma.hpp"
#include "util/random.hpp"
#include "util/timer.hpp"

namespace {

template <typename S>
void run(const char* name, uint64_t n) {
  cpma::util::Timer t;
  // Bulk load.
  std::vector<uint64_t> keys(n);
  for (uint64_t i = 0; i < n; ++i) keys[i] = cpma::util::uniform_key(1, i);
  S s;
  s.insert_batch(keys.data(), n);
  double load_ms = t.elapsed_seconds() * 1e3;

  // Batched updates (1% batches).
  t.reset();
  std::vector<uint64_t> batch(n / 100);
  for (int round = 0; round < 10; ++round) {
    for (uint64_t i = 0; i < batch.size(); ++i) {
      batch[i] = cpma::util::uniform_key(2 + round, i);
    }
    s.insert_batch(batch.data(), batch.size());
  }
  double update_ms = t.elapsed_seconds() * 1e3;

  // Full ordered scan.
  t.reset();
  uint64_t sum = s.sum();
  double scan_ms = t.elapsed_seconds() * 1e3;

  // Range queries.
  t.reset();
  uint64_t hits = 0;
  for (int q = 0; q < 1000; ++q) {
    uint64_t start = cpma::util::uniform_key(99, q);
    hits += s.map_range_length([](uint64_t) {}, start, 1000);
  }
  double range_ms = t.elapsed_seconds() * 1e3;

  std::printf("%-7s load %7.1f ms | 10x1%% updates %7.1f ms | scan %6.1f ms "
              "| 1k ranges %6.1f ms | %5.2f B/key (sum=%llx, hits=%llu)\n",
              name, load_ms, update_ms, scan_ms, range_ms,
              (double)s.get_size() / (double)s.size(),
              (unsigned long long)sum, (unsigned long long)hits);
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t n = argc > 1 ? std::atoll(argv[1]) : 2'000'000;
  std::printf("mixed workload, n=%llu 40-bit uniform keys\n",
              (unsigned long long)n);
  run<cpma::CPMA>("CPMA", n);
  run<cpma::PMA>("PMA", n);
  run<cpma::baselines::CPacTree>("C-PaC", n);
  run<cpma::baselines::UPacTree>("U-PaC", n);
  run<cpma::baselines::PTree>("P-tree", n);
  return 0;
}
