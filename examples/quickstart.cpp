// Quickstart: the CPMA as a drop-in dynamic ordered set.
//
//   $ ./examples/quickstart
//
// Walks through the full public API from the paper's artifact appendix:
// construction, point ops, batch ops, ordered scans, range maps, and space
// introspection, printing what each step does.
#include <cstdio>
#include <vector>

#include "pma/cpma.hpp"

int main() {
  // A CPMA is a compressed, batch-parallel ordered set of 64-bit keys.
  cpma::CPMA set;

  // --- point operations ----------------------------------------------------
  set.insert(42);
  set.insert(7);
  set.insert(1000000);
  std::printf("after 3 inserts: size=%llu, has(42)=%d, has(43)=%d\n",
              (unsigned long long)set.size(), set.has(42), set.has(43));

  set.remove(42);
  std::printf("after remove(42): has(42)=%d\n", set.has(42));

  // --- batch operations (the paper's parallel batch-update algorithm) -----
  std::vector<uint64_t> batch;
  for (uint64_t i = 1; i <= 100000; ++i) batch.push_back(i * 13);
  uint64_t added = set.insert_batch(batch.data(), batch.size());
  std::printf("insert_batch of %zu keys: %llu new (size=%llu)\n",
              batch.size(), (unsigned long long)added,
              (unsigned long long)set.size());

  // --- ordered queries -----------------------------------------------------
  // min()/max() return std::optional — nullopt on an empty set (key 0 is a
  // real storable key here, so 0 cannot double as the empty sentinel).
  std::printf("min=%llu max=%llu sum=%llu\n",
              (unsigned long long)set.min().value(),
              (unsigned long long)set.max().value(),
              (unsigned long long)set.sum());
  auto suc = set.successor(1000);
  std::printf("successor(1000) = %llu\n",
              (unsigned long long)(suc ? *suc : 0));

  // --- range maps ----------------------------------------------------------
  uint64_t in_range = 0;
  set.map_range([&](uint64_t) { ++in_range; }, 130, 1300);
  std::printf("keys in [130, 1300): %llu\n", (unsigned long long)in_range);

  uint64_t first5[5] = {0};
  int idx = 0;
  set.map_range_length([&](uint64_t k) { first5[idx++] = k; }, 100, 5);
  std::printf("5 keys starting at >=100: %llu %llu %llu %llu %llu\n",
              (unsigned long long)first5[0], (unsigned long long)first5[1],
              (unsigned long long)first5[2], (unsigned long long)first5[3],
              (unsigned long long)first5[4]);

  // --- iteration & space ---------------------------------------------------
  uint64_t count = 0;
  for (uint64_t k : set) {
    (void)k;
    ++count;
  }
  std::printf("iterated %llu keys; structure uses %.2f bytes/key "
              "(compressed; an uncompressed set would use 8+)\n",
              (unsigned long long)count,
              (double)set.get_size() / (double)set.size());

  // Batch removal.
  uint64_t removed = set.remove_batch(batch.data(), batch.size());
  std::printf("remove_batch: removed %llu, size now %llu\n",
              (unsigned long long)removed, (unsigned long long)set.size());
  return 0;
}
