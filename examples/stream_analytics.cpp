// Stream analytics over skewed key streams — the "large number of requests
// in a short time" use case the paper motivates for batch-parallel sets
// (stream processing / loop join).
//
// A MULTI-STREAM ingest: several zipfian event streams (YCSB parameters, as
// in the paper's skewed experiments) arrive interleaved, each stream keyed
// into its own region of the keyspace (per-tenant id in the high bits).
// Batches are drained round-robin; between batches the application runs
// windowed range aggregations. Compares the single-engine CPMA against the
// keyspace-sharded SCPMA on the same workload: the sharded set routes each
// tenant's slice to (mostly) its own shards and applies the per-shard
// batches as sibling parallel tasks, and its rebalancer keeps the shards
// within the configured byte ratio even though tenants are skewed.
//
//   $ ./examples/stream_analytics [events] [batch] [streams] [shards]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "pma/cpma.hpp"
#include "util/timer.hpp"
#include "util/zipf.hpp"

namespace {

constexpr uint64_t kTenantShift = 40;  // stream id above the 27-bit zipf keys

template <typename Set>
void run(const char* name, Set& set, const std::vector<uint64_t>& stream,
         uint64_t batch_size, uint64_t streams) {
  double insert_secs = 0, query_secs = 0;
  uint64_t windows = 0, window_hits = 0;
  std::vector<uint64_t> batch;
  cpma::util::Timer t;
  for (uint64_t off = 0; off < stream.size(); off += batch_size) {
    uint64_t len = std::min<uint64_t>(batch_size, stream.size() - off);
    batch.assign(stream.begin() + off, stream.begin() + off + len);
    t.reset();
    set.insert_batch(batch.data(), len);
    insert_secs += t.elapsed_seconds();

    // Windowed aggregation per tenant: count and sum over 16 key windows in
    // each tenant's region (cross-shard stitching when windows straddle a
    // splitter).
    t.reset();
    const uint64_t span = (uint64_t{1} << 27) / 16;
    for (uint64_t tenant = 0; tenant < streams; ++tenant) {
      const uint64_t base = tenant << kTenantShift;
      for (int w = 0; w < 16; ++w) {
        uint64_t lo = base + w * span;
        uint64_t cnt = 0, sum = 0;
        set.map_range([&](uint64_t k) {
          ++cnt;
          sum += k;
        }, lo, lo + span / 256);
        window_hits += cnt;
        (void)sum;
        ++windows;
      }
    }
    query_secs += t.elapsed_seconds();
  }
  std::printf("%-6s: %8llu unique keys | ingest %6.1f ms (%.2e ev/s) | "
              "%llu windows %6.1f ms | %.2f bytes/key\n",
              name, (unsigned long long)set.size(), insert_secs * 1e3,
              stream.size() / insert_secs, (unsigned long long)windows,
              query_secs * 1e3,
              (double)set.get_size() / (double)set.size());
  (void)window_hits;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t events = argc > 1 ? std::atoll(argv[1]) : 2'000'000;
  const uint64_t batch = argc > 2 ? std::atoll(argv[2]) : 100'000;
  const uint64_t streams = argc > 3 ? std::atoll(argv[3]) : 4;
  const uint64_t shards = argc > 4 ? std::atoll(argv[4]) : 8;
  std::printf("multi-stream zipfian ingest: %llu events across %llu streams, "
              "batches of %llu (alpha=0.99, 27-bit keys per stream)\n",
              (unsigned long long)events, (unsigned long long)streams,
              (unsigned long long)batch);

  // Interleave the tenants round-robin inside every batch: each stream is
  // zipf-skewed internally AND the tenants have different volumes (tenant t
  // gets streams - t shares, so the heaviest produces streams times the
  // lightest), so the sharded set sees realistic imbalance pressure.
  std::vector<cpma::util::ZipfGenerator> gens;
  for (uint64_t s = 0; s < streams; ++s) {
    gens.emplace_back(uint64_t{1} << 24, 0.99, 7 + s);
  }
  std::vector<uint64_t> stream(events);
  for (uint64_t i = 0; i < events; ++i) {
    // Weighted round-robin: tenant t gets ~(streams - t) shares.
    uint64_t pick = i % (streams * (streams + 1) / 2);
    uint64_t tenant = 0, acc = streams;
    while (pick >= acc) {
      ++tenant;
      acc += streams - tenant;
    }
    stream[i] = (tenant << kTenantShift) | gens[tenant].key(i, 27);
  }

  cpma::CPMA single;
  run("CPMA", single, stream, batch, streams);

  cpma::pma::ShardedSettings st;
  st.num_shards = shards;
  cpma::SCPMA sharded(st);
  run("SCPMA", sharded, stream, batch, streams);

  std::printf("shard content bytes (%llu shards, %llu rebalance passes, "
              "%llu boundary moves):",
              (unsigned long long)sharded.num_shards(),
              (unsigned long long)sharded.router_times().rebalances,
              (unsigned long long)sharded.router_times().moves);
  for (uint64_t b : sharded.shard_content_bytes()) {
    std::printf(" %llu", (unsigned long long)b);
  }
  std::printf("\n(the sharded set ingests each tenant's slice as a sibling "
              "parallel task and keeps shards byte-balanced under skew)\n");
  return 0;
}
