// Stream analytics over a skewed key stream — the "large number of requests
// in a short time" use case the paper motivates for batch-parallel sets
// (stream processing / loop join).
//
// A zipfian event stream (YCSB parameters, as in the paper's skewed
// experiments) arrives in batches; between batches the application runs
// windowed range aggregations. Compares the CPMA against the uncompressed
// PMA on the same workload.
//
//   $ ./examples/stream_analytics [events] [batch]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "pma/cpma.hpp"
#include "util/timer.hpp"
#include "util/zipf.hpp"

namespace {

template <typename Set>
void run(const char* name, const std::vector<uint64_t>& stream,
         uint64_t batch_size) {
  Set set;
  double insert_secs = 0, query_secs = 0;
  uint64_t windows = 0, window_hits = 0;
  std::vector<uint64_t> batch;
  cpma::util::Timer t;
  for (uint64_t off = 0; off < stream.size(); off += batch_size) {
    uint64_t len = std::min<uint64_t>(batch_size, stream.size() - off);
    batch.assign(stream.begin() + off, stream.begin() + off + len);
    t.reset();
    set.insert_batch(batch.data(), len);
    insert_secs += t.elapsed_seconds();

    // Windowed aggregation: count and sum over 64 key windows.
    t.reset();
    const uint64_t span = (uint64_t{1} << 27) / 64;
    for (int w = 0; w < 64; ++w) {
      uint64_t lo = w * span;
      uint64_t cnt = 0, sum = 0;
      set.map_range([&](uint64_t k) {
        ++cnt;
        sum += k;
      }, lo, lo + span / 256);
      window_hits += cnt;
      (void)sum;
      ++windows;
    }
    query_secs += t.elapsed_seconds();
  }
  std::printf("%-5s: %8llu unique keys | ingest %6.1f ms (%.2e ev/s) | "
              "%llu windows %6.1f ms | %.2f bytes/key\n",
              name, (unsigned long long)set.size(), insert_secs * 1e3,
              stream.size() / insert_secs, (unsigned long long)windows,
              query_secs * 1e3,
              (double)set.get_size() / (double)set.size());
  (void)window_hits;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t events = argc > 1 ? std::atoll(argv[1]) : 2'000'000;
  const uint64_t batch = argc > 2 ? std::atoll(argv[2]) : 100'000;
  std::printf("zipfian event stream: %llu events, batches of %llu "
              "(alpha=0.99, 27-bit keys)\n",
              (unsigned long long)events, (unsigned long long)batch);

  cpma::util::ZipfGenerator zipf(uint64_t{1} << 24, 0.99, 7);
  std::vector<uint64_t> stream(events);
  for (uint64_t i = 0; i < events; ++i) stream[i] = zipf.key(i, 27);

  run<cpma::PMA>("PMA", stream, batch);
  run<cpma::CPMA>("CPMA", stream, batch);
  std::printf("(the CPMA ingests comparable or faster and stores the set "
              "in a fraction of the space)\n");
  return 0;
}
