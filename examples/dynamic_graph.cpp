// Streaming dynamic-graph demo: an ingest thread pushes RMAT edge batches
// through the serving CPMA's flat-combining front end while an analytics
// thread concurrently runs BFS / PageRank / connected components on
// epoch-pinned snapshots — readers never block ingest, and every analytics
// cycle reports how far behind the ingest front its pinned view was
// (snapshot age) plus the live streaming-connectivity component count.
//
//   $ ./examples/dynamic_graph [scale] [edges] [batches]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/streaming.hpp"
#include "util/timer.hpp"

using namespace cpma::graph;

int main(int argc, char** argv) {
  const uint32_t scale = argc > 1 ? std::atoi(argv[1]) : 14;
  const uint64_t total_edges = argc > 2 ? std::atoll(argv[2]) : 400'000;
  const int num_batches = argc > 3 ? std::atoi(argv[3]) : 20;
  const vertex_t n = 1u << scale;

  cpma::serve::ServingSettings settings;
  settings.sharded.num_shards = 4;
  StreamingGraphCPMA graph(n, settings);

  std::printf("streaming %llu RMAT edges (scale %u, %d batches) into "
              "StreamingGraph over %llu shards; analytics run concurrently "
              "on pinned snapshots\n",
              (unsigned long long)total_edges, scale, num_batches,
              (unsigned long long)settings.sharded.num_shards);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> ingested{0};

  std::thread ingest([&] {
    const uint64_t per_batch = total_edges / num_batches;
    cpma::util::Timer t;
    for (int b = 0; b < num_batches; ++b) {
      auto batch = symmetrize(rmat_edges(scale, per_batch, 1000 + b));
      graph.insert_edges(std::move(batch));
      graph.flush();
      ingested.fetch_add(per_batch, std::memory_order_relaxed);
    }
    double s = t.elapsed_seconds();
    std::printf("[ingest] %llu edges in %.2f s (%.2f Medges/s), "
                "graph now %llu undirected keys\n",
                (unsigned long long)total_edges, s, total_edges / s / 1e6,
                (unsigned long long)graph.num_edges());
    done.store(true, std::memory_order_release);
  });

  std::thread analytics([&] {
    int cycle = 0;
    while (!done.load(std::memory_order_acquire) || cycle == 0) {
      auto snap = graph.snapshot();
      if (snap.num_edges() == 0) continue;
      cpma::util::Timer t;
      auto depth = bfs(snap, 1);
      auto pr = pagerank(snap);
      auto cc = connected_components(snap);
      uint64_t reached = 0;
      for (int32_t d : depth) reached += d >= 0;
      std::vector<bool> seen(n, false);
      uint64_t comps = 0;
      for (vertex_t v = 0; v < n; ++v) {
        if (!seen[cc[v]]) {
          seen[cc[v]] = true;
          ++comps;
        }
      }
      std::printf("[analytics] cycle %d: snapshot seq=%llu age=%.2f ms, "
                  "%llu edges | BFS reached %llu | %llu components "
                  "(live UF says %llu) | %.1f ms, ingest at %llu edges\n",
                  cycle, (unsigned long long)snap.seq(), snap.age_ns() / 1e6,
                  (unsigned long long)snap.num_edges(),
                  (unsigned long long)reached, (unsigned long long)comps,
                  (unsigned long long)graph.num_components(),
                  t.elapsed_seconds() * 1e3,
                  (unsigned long long)ingested.load(std::memory_order_relaxed));
      ++cycle;
    }
  });

  ingest.join();
  analytics.join();

  // Quiescent wrap-up: one more snapshot, now covering every batch.
  auto snap = graph.snapshot();
  snap.prepare();
  vertex_t src = 0;
  for (vertex_t v = 0; v < n; ++v) {
    if (snap.degree(v) > snap.degree(src)) src = v;
  }
  cpma::util::Timer t;
  auto bc = betweenness_centrality(snap, src);
  double best = 0;
  for (double d : bc) best = d > best ? d : best;
  std::printf("final: BC from max-degree vertex %u in %.1f ms "
              "(max dependency %.1f); connectivity exact=%d, "
              "%llu components\n",
              src, t.elapsed_seconds() * 1e3, best,
              (int)graph.connectivity_exact(),
              (unsigned long long)graph.num_components());
  return 0;
}
