// Dynamic-graph processing with F-Graph (Section 6 of the paper): stream
// RMAT edge batches into a graph stored in a single CPMA, and interleave
// analytics (PageRank, connected components, betweenness centrality) with
// the updates — the phased updates/queries model the paper evaluates.
//
//   $ ./examples/dynamic_graph [scale] [edges] [batches]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/fgraph.hpp"
#include "graph/generators.hpp"
#include "util/timer.hpp"

using namespace cpma::graph;

int main(int argc, char** argv) {
  const uint32_t scale = argc > 1 ? std::atoi(argv[1]) : 16;
  const uint64_t total_edges = argc > 2 ? std::atoll(argv[2]) : 1'000'000;
  const int num_batches = argc > 3 ? std::atoi(argv[3]) : 10;
  const vertex_t n = 1u << scale;

  std::printf("streaming %llu RMAT edges into F-Graph(n=%u) in %d batches\n",
              (unsigned long long)total_edges, n, num_batches);
  FGraph graph(n);

  uint64_t per_batch = total_edges / num_batches;
  for (int b = 0; b < num_batches; ++b) {
    // Each batch is a directed RMAT sample, symmetrized into undirected
    // edges (both directions inserted), duplicates allowed — the paper's
    // insert workload.
    auto batch = symmetrize(rmat_edges(scale, per_batch, 1000 + b));
    cpma::util::Timer t;
    uint64_t added = graph.insert_edges(batch);
    std::printf("batch %2d: %8zu edge keys, %8llu new, %6.1f ms "
                "(graph: %llu edges, %.2f bytes/edge)\n",
                b, batch.size(), (unsigned long long)added,
                t.elapsed_seconds() * 1e3,
                (unsigned long long)graph.num_edges(),
                (double)graph.get_size() / (double)graph.num_edges());

    if (b % 3 == 2) {
      // Interleave analytics with the update stream.
      cpma::util::Timer ta;
      auto pr = pagerank(graph);
      double pr_ms = ta.elapsed_seconds() * 1e3;
      vertex_t top = 0;
      for (vertex_t v = 0; v < n; ++v) {
        if (pr[v] > pr[top]) top = v;
      }
      ta.reset();
      auto cc = connected_components(graph);
      double cc_ms = ta.elapsed_seconds() * 1e3;
      std::vector<bool> seen(n, false);
      uint64_t comps = 0;
      for (vertex_t v = 0; v < n; ++v) {
        if (!seen[cc[v]]) {
          seen[cc[v]] = true;
          ++comps;
        }
      }
      std::printf("  -> PR %.1f ms (top vertex %u, rank %.2e); "
                  "CC %.1f ms (%llu components)\n",
                  pr_ms, top, pr[top], cc_ms, (unsigned long long)comps);
    }
  }

  // A final single-source BC from the highest-degree vertex.
  graph.prepare();
  vertex_t src = 0;
  for (vertex_t v = 0; v < n; ++v) {
    if (graph.degree(v) > graph.degree(src)) src = v;
  }
  cpma::util::Timer t;
  auto bc = betweenness_centrality(graph, src);
  double best = 0;
  for (double d : bc) best = std::max(best, d);
  std::printf("BC from max-degree vertex %u: %.1f ms (max dependency %.1f)\n",
              src, t.elapsed_seconds() * 1e3, best);
  return 0;
}
