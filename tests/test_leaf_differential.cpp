// Leaf-level differential property test: drives CompressedLeaf<> and
// UncompressedLeaf through identical randomized insert/remove/query
// sequences and asserts the two policies expose identical observable state
// (decode, counts, sums, lookups, map, cursors, block streaming) after
// every mutation. A shadow sorted vector gates inserts on capacity so both
// leaves always execute the same operation within their engine
// preconditions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "pma/leaf_compressed.hpp"
#include "pma/leaf_uncompressed.hpp"
#include "pma/settings.hpp"
#include "util/random.hpp"

using cpma::util::Rng;
namespace pma = cpma::pma;

namespace {

using CLeaf = pma::CompressedLeaf<>;
using ULeaf = pma::UncompressedLeaf;

constexpr size_t kCap = 512;

template <typename Leaf>
std::vector<uint64_t> drain(const uint8_t* leaf) {
  std::vector<uint64_t> out;
  Leaf::decode_append(leaf, kCap, out);
  return out;
}

template <typename Leaf>
std::vector<uint64_t> drain_cursor(const uint8_t* leaf) {
  std::vector<uint64_t> out;
  typename Leaf::Cursor cur;
  if (!Leaf::cursor_begin(leaf, kCap, cur)) return out;
  out.push_back(cur.value);
  while (Leaf::cursor_next(leaf, kCap, cur)) out.push_back(cur.value);
  return out;
}

template <typename Leaf>
std::vector<uint64_t> drain_blocks(const uint8_t* leaf, size_t block) {
  std::vector<uint64_t> out;
  typename Leaf::BlockCursor bc{};
  std::vector<uint64_t> buf(block);
  while (size_t k = Leaf::block_next(leaf, kCap, bc, buf.data(), block)) {
    out.insert(out.end(), buf.begin(), buf.begin() + k);
  }
  return out;
}

void expect_equal_state(const uint8_t* cl, const uint8_t* ul,
                        const std::vector<uint64_t>& shadow, Rng& r) {
  ASSERT_EQ(drain<CLeaf>(cl), shadow);
  ASSERT_EQ(drain<ULeaf>(ul), shadow);
  ASSERT_EQ(CLeaf::element_count(cl, kCap), shadow.size());
  ASSERT_EQ(ULeaf::element_count(ul, kCap), shadow.size());
  EXPECT_EQ(CLeaf::sum_leaf(cl, kCap), ULeaf::sum_leaf(ul, kCap));
  EXPECT_EQ(CLeaf::last(cl, kCap), ULeaf::last(ul, kCap));
  EXPECT_EQ(CLeaf::head(cl), ULeaf::head(ul));
  EXPECT_EQ(drain_cursor<CLeaf>(cl), shadow);
  EXPECT_EQ(drain_cursor<ULeaf>(ul), shadow);
  for (size_t block : {1, 7, 64}) {
    EXPECT_EQ(drain_blocks<CLeaf>(cl, block), shadow);
    EXPECT_EQ(drain_blocks<ULeaf>(ul, block), shadow);
  }
  // Point probes: members, near-members, and random misses.
  for (int p = 0; p < 8; ++p) {
    uint64_t probe;
    if (!shadow.empty() && p < 4) {
      uint64_t member = shadow[r.next() % shadow.size()];
      probe = p % 2 == 0 ? member : member + 1;
    } else {
      probe = 1 + (r.next() >> (r.next() % 40));
    }
    EXPECT_EQ(CLeaf::contains(cl, kCap, probe),
              ULeaf::contains(ul, kCap, probe))
        << "probe=" << probe;
    EXPECT_EQ(CLeaf::lower_bound(cl, kCap, probe),
              ULeaf::lower_bound(ul, kCap, probe))
        << "probe=" << probe;
  }
  // map: full walk and an early stop mid-leaf must visit identical
  // prefixes.
  std::vector<uint64_t> cm, um;
  EXPECT_EQ(CLeaf::map(cl, kCap, [&](uint64_t k) { cm.push_back(k); return true; }),
            ULeaf::map(ul, kCap, [&](uint64_t k) { um.push_back(k); return true; }));
  EXPECT_EQ(cm, um);
  size_t stop = shadow.size() / 2 + 1;
  cm.clear();
  um.clear();
  EXPECT_EQ(CLeaf::map(cl, kCap,
                       [&](uint64_t k) {
                         cm.push_back(k);
                         return cm.size() < stop;
                       }),
            ULeaf::map(ul, kCap, [&](uint64_t k) {
              um.push_back(k);
              return um.size() < stop;
            }));
  EXPECT_EQ(cm, um);
}

// Key regimes: dense small deltas (1-byte codes, the word/SIMD path),
// sparse 40-bit keys (multi-byte deltas), and keys near 2^64.
uint64_t gen_key(Rng& r, int regime) {
  switch (regime) {
    case 0:
      return 1 + r.next() % 300;
    case 1:
      return 1 + (r.next() % (uint64_t{1} << 40));
    default:
      return ~uint64_t{0} - (r.next() % 5000);
  }
}

void run_differential(uint64_t seed, int regime, int steps) {
  Rng r(seed);
  std::vector<uint8_t> cl(kCap, 0), ul(kCap, 0);
  std::vector<uint64_t> shadow;  // sorted mirror of the stored set
  std::vector<uint64_t> next;
  for (int step = 0; step < steps; ++step) {
    uint64_t key = gen_key(r, regime);
    bool is_insert = r.next() % 5 < 3;
    if (is_insert) {
      next = shadow;
      auto it = std::lower_bound(next.begin(), next.end(), key);
      bool fresh = it == next.end() || *it != key;
      if (fresh) next.insert(it, key);
      // Both policies must fit within the engine's slack invariant,
      // otherwise the engine would have rebalanced first — skip the op.
      if (CLeaf::encoded_size(next.data(), next.size()) >
              kCap - pma::kLeafSlack ||
          ULeaf::encoded_size(next.data(), next.size()) >
              kCap - pma::kLeafSlack) {
        continue;
      }
      EXPECT_EQ(CLeaf::insert(cl.data(), kCap, key), fresh);
      EXPECT_EQ(ULeaf::insert(ul.data(), kCap, key), fresh);
      shadow.swap(next);
    } else {
      if (!shadow.empty() && r.next() % 2 == 0) {
        key = shadow[r.next() % shadow.size()];  // guaranteed hit
      }
      auto it = std::lower_bound(shadow.begin(), shadow.end(), key);
      bool present = it != shadow.end() && *it == key;
      EXPECT_EQ(CLeaf::remove(cl.data(), kCap, key), present);
      EXPECT_EQ(ULeaf::remove(ul.data(), kCap, key), present);
      if (present) shadow.erase(it);
    }
    if (step % 16 == 0 || step + 1 == steps) {
      expect_equal_state(cl.data(), ul.data(), shadow, r);
      if (::testing::Test::HasFailure()) {
        FAIL() << "diverged at step " << step << " seed " << seed
               << " regime " << regime;
      }
    }
  }
}

}  // namespace

TEST(LeafDifferential, DenseKeys) {
  for (uint64_t seed : {1u, 2u, 3u, 4u}) run_differential(seed, 0, 3000);
}

TEST(LeafDifferential, SparseFortyBitKeys) {
  for (uint64_t seed : {11u, 12u, 13u, 14u}) run_differential(seed, 1, 3000);
}

TEST(LeafDifferential, KeysNearUint64Max) {
  for (uint64_t seed : {21u, 22u, 23u}) run_differential(seed, 2, 2000);
}

TEST(LeafDifferential, WriteRoundtripMatchesAcrossPolicies) {
  // write() + encoded_size agreement on random sorted sets of every size
  // that fits both policies.
  Rng r(31);
  for (int trial = 0; trial < 200; ++trial) {
    int regime = trial % 3;
    std::vector<uint64_t> keys;
    uint64_t n = 1 + r.next() % 60;
    for (uint64_t i = 0; i < n; ++i) keys.push_back(gen_key(r, regime));
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    if (CLeaf::encoded_size(keys.data(), keys.size()) > kCap ||
        ULeaf::encoded_size(keys.data(), keys.size()) > kCap) {
      continue;
    }
    std::vector<uint8_t> cl(kCap, 0), ul(kCap, 0);
    CLeaf::write(cl.data(), kCap, keys.data(), keys.size());
    ULeaf::write(ul.data(), kCap, keys.data(), keys.size());
    expect_equal_state(cl.data(), ul.data(), keys, r);
  }
}
