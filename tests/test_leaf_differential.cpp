// Leaf-level differential property test: drives each compressed leaf policy
// (byte-varint, group-varint, adaptive multi-format) and UncompressedLeaf
// through identical randomized insert/remove/query sequences and asserts the
// two policies expose identical observable state (decode, counts, sums,
// lookups, map, cursors, block streaming) after every mutation. A shadow
// sorted vector gates inserts on capacity so both leaves always execute the
// same operation within their engine preconditions. Periodic write() resets
// re-materialize from the shadow, which for AdaptiveLeaf re-runs format
// selection mid-sequence (so bitmap and group-varint leaves also see the
// point insert/remove paths).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "codec/group_varint.hpp"
#include "pma/leaf_adaptive.hpp"
#include "pma/leaf_compressed.hpp"
#include "pma/leaf_uncompressed.hpp"
#include "pma/settings.hpp"
#include "util/random.hpp"

using cpma::util::Rng;
namespace pma = cpma::pma;

namespace {

using BvLeaf = pma::CompressedLeaf<>;
using GvLeaf = pma::CompressedLeaf<cpma::codec::GroupVarintCodec, 9>;
using ALeaf = pma::AdaptiveLeaf;
using ULeaf = pma::UncompressedLeaf;

constexpr size_t kCap = 512;

template <typename Leaf>
std::vector<uint64_t> drain(const uint8_t* leaf) {
  std::vector<uint64_t> out;
  Leaf::decode_append(leaf, kCap, out);
  return out;
}

template <typename Leaf>
std::vector<uint64_t> drain_cursor(const uint8_t* leaf) {
  std::vector<uint64_t> out;
  typename Leaf::Cursor cur;
  if (!Leaf::cursor_begin(leaf, kCap, cur)) return out;
  out.push_back(cur.value);
  while (Leaf::cursor_next(leaf, kCap, cur)) out.push_back(cur.value);
  return out;
}

template <typename Leaf>
std::vector<uint64_t> drain_blocks(const uint8_t* leaf, size_t block) {
  std::vector<uint64_t> out;
  typename Leaf::BlockCursor bc{};
  std::vector<uint64_t> buf(block);
  while (size_t k = Leaf::block_next(leaf, kCap, bc, buf.data(), block)) {
    out.insert(out.end(), buf.begin(), buf.begin() + k);
  }
  return out;
}

template <typename CLike>
void expect_equal_state(const uint8_t* cl, const uint8_t* ul,
                        const std::vector<uint64_t>& shadow, Rng& r) {
  ASSERT_EQ(drain<CLike>(cl), shadow);
  ASSERT_EQ(drain<ULeaf>(ul), shadow);
  ASSERT_EQ(CLike::element_count(cl, kCap), shadow.size());
  ASSERT_EQ(ULeaf::element_count(ul, kCap), shadow.size());
  EXPECT_EQ(CLike::sum_leaf(cl, kCap), ULeaf::sum_leaf(ul, kCap));
  EXPECT_EQ(CLike::last(cl, kCap), ULeaf::last(ul, kCap));
  EXPECT_EQ(CLike::head(cl), ULeaf::head(ul));
  EXPECT_EQ(drain_cursor<CLike>(cl), shadow);
  EXPECT_EQ(drain_cursor<ULeaf>(ul), shadow);
  for (size_t block : {1, 7, 64}) {
    EXPECT_EQ(drain_blocks<CLike>(cl, block), shadow);
    EXPECT_EQ(drain_blocks<ULeaf>(ul, block), shadow);
  }
  // Point probes: members, near-members, and random misses.
  for (int p = 0; p < 8; ++p) {
    uint64_t probe;
    if (!shadow.empty() && p < 4) {
      uint64_t member = shadow[r.next() % shadow.size()];
      probe = p % 2 == 0 ? member : member + 1;
    } else {
      probe = 1 + (r.next() >> (r.next() % 40));
    }
    EXPECT_EQ(CLike::contains(cl, kCap, probe),
              ULeaf::contains(ul, kCap, probe))
        << "probe=" << probe;
    EXPECT_EQ(CLike::lower_bound(cl, kCap, probe),
              ULeaf::lower_bound(ul, kCap, probe))
        << "probe=" << probe;
  }
  // map: full walk and an early stop mid-leaf must visit identical
  // prefixes.
  std::vector<uint64_t> cm, um;
  EXPECT_EQ(CLike::map(cl, kCap, [&](uint64_t k) { cm.push_back(k); return true; }),
            ULeaf::map(ul, kCap, [&](uint64_t k) { um.push_back(k); return true; }));
  EXPECT_EQ(cm, um);
  size_t stop = shadow.size() / 2 + 1;
  cm.clear();
  um.clear();
  EXPECT_EQ(CLike::map(cl, kCap,
                       [&](uint64_t k) {
                         cm.push_back(k);
                         return cm.size() < stop;
                       }),
            ULeaf::map(ul, kCap, [&](uint64_t k) {
              um.push_back(k);
              return um.size() < stop;
            }));
  EXPECT_EQ(cm, um);
}

// Key regimes: dense small deltas (1-byte codes, the word/SIMD path),
// sparse 40-bit keys (multi-byte deltas), keys near 2^64, and clustered
// dense runs (the bitmap-leaf sweet spot).
uint64_t gen_key(Rng& r, int regime) {
  switch (regime) {
    case 0:
      return 1 + r.next() % 300;
    case 1:
      return 1 + (r.next() % (uint64_t{1} << 40));
    case 2:
      return ~uint64_t{0} - (r.next() % 5000);
    default: {
      // A handful of 64-wide runs scattered across a 20-bit space.
      uint64_t run = 1 + (r.next() % 6) * 77777;
      return run + r.next() % 64;
    }
  }
}

template <typename Leaf>
void run_differential(uint64_t seed, int regime, int steps) {
  Rng r(seed);
  std::vector<uint8_t> cl(kCap, 0), ul(kCap, 0);
  std::vector<uint64_t> shadow;  // sorted mirror of the stored set
  std::vector<uint64_t> next;
  for (int step = 0; step < steps; ++step) {
    uint64_t key = gen_key(r, regime);
    bool is_insert = r.next() % 5 < 3;
    if (is_insert) {
      next = shadow;
      auto it = std::lower_bound(next.begin(), next.end(), key);
      bool fresh = it == next.end() || *it != key;
      if (fresh) next.insert(it, key);
      // Both policies must fit within the engine's slack invariant,
      // otherwise the engine would have rebalanced first — skip the op.
      // The extra used_bytes guard covers non-canonical formats (a bitmap
      // leaf's actual bytes can sit above the canonical estimate after a
      // run of point inserts).
      if (Leaf::encoded_size(next.data(), next.size()) >
              kCap - pma::kLeafSlack ||
          ULeaf::encoded_size(next.data(), next.size()) >
              kCap - pma::kLeafSlack ||
          Leaf::used_bytes(cl.data(), kCap) + pma::kLeafSlack > kCap) {
        continue;
      }
      EXPECT_EQ(Leaf::insert(cl.data(), kCap, key), fresh);
      EXPECT_EQ(ULeaf::insert(ul.data(), kCap, key), fresh);
      shadow.swap(next);
    } else {
      if (!shadow.empty() && r.next() % 2 == 0) {
        key = shadow[r.next() % shadow.size()];  // guaranteed hit
      }
      auto it = std::lower_bound(shadow.begin(), shadow.end(), key);
      bool present = it != shadow.end() && *it == key;
      EXPECT_EQ(Leaf::remove(cl.data(), kCap, key), present);
      EXPECT_EQ(ULeaf::remove(ul.data(), kCap, key), present);
      if (present) shadow.erase(it);
    }
    // Periodic re-materialization: the engine rewrites leaves at every
    // rebalance, and AdaptiveLeaf re-selects its format there.
    if (step % 96 == 95) {
      Leaf::write(cl.data(), kCap, shadow.data(), shadow.size());
      ULeaf::write(ul.data(), kCap, shadow.data(), shadow.size());
    }
    if (step % 16 == 0 || step + 1 == steps) {
      expect_equal_state<Leaf>(cl.data(), ul.data(), shadow, r);
      if (::testing::Test::HasFailure()) {
        FAIL() << "diverged at step " << step << " seed " << seed
               << " regime " << regime;
      }
    }
  }
}

}  // namespace

template <typename Leaf>
class LeafDifferential : public ::testing::Test {};

using CompressedPolicies = ::testing::Types<BvLeaf, GvLeaf, ALeaf>;
TYPED_TEST_SUITE(LeafDifferential, CompressedPolicies);

TYPED_TEST(LeafDifferential, DenseKeys) {
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    run_differential<TypeParam>(seed, 0, 3000);
  }
}

TYPED_TEST(LeafDifferential, SparseFortyBitKeys) {
  for (uint64_t seed : {11u, 12u, 13u, 14u}) {
    run_differential<TypeParam>(seed, 1, 3000);
  }
}

TYPED_TEST(LeafDifferential, KeysNearUint64Max) {
  for (uint64_t seed : {21u, 22u, 23u}) {
    run_differential<TypeParam>(seed, 2, 2000);
  }
}

TYPED_TEST(LeafDifferential, DenseRunClusters) {
  for (uint64_t seed : {41u, 42u, 43u}) {
    run_differential<TypeParam>(seed, 3, 3000);
  }
}

TYPED_TEST(LeafDifferential, WriteRoundtripMatchesAcrossPolicies) {
  // write() + decode agreement on random sorted sets of every size that
  // fits both policies.
  Rng r(31);
  for (int trial = 0; trial < 240; ++trial) {
    int regime = trial % 4;
    std::vector<uint64_t> keys;
    uint64_t n = 1 + r.next() % 60;
    for (uint64_t i = 0; i < n; ++i) keys.push_back(gen_key(r, regime));
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    if (TypeParam::encoded_size(keys.data(), keys.size()) > kCap ||
        ULeaf::encoded_size(keys.data(), keys.size()) > kCap) {
      continue;
    }
    std::vector<uint8_t> cl(kCap, 0), ul(kCap, 0);
    TypeParam::write(cl.data(), kCap, keys.data(), keys.size());
    ULeaf::write(ul.data(), kCap, keys.data(), keys.size());
    expect_equal_state<TypeParam>(cl.data(), ul.data(), keys, r);
  }
}

// ---- cross-format spread stitching (AdaptiveLeaf only) ---------------------
//
// The engine only direct-spreads uniformly byte-varint arrays (pma_impl
// refuses otherwise), but the leaf-level primitives are total: a spread
// writer accepts content from sources in any format and transcodes into the
// destination's adopted format. These tests drive every (src fmt, dst fmt)
// pairing through randomized round trips against a std::set oracle.

namespace {

constexpr size_t kSrcCap = 2048;
constexpr size_t kDstCap = 8192;

// Sorted unique keys whose density regime roughly matches the format we
// force, so pair/page counts stay representative.
std::vector<uint64_t> gen_sorted(Rng& r, int regime, size_t n) {
  std::set<uint64_t> s;
  while (s.size() < n) s.insert(gen_key(r, regime));
  return {s.begin(), s.end()};
}

}  // namespace

TEST(AdaptiveLeafSpread, CrossFormatJoinRoundTrip) {
  // Stitch several source leaves of cycling forced formats into one
  // destination; the decoded destination must equal the concatenation.
  Rng r(57);
  const uint8_t fmts[3] = {ALeaf::kByteVarint, ALeaf::kGroupVarint,
                           ALeaf::kBitmap};
  for (int trial = 0; trial < 120; ++trial) {
    size_t nsrc = 2 + r.next() % 3;
    std::vector<std::vector<uint8_t>> srcs;
    std::vector<std::vector<uint64_t>> keysets;
    uint64_t lo = 1;
    for (size_t i = 0; i < nsrc; ++i) {
      int regime = (trial + static_cast<int>(i)) % 4;
      auto keys = gen_sorted(r, regime == 2 ? 0 : regime, 1 + r.next() % 40);
      for (auto& k : keys) k += lo;  // keep sources strictly increasing
      lo = keys.back() + 1 + r.next() % 1000;
      srcs.emplace_back(kSrcCap, 0);
      uint8_t fmt = fmts[(trial + i) % 3];
      ALeaf::write_format(srcs.back().data(), kSrcCap, keys.data(),
                          keys.size(), fmt);
      ASSERT_EQ(drain<ALeaf>(srcs.back().data()), keys) << "fmt=" << int(fmt);
      keysets.push_back(std::move(keys));
    }
    std::vector<uint8_t> dst(kDstCap, 0);
    typename ALeaf::SpreadWriter w;
    std::vector<uint64_t> want;
    for (size_t i = 0; i < nsrc; ++i) {
      size_t used = ALeaf::used_bytes(srcs[i].data(), kSrcCap);
      if (i == 0) {
        ALeaf::spread_begin(w, dst.data(), kDstCap, keysets[0][0]);
        if (trial % 5 == 0) {
          // Appends before any copy decide byte-varint; exercise that the
          // later copies then transcode into it.
          ALeaf::spread_append_keys(w, keysets[0].data() + 1,
                                    keysets[0].size() - 1);
          w.last = keysets[0].back();
        } else {
          ALeaf::spread_copy_tail(w, srcs[0].data(), ALeaf::kHeadBytes, used);
          w.last = keysets[0].back();
        }
      } else {
        ALeaf::spread_join(w, srcs[i].data(), keysets[i][0], used);
        w.last = keysets[i].back();
      }
      want.insert(want.end(), keysets[i].begin(), keysets[i].end());
    }
    ALeaf::spread_finish(w);
    std::vector<uint64_t> got;
    ALeaf::decode_append(dst.data(), kDstCap, got);
    ASSERT_EQ(got, want) << "trial=" << trial;
  }
}

TEST(AdaptiveLeafSpread, SplitRoundTripAllFormats) {
  // Split one leaf of each forced format at random byte budgets via its
  // SpreadSeeker and re-stitch the segments; the concatenation of the
  // destination decodes must equal the source.
  Rng r(58);
  const uint8_t fmts[3] = {ALeaf::kByteVarint, ALeaf::kGroupVarint,
                           ALeaf::kBitmap};
  for (int trial = 0; trial < 90; ++trial) {
    int regime = trial % 4;
    auto keys = gen_sorted(r, regime == 2 ? 3 : regime, 2 + r.next() % 50);
    std::vector<uint8_t> src(kSrcCap, 0);
    uint8_t fmt = fmts[trial % 3];
    ALeaf::write_format(src.data(), kSrcCap, keys.data(), keys.size(), fmt);
    size_t used = ALeaf::used_bytes(src.data(), kSrcCap);
    size_t budget = used <= 17 ? used : 16 + r.next() % (used - 16);
    std::vector<typename ALeaf::SpreadPoint> splits;
    typename ALeaf::SpreadSeeker seeker(src.data(), kSrcCap);
    uint64_t last = seeker.split_targets(
        0, budget, 1, used,
        [&](uint64_t, typename ALeaf::SpreadPoint sp, bool sliver) {
          if (!sliver) splits.push_back(sp);
        });
    ASSERT_EQ(last, keys.back()) << "fmt=" << int(fmt);
    std::vector<uint64_t> got;
    std::vector<uint8_t> dst(kDstCap, 0);
    typename ALeaf::SpreadWriter w;
    ALeaf::spread_begin(w, dst.data(), kDstCap, keys[0]);
    size_t from = ALeaf::kHeadBytes;
    for (const auto& sp : splits) {
      ALeaf::spread_copy_tail(w, src.data(), from, sp.off);
      ALeaf::spread_finish(w);
      ALeaf::decode_append(dst.data(), kDstCap, got);
      std::fill(dst.begin(), dst.end(), 0);
      ALeaf::spread_begin(w, dst.data(), kDstCap, sp.key);
      from = sp.next;
    }
    ALeaf::spread_copy_tail(w, src.data(), from, used);
    ALeaf::spread_finish(w);
    ALeaf::decode_append(dst.data(), kDstCap, got);
    ASSERT_EQ(got, keys) << "trial=" << trial << " fmt=" << int(fmt)
                         << " budget=" << budget;
  }
}
