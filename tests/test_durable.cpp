// Durability unit suite: the pieces under src/durable/ individually —
// CRC32C vectors, WAL framing + tolerant scanning, checkpoint round trips
// (typed over all three leaf formats), the MemVfs crash model, FaultyVfs
// injection accounting — plus the serving-layer seams this PR added:
// bounded backpressured ingest queues, the write-observer veto, epoch
// participant overflow, and ShardedPMA::restore_from_checkpoint.
//
// The randomized kill-point / fault-schedule coverage lives in
// test_chaos.cpp; this file pins down deterministic contracts.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "pma/cpma.hpp"
#include "util/random.hpp"

using cpma::durable::DurablePMA;
using cpma::durable::DurableSettings;
using cpma::durable::FsyncPolicy;
using cpma::durable::WalRecord;
using cpma::durable::WalScanStats;
using cpma::durable::WalSettings;
using cpma::durable::WalWriter;
using cpma::durable::io::FaultPlan;
using cpma::durable::io::FaultyVfs;
using cpma::durable::io::MemVfs;
using cpma::durable::io::Status;
using cpma::util::crc32c;
using cpma::util::Rng;

namespace {

uint64_t key_at(uint64_t i) { return (i + 1) * 0x9E3779B97F4A7C15ull; }

DurableSettings test_settings(uint64_t shards, FsyncPolicy policy) {
  DurableSettings s;
  s.serving.sharded.num_shards = shards;
  s.serving.sharded.min_rebalance_bytes = 1 << 12;
  s.serving.publish_eager = true;
  s.wal.policy = policy;
  return s;
}

std::vector<uint64_t> collect(const std::set<uint64_t>& s) {
  return std::vector<uint64_t>(s.begin(), s.end());
}

// ---- crc32c ---------------------------------------------------------------

TEST(Crc32c, Rfc3720KnownAnswer) {
  // The canonical CRC32C check value.
  EXPECT_EQ(crc32c("123456789", 9), 0xE3069283u);
}

TEST(Crc32c, EmptyAndChaining) {
  EXPECT_EQ(crc32c("", 0), 0u);
  const char* msg = "hello, durable world";
  const size_t n = std::strlen(msg);
  uint32_t whole = crc32c(msg, n);
  for (size_t split = 0; split <= n; ++split) {
    uint32_t part = crc32c(msg, split);
    EXPECT_EQ(crc32c(msg + split, n - split, part), whole) << split;
  }
}

TEST(Crc32c, DetectsSingleBitFlips) {
  std::vector<uint8_t> data(257);
  Rng rng(7);
  for (auto& b : data) b = static_cast<uint8_t>(rng.next());
  const uint32_t clean = crc32c(data.data(), data.size());
  for (int trial = 0; trial < 64; ++trial) {
    size_t at = rng.next_below(data.size());
    uint8_t bit = static_cast<uint8_t>(1u << rng.next_below(8));
    data[at] ^= bit;
    EXPECT_NE(crc32c(data.data(), data.size()), clean);
    data[at] ^= bit;
  }
}

// ---- WAL framing + scanning ----------------------------------------------

TEST(Wal, NameRoundTrip) {
  cpma::durable::WalName wn;
  ASSERT_TRUE(cpma::durable::parse_wal_name(
      cpma::durable::wal_name(3, 17, 240), &wn));
  EXPECT_EQ(wn.shard, 3u);
  EXPECT_EQ(wn.cseq, 17u);
  EXPECT_EQ(wn.part, 240u);
  EXPECT_FALSE(cpma::durable::parse_wal_name("wal-s3-c17-p240.tmp", &wn));
  EXPECT_FALSE(cpma::durable::parse_wal_name("ckpt-3.cpma", &wn));
  EXPECT_FALSE(cpma::durable::parse_wal_name("wal-sx-c1-p1.log", &wn));
  uint64_t seq;
  ASSERT_TRUE(cpma::durable::parse_ckpt_name("ckpt-12.cpma", &seq));
  EXPECT_EQ(seq, 12u);
  EXPECT_FALSE(cpma::durable::parse_ckpt_name("ckpt-12.tmp", &seq));
}

TEST(Wal, AppendScanRoundTrip) {
  MemVfs vfs;
  vfs.mkdir("d");
  WalWriter w(vfs, "d", 0, WalSettings{FsyncPolicy::kAlways, 0, 0});
  ASSERT_TRUE(w.rotate(1).ok());
  std::vector<std::vector<uint64_t>> batches;
  Rng rng(11);
  for (uint64_t lsn = 1; lsn <= 20; ++lsn) {
    std::vector<uint64_t> keys(1 + rng.next_below(50));
    for (auto& k : keys) k = rng.next();
    bool durable = false;
    ASSERT_TRUE(w.append(lsn % 2 == 0 ? 1 : 0, lsn, keys.data(),
                         static_cast<uint32_t>(keys.size()), &durable)
                    .ok());
    EXPECT_TRUE(durable);  // kAlways
    batches.push_back(std::move(keys));
  }
  std::vector<WalRecord> recs;
  WalScanStats st = cpma::durable::scan_wal_file(vfs, w.path(), recs);
  EXPECT_EQ(st.records, 20u);
  EXPECT_EQ(st.corrupt_skipped, 0u);
  EXPECT_EQ(st.torn_tails, 0u);
  ASSERT_EQ(recs.size(), 20u);
  for (uint64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(recs[i].lsn, i + 1);
    EXPECT_EQ(recs[i].is_insert, (i + 1) % 2 != 0);
    EXPECT_EQ(recs[i].keys, batches[i]);
  }
}

TEST(Wal, TornTailTolerated) {
  MemVfs vfs;
  vfs.mkdir("d");
  WalWriter w(vfs, "d", 0, WalSettings{FsyncPolicy::kNever, 0, 0});
  ASSERT_TRUE(w.rotate(1).ok());
  std::vector<uint64_t> keys{10, 20, 30};
  bool durable;
  ASSERT_TRUE(w.append(0, 1, keys.data(), 3, &durable).ok());
  ASSERT_TRUE(w.append(0, 2, keys.data(), 3, &durable).ok());
  // Chop the final record mid-frame: keep the whole first record plus a
  // partial second.
  const uint64_t full = vfs.file_size(w.path());
  std::vector<uint8_t> data;
  ASSERT_TRUE(vfs.read_all(w.path(), data).ok());
  data.resize(full - 7);
  Status st;
  auto f = vfs.open_write(w.path(), /*truncate=*/true, &st);
  ASSERT_TRUE(st.ok());
  ASSERT_TRUE(f->append(data.data(), data.size()).ok());
  std::vector<WalRecord> recs;
  WalScanStats stats = cpma::durable::scan_wal_file(vfs, w.path(), recs);
  EXPECT_EQ(stats.records, 1u);
  EXPECT_EQ(stats.torn_tails, 1u);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].lsn, 1u);
}

TEST(Wal, CorruptMiddleRecordSkipped) {
  MemVfs vfs;
  vfs.mkdir("d");
  WalWriter w(vfs, "d", 0, WalSettings{FsyncPolicy::kNever, 0, 0});
  ASSERT_TRUE(w.rotate(1).ok());
  std::vector<uint64_t> keys{10, 20, 30};
  bool durable;
  for (uint64_t lsn = 1; lsn <= 3; ++lsn) {
    ASSERT_TRUE(w.append(0, lsn, keys.data(), 3, &durable).ok());
  }
  // Flip a payload bit in the middle record.
  std::vector<uint8_t> data;
  ASSERT_TRUE(vfs.read_all(w.path(), data).ok());
  const uint64_t rec_bytes = data.size() / 3;
  data[rec_bytes + rec_bytes / 2] ^= 0x10;
  Status st;
  auto f = vfs.open_write(w.path(), /*truncate=*/true, &st);
  ASSERT_TRUE(st.ok());
  ASSERT_TRUE(f->append(data.data(), data.size()).ok());
  std::vector<WalRecord> recs;
  WalScanStats stats = cpma::durable::scan_wal_file(vfs, w.path(), recs);
  EXPECT_EQ(stats.records, 2u);
  EXPECT_GE(stats.corrupt_skipped, 1u);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].lsn, 1u);
  EXPECT_EQ(recs[1].lsn, 3u);
}

// ---- MemVfs crash model ---------------------------------------------------

TEST(MemVfs, CrashKeepsSyncedPrefixDropsUnsyncedFiles) {
  MemVfs vfs;
  vfs.mkdir("d");
  Status st;
  auto f = vfs.open_write("d/synced", /*truncate=*/true, &st);
  ASSERT_TRUE(st.ok());
  std::vector<uint8_t> bytes(1000, 0xAB);
  ASSERT_TRUE(f->append(bytes.data(), 600).ok());
  ASSERT_TRUE(f->sync().ok());
  ASSERT_TRUE(f->append(bytes.data(), 400).ok());  // unsynced tail
  ASSERT_TRUE(vfs.sync_dir("d").ok());
  auto g = vfs.open_write("d/never-synced-entry", /*truncate=*/true, &st);
  ASSERT_TRUE(st.ok());
  ASSERT_TRUE(g->append(bytes.data(), 100).ok());
  ASSERT_TRUE(g->sync().ok());  // data synced but dir entry is not

  vfs.crash(123);
  EXPECT_FALSE(vfs.exists("d/never-synced-entry"));
  ASSERT_TRUE(vfs.exists("d/synced"));
  EXPECT_GE(vfs.file_size("d/synced"), 600u);   // synced prefix survives
  EXPECT_LE(vfs.file_size("d/synced"), 1000u);  // tail may tear
  // The synced prefix is bit-exact.
  std::vector<uint8_t> back;
  ASSERT_TRUE(vfs.read_all("d/synced", back).ok());
  for (uint64_t i = 0; i < 600; ++i) ASSERT_EQ(back[i], 0xAB);
}

TEST(FaultyVfs, InjectsPerPlanAndCounts) {
  MemVfs base;
  base.mkdir("d");
  FaultPlan plan;
  plan.seed = 99;
  plan.write_error_bp = 5000;  // 50%
  FaultyVfs vfs(base, plan);
  Status st;
  auto f = vfs.open_write("d/x", /*truncate=*/true, &st);
  ASSERT_TRUE(st.ok());
  uint64_t failures = 0;
  const uint8_t byte = 0x5A;
  for (int i = 0; i < 200; ++i) {
    if (!f->append(&byte, 1).ok()) ++failures;
  }
  EXPECT_GT(failures, 50u);
  EXPECT_LT(failures, 150u);
  EXPECT_EQ(vfs.fault_stats().write_errors, failures);
  EXPECT_EQ(base.file_size("d/x"), 200 - failures);
}

// ---- ShardedPMA restore hook ----------------------------------------------

TEST(RestoreHook, RejectsNonEmptyAndShardMismatch) {
  cpma::pma::ShardedSettings ss;
  ss.num_shards = 4;
  cpma::pma::ShardedPMA<cpma::CPMA> store(ss);
  std::vector<uint64_t> splitters{100, 200};  // wrong count (needs 3)
  EXPECT_FALSE(store.restore_from_checkpoint(
      splitters, [](uint64_t) { return std::vector<uint64_t>{}; }));
  store.insert(7);
  EXPECT_FALSE(store.restore_from_checkpoint(
      std::vector<uint64_t>{100, 200, 300},
      [](uint64_t) { return std::vector<uint64_t>{}; }));
}

TEST(RestoreHook, RestoresLayoutAndContent) {
  cpma::pma::ShardedSettings ss;
  ss.num_shards = 3;
  cpma::pma::ShardedPMA<cpma::CPMA> store(ss);
  std::vector<uint64_t> splitters{1000, 2000};
  ASSERT_TRUE(store.restore_from_checkpoint(splitters, [](uint64_t s) {
    std::vector<uint64_t> keys;
    for (uint64_t i = 0; i < 100; ++i) keys.push_back(s * 1000 + i * 5 + 1);
    return keys;
  }));
  EXPECT_EQ(store.size(), 300u);
  EXPECT_EQ(store.splitters(), splitters);
  std::string err;
  EXPECT_TRUE(store.check_invariants(&err)) << err;
  EXPECT_TRUE(store.has(1));
  EXPECT_TRUE(store.has(2000 + 99 * 5 + 1));
}

// ---- typed DurablePMA contracts -------------------------------------------

template <typename E>
class Durable : public ::testing::Test {};
using Engines = ::testing::Types<cpma::PMA, cpma::CPMA, cpma::ACPMA>;
TYPED_TEST_SUITE(Durable, Engines);

TYPED_TEST(Durable, CheckpointRoundTripsLeafFormat) {
  MemVfs vfs;
  std::set<uint64_t> oracle;
  {
    DurablePMA<TypeParam> d(vfs, "db",
                            test_settings(4, FsyncPolicy::kAlways));
    // Dense + sparse mix so adaptive leaves actually pick both formats.
    std::vector<uint64_t> batch;
    for (uint64_t i = 0; i < 4000; ++i) batch.push_back(i + 100);
    for (uint64_t i = 0; i < 4000; ++i) batch.push_back(key_at(i));
    oracle.insert(batch.begin(), batch.end());
    d.insert_batch(batch);
    ASSERT_TRUE(d.checkpoint().ok());
  }
  vfs.crash(1);
  DurablePMA<TypeParam> d(vfs, "db", test_settings(4, FsyncPolicy::kAlways));
  EXPECT_TRUE(d.recovery_report().recovered_checkpoint);
  EXPECT_EQ(d.recovery_report().checkpoint_keys, oracle.size());
  EXPECT_EQ(d.size(), oracle.size());
  std::vector<uint64_t> got;
  d.snapshot().map([&](uint64_t k) { got.push_back(k); });
  EXPECT_EQ(got, collect(oracle));
}

TYPED_TEST(Durable, WalReplayAfterCrash) {
  MemVfs vfs;
  std::set<uint64_t> oracle;
  {
    DurablePMA<TypeParam> d(vfs, "db",
                            test_settings(2, FsyncPolicy::kAlways));
    for (uint64_t i = 0; i < 500; ++i) {
      d.insert(key_at(i));
      oracle.insert(key_at(i));
    }
    ASSERT_TRUE(d.sync_wal().ok());
    ASSERT_TRUE(d.checkpoint().ok());
    // Post-checkpoint tail: some inserts, some removes, all synced.
    for (uint64_t i = 500; i < 800; ++i) {
      d.insert(key_at(i));
      oracle.insert(key_at(i));
    }
    for (uint64_t i = 0; i < 100; ++i) {
      d.remove(key_at(i));
      oracle.erase(key_at(i));
    }
    ASSERT_TRUE(d.sync_wal().ok());
  }  // destroyed without clean shutdown
  vfs.crash(77);
  DurablePMA<TypeParam> d(vfs, "db", test_settings(2, FsyncPolicy::kAlways));
  const auto& r = d.recovery_report();
  EXPECT_TRUE(r.recovered_checkpoint);
  EXPECT_GT(r.records_replayed, 0u);
  EXPECT_EQ(d.size(), oracle.size());
  std::vector<uint64_t> got;
  d.snapshot().map([&](uint64_t k) { got.push_back(k); });
  EXPECT_EQ(got, collect(oracle));
}

TYPED_TEST(Durable, CorruptCheckpointFallsBackToWalReplay) {
  // Prune keeps exactly one checkpoint generation alive, so when it goes
  // bad the fallback path is: skip it (counted), restore empty, and rebuild
  // the state entirely from the still-unpruned WAL generation.
  MemVfs vfs;
  std::set<uint64_t> oracle;
  {
    DurablePMA<TypeParam> d(vfs, "db",
                            test_settings(2, FsyncPolicy::kAlways));
    for (uint64_t i = 0; i < 300; ++i) {
      d.insert(key_at(i));
      oracle.insert(key_at(i));
    }
    ASSERT_TRUE(d.sync_wal().ok());
  }  // on disk: the empty anchor checkpoint (seq 1) + WAL holding all keys
  const std::string path = "db/" + cpma::durable::ckpt_name(1);
  ASSERT_TRUE(vfs.exists(path));
  std::vector<uint8_t> data;
  ASSERT_TRUE(vfs.read_all(path, data).ok());
  data[data.size() / 2] ^= 0x40;
  Status st;
  auto f = vfs.open_write(path, /*truncate=*/true, &st);
  ASSERT_TRUE(st.ok());
  ASSERT_TRUE(f->append(data.data(), data.size()).ok());
  ASSERT_TRUE(f->sync().ok());

  DurablePMA<TypeParam> d(vfs, "db", test_settings(2, FsyncPolicy::kAlways));
  const auto& r = d.recovery_report();
  EXPECT_GE(r.checkpoints_ignored, 1u);
  EXPECT_FALSE(r.recovered_checkpoint);
  EXPECT_GT(r.records_replayed, 0u);
  EXPECT_EQ(d.size(), oracle.size());
  std::vector<uint64_t> got;
  d.snapshot().map([&](uint64_t k) { got.push_back(k); });
  EXPECT_EQ(got, collect(oracle));
  std::string err;
  EXPECT_TRUE(d.serving().store().check_invariants(&err)) << err;
}

TYPED_TEST(Durable, TmpOrphansDeletedOnRecovery) {
  MemVfs vfs;
  vfs.mkdir("db");
  Status st;
  auto f = vfs.open_write("db/ckpt-9.tmp", /*truncate=*/true, &st);
  ASSERT_TRUE(st.ok());
  const uint8_t junk[4] = {1, 2, 3, 4};
  ASSERT_TRUE(f->append(junk, 4).ok());
  ASSERT_TRUE(f->sync().ok());
  ASSERT_TRUE(vfs.sync_dir("db").ok());
  DurablePMA<TypeParam> d(vfs, "db", test_settings(2, FsyncPolicy::kAlways));
  EXPECT_FALSE(vfs.exists("db/ckpt-9.tmp"));
  EXPECT_EQ(d.size(), 0u);
}

TYPED_TEST(Durable, AsyncCheckpointIngestContinues) {
  MemVfs vfs;
  std::set<uint64_t> oracle;
  {
    DurablePMA<TypeParam> d(vfs, "db",
                            test_settings(4, FsyncPolicy::kInterval));
    std::vector<uint64_t> batch;
    for (uint64_t i = 0; i < 5000; ++i) batch.push_back(key_at(i));
    oracle.insert(batch.begin(), batch.end());
    d.insert_batch(batch);
    ASSERT_TRUE(d.checkpoint_async().ok());
    // Ingest while the body writes in the background.
    for (uint64_t i = 5000; i < 5500; ++i) {
      d.insert(key_at(i));
      oracle.insert(key_at(i));
    }
    ASSERT_TRUE(d.sync_wal().ok());
    d.wait_checkpoint();
    ASSERT_TRUE(d.last_checkpoint_status().ok());
  }
  vfs.crash(5);
  DurablePMA<TypeParam> d(vfs, "db",
                          test_settings(4, FsyncPolicy::kInterval));
  EXPECT_EQ(d.size(), oracle.size());
}

TYPED_TEST(Durable, DurableLsnWatermark) {
  MemVfs vfs;
  DurablePMA<TypeParam> d(vfs, "db", test_settings(2, FsyncPolicy::kNever));
  for (uint64_t i = 0; i < 100; ++i) d.insert(key_at(i));
  d.serving().flush();               // logged (kNever: not synced)
  EXPECT_EQ(d.durable_lsn(), 0u);    // nothing promised yet
  ASSERT_TRUE(d.sync_wal().ok());
  EXPECT_EQ(d.durable_lsn(), d.last_lsn());
  EXPECT_GT(d.last_lsn(), 0u);
}

// A WAL that cannot write vetoes applies instead of letting unlogged
// writes through.
TEST(DurableVeto, FailedWalBlocksApply) {
  MemVfs base;
  // Recover against a clean base, then start failing every write.
  FaultPlan plan;
  plan.seed = 3;
  FaultyVfs vfs(base, plan);
  DurablePMA<cpma::CPMA> d(vfs, "db", test_settings(2, FsyncPolicy::kNever));
  // Arm 100% write failure AFTER recovery (plan is copied at construction;
  // rebuild a fully-failing vfs is not possible in place, so go through a
  // second instance sharing the base).
  FaultPlan fail_all;
  fail_all.seed = 4;
  fail_all.write_error_bp = 10'000;
  FaultyVfs failing(base, fail_all);
  DurablePMA<cpma::CPMA> d2(failing, "db2",
                            test_settings(2, FsyncPolicy::kNever));
  d2.insert(42);
  d2.serving().flush();
  EXPECT_FALSE(d2.has(42));  // vetoed, never applied
  EXPECT_GT(d2.stats().wal_vetoes, 0u);
  EXPECT_GT(d2.serving().stats().vetoed_ops, 0u);
}

// ---- backpressure ----------------------------------------------------------

TEST(Backpressure, RejectPolicyFailsFastAndCounts) {
  cpma::serve::ServingSettings s;
  s.sharded.num_shards = 1;
  s.queue_cap = 4;
  s.admission = cpma::serve::Admission::kReject;
  s.combine_batch = 1u << 30;  // never auto-combine
  cpma::serve::ServingPMA<cpma::CPMA> serve(s);
  for (uint64_t i = 0; i < 4; ++i) EXPECT_TRUE(serve.insert(i + 1));
  EXPECT_FALSE(serve.insert(99));
  EXPECT_FALSE(serve.try_insert(100));
  auto qs = serve.serving_stats();
  ASSERT_EQ(qs.size(), 1u);
  EXPECT_EQ(qs[0].depth, 4u);
  EXPECT_EQ(qs[0].rejected, 2u);
  serve.flush();  // drain
  EXPECT_TRUE(serve.insert(99));
  EXPECT_EQ(serve.serving_stats()[0].depth, 1u);
}

TEST(Backpressure, BlockPolicyDrainsViaVolunteerCombine) {
  cpma::serve::ServingSettings s;
  s.sharded.num_shards = 1;
  s.queue_cap = 2;
  s.admission = cpma::serve::Admission::kBlock;
  s.block_deadline_ns = 1'000'000'000;
  s.combine_batch = 1u << 30;
  s.publish_eager = true;
  cpma::serve::ServingPMA<cpma::CPMA> serve(s);
  // Every insert past the cap blocks briefly, volunteers as the combiner,
  // drains the queue, and gets admitted — no op is ever lost.
  for (uint64_t i = 0; i < 50; ++i) EXPECT_TRUE(serve.insert(i + 1));
  serve.flush();
  EXPECT_EQ(serve.size(), 50u);
  auto qs = serve.serving_stats();
  EXPECT_GT(qs[0].blocked, 0u);
  EXPECT_EQ(qs[0].rejected, 0u);
}

TEST(Backpressure, UnboundedByDefault) {
  cpma::serve::ServingSettings s;
  s.sharded.num_shards = 1;
  s.combine_batch = 1u << 30;
  if (s.queue_cap != 0) GTEST_SKIP() << "CPMA_SERVE_QUEUE_CAP set in env";
  cpma::serve::ServingPMA<cpma::CPMA> serve(s);
  for (uint64_t i = 0; i < 10'000; ++i) ASSERT_TRUE(serve.insert(i + 1));
  EXPECT_EQ(serve.serving_stats()[0].depth, 10'000u);
  serve.flush();
  EXPECT_EQ(serve.size(), 10'000u);
}

// ---- epoch participant overflow -------------------------------------------

TEST(EpochOverflow, SharedSlotIsConservativeAndReleases) {
  cpma::serve::EpochManager mgr(1);  // force almost every thread to overflow
  std::atomic<uint64_t> pinned{0};
  std::atomic<bool> release{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      auto g = mgr.pin();
      auto nested = mgr.pin();  // nested overflow pins must refcount
      pinned.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
    });
  }
  while (pinned.load() < 4) std::this_thread::yield();
  const uint64_t pinned_epoch = mgr.min_active();
  // At least 3 of the 4 threads exceeded capacity 1.
  EXPECT_GE(mgr.overflow_pins(), 3u);
  // Advancing the epoch must NOT advance min_active past the held pins.
  mgr.advance();
  mgr.advance();
  EXPECT_EQ(mgr.min_active(), pinned_epoch);
  release.store(true);
  for (auto& t : threads) t.join();
  EXPECT_EQ(mgr.overflow_pins(), 0u);
  EXPECT_EQ(mgr.min_active(), mgr.current());
}

TEST(EpochOverflow, ServingSurvivesMoreThreadsThanSlots) {
  // An EpochManager capacity below the thread count must still serve
  // correct snapshots (this is the >kMaxParticipants scenario scaled down;
  // ServingPMA uses the default capacity, EpochManager the mechanism).
  cpma::serve::EpochManager mgr(2);
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 6; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto g = mgr.pin();
        (void)mgr.min_active();
      }
    });
  }
  for (int i = 0; i < 1000; ++i) {
    mgr.advance();
    EXPECT_LE(mgr.min_active(), mgr.current());
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
}

}  // namespace
