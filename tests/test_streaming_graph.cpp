// Streaming-graph tests: concurrent union-find (unit + randomized
// differential vs a sequential DSU + real threads), and the differential
// backbone of the streaming engine — BFS / CC / PageRank on an
// epoch-pinned snapshot must equal the same algorithms on a CSR rebuilt
// from exactly that snapshot's edge cut, including while an ingest thread
// keeps mutating the graph under the pin.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/csr.hpp"
#include "graph/fgraph.hpp"
#include "graph/generators.hpp"
#include "graph/streaming.hpp"
#include "graph/union_find.hpp"
#include "util/random.hpp"

using namespace cpma::graph;

namespace {

// Sequential DSU reference (path compression + union by size).
class SeqDsu {
 public:
  explicit SeqDsu(uint64_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), uint64_t{0});
  }
  uint64_t find(uint64_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool unite(uint64_t a, uint64_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return true;
  }
  uint64_t num_sets() {
    uint64_t c = 0;
    for (uint64_t i = 0; i < parent_.size(); ++i) c += find(i) == i;
    return c;
  }
 private:
  std::vector<uint64_t> parent_, size_;
};

cpma::serve::ServingSettings eager_settings(uint64_t shards) {
  cpma::serve::ServingSettings s;
  s.sharded.num_shards = shards;
  s.publish_eager = true;
  return s;
}

TEST(UnionFind, Basic) {
  ConcurrentUnionFind uf(8);
  EXPECT_EQ(uf.num_sets(), 8u);
  EXPECT_FALSE(uf.same_set(0, 1));
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));  // already joined
  EXPECT_TRUE(uf.same_set(0, 1));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_TRUE(uf.unite(0, 3));
  EXPECT_TRUE(uf.same_set(1, 2));
  EXPECT_EQ(uf.num_sets(), 5u);  // {0,1,2,3} + four singletons
  uf.reset(8);
  EXPECT_EQ(uf.num_sets(), 8u);
  EXPECT_FALSE(uf.same_set(0, 1));
}

TEST(UnionFind, RandomizedVsSequentialDsu) {
  const uint64_t n = 500;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    ConcurrentUnionFind uf(n);
    SeqDsu ref(n);
    for (uint64_t i = 0; i < 2000; ++i) {
      uint64_t a = cpma::util::hash64(seed * 10007 + 2 * i) % n;
      uint64_t b = cpma::util::hash64(seed * 10007 + 2 * i + 1) % n;
      EXPECT_EQ(uf.unite(a, b), ref.unite(a, b));
      if (i % 97 == 0) {
        uint64_t x = cpma::util::hash64(i) % n;
        uint64_t y = cpma::util::hash64(i + 1) % n;
        EXPECT_EQ(uf.same_set(x, y), ref.find(x) == ref.find(y));
      }
    }
    EXPECT_EQ(uf.num_sets(), ref.num_sets());
  }
}

TEST(UnionFind, ConcurrentUnitesMatchSequential) {
  const uint64_t n = 2000;
  const int threads = 4;
  std::vector<uint64_t> pairs(2 * 6000);
  for (uint64_t i = 0; i < pairs.size(); ++i) {
    pairs[i] = cpma::util::hash64(i ^ 0xabcdef) % n;
  }
  ConcurrentUnionFind uf(n);
  std::vector<std::thread> ts;
  for (int t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] {
      for (uint64_t i = t; i < pairs.size() / 2; i += threads) {
        uf.unite(pairs[2 * i], pairs[2 * i + 1]);
      }
    });
  }
  for (auto& th : ts) th.join();
  SeqDsu ref(n);
  for (uint64_t i = 0; i < pairs.size() / 2; ++i) {
    ref.unite(pairs[2 * i], pairs[2 * i + 1]);
  }
  EXPECT_EQ(uf.num_sets(), ref.num_sets());
  for (uint64_t i = 0; i < 500; ++i) {
    uint64_t x = cpma::util::hash64(i) % n, y = cpma::util::hash64(~i) % n;
    EXPECT_EQ(uf.same_set(x, y), ref.find(x) == ref.find(y));
  }
}

// Quiescent differential: algorithms on a pinned snapshot equal the same
// algorithms on a CSR built from that snapshot's materialized edge cut.
TEST(StreamingGraph, SnapshotMatchesCsrQuiescent) {
  const uint32_t scale = 10;
  const vertex_t n = 1u << scale;
  auto edges = symmetrize(rmat_edges(scale, 6000, 7));
  StreamingGraphCPMA g(n, eager_settings(4));
  g.insert_edges(edges);
  g.flush();

  auto snap = g.snapshot();
  Csr csr(n, snap.edge_keys());
  EXPECT_EQ(snap.num_edges(), csr.num_edges());

  auto d_s = bfs(snap, 1);
  auto d_c = bfs(csr, 1);
  ASSERT_EQ(d_s.size(), d_c.size());
  for (vertex_t v = 0; v < n; ++v) EXPECT_EQ(d_s[v], d_c[v]) << "v=" << v;

  auto cc_s = connected_components(snap);
  auto cc_c = connected_components(csr);
  for (vertex_t v = 0; v < n; ++v) EXPECT_EQ(cc_s[v], cc_c[v]) << "v=" << v;

  // Snapshot PR uses the flat run-scan (atomic adds, nondeterministic
  // order); CSR takes the pull path — compare within fp-reassociation slop.
  auto pr_s = pagerank(snap);
  auto pr_c = pagerank(csr);
  for (vertex_t v = 0; v < n; ++v) EXPECT_NEAR(pr_s[v], pr_c[v], 1e-12);

  auto bc_s = betweenness_centrality(snap, 1);
  auto bc_c = betweenness_centrality(csr, 1);
  for (vertex_t v = 0; v < n; ++v) EXPECT_NEAR(bc_s[v], bc_c[v], 1e-9);
}

// Snapshot isolation: a pinned snapshot is a frozen cut — its edge count,
// BFS, and CC stay byte-identical to a CSR of that cut while a live ingest
// thread pushes batches underneath it, and never reflect any later batch.
TEST(StreamingGraph, SnapshotIsolationUnderConcurrentIngest) {
  const uint32_t scale = 10;
  const vertex_t n = 1u << scale;
  StreamingGraphCPMA g(n, eager_settings(4));
  g.insert_edges(symmetrize(rmat_edges(scale, 4000, 11)));
  g.flush();

  auto snap = g.snapshot();
  const uint64_t pinned_edges = snap.num_edges();
  Csr csr(n, snap.edge_keys());

  std::atomic<bool> stop{false};
  std::thread ingest([&] {
    uint64_t round = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      g.insert_edges(symmetrize(rmat_edges(scale, 500, 1000 + round++)));
      g.flush();
    }
  });

  for (int rep = 0; rep < 3; ++rep) {
    EXPECT_EQ(snap.num_edges(), pinned_edges);
    auto d_s = bfs(snap, 1);
    auto d_c = bfs(csr, 1);
    for (vertex_t v = 0; v < n; ++v) ASSERT_EQ(d_s[v], d_c[v]);
    auto cc_s = connected_components(snap);
    auto cc_c = connected_components(csr);
    for (vertex_t v = 0; v < n; ++v) ASSERT_EQ(cc_s[v], cc_c[v]);
  }
  stop.store(true);
  ingest.join();

  // The live graph moved on; a fresh snapshot sees at least the pinned cut.
  auto fresh = g.snapshot();
  EXPECT_GE(fresh.num_edges(), pinned_edges);
  EXPECT_GE(fresh.seq(), snap.seq());
}

// Streaming connectivity (incremental union-find) agrees with CC computed
// from a snapshot, across multiple ingest batches.
TEST(StreamingGraph, IncrementalConnectivityMatchesSnapshotCc) {
  const uint32_t scale = 10;
  const vertex_t n = 1u << scale;
  StreamingGraphCPMA g(n, eager_settings(4));
  for (uint64_t batch = 0; batch < 4; ++batch) {
    g.insert_edges(symmetrize(rmat_edges(scale, 1500, 31 + batch)));
    g.flush();
    EXPECT_TRUE(g.connectivity_exact());

    auto snap = g.snapshot();
    auto labels = connected_components(snap);
    std::vector<uint8_t> seen(n, 0);
    uint64_t comps = 0;
    for (vertex_t v = 0; v < n; ++v) {
      if (!seen[labels[v]]) {
        seen[labels[v]] = 1;
        ++comps;
      }
    }
    EXPECT_EQ(g.num_components(), comps);
    for (uint64_t q = 0; q < 200; ++q) {
      vertex_t a = cpma::util::hash64(q) % n;
      vertex_t b = cpma::util::hash64(q ^ 0x5555) % n;
      EXPECT_EQ(g.connected(a, b), labels[a] == labels[b]);
    }
  }
}

// Removals stale the monotone union-find; rebuild_connectivity() re-derives
// it from a snapshot and restores exactness.
TEST(StreamingGraph, RemovalStalesConnectivityUntilRebuild) {
  const vertex_t n = 16;
  StreamingGraphCPMA g(n, eager_settings(2));
  // A path 0-1-2-3, plus an isolated pair 8-9.
  g.insert_edges(symmetrize({edge_key(0, 1), edge_key(1, 2), edge_key(2, 3),
                             edge_key(8, 9)}));
  g.flush();
  EXPECT_TRUE(g.connected(0, 3));
  EXPECT_TRUE(g.connectivity_exact());

  g.remove_edges(symmetrize({edge_key(1, 2)}));
  g.flush();
  EXPECT_FALSE(g.connectivity_exact());
  EXPECT_TRUE(g.connected(0, 3));  // over-approximation while stale

  g.rebuild_connectivity();
  EXPECT_TRUE(g.connectivity_exact());
  EXPECT_FALSE(g.connected(0, 3));
  EXPECT_TRUE(g.connected(0, 1));
  EXPECT_TRUE(g.connected(2, 3));
  EXPECT_TRUE(g.connected(8, 9));
  EXPECT_FALSE(g.has_edge(1, 2));
}

// Snapshot staleness metadata: seq advances across publishes and age is
// measured from the publish instant.
TEST(StreamingGraph, SnapshotStalenessMetadata) {
  StreamingGraphCPMA g(64, eager_settings(2));
  g.insert_edges(symmetrize({edge_key(1, 2)}));
  g.flush();
  auto s1 = g.snapshot();
  g.insert_edges(symmetrize({edge_key(2, 3)}));
  g.flush();
  auto s2 = g.snapshot();
  EXPECT_GT(s1.seq(), 0u);
  EXPECT_GT(s2.seq(), s1.seq());
  EXPECT_LT(s2.age_ns(), uint64_t{60} * 1000 * 1000 * 1000);
}

// The F-Graph protocol generalizes to the sharded store: FGraphT<SCPMA>
// must agree with the single-engine FGraph on the whole algorithm suite.
TEST(StreamingGraph, ShardedFGraphMatchesSingleEngine) {
  const uint32_t scale = 10;
  const vertex_t n = 1u << scale;
  auto edges = symmetrize(rmat_edges(scale, 5000, 99));
  FGraph single(n, edges);
  FGraphT<cpma::SCPMA> sharded(n, edges);
  EXPECT_EQ(single.num_edges(), sharded.num_edges());

  auto d_1 = bfs(single, 1);
  auto d_s = bfs(sharded, 1);
  for (vertex_t v = 0; v < n; ++v) EXPECT_EQ(d_1[v], d_s[v]);

  auto cc_1 = connected_components(single);
  auto cc_s = connected_components(sharded);
  for (vertex_t v = 0; v < n; ++v) EXPECT_EQ(cc_1[v], cc_s[v]);

  auto pr_1 = pagerank(single);
  auto pr_s = pagerank(sharded);
  for (vertex_t v = 0; v < n; ++v) EXPECT_NEAR(pr_1[v], pr_s[v], 1e-12);
}

// Algorithms on a snapshot while a SECOND algorithm thread runs on its own
// pin: two concurrent readers, one writer, no interference.
TEST(StreamingGraph, TwoReadersOneWriter) {
  const uint32_t scale = 9;
  const vertex_t n = 1u << scale;
  StreamingGraphCPMA g(n, eager_settings(4));
  g.insert_edges(symmetrize(rmat_edges(scale, 3000, 5)));
  g.flush();

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t round = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      g.insert_edges(symmetrize(rmat_edges(scale, 200, 7000 + round++)));
      g.flush();
    }
  });
  auto reader = [&] {
    for (int i = 0; i < 3; ++i) {
      auto snap = g.snapshot();
      Csr csr(n, snap.edge_keys());
      auto d_s = bfs(snap, 0);
      auto d_c = bfs(csr, 0);
      for (vertex_t v = 0; v < n; ++v) ASSERT_EQ(d_s[v], d_c[v]);
    }
  };
  std::thread r1(reader), r2(reader);
  r1.join();
  r2.join();
  stop.store(true);
  writer.join();
}

}  // namespace
