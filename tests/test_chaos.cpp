// Chaos suite: randomized crash-recovery schedules for DurablePMA, typed
// over all three engines (PMA / CPMA / ACPMA), differential against a
// std::set oracle.
//
// THE ORACLE. Every write in a schedule is a batch, and every applied
// batch consumes exactly one global LSN, so the store's reachable states
// form a totally ordered sequence of prefixes: at_lsn[L] = the oracle set
// after the batch that consumed LSN L. The durability design guarantees
// that recovery lands EXACTLY on one of these prefixes (checkpoint = the
// state at its cut LSN, plus a contiguous replay of whole batches), and
// RecoveryReport::last_lsn says which one. So after every crash:
//
//   1. at_lsn contains report.last_lsn            (never a mid-batch state)
//   2. recovered contents == at_lsn[last_lsn]     (bit-exact differential)
//   3. last_lsn >= the durable watermark at exit  (no acked-durable loss)
//
// (3) is skipped for schedules that inject SILENT bit flips into
// acknowledged writes — a flipped-but-"successful" append can corrupt a
// record the watermark already covered, which a single-copy WAL cannot
// survive by design; (1) and (2) still must hold (the CRC turns the flip
// into a detected gap, so recovery falls back to an earlier prefix, never
// to garbage).
//
// Schedules randomize: shard count, fsync policy, batch mix (insert /
// remove / sync / sync-or-async checkpoint), kill point, the MemVfs crash
// seed (torn unsynced tails, dropped unsynced dir entries, flipped bits in
// torn regions), and — in the fault schedules — a FaultyVfs plan of write
// errors, short writes, and fsync failures while the store is LIVE.
// CPMA_CHAOS_SEED (set from the CI run id) shifts every schedule.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "pma/cpma.hpp"
#include "util/env.hpp"
#include "util/random.hpp"

using cpma::durable::DurablePMA;
using cpma::durable::DurableSettings;
using cpma::durable::FsyncPolicy;
using cpma::durable::RecoveryReport;
using cpma::durable::io::FaultPlan;
using cpma::durable::io::FaultyVfs;
using cpma::durable::io::MemVfs;
using cpma::util::Rng;

namespace {

constexpr uint64_t kSchedulesPerEngine = 20;  // x2 suites x3 engines = 120

uint64_t chaos_base_seed() {
  static const uint64_t base = cpma::util::env_u64("CPMA_CHAOS_SEED", 0);
  return base;
}

DurableSettings random_settings(Rng& rng) {
  DurableSettings s;
  s.serving.sharded.num_shards = 1 + rng.next_below(4);
  // Tiny rebalance threshold so splitters actually move mid-schedule —
  // the global-LSN design must survive keys migrating between shard WALs.
  s.serving.sharded.min_rebalance_bytes = 1 << 10;
  s.serving.sharded.rebalance_ratio = 1.5;
  s.serving.publish_eager = true;
  switch (rng.next_below(3)) {
    case 0:
      s.wal.policy = FsyncPolicy::kAlways;
      break;
    case 1:
      s.wal.policy = FsyncPolicy::kInterval;
      s.wal.interval_bytes = 1 + rng.next_below(2048);
      s.wal.interval_ns = UINT64_MAX;  // bytes-driven: deterministic
      break;
    default:
      s.wal.policy = FsyncPolicy::kNever;
      break;
  }
  return s;
}

std::vector<uint64_t> random_batch(Rng& rng, uint64_t key_base) {
  std::vector<uint64_t> batch(1 + rng.next_below(120));
  for (auto& k : batch) {
    // Small universe (plenty of remove hits, duplicate inserts) mixed with
    // occasional huge keys to vary delta widths in the compressed leaves.
    k = rng.next_below(16) == 0
            ? rng.next() | (1ull << 63)
            : key_base + rng.next_below(600);
  }
  return batch;
}

struct WindowOutcome {
  uint64_t durable_at_exit = 0;
  std::map<uint64_t, std::set<uint64_t>> at_lsn;
  std::set<uint64_t> model;
};

// One open->workload->kill window. Applies random batches to `d` and the
// oracle in lockstep, recording the oracle state at every consumed LSN
// and the durable watermark at the moment the caller destroys `d`.
template <typename Engine>
void run_window(DurablePMA<Engine>& d, Rng& rng, uint64_t key_base,
                WindowOutcome& w) {
  std::map<uint64_t, std::set<uint64_t>>& at_lsn = w.at_lsn;
  std::set<uint64_t>& model = w.model;
  at_lsn[d.last_lsn()] = model;
  const uint64_t steps = 6 + rng.next_below(12);
  bool async_pending = false;
  for (uint64_t step = 0; step < steps; ++step) {
    const uint64_t pick = rng.next_below(100);
    if (pick < 55) {
      std::vector<uint64_t> batch = random_batch(rng, key_base);
      const uint64_t before = d.last_lsn();
      d.insert_batch(batch);
      if (d.last_lsn() == before) continue;  // vetoed (WAL down): no state
      ASSERT_EQ(d.last_lsn(), before + 1) << "one batch, one LSN";
      model.insert(batch.begin(), batch.end());
      at_lsn[d.last_lsn()] = model;
    } else if (pick < 85) {
      std::vector<uint64_t> batch = random_batch(rng, key_base);
      const uint64_t before = d.last_lsn();
      d.remove_batch(batch);
      if (d.last_lsn() == before) continue;
      ASSERT_EQ(d.last_lsn(), before + 1);
      for (uint64_t k : batch) model.erase(k);
      at_lsn[d.last_lsn()] = model;
    } else if (pick < 92) {
      d.sync_wal();  // may fail under faults; watermark just stays put
    } else if (async_pending || rng.next_below(2) == 0) {
      d.checkpoint();  // failure tolerated: previous generation stays live
    } else {
      // Leave the body writing in the background across later batches (and
      // sometimes across the kill itself — the dtor joins, the crash model
      // then tears whatever the body had not synced).
      async_pending = d.checkpoint_async().ok();
    }
  }
  w.durable_at_exit = d.durable_lsn();
}

// Reopen on the (clean) base vfs and check the three oracle properties.
template <typename Engine>
void verify_recovery(MemVfs& vfs, const DurableSettings& settings,
                     const WindowOutcome& w, bool silent_flips,
                     const std::string& ctx,
                     std::set<uint64_t>* recovered_out,
                     uint64_t* recovered_lsn) {
  DurablePMA<Engine> d(vfs, "db", settings);
  const RecoveryReport& r = d.recovery_report();
  auto it = w.at_lsn.find(r.last_lsn);
  ASSERT_NE(it, w.at_lsn.end())
      << ctx << ": recovery landed on LSN " << r.last_lsn
      << " which is not a batch boundary";
  std::vector<uint64_t> got;
  d.snapshot().map([&](uint64_t k) { got.push_back(k); });
  const std::vector<uint64_t> want(it->second.begin(), it->second.end());
  ASSERT_EQ(got, want) << ctx << ": recovered state is not the LSN-"
                       << r.last_lsn << " prefix";
  if (!silent_flips) {
    EXPECT_GE(r.last_lsn, w.durable_at_exit)
        << ctx << ": lost writes below the durable watermark";
  }
  std::string err;
  ASSERT_TRUE(d.serving().store().check_invariants(&err)) << ctx << ": "
                                                          << err;
  *recovered_out = it->second;
  *recovered_lsn = r.last_lsn;
}

template <typename E>
class Chaos : public ::testing::Test {};
using Engines = ::testing::Types<cpma::PMA, cpma::CPMA, cpma::ACPMA>;
TYPED_TEST_SUITE(Chaos, Engines);

// Clean I/O, two crash generations per schedule: the second window reuses
// LSNs the first window's tail lost, so recovery's fresh-checkpoint /
// prune / newest-(cseq,part) arbitration is on the line, not just replay.
TYPED_TEST(Chaos, KillPointRecoveryDifferential) {
  for (uint64_t i = 0; i < kSchedulesPerEngine; ++i) {
    const uint64_t seed = chaos_base_seed() * 1315423911u + i * 2654435761u;
    Rng rng(seed + 1);  // Rng(0) would be degenerate if base*... == 0
    const std::string ctx = "schedule " + std::to_string(i) + " (seed " +
                            std::to_string(seed) + ")";
    MemVfs vfs;
    DurableSettings settings = random_settings(rng);
    const uint64_t key_base = rng.next_below(1u << 20);

    WindowOutcome w;
    uint64_t recovered_lsn = 0;
    {
      DurablePMA<TypeParam> d(vfs, "db", settings);
      run_window(d, rng, key_base, w);
      if (::testing::Test::HasFatalFailure()) return;
    }  // kill point: no flush, no final sync
    vfs.crash(rng.next());
    std::set<uint64_t> recovered;
    verify_recovery<TypeParam>(vfs, settings, w, /*silent_flips=*/false,
                               ctx + " gen1", &recovered, &recovered_lsn);
    if (::testing::Test::HasFatalFailure()) return;

    // Generation 2: continue from the recovered prefix.
    WindowOutcome w2;
    w2.model = recovered;
    {
      DurablePMA<TypeParam> d(vfs, "db", settings);
      ASSERT_EQ(d.last_lsn(), recovered_lsn) << ctx;
      run_window(d, rng, key_base, w2);
      if (::testing::Test::HasFatalFailure()) return;
    }
    vfs.crash(rng.next());
    verify_recovery<TypeParam>(vfs, settings, w2, /*silent_flips=*/false,
                               ctx + " gen2", &recovered, &recovered_lsn);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// Live I/O faults (write errors, short writes, failed fsyncs; every 4th
// schedule also silent bit flips) injected while the store runs, then a
// crash on top. Recovery must still land bit-exactly on a batch boundary.
TYPED_TEST(Chaos, FaultScheduleRecovery) {
  for (uint64_t i = 0; i < kSchedulesPerEngine; ++i) {
    const uint64_t seed = chaos_base_seed() * 2246822519u + i * 3266489917u;
    Rng rng(seed + 1);
    const std::string ctx = "fault schedule " + std::to_string(i) +
                            " (seed " + std::to_string(seed) + ")";
    MemVfs base;
    FaultPlan plan;
    plan.seed = rng.next();
    plan.write_error_bp = static_cast<uint32_t>(rng.next_below(250));
    plan.short_write_bp = static_cast<uint32_t>(rng.next_below(250));
    plan.sync_fail_bp = static_cast<uint32_t>(rng.next_below(250));
    const bool silent_flips = i % 4 == 0;
    if (silent_flips) {
      plan.bit_flip_bp = static_cast<uint32_t>(1 + rng.next_below(100));
    }
    FaultyVfs faulty(base, plan);
    DurableSettings settings = random_settings(rng);
    const uint64_t key_base = rng.next_below(1u << 20);

    WindowOutcome w;
    {
      DurablePMA<TypeParam> d(faulty, "db", settings);
      run_window(d, rng, key_base, w);
      if (::testing::Test::HasFatalFailure()) return;
    }
    base.crash(rng.next());
    // Recovery itself runs on clean I/O: the question under test is
    // whether the BYTES the faults left behind recover consistently.
    std::set<uint64_t> recovered;
    uint64_t recovered_lsn = 0;
    verify_recovery<TypeParam>(base, settings, w, silent_flips, ctx,
                               &recovered, &recovered_lsn);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// Concurrent clients against the bounded queues while checkpoints run:
// every admitted op must survive the flush and the crash (TSan food).
TYPED_TEST(Chaos, ConcurrentBoundedIngestSurvivesCrash) {
  MemVfs vfs;
  DurableSettings settings;
  settings.serving.sharded.num_shards = 4;
  settings.serving.sharded.min_rebalance_bytes = 1 << 12;
  settings.serving.publish_eager = true;
  settings.serving.queue_cap = 64;
  settings.serving.admission = cpma::serve::Admission::kBlock;
  settings.serving.block_deadline_ns = 2'000'000'000;
  settings.serving.combine_batch = 32;
  settings.wal.policy = FsyncPolicy::kInterval;
  settings.wal.interval_bytes = 1 << 12;

  constexpr uint64_t kThreads = 4;
  constexpr uint64_t kPerThread = 2000;
  std::atomic<uint64_t> admitted{0};
  {
    DurablePMA<TypeParam> d(vfs, "db", settings);
    std::vector<std::thread> clients;
    for (uint64_t t = 0; t < kThreads; ++t) {
      clients.emplace_back([&, t] {
        for (uint64_t i = 0; i < kPerThread; ++i) {
          const uint64_t key = (t * kPerThread + i + 1) * 0x9E3779B9ull;
          if (d.insert(key)) admitted.fetch_add(1);
        }
      });
    }
    for (int c = 0; c < 3; ++c) d.checkpoint();
    for (auto& t : clients) t.join();
    ASSERT_EQ(admitted.load(), kThreads * kPerThread)
        << "block admission must drain, not time out";
    ASSERT_TRUE(d.sync_wal().ok());
    EXPECT_EQ(d.size(), kThreads * kPerThread);
    const auto qs = d.serving().serving_stats();
    uint64_t depth = 0;
    for (const auto& q : qs) depth += q.depth;
    EXPECT_EQ(depth, 0u);
  }
  vfs.crash(4242);
  DurablePMA<TypeParam> d(vfs, "db", settings);
  EXPECT_EQ(d.size(), kThreads * kPerThread);
  std::string err;
  EXPECT_TRUE(d.serving().store().check_invariants(&err)) << err;
}

}  // namespace
