// Randomized differential harness: drives PMA, CPMA, ACPMA, and std::set
// through
// identical interleaved workloads (point inserts/removes, batch
// inserts/removes, successor probes, bounded range scans) and asserts
// elementwise parity plus structural invariants after every phase. This is
// the PaC-tree-style methodology: validate the compressed structures against
// an uncompressed reference on the exact same operation stream.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "pma/cpma.hpp"
#include "util/random.hpp"

using cpma::ACPMA;
using cpma::CPMA;
using cpma::PMA;
using cpma::util::Rng;

namespace {

// All four structures under one roof; every mutation goes through here so
// the operation streams cannot diverge. ACPMA exercises the adaptive
// per-leaf codec selection (bitmap leaves in the dense spaces, group-varint
// in the sparse ones) on the exact same stream as the canonical engines.
struct Trio {
  PMA pma;
  CPMA cpma;
  ACPMA acpma;
  std::set<uint64_t> ref;

  void insert(uint64_t k) {
    bool expect = ref.insert(k).second;
    ASSERT_EQ(pma.insert(k), expect) << "PMA insert(" << k << ")";
    ASSERT_EQ(cpma.insert(k), expect) << "CPMA insert(" << k << ")";
    ASSERT_EQ(acpma.insert(k), expect) << "ACPMA insert(" << k << ")";
  }

  void remove(uint64_t k) {
    bool expect = ref.erase(k) == 1;
    ASSERT_EQ(pma.remove(k), expect) << "PMA remove(" << k << ")";
    ASSERT_EQ(cpma.remove(k), expect) << "CPMA remove(" << k << ")";
    ASSERT_EQ(acpma.remove(k), expect) << "ACPMA remove(" << k << ")";
  }

  void insert_batch(std::vector<uint64_t> batch) {
    uint64_t expect = 0;
    for (uint64_t k : batch) expect += ref.insert(k).second ? 1 : 0;
    std::vector<uint64_t> copy = batch;  // batch calls may permute the input
    ASSERT_EQ(pma.insert_batch(copy.data(), copy.size()), expect);
    std::vector<uint64_t> copy2 = batch;
    ASSERT_EQ(cpma.insert_batch(copy2.data(), copy2.size()), expect);
    ASSERT_EQ(acpma.insert_batch(batch.data(), batch.size()), expect);
  }

  void remove_batch(std::vector<uint64_t> batch) {
    uint64_t expect = 0;
    for (uint64_t k : batch) expect += ref.erase(k);
    std::vector<uint64_t> copy = batch;
    ASSERT_EQ(pma.remove_batch(copy.data(), copy.size()), expect);
    std::vector<uint64_t> copy2 = batch;
    ASSERT_EQ(cpma.remove_batch(copy2.data(), copy2.size()), expect);
    ASSERT_EQ(acpma.remove_batch(batch.data(), batch.size()), expect);
  }

  // Full elementwise parity (iterator order + map order) and invariants.
  void check_full() {
    std::string err;
    ASSERT_TRUE(pma.check_invariants(&err)) << "PMA: " << err;
    ASSERT_TRUE(cpma.check_invariants(&err)) << "CPMA: " << err;
    ASSERT_TRUE(acpma.check_invariants(&err)) << "ACPMA: " << err;

    ASSERT_EQ(pma.size(), ref.size());
    ASSERT_EQ(cpma.size(), ref.size());
    ASSERT_EQ(acpma.size(), ref.size());

    std::vector<uint64_t> expect(ref.begin(), ref.end());
    std::vector<uint64_t> got_pma;
    for (uint64_t k : pma) got_pma.push_back(k);
    ASSERT_EQ(got_pma, expect) << "PMA iteration order diverged";
    std::vector<uint64_t> got_cpma;
    cpma.map([&](uint64_t k) { got_cpma.push_back(k); });
    ASSERT_EQ(got_cpma, expect) << "CPMA map order diverged";
    std::vector<uint64_t> got_acpma;
    acpma.map([&](uint64_t k) { got_acpma.push_back(k); });
    ASSERT_EQ(got_acpma, expect) << "ACPMA map order diverged";

    uint64_t sum = 0;
    for (uint64_t k : expect) sum += k;
    ASSERT_EQ(pma.sum(), sum);
    ASSERT_EQ(cpma.sum(), sum);
    ASSERT_EQ(acpma.sum(), sum);

    if (!ref.empty()) {
      ASSERT_EQ(pma.min(), *ref.begin());
      ASSERT_EQ(cpma.min(), *ref.begin());
      ASSERT_EQ(acpma.min(), *ref.begin());
      ASSERT_EQ(pma.max(), *ref.rbegin());
      ASSERT_EQ(cpma.max(), *ref.rbegin());
      ASSERT_EQ(acpma.max(), *ref.rbegin());
    }
  }

  // Spot queries: successor + bounded range scans at a probe key.
  void check_queries(uint64_t probe) {
    auto it = ref.lower_bound(probe);
    std::optional<uint64_t> expect =
        it == ref.end() ? std::nullopt : std::optional<uint64_t>(*it);
    ASSERT_EQ(pma.successor(probe), expect) << "probe=" << probe;
    ASSERT_EQ(cpma.successor(probe), expect) << "probe=" << probe;
    ASSERT_EQ(acpma.successor(probe), expect) << "probe=" << probe;

    ASSERT_EQ(pma.has(probe), ref.count(probe) == 1);
    ASSERT_EQ(cpma.has(probe), ref.count(probe) == 1);
    ASSERT_EQ(acpma.has(probe), ref.count(probe) == 1);

    const uint64_t len = 64;
    std::vector<uint64_t> expect_range;
    for (auto jt = it; jt != ref.end() && expect_range.size() < len; ++jt) {
      expect_range.push_back(*jt);
    }
    std::vector<uint64_t> got;
    uint64_t n = pma.map_range_length([&](uint64_t k) { got.push_back(k); },
                                      probe, len);
    ASSERT_EQ(n, expect_range.size());
    ASSERT_EQ(got, expect_range) << "PMA range scan diverged at " << probe;
    got.clear();
    n = cpma.map_range_length([&](uint64_t k) { got.push_back(k); }, probe,
                              len);
    ASSERT_EQ(n, expect_range.size());
    ASSERT_EQ(got, expect_range) << "CPMA range scan diverged at " << probe;
    got.clear();
    n = acpma.map_range_length([&](uint64_t k) { got.push_back(k); }, probe,
                               len);
    ASSERT_EQ(n, expect_range.size());
    ASSERT_EQ(got, expect_range) << "ACPMA range scan diverged at " << probe;
  }
};

// ~1e5 elementary operations per seed: interleaved phases of point ops,
// batches, and deletions over a bounded key space so collisions, duplicate
// inserts, and misses all occur.
void run_differential(uint64_t seed, uint64_t space) {
  Trio t;
  Rng r(seed);
  uint64_t ops = 0;
  const uint64_t target_ops = 100'000;
  int phase = 0;
  while (ops < target_ops) {
    int op = static_cast<int>(r.next() % 12);
    if (op < 5) {  // point insert
      t.insert(r.next() % space);
      if (::testing::Test::HasFatalFailure()) return;
      ops += 1;
    } else if (op < 8) {  // point remove
      t.remove(r.next() % space);
      if (::testing::Test::HasFatalFailure()) return;
      ops += 1;
    } else if (op < 10) {  // batch insert (unsorted, with duplicates)
      std::vector<uint64_t> batch(1 + r.next() % 2000);
      for (auto& k : batch) k = r.next() % space;
      ops += batch.size();
      t.insert_batch(std::move(batch));
      if (::testing::Test::HasFatalFailure()) return;
    } else if (op == 10) {  // batch remove
      std::vector<uint64_t> batch(1 + r.next() % 1000);
      for (auto& k : batch) k = r.next() % space;
      ops += batch.size();
      t.remove_batch(std::move(batch));
      if (::testing::Test::HasFatalFailure()) return;
    } else {  // queries
      t.check_queries(r.next() % space);
      if (::testing::Test::HasFatalFailure()) return;
      ops += 1;
    }
    // Full parity + invariants at phase boundaries (every ~1/16 of the run);
    // doing it after every op would be quadratic in the set size.
    if (ops > (phase + 1) * (target_ops / 16)) {
      ++phase;
      t.check_full();
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  t.check_full();
}

class Differential
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint64_t>> {};

TEST_P(Differential, PmaCpmaSetParity) {
  auto [seed, space] = GetParam();
  run_differential(seed, space);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, Differential,
    ::testing::Values(std::make_tuple(1, 1 << 10),   // dense: heavy collisions
                      std::make_tuple(2, 1 << 16),   // medium
                      std::make_tuple(3, uint64_t{1} << 40),  // sparse 40-bit
                      std::make_tuple(4, 1 << 4)),   // tiny space, churn
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_space2e" +
             std::to_string(64 - __builtin_clzll(std::get<1>(info.param)) - 1);
    });

// Deletion-heavy convergence: fill, then drain through interleaved point and
// batch removes, checking parity down to empty.
TEST(Differential, DrainToEmpty) {
  Trio t;
  Rng r(99);
  std::vector<uint64_t> keys(20'000);
  for (auto& k : keys) k = r.next() % 100'000;
  t.insert_batch(keys);
  if (::testing::Test::HasFatalFailure()) return;
  t.check_full();
  if (::testing::Test::HasFatalFailure()) return;
  while (!t.ref.empty()) {
    std::vector<uint64_t> victims;
    uint64_t take = 1 + r.next() % 4000;
    for (uint64_t k : t.ref) {
      if (victims.size() == take) break;
      if (r.next() % 2 == 0) victims.push_back(k);
    }
    if (victims.empty()) victims.push_back(*t.ref.begin());
    t.remove_batch(victims);
    if (::testing::Test::HasFatalFailure()) return;
    t.check_full();
    if (::testing::Test::HasFatalFailure()) return;
  }
  ASSERT_TRUE(t.pma.empty());
  ASSERT_TRUE(t.cpma.empty());
  ASSERT_TRUE(t.acpma.empty());
}

}  // namespace
