// ShardedPMA differential + boundary suite.
//
// Methodology mirrors test_differential.cpp: drive the sharded composition,
// the direct single engine, and std::set through identical operation
// streams and assert elementwise parity plus structural invariants — for
// both leaf policies, with shard counts > 1 and workloads skewed enough to
// trigger adaptive rebalancing. Boundary coverage pins down the key-0
// sentinel, UINT64_MAX, and keys exactly at / adjacent to shard splitters.
#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "pma/cpma.hpp"
#include "util/random.hpp"

using cpma::pma::ShardedPMA;
using cpma::pma::ShardedSettings;
using cpma::util::Rng;

namespace {

template <typename E>
struct ShardedCase {
  using Engine = E;
};

using Engines =
    ::testing::Types<ShardedCase<cpma::PMA>, ShardedCase<cpma::CPMA>>;

template <typename Case>
class Sharded : public ::testing::Test {};
TYPED_TEST_SUITE(Sharded, Engines);

// Aggressive rebalance settings so small test workloads exercise the
// boundary-move machinery (the defaults only trigger past 1 MiB).
ShardedSettings test_settings(uint64_t shards) {
  ShardedSettings s;
  s.num_shards = shards;
  s.rebalance_ratio = 1.5;
  s.min_rebalance_bytes = 1 << 12;
  return s;
}

// Sharded + direct engine + std::set under one operation stream.
template <typename Engine>
struct Trio {
  ShardedPMA<Engine> sharded;
  Engine direct;
  std::set<uint64_t> ref;

  explicit Trio(uint64_t shards) : sharded(test_settings(shards)) {}

  void insert(uint64_t k) {
    bool expect = ref.insert(k).second;
    ASSERT_EQ(sharded.insert(k), expect) << "sharded insert(" << k << ")";
    ASSERT_EQ(direct.insert(k), expect) << "direct insert(" << k << ")";
  }

  void remove(uint64_t k) {
    bool expect = ref.erase(k) == 1;
    ASSERT_EQ(sharded.remove(k), expect) << "sharded remove(" << k << ")";
    ASSERT_EQ(direct.remove(k), expect) << "direct remove(" << k << ")";
  }

  void insert_batch(std::vector<uint64_t> batch) {
    uint64_t expect = 0;
    for (uint64_t k : batch) expect += ref.insert(k).second ? 1 : 0;
    std::vector<uint64_t> copy = batch;
    ASSERT_EQ(sharded.insert_batch(copy.data(), copy.size()), expect);
    ASSERT_EQ(direct.insert_batch(batch.data(), batch.size()), expect);
  }

  void remove_batch(std::vector<uint64_t> batch) {
    uint64_t expect = 0;
    for (uint64_t k : batch) expect += ref.erase(k);
    std::vector<uint64_t> copy = batch;
    ASSERT_EQ(sharded.remove_batch(copy.data(), copy.size()), expect);
    ASSERT_EQ(direct.remove_batch(batch.data(), batch.size()), expect);
  }

  void check_full() {
    std::string err;
    ASSERT_TRUE(sharded.check_invariants(&err)) << "sharded: " << err;
    ASSERT_TRUE(direct.check_invariants(&err)) << "direct: " << err;
    ASSERT_EQ(sharded.size(), ref.size());

    std::vector<uint64_t> expect(ref.begin(), ref.end());
    std::vector<uint64_t> got;
    for (uint64_t k : sharded) got.push_back(k);
    ASSERT_EQ(got, expect) << "sharded iteration diverged";
    got.clear();
    sharded.map([&](uint64_t k) { got.push_back(k); });
    ASSERT_EQ(got, expect) << "sharded map diverged";

    uint64_t sum = 0;
    for (uint64_t k : expect) sum += k;
    ASSERT_EQ(sharded.sum(), sum);
    if (!ref.empty()) {
      ASSERT_EQ(sharded.min(), *ref.begin());
      ASSERT_EQ(sharded.max(), *ref.rbegin());
    }
  }

  void check_queries(uint64_t probe) {
    auto it = ref.lower_bound(probe);
    std::optional<uint64_t> expect =
        it == ref.end() ? std::nullopt : std::optional<uint64_t>(*it);
    ASSERT_EQ(sharded.successor(probe), expect) << "probe=" << probe;
    ASSERT_EQ(sharded.has(probe), ref.count(probe) == 1) << "probe=" << probe;

    const uint64_t len = 48;
    std::vector<uint64_t> expect_range;
    for (auto jt = it; jt != ref.end() && expect_range.size() < len; ++jt) {
      expect_range.push_back(*jt);
    }
    std::vector<uint64_t> got;
    uint64_t n = sharded.map_range_length(
        [&](uint64_t k) { got.push_back(k); }, probe, len);
    ASSERT_EQ(n, expect_range.size());
    ASSERT_EQ(got, expect_range) << "sharded range scan diverged at " << probe;
  }
};

// Randomized interleaving of point ops, batches, and queries; the batch
// key distribution alternates between uniform and a narrow moving window,
// which concentrates content in one shard and forces rebalance passes.
TYPED_TEST(Sharded, DifferentialWithRebalance) {
  using Engine = typename TypeParam::Engine;
  Trio<Engine> t(4);
  Rng r(17);
  const uint64_t space = uint64_t{1} << 22;
  uint64_t ops = 0;
  int phase = 0;
  while (ops < 60'000) {
    int op = static_cast<int>(r.next() % 10);
    if (op < 3) {
      t.insert(r.next() % space);
      if (::testing::Test::HasFatalFailure()) return;
      ops += 1;
    } else if (op < 5) {
      t.remove(r.next() % space);
      if (::testing::Test::HasFatalFailure()) return;
      ops += 1;
    } else if (op < 8) {
      // Skewed burst: all keys inside a window 1/64th of the space, so one
      // shard absorbs the whole batch and drifts past the ratio.
      std::vector<uint64_t> batch(1 + r.next() % 3000);
      uint64_t base = (r.next() % 64) * (space / 64);
      for (auto& k : batch) k = base + r.next() % (space / 64);
      ops += batch.size();
      t.insert_batch(std::move(batch));
      if (::testing::Test::HasFatalFailure()) return;
    } else if (op == 8) {
      std::vector<uint64_t> batch(1 + r.next() % 1500);
      for (auto& k : batch) k = r.next() % space;
      ops += batch.size();
      t.remove_batch(std::move(batch));
      if (::testing::Test::HasFatalFailure()) return;
    } else {
      t.check_queries(r.next() % space);
      if (::testing::Test::HasFatalFailure()) return;
      ops += 1;
    }
    if (ops > (phase + 1) * 4000u) {
      ++phase;
      t.check_full();
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  t.check_full();
  // The skewed bursts must have pushed the trigger at least once, or this
  // suite is not actually covering the rebalancer.
  EXPECT_GT(t.sharded.router_times().rebalances, 0u);
  EXPECT_GT(t.sharded.router_times().moves, 0u);
}

// shards=1 must behave exactly like the engine (and stay that way through
// batches, point ops, and queries): the acceptance bar for routing overhead.
TYPED_TEST(Sharded, SingleShardMatchesEngine) {
  using Engine = typename TypeParam::Engine;
  Trio<Engine> t(1);
  Rng r(23);
  for (int round = 0; round < 8; ++round) {
    std::vector<uint64_t> batch(2000);
    for (auto& k : batch) k = r.next() % 500'000;
    t.insert_batch(std::move(batch));
    if (::testing::Test::HasFatalFailure()) return;
    std::vector<uint64_t> dels(700);
    for (auto& k : dels) k = r.next() % 500'000;
    t.remove_batch(std::move(dels));
    if (::testing::Test::HasFatalFailure()) return;
    t.check_full();
    if (::testing::Test::HasFatalFailure()) return;
  }
  EXPECT_EQ(t.sharded.num_shards(), 1u);
  EXPECT_EQ(t.sharded.router_times().rebalances, 0u);
}

// Boundary keys: the key-0 sentinel, UINT64_MAX, and keys exactly at /
// adjacent to the shard splitters, probed through has/successor/map_range
// against std::set — on the sharded composition AND the direct engine.
TYPED_TEST(Sharded, BoundaryKeysAtSplitters) {
  using Engine = typename TypeParam::Engine;
  ShardedPMA<Engine> sharded(test_settings(8));
  Engine direct;
  std::set<uint64_t> ref;

  Rng r(41);
  std::vector<uint64_t> keys(50'000);
  for (auto& k : keys) k = r.next() % (uint64_t{1} << 40);
  // Pin the extremes in from the start.
  keys.push_back(0);
  keys.push_back(1);
  keys.push_back(UINT64_MAX);
  keys.push_back(UINT64_MAX - 1);
  for (uint64_t k : keys) ref.insert(k);
  std::vector<uint64_t> copy = keys;
  sharded.insert_batch(copy.data(), copy.size());
  direct.insert_batch(keys.data(), keys.size());

  // Quantile seeding has placed real splitters; force boundary-straddling
  // presence: for every splitter sp, insert sp-1, sp, sp+1.
  std::vector<uint64_t> straddle;
  for (uint64_t sp : sharded.splitters()) {
    if (sp == UINT64_MAX) continue;
    straddle.push_back(sp - 1);
    straddle.push_back(sp);
    straddle.push_back(sp + 1);
  }
  for (uint64_t k : straddle) ref.insert(k);
  copy = straddle;
  sharded.insert_batch(copy.data(), copy.size());
  direct.insert_batch(straddle.data(), straddle.size());

  auto probe = [&](uint64_t p) {
    auto it = ref.lower_bound(p);
    std::optional<uint64_t> expect =
        it == ref.end() ? std::nullopt : std::optional<uint64_t>(*it);
    ASSERT_EQ(sharded.successor(p), expect) << "sharded successor " << p;
    ASSERT_EQ(direct.successor(p), expect) << "direct successor " << p;
    ASSERT_EQ(sharded.has(p), ref.count(p) == 1) << "sharded has " << p;
    ASSERT_EQ(direct.has(p), ref.count(p) == 1) << "direct has " << p;

    // Range scan that starts at the boundary and crosses into the next
    // shard: 32 keys is far more than the straddle triple.
    std::vector<uint64_t> expect_range;
    for (auto jt = it; jt != ref.end() && expect_range.size() < 32; ++jt) {
      expect_range.push_back(*jt);
    }
    std::vector<uint64_t> got;
    sharded.map_range_length([&](uint64_t k) { got.push_back(k); }, p, 32);
    ASSERT_EQ(got, expect_range) << "sharded map_range at " << p;
    got.clear();
    direct.map_range_length([&](uint64_t k) { got.push_back(k); }, p, 32);
    ASSERT_EQ(got, expect_range) << "direct map_range at " << p;
  };

  probe(0);
  probe(1);
  probe(UINT64_MAX - 1);
  probe(UINT64_MAX);
  for (uint64_t sp : sharded.splitters()) {
    if (sp == UINT64_MAX) continue;
    probe(sp - 1);
    probe(sp);
    probe(sp + 1);
    if (::testing::Test::HasFatalFailure()) return;
  }

  // Now remove the boundary keys and re-probe the misses.
  std::vector<uint64_t> victims = straddle;
  victims.push_back(0);
  victims.push_back(UINT64_MAX);
  for (uint64_t k : victims) ref.erase(k);
  copy = victims;
  ASSERT_EQ(sharded.remove_batch(copy.data(), copy.size()), victims.size());
  ASSERT_EQ(direct.remove_batch(victims.data(), victims.size()),
            victims.size());
  probe(0);
  probe(UINT64_MAX);
  for (uint64_t sp : sharded.splitters()) {
    if (sp == UINT64_MAX) continue;
    probe(sp);
    if (::testing::Test::HasFatalFailure()) return;
  }

  std::string err;
  ASSERT_TRUE(sharded.check_invariants(&err)) << err;

  // map_range with an endpoint exactly on a splitter must exclude it.
  for (uint64_t sp : sharded.splitters()) {
    if (sp == UINT64_MAX) continue;
    std::vector<uint64_t> expect_range(ref.lower_bound(sp == 0 ? 0 : sp - 1),
                                       ref.lower_bound(sp));
    std::vector<uint64_t> got;
    sharded.map_range([&](uint64_t k) { got.push_back(k); },
                      sp == 0 ? 0 : sp - 1, sp);
    ASSERT_EQ(got, expect_range) << "map_range ending at splitter " << sp;
  }
}

// Cross-shard scans: a full-space map_range stitches every shard in key
// order; windowed scans land across splitter boundaries.
TYPED_TEST(Sharded, CrossShardScans) {
  using Engine = typename TypeParam::Engine;
  ShardedPMA<Engine> sharded(test_settings(8));
  std::set<uint64_t> ref;
  Rng r(59);
  std::vector<uint64_t> keys(40'000);
  for (auto& k : keys) k = r.next() % 1'000'000;
  for (uint64_t k : keys) ref.insert(k);
  sharded.insert_batch(keys.data(), keys.size());

  std::vector<uint64_t> expect(ref.begin(), ref.end());
  std::vector<uint64_t> got;
  sharded.map_range([&](uint64_t k) { got.push_back(k); }, 0, UINT64_MAX);
  ASSERT_EQ(got, expect);

  for (int w = 0; w < 64; ++w) {
    uint64_t lo = r.next() % 1'000'000;
    uint64_t hi = lo + r.next() % 200'000;
    std::vector<uint64_t> er(ref.lower_bound(lo), ref.lower_bound(hi));
    got.clear();
    sharded.map_range([&](uint64_t k) { got.push_back(k); }, lo, hi);
    ASSERT_EQ(got, er) << "window [" << lo << ", " << hi << ")";
  }

  // parallel_map sees every key exactly once (order-free check via sum and
  // count into an atomic-free reduction: collect per-call then sort).
  std::vector<uint64_t> par_got;
  std::mutex m;
  sharded.parallel_map([&](uint64_t k) {
    std::lock_guard<std::mutex> lock(m);
    par_got.push_back(k);
  });
  std::sort(par_got.begin(), par_got.end());
  ASSERT_EQ(par_got, expect);
}

// The engine-level extraction hook: boundary moves depend on it removing
// exactly [lo, hi) and leaving a structurally sound engine behind.
TYPED_TEST(Sharded, EngineExtractRange) {
  using Engine = typename TypeParam::Engine;
  Engine e;
  std::set<uint64_t> ref;
  std::vector<uint64_t> keys;
  for (uint64_t i = 0; i < 30'000; ++i) keys.push_back(i * 7 + 1);
  keys.push_back(0);
  for (uint64_t k : keys) ref.insert(k);
  e.insert_batch(keys.data(), keys.size());

  auto check_extract = [&](uint64_t lo, uint64_t hi) {
    auto out = e.extract_range(lo, hi);
    std::vector<uint64_t> expect(ref.lower_bound(lo), ref.lower_bound(hi));
    std::vector<uint64_t> got(out.begin(), out.end());
    ASSERT_EQ(got, expect) << "extract [" << lo << ", " << hi << ")";
    for (uint64_t k : expect) ref.erase(k);
    std::string err;
    ASSERT_TRUE(e.check_invariants(&err)) << err;
    ASSERT_EQ(e.size(), ref.size());
    if (!expect.empty()) {
      ASSERT_FALSE(e.has(expect.front()));
      ASSERT_FALSE(e.has(expect.back()));
    }
  };

  check_extract(50'000, 50'000);  // empty range
  check_extract(500, 499);        // inverted: no-op
  check_extract(7'000, 70'000);   // interior span across many leaves
  check_extract(0, 100);          // includes the zero sentinel
  check_extract(200'000, UINT64_MAX);  // tail
  check_extract(0, UINT64_MAX);        // drain everything that remains
  ASSERT_TRUE(e.empty());
}

// build_from_sorted: bulk construction (with leading zeros) must equal the
// incremental path.
TYPED_TEST(Sharded, EngineBuildFromSorted) {
  using Engine = typename TypeParam::Engine;
  std::vector<uint64_t> keys{0};
  Rng r(71);
  for (int i = 0; i < 20'000; ++i) keys.push_back(r.next() % (1u << 30));
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  Engine e;
  e.build_from_sorted(keys.data(), keys.size());
  std::string err;
  ASSERT_TRUE(e.check_invariants(&err)) << err;
  ASSERT_EQ(e.size(), keys.size());
  ASSERT_TRUE(e.has(0));
  std::vector<uint64_t> got;
  e.map([&](uint64_t k) { got.push_back(k); });
  ASSERT_EQ(got, keys);

  // Rebuilding over existing contents replaces them.
  std::vector<uint64_t> fresh{5, 6, 7};
  e.build_from_sorted(fresh.data(), fresh.size());
  ASSERT_EQ(e.size(), 3u);
  ASSERT_FALSE(e.has(0));
  got.clear();
  e.map([&](uint64_t k) { got.push_back(k); });
  ASSERT_EQ(got, fresh);
}

// A deliberately skewed load (sequential keys, so quantiles from the first
// batch are useless for the rest) must end up within the configured ratio
// after the automatic rebalancing, and the phase-time aggregation must see
// every shard's pipeline.
TYPED_TEST(Sharded, RebalanceRestoresBalance) {
  using Engine = typename TypeParam::Engine;
  ShardedPMA<Engine> sharded(test_settings(4));
  std::set<uint64_t> ref;
  uint64_t next_key = 1;
  for (int round = 0; round < 40; ++round) {
    std::vector<uint64_t> batch(10'000);
    for (auto& k : batch) k = next_key++;
    for (uint64_t k : batch) ref.insert(k);
    sharded.insert_batch(batch.data(), batch.size());
  }
  std::string err;
  ASSERT_TRUE(sharded.check_invariants(&err)) << err;
  ASSERT_EQ(sharded.size(), ref.size());
  EXPECT_GT(sharded.router_times().rebalances, 0u);
  EXPECT_GT(sharded.router_times().moves, 0u);

  // One explicit pass from the drifted state must land inside the ratio.
  sharded.rebalance();
  std::vector<uint64_t> bytes = sharded.shard_content_bytes();
  uint64_t total = 0, largest = 0;
  for (uint64_t b : bytes) {
    total += b;
    largest = std::max(largest, b);
  }
  EXPECT_LE(static_cast<double>(largest),
            test_settings(4).rebalance_ratio *
                (static_cast<double>(total) / 4.0) +
                static_cast<double>(4 * sharded.shard(0).leaf_bytes()))
      << "imbalance survived a forced pass";
  ASSERT_TRUE(sharded.check_invariants(&err)) << err;

  // Aggregated phase times cover the shards' pipelines.
  cpma::pma::BatchPhaseTimes t = sharded.batch_phase_times();
  EXPECT_GT(t.batches + t.rebuilds, 0u);
  EXPECT_GT(t.merge_ns + t.rebuild_ns, 0u);
  EXPECT_GT(t.route_ns, 0u);

  sharded.reset_batch_phase_times();
  t = sharded.batch_phase_times();
  EXPECT_EQ(t.batches, 0u);
  EXPECT_EQ(t.route_ns, 0u);
  EXPECT_EQ(sharded.router_times().rebalances, 0u);
}

// Bulk constructor: sort/dedupe + quantile splitters + per-shard
// build_from_sorted, checked against the incremental path.
TYPED_TEST(Sharded, BulkConstruction) {
  using Engine = typename TypeParam::Engine;
  Rng r(83);
  std::vector<uint64_t> keys(30'000);
  for (auto& k : keys) k = r.next() % (uint64_t{1} << 36);
  keys.push_back(0);

  ShardedSettings st = test_settings(8);
  ShardedPMA<Engine> bulk(keys.data(), keys.data() + keys.size(), st);

  std::set<uint64_t> ref(keys.begin(), keys.end());
  ASSERT_EQ(bulk.size(), ref.size());
  std::string err;
  ASSERT_TRUE(bulk.check_invariants(&err)) << err;
  std::vector<uint64_t> expect(ref.begin(), ref.end());
  std::vector<uint64_t> got;
  for (uint64_t k : bulk) got.push_back(k);
  ASSERT_EQ(got, expect);

  // Quantile seeding should start within (generously) 2x byte balance for
  // uniform keys: no shard more than 3x the mean.
  std::vector<uint64_t> bytes = bulk.shard_content_bytes();
  uint64_t total = 0, largest = 0;
  for (uint64_t b : bytes) {
    total += b;
    largest = std::max(largest, b);
  }
  EXPECT_LE(largest * 8, 3 * total) << "bulk construction badly imbalanced";
}

// Empty / tiny structures: every query path must behave before any splitter
// has been seeded (all-UINT64_MAX layout routes everything to shard 0).
TYPED_TEST(Sharded, EmptyAndTiny) {
  using Engine = typename TypeParam::Engine;
  ShardedPMA<Engine> s(test_settings(4));
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.has(42));
  EXPECT_EQ(s.successor(0), std::nullopt);
  EXPECT_EQ(s.begin(), s.end());
  uint64_t count = 0;
  s.map_range([&](uint64_t) { ++count; }, 0, UINT64_MAX);
  EXPECT_EQ(count, 0u);

  EXPECT_TRUE(s.insert(0));
  EXPECT_TRUE(s.insert(UINT64_MAX));
  EXPECT_TRUE(s.insert(7));
  EXPECT_FALSE(s.insert(7));
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.min(), 0u);
  EXPECT_EQ(s.max(), UINT64_MAX);
  EXPECT_EQ(s.successor(8), std::optional<uint64_t>(UINT64_MAX));
  std::vector<uint64_t> got;
  for (uint64_t k : s) got.push_back(k);
  EXPECT_EQ(got, (std::vector<uint64_t>{0, 7, UINT64_MAX}));
  EXPECT_TRUE(s.remove(UINT64_MAX));
  EXPECT_FALSE(s.remove(UINT64_MAX));
  EXPECT_EQ(s.size(), 2u);
  std::string err;
  ASSERT_TRUE(s.check_invariants(&err)) << err;
}

// min()/max() are optional so that {} and {0} are distinguishable (key 0 is
// a real storable key); empty() must not pay the O(S) size() sum.
TYPED_TEST(Sharded, EmptyMinMaxAreNulloptAndZeroKeyDisambiguated) {
  using Engine = typename TypeParam::Engine;
  ShardedPMA<Engine> s(test_settings(4));
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.min(), std::nullopt);
  EXPECT_EQ(s.max(), std::nullopt);

  // {0}: engaged optionals holding 0 — the case the old key_type API could
  // not tell apart from empty.
  EXPECT_TRUE(s.insert(0));
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.min(), std::optional<uint64_t>(0));
  EXPECT_EQ(s.max(), std::optional<uint64_t>(0));

  EXPECT_TRUE(s.remove(0));
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.min(), std::nullopt);
  EXPECT_EQ(s.max(), std::nullopt);

  // Engine-level semantics must agree (satellite: both engines aligned).
  Engine e;
  EXPECT_EQ(e.min(), std::nullopt);
  EXPECT_EQ(e.max(), std::nullopt);
  e.insert(0);
  EXPECT_EQ(e.min(), std::optional<uint64_t>(0));
  EXPECT_EQ(e.max(), std::optional<uint64_t>(0));
  e.remove(0);
  EXPECT_EQ(e.min(), std::nullopt);
  EXPECT_EQ(e.max(), std::nullopt);
}

}  // namespace
