// Tests for the graph containers: F-Graph (CPMA-backed), TreeGraph (C-PaC
// analog), AspenGraph (functional chunks), and CSR — all checked for
// identical adjacency structure against a reference adjacency-set build, on
// generated RMAT and Erdős–Rényi inputs, through insert/remove batches.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "graph/csr.hpp"
#include "graph/fgraph.hpp"
#include "graph/generators.hpp"
#include "graph/tree_graphs.hpp"
#include "util/random.hpp"

using namespace cpma::graph;
using cpma::util::Rng;

namespace {

// Reference adjacency built from edge keys.
std::map<vertex_t, std::set<vertex_t>> reference_adj(
    const std::vector<uint64_t>& edges) {
  std::map<vertex_t, std::set<vertex_t>> adj;
  for (uint64_t e : edges) adj[edge_src(e)].insert(edge_dst(e));
  return adj;
}

template <typename G>
void expect_matches_reference(G& g,
                              const std::map<vertex_t, std::set<vertex_t>>& ref,
                              vertex_t n) {
  g.prepare();
  for (vertex_t v = 0; v < n; ++v) {
    std::vector<vertex_t> got;
    g.map_neighbors(v, [&](vertex_t d) { got.push_back(d); });
    std::sort(got.begin(), got.end());
    auto it = ref.find(v);
    std::vector<vertex_t> want;
    if (it != ref.end()) want.assign(it->second.begin(), it->second.end());
    ASSERT_EQ(got, want) << "vertex " << v;
    ASSERT_EQ(g.degree(v), want.size()) << "degree of " << v;
  }
}

std::vector<uint64_t> test_graph_edges(uint32_t scale, uint64_t m,
                                       uint64_t seed) {
  return symmetrize(rmat_edges(scale, m, seed));
}

}  // namespace

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

TEST(Generators, RmatDeterministicAndInRange) {
  auto e1 = rmat_edges(10, 5000, 42);
  auto e2 = rmat_edges(10, 5000, 42);
  EXPECT_EQ(e1, e2);
  for (uint64_t e : e1) {
    EXPECT_LT(edge_src(e), 1u << 10);
    EXPECT_LT(edge_dst(e), 1u << 10);
  }
}

TEST(Generators, RmatIsSkewed) {
  auto edges = rmat_edges(12, 100000, 7);
  std::vector<uint64_t> deg(1 << 12, 0);
  for (uint64_t e : edges) deg[edge_src(e)]++;
  std::sort(deg.rbegin(), deg.rend());
  // Top 1% of vertices should hold well above a uniform 1% share (with
  // a=.5, b=c=.1 the source marginal is 0.6 per bit: top 1% ~ 4-5%).
  uint64_t top = 0;
  for (int i = 0; i < (1 << 12) / 100; ++i) top += deg[i];
  EXPECT_GT(top, edges.size() * 3 / 100);
}

TEST(Generators, ErdosRenyiExpectedDegree) {
  const uint32_t n = 2000;
  const double p = 0.005;
  auto edges = erdos_renyi_edges(n, p, 11);
  double avg = static_cast<double>(edges.size()) / n;
  EXPECT_NEAR(avg, n * p, n * p * 0.2);  // within 20%
  for (uint64_t e : edges) {
    EXPECT_NE(edge_src(e), edge_dst(e));
    EXPECT_LT(edge_src(e), n);
    EXPECT_LT(edge_dst(e), n);
  }
}

TEST(Generators, SymmetrizeProducesBothDirectionsNoLoopsNoDups) {
  std::vector<uint64_t> edges{edge_key(1, 2), edge_key(2, 1), edge_key(3, 3),
                              edge_key(1, 2)};
  auto sym = symmetrize(edges);
  EXPECT_EQ(sym, (std::vector<uint64_t>{edge_key(1, 2), edge_key(2, 1)}));
}

// ---------------------------------------------------------------------------
// Containers vs reference (typed)
// ---------------------------------------------------------------------------

template <typename G>
class GraphContainerTest : public ::testing::Test {};

using GraphTypes =
    ::testing::Types<FGraph, FGraphUncompressed, CPacGraph, UPacGraph,
                     AspenGraph>;
TYPED_TEST_SUITE(GraphContainerTest, GraphTypes);

TYPED_TEST(GraphContainerTest, BuildMatchesReference) {
  const uint32_t scale = 10;
  auto edges = test_graph_edges(scale, 20000, 1);
  auto ref = reference_adj(edges);
  TypeParam g(1 << scale, edges);
  EXPECT_EQ(g.num_edges(), edges.size());
  expect_matches_reference(g, ref, 1 << scale);
}

TYPED_TEST(GraphContainerTest, IncrementalBatchesMatchReference) {
  const uint32_t scale = 9;
  const vertex_t n = 1 << scale;
  TypeParam g(n);
  std::map<vertex_t, std::set<vertex_t>> ref;
  for (int round = 0; round < 5; ++round) {
    auto batch = symmetrize(rmat_edges(scale, 4000, 100 + round));
    for (uint64_t e : batch) ref[edge_src(e)].insert(edge_dst(e));
    g.insert_edges(batch);
  }
  expect_matches_reference(g, ref, n);
}

TYPED_TEST(GraphContainerTest, DuplicateInsertsAreIdempotent) {
  const vertex_t n = 64;
  TypeParam g(n);
  std::vector<uint64_t> batch{edge_key(1, 2), edge_key(2, 1), edge_key(1, 3),
                              edge_key(3, 1)};
  uint64_t added1 = g.insert_edges(batch);
  uint64_t added2 = g.insert_edges(batch);
  EXPECT_EQ(added1, 4u);
  EXPECT_EQ(added2, 0u);
  EXPECT_EQ(g.num_edges(), 4u);
}

TYPED_TEST(GraphContainerTest, EmptyVerticesHaveNoNeighbors) {
  TypeParam g(128);
  std::vector<uint64_t> batch{edge_key(5, 6), edge_key(6, 5)};
  g.insert_edges(batch);
  g.prepare();
  int count = 0;
  g.map_neighbors(7, [&](vertex_t) { ++count; });
  g.map_neighbors(0, [&](vertex_t) { ++count; });
  g.map_neighbors(127, [&](vertex_t) { ++count; });
  EXPECT_EQ(count, 0);
  EXPECT_EQ(g.degree(7), 0u);
}

// Removal is supported by the PMA-backed and tree-backed graphs (Aspen-like
// is insert-only here, as the paper's insert-throughput experiment uses).
template <typename G>
class GraphRemoveTest : public ::testing::Test {};

using RemovableGraphs = ::testing::Types<FGraph, FGraphUncompressed,
                                         CPacGraph, UPacGraph>;
TYPED_TEST_SUITE(GraphRemoveTest, RemovableGraphs);

TYPED_TEST(GraphRemoveTest, RemoveBatchesMatchReference) {
  const uint32_t scale = 9;
  const vertex_t n = 1 << scale;
  auto edges = test_graph_edges(scale, 15000, 3);
  auto ref = reference_adj(edges);
  TypeParam g(n, edges);
  // Remove every 3rd edge (symmetrized so the graph stays undirected).
  std::vector<uint64_t> rm;
  for (size_t i = 0; i < edges.size(); i += 3) rm.push_back(edges[i]);
  rm = symmetrize(rm);
  for (uint64_t e : rm) {
    auto it = ref.find(edge_src(e));
    if (it != ref.end()) it->second.erase(edge_dst(e));
  }
  g.remove_edges(rm);
  expect_matches_reference(g, ref, n);
}

// ---------------------------------------------------------------------------
// F-Graph specifics
// ---------------------------------------------------------------------------

TEST(FGraph, HasEdge) {
  auto edges = test_graph_edges(8, 2000, 4);
  FGraph g(1 << 8, edges);
  std::set<uint64_t> set(edges.begin(), edges.end());
  Rng r(5);
  for (int i = 0; i < 2000; ++i) {
    vertex_t u = r.next() % 256, v = r.next() % 256;
    EXPECT_EQ(g.has_edge(u, v), set.count(edge_key(u, v)) == 1);
  }
}

TEST(FGraph, IndexAndNoIndexPathsAgree) {
  auto edges = test_graph_edges(9, 10000, 6);
  FGraph g(1 << 9, edges);
  g.prepare();
  for (vertex_t v = 0; v < (1 << 9); ++v) {
    std::vector<vertex_t> a, b;
    g.map_neighbors(v, [&](vertex_t d) { a.push_back(d); });
    g.map_neighbors_noindex(v, [&](vertex_t d) { b.push_back(d); });
    ASSERT_EQ(a, b) << "vertex " << v;
  }
}

TEST(FGraph, CsrMatchesFGraph) {
  auto edges = test_graph_edges(9, 10000, 8);
  FGraph g(1 << 9, edges);
  Csr csr(1 << 9, edges);
  g.prepare();
  for (vertex_t v = 0; v < (1 << 9); ++v) {
    std::vector<vertex_t> a, b;
    g.map_neighbors(v, [&](vertex_t d) { a.push_back(d); });
    csr.map_neighbors(v, [&](vertex_t d) { b.push_back(d); });
    ASSERT_EQ(a, b);
  }
}

TEST(FGraph, SpaceSmallerThanTreeGraphs) {
  auto edges = test_graph_edges(12, 200000, 9);
  FGraph f(1 << 12, edges);
  CPacGraph c(1 << 12, edges);
  AspenGraph a(1 << 12, edges);
  // Paper Table 7: F-Graph <= C-PaC < Aspen (F/A ~ 0.6).
  EXPECT_LT(f.get_size(), a.get_size());
  EXPECT_LT(static_cast<double>(f.get_size()),
            static_cast<double>(a.get_size()) * 0.85);
}
