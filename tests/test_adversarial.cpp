// Adversarial and boundary workloads for the PMA/CPMA: input patterns that
// stress specific code paths — monotone and clustered insertions (worst case
// for rebalancing), dense runs (1-byte deltas), maximal keys (10-byte
// varints), alternating insert/delete churn at fixed size, and key-width
// sweeps that change the compression ratio.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "pma/cpma.hpp"
#include "util/random.hpp"

using cpma::ACPMA;
using cpma::CPMA;
using cpma::PMA;
using cpma::util::Rng;

template <typename T>
void expect_ok(const T& p) {
  std::string err;
  ASSERT_TRUE(p.check_invariants(&err)) << err;
}

template <typename T>
class AdversarialTest : public ::testing::Test {};

using Engines = ::testing::Types<PMA, CPMA, ACPMA>;
TYPED_TEST_SUITE(AdversarialTest, Engines);

TYPED_TEST(AdversarialTest, AscendingPointInserts) {
  // Every insert lands in the last leaf: maximal rebalance pressure on one
  // spine of the implicit tree.
  TypeParam p;
  for (uint64_t i = 1; i <= 100000; ++i) ASSERT_TRUE(p.insert(i));
  EXPECT_EQ(p.size(), 100000u);
  EXPECT_EQ(p.sum(), 100000ull * 100001 / 2);
  expect_ok(p);
}

TYPED_TEST(AdversarialTest, DescendingPointInserts) {
  // Every insert displaces the head of leaf 0.
  TypeParam p;
  for (uint64_t i = 100000; i >= 1; --i) ASSERT_TRUE(p.insert(i));
  EXPECT_EQ(p.size(), 100000u);
  EXPECT_EQ(p.sum(), 100000ull * 100001 / 2);
  expect_ok(p);
}

TYPED_TEST(AdversarialTest, ClusteredBatches) {
  // Batches of contiguous runs at random offsets: each batch floods a
  // handful of leaves (overflow + local redistribution), unlike the uniform
  // case that spreads one key per leaf.
  TypeParam p;
  std::set<uint64_t> ref;
  Rng r(3);
  for (int round = 0; round < 30; ++round) {
    uint64_t base = 1 + (r.next() % (1ull << 40));
    std::vector<uint64_t> batch(4000);
    for (size_t i = 0; i < batch.size(); ++i) {
      batch[i] = base + i;  // dense run -> 1-byte deltas in the CPMA
    }
    for (uint64_t k : batch) ref.insert(k);
    p.insert_batch(batch.data(), batch.size());
    ASSERT_EQ(p.size(), ref.size()) << round;
  }
  expect_ok(p);
}

TYPED_TEST(AdversarialTest, SawtoothChurnAtFixedSize) {
  // Insert a block, delete the previous block: size oscillates, forcing
  // both upper- and lower-bound rebalances (and growth/shrink interleaving).
  TypeParam p;
  std::vector<uint64_t> prev;
  Rng r(5);
  for (int round = 0; round < 25; ++round) {
    std::vector<uint64_t> cur(8000);
    for (auto& k : cur) k = 1 + (r.next() % (1ull << 40));
    p.insert_batch(std::vector<uint64_t>(cur));
    if (!prev.empty()) p.remove_batch(std::vector<uint64_t>(prev));
    prev = std::move(cur);
  }
  expect_ok(p);
  // Everything left is the final block (dedup'ed).
  std::sort(prev.begin(), prev.end());
  prev.erase(std::unique(prev.begin(), prev.end()), prev.end());
  EXPECT_EQ(p.size(), prev.size());
  for (uint64_t k : prev) ASSERT_TRUE(p.has(k));
}

TYPED_TEST(AdversarialTest, MaximalKeysTenByteVarints) {
  // Keys near 2^64: deltas can need 10-byte varints; heads near UINT64_MAX.
  TypeParam p;
  std::set<uint64_t> ref;
  Rng r(7);
  for (int i = 0; i < 20000; ++i) {
    uint64_t k = ~uint64_t{0} - (r.next() % (1ull << 50));
    if (k == 0) continue;
    p.insert(k);
    ref.insert(k);
  }
  EXPECT_EQ(p.size(), ref.size());
  EXPECT_TRUE(p.has(*ref.rbegin()));
  EXPECT_EQ(p.max(), *ref.rbegin());
  expect_ok(p);
}

TYPED_TEST(AdversarialTest, BimodalKeySpace) {
  // Two far-apart clusters: the delta at the cluster boundary is huge while
  // intra-cluster deltas are tiny — stresses the byte-budget spread.
  TypeParam p;
  std::vector<uint64_t> batch;
  for (uint64_t i = 1; i <= 50000; ++i) batch.push_back(i);
  for (uint64_t i = 0; i < 50000; ++i) {
    batch.push_back((~uint64_t{0} - 100000) + i);
  }
  p.insert_batch(batch.data(), batch.size());
  EXPECT_EQ(p.size(), 100000u);
  expect_ok(p);
  EXPECT_EQ(p.min(), 1u);
  EXPECT_EQ(p.max(), (~uint64_t{0} - 100000) + 49999);
  // Range query across the gap sees nothing.
  int count = 0;
  p.map_range([&](uint64_t) { ++count; }, 60000, ~uint64_t{0} - 100001);
  EXPECT_EQ(count, 0);
}

TYPED_TEST(AdversarialTest, RepeatedIdenticalBatches) {
  TypeParam p;
  std::vector<uint64_t> batch(50000);
  Rng r(11);
  for (auto& k : batch) k = 1 + (r.next() % (1ull << 40));
  uint64_t first = p.insert_batch(std::vector<uint64_t>(batch));
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(p.insert_batch(std::vector<uint64_t>(batch)), 0u);
  }
  EXPECT_EQ(p.size(), first);
  expect_ok(p);
}

TYPED_TEST(AdversarialTest, DenseRunsWithSparseGaps) {
  // Alternating fully-dense runs (consecutive keys — worst case for delta
  // chains, best case for bitmap leaves) and huge gaps (10-byte varints).
  // Stresses the adaptive engine's format selection at both extremes and
  // the boundaries where a leaf straddles a run edge; interleaved point
  // deletes then punch holes into the dense regions.
  TypeParam p;
  std::set<uint64_t> ref;
  Rng r(17);
  std::vector<uint64_t> batch;
  for (int run = 0; run < 200; ++run) {
    uint64_t base = 1 + (r.next() % (1ull << 50));
    uint64_t len = 200 + r.next() % 800;
    for (uint64_t i = 0; i < len; ++i) batch.push_back(base + i);
  }
  for (uint64_t k : batch) ref.insert(k);
  p.insert_batch(std::vector<uint64_t>(batch));
  ASSERT_EQ(p.size(), ref.size());
  expect_ok(p);
  // Punch random holes, then re-fill some of them point-wise.
  for (int i = 0; i < 20000; ++i) {
    uint64_t k = batch[r.next() % batch.size()];
    if (r.next() % 3 == 0) {
      bool expect = ref.insert(k).second;
      ASSERT_EQ(p.insert(k), expect);
    } else {
      bool expect = ref.erase(k) == 1;
      ASSERT_EQ(p.remove(k), expect);
    }
  }
  ASSERT_EQ(p.size(), ref.size());
  expect_ok(p);
  std::vector<uint64_t> got;
  p.map([&](uint64_t k) { got.push_back(k); });
  EXPECT_EQ(got, std::vector<uint64_t>(ref.begin(), ref.end()));
}

TYPED_TEST(AdversarialTest, DeleteEverythingThenReuse) {
  TypeParam p;
  for (int cycle = 0; cycle < 3; ++cycle) {
    std::vector<uint64_t> keys(30000);
    Rng r(cycle + 13);
    for (auto& k : keys) k = 1 + (r.next() % (1ull << 40));
    p.insert_batch(std::vector<uint64_t>(keys));
    p.remove_batch(std::vector<uint64_t>(keys));
    ASSERT_EQ(p.size(), 0u);
    expect_ok(p);
  }
}

// Key-width sweep: narrower keys compress better; correctness must hold at
// every width and the CPMA size per element must shrink with the width.
class KeyWidth : public ::testing::TestWithParam<unsigned> {};

TEST_P(KeyWidth, CorrectAtEveryWidth) {
  unsigned bits = GetParam();
  CPMA c;
  std::set<uint64_t> ref;
  for (uint64_t i = 0; i < 100000; ++i) {
    uint64_t k = cpma::util::uniform_key(bits, i, bits);
    c.insert(k);
    ref.insert(k);
  }
  EXPECT_EQ(c.size(), ref.size());
  std::string err;
  ASSERT_TRUE(c.check_invariants(&err)) << err;
  std::vector<uint64_t> got;
  c.map([&](uint64_t k) { got.push_back(k); });
  EXPECT_EQ(got, std::vector<uint64_t>(ref.begin(), ref.end()));
}

INSTANTIATE_TEST_SUITE_P(Widths, KeyWidth,
                         ::testing::Values(20u, 28u, 34u, 40u, 48u, 56u,
                                           64u));

TEST(KeyWidthSpace, CompressionImprovesWithDensity) {
  // 1e5 keys in 2^24 space (dense) vs 2^56 space (sparse).
  auto bytes_per_elt = [](unsigned bits) {
    CPMA c;
    std::vector<uint64_t> keys(100000);
    for (uint64_t i = 0; i < keys.size(); ++i) {
      keys[i] = cpma::util::uniform_key(bits, i, bits);
    }
    c.insert_batch(keys.data(), keys.size());
    return static_cast<double>(c.get_size()) / static_cast<double>(c.size());
  };
  EXPECT_LT(bytes_per_elt(24), bytes_per_elt(56));
}
