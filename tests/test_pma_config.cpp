// Configuration-space tests: density-bound settings, growth factors at the
// extremes of the paper's sweep, interactions between settings and batch
// regimes, and the density-bound interpolation math itself.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "pma/cpma.hpp"
#include "pma/settings.hpp"
#include "util/random.hpp"

using cpma::CPMA;
using cpma::PMA;
using cpma::pma::PmaSettings;
using cpma::util::Rng;

TEST(Settings, UpperBoundsDecreaseWithHeight) {
  PmaSettings s;
  for (uint64_t h = 1; h < 20; ++h) {
    EXPECT_GE(s.upper_at(h, 20), s.upper_at(h + 1, 20)) << h;
  }
  // Leaves get strictly more headroom than any internal level.
  EXPECT_GT(s.upper_at(0, 20), s.upper_at(1, 20));
}

TEST(Settings, LowerBoundsIncreaseWithHeight) {
  PmaSettings s;
  for (uint64_t h = 1; h < 20; ++h) {
    EXPECT_LE(s.lower_at(h, 20), s.lower_at(h + 1, 20)) << h;
  }
  EXPECT_LT(s.lower_at(0, 20), s.lower_at(1, 20));
}

TEST(Settings, BoundsNestAtEveryHeight) {
  PmaSettings s;
  for (uint64_t H : {1u, 5u, 15u, 30u}) {
    for (uint64_t h = 0; h <= H; ++h) {
      EXPECT_LT(s.lower_at(h, H), s.upper_at(h, H)) << h << "/" << H;
    }
  }
}

TEST(Settings, DegenerateTreeHeights) {
  PmaSettings s;
  EXPECT_EQ(s.upper_at(0, 0), s.upper_root);
  EXPECT_EQ(s.upper_at(0, 1), s.upper_leaf);
  EXPECT_EQ(s.upper_at(1, 1), s.upper_root);
}

// Growth factors across the paper's Appendix C sweep keep the structure
// correct under mixed batch workloads.
class GrowthFactorOps : public ::testing::TestWithParam<double> {};

TEST_P(GrowthFactorOps, MixedWorkloadStaysCorrect) {
  PmaSettings s;
  s.growth_factor = GetParam();
  CPMA c(s);
  std::set<uint64_t> ref;
  Rng r(17);
  for (int round = 0; round < 8; ++round) {
    std::vector<uint64_t> ins(15000);
    for (auto& k : ins) k = 1 + (r.next() % (1ull << 36));
    for (uint64_t k : ins) ref.insert(k);
    c.insert_batch(ins.data(), ins.size());
    std::vector<uint64_t> del(5000);
    for (auto& k : del) k = 1 + (r.next() % (1ull << 36));
    for (uint64_t k : del) ref.erase(k);
    c.remove_batch(del.data(), del.size());
    ASSERT_EQ(c.size(), ref.size()) << "round " << round;
  }
  std::string err;
  ASSERT_TRUE(c.check_invariants(&err)) << err;
}

INSTANTIATE_TEST_SUITE_P(Factors, GrowthFactorOps,
                         ::testing::Values(1.05, 1.1, 1.2, 1.5, 2.0, 3.0));

// The serial RMA-like baseline agrees with the parallel batch algorithm for
// every batch-size regime.
class SerialBaselineRegimes : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerialBaselineRegimes, MatchesParallelAlgorithm) {
  const uint64_t batch_size = GetParam();
  PMA a, b;
  Rng r(batch_size);
  std::vector<uint64_t> base(120000);
  for (auto& k : base) k = 1 + (r.next() % (1ull << 40));
  {
    auto c1 = base;
    a.insert_batch(c1.data(), c1.size());
    auto c2 = base;
    b.insert_batch(c2.data(), c2.size());
  }
  for (int round = 0; round < 3; ++round) {
    std::vector<uint64_t> batch(batch_size);
    for (auto& k : batch) k = 1 + (r.next() % (1ull << 40));
    auto c1 = batch;
    uint64_t added_a = a.insert_batch(c1.data(), c1.size());
    auto c2 = batch;
    uint64_t added_b = b.insert_batch_serial_baseline(c2.data(), c2.size());
    ASSERT_EQ(added_a, added_b) << "round " << round;
    ASSERT_EQ(a.size(), b.size());
  }
  EXPECT_EQ(a.sum(), b.sum());
  std::string err;
  ASSERT_TRUE(b.check_invariants(&err)) << err;
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, SerialBaselineRegimes,
                         ::testing::Values(200u, 3000u, 30000u));

// Custom (tighter) density bounds still produce a correct structure.
TEST(Settings, TightInternalBounds) {
  PmaSettings s;
  s.upper_internal = 0.72;
  s.upper_root = 0.68;
  CPMA c(s);
  Rng r(23);
  std::set<uint64_t> ref;
  for (int round = 0; round < 5; ++round) {
    std::vector<uint64_t> batch(20000);
    for (auto& k : batch) k = 1 + (r.next() % (1ull << 40));
    for (uint64_t k : batch) ref.insert(k);
    c.insert_batch(batch.data(), batch.size());
    ASSERT_EQ(c.size(), ref.size());
  }
  std::string err;
  ASSERT_TRUE(c.check_invariants(&err)) << err;
  // Density respects the configured root bound (small tolerance for heads).
  EXPECT_LT(c.density(), 0.75);
}

// Structures built through different operation orders converge to the same
// CONTENT (layout may differ), so sum/size/iteration agree.
TEST(Convergence, ContentIndependentOfInsertionOrder) {
  Rng r(29);
  std::vector<uint64_t> keys(50000);
  for (auto& k : keys) k = 1 + (r.next() % (1ull << 40));
  CPMA ascending, shuffled, batched;
  {
    auto sorted = keys;
    std::sort(sorted.begin(), sorted.end());
    for (uint64_t k : sorted) ascending.insert(k);
  }
  for (uint64_t k : keys) shuffled.insert(k);
  {
    auto copy = keys;
    batched.insert_batch(copy.data(), copy.size());
  }
  EXPECT_EQ(ascending.size(), shuffled.size());
  EXPECT_EQ(ascending.size(), batched.size());
  EXPECT_EQ(ascending.sum(), shuffled.sum());
  EXPECT_EQ(ascending.sum(), batched.sum());
}
