// Tests for the parallel batch-update algorithm (Section 4): batch inserts
// and removes across the three strategy regimes (point loop, batch merge,
// full rebuild), overflow handling, duplicate handling, and agreement with a
// reference std::set under interleaved batch workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "pma/cpma.hpp"
#include "util/random.hpp"
#include "util/zipf.hpp"

using cpma::ACPMA;
using cpma::CPMA;
using cpma::PMA;
using cpma::util::Rng;

template <typename T>
class PmaBatchTest : public ::testing::Test {};

using Engines = ::testing::Types<PMA, CPMA, ACPMA>;
TYPED_TEST_SUITE(PmaBatchTest, Engines);

template <typename T>
void expect_invariants(const T& p) {
  std::string err;
  ASSERT_TRUE(p.check_invariants(&err)) << err;
}

template <typename T>
std::vector<uint64_t> contents(const T& p) {
  std::vector<uint64_t> out;
  p.map([&](uint64_t k) { out.push_back(k); });
  return out;
}

TYPED_TEST(PmaBatchTest, EmptyBatchIsANoop) {
  TypeParam p;
  EXPECT_EQ(p.insert_batch(nullptr, 0), 0u);
  EXPECT_EQ(p.remove_batch(nullptr, 0), 0u);
  EXPECT_EQ(p.size(), 0u);
}

TYPED_TEST(PmaBatchTest, BatchIntoEmptyStructure) {
  TypeParam p;
  std::vector<uint64_t> batch{5, 1, 9, 3, 7};
  EXPECT_EQ(p.insert_batch(batch.data(), batch.size()), 5u);
  EXPECT_EQ(contents(p), (std::vector<uint64_t>{1, 3, 5, 7, 9}));
  expect_invariants(p);
}

TYPED_TEST(PmaBatchTest, SortedFlagSkipsSorting) {
  TypeParam p;
  std::vector<uint64_t> batch{1, 3, 5, 7, 9};
  EXPECT_EQ(p.insert_batch(batch.data(), batch.size(), /*sorted=*/true), 5u);
  EXPECT_EQ(contents(p), batch);
}

TYPED_TEST(PmaBatchTest, DuplicatesWithinBatchCountOnce) {
  TypeParam p;
  std::vector<uint64_t> batch{4, 4, 4, 2, 2, 8};
  EXPECT_EQ(p.insert_batch(batch.data(), batch.size()), 3u);
  EXPECT_EQ(p.size(), 3u);
}

TYPED_TEST(PmaBatchTest, DuplicatesOfExistingKeysDoNotCount) {
  TypeParam p;
  std::vector<uint64_t> first{1, 2, 3};
  p.insert_batch(first.data(), first.size());
  std::vector<uint64_t> second{2, 3, 4, 5};
  EXPECT_EQ(p.insert_batch(second.data(), second.size()), 2u);
  EXPECT_EQ(p.size(), 5u);
}

TYPED_TEST(PmaBatchTest, ZeroKeyInBatch) {
  TypeParam p;
  std::vector<uint64_t> batch{0, 0, 5, 9};
  EXPECT_EQ(p.insert_batch(batch.data(), batch.size()), 3u);
  EXPECT_TRUE(p.has(0));
  EXPECT_EQ(p.size(), 3u);
  std::vector<uint64_t> rm{0, 9};
  EXPECT_EQ(p.remove_batch(rm.data(), rm.size()), 2u);
  EXPECT_FALSE(p.has(0));
  EXPECT_EQ(contents(p), (std::vector<uint64_t>{5}));
}

// The three regimes: small (point loop), medium (batch merge), huge (rebuild).
TYPED_TEST(PmaBatchTest, SmallBatchUsesPointPath) {
  TypeParam p;
  std::vector<uint64_t> base(100000);
  for (size_t i = 0; i < base.size(); ++i) base[i] = (i + 1) * 5;
  p.insert_batch(base.data(), base.size());
  std::vector<uint64_t> batch{7, 13, 21};  // < kPointThreshold
  EXPECT_EQ(p.insert_batch(batch.data(), batch.size()), 3u);
  EXPECT_EQ(p.size(), 100003u);
  expect_invariants(p);
}

TYPED_TEST(PmaBatchTest, MediumBatchUsesMergePath) {
  TypeParam p;
  Rng r(1);
  std::vector<uint64_t> base(200000);
  for (auto& k : base) k = 1 + (r.next() % (1ull << 40));
  p.insert_batch(base.data(), base.size());
  const uint64_t before = p.size();
  // ~1% of current size: squarely in the merge regime.
  std::vector<uint64_t> batch(2000);
  for (auto& k : batch) k = 1 + (r.next() % (1ull << 40));
  std::set<uint64_t> uniq(batch.begin(), batch.end());
  uint64_t expected_new = 0;
  for (uint64_t k : uniq) expected_new += p.has(k) ? 0 : 1;
  EXPECT_EQ(p.insert_batch(batch.data(), batch.size()), expected_new);
  EXPECT_EQ(p.size(), before + expected_new);
  expect_invariants(p);
  for (uint64_t k : uniq) EXPECT_TRUE(p.has(k));
}

TYPED_TEST(PmaBatchTest, HugeBatchUsesRebuildPath) {
  TypeParam p;
  Rng r(2);
  std::vector<uint64_t> base(50000);
  for (auto& k : base) k = 1 + (r.next() % (1ull << 40));
  p.insert_batch(base.data(), base.size());
  std::vector<uint64_t> batch(40000);  // ~80%: rebuild regime
  for (auto& k : batch) k = 1 + (r.next() % (1ull << 40));
  std::set<uint64_t> ref(base.begin(), base.end());
  uint64_t before_unique = ref.size();
  for (uint64_t k : batch) ref.insert(k);
  EXPECT_EQ(p.insert_batch(batch.data(), batch.size()),
            ref.size() - before_unique);
  EXPECT_EQ(p.size(), ref.size());
  expect_invariants(p);
  EXPECT_EQ(contents(p), std::vector<uint64_t>(ref.begin(), ref.end()));
}

TYPED_TEST(PmaBatchTest, SkewedBatchOverflowsOneLeaf) {
  // All batch keys land in a single leaf: exercises the out-of-place
  // overflow + redistribution path of Figure 4.
  TypeParam p;
  std::vector<uint64_t> base;
  for (uint64_t i = 1; i <= 100000; ++i) base.push_back(i * 1000000);
  p.insert_batch(base.data(), base.size());
  // Offset by 1 so no batch key collides with the multiples of 1e6 in base.
  std::vector<uint64_t> batch;
  for (uint64_t i = 0; i < 5000; ++i) batch.push_back(500000001 + i);
  EXPECT_EQ(p.insert_batch(batch.data(), batch.size()), batch.size());
  expect_invariants(p);
  for (uint64_t k : batch) ASSERT_TRUE(p.has(k));
  EXPECT_EQ(p.size(), base.size() + batch.size());
}

TYPED_TEST(PmaBatchTest, BatchRemoveBasic) {
  TypeParam p;
  std::vector<uint64_t> base{1, 2, 3, 4, 5, 6, 7, 8};
  p.insert_batch(base.data(), base.size());
  std::vector<uint64_t> rm{2, 4, 6, 100};  // 100 absent
  EXPECT_EQ(p.remove_batch(rm.data(), rm.size()), 3u);
  EXPECT_EQ(contents(p), (std::vector<uint64_t>{1, 3, 5, 7, 8}));
  expect_invariants(p);
}

TYPED_TEST(PmaBatchTest, BatchRemoveMergeRegime) {
  TypeParam p;
  Rng r(3);
  std::vector<uint64_t> base(300000);
  for (auto& k : base) k = 1 + (r.next() % (1ull << 40));
  p.insert_batch(base.data(), base.size());
  std::set<uint64_t> ref;
  p.map([&](uint64_t k) { ref.insert(k); });
  // Remove ~1% of the keys (half existing, half absent).
  std::vector<uint64_t> rm;
  auto it = ref.begin();
  for (int i = 0; i < 1500 && it != ref.end(); ++i) {
    rm.push_back(*it);
    std::advance(it, 97);
  }
  size_t present = rm.size();
  for (int i = 0; i < 1500; ++i) rm.push_back(2 + (r.next() | (1ull << 41)));
  EXPECT_EQ(p.remove_batch(rm.data(), rm.size()), present);
  for (size_t i = 0; i < present; ++i) ref.erase(rm[i]);
  EXPECT_EQ(p.size(), ref.size());
  expect_invariants(p);
}

TYPED_TEST(PmaBatchTest, BatchRemoveEverything) {
  TypeParam p;
  Rng r(4);
  std::vector<uint64_t> base(100000);
  for (auto& k : base) k = 1 + (r.next() % (1ull << 40));
  p.insert_batch(base.data(), base.size());
  std::vector<uint64_t> all = contents(p);
  EXPECT_EQ(p.remove_batch(all.data(), all.size()), all.size());
  EXPECT_EQ(p.size(), 0u);
  expect_invariants(p);
  // Still usable.
  std::vector<uint64_t> batch{10, 20};
  EXPECT_EQ(p.insert_batch(batch.data(), batch.size()), 2u);
}

TYPED_TEST(PmaBatchTest, RepeatedBatchesGrowTheArray) {
  TypeParam p;
  Rng r(5);
  uint64_t expected = 0;
  std::set<uint64_t> ref;
  for (int round = 0; round < 20; ++round) {
    std::vector<uint64_t> batch(20000);
    for (auto& k : batch) k = 1 + (r.next() % (1ull << 40));
    for (uint64_t k : batch) ref.insert(k);
    p.insert_batch(batch.data(), batch.size());
    expected = ref.size();
    ASSERT_EQ(p.size(), expected) << "round " << round;
  }
  expect_invariants(p);
  EXPECT_EQ(contents(p), std::vector<uint64_t>(ref.begin(), ref.end()));
}

TYPED_TEST(PmaBatchTest, InterleavedBatchInsertRemoveAgainstReference) {
  TypeParam p;
  std::set<uint64_t> ref;
  Rng r(6);
  for (int round = 0; round < 15; ++round) {
    std::vector<uint64_t> ins(5000);
    for (auto& k : ins) k = 1 + (r.next() % 200000);  // dense => many dups
    for (uint64_t k : ins) ref.insert(k);
    p.insert_batch(ins.data(), ins.size());
    ASSERT_EQ(p.size(), ref.size());

    std::vector<uint64_t> rm(2500);
    for (auto& k : rm) k = 1 + (r.next() % 200000);
    for (uint64_t k : rm) ref.erase(k);
    p.remove_batch(rm.data(), rm.size());
    ASSERT_EQ(p.size(), ref.size()) << "round " << round;
  }
  expect_invariants(p);
  EXPECT_EQ(contents(p), std::vector<uint64_t>(ref.begin(), ref.end()));
}

TYPED_TEST(PmaBatchTest, ZipfianBatches) {
  TypeParam p;
  cpma::util::ZipfGenerator z(1 << 20, 0.99, 9);
  std::set<uint64_t> ref;
  uint64_t idx = 0;
  for (int round = 0; round < 10; ++round) {
    std::vector<uint64_t> batch(10000);
    for (auto& k : batch) k = z.key(idx++);
    for (uint64_t k : batch) ref.insert(k);
    p.insert_batch(batch.data(), batch.size());
    ASSERT_EQ(p.size(), ref.size()) << "round " << round;
  }
  expect_invariants(p);
}

TYPED_TEST(PmaBatchTest, BatchSizesSweep) {
  // One test per decade of batch size, hitting every strategy crossover.
  for (uint64_t batch_size : {8ull, 100ull, 1000ull, 20000ull, 200000ull}) {
    TypeParam p;
    Rng r(batch_size);
    std::vector<uint64_t> base(100000);
    for (auto& k : base) k = 1 + (r.next() % (1ull << 40));
    p.insert_batch(base.data(), base.size());
    std::set<uint64_t> ref;
    p.map([&](uint64_t k) { ref.insert(k); });
    std::vector<uint64_t> batch(batch_size);
    for (auto& k : batch) k = 1 + (r.next() % (1ull << 40));
    for (uint64_t k : batch) ref.insert(k);
    p.insert_batch(batch.data(), batch.size());
    ASSERT_EQ(p.size(), ref.size()) << "batch_size=" << batch_size;
    expect_invariants(p);
  }
}

TYPED_TEST(PmaBatchTest, ZipfSkewedBatchConcentratesOnOneLeaf) {
  // Base keys spread wide; Zipf-skewed batches concentrate most keys in the
  // lowest leaf's range (hot keys are small), so one leaf repeatedly takes
  // nearly the whole batch while a few keys scatter elsewhere.
  TypeParam p;
  std::vector<uint64_t> base;
  for (uint64_t i = 1; i <= 100000; ++i) base.push_back(i * (1ull << 22));
  p.insert_batch(base.data(), base.size());
  std::set<uint64_t> ref(base.begin(), base.end());
  cpma::util::ZipfGenerator z(1 << 30, 0.99, 17);
  uint64_t idx = 0;
  for (int round = 0; round < 5; ++round) {
    std::vector<uint64_t> batch(4000);
    for (auto& k : batch) k = z.key(idx++);
    for (uint64_t k : batch) ref.insert(k);
    p.insert_batch(batch.data(), batch.size());
    ASSERT_EQ(p.size(), ref.size()) << "round " << round;
    expect_invariants(p);
  }
  EXPECT_EQ(contents(p), std::vector<uint64_t>(ref.begin(), ref.end()));
}

TYPED_TEST(PmaBatchTest, BatchSizesStraddleMergeRebuildCrossover) {
  // The strategy crossover is n >= count_/10; exercise one batch just
  // below, at, and just above it on identically-built structures.
  for (int64_t offset : {-1, 0, 1}) {
    TypeParam p;
    Rng r(42);
    std::vector<uint64_t> base(100000);
    for (auto& k : base) k = 1 + (r.next() % (1ull << 40));
    p.insert_batch(base.data(), base.size());
    const uint64_t count = p.size();
    std::set<uint64_t> ref;
    p.map([&](uint64_t k) { ref.insert(k); });
    const uint64_t n =
        static_cast<uint64_t>(static_cast<int64_t>(count / 10) + offset);
    std::vector<uint64_t> batch(n);
    for (auto& k : batch) k = 1 + (r.next() % (1ull << 40));
    for (uint64_t k : batch) ref.insert(k);
    p.insert_batch(batch.data(), batch.size());
    ASSERT_EQ(p.size(), ref.size()) << "offset " << offset;
    expect_invariants(p);
    EXPECT_EQ(contents(p), std::vector<uint64_t>(ref.begin(), ref.end()));
  }
}

TYPED_TEST(PmaBatchTest, MergePathGrowsOnRootViolation) {
  // Feed merge-regime batches (always < count/10) until the array must
  // grow: some batch hits the root bound inside insert_batch_merge and
  // takes the pack-and-rebuild-larger path.
  TypeParam p;
  Rng r(43);
  std::vector<uint64_t> base(200000);
  for (auto& k : base) k = 1 + (r.next() % (1ull << 40));
  p.insert_batch(base.data(), base.size());
  std::set<uint64_t> ref;
  p.map([&](uint64_t k) { ref.insert(k); });
  const uint64_t bytes_before = p.total_bytes();
  bool grew = false;
  for (int round = 0; round < 60 && !grew; ++round) {
    std::vector<uint64_t> batch(p.size() / 20);
    for (auto& k : batch) k = 1 + (r.next() % (1ull << 40));
    for (uint64_t k : batch) ref.insert(k);
    p.insert_batch(batch.data(), batch.size());
    ASSERT_EQ(p.size(), ref.size()) << "round " << round;
    grew = p.total_bytes() > bytes_before;
  }
  ASSERT_TRUE(grew) << "no merge-path batch triggered a grow";
  expect_invariants(p);
  EXPECT_EQ(contents(p), std::vector<uint64_t>(ref.begin(), ref.end()));
}

TYPED_TEST(PmaBatchTest, PhaseTimesAccumulateAcrossStrategies) {
  TypeParam p;
  EXPECT_EQ(p.batch_phase_times().batches, 0u);
  Rng r(44);
  std::vector<uint64_t> base(100000);
  for (auto& k : base) k = 1 + (r.next() % (1ull << 40));
  p.insert_batch(base.data(), base.size());  // rebuild strategy
  EXPECT_EQ(p.batch_phase_times().rebuilds, 1u);
  std::vector<uint64_t> batch(2000);  // merge strategy
  for (auto& k : batch) k = 1 + (r.next() % (1ull << 40));
  p.insert_batch(batch.data(), batch.size());
  const auto& t = p.batch_phase_times();
  EXPECT_EQ(t.batches, 1u);
  EXPECT_GT(t.merge_ns, 0u);
  p.reset_batch_phase_times();
  EXPECT_EQ(p.batch_phase_times().batches, 0u);
  EXPECT_EQ(p.batch_phase_times().merge_ns, 0u);
}

TYPED_TEST(PmaBatchTest, SpreadTimesPopulatedByGrowRebuildOnlyByHugeBatches) {
  // Drive merge-regime batches (always < count/10, so never the rebuild
  // strategy) until one violates the root bound and grows: that grow must be
  // accounted to the direct-spread phase, and rebuild_ns must stay untouched
  // because only the huge-batch strategy rebuilds.
  TypeParam p;
  Rng r(45);
  std::vector<uint64_t> base(150000);
  for (auto& k : base) k = 1 + (r.next() % (1ull << 40));
  p.insert_batch(base.data(), base.size());  // huge batch: rebuild strategy
  EXPECT_GT(p.batch_phase_times().rebuild_ns, 0u);
  EXPECT_EQ(p.batch_phase_times().spreads, 0u);
  p.reset_batch_phase_times();
  const uint64_t bytes_before = p.total_bytes();
  bool grew = false;
  for (int round = 0; round < 60 && !grew; ++round) {
    std::vector<uint64_t> batch(p.size() / 20);
    for (auto& k : batch) k = 1 + (r.next() % (1ull << 40));
    p.insert_batch(batch.data(), batch.size());
    grew = p.total_bytes() > bytes_before;
  }
  ASSERT_TRUE(grew) << "no merge-path batch triggered a grow";
  const auto& t = p.batch_phase_times();
  EXPECT_GT(t.spreads, 0u);
  EXPECT_GT(t.spread_ns, 0u);
  EXPECT_EQ(t.rebuilds, 0u);
  EXPECT_EQ(t.rebuild_ns, 0u) << "merge-path grows must not rebuild";
  std::string err;
  EXPECT_TRUE(p.check_invariants(&err)) << err;
}

TYPED_TEST(PmaBatchTest, MixedPointAndBatchOperations) {
  TypeParam p;
  std::set<uint64_t> ref;
  Rng r(8);
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 200; ++i) {
      uint64_t k = 1 + r.next() % 100000;
      EXPECT_EQ(p.insert(k), ref.insert(k).second);
    }
    std::vector<uint64_t> batch(3000);
    for (auto& k : batch) k = 1 + (r.next() % 100000);
    for (uint64_t k : batch) ref.insert(k);
    p.insert_batch(batch.data(), batch.size());
    for (int i = 0; i < 100; ++i) {
      uint64_t k = 1 + r.next() % 100000;
      EXPECT_EQ(p.remove(k), ref.erase(k) == 1);
    }
    ASSERT_EQ(p.size(), ref.size());
  }
  expect_invariants(p);
  EXPECT_EQ(contents(p), std::vector<uint64_t>(ref.begin(), ref.end()));
}
