// Tests for the comparator data structures: P-tree (PAM-like), PaC-trees
// (U-PaC / C-PaC), and the serial RMA-like batch baseline — all validated
// against std::set on the same operation mixes as the PMA tests.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "baselines/pactree.hpp"
#include "baselines/ptree.hpp"
#include "pma/cpma.hpp"
#include "util/random.hpp"

using cpma::baselines::CPacTree;
using cpma::baselines::PTree;
using cpma::baselines::UPacTree;
using cpma::util::Rng;

// ---------------------------------------------------------------------------
// PTree
// ---------------------------------------------------------------------------

TEST(PTree, PointOpsAgainstReference) {
  PTree t;
  std::set<uint64_t> ref;
  Rng r(1);
  for (int step = 0; step < 20000; ++step) {
    uint64_t k = r.next() % 4000;
    if (r.next() % 3 != 0) {
      EXPECT_EQ(t.insert(k), ref.insert(k).second);
    } else {
      EXPECT_EQ(t.remove(k), ref.erase(k) == 1);
    }
  }
  EXPECT_EQ(t.size(), ref.size());
  EXPECT_TRUE(t.check_invariants());
  std::vector<uint64_t> got, want(ref.begin(), ref.end());
  t.map([&](uint64_t k) { got.push_back(k); });
  EXPECT_EQ(got, want);
}

TEST(PTree, BatchInsertCountsNewKeysOnly) {
  PTree t;
  std::vector<uint64_t> a{1, 2, 3, 4, 5};
  EXPECT_EQ(t.insert_batch(a.data(), a.size()), 5u);
  std::vector<uint64_t> b{4, 5, 6, 6, 7};
  EXPECT_EQ(t.insert_batch(b.data(), b.size()), 2u);
  EXPECT_EQ(t.size(), 7u);
  EXPECT_TRUE(t.check_invariants());
}

TEST(PTree, LargeBatchesMatchReference) {
  PTree t;
  std::set<uint64_t> ref;
  Rng r(2);
  for (int round = 0; round < 8; ++round) {
    std::vector<uint64_t> batch(50000);
    for (auto& k : batch) k = 1 + (r.next() % (1ull << 40));
    for (uint64_t k : batch) ref.insert(k);
    t.insert_batch(batch.data(), batch.size());
    ASSERT_EQ(t.size(), ref.size()) << "round " << round;
  }
  EXPECT_TRUE(t.check_invariants());
  std::vector<uint64_t> got, want(ref.begin(), ref.end());
  t.map([&](uint64_t k) { got.push_back(k); });
  EXPECT_EQ(got, want);
}

TEST(PTree, BatchRemove) {
  PTree t;
  Rng r(3);
  std::vector<uint64_t> base(100000);
  for (auto& k : base) k = 1 + (r.next() % (1ull << 40));
  t.insert_batch(base.data(), base.size());
  std::set<uint64_t> ref;
  t.map([&](uint64_t k) { ref.insert(k); });
  std::vector<uint64_t> rm;
  auto it = ref.begin();
  for (int i = 0; i < 5000 && it != ref.end(); ++i, std::advance(it, 13)) {
    rm.push_back(*it);
  }
  size_t present = rm.size();
  rm.push_back(123456789ull << 20);  // absent
  EXPECT_EQ(t.remove_batch(rm.data(), rm.size()), present);
  for (size_t i = 0; i < present; ++i) ref.erase(rm[i]);
  EXPECT_EQ(t.size(), ref.size());
  EXPECT_TRUE(t.check_invariants());
}

TEST(PTree, MapRangeAndLength) {
  PTree t;
  for (uint64_t i = 1; i <= 100; ++i) t.insert(i * 10);
  std::vector<uint64_t> got;
  t.map_range([&](uint64_t k) { got.push_back(k); }, 95, 305);
  std::vector<uint64_t> want;
  for (uint64_t i = 10; i <= 30; ++i) want.push_back(i * 10);
  EXPECT_EQ(got, want);
  got.clear();
  uint64_t applied =
      t.map_range_length([&](uint64_t k) { got.push_back(k); }, 95, 4);
  EXPECT_EQ(applied, 4u);
  EXPECT_EQ(got, (std::vector<uint64_t>{100, 110, 120, 130}));
}

TEST(PTree, SpaceIs32BytesPerElement) {
  PTree t;
  std::vector<uint64_t> keys(10000);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = i * 3 + 1;
  t.insert_batch(keys.data(), keys.size());
  EXPECT_NEAR(static_cast<double>(t.get_size()) / t.size(), 32.0, 1.0);
}

// ---------------------------------------------------------------------------
// PaC-trees (typed over compression)
// ---------------------------------------------------------------------------

template <typename T>
class PacTreeTest : public ::testing::Test {};

using PacTypes = ::testing::Types<UPacTree, CPacTree>;
TYPED_TEST_SUITE(PacTreeTest, PacTypes);

TYPED_TEST(PacTreeTest, EmptyTree) {
  TypeParam t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.has(1));
  EXPECT_TRUE(t.check_invariants());
}

TYPED_TEST(PacTreeTest, PointOpsAgainstReference) {
  TypeParam t;
  std::set<uint64_t> ref;
  Rng r(4);
  for (int step = 0; step < 5000; ++step) {
    uint64_t k = 1 + r.next() % 3000;
    if (r.next() % 3 != 0) {
      EXPECT_EQ(t.insert(k), ref.insert(k).second);
    } else {
      EXPECT_EQ(t.remove(k), ref.erase(k) == 1);
    }
  }
  EXPECT_EQ(t.size(), ref.size());
  EXPECT_TRUE(t.check_invariants());
}

TYPED_TEST(PacTreeTest, BatchBuildAndLookups) {
  TypeParam t;
  Rng r(5);
  std::vector<uint64_t> keys(200000);
  for (auto& k : keys) k = 1 + (r.next() % (1ull << 40));
  t.insert_batch(keys.data(), keys.size());
  EXPECT_TRUE(t.check_invariants());
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(t.has(keys[r.next() % keys.size()]));
  }
}

TYPED_TEST(PacTreeTest, RepeatedBatchesMatchReference) {
  TypeParam t;
  std::set<uint64_t> ref;
  Rng r(6);
  for (int round = 0; round < 10; ++round) {
    std::vector<uint64_t> batch(30000);
    for (auto& k : batch) k = 1 + (r.next() % (1ull << 38));
    for (uint64_t k : batch) ref.insert(k);
    t.insert_batch(batch.data(), batch.size());
    ASSERT_EQ(t.size(), ref.size());
  }
  EXPECT_TRUE(t.check_invariants());
  std::vector<uint64_t> got, want(ref.begin(), ref.end());
  t.map([&](uint64_t k) { got.push_back(k); });
  EXPECT_EQ(got, want);
}

TYPED_TEST(PacTreeTest, BatchRemoveMatchesReference) {
  TypeParam t;
  Rng r(7);
  std::vector<uint64_t> base(150000);
  for (auto& k : base) k = 1 + (r.next() % (1ull << 40));
  t.insert_batch(base.data(), base.size());
  std::set<uint64_t> ref;
  t.map([&](uint64_t k) { ref.insert(k); });
  std::vector<uint64_t> rm;
  auto it = ref.begin();
  for (int i = 0; i < 30000 && it != ref.end(); ++i, std::advance(it, 3)) {
    rm.push_back(*it);
  }
  size_t present = rm.size();
  EXPECT_EQ(t.remove_batch(rm.data(), rm.size()), present);
  for (uint64_t k : rm) ref.erase(k);
  EXPECT_EQ(t.size(), ref.size());
  EXPECT_TRUE(t.check_invariants());
  std::vector<uint64_t> got, want(ref.begin(), ref.end());
  t.map([&](uint64_t k) { got.push_back(k); });
  EXPECT_EQ(got, want);
}

TYPED_TEST(PacTreeTest, RemoveEverything) {
  TypeParam t;
  std::vector<uint64_t> keys(10000);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = (i + 1) * 7;
  t.insert_batch(keys.data(), keys.size());
  EXPECT_EQ(t.remove_batch(keys.data(), keys.size()), keys.size());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.check_invariants());
  EXPECT_TRUE(t.insert(5));
}

TYPED_TEST(PacTreeTest, MapRange) {
  TypeParam t;
  std::vector<uint64_t> keys(5000);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = (i + 1) * 2;
  t.insert_batch(keys.data(), keys.size());
  std::vector<uint64_t> got;
  t.map_range([&](uint64_t k) { got.push_back(k); }, 101, 201);
  std::vector<uint64_t> want;
  for (uint64_t k = 102; k <= 200; k += 2) want.push_back(k);
  EXPECT_EQ(got, want);
  got.clear();
  uint64_t applied =
      t.map_range_length([&](uint64_t k) { got.push_back(k); }, 101, 3);
  EXPECT_EQ(applied, 3u);
  EXPECT_EQ(got, (std::vector<uint64_t>{102, 104, 106}));
}

// Compression: C-PaC should be much smaller than U-PaC on uniform keys.
TEST(PacTreeSpace, CompressedSmallerThanUncompressed) {
  UPacTree u;
  CPacTree c;
  Rng r(8);
  std::vector<uint64_t> keys(300000);
  for (auto& k : keys) k = 1 + (r.next() % (1ull << 40));
  std::vector<uint64_t> ku = keys, kc = keys;
  u.insert_batch(ku.data(), ku.size());
  c.insert_batch(kc.data(), kc.size());
  EXPECT_LT(c.get_size() * 3, u.get_size() * 2);  // at least 1.5x smaller
}

// ---------------------------------------------------------------------------
// RMA-like serial batch baseline
// ---------------------------------------------------------------------------

TEST(RmaLikeBaseline, MatchesParallelBatchResults) {
  cpma::PMA a, b;
  Rng r(9);
  std::vector<uint64_t> base(100000);
  for (auto& k : base) k = 1 + (r.next() % (1ull << 40));
  std::vector<uint64_t> ba = base, bb = base;
  a.insert_batch(ba.data(), ba.size());
  b.insert_batch_serial_baseline(bb.data(), bb.size());
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(a.sum(), b.sum());
  std::string err;
  EXPECT_TRUE(b.check_invariants(&err)) << err;
}

TEST(RmaLikeBaseline, RepeatedBatches) {
  cpma::CPMA c;
  std::set<uint64_t> ref;
  Rng r(10);
  for (int round = 0; round < 10; ++round) {
    std::vector<uint64_t> batch(20000);
    for (auto& k : batch) k = 1 + (r.next() % (1ull << 40));
    for (uint64_t k : batch) ref.insert(k);
    c.insert_batch_serial_baseline(batch.data(), batch.size());
    ASSERT_EQ(c.size(), ref.size()) << round;
  }
  std::string err;
  EXPECT_TRUE(c.check_invariants(&err)) << err;
}

TEST(RmaLikeBaseline, HandlesDuplicatesAndZeros) {
  cpma::PMA p;
  std::vector<uint64_t> batch{0, 0, 5, 5, 9};
  EXPECT_EQ(p.insert_batch_serial_baseline(batch.data(), batch.size()), 3u);
  EXPECT_TRUE(p.has(0));
  EXPECT_TRUE(p.has(5));
  EXPECT_EQ(p.size(), 3u);
}
