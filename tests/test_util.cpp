// Unit tests for the utility layer: bit tricks, RNGs, zipfian generator.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "util/bits.hpp"
#include "util/random.hpp"
#include "util/zipf.hpp"

namespace u = cpma::util;

TEST(Bits, Log2Floor) {
  EXPECT_EQ(u::log2_floor(1), 0u);
  EXPECT_EQ(u::log2_floor(2), 1u);
  EXPECT_EQ(u::log2_floor(3), 1u);
  EXPECT_EQ(u::log2_floor(4), 2u);
  EXPECT_EQ(u::log2_floor(uint64_t{1} << 63), 63u);
  EXPECT_EQ(u::log2_floor((uint64_t{1} << 63) + 5), 63u);
}

TEST(Bits, Log2Ceil) {
  EXPECT_EQ(u::log2_ceil(1), 0u);
  EXPECT_EQ(u::log2_ceil(2), 1u);
  EXPECT_EQ(u::log2_ceil(3), 2u);
  EXPECT_EQ(u::log2_ceil(4), 2u);
  EXPECT_EQ(u::log2_ceil(5), 3u);
  EXPECT_EQ(u::log2_ceil(1024), 10u);
  EXPECT_EQ(u::log2_ceil(1025), 11u);
}

TEST(Bits, NextPow2) {
  EXPECT_EQ(u::next_pow2(1), 1u);
  EXPECT_EQ(u::next_pow2(2), 2u);
  EXPECT_EQ(u::next_pow2(3), 4u);
  EXPECT_EQ(u::next_pow2(255), 256u);
  EXPECT_EQ(u::next_pow2(256), 256u);
  EXPECT_EQ(u::next_pow2(257), 512u);
}

TEST(Bits, IsPow2) {
  EXPECT_FALSE(u::is_pow2(0));
  EXPECT_TRUE(u::is_pow2(1));
  EXPECT_TRUE(u::is_pow2(64));
  EXPECT_FALSE(u::is_pow2(65));
}

TEST(Bits, DivRoundUp) {
  EXPECT_EQ(u::div_round_up(0, 4), 0u);
  EXPECT_EQ(u::div_round_up(1, 4), 1u);
  EXPECT_EQ(u::div_round_up(4, 4), 1u);
  EXPECT_EQ(u::div_round_up(5, 4), 2u);
}

TEST(Random, Hash64Deterministic) {
  EXPECT_EQ(u::hash64(42), u::hash64(42));
  EXPECT_NE(u::hash64(42), u::hash64(43));
}

TEST(Random, RngSequenceDiffersBySeed) {
  u::Rng a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Random, NextBelowInRange) {
  u::Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
}

TEST(Random, NextDoubleInUnitInterval) {
  u::Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Random, UniformKeyRespectsBitWidthAndNonzero) {
  for (uint64_t i = 0; i < 10000; ++i) {
    uint64_t k = u::uniform_key(123, i, 40);
    EXPECT_NE(k, 0u);
    EXPECT_LT(k, uint64_t{1} << 40);
  }
}

TEST(Random, UniformKeyRandomAccessIsDeterministic) {
  EXPECT_EQ(u::uniform_key(5, 1000), u::uniform_key(5, 1000));
  EXPECT_NE(u::uniform_key(5, 1000), u::uniform_key(6, 1000));
}

TEST(Random, UniformKeysSpreadAcrossSpace) {
  // Crude uniformity check: bucket into 16 bins, expect no bin dominates.
  std::map<uint64_t, uint64_t> bins;
  const uint64_t n = 1 << 16;
  for (uint64_t i = 0; i < n; ++i) {
    bins[u::uniform_key(3, i, 40) >> 36] += 1;
  }
  for (auto& [bin, cnt] : bins) {
    EXPECT_GT(cnt, n / 32);
    EXPECT_LT(cnt, n / 8);
  }
}

TEST(Zipf, RanksWithinDomain) {
  u::ZipfGenerator z(1000, 0.99, 42);
  for (uint64_t i = 0; i < 10000; ++i) {
    EXPECT_LT(z.rank(i), 1000u);
  }
}

TEST(Zipf, SkewFavorsSmallRanks) {
  u::ZipfGenerator z(1 << 20, 0.99, 1);
  uint64_t hot = 0;
  const uint64_t n = 100000;
  for (uint64_t i = 0; i < n; ++i) {
    if (z.rank(i) < 100) ++hot;
  }
  // With alpha=0.99 over 1M ranks, the top-100 ranks draw a large constant
  // fraction; uniform would give ~0.01%.
  EXPECT_GT(hot, n / 10);
}

TEST(Zipf, KeysNonzeroAndWithinBits) {
  u::ZipfGenerator z(1 << 20, 0.99, 7);
  for (uint64_t i = 0; i < 10000; ++i) {
    uint64_t k = z.key(i, 34);
    EXPECT_NE(k, 0u);
    EXPECT_LT(k, uint64_t{1} << 34);
  }
}

TEST(Zipf, DeterministicAcrossCalls) {
  u::ZipfGenerator z(1 << 16, 0.99, 11);
  EXPECT_EQ(z.key(5), z.key(5));
}
