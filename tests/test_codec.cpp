// Tests for the varint byte codec and delta encoding: roundtrips across the
// value-width spectrum, the no-zero-byte invariant the CPMA leaf format
// relies on, size accounting, and the DeltaStream decode kernel (scalar,
// block/word-at-a-time, and the generic no-bulk-hooks fallback).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "codec/delta.hpp"
#include "codec/delta_stream.hpp"
#include "codec/group_varint.hpp"
#include "codec/varint.hpp"
#include "util/random.hpp"

namespace codec = cpma::codec;
using cpma::util::Rng;

class VarintWidths : public ::testing::TestWithParam<unsigned> {};

TEST_P(VarintWidths, RoundtripAtBitBoundaries) {
  unsigned bits = GetParam();
  std::vector<uint64_t> probes;
  uint64_t base = (bits == 64) ? ~uint64_t{0} : (uint64_t{1} << bits);
  probes.push_back(base - 1);
  probes.push_back(base == ~uint64_t{0} ? base : base);
  if (base + 1 != 0) probes.push_back(base + 1);
  for (uint64_t v : probes) {
    uint8_t buf[codec::kMaxVarintBytes];
    size_t n = codec::varint_encode(v, buf);
    EXPECT_EQ(n, codec::varint_size(v));
    uint64_t out;
    EXPECT_EQ(codec::varint_decode(buf, &out), n);
    EXPECT_EQ(out, v);
    EXPECT_EQ(codec::varint_skip(buf), n);
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, VarintWidths,
                         ::testing::Values(1u, 7u, 8u, 14u, 21u, 28u, 35u,
                                           42u, 49u, 56u, 63u, 64u));

TEST(Varint, SizeSteps) {
  EXPECT_EQ(codec::varint_size(0), 1u);
  EXPECT_EQ(codec::varint_size(127), 1u);
  EXPECT_EQ(codec::varint_size(128), 2u);
  EXPECT_EQ(codec::varint_size(16383), 2u);
  EXPECT_EQ(codec::varint_size(16384), 3u);
  EXPECT_EQ(codec::varint_size(~uint64_t{0}), 10u);
}

TEST(Varint, NonzeroValuesNeverEncodeALeadingZeroByte) {
  // The CPMA leaf format uses 0x00 as the end-of-stream marker; any v >= 1
  // must encode with no 0x00 byte anywhere.
  Rng r(5);
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = (r.next() >> (r.next() % 60)) | 1;
    uint8_t buf[codec::kMaxVarintBytes];
    size_t n = codec::varint_encode(v, buf);
    for (size_t j = 0; j < n; ++j) EXPECT_NE(buf[j], 0) << "v=" << v;
  }
}

TEST(Varint, RandomRoundtrip) {
  Rng r(7);
  for (int i = 0; i < 50000; ++i) {
    uint64_t v = r.next() >> (r.next() % 64);
    uint8_t buf[codec::kMaxVarintBytes];
    size_t n = codec::varint_encode(v, buf);
    uint64_t out;
    EXPECT_EQ(codec::varint_decode(buf, &out), n);
    EXPECT_EQ(out, v);
  }
}

TEST(Varint, SequentialStreamDecode) {
  // Encode a stream of values back to back and decode it.
  Rng r(9);
  std::vector<uint64_t> values(1000);
  for (auto& v : values) v = r.next() >> (r.next() % 60);
  std::vector<uint8_t> buf;
  uint8_t tmp[codec::kMaxVarintBytes];
  for (uint64_t v : values) {
    size_t n = codec::varint_encode(v, tmp);
    buf.insert(buf.end(), tmp, tmp + n);
  }
  size_t pos = 0;
  for (uint64_t v : values) {
    uint64_t out;
    pos += codec::varint_decode(buf.data() + pos, &out);
    EXPECT_EQ(out, v);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(Delta, EncodeDecodeRoundtrip) {
  Rng r(11);
  std::vector<uint64_t> keys(5000);
  uint64_t cur = 0;
  for (auto& k : keys) {
    cur += 1 + (r.next() % 100000);
    k = cur;
  }
  std::vector<uint8_t> buf;
  codec::delta_encode_append(keys.data() + 1, keys.size() - 1, keys[0], buf);
  EXPECT_EQ(buf.size(),
            codec::delta_encoded_size(keys.data() + 1, keys.size() - 1,
                                      keys[0]));
  std::vector<uint64_t> out{keys[0]};
  codec::delta_decode_append(buf.data(), buf.size(), keys[0], out);
  EXPECT_EQ(out, keys);
}

TEST(Delta, DenseKeysCompressWell) {
  // Consecutive keys have delta 1 => 1 byte each vs 8 uncompressed.
  std::vector<uint64_t> keys(1000);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = 1000 + i;
  size_t sz =
      codec::delta_encoded_size(keys.data() + 1, keys.size() - 1, keys[0]);
  EXPECT_EQ(sz, keys.size() - 1);
}

TEST(Delta, EmptyRange) {
  std::vector<uint8_t> buf;
  codec::delta_encode_append(nullptr, 0, 42, buf);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(codec::delta_encoded_size(nullptr, 0, 42), 0u);
}

// ---------------------------------------------------------------------------
// DeltaStream: the leaf layer's streaming decode kernel.
// ---------------------------------------------------------------------------

// A codec with none of the optional bulk hooks, forcing DeltaStream's
// generic scalar fallbacks — the path an alternative codec starts on.
struct ScalarOnlyCodec {
  static constexpr const char* name = "scalar-only";
  static constexpr size_t kMaxBytes = codec::kMaxVarintBytes;
  static constexpr size_t size(uint64_t v) { return codec::varint_size(v); }
  static size_t encode(uint64_t v, uint8_t* dst) {
    return codec::varint_encode(v, dst);
  }
  static size_t decode(const uint8_t* src, uint64_t* out) {
    return codec::varint_decode(src, out);
  }
  static size_t skip(const uint8_t* src) { return codec::varint_skip(src); }
};

namespace {

// Sorted strictly-increasing keys whose deltas mix widths: `dense_bias` of
// 0 gives all-small deltas (the word/SIMD fast path), larger values mix in
// multi-byte deltas to force the scalar step mid-stream.
std::vector<uint64_t> make_keys(Rng& r, size_t n, unsigned dense_bias) {
  std::vector<uint64_t> keys(n);
  uint64_t cur = 1 + r.next() % 1000;
  for (auto& k : keys) {
    uint64_t d = 1 + r.next() % 100;
    if (dense_bias != 0 && r.next() % dense_bias == 0) {
      d = 1 + (r.next() % (uint64_t{1} << (10 + r.next() % 30)));
    }
    cur += d;
    k = cur;
  }
  return keys;
}

// Encodes keys[1..] as deltas into a buffer with `tail` zero bytes after the
// stream (tail == 0 models a stream that fills its cap exactly).
std::vector<uint8_t> encode_body(const std::vector<uint64_t>& keys,
                                 size_t tail) {
  std::vector<uint8_t> body;
  codec::delta_encode_append(keys.data() + 1, keys.size() - 1, keys[0], body);
  body.insert(body.end(), tail, 0);
  return body;
}

// Same, but in an arbitrary codec's code format (the typed DeltaStream tests
// must feed each codec its own encoding).
template <typename Codec>
std::vector<uint8_t> encode_body_as(const std::vector<uint64_t>& keys,
                                    size_t tail) {
  std::vector<uint8_t> body;
  uint8_t tmp[Codec::kMaxBytes];
  for (size_t i = 1; i < keys.size(); ++i) {
    size_t n = Codec::encode(keys[i] - keys[i - 1], tmp);
    body.insert(body.end(), tmp, tmp + n);
  }
  body.insert(body.end(), tail, 0);
  return body;
}

}  // namespace

template <typename Codec>
class DeltaStreamTest : public ::testing::Test {};

using StreamCodecs = ::testing::Types<codec::ByteVarintCodec, ScalarOnlyCodec,
                                      codec::GroupVarintCodec>;
TYPED_TEST_SUITE(DeltaStreamTest, StreamCodecs);

TYPED_TEST(DeltaStreamTest, ScalarNextMatchesKeys) {
  Rng r(21);
  for (unsigned bias : {0u, 4u, 1u}) {
    auto keys = make_keys(r, 500, bias);
    auto body = encode_body_as<TypeParam>(keys, 3);
    codec::DeltaStream<TypeParam> s(body.data(), body.size(), keys[0]);
    size_t i = 1;
    while (s.next()) {
      ASSERT_LT(i, keys.size());
      EXPECT_EQ(s.value(), keys[i]);
      ++i;
    }
    EXPECT_EQ(i, keys.size());
    EXPECT_FALSE(s.next());  // stays at end
  }
}

TYPED_TEST(DeltaStreamTest, BlockDecodeMatchesScalarAtEveryBlockSize) {
  Rng r(22);
  for (unsigned bias : {0u, 4u}) {
    auto keys = make_keys(r, 700, bias);
    auto body = encode_body_as<TypeParam>(keys, 2);
    for (size_t block : {1, 3, 8, 17, 64, 1000}) {
      codec::DeltaStream<TypeParam> s(body.data(), body.size(), keys[0]);
      std::vector<uint64_t> out{keys[0]};
      std::vector<uint64_t> buf(block);
      while (size_t k = s.next_block(buf.data(), block)) {
        out.insert(out.end(), buf.begin(), buf.begin() + k);
        EXPECT_EQ(s.value(), out.back());
      }
      EXPECT_EQ(out, keys) << "block=" << block;
    }
  }
}

TYPED_TEST(DeltaStreamTest, StreamFillingCapExactlyTerminatesAtCap) {
  Rng r(23);
  auto keys = make_keys(r, 64, 0);
  auto body =
      encode_body_as<TypeParam>(keys, 0);  // no terminator byte: cap is end
  codec::DeltaStream<TypeParam> s(body.data(), body.size(), keys[0]);
  uint64_t buf[16];
  std::vector<uint64_t> out{keys[0]};
  while (size_t k = s.next_block(buf, 16)) out.insert(out.end(), buf, buf + k);
  EXPECT_EQ(out, keys);
  EXPECT_TRUE(s.done());
  EXPECT_EQ(s.pos(), body.size());
}

TYPED_TEST(DeltaStreamTest, CountRemainingMatchesAndConsumes) {
  Rng r(24);
  for (unsigned bias : {0u, 3u}) {
    for (size_t n : {2, 9, 100, 513}) {
      auto keys = make_keys(r, n, bias);
      auto body = encode_body_as<TypeParam>(keys, 5);
      codec::DeltaStream<TypeParam> s(body.data(), body.size(), keys[0]);
      EXPECT_EQ(s.count_remaining(), n - 1);
      EXPECT_TRUE(s.done());
      EXPECT_EQ(s.count_remaining(), 0u);
      // Counting after a partial scalar scan covers mid-stream starts.
      codec::DeltaStream<TypeParam> s2(body.data(), body.size(), keys[0]);
      ASSERT_TRUE(s2.next());
      EXPECT_EQ(s2.count_remaining(), n - 2);
    }
  }
}

TYPED_TEST(DeltaStreamTest, SeekAndDrainMatchScalarWalk) {
  // seek() consumes whole codes starting before the target (sum_run_to when
  // the codec has it); value()/pos() afterwards must agree with a scalar
  // walk stopped at the same boundary.
  Rng r(27);
  for (unsigned bias : {0u, 4u, 1u}) {
    auto keys = make_keys(r, 400, bias);
    auto body = encode_body_as<TypeParam>(keys, 3);
    for (size_t target = 0; target <= body.size(); target += 7) {
      codec::DeltaStream<TypeParam> s(body.data(), body.size(), keys[0]);
      s.seek(target);
      codec::DeltaStream<TypeParam> ref(body.data(), body.size(), keys[0]);
      while (ref.pos() < target && ref.next()) {
      }
      EXPECT_EQ(s.pos(), ref.pos()) << "target=" << target;
      EXPECT_EQ(s.value(), ref.value()) << "target=" << target;
    }
    codec::DeltaStream<TypeParam> s(body.data(), body.size(), keys[0]);
    s.drain();
    EXPECT_EQ(s.value(), keys.back());
    EXPECT_TRUE(s.done());
  }
}

TYPED_TEST(DeltaStreamTest, EmptyBodyIsDone) {
  std::vector<uint8_t> body(8, 0);
  codec::DeltaStream<TypeParam> s(body.data(), body.size(), 99);
  EXPECT_TRUE(s.done());
  EXPECT_FALSE(s.next());
  uint64_t buf[4];
  EXPECT_EQ(s.next_block(buf, 4), 0u);
  EXPECT_EQ(s.count_remaining(), 0u);
  EXPECT_EQ(s.value(), 99u);
}

TYPED_TEST(DeltaStreamTest, BlockDecodeMatchesScalarOnMultiByteHeavyStreams) {
  // bias 1 makes almost every delta multi-byte, so ByteVarintCodec's
  // prefer_scalar probe routes next_block through the tight scalar loop;
  // the result must be byte-identical to the scalar next() walk.
  Rng r(29);
  auto keys = make_keys(r, 600, 1);
  auto body = encode_body_as<TypeParam>(keys, 3);
  for (size_t block : {1, 5, 64, 1000}) {
    codec::DeltaStream<TypeParam> s(body.data(), body.size(), keys[0]);
    std::vector<uint64_t> out{keys[0]};
    std::vector<uint64_t> buf(block);
    while (size_t k = s.next_block(buf.data(), block)) {
      out.insert(out.end(), buf.begin(), buf.begin() + k);
      EXPECT_EQ(s.value(), out.back());
    }
    EXPECT_EQ(out, keys) << "block=" << block;
  }
}

TEST(DeltaStream, ProbeSwitchesBetweenScalarAndBlockPathsMidStream) {
  // Long alternating stretches of 1-byte and 3-byte deltas: successive
  // next_block calls flip between the word fast path and the scalar
  // fallback, and the hand-offs must not lose or duplicate keys.
  std::vector<uint64_t> keys;
  uint64_t cur = 9;
  keys.push_back(cur);
  for (int run = 0; run < 12; ++run) {
    for (int i = 0; i < 40; ++i) keys.push_back(cur += 1 + i % 100);
    for (int i = 0; i < 40; ++i) keys.push_back(cur += 70000 + i);
  }
  auto body = encode_body(keys, 4);
  for (size_t block : {8, 64}) {
    codec::DeltaStream<> s(body.data(), body.size(), keys[0]);
    std::vector<uint64_t> out{keys[0]};
    std::vector<uint64_t> buf(block);
    while (size_t k = s.next_block(buf.data(), block)) {
      out.insert(out.end(), buf.begin(), buf.begin() + k);
    }
    EXPECT_EQ(out, keys) << "block=" << block;
  }
}

// ---------------------------------------------------------------------------
// GroupVarintCodec: control-byte layout specifics the typed suite above
// can't see from the outside.
// ---------------------------------------------------------------------------

TEST(GroupVarint, SizeSteps) {
  using GV = codec::GroupVarintCodec;
  // 5 low bits ride in the control byte, payload widths step at 1/2/4/8
  // bytes: totals 2/3/5/9 with breaks at 2^13 / 2^21 / 2^37.
  EXPECT_EQ(GV::size(1), 2u);
  EXPECT_EQ(GV::size((uint64_t{1} << 13) - 1), 2u);
  EXPECT_EQ(GV::size(uint64_t{1} << 13), 3u);
  EXPECT_EQ(GV::size((uint64_t{1} << 21) - 1), 3u);
  EXPECT_EQ(GV::size(uint64_t{1} << 21), 5u);
  EXPECT_EQ(GV::size((uint64_t{1} << 37) - 1), 5u);
  EXPECT_EQ(GV::size(uint64_t{1} << 37), 9u);
  EXPECT_EQ(GV::size(~uint64_t{0}), 9u);
}

TEST(GroupVarint, RandomRoundtripAndNonzeroControlByte) {
  using GV = codec::GroupVarintCodec;
  static_assert(!codec::kCodecZeroFree<GV>);
  static_assert(codec::kCodecZeroFree<codec::ByteVarintCodec>);
  static_assert(codec::kCodecZeroFree<ScalarOnlyCodec>);  // default when absent
  Rng r(31);
  for (int i = 0; i < 50000; ++i) {
    uint64_t v = (r.next() >> (r.next() % 64)) | 1;
    uint8_t buf[GV::kMaxBytes];
    size_t n = GV::encode(v, buf);
    EXPECT_EQ(n, GV::size(v));
    // The marker bit keeps every control byte nonzero — the code-boundary
    // terminator contract (payload bytes MAY be zero).
    EXPECT_GE(buf[0], 0x80) << "v=" << v;
    uint64_t out;
    EXPECT_EQ(GV::decode(buf, &out), n);
    EXPECT_EQ(out, v);
    EXPECT_EQ(GV::skip(buf), n);
  }
}

TEST(GroupVarint, BlockDecodeStopsAtZeroPayloadBoundary) {
  // Deltas < 32 encode a 0x00 PAYLOAD byte; the stream must not mistake it
  // for the terminator (zero checks happen only at code starts).
  using GV = codec::GroupVarintCodec;
  std::vector<uint64_t> keys;
  uint64_t cur = 100;
  keys.push_back(cur);
  for (int i = 0; i < 300; ++i) keys.push_back(cur += 1 + i % 31);
  auto body = encode_body_as<GV>(keys, 4);
  codec::DeltaStream<GV> s(body.data(), body.size(), keys[0]);
  std::vector<uint64_t> out{keys[0]};
  uint64_t buf[64];
  while (size_t k = s.next_block(buf, 64)) out.insert(out.end(), buf, buf + k);
  EXPECT_EQ(out, keys);
  EXPECT_TRUE(s.done());
}

TEST(DeltaStream, WordFastPathCrossesMultiByteBoundaries) {
  // Alternate long runs of 1-byte deltas with multi-byte deltas placed so
  // varints straddle 8-byte probe windows.
  std::vector<uint64_t> keys;
  uint64_t cur = 5;
  keys.push_back(cur);
  for (int run = 0; run < 20; ++run) {
    for (int i = 0; i < 7 + run % 5; ++i) keys.push_back(cur += 1 + i % 90);
    keys.push_back(cur += (uint64_t{1} << (14 + run % 20)));
  }
  auto body = encode_body(keys, 4);
  codec::DeltaStream<> s(body.data(), body.size(), keys[0]);
  std::vector<uint64_t> out{keys[0]};
  uint64_t buf[8];  // exactly the word width, maximizing window reuse
  while (size_t k = s.next_block(buf, 8)) out.insert(out.end(), buf, buf + k);
  EXPECT_EQ(out, keys);
}
