// Tests for the varint byte codec and delta encoding: roundtrips across the
// value-width spectrum, the no-zero-byte invariant the CPMA leaf format
// relies on, and size accounting.
#include <gtest/gtest.h>

#include <vector>

#include "codec/delta.hpp"
#include "codec/varint.hpp"
#include "util/random.hpp"

namespace codec = cpma::codec;
using cpma::util::Rng;

class VarintWidths : public ::testing::TestWithParam<unsigned> {};

TEST_P(VarintWidths, RoundtripAtBitBoundaries) {
  unsigned bits = GetParam();
  std::vector<uint64_t> probes;
  uint64_t base = (bits == 64) ? ~uint64_t{0} : (uint64_t{1} << bits);
  probes.push_back(base - 1);
  probes.push_back(base == ~uint64_t{0} ? base : base);
  if (base + 1 != 0) probes.push_back(base + 1);
  for (uint64_t v : probes) {
    uint8_t buf[codec::kMaxVarintBytes];
    size_t n = codec::varint_encode(v, buf);
    EXPECT_EQ(n, codec::varint_size(v));
    uint64_t out;
    EXPECT_EQ(codec::varint_decode(buf, &out), n);
    EXPECT_EQ(out, v);
    EXPECT_EQ(codec::varint_skip(buf), n);
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, VarintWidths,
                         ::testing::Values(1u, 7u, 8u, 14u, 21u, 28u, 35u,
                                           42u, 49u, 56u, 63u, 64u));

TEST(Varint, SizeSteps) {
  EXPECT_EQ(codec::varint_size(0), 1u);
  EXPECT_EQ(codec::varint_size(127), 1u);
  EXPECT_EQ(codec::varint_size(128), 2u);
  EXPECT_EQ(codec::varint_size(16383), 2u);
  EXPECT_EQ(codec::varint_size(16384), 3u);
  EXPECT_EQ(codec::varint_size(~uint64_t{0}), 10u);
}

TEST(Varint, NonzeroValuesNeverEncodeALeadingZeroByte) {
  // The CPMA leaf format uses 0x00 as the end-of-stream marker; any v >= 1
  // must encode with no 0x00 byte anywhere.
  Rng r(5);
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = (r.next() >> (r.next() % 60)) | 1;
    uint8_t buf[codec::kMaxVarintBytes];
    size_t n = codec::varint_encode(v, buf);
    for (size_t j = 0; j < n; ++j) EXPECT_NE(buf[j], 0) << "v=" << v;
  }
}

TEST(Varint, RandomRoundtrip) {
  Rng r(7);
  for (int i = 0; i < 50000; ++i) {
    uint64_t v = r.next() >> (r.next() % 64);
    uint8_t buf[codec::kMaxVarintBytes];
    size_t n = codec::varint_encode(v, buf);
    uint64_t out;
    EXPECT_EQ(codec::varint_decode(buf, &out), n);
    EXPECT_EQ(out, v);
  }
}

TEST(Varint, SequentialStreamDecode) {
  // Encode a stream of values back to back and decode it.
  Rng r(9);
  std::vector<uint64_t> values(1000);
  for (auto& v : values) v = r.next() >> (r.next() % 60);
  std::vector<uint8_t> buf;
  uint8_t tmp[codec::kMaxVarintBytes];
  for (uint64_t v : values) {
    size_t n = codec::varint_encode(v, tmp);
    buf.insert(buf.end(), tmp, tmp + n);
  }
  size_t pos = 0;
  for (uint64_t v : values) {
    uint64_t out;
    pos += codec::varint_decode(buf.data() + pos, &out);
    EXPECT_EQ(out, v);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(Delta, EncodeDecodeRoundtrip) {
  Rng r(11);
  std::vector<uint64_t> keys(5000);
  uint64_t cur = 0;
  for (auto& k : keys) {
    cur += 1 + (r.next() % 100000);
    k = cur;
  }
  std::vector<uint8_t> buf;
  codec::delta_encode_append(keys.data() + 1, keys.size() - 1, keys[0], buf);
  EXPECT_EQ(buf.size(),
            codec::delta_encoded_size(keys.data() + 1, keys.size() - 1,
                                      keys[0]));
  std::vector<uint64_t> out{keys[0]};
  codec::delta_decode_append(buf.data(), buf.size(), keys[0], out);
  EXPECT_EQ(out, keys);
}

TEST(Delta, DenseKeysCompressWell) {
  // Consecutive keys have delta 1 => 1 byte each vs 8 uncompressed.
  std::vector<uint64_t> keys(1000);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = 1000 + i;
  size_t sz =
      codec::delta_encoded_size(keys.data() + 1, keys.size() - 1, keys[0]);
  EXPECT_EQ(sz, keys.size() - 1);
}

TEST(Delta, EmptyRange) {
  std::vector<uint8_t> buf;
  codec::delta_encode_append(nullptr, 0, 42, buf);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(codec::delta_encoded_size(nullptr, 0, 42), 0u);
}
