// Serving-layer suite: epoch-pinned snapshots, flat-combining ingest, and
// the concurrent differential test the layer exists to pass.
//
// The single-threaded tests pin down the visibility contract (publish_eager
// vs budgeted publishes, flush barriers, combiner thresholds, FIFO order
// through one queue) and snapshot immutability across batch applies and
// rebalances. The concurrent tests run real reader threads against a live
// writer under TSan-clean rules: readers only ever touch epoch slots, the
// atomic view pointer, and immutable views; every assertion is phrased so
// it holds for ANY legal interleaving (monotone published-count lower
// bounds, subset-of-universe, sortedness of a frozen view) — no sleeps, no
// timing assumptions.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "pma/cpma.hpp"
#include "util/random.hpp"

using cpma::pma::ShardedSettings;
using cpma::serve::ServingPMA;
using cpma::serve::ServingSettings;
using cpma::util::Rng;

namespace {

template <typename E>
struct ServingCase {
  using Engine = E;
};

using Engines =
    ::testing::Types<ServingCase<cpma::PMA>, ServingCase<cpma::CPMA>>;

template <typename Case>
class Serving : public ::testing::Test {};
TYPED_TEST_SUITE(Serving, Engines);

// Small shards + aggressive rebalancing so test-sized workloads exercise
// boundary moves underneath live snapshots; eager publish by default so
// visibility is deterministic (budget-mode tests override).
ServingSettings test_settings(uint64_t shards, bool eager = true) {
  ServingSettings s;
  s.sharded.num_shards = shards;
  s.sharded.rebalance_ratio = 1.5;
  s.sharded.min_rebalance_bytes = 1 << 12;
  s.publish_eager = eager;
  return s;
}

// Deterministic key stream (odd multiplier => bijective over 2^64, keyed
// so every i yields a distinct nonzero key).
uint64_t key_at(uint64_t i) { return (i + 1) * 0x9E3779B97F4A7C15ull; }

TYPED_TEST(Serving, EmptySnapshotReads) {
  using Engine = typename TypeParam::Engine;
  ServingPMA<Engine> s(test_settings(4));
  auto snap = s.snapshot();
  EXPECT_EQ(snap.size(), 0u);
  EXPECT_TRUE(snap.empty());
  EXPECT_FALSE(snap.has(0));
  EXPECT_FALSE(snap.has(42));
  EXPECT_EQ(snap.min(), std::nullopt);
  EXPECT_EQ(snap.max(), std::nullopt);
  EXPECT_EQ(snap.successor(0), std::nullopt);
  EXPECT_EQ(snap.begin(), snap.end());
  uint64_t count = 0;
  snap.map_range([&](uint64_t) { ++count; }, 0, UINT64_MAX);
  EXPECT_EQ(count, 0u);
}

TYPED_TEST(Serving, SnapshotIsImmutableAndNewSnapshotSeesBatch) {
  using Engine = typename TypeParam::Engine;
  ServingPMA<Engine> s(test_settings(4));
  std::vector<uint64_t> first{0, 5, 10, UINT64_MAX};
  s.insert_batch(first);

  auto old_snap = s.snapshot();
  EXPECT_EQ(old_snap.size(), 4u);
  EXPECT_TRUE(old_snap.has(0));
  EXPECT_EQ(old_snap.min(), std::optional<uint64_t>(0));
  EXPECT_EQ(old_snap.max(), std::optional<uint64_t>(UINT64_MAX));

  std::vector<uint64_t> second{7, 8, 9};
  s.insert_batch(second);
  std::vector<uint64_t> gone{5};
  s.remove_batch(gone);

  // The pinned view is frozen at its publish point...
  EXPECT_EQ(old_snap.size(), 4u);
  EXPECT_TRUE(old_snap.has(5));
  EXPECT_FALSE(old_snap.has(7));
  // ...while a fresh pin sees both later writes.
  auto new_snap = s.snapshot();
  EXPECT_EQ(new_snap.size(), 6u);
  EXPECT_FALSE(new_snap.has(5));
  EXPECT_TRUE(new_snap.has(7));
  std::vector<uint64_t> got;
  for (uint64_t k : new_snap) got.push_back(k);
  EXPECT_EQ(got, (std::vector<uint64_t>{0, 7, 8, 9, 10, UINT64_MAX}));
}

TYPED_TEST(Serving, BudgetedPublishDefersUntilFlush) {
  using Engine = typename TypeParam::Engine;
  // Zero budget + effectively-infinite staleness cap: after the forced
  // initial publish, no write may publish on its own; flush() must.
  ServingSettings cfg = test_settings(2, /*eager=*/false);
  cfg.publish_budget = 0.0;
  cfg.max_staleness_ns = UINT64_MAX;
  ServingPMA<Engine> s(cfg);

  std::vector<uint64_t> batch{1, 2, 3, 4, 5};
  s.insert_batch(batch);
  EXPECT_EQ(s.snapshot().size(), 0u) << "zero budget must defer the publish";
  EXPECT_EQ(s.stats().publishes, 1u);  // the constructor's only

  s.flush();
  EXPECT_EQ(s.snapshot().size(), 5u);
  EXPECT_GE(s.stats().publishes, 2u);
}

TYPED_TEST(Serving, VersionGatedPublishCopiesOnlyDirtyShards) {
  using Engine = typename TypeParam::Engine;
  // Fixed splitters (no seeding below kSplitterSeedMin, rebalance floor
  // high) so the batches below dirty exactly one known shard each.
  ServingSettings cfg = test_settings(4);
  cfg.sharded.min_rebalance_bytes = UINT64_MAX;
  ServingPMA<Engine> s(cfg);
  // All-UINT64_MAX splitters: every key routes to shard 0.
  std::vector<uint64_t> batch{10, 20, 30};
  s.insert_batch(batch);
  uint64_t copies_after_first = s.stats().shard_copies;
  std::vector<uint64_t> batch2{40, 50};
  s.insert_batch(batch2);
  // Second publish re-copied only shard 0; shards 1-3 were shared.
  EXPECT_EQ(s.stats().shard_copies, copies_after_first + 1);
  EXPECT_EQ(s.snapshot().size(), 5u);
}

TYPED_TEST(Serving, PinnedSnapshotSurvivesBatchesAndRebalance) {
  using Engine = typename TypeParam::Engine;
  ServingPMA<Engine> s(test_settings(4));

  std::vector<uint64_t> initial;
  for (uint64_t i = 0; i < 2000; ++i) initial.push_back(key_at(i));
  s.insert_batch(initial);
  std::vector<uint64_t> expect = initial;
  std::sort(expect.begin(), expect.end());

  auto pinned = s.snapshot();
  ASSERT_EQ(pinned.size(), 2000u);

  {
    // Heavy skewed ingest: forces shard growth, rebalancing boundary moves,
    // and a publish per batch — all while `pinned` stays pinned.
    Rng rng(7);
    for (int round = 0; round < 20; ++round) {
      std::vector<uint64_t> batch;
      for (uint64_t i = 0; i < 4000; ++i) {
        batch.push_back(rng.next() % 100000 + 1);  // dense low range: skew
      }
      s.insert_batch(batch.data(), batch.size());
    }
    EXPECT_GT(s.store().router_times().rebalances, 0u)
        << "workload failed to trigger a rebalance; weaken the settings";
  }

  // The pinned view still reads exactly the initial content.
  std::vector<uint64_t> got;
  for (uint64_t k : pinned) got.push_back(k);
  EXPECT_EQ(got, expect);
  EXPECT_TRUE(pinned.has(key_at(0)));
  EXPECT_FALSE(pinned.has(key_at(2000)));

  // Retired views piled up behind the pin; releasing it lets the next
  // publish reclaim them.
  uint64_t retired_while_pinned = s.stats().retired_views;
  EXPECT_GT(retired_while_pinned, 0u);
  { auto drop = std::move(pinned); }
  std::vector<uint64_t> tail{999999999ull};
  s.insert_batch(tail);
  EXPECT_LT(s.stats().retired_views, retired_while_pinned);
  EXPECT_GT(s.stats().reclaimed_views, 0u);
}

TYPED_TEST(Serving, EnqueueCombinesOnThreshold) {
  using Engine = typename TypeParam::Engine;
  ServingSettings cfg = test_settings(2);
  cfg.combine_batch = 64;
  cfg.max_combine_delay_ns = UINT64_MAX;  // size trigger only
  ServingPMA<Engine> s(cfg);

  // 63 enqueues stay queued (below threshold, no age flush)...
  for (uint64_t i = 0; i < 63; ++i) s.insert(key_at(i));
  EXPECT_EQ(s.snapshot().size(), 0u);
  EXPECT_EQ(s.stats().combines, 0u);
  // ...the 64th crosses the threshold; the enqueueing client combines.
  s.insert(key_at(63));
  EXPECT_EQ(s.stats().combines, 1u);
  EXPECT_EQ(s.stats().combined_ops, 64u);
  auto snap = s.snapshot();
  EXPECT_EQ(snap.size(), 64u);
  for (uint64_t i = 0; i < 64; ++i) EXPECT_TRUE(snap.has(key_at(i)));
}

TYPED_TEST(Serving, CombinerPreservesFifoInsertRemoveOrder) {
  using Engine = typename TypeParam::Engine;
  // Single-queue regime: runs stay below the splitter-seed minimum and
  // rebalancing is floored off, so the splitters never move and every op on
  // one key goes through one FIFO queue.
  ServingSettings cfg = test_settings(4);
  cfg.sharded.min_rebalance_bytes = UINT64_MAX;
  cfg.combine_batch = UINT64_MAX;  // only flush() applies
  ServingPMA<Engine> s(cfg);

  // insert k / remove k / insert k  => present; reverse pattern => absent.
  for (uint64_t i = 0; i < 100; ++i) {
    uint64_t k = key_at(i);
    if (i % 2 == 0) {
      s.insert(k);
      s.remove(k);
      s.insert(k);
    } else {
      s.insert(k);
      s.remove(k);
    }
  }
  s.flush();
  auto snap = s.snapshot();
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(snap.has(key_at(i)), i % 2 == 0) << "i=" << i;
  }
  EXPECT_EQ(snap.size(), 50u);
}

TYPED_TEST(Serving, AgeFlushViaPoll) {
  using Engine = typename TypeParam::Engine;
  ServingSettings cfg = test_settings(2);
  cfg.combine_batch = UINT64_MAX;
  cfg.max_combine_delay_ns = 0;  // any pending op is immediately due
  ServingPMA<Engine> s(cfg);

  s.insert(11);
  s.insert(22);
  s.remove(33);
  EXPECT_EQ(s.snapshot().size(), 0u);
  EXPECT_EQ(s.poll(), 3u);
  auto snap = s.snapshot();
  EXPECT_EQ(snap.size(), 2u);
  EXPECT_TRUE(snap.has(11));
  EXPECT_TRUE(snap.has(22));
  // Nothing pending: poll is a no-op.
  EXPECT_EQ(s.poll(), 0u);
}

TYPED_TEST(Serving, StoreInvariantsHoldUnderServing) {
  using Engine = typename TypeParam::Engine;
  ServingPMA<Engine> s(test_settings(4));
  Rng rng(11);
  for (int round = 0; round < 10; ++round) {
    std::vector<uint64_t> batch;
    for (uint64_t i = 0; i < 3000; ++i) batch.push_back(rng.next());
    s.insert_batch(batch.data(), batch.size());
  }
  std::string err;
  EXPECT_TRUE(s.store().check_invariants(&err)) << err;
  EXPECT_EQ(s.snapshot().size(), s.store().size());
}

// ---- concurrent tests -----------------------------------------------------

// Readers against a live writer. Invariants checked from reader threads,
// each valid under any interleaving:
//  1. Lower bound: a count of published keys (incremented by the writer
//     AFTER the publish) read BEFORE pinning is <= the pinned view's size.
//  2. Monotonicity: sizes observed by one reader never decrease (insert-only
//     phase; the single writer publishes increasing views).
//  3. Consistency: a full iteration of a pinned view is strictly ascending,
//     matches size(), and every key belongs to the known universe.
//  4. Point/order parity within the frozen view: has(k) for iterated keys,
//     successor stitching across shard boundaries.
TYPED_TEST(Serving, ConcurrentReadersDifferential) {
  using Engine = typename TypeParam::Engine;
  cpma::par::Scheduler::set_num_workers(4);

  const uint64_t kBatch = 1000;
  const uint64_t kBatches = 40;
  const uint64_t kTotal = kBatch * kBatches;

  // Precomputed universe (also the oracle: insert-only, known order).
  std::vector<uint64_t> universe(kTotal);
  for (uint64_t i = 0; i < kTotal; ++i) universe[i] = key_at(i);
  std::vector<uint64_t> sorted_universe = universe;
  std::sort(sorted_universe.begin(), sorted_universe.end());

  ServingPMA<Engine> s(test_settings(4));
  std::atomic<uint64_t> published{0};
  std::atomic<bool> done{false};
  std::atomic<uint64_t> failures{0};

  auto reader = [&]() {
    uint64_t prev_size = 0;
    uint64_t laps = 0;
    while (!done.load(std::memory_order_acquire) || laps < 4) {
      ++laps;
      const uint64_t lower = published.load(std::memory_order_acquire);
      auto snap = s.snapshot();
      const uint64_t n = snap.size();
      if (n < lower || n < prev_size || n > kTotal) {
        failures.fetch_add(1);
        break;
      }
      prev_size = n;
      // Spot reads on every lap; full iteration every 8th.
      if (auto mn = snap.min()) {
        if (!snap.has(*mn) || snap.successor(0).value_or(*mn) != *mn) {
          failures.fetch_add(1);
          break;
        }
      } else if (n != 0) {
        failures.fetch_add(1);
        break;
      }
      if (laps % 8 == 0) {
        uint64_t count = 0, prev = 0;
        bool first = true, ok = true;
        for (uint64_t k : snap) {
          if (!first && k <= prev) ok = false;
          prev = k;
          first = false;
          ++count;
          if (count <= 16 &&
              !std::binary_search(sorted_universe.begin(),
                                  sorted_universe.end(), k)) {
            ok = false;
          }
        }
        if (!ok || count != n) {
          failures.fetch_add(1);
          break;
        }
      }
    }
  };

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) readers.emplace_back(reader);

  for (uint64_t b = 0; b < kBatches; ++b) {
    std::vector<uint64_t> batch(universe.begin() + b * kBatch,
                                universe.begin() + (b + 1) * kBatch);
    s.insert_batch(batch.data(), batch.size());
    // Publish happened (eager) before this store: the count is a valid
    // lower bound for every later pin.
    published.store((b + 1) * kBatch, std::memory_order_release);
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0u);
  auto final_snap = s.snapshot();
  EXPECT_EQ(final_snap.size(), kTotal);
  std::vector<uint64_t> got;
  for (uint64_t k : final_snap) got.push_back(k);
  EXPECT_EQ(got, sorted_universe);
  std::string err;
  EXPECT_TRUE(s.store().check_invariants(&err)) << err;
}

// Many client threads enqueue through the combining front end; combining
// happens opportunistically on whichever client crosses a threshold. After
// a final flush the structure must hold exactly the union of all clients'
// disjoint key ranges.
TYPED_TEST(Serving, ConcurrentEnqueueClients) {
  using Engine = typename TypeParam::Engine;
  cpma::par::Scheduler::set_num_workers(4);

  const int kClients = 4;
  const uint64_t kPerClient = 4000;
  ServingSettings cfg = test_settings(4);
  cfg.combine_batch = 256;
  cfg.max_combine_delay_ns = UINT64_MAX;
  ServingPMA<Engine> s(cfg);

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c]() {
      for (uint64_t i = 0; i < kPerClient; ++i) {
        s.insert(key_at(c * kPerClient + i));
      }
    });
  }
  for (auto& t : clients) t.join();
  s.flush();

  auto snap = s.snapshot();
  EXPECT_EQ(snap.size(), uint64_t{kClients} * kPerClient);
  EXPECT_GT(s.stats().combines, 0u);
  EXPECT_EQ(s.stats().combined_ops, uint64_t{kClients} * kPerClient);
  Rng rng(3);
  for (int probe = 0; probe < 1000; ++probe) {
    uint64_t i = rng.next() % (uint64_t{kClients} * kPerClient);
    ASSERT_TRUE(snap.has(key_at(i))) << "i=" << i;
  }
  std::string err;
  EXPECT_TRUE(s.store().check_invariants(&err)) << err;
}

// Readers pin while clients enqueue AND combine concurrently — the full
// serving loop (enqueue -> opportunistic combine -> publish -> reclaim)
// with all three roles live at once.
TYPED_TEST(Serving, ReadersAndEnqueueClientsTogether) {
  using Engine = typename TypeParam::Engine;
  cpma::par::Scheduler::set_num_workers(4);

  const int kClients = 2;
  const uint64_t kPerClient = 3000;
  ServingSettings cfg = test_settings(4);
  cfg.combine_batch = 128;
  cfg.max_combine_delay_ns = UINT64_MAX;
  ServingPMA<Engine> s(cfg);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> failures{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&]() {
      uint64_t prev = 0;
      while (!done.load(std::memory_order_acquire)) {
        auto snap = s.snapshot();
        uint64_t n = snap.size();
        if (n < prev) {
          failures.fetch_add(1);
          break;
        }
        prev = n;
        if (auto mn = snap.min()) {
          if (!snap.has(*mn)) {
            failures.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c]() {
      for (uint64_t i = 0; i < kPerClient; ++i) {
        s.insert(key_at(c * kPerClient + i));
      }
      if (c == 0) done.store(true, std::memory_order_release);
    });
  }
  for (auto& t : threads) t.join();
  done.store(true, std::memory_order_release);
  s.flush();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(s.snapshot().size(), uint64_t{kClients} * kPerClient);
}

}  // namespace
