// Tests for the Ligra-style layer (VertexSubset / edge_map / vertex_map),
// F-Graph's flat run-scan, and the algorithms on structured graphs with
// analytically known answers (paths, stars, rings, cliques).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/csr.hpp"
#include "graph/fgraph.hpp"
#include "graph/generators.hpp"
#include "graph/ligra.hpp"
#include "graph/tree_graphs.hpp"

using namespace cpma::graph;

namespace {

std::vector<uint64_t> path_graph(vertex_t n) {
  std::vector<uint64_t> edges;
  for (vertex_t v = 0; v + 1 < n; ++v) {
    edges.push_back(edge_key(v, v + 1));
  }
  return symmetrize(edges);
}

std::vector<uint64_t> star_graph(vertex_t n) {  // hub = 0
  std::vector<uint64_t> edges;
  for (vertex_t v = 1; v < n; ++v) edges.push_back(edge_key(0, v));
  return symmetrize(edges);
}

std::vector<uint64_t> clique_graph(vertex_t n) {
  std::vector<uint64_t> edges;
  for (vertex_t u = 0; u < n; ++u) {
    for (vertex_t v = 0; v < n; ++v) {
      if (u != v) edges.push_back(edge_key(u, v));
    }
  }
  return symmetrize(edges);
}

}  // namespace

// ---------------------------------------------------------------------------
// VertexSubset
// ---------------------------------------------------------------------------

TEST(VertexSubset, AddAndContains) {
  VertexSubset s(100);
  EXPECT_TRUE(s.empty());
  s.add(5);
  s.add(5);  // idempotent
  s.add(99);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains(5));
  EXPECT_FALSE(s.contains(6));
}

TEST(VertexSubset, FromVerticesDedupes) {
  auto s = VertexSubset::from_vertices(10, {1, 2, 2, 3, 1});
  EXPECT_EQ(s.size(), 3u);
}

// ---------------------------------------------------------------------------
// edge_map semantics: BFS frontier expansion on a path.
// ---------------------------------------------------------------------------

TEST(EdgeMap, BfsOnPathVisitsLevelsInOrder) {
  const vertex_t n = 64;
  FGraph g(n, path_graph(n));
  g.prepare();
  std::vector<std::atomic<int>> depth(n);
  for (auto& d : depth) d.store(-1);
  depth[0] = 0;
  VertexSubset frontier = VertexSubset::single(n, 0);
  int level = 0;
  while (!frontier.empty()) {
    frontier = edge_map(
        g, frontier,
        [&](vertex_t, vertex_t v) {
          int expected = -1;
          return depth[v].compare_exchange_strong(expected, level + 1);
        },
        [&](vertex_t v) { return depth[v].load() == -1; });
    ++level;
  }
  for (vertex_t v = 0; v < n; ++v) {
    EXPECT_EQ(depth[v].load(), static_cast<int>(v)) << v;
  }
}

TEST(EdgeMap, CondFiltersTargets) {
  const vertex_t n = 16;
  FGraph g(n, star_graph(n));
  g.prepare();
  VertexSubset frontier = VertexSubset::single(n, 0);
  // Only even vertices pass cond.
  auto next = edge_map(
      g, frontier, [](vertex_t, vertex_t) { return true; },
      [](vertex_t v) { return v % 2 == 0; });
  for (vertex_t v : next.vertices()) EXPECT_EQ(v % 2, 0u);
  EXPECT_EQ(next.size(), n / 2 - 1);  // even vertices except the hub itself
}

TEST(VertexMap, AppliesToAllFrontierVertices) {
  VertexSubset s(100);
  for (vertex_t v = 0; v < 50; ++v) s.add(v * 2);
  std::atomic<uint64_t> total{0};
  vertex_map(s, [&](vertex_t v) { total.fetch_add(v); });
  EXPECT_EQ(total.load(), 2u * (49 * 50 / 2));
}

// ---------------------------------------------------------------------------
// F-Graph flat run-scan agrees with per-vertex iteration.
// ---------------------------------------------------------------------------

TEST(RunScan, SumsMatchPerVertexIteration) {
  auto edges = symmetrize(rmat_edges(10, 20000, 5));
  FGraph g(1 << 10, edges);
  g.prepare();
  std::vector<std::atomic<uint64_t>> sums(1 << 10);
  g.scan_neighbor_runs(
      uint64_t{0}, [](vertex_t dst) { return uint64_t{dst}; },
      [](uint64_t a, uint64_t b) { return a + b; },
      [&](vertex_t src, uint64_t acc) {
        sums[src].fetch_add(acc, std::memory_order_relaxed);
      });
  for (vertex_t v = 0; v < (1 << 10); ++v) {
    uint64_t want = 0;
    g.map_neighbors(v, [&](vertex_t d) { want += d; });
    ASSERT_EQ(sums[v].load(), want) << "vertex " << v;
  }
}

TEST(RunScan, MinReductionMatches) {
  auto edges = symmetrize(rmat_edges(9, 8000, 6));
  FGraph g(1 << 9, edges);
  g.prepare();
  std::vector<std::atomic<vertex_t>> mins(1 << 9);
  for (auto& m : mins) m.store(~vertex_t{0});
  g.scan_neighbor_runs(
      ~vertex_t{0}, [](vertex_t dst) { return dst; },
      [](vertex_t a, vertex_t b) { return a < b ? a : b; },
      [&](vertex_t src, vertex_t m) {
        vertex_t cur = mins[src].load();
        while (m < cur && !mins[src].compare_exchange_weak(cur, m)) {
        }
      });
  for (vertex_t v = 0; v < (1 << 9); ++v) {
    vertex_t want = ~vertex_t{0};
    g.map_neighbors(v, [&](vertex_t d) { want = std::min(want, d); });
    ASSERT_EQ(mins[v].load(), want);
  }
}

// ---------------------------------------------------------------------------
// Algorithms on graphs with known closed-form answers.
// ---------------------------------------------------------------------------

TEST(AlgosStructured, BcOnPathIsQuadraticProfile) {
  // BC from endpoint 0 of a path: delta[v] counts the shortest paths from 0
  // through v = (n-1-v) for interior vertices.
  const vertex_t n = 32;
  FGraph g(n, path_graph(n));
  auto bc = betweenness_centrality(g, 0);
  for (vertex_t v = 1; v + 1 < n; ++v) {
    EXPECT_NEAR(bc[v], static_cast<double>(n - 1 - v), 1e-9) << v;
  }
  EXPECT_NEAR(bc[n - 1], 0.0, 1e-9);
}

TEST(AlgosStructured, BcOnStarHubCarriesAllPairs) {
  const vertex_t n = 20;
  FGraph g(n, star_graph(n));
  auto bc = betweenness_centrality(g, 1);  // a leaf source
  // From leaf 1, the hub lies on the shortest path to every other leaf.
  EXPECT_NEAR(bc[0], static_cast<double>(n - 2), 1e-9);
  for (vertex_t v = 2; v < n; ++v) EXPECT_NEAR(bc[v], 0.0, 1e-9);
}

TEST(AlgosStructured, PrOnCliqueIsUniform) {
  const vertex_t n = 24;
  FGraph g(n, clique_graph(n));
  auto pr = pagerank(g);
  for (vertex_t v = 0; v < n; ++v) {
    EXPECT_NEAR(pr[v], 1.0 / n, 1e-12) << v;
  }
}

TEST(AlgosStructured, PrStarHubDominates) {
  const vertex_t n = 50;
  FGraph g(n, star_graph(n));
  auto pr = pagerank(g);
  for (vertex_t v = 1; v < n; ++v) {
    EXPECT_GT(pr[0], pr[v] * 5) << v;
    EXPECT_NEAR(pr[v], pr[1], 1e-12);  // leaves symmetric
  }
}

TEST(AlgosStructured, CcSeparateCliquesGetSeparateLabels) {
  // Two cliques of 8 with no connection.
  std::vector<uint64_t> edges;
  for (vertex_t u = 0; u < 8; ++u) {
    for (vertex_t v = 0; v < 8; ++v) {
      if (u != v) {
        edges.push_back(edge_key(u, v));
        edges.push_back(edge_key(u + 8, v + 8));
      }
    }
  }
  FGraph g(16, symmetrize(edges));
  auto cc = connected_components(g);
  for (vertex_t v = 0; v < 8; ++v) {
    EXPECT_EQ(cc[v], cc[0]);
    EXPECT_EQ(cc[v + 8], cc[8]);
  }
  EXPECT_NE(cc[0], cc[8]);
}

TEST(AlgosStructured, AllContainersAgreeOnStructuredGraphs) {
  for (auto make : {path_graph, star_graph}) {
    const vertex_t n = 40;
    auto edges = make(n);
    FGraph f(n, edges);
    CPacGraph c(n, edges);
    Csr s(n, edges);
    auto pf = pagerank(f), pc = pagerank(c), ps = pagerank(s);
    for (vertex_t v = 0; v < n; ++v) {
      ASSERT_NEAR(pf[v], pc[v], 1e-12);
      ASSERT_NEAR(pf[v], ps[v], 1e-12);
    }
  }
}
