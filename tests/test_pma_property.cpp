// Property-based tests: parameterized sweeps asserting the PMA/CPMA
// invariants that the paper's analysis depends on — structural validity
// after arbitrary operation sequences, density stays within the configured
// bounds, compression ratios, iterator/set equivalence, and determinism.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "pma/cpma.hpp"
#include "util/random.hpp"

using cpma::ACPMA;
using cpma::CPMA;
using cpma::PMA;
using cpma::util::Rng;

// ---------------------------------------------------------------------------
// Random operation sequences, parameterized over (seed, key-space size).
// ---------------------------------------------------------------------------

class OpSequence
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint64_t>> {};

template <typename T>
void run_op_sequence(uint64_t seed, uint64_t space) {
  T p;
  std::set<uint64_t> ref;
  Rng r(seed);
  for (int step = 0; step < 6000; ++step) {
    int op = static_cast<int>(r.next() % 10);
    if (op < 5) {  // point insert
      uint64_t k = r.next() % space;
      ASSERT_EQ(p.insert(k), ref.insert(k).second);
    } else if (op < 7) {  // point remove
      uint64_t k = r.next() % space;
      ASSERT_EQ(p.remove(k), ref.erase(k) == 1);
    } else if (op == 7) {  // batch insert
      std::vector<uint64_t> batch(1 + r.next() % 800);
      for (auto& k : batch) k = r.next() % space;
      for (uint64_t k : batch) ref.insert(k);
      p.insert_batch(batch.data(), batch.size());
      ASSERT_EQ(p.size(), ref.size());
    } else if (op == 8) {  // batch remove
      std::vector<uint64_t> batch(1 + r.next() % 400);
      for (auto& k : batch) k = r.next() % space;
      for (uint64_t k : batch) ref.erase(k);
      p.remove_batch(batch.data(), batch.size());
      ASSERT_EQ(p.size(), ref.size());
    } else {  // queries
      uint64_t k = r.next() % space;
      ASSERT_EQ(p.has(k), ref.count(k) == 1);
      auto suc = p.successor(k);
      auto rit = ref.lower_bound(k);
      if (rit == ref.end()) {
        ASSERT_FALSE(suc.has_value());
      } else {
        ASSERT_TRUE(suc.has_value());
        ASSERT_EQ(*suc, *rit);
      }
    }
  }
  std::string err;
  ASSERT_TRUE(p.check_invariants(&err)) << err;
  std::vector<uint64_t> want(ref.begin(), ref.end());
  std::vector<uint64_t> got;
  p.map([&](uint64_t k) { got.push_back(k); });
  ASSERT_EQ(got, want);
}

TEST_P(OpSequence, PmaMatchesReference) {
  auto [seed, space] = GetParam();
  run_op_sequence<PMA>(seed, space);
}

TEST_P(OpSequence, CpmaMatchesReference) {
  auto [seed, space] = GetParam();
  run_op_sequence<CPMA>(seed, space);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndSpaces, OpSequence,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u),
                       ::testing::Values(uint64_t{256}, uint64_t{1} << 16,
                                         uint64_t{1} << 40)));

// ---------------------------------------------------------------------------
// Density bounds hold after bulk loads of different sizes & distributions.
// ---------------------------------------------------------------------------

class DensityAfterLoad : public ::testing::TestWithParam<uint64_t> {};

template <typename T>
void check_density(uint64_t n) {
  T p;
  Rng r(n);
  std::vector<uint64_t> keys(n);
  for (auto& k : keys) k = 1 + (r.next() % (1ull << 40));
  p.insert_batch(keys.data(), keys.size());
  double d = p.density();
  // Stays under the root's upper bound with a bit of tolerance for per-leaf
  // head storage, and above a sanity floor (no pathological sparsity).
  EXPECT_LT(d, 0.80) << "n=" << n;
  EXPECT_GT(d, 0.15) << "n=" << n;
  std::string err;
  ASSERT_TRUE(p.check_invariants(&err)) << err;
}

TEST_P(DensityAfterLoad, Pma) { check_density<PMA>(GetParam()); }
TEST_P(DensityAfterLoad, Cpma) { check_density<CPMA>(GetParam()); }

INSTANTIATE_TEST_SUITE_P(Sizes, DensityAfterLoad,
                         ::testing::Values(1000u, 10000u, 100000u, 1000000u));

// ---------------------------------------------------------------------------
// Compression-ratio properties (Table 6's qualitative claims).
// ---------------------------------------------------------------------------

class SpaceRatio : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SpaceRatio, CpmaAtLeastTwiceSmallerThanPmaOnUniform40Bit) {
  uint64_t n = GetParam();
  Rng r(7);
  std::vector<uint64_t> keys(n);
  for (auto& k : keys) k = 1 + (r.next() % (1ull << 40));
  PMA p;
  CPMA c;
  p.insert_batch(std::vector<uint64_t>(keys));
  c.insert_batch(std::vector<uint64_t>(keys));
  double pma_bpe = static_cast<double>(p.get_size()) / p.size();
  double cpma_bpe = static_cast<double>(c.get_size()) / c.size();
  // Paper Table 6: PMA ~10-12 B/elt, CPMA ~3-5 B/elt at these scales.
  EXPECT_GT(pma_bpe / cpma_bpe, 2.0) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, SpaceRatio,
                         ::testing::Values(100000u, 1000000u));

// ---------------------------------------------------------------------------
// Batch insert/remove inverse property: (S + B) - B == S.
// ---------------------------------------------------------------------------

class InverseBatch : public ::testing::TestWithParam<uint64_t> {};

template <typename T>
void check_inverse(uint64_t batch_size) {
  T p;
  Rng r(batch_size + 17);
  std::vector<uint64_t> base(100000);
  for (auto& k : base) k = 1 + (r.next() % (1ull << 40));
  p.insert_batch(std::vector<uint64_t>(base));
  std::vector<uint64_t> before;
  p.map([&](uint64_t k) { before.push_back(k); });

  // Build a batch of keys NOT currently present.
  std::vector<uint64_t> batch;
  batch.reserve(batch_size);
  while (batch.size() < batch_size) {
    uint64_t k = 1 + (r.next() % (1ull << 40));
    if (!p.has(k)) batch.push_back(k);
  }
  uint64_t added = p.insert_batch(std::vector<uint64_t>(batch));
  std::sort(batch.begin(), batch.end());
  batch.erase(std::unique(batch.begin(), batch.end()), batch.end());
  ASSERT_EQ(added, batch.size());
  uint64_t removed = p.remove_batch(std::vector<uint64_t>(batch));
  ASSERT_EQ(removed, batch.size());

  std::vector<uint64_t> after;
  p.map([&](uint64_t k) { after.push_back(k); });
  ASSERT_EQ(after, before);
  std::string err;
  ASSERT_TRUE(p.check_invariants(&err)) << err;
}

TEST_P(InverseBatch, Pma) { check_inverse<PMA>(GetParam()); }
TEST_P(InverseBatch, Cpma) { check_inverse<CPMA>(GetParam()); }

INSTANTIATE_TEST_SUITE_P(BatchSizes, InverseBatch,
                         ::testing::Values(50u, 1000u, 5000u, 60000u));

// ---------------------------------------------------------------------------
// Determinism: the same inputs produce the same structure regardless of the
// parallel schedule.
// ---------------------------------------------------------------------------

TEST(Determinism, SameContentAcrossRuns) {
  auto build = [] {
    CPMA c;
    Rng r(123);
    for (int round = 0; round < 5; ++round) {
      std::vector<uint64_t> batch(50000);
      for (auto& k : batch) k = 1 + (r.next() % (1ull << 40));
      c.insert_batch(batch.data(), batch.size());
    }
    return c.sum();
  };
  uint64_t a = build();
  uint64_t b = build();
  EXPECT_EQ(a, b);
}

// Growth-factor sweep: all configurations stay valid, smaller factors give
// smaller (or equal) arrays on average (Appendix C's qualitative claim).
class GrowthFactor : public ::testing::TestWithParam<double> {};

TEST_P(GrowthFactor, StructureStaysValid) {
  cpma::pma::PmaSettings s;
  s.growth_factor = GetParam();
  CPMA c(s);
  Rng r(31);
  for (int round = 0; round < 10; ++round) {
    std::vector<uint64_t> batch(20000);
    for (auto& k : batch) k = 1 + (r.next() % (1ull << 40));
    c.insert_batch(batch.data(), batch.size());
  }
  std::string err;
  ASSERT_TRUE(c.check_invariants(&err)) << err;
  EXPECT_GT(c.size(), 150000u);
}

INSTANTIATE_TEST_SUITE_P(Factors, GrowthFactor,
                         ::testing::Values(1.1, 1.2, 1.5, 2.0));

// ---------------------------------------------------------------------------
// Batch edge cases: degenerate batches must be no-ops or exact duplicates of
// the point-op semantics, and must leave the structure valid.
// ---------------------------------------------------------------------------

template <typename T>
class BatchEdgeCases : public ::testing::Test {};

using Engines = ::testing::Types<PMA, CPMA, ACPMA>;
TYPED_TEST_SUITE(BatchEdgeCases, Engines);

template <typename T>
void expect_valid(const T& p) {
  std::string err;
  ASSERT_TRUE(p.check_invariants(&err)) << err;
}

TYPED_TEST(BatchEdgeCases, EmptyBatch) {
  TypeParam p;
  EXPECT_EQ(p.insert_batch(nullptr, 0), 0u);
  EXPECT_EQ(p.remove_batch(nullptr, 0), 0u);
  EXPECT_TRUE(p.empty());
  expect_valid(p);

  // Also a no-op on a populated structure.
  std::vector<uint64_t> keys{5, 9, 200, 70000};
  p.insert_batch(std::vector<uint64_t>(keys));
  EXPECT_EQ(p.insert_batch(nullptr, 0), 0u);
  EXPECT_EQ(p.remove_batch(nullptr, 0), 0u);
  EXPECT_EQ(p.size(), keys.size());
  expect_valid(p);
}

TYPED_TEST(BatchEdgeCases, AllDuplicateBatch) {
  TypeParam p;
  // Every element the same key: exactly one insert happens.
  std::vector<uint64_t> batch(5000, 42);
  EXPECT_EQ(p.insert_batch(batch.data(), batch.size()), 1u);
  EXPECT_EQ(p.size(), 1u);
  EXPECT_TRUE(p.has(42));
  expect_valid(p);

  // Re-inserting the same all-duplicate batch adds nothing.
  std::vector<uint64_t> again(5000, 42);
  EXPECT_EQ(p.insert_batch(again.data(), again.size()), 0u);
  EXPECT_EQ(p.size(), 1u);

  // Removing it drains exactly the one key.
  std::vector<uint64_t> rm(5000, 42);
  EXPECT_EQ(p.remove_batch(rm.data(), rm.size()), 1u);
  EXPECT_TRUE(p.empty());
  expect_valid(p);
}

TYPED_TEST(BatchEdgeCases, BatchEqualsCurrentContents) {
  TypeParam p;
  Rng r(404);
  std::vector<uint64_t> keys(20000);
  for (auto& k : keys) k = 1 + (r.next() % (1ull << 40));
  p.insert_batch(std::vector<uint64_t>(keys));
  uint64_t n = p.size();

  // Full-overlap insert: every key already present, nothing is added and the
  // contents are unchanged.
  std::vector<uint64_t> overlap;
  p.map([&](uint64_t k) { overlap.push_back(k); });
  EXPECT_EQ(p.insert_batch(std::vector<uint64_t>(overlap)), 0u);
  EXPECT_EQ(p.size(), n);
  std::vector<uint64_t> after;
  p.map([&](uint64_t k) { after.push_back(k); });
  EXPECT_EQ(after, overlap);
  expect_valid(p);

  // Full-overlap remove: drains the structure completely.
  EXPECT_EQ(p.remove_batch(std::vector<uint64_t>(overlap)), n);
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.sum(), 0u);
  expect_valid(p);
}

TYPED_TEST(BatchEdgeCases, BatchSpansKeyZeroSentinel) {
  TypeParam p;
  // Key 0 is stored out-of-band (the leaf format uses 0 as the empty
  // sentinel); a batch mixing 0 with its neighbors must hit both paths.
  std::vector<uint64_t> batch{0, 1, 2, 0, 3, 0};
  EXPECT_EQ(p.insert_batch(batch.data(), batch.size()), 4u);
  EXPECT_EQ(p.size(), 4u);
  EXPECT_TRUE(p.has(0));
  EXPECT_EQ(p.min(), 0u);
  std::vector<uint64_t> got;
  p.map([&](uint64_t k) { got.push_back(k); });
  EXPECT_EQ(got, (std::vector<uint64_t>{0, 1, 2, 3}));
  expect_valid(p);

  // successor must see the sentinel too.
  auto suc = p.successor(0);
  ASSERT_TRUE(suc.has_value());
  EXPECT_EQ(*suc, 0u);

  // Removing a batch spanning the boundary removes 0 exactly once.
  std::vector<uint64_t> rm{0, 2, 0};
  EXPECT_EQ(p.remove_batch(rm.data(), rm.size()), 2u);
  EXPECT_FALSE(p.has(0));
  EXPECT_EQ(p.size(), 2u);
  got.clear();
  p.map([&](uint64_t k) { got.push_back(k); });
  EXPECT_EQ(got, (std::vector<uint64_t>{1, 3}));
  expect_valid(p);
}
