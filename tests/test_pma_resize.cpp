// Stress tests for the direct-spread resize path: repeated grows and
// shrinks driven through every resize caller (merge-path root violation,
// remove-path shrink, and the point-update rebalance walk), checked
// differentially against std::set. The direct spread stitches encoded
// source runs straight into the resized array, so these tests hammer the
// split/join bookkeeping with dense, sparse, skewed, and near-2^64 keys.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "pma/cpma.hpp"
#include "util/random.hpp"

using cpma::ACPMA;
using cpma::CPMA;
using cpma::PMA;
using cpma::util::Rng;

template <typename T>
class PmaResizeTest : public ::testing::Test {};

using Engines = ::testing::Types<PMA, CPMA, ACPMA>;
TYPED_TEST_SUITE(PmaResizeTest, Engines);

namespace {

template <typename T>
void expect_matches_reference(const T& p, const std::set<uint64_t>& ref,
                              const char* where) {
  std::string err;
  ASSERT_TRUE(p.check_invariants(&err)) << where << ": " << err;
  ASSERT_EQ(p.size(), ref.size()) << where;
  std::vector<uint64_t> got;
  got.reserve(ref.size());
  p.map([&](uint64_t k) { got.push_back(k); });
  ASSERT_EQ(got, std::vector<uint64_t>(ref.begin(), ref.end())) << where;
}

}  // namespace

TYPED_TEST(PmaResizeTest, RepeatedMergePathGrowsMatchReference) {
  // Merge-regime batches (< count/10, so never the rebuild strategy) until
  // the array has grown several times; every grow runs the direct spread.
  TypeParam p;
  Rng r(101);
  std::set<uint64_t> ref;
  std::vector<uint64_t> base(100000);
  for (auto& k : base) k = 1 + (r.next() % (1ull << 40));
  for (uint64_t k : base) ref.insert(k);
  p.insert_batch(base.data(), base.size());
  p.reset_batch_phase_times();
  int grows = 0;
  uint64_t bytes = p.total_bytes();
  for (int round = 0; round < 80 && grows < 4; ++round) {
    std::vector<uint64_t> batch(p.size() / 20);
    for (auto& k : batch) k = 1 + (r.next() % (1ull << 40));
    for (uint64_t k : batch) ref.insert(k);
    p.insert_batch(batch.data(), batch.size());
    ASSERT_EQ(p.size(), ref.size()) << "round " << round;
    if (p.total_bytes() > bytes) {
      ++grows;
      bytes = p.total_bytes();
      expect_matches_reference(p, ref, "after grow");
    }
  }
  ASSERT_GE(grows, 4) << "stress did not force repeated grows";
  EXPECT_GE(p.batch_phase_times().spreads, 4u);
  expect_matches_reference(p, ref, "final");
}

TYPED_TEST(PmaResizeTest, RepeatedRemoveShrinksMatchReference) {
  // Merge-regime remove batches (sampled from the stored keys) until the
  // array has shrunk repeatedly; shrinks run the direct spread too.
  TypeParam p;
  Rng r(102);
  std::set<uint64_t> ref;
  std::vector<uint64_t> base(200000);
  for (auto& k : base) k = 1 + (r.next() % (1ull << 40));
  for (uint64_t k : base) ref.insert(k);
  p.insert_batch(base.data(), base.size());
  int shrinks = 0;
  int round = 0;
  while (p.size() > 2000 && round < 300) {
    ++round;
    std::vector<uint64_t> rm;
    uint64_t want = p.size() / 12;  // < count/10: merge path
    auto it = ref.begin();
    for (uint64_t i = 0; i < want && it != ref.end(); ++i) {
      rm.push_back(*it);
      for (int s = 0; s < 13 && it != ref.end(); ++s) ++it;
    }
    for (uint64_t k : rm) ref.erase(k);
    uint64_t bytes = p.total_bytes();
    p.remove_batch(rm.data(), rm.size());
    ASSERT_EQ(p.size(), ref.size()) << "round " << round;
    if (p.total_bytes() < bytes) {
      ++shrinks;
      expect_matches_reference(p, ref, "after shrink");
    }
  }
  // One resize can take several shrink steps at once, so distinct shrink
  // events undercount the factor actually reclaimed.
  ASSERT_GE(shrinks, 2) << "stress did not force repeated shrinks";
  expect_matches_reference(p, ref, "final");
}

TYPED_TEST(PmaResizeTest, GrowShrinkCyclesStayConsistent) {
  // Alternate growth bursts and removal bursts so the array resizes in both
  // directions across the same key population.
  TypeParam p;
  Rng r(103);
  std::set<uint64_t> ref;
  std::vector<uint64_t> base(60000);
  for (auto& k : base) k = 1 + (r.next() % (1ull << 36));
  for (uint64_t k : base) ref.insert(k);
  p.insert_batch(base.data(), base.size());
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (int round = 0; round < 12; ++round) {
      std::vector<uint64_t> batch(p.size() / 15);
      for (auto& k : batch) k = 1 + (r.next() % (1ull << 36));
      for (uint64_t k : batch) ref.insert(k);
      p.insert_batch(batch.data(), batch.size());
      ASSERT_EQ(p.size(), ref.size()) << "cycle " << cycle;
    }
    for (int round = 0; round < 10; ++round) {
      std::vector<uint64_t> rm;
      uint64_t want = p.size() / 12;
      auto it = ref.begin();
      for (uint64_t i = 0; i < want && it != ref.end(); ++i) {
        rm.push_back(*it);
        for (int s = 0; s < 11 && it != ref.end(); ++s) ++it;
      }
      for (uint64_t k : rm) ref.erase(k);
      p.remove_batch(rm.data(), rm.size());
      ASSERT_EQ(p.size(), ref.size()) << "cycle " << cycle;
    }
    expect_matches_reference(p, ref, "cycle end");
  }
}

TYPED_TEST(PmaResizeTest, PointUpdateResizesMatchReference) {
  // Point inserts drive rebalance_insert's root-violation resize (the same
  // direct spread, via resize_rebuild); point removes drive the shrink.
  TypeParam p;
  Rng r(104);
  std::set<uint64_t> ref;
  int grows = 0;
  uint64_t bytes = p.total_bytes();
  for (int i = 0; i < 60000; ++i) {
    uint64_t k = 1 + (r.next() % (1ull << 40));
    ASSERT_EQ(p.insert(k), ref.insert(k).second);
    if (p.total_bytes() > bytes) {
      ++grows;
      bytes = p.total_bytes();
    }
  }
  ASSERT_GE(grows, 2) << "point inserts never grew the array";
  expect_matches_reference(p, ref, "after point grows");
  int shrinks = 0;
  while (ref.size() > 500) {
    auto it = ref.begin();
    uint64_t k = *it;
    ref.erase(it);
    ASSERT_TRUE(p.remove(k));
    if (p.total_bytes() < bytes) {
      ++shrinks;
      bytes = p.total_bytes();
    }
  }
  ASSERT_GE(shrinks, 1) << "point removes never shrank the array";
  expect_matches_reference(p, ref, "after point shrinks");
}

TYPED_TEST(PmaResizeTest, SkewedOverflowingBatchesAcrossGrows) {
  // Batches concentrated on one leaf overflow it out-of-place; when the same
  // batch violates the root bound, the direct spread must splice the
  // overflowed leaf's flat keys in between the encoded runs.
  TypeParam p;
  Rng r(105);
  std::set<uint64_t> ref;
  std::vector<uint64_t> base(80000);
  for (auto& k : base) k = 1 + (r.next() % (1ull << 40));
  for (uint64_t k : base) ref.insert(k);
  p.insert_batch(base.data(), base.size());
  int grows = 0;
  uint64_t bytes = p.total_bytes();
  for (int round = 0; round < 40 && grows < 3; ++round) {
    std::vector<uint64_t> batch(p.size() / 15);
    uint64_t center = 1 + (r.next() % (1ull << 40));
    for (size_t i = 0; i < batch.size(); ++i) {
      batch[i] = (i % 8 == 0) ? 1 + (r.next() % (1ull << 40))
                              : center + (r.next() % 8192);
    }
    for (uint64_t k : batch) ref.insert(k);
    p.insert_batch(batch.data(), batch.size());
    ASSERT_EQ(p.size(), ref.size()) << "round " << round;
    if (p.total_bytes() > bytes) {
      ++grows;
      bytes = p.total_bytes();
      expect_matches_reference(p, ref, "after skewed grow");
    }
  }
  ASSERT_GE(grows, 3);
  expect_matches_reference(p, ref, "final");
}

TYPED_TEST(PmaResizeTest, HugeDeltasAndSentinelSurviveResizes) {
  // Keys spanning the full 64-bit range make source-leaf join deltas encode
  // larger than the 8-byte heads they replace (the join-excess accounting),
  // and the out-of-band zero key must ride along untouched.
  TypeParam p;
  Rng r(106);
  std::set<uint64_t> ref;
  std::vector<uint64_t> base;
  base.push_back(0);
  for (int i = 0; i < 30000; ++i) base.push_back(1 + (r.next() % (1ull << 62)));
  for (uint64_t k : base) ref.insert(k);
  p.insert_batch(base.data(), base.size());
  uint64_t bytes = p.total_bytes();
  int grows = 0;
  for (int round = 0; round < 60 && grows < 3; ++round) {
    std::vector<uint64_t> batch(p.size() / 20);
    for (auto& k : batch) k = 1 + (r.next() % (1ull << 62));
    for (uint64_t k : batch) ref.insert(k);
    p.insert_batch(batch.data(), batch.size());
    ASSERT_EQ(p.size(), ref.size()) << "round " << round;
    if (p.total_bytes() > bytes) {
      ++grows;
      bytes = p.total_bytes();
    }
  }
  ASSERT_GE(grows, 3);
  EXPECT_TRUE(p.has(0));
  expect_matches_reference(p, ref, "final");
}
