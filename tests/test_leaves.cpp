// Typed tests exercising both leaf policies (uncompressed and compressed)
// through the same scenarios: insert/remove/lookup against a reference
// std::set, encode/decode roundtrips, cursor iteration, and the policy
// invariants the engine relies on (byte accounting, zero-fill tails).
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "codec/group_varint.hpp"
#include "pma/leaf_adaptive.hpp"
#include "pma/leaf_compressed.hpp"
#include "pma/leaf_uncompressed.hpp"
#include "util/random.hpp"

using cpma::util::Rng;
namespace pma = cpma::pma;

template <typename Policy>
class LeafTest : public ::testing::Test {
 protected:
  static constexpr size_t kCap = 512;
  std::vector<uint8_t> buf_ = std::vector<uint8_t>(kCap, 0);
  uint8_t* leaf() { return buf_.data(); }

  std::vector<uint64_t> decode() {
    std::vector<uint64_t> out;
    Policy::decode_append(leaf(), kCap, out);
    return out;
  }

  // The engine's invariant: all bytes past used_bytes are zero.
  void expect_zero_tail() {
    size_t used = Policy::used_bytes(leaf(), kCap);
    for (size_t i = used; i < kCap; ++i) {
      ASSERT_EQ(buf_[i], 0) << "dirty byte at " << i << " used=" << used;
    }
  }
};

using Policies =
    ::testing::Types<pma::UncompressedLeaf, pma::CompressedLeaf<>,
                     pma::CompressedLeaf<cpma::codec::GroupVarintCodec, 9>,
                     pma::AdaptiveLeaf>;
TYPED_TEST_SUITE(LeafTest, Policies);

TYPED_TEST(LeafTest, EmptyLeaf) {
  EXPECT_EQ(TypeParam::used_bytes(this->leaf(), this->kCap), 0u);
  EXPECT_EQ(TypeParam::element_count(this->leaf(), this->kCap), 0u);
  EXPECT_EQ(TypeParam::head(this->leaf()), 0u);
  EXPECT_FALSE(TypeParam::contains(this->leaf(), this->kCap, 5));
  EXPECT_FALSE(TypeParam::lower_bound(this->leaf(), this->kCap, 5).has_value());
  EXPECT_TRUE(this->decode().empty());
}

TYPED_TEST(LeafTest, SingleInsert) {
  EXPECT_TRUE(TypeParam::insert(this->leaf(), this->kCap, 42));
  EXPECT_EQ(TypeParam::head(this->leaf()), 42u);
  EXPECT_EQ(TypeParam::element_count(this->leaf(), this->kCap), 1u);
  EXPECT_TRUE(TypeParam::contains(this->leaf(), this->kCap, 42));
  EXPECT_FALSE(TypeParam::contains(this->leaf(), this->kCap, 41));
  EXPECT_FALSE(TypeParam::insert(this->leaf(), this->kCap, 42));  // dup
  this->expect_zero_tail();
}

TYPED_TEST(LeafTest, InsertBelowHeadMovesHead) {
  ASSERT_TRUE(TypeParam::insert(this->leaf(), this->kCap, 100));
  ASSERT_TRUE(TypeParam::insert(this->leaf(), this->kCap, 50));
  EXPECT_EQ(TypeParam::head(this->leaf()), 50u);
  EXPECT_EQ(this->decode(), (std::vector<uint64_t>{50, 100}));
  this->expect_zero_tail();
}

TYPED_TEST(LeafTest, InsertMiddleAndAppend) {
  for (uint64_t k : {10, 30, 20, 40, 35}) {
    ASSERT_TRUE(TypeParam::insert(this->leaf(), this->kCap, k));
  }
  EXPECT_EQ(this->decode(), (std::vector<uint64_t>{10, 20, 30, 35, 40}));
  this->expect_zero_tail();
}

TYPED_TEST(LeafTest, RemoveHeadMiddleLastOnly) {
  for (uint64_t k : {10, 20, 30, 40}) {
    ASSERT_TRUE(TypeParam::insert(this->leaf(), this->kCap, k));
  }
  EXPECT_TRUE(TypeParam::remove(this->leaf(), this->kCap, 10));  // head
  EXPECT_EQ(this->decode(), (std::vector<uint64_t>{20, 30, 40}));
  EXPECT_TRUE(TypeParam::remove(this->leaf(), this->kCap, 30));  // middle
  EXPECT_EQ(this->decode(), (std::vector<uint64_t>{20, 40}));
  EXPECT_TRUE(TypeParam::remove(this->leaf(), this->kCap, 40));  // last
  EXPECT_EQ(this->decode(), (std::vector<uint64_t>{20}));
  EXPECT_TRUE(TypeParam::remove(this->leaf(), this->kCap, 20));  // only
  EXPECT_EQ(TypeParam::element_count(this->leaf(), this->kCap), 0u);
  this->expect_zero_tail();
}

TYPED_TEST(LeafTest, RemoveAbsentKeys) {
  for (uint64_t k : {10, 20, 30}) {
    ASSERT_TRUE(TypeParam::insert(this->leaf(), this->kCap, k));
  }
  EXPECT_FALSE(TypeParam::remove(this->leaf(), this->kCap, 5));
  EXPECT_FALSE(TypeParam::remove(this->leaf(), this->kCap, 25));
  EXPECT_FALSE(TypeParam::remove(this->leaf(), this->kCap, 99));
  EXPECT_EQ(this->decode(), (std::vector<uint64_t>{10, 20, 30}));
}

TYPED_TEST(LeafTest, LowerBound) {
  for (uint64_t k : {10, 20, 30}) {
    ASSERT_TRUE(TypeParam::insert(this->leaf(), this->kCap, k));
  }
  EXPECT_EQ(TypeParam::lower_bound(this->leaf(), this->kCap, 5).value(), 10u);
  EXPECT_EQ(TypeParam::lower_bound(this->leaf(), this->kCap, 10).value(), 10u);
  EXPECT_EQ(TypeParam::lower_bound(this->leaf(), this->kCap, 11).value(), 20u);
  EXPECT_EQ(TypeParam::lower_bound(this->leaf(), this->kCap, 30).value(), 30u);
  EXPECT_FALSE(TypeParam::lower_bound(this->leaf(), this->kCap, 31).has_value());
}

TYPED_TEST(LeafTest, WriteRoundtripAndSizeAccounting) {
  std::vector<uint64_t> keys{5, 9, 100, 10000, 1000000, (1ull << 40) + 3};
  size_t need = TypeParam::encoded_size(keys.data(), keys.size());
  ASSERT_LE(need, this->kCap);
  TypeParam::write(this->leaf(), this->kCap, keys.data(), keys.size());
  EXPECT_EQ(TypeParam::used_bytes(this->leaf(), this->kCap), need);
  EXPECT_EQ(this->decode(), keys);
  this->expect_zero_tail();
}

TYPED_TEST(LeafTest, WriteEmptyClearsLeaf) {
  ASSERT_TRUE(TypeParam::insert(this->leaf(), this->kCap, 7));
  TypeParam::write(this->leaf(), this->kCap, nullptr, 0);
  EXPECT_EQ(TypeParam::element_count(this->leaf(), this->kCap), 0u);
  this->expect_zero_tail();
}

TYPED_TEST(LeafTest, SumLastMap) {
  std::vector<uint64_t> keys{3, 14, 159, 2653};
  TypeParam::write(this->leaf(), this->kCap, keys.data(), keys.size());
  EXPECT_EQ(TypeParam::sum_leaf(this->leaf(), this->kCap), 3u + 14 + 159 + 2653);
  EXPECT_EQ(TypeParam::last(this->leaf(), this->kCap), 2653u);
  std::vector<uint64_t> seen;
  bool finished = TypeParam::map(this->leaf(), this->kCap, [&](uint64_t k) {
    seen.push_back(k);
    return true;
  });
  EXPECT_TRUE(finished);
  EXPECT_EQ(seen, keys);
}

TYPED_TEST(LeafTest, MapEarlyStop) {
  std::vector<uint64_t> keys{1, 2, 3, 4, 5};
  TypeParam::write(this->leaf(), this->kCap, keys.data(), keys.size());
  int count = 0;
  bool finished = TypeParam::map(this->leaf(), this->kCap, [&](uint64_t) {
    return ++count < 3;
  });
  EXPECT_FALSE(finished);
  EXPECT_EQ(count, 3);
}

TYPED_TEST(LeafTest, CursorIteration) {
  std::vector<uint64_t> keys{11, 22, 33, 44};
  TypeParam::write(this->leaf(), this->kCap, keys.data(), keys.size());
  typename TypeParam::Cursor cur;
  ASSERT_TRUE(TypeParam::cursor_begin(this->leaf(), this->kCap, cur));
  std::vector<uint64_t> seen{cur.value};
  while (TypeParam::cursor_next(this->leaf(), this->kCap, cur)) {
    seen.push_back(cur.value);
  }
  EXPECT_EQ(seen, keys);
}

TYPED_TEST(LeafTest, CursorOnEmptyLeaf) {
  typename TypeParam::Cursor cur;
  EXPECT_FALSE(TypeParam::cursor_begin(this->leaf(), this->kCap, cur));
}

TYPED_TEST(LeafTest, RandomizedAgainstStdSet) {
  Rng r(77);
  std::set<uint64_t> ref;
  // Keep the population small enough that everything fits in one leaf.
  const uint64_t key_space = 40;
  for (int step = 0; step < 4000; ++step) {
    uint64_t key = 1 + r.next() % key_space;
    if (r.next() % 2 == 0) {
      bool inserted = TypeParam::insert(this->leaf(), this->kCap, key);
      EXPECT_EQ(inserted, ref.insert(key).second);
    } else {
      bool removed = TypeParam::remove(this->leaf(), this->kCap, key);
      EXPECT_EQ(removed, ref.erase(key) == 1);
    }
    if (step % 256 == 0) {
      std::vector<uint64_t> want(ref.begin(), ref.end());
      ASSERT_EQ(this->decode(), want);
      this->expect_zero_tail();
    }
  }
}

TYPED_TEST(LeafTest, LargeKeysNearUint64Max) {
  std::vector<uint64_t> keys{~uint64_t{0} - 1000, ~uint64_t{0} - 10,
                             ~uint64_t{0}};
  for (uint64_t k : keys) {
    ASSERT_TRUE(TypeParam::insert(this->leaf(), this->kCap, k));
  }
  EXPECT_EQ(this->decode(), keys);
  EXPECT_TRUE(TypeParam::contains(this->leaf(), this->kCap, ~uint64_t{0}));
}

// ---- merge_tail (the batch pipeline's suffix-splice merge) ----------------

TYPED_TEST(LeafTest, MergeTailSplicesBatchIntoSuffix) {
  std::vector<uint64_t> base{10, 20, 30, 40, 50};
  TypeParam::write(this->leaf(), this->kCap, base.data(), base.size());
  std::vector<uint64_t> batch{25, 35, 35, 40, 60};  // dup-in-batch + existing
  typename TypeParam::MergeBuf buf;
  size_t need = 0;
  uint64_t added = 0;
  ASSERT_TRUE(TypeParam::merge_tail(this->leaf(), this->kCap, batch.data(),
                                    batch.size(), this->kCap - 24, buf, &need,
                                    &added));
  EXPECT_EQ(this->decode(),
            (std::vector<uint64_t>{10, 20, 25, 30, 35, 40, 50, 60}));
  EXPECT_EQ(added, 3u);
  EXPECT_EQ(need, TypeParam::used_bytes(this->leaf(), this->kCap));
  this->expect_zero_tail();
}

TYPED_TEST(LeafTest, MergeTailRejectsEmptyLeafAndKeysBelowHead) {
  typename TypeParam::MergeBuf buf;
  size_t need = 0;
  uint64_t added = 0;
  std::vector<uint64_t> batch{5};
  // Empty leaf: the engine's materializing path owns this case.
  EXPECT_FALSE(TypeParam::merge_tail(this->leaf(), this->kCap, batch.data(),
                                     1, this->kCap - 24, buf, &need, &added));
  std::vector<uint64_t> base{10, 20};
  TypeParam::write(this->leaf(), this->kCap, base.data(), base.size());
  // keys[0] < head: splicing would displace the head; also materializing.
  EXPECT_FALSE(TypeParam::merge_tail(this->leaf(), this->kCap, batch.data(),
                                     1, this->kCap - 24, buf, &need, &added));
  EXPECT_EQ(this->decode(), base);
}

TYPED_TEST(LeafTest, MergeTailOverflowLeavesLeafUntouched) {
  // Fill the leaf close to its slack bound, then merge a batch that cannot
  // fit: merge_tail must refuse without modifying a byte.
  std::vector<uint64_t> base;
  for (uint64_t k = 1000; TypeParam::used_bytes(this->leaf(), this->kCap) +
                              64 <= this->kCap - 24;
       k += 1 + k % 7) {
    ASSERT_TRUE(TypeParam::insert(this->leaf(), this->kCap, k));
    base.push_back(k);
  }
  std::vector<uint8_t> before = this->buf_;
  std::vector<uint64_t> batch;
  for (uint64_t i = 0; i < 64; ++i) batch.push_back(2'000'000 + i * 3);
  typename TypeParam::MergeBuf buf;
  size_t need = 0;
  uint64_t added = 0;
  EXPECT_FALSE(TypeParam::merge_tail(this->leaf(), this->kCap, batch.data(),
                                     batch.size(), this->kCap - 24, buf,
                                     &need, &added));
  EXPECT_EQ(this->buf_, before);
}

TYPED_TEST(LeafTest, MergeTailRandomizedAgainstStdSet) {
  Rng r(77);
  for (int round = 0; round < 200; ++round) {
    std::fill(this->buf_.begin(), this->buf_.end(), 0);
    std::set<uint64_t> ref;
    uint64_t span = 1 + (r.next() % 2 == 0 ? 400 : 1u << 20);
    std::vector<uint64_t> base;
    for (uint64_t i = 0, n = 5 + r.next() % 30; i < n; ++i) {
      ref.insert(1 + r.next() % span);
    }
    base.assign(ref.begin(), ref.end());
    TypeParam::write(this->leaf(), this->kCap, base.data(), base.size());
    std::vector<uint64_t> batch;
    for (uint64_t i = 0, n = 1 + r.next() % 10; i < n; ++i) {
      batch.push_back(base[0] + r.next() % span);
    }
    std::sort(batch.begin(), batch.end());
    typename TypeParam::MergeBuf buf;
    size_t need = 0;
    uint64_t added = 0;
    if (!TypeParam::merge_tail(this->leaf(), this->kCap, batch.data(),
                               batch.size(), this->kCap - 24, buf, &need,
                               &added)) {
      EXPECT_EQ(this->decode(), base) << "refusal must not modify the leaf";
      continue;
    }
    uint64_t expect_added = 0;
    for (uint64_t k : batch) expect_added += ref.insert(k).second ? 1 : 0;
    EXPECT_EQ(this->decode(),
              std::vector<uint64_t>(ref.begin(), ref.end()));
    EXPECT_EQ(added, expect_added);
    EXPECT_EQ(need, TypeParam::used_bytes(this->leaf(), this->kCap));
    this->expect_zero_tail();
  }
}

// ---- remove_tail (the batch pipeline's suffix-splice subtraction) ----------

TYPED_TEST(LeafTest, RemoveTailSplicesBatchOutOfSuffix) {
  std::vector<uint64_t> base{10, 20, 30, 40, 50, 60};
  TypeParam::write(this->leaf(), this->kCap, base.data(), base.size());
  std::vector<uint64_t> batch{25, 30, 30, 50, 70};  // dups + absent keys
  typename TypeParam::MergeBuf buf;
  size_t need = 0;
  uint64_t removed = 0;
  ASSERT_TRUE(TypeParam::remove_tail(this->leaf(), this->kCap, batch.data(),
                                     batch.size(), buf, &need, &removed));
  EXPECT_EQ(this->decode(), (std::vector<uint64_t>{10, 20, 40, 60}));
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(need, TypeParam::used_bytes(this->leaf(), this->kCap));
  this->expect_zero_tail();
}

TYPED_TEST(LeafTest, RemoveTailRefusesEmptyLeafUntouched) {
  typename TypeParam::MergeBuf buf;
  size_t need = 0;
  uint64_t removed = 0;
  std::vector<uint64_t> batch{5};
  std::vector<uint8_t> before = this->buf_;
  EXPECT_FALSE(TypeParam::remove_tail(this->leaf(), this->kCap, batch.data(),
                                      1, buf, &need, &removed));
  EXPECT_EQ(this->buf_, before);
}

TYPED_TEST(LeafTest, RemoveTailNoMatchLeavesLeafUntouched) {
  std::vector<uint64_t> base{10, 20, 30};
  TypeParam::write(this->leaf(), this->kCap, base.data(), base.size());
  std::vector<uint8_t> before = this->buf_;
  typename TypeParam::MergeBuf buf;
  size_t need = 0;
  uint64_t removed = 1;
  // All batch keys below the head: absent by definition.
  std::vector<uint64_t> low{3, 5};
  ASSERT_TRUE(TypeParam::remove_tail(this->leaf(), this->kCap, low.data(),
                                     low.size(), buf, &need, &removed));
  EXPECT_EQ(removed, 0u);
  EXPECT_EQ(this->buf_, before);
  // In-range but absent keys: scanned, still untouched.
  std::vector<uint64_t> absent{15, 25, 99};
  removed = 1;
  ASSERT_TRUE(TypeParam::remove_tail(this->leaf(), this->kCap, absent.data(),
                                     absent.size(), buf, &need, &removed));
  EXPECT_EQ(removed, 0u);
  EXPECT_EQ(this->buf_, before);
}

TYPED_TEST(LeafTest, RemoveTailPromotesSurvivorIntoRemovedHead) {
  std::vector<uint64_t> base{10, 20, 30, 40};
  TypeParam::write(this->leaf(), this->kCap, base.data(), base.size());
  std::vector<uint64_t> batch{10, 30};
  typename TypeParam::MergeBuf buf;
  size_t need = 0;
  uint64_t removed = 0;
  ASSERT_TRUE(TypeParam::remove_tail(this->leaf(), this->kCap, batch.data(),
                                     batch.size(), buf, &need, &removed));
  EXPECT_EQ(this->decode(), (std::vector<uint64_t>{20, 40}));
  EXPECT_EQ(TypeParam::head(this->leaf()), 20u);
  EXPECT_EQ(removed, 2u);
  this->expect_zero_tail();
}

TYPED_TEST(LeafTest, RemoveTailRemovingEverythingEmptiesLeaf) {
  std::vector<uint64_t> base{10, 20, 30};
  TypeParam::write(this->leaf(), this->kCap, base.data(), base.size());
  std::vector<uint64_t> batch{10, 20, 30};
  typename TypeParam::MergeBuf buf;
  size_t need = 0;
  uint64_t removed = 0;
  ASSERT_TRUE(TypeParam::remove_tail(this->leaf(), this->kCap, batch.data(),
                                     batch.size(), buf, &need, &removed));
  EXPECT_EQ(removed, 3u);
  EXPECT_EQ(TypeParam::element_count(this->leaf(), this->kCap), 0u);
  EXPECT_EQ(need, 0u);
  this->expect_zero_tail();
}

TYPED_TEST(LeafTest, RemoveTailRandomizedAgainstStdSet) {
  Rng r(78);
  for (int round = 0; round < 200; ++round) {
    std::fill(this->buf_.begin(), this->buf_.end(), 0);
    std::set<uint64_t> ref;
    uint64_t span = 1 + (r.next() % 2 == 0 ? 400 : 1u << 20);
    for (uint64_t i = 0, n = 5 + r.next() % 30; i < n; ++i) {
      ref.insert(1 + r.next() % span);
    }
    std::vector<uint64_t> base(ref.begin(), ref.end());
    TypeParam::write(this->leaf(), this->kCap, base.data(), base.size());
    std::vector<uint64_t> batch;
    for (uint64_t i = 0, n = 1 + r.next() % 10; i < n; ++i) {
      // Mix of present keys (sampled from base) and likely-absent ones.
      if (r.next() % 2 == 0) {
        batch.push_back(base[r.next() % base.size()]);
      } else {
        batch.push_back(1 + r.next() % span);
      }
    }
    std::sort(batch.begin(), batch.end());
    typename TypeParam::MergeBuf buf;
    size_t need = 0;
    uint64_t removed = 0;
    ASSERT_TRUE(TypeParam::remove_tail(this->leaf(), this->kCap, batch.data(),
                                       batch.size(), buf, &need, &removed));
    uint64_t expect_removed = 0;
    for (uint64_t k : batch) expect_removed += ref.erase(k);
    EXPECT_EQ(this->decode(), std::vector<uint64_t>(ref.begin(), ref.end()));
    EXPECT_EQ(removed, expect_removed);
    if (removed > 0) {
      EXPECT_EQ(need, TypeParam::used_bytes(this->leaf(), this->kCap));
    }
    this->expect_zero_tail();
  }
}

// ---- direct-spread primitives ----------------------------------------------

TYPED_TEST(LeafTest, SpreadSeekerSplitsAndStitchesRoundTrip) {
  // Drive the resize's one-pass split emitter exactly as the engine does:
  // collect every destination boundary for a byte budget, stitch the
  // segments between them into fresh leaves via the spread writer, and
  // check the concatenation decodes back to the original keys. Key sets
  // cover mixed widths plus the uniform 1/2/3-byte delta regimes the
  // codec's sum_run_to word probes special-case.
  std::vector<std::vector<uint64_t>> key_sets;
  key_sets.push_back({3, 14, 159, 2653, 58979, 1ull << 33});
  for (uint64_t step : {3ull, 9000ull, 1500000ull}) {
    std::vector<uint64_t> ks;
    for (uint64_t i = 0, k = 1000; i < 40; ++i) ks.push_back(k += step);
    key_sets.push_back(ks);
  }
  for (const auto& keys : key_sets) {
    TypeParam::write(this->leaf(), this->kCap, keys.data(), keys.size());
    size_t used = TypeParam::used_bytes(this->leaf(), this->kCap);
    // 16 is the engine's minimum budget; `used` yields no interior split.
    for (size_t budget : {size_t{16}, size_t{24}, size_t{57}, used}) {
      std::vector<typename TypeParam::SpreadPoint> splits;
      typename TypeParam::SpreadSeeker seeker(this->leaf(), this->kCap);
      uint64_t last = seeker.split_targets(
          0, budget, 1, used,
          [&](uint64_t, typename TypeParam::SpreadPoint sp, bool sliver) {
            // A boundary past the last key's code start splits nothing
            // here; the engine resolves it to the next leaf's head.
            if (!sliver) splits.push_back(sp);
          });
      ASSERT_EQ(last, keys.back()) << "budget=" << budget;
      std::vector<uint64_t> got;
      std::vector<uint8_t> dst(this->kCap, 0);
      typename TypeParam::SpreadWriter w;
      TypeParam::spread_begin(w, dst.data(), this->kCap, keys[0]);
      size_t from = TypeParam::kHeadBytes;  // just past the head's footprint
      for (const auto& sp : splits) {
        TypeParam::spread_copy_tail(w, this->leaf(), from, sp.off);
        TypeParam::spread_finish(w);
        TypeParam::decode_append(dst.data(), this->kCap, got);
        std::fill(dst.begin(), dst.end(), 0);
        TypeParam::spread_begin(w, dst.data(), this->kCap, sp.key);
        from = sp.next;
      }
      TypeParam::spread_copy_tail(w, this->leaf(), from, used);
      TypeParam::spread_finish(w);
      TypeParam::decode_append(dst.data(), this->kCap, got);
      ASSERT_EQ(got, keys) << "budget=" << budget;
    }
  }
}

// Compressed-leaf-specific size behaviour.
TEST(CompressedLeafOnly, DenseKeysUseOneBytePerDelta) {
  std::vector<uint8_t> buf(512, 0);
  std::vector<uint64_t> keys(100);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = 1000 + i;
  pma::CompressedLeaf<>::write(buf.data(), buf.size(), keys.data(), keys.size());
  // head (8 bytes) + 99 one-byte deltas.
  EXPECT_EQ(pma::CompressedLeaf<>::used_bytes(buf.data(), buf.size()),
            8u + 99u);
}

TEST(CompressedLeafOnly, InsertNeverGrowsMoreThanSlack) {
  // Worst-case single-insert growth must stay within kLeafSlack-ish bounds;
  // this protects the engine's placement precondition.
  std::vector<uint8_t> buf(512, 0);
  std::vector<uint64_t> keys{1ull << 62, (1ull << 62) + (1ull << 40)};
  pma::CompressedLeaf<>::write(buf.data(), buf.size(), keys.data(), keys.size());
  size_t before = pma::CompressedLeaf<>::used_bytes(buf.data(), buf.size());
  ASSERT_TRUE(pma::CompressedLeaf<>::insert(buf.data(), buf.size(),
                                          (1ull << 62) + (1ull << 39)));
  size_t after = pma::CompressedLeaf<>::used_bytes(buf.data(), buf.size());
  EXPECT_LE(after - before, 19u);
}

TEST(UncompressedLeafOnly, FixedEightBytesPerElement) {
  std::vector<uint8_t> buf(512, 0);
  std::vector<uint64_t> keys{1, 1000, 1ull << 50};
  pma::UncompressedLeaf::write(buf.data(), buf.size(), keys.data(),
                               keys.size());
  EXPECT_EQ(pma::UncompressedLeaf::used_bytes(buf.data(), buf.size()), 24u);
}
