// Batch-query differential + boundary suite (has_batch / successor_batch /
// map_ranges), plus the Eytzinger head-index mirror's unit tests.
//
// Methodology mirrors test_differential.cpp: every surface (engine, sharded,
// epoch-pinned snapshot) answers the same sorted query batches as a per-op
// loop and as std::set, and must agree elementwise. Boundary coverage pins
// the key-0 sentinel, UINT64_MAX, duplicate queries, batches straddling
// shard splitters, and equal-head runs from emptied leaves. The TSan cases
// pin the read paths' const-ness: shared engines hammered by reader threads
// with no writer, and batch reads on pinned snapshots under live ingest.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "graph/streaming.hpp"
#include "pma/cpma.hpp"
#include "pma/head_eytzinger.hpp"
#include "util/random.hpp"

using cpma::pma::EytzingerHeadIndex;
using cpma::util::Rng;

namespace {

constexpr uint64_t kMax = UINT64_MAX;

bool bit_set(const std::vector<uint64_t>& bits, uint64_t i) {
  return (bits[i >> 6] >> (i & 63)) & 1;
}

// Sorted query batch mixing stored keys, random absent keys, duplicates,
// and the extremes (0, UINT64_MAX).
std::vector<uint64_t> make_queries(Rng& rng, const std::set<uint64_t>& ref,
                                   uint64_t n) {
  std::vector<uint64_t> q;
  q.reserve(n + 4);
  std::vector<uint64_t> stored(ref.begin(), ref.end());
  for (uint64_t i = 0; i < n; ++i) {
    switch (rng.next_below(4)) {
      case 0:
        if (!stored.empty()) {
          q.push_back(stored[rng.next_below(stored.size())]);
          break;
        }
        [[fallthrough]];
      default:
        q.push_back(rng.next() >> (rng.next_below(3) * 12));
    }
  }
  q.push_back(0);
  q.push_back(0);  // duplicate zero queries
  q.push_back(kMax);
  if (!stored.empty()) q.push_back(stored[0]);  // duplicate of a stored key
  std::sort(q.begin(), q.end());
  return q;
}

// Asserts the three batch queries on `s` (any surface with the batch API)
// agree with std::set and with the surface's own per-op answers.
template <typename Surface>
void check_queries(const Surface& s, const std::set<uint64_t>& ref,
                   const std::vector<uint64_t>& q, const std::string& what) {
  const uint64_t n = q.size();
  // has_batch vs per-op has() vs set.
  std::vector<uint64_t> bits = s.has_batch(q.data(), n);
  for (uint64_t i = 0; i < n; ++i) {
    const bool expect = ref.count(q[i]) != 0;
    ASSERT_EQ(bit_set(bits, i), expect)
        << what << " has_batch[" << i << "] key=" << q[i];
    ASSERT_EQ(s.has(q[i]), expect) << what << " has key=" << q[i];
  }
  // successor_batch vs per-op successor() vs set lower_bound.
  std::vector<uint64_t> out(n, 0xDEADBEEFDEADBEEFULL);
  std::vector<uint64_t> found((n + 63) / 64, 0);
  s.successor_batch(q.data(), n, out.data(), found.data());
  for (uint64_t i = 0; i < n; ++i) {
    auto it = ref.lower_bound(q[i]);
    auto per_op = s.successor(q[i]);
    if (it == ref.end()) {
      ASSERT_FALSE(bit_set(found, i))
          << what << " successor_batch[" << i << "] key=" << q[i];
      ASSERT_FALSE(per_op.has_value()) << what << " successor key=" << q[i];
    } else {
      ASSERT_TRUE(bit_set(found, i))
          << what << " successor_batch[" << i << "] key=" << q[i];
      ASSERT_EQ(out[i], *it)
          << what << " successor_batch[" << i << "] key=" << q[i];
      ASSERT_TRUE(per_op.has_value() && *per_op == *it)
          << what << " successor key=" << q[i];
    }
  }
}

// map_ranges vs set iteration. Ranges are built disjoint and sorted from
// random boundary points. f may run concurrently (and one straddling range
// may arrive from several shard tasks), so collection locks.
template <typename Surface>
void check_map_ranges(const Surface& s, const std::set<uint64_t>& ref,
                      Rng& rng, const std::string& what) {
  std::vector<uint64_t> pts;
  for (int i = 0; i < 12; ++i) pts.push_back(rng.next() >> 12);
  pts.push_back(0);  // first range starts at 0: covers the sentinel
  std::sort(pts.begin(), pts.end());
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  std::vector<std::pair<uint64_t, uint64_t>> ranges;
  for (uint64_t i = 0; i + 1 < pts.size(); i += 2) {
    ranges.emplace_back(pts[i], pts[i + 1]);
  }
  std::vector<std::vector<uint64_t>> got(ranges.size());
  std::mutex mu;
  s.map_ranges(ranges.data(), ranges.size(),
               [&](uint64_t ri, uint64_t k) {
                 std::lock_guard<std::mutex> lock(mu);
                 got[ri].push_back(k);
               });
  for (uint64_t ri = 0; ri < ranges.size(); ++ri) {
    std::vector<uint64_t> expect;
    for (auto it = ref.lower_bound(ranges[ri].first);
         it != ref.end() && *it < ranges[ri].second; ++it) {
      expect.push_back(*it);
    }
    std::sort(got[ri].begin(), got[ri].end());  // cross-shard order unordered
    ASSERT_EQ(got[ri], expect)
        << what << " map_ranges range " << ri << " [" << ranges[ri].first
        << ", " << ranges[ri].second << ")";
  }
}

std::string invariant_err(const std::string& msg) { return msg; }

// ---------------------------------------------------------------------------
// Eytzinger mirror unit tests against the flat reference semantics.
// ---------------------------------------------------------------------------

// Flat reference: first leaf of the run of equal entries ending at the last
// entry <= key (pma.hpp's find_leaf_flat).
uint64_t flat_find_leaf(const std::vector<uint64_t>& head, uint64_t key) {
  auto it = std::upper_bound(head.begin(), head.end(), key);
  if (it == head.begin()) return 0;
  --it;
  auto first = std::lower_bound(head.begin(), it, *it);
  return static_cast<uint64_t>(first - head.begin());
}

// Random nondecreasing head arrays with equal runs (empty-leaf inheritance)
// and a possibly-zero prefix (empty leading leaves).
std::vector<uint64_t> make_heads(Rng& rng, uint64_t n) {
  std::vector<uint64_t> head(n);
  uint64_t cur = rng.next_below(3) == 0 ? 0 : 1 + rng.next_below(100);
  for (uint64_t l = 0; l < n; ++l) {
    if (l > 0 && rng.next_below(3) != 0) {
      cur += 1 + rng.next_below(50);  // nonempty leaf: strictly larger head
    }  // else: empty leaf inherits (equal run)
    head[l] = cur;
  }
  return head;
}

TEST(Eytzinger, MatchesFlatSearch) {
  Rng rng(0xE721);
  for (uint64_t n : {1u, 2u, 3u, 7u, 8u, 64u, 100u, 1000u, 5000u}) {
    std::vector<uint64_t> head = make_heads(rng, n);
    EytzingerHeadIndex eytz;
    eytz.build(head);
    ASSERT_EQ(eytz.size(), n);
    // Probe every boundary neighborhood plus random keys.
    std::vector<uint64_t> probes = {0, 1, kMax};
    for (uint64_t h : head) {
      probes.push_back(h);
      if (h > 0) probes.push_back(h - 1);
      if (h < kMax) probes.push_back(h + 1);
    }
    for (int i = 0; i < 64; ++i) probes.push_back(rng.next_below(6000));
    for (uint64_t key : probes) {
      ASSERT_EQ(eytz.find_leaf(key), flat_find_leaf(head, key))
          << "n=" << n << " key=" << key;
    }
  }
}

TEST(Eytzinger, RepairMatchesRebuild) {
  // Models the engine's head-array semantics explicitly: each leaf is
  // either nonempty (own strictly-increasing head value) or empty
  // (inherits its predecessor's entry). A repair event rewrites a window
  // — new emptiness flags, new values strictly inside the gap left by the
  // surrounding nonempty leaves — then propagates through the trailing
  // empty leaves exactly like update_head_index's walk, and repairs that
  // extent. The incrementally repaired mirror must match a from-scratch
  // build after every event.
  Rng rng(0x4EA1);
  const uint64_t n = 257;
  std::vector<bool> empty(n, false);
  std::vector<uint64_t> head(n);
  for (uint64_t l = 0; l < n; ++l) {
    empty[l] = l > 0 && rng.next_below(3) == 0;
    head[l] = empty[l] ? head[l - 1] : (l + 1) * 1000 + rng.next_below(100);
  }
  EytzingerHeadIndex eytz;
  eytz.build(head);
  for (int round = 0; round < 300; ++round) {
    const uint64_t lo = rng.next_below(n);
    const uint64_t hi = std::min<uint64_t>(n, lo + 1 + rng.next_below(6));
    // Value gap the rewritten window must stay inside: (floor, ceil).
    const uint64_t floor_v = lo == 0 ? 0 : head[lo - 1];
    uint64_t ceil_v = UINT64_MAX;
    for (uint64_t s = hi; s < n; ++s) {
      if (!empty[s]) {
        ceil_v = head[s];
        break;
      }
    }
    uint64_t prev = floor_v;
    for (uint64_t l = lo; l < hi; ++l) {
      // Stay strictly increasing with room for the rest of the window.
      const uint64_t slack = ceil_v - prev;
      const bool can_fill = slack > (hi - l) + 1;
      empty[l] = l > 0 && (!can_fill || rng.next_below(2) == 0);
      if (empty[l]) {
        head[l] = head[l - 1];
      } else {
        uint64_t step = 1 + rng.next_below(
            std::max<uint64_t>(1, slack / (hi - l + 1)));
        head[l] = prev + step;
        ASSERT_LT(head[l], ceil_v) << "generator bug: window overran gap";
        prev = head[l];
      }
    }
    // Trailing empty leaves re-inherit the window's new last value; the
    // walk ends at the first nonempty leaf (whose entry is unchanged).
    uint64_t stop = hi;
    for (; stop < n && empty[stop]; ++stop) head[stop] = head[stop - 1];
    eytz.repair(head, lo, stop);
    EytzingerHeadIndex fresh;
    fresh.build(head);
    for (uint64_t l = 0; l < n; ++l) {
      ASSERT_EQ(eytz.key_at(l), head[l]) << "round " << round << " l=" << l;
      ASSERT_EQ(eytz.run_first_at(l), fresh.run_first_at(l))
          << "round " << round << " l=" << l;
    }
  }
}

// ---------------------------------------------------------------------------
// Engine differential (pma / cpma / acpma).
// ---------------------------------------------------------------------------

template <typename E>
class QueryBatch : public ::testing::Test {};
using Engines = ::testing::Types<cpma::PMA, cpma::CPMA, cpma::ACPMA>;
TYPED_TEST_SUITE(QueryBatch, Engines);

TYPED_TEST(QueryBatch, RandomizedDifferential) {
  Rng rng(0xBA7C4);
  TypeParam pma;
  std::set<uint64_t> ref;
  std::string err;
  for (int round = 0; round < 8; ++round) {
    std::vector<uint64_t> batch;
    for (int i = 0; i < 4000; ++i) batch.push_back(rng.next() >> 24);
    ref.insert(batch.begin(), batch.end());
    pma.insert_batch(batch.data(), batch.size());
    ASSERT_TRUE(pma.check_invariants(&err)) << invariant_err(err);
    std::vector<uint64_t> q = make_queries(rng, ref, 2000);
    check_queries(pma, ref, q, "engine round " + std::to_string(round));
    check_map_ranges(pma, ref, rng, "engine round " + std::to_string(round));
  }
}

TYPED_TEST(QueryBatch, EmptyAndSentinels) {
  TypeParam pma;
  std::set<uint64_t> ref;
  Rng rng(0x5E17);
  // Empty structure: everything misses, nothing has a successor.
  std::vector<uint64_t> q = {0, 1, 12345, kMax};
  check_queries(pma, ref, q, "empty");
  // Zero-length batch is a no-op.
  pma.has_batch(q.data(), 0);
  // Key 0 and UINT64_MAX stored: both extremes answer through the batch
  // paths (0 via the out-of-band sentinel, kMax as the last stored key).
  std::vector<uint64_t> batch = {0, 1, 500, kMax - 1, kMax};
  pma.insert_batch(batch.data(), batch.size());
  ref.insert(batch.begin(), batch.end());
  q = {0, 0, 1, 2, 499, 500, 501, kMax - 1, kMax};
  check_queries(pma, ref, q, "sentinels");
  std::string err;
  ASSERT_TRUE(pma.check_invariants(&err)) << invariant_err(err);
}

TYPED_TEST(QueryBatch, EqualHeadRunsFromRemovals) {
  // Build a dense region, then batch-remove interior bands so whole leaves
  // empty out and inherit their predecessor's head — the equal-run case the
  // Eytzinger layout folds in. Queries then target the emptied bands.
  Rng rng(0xE0A7);
  TypeParam pma;
  std::set<uint64_t> ref;
  std::vector<uint64_t> batch;
  for (uint64_t k = 1; k <= 60000; ++k) batch.push_back(k);
  ref.insert(batch.begin(), batch.end());
  pma.insert_batch(batch.data(), batch.size());
  std::vector<uint64_t> dead;
  for (uint64_t k = 20000; k < 40000; ++k) dead.push_back(k);
  for (uint64_t k : dead) ref.erase(k);
  pma.remove_batch(dead.data(), dead.size());
  std::string err;
  ASSERT_TRUE(pma.check_invariants(&err)) << invariant_err(err);
  std::vector<uint64_t> q;
  for (int i = 0; i < 3000; ++i) q.push_back(1 + rng.next_below(70000));
  std::sort(q.begin(), q.end());
  check_queries(pma, ref, q, "equal-head runs");
  check_map_ranges(pma, ref, rng, "equal-head runs");
}

TYPED_TEST(QueryBatch, PointUpdateMaintenance) {
  // Point inserts/removes repair the mirror through update_head_index;
  // check_invariants cross-validates it against the flat index every round.
  Rng rng(0x901E7);
  TypeParam pma;
  std::set<uint64_t> ref;
  std::string err;
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 3000; ++i) {
      uint64_t k = 1 + (rng.next() >> 40);
      if (rng.next_below(4) == 0) {
        pma.remove(k);
        ref.erase(k);
      } else {
        pma.insert(k);
        ref.insert(k);
      }
    }
    ASSERT_TRUE(pma.check_invariants(&err)) << invariant_err(err);
    std::vector<uint64_t> q = make_queries(rng, ref, 1500);
    check_queries(pma, ref, q, "point round " + std::to_string(round));
  }
}

// ---------------------------------------------------------------------------
// Sharded: batches straddling splitters.
// ---------------------------------------------------------------------------

template <typename E>
class QueryBatchSharded : public ::testing::Test {};
using ShardedEngines = ::testing::Types<cpma::SPMA, cpma::SCPMA>;
TYPED_TEST_SUITE(QueryBatchSharded, ShardedEngines);

TYPED_TEST(QueryBatchSharded, StraddlingSplitters) {
  Rng rng(0x5AA2D);
  cpma::pma::ShardedSettings settings;
  settings.num_shards = 8;
  TypeParam sharded(settings);
  std::set<uint64_t> ref;
  for (int round = 0; round < 4; ++round) {
    std::vector<uint64_t> batch;
    for (int i = 0; i < 20000; ++i) batch.push_back(rng.next() >> 20);
    ref.insert(batch.begin(), batch.end());
    sharded.insert_batch(batch.data(), batch.size());
    std::string err;
    ASSERT_TRUE(sharded.check_invariants(&err)) << invariant_err(err);
    // Random queries plus every splitter's neighborhood: splitter - 1 /
    // exact / + 1 forces slices that straddle every shard boundary.
    std::vector<uint64_t> q = make_queries(rng, ref, 3000);
    for (uint64_t sp : sharded.splitters()) {
      if (sp == kMax) continue;
      q.push_back(sp > 0 ? sp - 1 : 0);
      q.push_back(sp);
      q.push_back(sp + 1);
    }
    std::sort(q.begin(), q.end());
    check_queries(sharded, ref, q, "sharded round " + std::to_string(round));
    check_map_ranges(sharded, ref, rng,
                     "sharded round " + std::to_string(round));
  }
}

// ---------------------------------------------------------------------------
// Snapshot / serving surfaces.
// ---------------------------------------------------------------------------

TEST(QueryBatchSnapshot, PinnedViewDifferential) {
  Rng rng(0x54A9);
  cpma::serve::ServingSettings settings;
  settings.publish_eager = true;
  settings.sharded.num_shards = 4;
  cpma::ServingCPMA serving(settings);
  std::set<uint64_t> ref;
  std::vector<uint64_t> batch;
  for (int i = 0; i < 30000; ++i) batch.push_back(rng.next() >> 20);
  ref.insert(batch.begin(), batch.end());
  serving.insert_batch(batch);
  auto snap = serving.snapshot();
  std::vector<uint64_t> q = make_queries(rng, ref, 3000);
  check_queries(snap, ref, q, "pinned snapshot");
  check_map_ranges(snap, ref, rng, "pinned snapshot");
  // The pinned view must not see writes applied after the pin.
  std::vector<uint64_t> later = {7, 77, 777};
  std::vector<uint64_t> lq = later;
  serving.insert_batch(later);
  for (uint64_t k : lq) ref.erase(k);  // not in the pinned cut
  std::vector<uint64_t> bits = snap.has_batch(lq.data(), lq.size());
  for (uint64_t i = 0; i < lq.size(); ++i) {
    ASSERT_EQ(bit_set(bits, i), ref.count(lq[i]) != 0)
        << "post-pin write leaked into pinned view, key " << lq[i];
  }
  // Pin-per-call convenience on the serving front sees the new keys.
  std::vector<uint64_t> fresh_bits = serving.has_batch(lq.data(), lq.size());
  for (uint64_t i = 0; i < lq.size(); ++i) {
    ASSERT_TRUE(bit_set(fresh_bits, i)) << "fresh read missed " << lq[i];
  }
}

TEST(QueryBatchGraph, HasEdgesAndDedupIngest) {
  using Graph = cpma::graph::StreamingGraphCPMA;
  cpma::serve::ServingSettings settings;
  settings.publish_eager = true;
  settings.sharded.num_shards = 4;
  Graph g(1 << 12, settings);
  Rng rng(0x6EA9);
  std::vector<uint64_t> edges;
  for (int i = 0; i < 20000; ++i) {
    edges.push_back(cpma::graph::edge_key(
        static_cast<uint32_t>(rng.next_below(1 << 12)),
        static_cast<uint32_t>(rng.next_below(1 << 12))));
  }
  std::set<uint64_t> ref(edges.begin(), edges.end());
  uint64_t added = g.insert_edges(edges);
  ASSERT_EQ(added, ref.size());
  g.flush();
  // has_edges batch vs per-edge has_edge on one pinned snapshot.
  auto snap = g.snapshot();
  std::vector<uint64_t> probe(edges.begin(), edges.begin() + 4000);
  for (int i = 0; i < 2000; ++i) {
    probe.push_back(cpma::graph::edge_key(
        static_cast<uint32_t>(rng.next_below(1 << 12)),
        static_cast<uint32_t>(rng.next_below(1 << 12))));
  }
  std::sort(probe.begin(), probe.end());
  std::vector<uint64_t> bits = snap.has_edges(probe);
  for (uint64_t i = 0; i < probe.size(); ++i) {
    ASSERT_EQ(bit_set(bits, i), ref.count(probe[i]) != 0)
        << "has_edges[" << i << "]";
    ASSERT_EQ(bit_set(bits, i),
              snap.has_edge(cpma::graph::edge_src(probe[i]),
                            cpma::graph::edge_dst(probe[i])));
  }
  // Dedup ingest: re-sending the whole edge set adds nothing; a mix of old
  // and new edges adds exactly the new ones.
  ASSERT_EQ(g.insert_edges_dedup(edges), 0u);
  std::vector<uint64_t> mixed(edges.begin(), edges.begin() + 1000);
  uint64_t fresh = 0;
  for (int i = 0; i < 1000; ++i) {
    uint64_t e = cpma::graph::edge_key(
        static_cast<uint32_t>(rng.next_below(1 << 12)),
        static_cast<uint32_t>(rng.next_below(1 << 12)));
    mixed.push_back(e);
    if (ref.insert(e).second) ++fresh;
  }
  ASSERT_EQ(g.insert_edges_dedup(mixed), fresh);
  g.flush();
  ASSERT_EQ(g.num_edges(), ref.size());
}

// ---------------------------------------------------------------------------
// Concurrency (TSan leg): the read paths must be mutation-free.
// ---------------------------------------------------------------------------

TEST(QueryBatchConcurrency, SharedConstEngineReads) {
  // N threads hammer has/successor/has_batch/successor_batch on ONE shared
  // engine with no writer. Any lazy repair or mutable cache on the read
  // path — the failure mode the old head-index repair special case invited
  // — is a TSan data race here; bit-identical answers across threads pin
  // the semantics.
  Rng seed_rng(0xC0457);
  cpma::CPMA pma;
  std::set<uint64_t> ref;
  std::vector<uint64_t> batch;
  for (int i = 0; i < 50000; ++i) batch.push_back(seed_rng.next() >> 20);
  ref.insert(batch.begin(), batch.end());
  pma.insert_batch(batch.data(), batch.size());
  const cpma::CPMA& shared = pma;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0x7000 + t);
      std::vector<uint64_t> q = make_queries(rng, ref, 2000);
      for (int round = 0; round < 5; ++round) {
        std::vector<uint64_t> bits = shared.has_batch(q.data(), q.size());
        std::vector<uint64_t> out(q.size(), 0);
        std::vector<uint64_t> found((q.size() + 63) / 64, 0);
        shared.successor_batch(q.data(), q.size(), out.data(), found.data());
        for (uint64_t i = 0; i < q.size(); ++i) {
          ASSERT_EQ(bit_set(bits, i), ref.count(q[i]) != 0);
          auto it = ref.lower_bound(q[i]);
          ASSERT_EQ(bit_set(found, i), it != ref.end());
          if (it != ref.end()) ASSERT_EQ(out[i], *it);
          ASSERT_EQ(shared.has(q[i]), ref.count(q[i]) != 0);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
}

TEST(QueryBatchConcurrency, SnapshotBatchReadsUnderIngest) {
  // Reader threads run batch queries on pinned snapshots while the writer
  // keeps ingesting: keys flushed before the readers start must be found in
  // EVERY snapshot (insert-only history), whatever else lands meanwhile.
  cpma::serve::ServingSettings settings;
  settings.sharded.num_shards = 4;
  cpma::ServingCPMA serving(settings);
  Rng seed_rng(0x51AB1E);
  std::vector<uint64_t> base;
  for (int i = 0; i < 20000; ++i) base.push_back(1 + (seed_rng.next() >> 22));
  std::sort(base.begin(), base.end());
  base.erase(std::unique(base.begin(), base.end()), base.end());
  serving.insert_batch(base, /*sorted=*/true);
  serving.flush();
  std::thread writer([&] {
    Rng rng(0xF00D);
    for (int b = 0; b < 20; ++b) {
      std::vector<uint64_t> more;
      for (int i = 0; i < 2000; ++i) more.push_back(1 + (rng.next() >> 22));
      serving.insert_batch(more);
    }
    serving.flush();
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      for (int round = 0; round < 10; ++round) {
        auto snap = serving.snapshot();
        std::vector<uint64_t> bits =
            snap.has_batch(base.data(), base.size());
        for (uint64_t i = 0; i < base.size(); ++i) {
          ASSERT_TRUE(bit_set(bits, i))
              << "pre-flushed key " << base[i] << " missing from snapshot";
        }
        std::vector<uint64_t> out(base.size(), 0);
        std::vector<uint64_t> found((base.size() + 63) / 64, 0);
        snap.successor_batch(base.data(), base.size(), out.data(),
                             found.data());
        for (uint64_t i = 0; i < base.size(); ++i) {
          ASSERT_TRUE(bit_set(found, i));
          ASSERT_EQ(out[i], base[i]);  // the key itself is its successor
        }
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
}

}  // namespace
