// Typed point-operation tests for the PMA and CPMA engines: insert/remove/
// has/successor/min/max/sum, iteration, range maps, growth and shrink, the
// key-0 sentinel, and structural invariants after every phase.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "pma/cpma.hpp"
#include "util/random.hpp"

using cpma::ACPMA;
using cpma::CPMA;
using cpma::PMA;
using cpma::util::Rng;

template <typename T>
class PmaPointTest : public ::testing::Test {};

using Engines = ::testing::Types<PMA, CPMA, ACPMA>;
TYPED_TEST_SUITE(PmaPointTest, Engines);

template <typename T>
void expect_invariants(const T& p) {
  std::string err;
  ASSERT_TRUE(p.check_invariants(&err)) << err;
}

TYPED_TEST(PmaPointTest, EmptyState) {
  TypeParam p;
  EXPECT_EQ(p.size(), 0u);
  EXPECT_TRUE(p.empty());
  EXPECT_FALSE(p.has(5));
  EXPECT_FALSE(p.successor(1).has_value());
  EXPECT_EQ(p.sum(), 0u);
  EXPECT_TRUE(p.begin() == p.end());
  expect_invariants(p);
}

TYPED_TEST(PmaPointTest, InsertAndHas) {
  TypeParam p;
  EXPECT_TRUE(p.insert(42));
  EXPECT_FALSE(p.insert(42));
  EXPECT_TRUE(p.has(42));
  EXPECT_FALSE(p.has(41));
  EXPECT_EQ(p.size(), 1u);
  expect_invariants(p);
}

TYPED_TEST(PmaPointTest, RemoveExistingAndAbsent) {
  TypeParam p;
  p.insert(1);
  p.insert(2);
  p.insert(3);
  EXPECT_TRUE(p.remove(2));
  EXPECT_FALSE(p.remove(2));
  EXPECT_FALSE(p.remove(99));
  EXPECT_EQ(p.size(), 2u);
  EXPECT_TRUE(p.has(1));
  EXPECT_FALSE(p.has(2));
  EXPECT_TRUE(p.has(3));
  expect_invariants(p);
}

TYPED_TEST(PmaPointTest, ZeroKeyIsSupported) {
  TypeParam p;
  EXPECT_FALSE(p.has(0));
  EXPECT_TRUE(p.insert(0));
  EXPECT_FALSE(p.insert(0));
  EXPECT_TRUE(p.has(0));
  EXPECT_EQ(p.size(), 1u);
  EXPECT_EQ(p.min(), 0u);
  p.insert(10);
  EXPECT_EQ(p.min(), 0u);
  EXPECT_EQ(p.successor(0).value(), 0u);
  EXPECT_TRUE(p.remove(0));
  EXPECT_FALSE(p.remove(0));
  EXPECT_EQ(p.min(), 10u);
  expect_invariants(p);
}

TYPED_TEST(PmaPointTest, ManyInsertsTriggerGrowth) {
  TypeParam p;
  const uint64_t n = 20000;
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(p.insert(i * 7 + 1));
  }
  EXPECT_EQ(p.size(), n);
  expect_invariants(p);
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(p.has(i * 7 + 1)) << i;
  }
  EXPECT_FALSE(p.has(2));  // 2 mod 7 != 1
}

TYPED_TEST(PmaPointTest, DescendingInsertsExerciseHeadPath) {
  TypeParam p;
  const uint64_t n = 5000;
  for (uint64_t i = n; i > 0; --i) {
    ASSERT_TRUE(p.insert(i * 3));
  }
  EXPECT_EQ(p.size(), n);
  EXPECT_EQ(p.min(), 3u);
  EXPECT_EQ(p.max(), n * 3);
  expect_invariants(p);
}

TYPED_TEST(PmaPointTest, RemoveAllTriggersShrink) {
  TypeParam p;
  const uint64_t n = 20000;
  std::vector<uint64_t> keys;
  Rng r(4);
  for (uint64_t i = 0; i < n; ++i) keys.push_back(1 + r.next() % (1ull << 40));
  for (uint64_t k : keys) p.insert(k);
  uint64_t bytes_full = p.total_bytes();
  for (uint64_t k : keys) p.remove(k);
  EXPECT_EQ(p.size(), 0u);
  EXPECT_LT(p.total_bytes(), bytes_full);
  expect_invariants(p);
  // Structure stays usable after draining.
  EXPECT_TRUE(p.insert(123));
  EXPECT_TRUE(p.has(123));
}

TYPED_TEST(PmaPointTest, SuccessorQueries) {
  TypeParam p;
  for (uint64_t k : {10, 20, 30, 1000}) p.insert(k);
  EXPECT_EQ(p.successor(1).value(), 10u);
  EXPECT_EQ(p.successor(10).value(), 10u);
  EXPECT_EQ(p.successor(11).value(), 20u);
  EXPECT_EQ(p.successor(31).value(), 1000u);
  EXPECT_FALSE(p.successor(1001).has_value());
}

TYPED_TEST(PmaPointTest, MinMaxSum) {
  TypeParam p;
  p.insert(5);
  p.insert(500);
  p.insert(50);
  EXPECT_EQ(p.min(), 5u);
  EXPECT_EQ(p.max(), 500u);
  EXPECT_EQ(p.sum(), 555u);
}

TYPED_TEST(PmaPointTest, MapVisitsAllInOrder) {
  TypeParam p;
  std::vector<uint64_t> keys{9, 4, 7, 2, 100, 55};
  for (uint64_t k : keys) p.insert(k);
  std::sort(keys.begin(), keys.end());
  std::vector<uint64_t> seen;
  p.map([&](uint64_t k) { seen.push_back(k); });
  EXPECT_EQ(seen, keys);
}

TYPED_TEST(PmaPointTest, IteratorMatchesMap) {
  TypeParam p;
  Rng r(6);
  std::set<uint64_t> ref;
  for (int i = 0; i < 3000; ++i) {
    uint64_t k = r.next() % 100000;
    p.insert(k);
    ref.insert(k);
  }
  std::vector<uint64_t> want(ref.begin(), ref.end());
  std::vector<uint64_t> seen;
  for (uint64_t k : p) seen.push_back(k);
  EXPECT_EQ(seen, want);
}

TYPED_TEST(PmaPointTest, MapRangeBounds) {
  TypeParam p;
  for (uint64_t i = 1; i <= 100; ++i) p.insert(i * 10);
  std::vector<uint64_t> seen;
  p.map_range([&](uint64_t k) { seen.push_back(k); }, 95, 305);
  std::vector<uint64_t> want;
  for (uint64_t i = 1; i <= 100; ++i) {
    if (i * 10 >= 95 && i * 10 < 305) want.push_back(i * 10);
  }
  EXPECT_EQ(seen, want);
}

TYPED_TEST(PmaPointTest, MapRangeEmptyAndDegenerate) {
  TypeParam p;
  for (uint64_t k : {10, 20, 30}) p.insert(k);
  int count = 0;
  p.map_range([&](uint64_t) { ++count; }, 50, 40);  // start >= end
  EXPECT_EQ(count, 0);
  p.map_range([&](uint64_t) { ++count; }, 11, 12);  // no keys inside
  EXPECT_EQ(count, 0);
  p.map_range([&](uint64_t) { ++count; }, 31, 1000);  // past the end
  EXPECT_EQ(count, 0);
}

TYPED_TEST(PmaPointTest, MapRangeLength) {
  TypeParam p;
  for (uint64_t i = 1; i <= 50; ++i) p.insert(i);
  std::vector<uint64_t> seen;
  uint64_t applied =
      p.map_range_length([&](uint64_t k) { seen.push_back(k); }, 10, 5);
  EXPECT_EQ(applied, 5u);
  EXPECT_EQ(seen, (std::vector<uint64_t>{10, 11, 12, 13, 14}));
  // Asking for more than available stops at the end.
  seen.clear();
  applied = p.map_range_length([&](uint64_t k) { seen.push_back(k); }, 48, 10);
  EXPECT_EQ(applied, 3u);
  EXPECT_EQ(seen, (std::vector<uint64_t>{48, 49, 50}));
}

TYPED_TEST(PmaPointTest, ParallelMapVisitsEverything) {
  TypeParam p;
  const uint64_t n = 50000;
  for (uint64_t i = 1; i <= n; ++i) p.insert(i);
  std::atomic<uint64_t> total{0};
  std::atomic<uint64_t> count{0};
  p.parallel_map([&](uint64_t k) {
    total.fetch_add(k, std::memory_order_relaxed);
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), n);
  EXPECT_EQ(total.load(), n * (n + 1) / 2);
  EXPECT_EQ(p.sum(), n * (n + 1) / 2);
}

TYPED_TEST(PmaPointTest, BuildFromRangeConstructor) {
  std::vector<uint64_t> keys{5, 3, 9, 3, 1, 5, 7};  // dups + unsorted
  TypeParam p(keys.data(), keys.data() + keys.size());
  EXPECT_EQ(p.size(), 5u);
  std::vector<uint64_t> seen;
  p.map([&](uint64_t k) { seen.push_back(k); });
  EXPECT_EQ(seen, (std::vector<uint64_t>{1, 3, 5, 7, 9}));
  expect_invariants(p);
}

TYPED_TEST(PmaPointTest, GetSizeTracksGrowth) {
  TypeParam p;
  uint64_t initial = p.get_size();
  for (uint64_t i = 1; i <= 100000; ++i) p.insert(i * 11);
  EXPECT_GT(p.get_size(), initial);
}

TYPED_TEST(PmaPointTest, RandomizedAgainstStdSet) {
  TypeParam p;
  std::set<uint64_t> ref;
  Rng r(99);
  for (int step = 0; step < 30000; ++step) {
    uint64_t k = r.next() % 5000;  // dense space => frequent collisions
    if (r.next() % 3 != 0) {
      EXPECT_EQ(p.insert(k), ref.insert(k).second);
    } else {
      EXPECT_EQ(p.remove(k), ref.erase(k) == 1);
    }
    if (step % 5000 == 4999) {
      ASSERT_EQ(p.size(), ref.size());
      expect_invariants(p);
      std::vector<uint64_t> want(ref.begin(), ref.end());
      std::vector<uint64_t> seen;
      p.map([&](uint64_t kk) { seen.push_back(kk); });
      ASSERT_EQ(seen, want);
    }
  }
}

TYPED_TEST(PmaPointTest, AllScanApisAgree) {
  // map, parallel_map, iterators, sum, and map_range over the full span must
  // observe identical content.
  TypeParam p;
  Rng r(55);
  for (int i = 0; i < 20000; ++i) p.insert(r.next() % (1ull << 40));
  p.insert(0);  // include the out-of-band key

  std::vector<uint64_t> via_map;
  p.map([&](uint64_t k) { via_map.push_back(k); });

  std::vector<uint64_t> via_iter(p.begin(), p.end());
  EXPECT_EQ(via_iter, via_map);

  std::vector<uint64_t> via_range;
  p.map_range([&](uint64_t k) { via_range.push_back(k); }, 0, ~uint64_t{0});
  EXPECT_EQ(via_range, via_map);

  std::atomic<uint64_t> pm_sum{0}, pm_count{0};
  p.parallel_map([&](uint64_t k) {
    pm_sum.fetch_add(k, std::memory_order_relaxed);
    pm_count.fetch_add(1, std::memory_order_relaxed);
  });
  uint64_t map_sum = 0;
  for (uint64_t k : via_map) map_sum += k;
  EXPECT_EQ(pm_count.load(), via_map.size());
  EXPECT_EQ(pm_sum.load(), map_sum);
  EXPECT_EQ(p.sum(), map_sum);
  EXPECT_EQ(p.size(), via_map.size());
}

TYPED_TEST(PmaPointTest, MapRangeSliceSweepCoversWholeSet) {
  // Partition the key space into slices; the union of map_range over the
  // slices must equal one full scan, regardless of slice alignment.
  TypeParam p;
  Rng r(56);
  for (int i = 0; i < 30000; ++i) p.insert(1 + r.next() % (1ull << 30));
  std::vector<uint64_t> whole;
  p.map([&](uint64_t k) { whole.push_back(k); });
  for (uint64_t slices : {3ull, 16ull, 101ull}) {
    std::vector<uint64_t> pieced;
    uint64_t span = (uint64_t{1} << 30) / slices + 1;
    for (uint64_t s = 0; s <= slices; ++s) {
      p.map_range([&](uint64_t k) { pieced.push_back(k); }, s * span,
                  (s + 1) * span);
    }
    ASSERT_EQ(pieced, whole) << "slices=" << slices;
  }
}

TYPED_TEST(PmaPointTest, SuccessorChainsEnumerateTheSet) {
  TypeParam p;
  std::set<uint64_t> ref;
  Rng r(57);
  for (int i = 0; i < 5000; ++i) {
    uint64_t k = 1 + r.next() % (1ull << 40);
    p.insert(k);
    ref.insert(k);
  }
  // Walking successor(prev+1) from 0 must enumerate exactly the set.
  std::vector<uint64_t> walked;
  uint64_t cur = 0;
  while (true) {
    auto nxt = p.successor(cur);
    if (!nxt) break;
    walked.push_back(*nxt);
    if (*nxt == ~uint64_t{0}) break;
    cur = *nxt + 1;
  }
  EXPECT_EQ(walked, std::vector<uint64_t>(ref.begin(), ref.end()));
}

// CPMA-specific: compression should make the structure much smaller than the
// uncompressed PMA on dense keys.
TEST(CpmaSpace, SmallerThanPmaOnDenseKeys) {
  PMA p;
  CPMA c;
  for (uint64_t i = 1; i <= 200000; ++i) {
    p.insert(i);
    c.insert(i);
  }
  EXPECT_LT(c.get_size() * 2, p.get_size());
}

TEST(CpmaSpace, GrowthFactorAffectsFootprint) {
  cpma::pma::PmaSettings small_g;
  small_g.growth_factor = 1.1;
  cpma::pma::PmaSettings big_g;
  big_g.growth_factor = 2.0;
  CPMA a(small_g), b(big_g);
  Rng r(13);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 300000; ++i) keys.push_back(1 + r.next() % (1ull << 40));
  // Any single point in time can favor either factor (the array size
  // oscillates within a growth cycle); the AVERAGE footprint must favor the
  // smaller growth factor (Appendix C, Figure 12).
  double avg_a = 0, avg_b = 0;
  int samples = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    a.insert(keys[i]);
    b.insert(keys[i]);
    if (i % 10000 == 9999) {
      avg_a += static_cast<double>(a.total_bytes());
      avg_b += static_cast<double>(b.total_bytes());
      ++samples;
    }
  }
  EXPECT_LT(avg_a / samples, avg_b / samples);
}
