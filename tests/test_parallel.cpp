// Tests for the fork-join scheduler and parallel primitives: correctness of
// fork2, parallel_for, reduce, scan, merge, sort, worker-local storage, and
// the sorted-sequence helpers under real parallelism.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "parallel/merge.hpp"
#include "parallel/reduce.hpp"
#include "parallel/scan.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/seq_ops.hpp"
#include "parallel/sort.hpp"
#include "parallel/worker_local.hpp"
#include "util/random.hpp"

namespace par = cpma::par;
using cpma::util::Rng;

TEST(Scheduler, Fork2RunsBothBranches) {
  std::atomic<int> ran{0};
  par::fork2([&] { ran.fetch_add(1); }, [&] { ran.fetch_add(2); });
  EXPECT_EQ(ran.load(), 3);
}

TEST(Scheduler, NestedForkJoin) {
  std::atomic<int> ran{0};
  par::fork2(
      [&] {
        par::fork2([&] { ran.fetch_add(1); }, [&] { ran.fetch_add(10); });
      },
      [&] {
        par::fork2([&] { ran.fetch_add(100); }, [&] { ran.fetch_add(1000); });
      });
  EXPECT_EQ(ran.load(), 1111);
}

TEST(Scheduler, DeepRecursionSum) {
  // Recursive fork tree computing a sum; exercises steal-while-wait joins.
  std::function<uint64_t(uint64_t, uint64_t)> sum_range =
      [&](uint64_t lo, uint64_t hi) -> uint64_t {
    if (hi - lo <= 64) {
      uint64_t s = 0;
      for (uint64_t i = lo; i < hi; ++i) s += i;
      return s;
    }
    uint64_t mid = lo + (hi - lo) / 2, left = 0, right = 0;
    par::fork2([&] { left = sum_range(lo, mid); },
               [&] { right = sum_range(mid, hi); });
    return left + right;
  };
  const uint64_t n = 1 << 18;
  EXPECT_EQ(sum_range(0, n), n * (n - 1) / 2);
}

TEST(ParallelFor, CoversAllIndicesExactlyOnce) {
  const uint64_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  par::parallel_for(0, n, [&](uint64_t i) { hits[i].fetch_add(1); });
  for (uint64_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, EmptyRange) {
  int ran = 0;
  par::parallel_for(5, 5, [&](uint64_t) { ++ran; });
  EXPECT_EQ(ran, 0);
}

TEST(ParallelFor, ExplicitGrainOne) {
  std::atomic<uint64_t> total{0};
  par::parallel_for(0, 1000, [&](uint64_t i) { total.fetch_add(i); }, 1);
  EXPECT_EQ(total.load(), 999u * 1000 / 2);
}

TEST(Reduce, SumMatchesSerial) {
  const uint64_t n = 1 << 20;
  uint64_t got = par::parallel_sum<uint64_t>(
      0, n, [](uint64_t i) { return i * 3 + 1; });
  uint64_t want = 0;
  for (uint64_t i = 0; i < n; ++i) want += i * 3 + 1;
  EXPECT_EQ(got, want);
}

TEST(Reduce, MaxWithCustomCombine) {
  std::vector<uint64_t> v(100000);
  Rng r(3);
  for (auto& x : v) x = r.next();
  uint64_t got = par::parallel_reduce<uint64_t>(
      0, v.size(), 0, [&](uint64_t i) { return v[i]; },
      [](uint64_t a, uint64_t b) { return std::max(a, b); });
  EXPECT_EQ(got, *std::max_element(v.begin(), v.end()));
}

TEST(Scan, ExclusiveScanMatchesSerial) {
  for (uint64_t n : {0ull, 1ull, 5ull, 4096ull, 100000ull}) {
    std::vector<uint64_t> v(n), want(n);
    Rng r(n + 1);
    for (auto& x : v) x = r.next() % 100;
    uint64_t acc = 0;
    for (uint64_t i = 0; i < n; ++i) {
      want[i] = acc;
      acc += v[i];
    }
    uint64_t total = par::exclusive_scan_inplace(v);
    EXPECT_EQ(total, acc);
    EXPECT_EQ(v, want);
  }
}

TEST(Merge, MatchesStdMerge) {
  Rng r(17);
  for (uint64_t na : {0ull, 10ull, 1000ull, 50000ull}) {
    for (uint64_t nb : {0ull, 7ull, 30000ull}) {
      std::vector<uint64_t> a(na), b(nb);
      for (auto& x : a) x = r.next() % 100000;
      for (auto& x : b) x = r.next() % 100000;
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      std::vector<uint64_t> got(na + nb), want(na + nb);
      par::parallel_merge(a.data(), na, b.data(), nb, got.data(), 64);
      std::merge(a.begin(), a.end(), b.begin(), b.end(), want.begin());
      EXPECT_EQ(got, want);
    }
  }
}

TEST(Sort, MatchesStdSort) {
  Rng r(23);
  for (uint64_t n : {0ull, 1ull, 2ull, 100ull, 10000ull, 300000ull}) {
    std::vector<uint64_t> v(n);
    for (auto& x : v) x = r.next();
    std::vector<uint64_t> want = v;
    std::sort(want.begin(), want.end());
    par::parallel_sort(v.data(), n, 512);
    EXPECT_EQ(v, want);
  }
}

TEST(Sort, AlreadySortedAndReversed) {
  std::vector<uint64_t> v(100000);
  std::iota(v.begin(), v.end(), 0);
  std::vector<uint64_t> want = v;
  par::parallel_sort(v.data(), v.size(), 512);
  EXPECT_EQ(v, want);
  std::reverse(v.begin(), v.end());
  par::parallel_sort(v.data(), v.size(), 512);
  EXPECT_EQ(v, want);
}

TEST(WorkerLocal, AccumulatesAcrossWorkers) {
  par::WorkerLocal<std::vector<uint64_t>> wl;
  const uint64_t n = 100000;
  par::parallel_for(0, n, [&](uint64_t i) { wl.local().push_back(i); });
  auto all = wl.combined<std::vector<uint64_t>>();
  ASSERT_EQ(all.size(), n);
  std::sort(all.begin(), all.end());
  for (uint64_t i = 0; i < n; ++i) EXPECT_EQ(all[i], i);
}

TEST(SeqOps, DedupeSortedSmallAndLarge) {
  for (uint64_t n : {0ull, 1ull, 100ull, 100000ull}) {
    Rng r(n + 5);
    std::vector<uint64_t> v(n);
    for (auto& x : v) x = r.next() % (n / 2 + 1);
    std::sort(v.begin(), v.end());
    std::vector<uint64_t> want = v;
    want.erase(std::unique(want.begin(), want.end()), want.end());
    par::dedupe_sorted(v);
    EXPECT_EQ(v, want);
  }
}

TEST(SeqOps, MergeDedupe) {
  std::vector<uint64_t> a{1, 3, 5, 7}, b{3, 4, 5, 9};
  auto got = par::merge_dedupe(a, b);
  std::vector<uint64_t> want{1, 3, 4, 5, 7, 9};
  EXPECT_EQ(got, want);
}

TEST(SeqOps, SortedDifferenceMatchesStdOnUniqueInputs) {
  // Library contract: `a` sorted unique (PMA contents), `b` sorted unique.
  Rng r(31);
  for (uint64_t n : {0ull, 100ull, 100000ull}) {
    std::vector<uint64_t> a(n), b(n / 2);
    for (auto& x : a) x = r.next() % (n + 1);
    for (auto& x : b) x = r.next() % (n + 1);
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
    std::sort(b.begin(), b.end());
    b.erase(std::unique(b.begin(), b.end()), b.end());
    auto got = par::sorted_difference(a, b);
    std::vector<uint64_t> want;
    std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(want));
    EXPECT_EQ(got, want);
  }
}

TEST(SeqOps, MergeUniqueMatchesSetUnion) {
  Rng r(41);
  for (uint64_t na : {0ull, 1ull, 100ull, 200000ull}) {
    for (uint64_t nb : {0ull, 7ull, 150000ull}) {
      std::vector<uint64_t> a(na), b(nb);
      for (auto& x : a) x = r.next() % (na + nb + 1);
      for (auto& x : b) x = r.next() % (na + nb + 1);
      std::sort(a.begin(), a.end());
      a.erase(std::unique(a.begin(), a.end()), a.end());  // a must be unique
      std::sort(b.begin(), b.end());                      // b may have dups
      cpma::util::uvector<uint64_t> got;
      par::merge_unique(a.data(), a.size(), b.data(), nb, got);
      std::set<uint64_t> want_set(a.begin(), a.end());
      want_set.insert(b.begin(), b.end());
      std::vector<uint64_t> want(want_set.begin(), want_set.end());
      ASSERT_EQ(std::vector<uint64_t>(got.begin(), got.end()), want)
          << "na=" << na << " nb=" << nb;
    }
  }
}

TEST(SeqOps, MergeUniqueDuplicateRunsAtChunkBoundaries) {
  // All b-values equal: exercises the duplicate-skip loops and boundary
  // routing in the chunked merge.
  std::vector<uint64_t> a(100000);
  for (size_t i = 0; i < a.size(); ++i) a[i] = i * 2;
  std::vector<uint64_t> b(5000, 99999);  // odd: not in a
  cpma::util::uvector<uint64_t> got;
  par::merge_unique(a.data(), a.size(), b.data(), b.size(), got);
  EXPECT_EQ(got.size(), a.size() + 1);
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
}

TEST(SeqOps, SortedDifferenceRemovesAllOccurrences) {
  // With duplicates in `a`, every occurrence matching `b` is dropped (unlike
  // std::set_difference's multiset counting).
  std::vector<uint64_t> a{1, 2, 2, 3, 3, 3, 4};
  std::vector<uint64_t> b{2, 3};
  auto got = par::sorted_difference(a, b);
  EXPECT_EQ(got, (std::vector<uint64_t>{1, 4}));
}

TEST(Scheduler, SetNumWorkersChangesPoolSize) {
  par::Scheduler::set_num_workers(2);
#if defined(CPMA_FORCE_SERIAL)
  // CPMA_PARALLEL=OFF builds clamp every request to one worker.
  EXPECT_EQ(par::Scheduler::instance().num_workers(), 1u);
#else
  EXPECT_EQ(par::Scheduler::instance().num_workers(), 2u);
#endif
  std::atomic<uint64_t> total{0};
  par::parallel_for(0, 10000, [&](uint64_t i) { total.fetch_add(i); });
  EXPECT_EQ(total.load(), 9999u * 10000 / 2);
  par::Scheduler::set_num_workers(0);  // clamps to 1
  EXPECT_EQ(par::Scheduler::instance().num_workers(), 1u);
  total = 0;
  par::parallel_for(0, 1000, [&](uint64_t i) { total.fetch_add(i); });
  EXPECT_EQ(total.load(), 999u * 1000 / 2);
  par::Scheduler::set_num_workers(std::thread::hardware_concurrency());
}

TEST(Scheduler, StressManySmallParallelLoops) {
  // Repeated small regions exercise pool wake/sleep transitions.
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> c{0};
    par::parallel_for(0, 64, [&](uint64_t) { c.fetch_add(1); }, 1);
    ASSERT_EQ(c.load(), 64);
  }
}

TEST(Scheduler, NoLostWakeupOnIdleToWorkTransition) {
  // Regression: push_local once raced notify_work against the worker's
  // sleep-decision (sleepers_ incremented after the empty check, notify
  // issued without the sleep mutex), so a job pushed into an all-idle pool
  // could wait out a full sleep timeout before running. Drive many
  // idle->work transitions with deliberate idle gaps and require prompt
  // completion: under the fixed Dekker handshake each region finishes in
  // microseconds; a lost wakeup costs a visible timeout per region.
  par::Scheduler::set_num_workers(4);
  const auto start = std::chrono::steady_clock::now();
  for (int round = 0; round < 300; ++round) {
    // Let every worker drain and go to sleep.
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    std::atomic<int> c{0};
    par::parallel_for(0, 8, [&](uint64_t) { c.fetch_add(1); }, 1);
    ASSERT_EQ(c.load(), 8) << "round " << round;
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // 300 * 200us idle gaps ~ 60ms of deliberate sleeping; generous headroom
  // for CI noise. Systematic lost wakeups (1ms timeout x 300 rounds) blow
  // well past this.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            5000);
  par::Scheduler::set_num_workers(std::thread::hardware_concurrency());
}

TEST(Scheduler, ParticipantIdsAreDenseUniqueAndRecycled) {
  const unsigned mine = par::Scheduler::participant_id();
  EXPECT_LT(mine, par::Scheduler::kMaxParticipants);
  // Stable within a thread.
  EXPECT_EQ(par::Scheduler::participant_id(), mine);

  // Concurrent threads get distinct ids.
  const int n = 16;
  std::vector<unsigned> ids(n);
  {
    std::vector<std::thread> threads;
    std::atomic<int> ready{0};
    for (int t = 0; t < n; ++t) {
      threads.emplace_back([&, t]() {
        ids[t] = par::Scheduler::participant_id();
        ready.fetch_add(1);
        // Hold the slot until every thread has claimed one, so ids are
        // provably concurrent-distinct (no recycling during the overlap).
        while (ready.load() < n) std::this_thread::yield();
      });
    }
    for (auto& th : threads) th.join();
  }
  std::set<unsigned> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), static_cast<size_t>(n));
  for (unsigned id : ids) {
    EXPECT_LT(id, par::Scheduler::kMaxParticipants);
    EXPECT_NE(id, mine);
  }

  // Exited threads' slots are recycled: another wave must fit inside the
  // union of the first wave's ids plus at most n fresh ones, never growing
  // without bound.
  std::vector<unsigned> second(n);
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < n; ++t) {
      threads.emplace_back(
          [&, t]() { second[t] = par::Scheduler::participant_id(); });
      threads.back().join();
    }
  }
  for (unsigned id : second) {
    EXPECT_LT(id, mine + 2 * n + 2) << "slots not recycled";
  }
}

TEST(Scheduler, SiblingTasksWithInnerParallelism) {
  // The sharded router's shape: S sibling top-level tasks (grain 1), each
  // running its own parallel_for / parallel_sum / parallel_sort underneath.
  // A worker suspended at one sibling's join must steal and complete other
  // siblings' subtasks without corrupting either computation.
  const uint64_t siblings = 8;
  std::vector<uint64_t> sums(siblings, 0);
  std::vector<std::vector<uint64_t>> sorted(siblings);
  par::parallel_for(0, siblings, [&](uint64_t s) {
    const uint64_t n = 20'000 + 1'000 * s;
    sums[s] = par::parallel_sum<uint64_t>(
        0, n, [](uint64_t i) { return i; }, 512);
    Rng r(s + 1);
    std::vector<uint64_t>& v = sorted[s];
    v.resize(n);
    for (auto& x : v) x = r.next();
    par::parallel_sort(v.data(), v.size(), 1024);
  }, 1);
  for (uint64_t s = 0; s < siblings; ++s) {
    const uint64_t n = 20'000 + 1'000 * s;
    EXPECT_EQ(sums[s], (n - 1) * n / 2) << "sibling " << s;
    EXPECT_TRUE(std::is_sorted(sorted[s].begin(), sorted[s].end()))
        << "sibling " << s;
    EXPECT_EQ(sorted[s].size(), n);
  }
}

TEST(Scheduler, NestedSiblingBatchesDisjointState) {
  // Sibling tasks each mutate their own accumulation buffers through nested
  // parallel loops — the isolation contract the per-shard BatchContexts
  // rely on.
  const uint64_t siblings = 6;
  std::vector<std::vector<uint64_t>> hist(siblings);
  par::parallel_for(0, siblings, [&](uint64_t s) {
    auto& h = hist[s];
    h.assign(64, 0);
    for (int round = 0; round < 4; ++round) {
      std::vector<uint64_t> local(64, 0);
      par::parallel_for(0, 64, [&](uint64_t b) {
        uint64_t acc = 0;
        for (uint64_t i = 0; i < 1'000; ++i) acc += (b * 1'000 + i) % 64;
        local[b] = acc;
      }, 1);
      for (uint64_t b = 0; b < 64; ++b) h[b] += local[b];
    }
  }, 1);
  for (uint64_t s = 1; s < siblings; ++s) {
    ASSERT_EQ(hist[s], hist[0]) << "sibling " << s << " diverged";
  }
}
