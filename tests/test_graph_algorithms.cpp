// Tests for PR / CC / BC: serial reference implementations on adjacency
// lists, compared against the parallel Ligra-style implementations running
// on every graph container.
#include <gtest/gtest.h>

#include <cmath>
#include <queue>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/csr.hpp"
#include "graph/fgraph.hpp"
#include "graph/generators.hpp"
#include "graph/tree_graphs.hpp"

using namespace cpma::graph;

namespace {

std::vector<std::vector<vertex_t>> adjacency(vertex_t n,
                                             const std::vector<uint64_t>& es) {
  std::vector<std::vector<vertex_t>> adj(n);
  for (uint64_t e : es) adj[edge_src(e)].push_back(edge_dst(e));
  return adj;
}

std::vector<double> pagerank_ref(const std::vector<std::vector<vertex_t>>& adj,
                                 int iters = 10, double damp = 0.85) {
  const size_t n = adj.size();
  std::vector<double> rank(n, 1.0 / n), contrib(n), next(n);
  for (int it = 0; it < iters; ++it) {
    for (size_t v = 0; v < n; ++v) {
      contrib[v] = adj[v].empty() ? 0 : rank[v] / adj[v].size();
    }
    for (size_t v = 0; v < n; ++v) {
      double acc = 0;
      for (vertex_t u : adj[v]) acc += contrib[u];
      next[v] = (1.0 - damp) / n + damp * acc;
    }
    std::swap(rank, next);
  }
  return rank;
}

// Reference CC: BFS labeling with the minimum vertex id per component.
std::vector<vertex_t> cc_ref(const std::vector<std::vector<vertex_t>>& adj) {
  const vertex_t n = static_cast<vertex_t>(adj.size());
  std::vector<vertex_t> label(n, n);
  for (vertex_t s = 0; s < n; ++s) {
    if (label[s] != n) continue;
    std::queue<vertex_t> q;
    q.push(s);
    label[s] = s;
    while (!q.empty()) {
      vertex_t u = q.front();
      q.pop();
      for (vertex_t v : adj[u]) {
        if (label[v] == n) {
          label[v] = s;
          q.push(v);
        }
      }
    }
  }
  return label;
}

// Reference BC from one source (serial Brandes).
std::vector<double> bc_ref(const std::vector<std::vector<vertex_t>>& adj,
                           vertex_t s) {
  const vertex_t n = static_cast<vertex_t>(adj.size());
  std::vector<int32_t> depth(n, -1);
  std::vector<double> sigma(n, 0), delta(n, 0);
  std::vector<vertex_t> order;
  std::queue<vertex_t> q;
  depth[s] = 0;
  sigma[s] = 1;
  q.push(s);
  while (!q.empty()) {
    vertex_t u = q.front();
    q.pop();
    order.push_back(u);
    for (vertex_t v : adj[u]) {
      if (depth[v] == -1) {
        depth[v] = depth[u] + 1;
        q.push(v);
      }
      if (depth[v] == depth[u] + 1) sigma[v] += sigma[u];
    }
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    vertex_t u = *it;
    for (vertex_t v : adj[u]) {
      if (depth[v] == depth[u] + 1) {
        delta[u] += (sigma[u] / sigma[v]) * (1.0 + delta[v]);
      }
    }
  }
  delta[s] = 0;
  return delta;
}

struct TestGraphData {
  vertex_t n;
  std::vector<uint64_t> edges;
  std::vector<std::vector<vertex_t>> adj;
};

TestGraphData make_rmat(uint32_t scale, uint64_t m, uint64_t seed) {
  TestGraphData d;
  d.n = 1 << scale;
  d.edges = symmetrize(rmat_edges(scale, m, seed));
  d.adj = adjacency(d.n, d.edges);
  return d;
}

}  // namespace

template <typename G>
class AlgoTest : public ::testing::Test {};

using GraphTypes = ::testing::Types<FGraph, CPacGraph, AspenGraph, Csr>;
TYPED_TEST_SUITE(AlgoTest, GraphTypes);

TYPED_TEST(AlgoTest, PageRankMatchesReference) {
  auto d = make_rmat(10, 30000, 21);
  TypeParam g(d.n, d.edges);
  auto got = pagerank(g);
  auto want = pagerank_ref(d.adj);
  ASSERT_EQ(got.size(), want.size());
  for (size_t v = 0; v < want.size(); ++v) {
    ASSERT_NEAR(got[v], want[v], 1e-9) << "vertex " << v;
  }
}

TYPED_TEST(AlgoTest, ConnectedComponentsMatchReference) {
  auto d = make_rmat(10, 8000, 22);  // sparse => several components
  TypeParam g(d.n, d.edges);
  auto got = connected_components(g);
  auto want = cc_ref(d.adj);
  // Labels must induce the same partition (the representatives may differ).
  ASSERT_EQ(got.size(), want.size());
  std::map<vertex_t, vertex_t> got2want;
  for (size_t v = 0; v < want.size(); ++v) {
    auto it = got2want.find(got[v]);
    if (it == got2want.end()) {
      got2want[got[v]] = want[v];
    } else {
      ASSERT_EQ(it->second, want[v]) << "vertex " << v;
    }
  }
  // And the inverse direction: same number of components.
  std::set<vertex_t> gc(got.begin(), got.end()), wc(want.begin(), want.end());
  EXPECT_EQ(gc.size(), wc.size());
}

TYPED_TEST(AlgoTest, BetweennessMatchesReference) {
  auto d = make_rmat(9, 15000, 23);
  TypeParam g(d.n, d.edges);
  // Pick a source inside the giant component (vertex with max degree).
  vertex_t src = 0;
  for (vertex_t v = 0; v < d.n; ++v) {
    if (d.adj[v].size() > d.adj[src].size()) src = v;
  }
  auto got = betweenness_centrality(g, src);
  auto want = bc_ref(d.adj, src);
  ASSERT_EQ(got.size(), want.size());
  for (size_t v = 0; v < want.size(); ++v) {
    ASSERT_NEAR(got[v], want[v], 1e-6 * (1.0 + std::abs(want[v])))
        << "vertex " << v;
  }
}

TYPED_TEST(AlgoTest, PageRankSumsToOne) {
  auto d = make_rmat(10, 40000, 24);
  TypeParam g(d.n, d.edges);
  auto pr = pagerank(g);
  double total = 0;
  for (double r : pr) total += r;
  // With no dangling redistribution the sum decays slightly below 1; it must
  // stay in (0.5, 1.0001] and match the reference exactly (checked above).
  EXPECT_GT(total, 0.5);
  EXPECT_LT(total, 1.0001);
}

TYPED_TEST(AlgoTest, CCOnDisconnectedSingletons) {
  TypeParam g(16, std::vector<uint64_t>{edge_key(0, 1), edge_key(1, 0)});
  auto cc = connected_components(g);
  EXPECT_EQ(cc[0], cc[1]);
  std::set<vertex_t> labels(cc.begin(), cc.end());
  EXPECT_EQ(labels.size(), 15u);  // {0,1} together + 14 singletons
}

TEST(AlgoCrossContainer, AllContainersAgreeOnPR) {
  auto d = make_rmat(10, 25000, 25);
  FGraph f(d.n, d.edges);
  CPacGraph c(d.n, d.edges);
  AspenGraph a(d.n, d.edges);
  auto pf = pagerank(f), pc = pagerank(c), pa = pagerank(a);
  for (size_t v = 0; v < pf.size(); ++v) {
    ASSERT_NEAR(pf[v], pc[v], 1e-12);
    ASSERT_NEAR(pf[v], pa[v], 1e-12);
  }
}

TEST(AlgoDynamic, PRTracksGraphUpdates) {
  // After a batch of inserts, PR on the dynamic graph equals PR on a fresh
  // CSR of the final edge set.
  auto d1 = make_rmat(9, 10000, 26);
  FGraph f(d1.n, d1.edges);
  auto extra = symmetrize(rmat_edges(9, 5000, 27));
  f.insert_edges(extra);
  std::vector<uint64_t> all = d1.edges;
  all.insert(all.end(), extra.begin(), extra.end());
  all = symmetrize(all);
  Csr csr(d1.n, all);
  auto pf = pagerank(f), pcsr = pagerank(csr);
  for (size_t v = 0; v < pf.size(); ++v) ASSERT_NEAR(pf[v], pcsr[v], 1e-12);
}
