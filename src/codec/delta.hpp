// Delta encoding of sorted key sequences on top of the varint byte codes.
// Helpers here operate on whole buffers; the CPMA's compressed leaf policy
// does its own streaming passes but shares varint_* for the byte format.
#pragma once

#include <cstdint>
#include <vector>

#include "codec/varint.hpp"

namespace cpma::codec {

// Encodes sorted, strictly-increasing keys[0..n) as
//   head (raw 8 bytes implicit to the caller) + varint deltas.
// This helper encodes relative to `previous` (pass keys[0] and start at i=1
// for the leaf layout). Appends to out.
inline void delta_encode_append(const uint64_t* keys, size_t n,
                                uint64_t previous, std::vector<uint8_t>& out) {
  uint8_t tmp[kMaxVarintBytes];
  for (size_t i = 0; i < n; ++i) {
    uint64_t delta = keys[i] - previous;
    size_t len = varint_encode(delta, tmp);
    out.insert(out.end(), tmp, tmp + len);
    previous = keys[i];
  }
}

// Total encoded size of the deltas of keys[0..n) relative to `previous`.
inline size_t delta_encoded_size(const uint64_t* keys, size_t n,
                                 uint64_t previous) {
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += varint_size(keys[i] - previous);
    previous = keys[i];
  }
  return total;
}

// Decodes `bytes` of delta stream starting after value `previous`, appending
// absolute keys to out. Stops after `bytes` bytes.
inline void delta_decode_append(const uint8_t* src, size_t bytes,
                                uint64_t previous,
                                std::vector<uint64_t>& out) {
  size_t pos = 0;
  while (pos < bytes) {
    uint64_t delta;
    pos += varint_decode(src + pos, &delta);
    previous += delta;
    out.push_back(previous);
  }
}

}  // namespace cpma::codec
