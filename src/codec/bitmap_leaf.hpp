// Compressed-bitmap leaf body (Concise/WAH-flavored) for dense key runs.
//
// A dense run costs ~1 byte per key as byte-varint deltas but ~1 bit per key
// as a bitmap. This header holds the body primitives the adaptive leaf
// (pma/leaf_adaptive.hpp) dispatches to when a leaf's format tag says
// "bitmap"; it knows nothing about the leaf header itself.
//
// Body layout: a sequence of PAIRS, terminated by a 0x00 byte at a pair
// boundary (the leaf's usual zero-filled tail), each pair
//
//   [byte-varint(window_delta + 1)] [8-byte literal word, little-endian]
//
// covering one occupied 64-key-aligned window: window(k) = k / 64. The
// window delta chains from the previous pair's window — the first pair's
// from window(head) — and the +1 keeps the varint >= 1, so a pair always
// starts with a nonzero byte and 0x00 at a pair boundary unambiguously
// terminates the body. Word bytes MAY be zero; they are never inspected as
// terminators (scans hop pair to pair, like any non-zero-free codec).
//
// The body stores bits only for keys STRICTLY GREATER than the leaf head
// (the head is stored uncompressed in the leaf header, as for every other
// format), and never stores an empty word. The first pair may share the
// head's window (stored delta 1); later pairs strictly increase.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "codec/delta_stream.hpp"

namespace cpma::codec::bitmap {

using Var = ByteVarintCodec;

constexpr uint64_t window(uint64_t key) { return key >> 6; }
constexpr unsigned bit_of(uint64_t key) {
  return static_cast<unsigned>(key & 63);
}
constexpr uint64_t bit_mask(uint64_t key) {
  return uint64_t{1} << bit_of(key);
}
// Bits for keys strictly greater than `key` within its own window.
constexpr uint64_t above_mask(uint64_t key) {
  return ~uint64_t{0} << bit_of(key) << 1;
}

// Upper bound on one pair's bytes (maximal window varint + word).
constexpr size_t kMaxPairBytes = Var::kMaxBytes + 8;

// One decoded pair: `len` total encoded bytes, `wdelta` the chained window
// delta (already de-biased), `word` the literal.
struct Pair {
  size_t len;
  uint64_t wdelta;
  uint64_t word;
};

inline Pair load_pair(const uint8_t* p) {
  Pair r;
  uint64_t biased;
  size_t vlen = Var::decode(p, &biased);
  r.wdelta = biased - 1;
  std::memcpy(&r.word, p + vlen, 8);
  r.len = vlen + 8;
  return r;
}

inline size_t store_pair(uint8_t* p, uint64_t wdelta, uint64_t word) {
  size_t vlen = Var::encode(wdelta + 1, p);
  std::memcpy(p + vlen, &word, 8);
  return vlen + 8;
}

inline size_t pair_bytes(uint64_t wdelta) { return Var::size(wdelta + 1) + 8; }

// One past the last used body byte (0 for an empty body): pair hopping.
inline size_t body_used(const uint8_t* body, size_t cap) {
  size_t pos = 0;
  while (pos < cap && body[pos] != 0) {
    pos += Var::skip(body + pos) + 8;
  }
  return pos;
}

// Encoded body bytes for keys[1..n) given head keys[0] (keys sorted,
// distinct). Mirrors encode_body below without writing.
inline size_t body_size(const uint64_t* keys, size_t n) {
  size_t total = 0;
  uint64_t prev_w = n != 0 ? window(keys[0]) : 0;
  size_t i = 1;
  while (i < n) {
    uint64_t w = window(keys[i]);
    while (i < n && window(keys[i]) == w) ++i;
    total += pair_bytes(w - prev_w);
    prev_w = w;
  }
  return total;
}

// Encodes keys[1..n) after head keys[0]; returns body bytes written.
inline size_t encode_body(uint8_t* body, const uint64_t* keys, size_t n) {
  size_t pos = 0;
  uint64_t prev_w = n != 0 ? window(keys[0]) : 0;
  size_t i = 1;
  while (i < n) {
    uint64_t w = window(keys[i]);
    uint64_t word = 0;
    while (i < n && window(keys[i]) == w) {
      word |= bit_mask(keys[i]);
      ++i;
    }
    pos += store_pair(body + pos, w - prev_w, word);
    prev_w = w;
  }
  return pos;
}

// Streaming body reader: walks pairs, tracking the absolute window. The
// caller seeds it with window(head) and pulls one pair at a time.
class PairReader {
 public:
  PairReader(const uint8_t* body, size_t cap, uint64_t head_window)
      : body_(body), cap_(cap), win_(head_window) {}

  // Advances to the next pair; false at the terminator. After a true
  // return: pair_off()/pair_len() locate the encoded pair, win() is its
  // absolute window, word() its literal.
  bool next() {
    pos_ = next_;
    if (pos_ >= cap_ || body_[pos_] == 0) return false;
    Pair p = load_pair(body_ + pos_);
    win_ += p.wdelta;
    word_ = p.word;
    next_ = pos_ + p.len;
    return true;
  }

  size_t pair_off() const { return pos_; }
  size_t pair_end() const { return next_; }
  uint64_t win() const { return win_; }
  uint64_t word() const { return word_; }

 private:
  const uint8_t* body_;
  size_t cap_;
  uint64_t win_;
  uint64_t word_ = 0;
  size_t pos_ = 0;
  size_t next_ = 0;
};

}  // namespace cpma::codec::bitmap
