// The leaf layer's single streaming delta-decode kernel.
//
// A compressed leaf body is a run of delta byte-codes terminated by a 0x00
// byte (or by the end of the buffer when the run fills it exactly); bytes
// past the terminator are zero. DeltaStream<Codec> owns that head/end
// bookkeeping in ONE place: it walks the run without ever pre-scanning for
// the end (the old per-op memchr), stopping when it reads the terminator.
//
// Codec concept (see ByteVarintCodec for the reference implementation):
//   static constexpr const char* name;
//   static constexpr size_t kMaxBytes;          // max encoded length
//   static constexpr size_t size(uint64_t v);   // bytes encode() writes
//   static size_t encode(uint64_t v, uint8_t* dst);
//   static size_t decode(const uint8_t* src, uint64_t* out);
//   static size_t skip(const uint8_t* src);
// Contract: the FIRST byte of the encoding of any value >= 1 is nonzero, so
// a 0x00 byte at a code boundary is the end-of-stream marker (the
// zero-filled tail of a leaf terminates the run). Codecs whose encodings
// contain no 0x00 byte ANYWHERE additionally declare
//   static constexpr bool kZeroFree = true;   // default when absent
// which lets the leaf find its used bytes with a memchr instead of hopping
// code to code (see kCodecZeroFree below; GroupVarintCodec's payload bytes
// can be zero, so it declares false). Optional bulk hooks (detected with
// `requires`, scalar fallbacks otherwise):
//   static size_t decode_block(src, avail, base, out, max, &consumed);
//   static size_t count_run(src, avail, &consumed);
//
// SIMD policy: the word-at-a-time fast path (8 one-byte deltas per 64-bit
// probe) is portable and always compiled. The AVX2 widen-and-prefix-sum
// variant is additionally gated on CPMA_SIMD (CMake option of the same name)
// so a forced-scalar build exercises the portable path end to end.
#pragma once

#include <bit>
#include <concepts>
#include <cstdint>
#include <cstring>

#include "codec/varint.hpp"
#include "pma/settings.hpp"

#ifndef CPMA_SIMD
#define CPMA_SIMD 1
#endif

#if CPMA_SIMD && defined(__AVX2__)
#include <immintrin.h>
#define CPMA_SIMD_AVX2 1
#else
#define CPMA_SIMD_AVX2 0
#endif

namespace cpma::codec {

namespace detail {
constexpr uint64_t kHighBits = 0x8080808080808080ull;
constexpr uint64_t kLowBits = 0x0101010101010101ull;

// True iff any of the 8 bytes of w is 0x00 (classic SWAR zero-byte probe).
constexpr bool word_has_zero_byte(uint64_t w) {
  return ((w - kLowBits) & ~w & kHighBits) != 0;
}

#if CPMA_SIMD_AVX2
// Decodes 8 consecutive one-byte deltas at p into out[0..8) on top of
// `base`: widen to 16-bit lanes, log-step prefix sum (max sum 8*127 fits),
// widen to 64-bit and add the base. Returns the new running value.
inline uint64_t decode8_avx2(const uint8_t* p, uint64_t base, uint64_t* out) {
  __m128i bytes = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
  __m128i v = _mm_cvtepu8_epi16(bytes);
  v = _mm_add_epi16(v, _mm_slli_si128(v, 2));
  v = _mm_add_epi16(v, _mm_slli_si128(v, 4));
  v = _mm_add_epi16(v, _mm_slli_si128(v, 8));
  const __m256i b = _mm256_set1_epi64x(static_cast<long long>(base));
  __m256i lo = _mm256_add_epi64(_mm256_cvtepu16_epi64(v), b);
  __m256i hi = _mm256_add_epi64(
      _mm256_cvtepu16_epi64(_mm_srli_si128(v, 8)), b);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), lo);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 4), hi);
  return base + static_cast<uint64_t>(_mm_extract_epi16(v, 7));
}
#endif
}  // namespace detail

// The default (and currently only production) codec: varint byte codes with
// continue bits, plus the bulk hooks the kernel's fast paths hang off.
struct ByteVarintCodec {
  static constexpr const char* name = "byte-varint";
  static constexpr size_t kMaxBytes = kMaxVarintBytes;
  static constexpr bool kZeroFree = true;

  static constexpr size_t size(uint64_t v) { return varint_size(v); }
  static size_t encode(uint64_t v, uint8_t* dst) {
    return varint_encode(v, dst);
  }
  static size_t decode(const uint8_t* src, uint64_t* out) {
    return varint_decode(src, out);
  }
  static size_t skip(const uint8_t* src) { return varint_skip(src); }

  // Bulk-decodes up to `max` values from src[0..avail) on top of running
  // value `base`, stopping at the terminator. Returns the number of values
  // written to out; *consumed receives the bytes advanced. Fast path: a
  // 64-bit probe proves the next 8 bytes are all one-byte, non-terminator
  // deltas (no continue bits, no zero byte), which covers most of a dense
  // leaf; anything else falls back to one scalar varint per iteration.
  static size_t decode_block(const uint8_t* src, size_t avail, uint64_t base,
                             uint64_t* out, size_t max, size_t* consumed) {
    size_t n = 0;
    size_t pos = 0;
    // Word loop: runs while every probe proves 8 plain one-byte deltas.
    // On the first failed probe the rest of the block decodes scalar (one
    // probe per run, not per value — a leaf's delta widths are homogeneous
    // enough that per-value re-probing only adds overhead); the next
    // next_block() call re-enters the word loop.
    while (n + 8 <= max && pos + 8 <= avail) {
      uint64_t w;
      std::memcpy(&w, src + pos, 8);
      if ((w & detail::kHighBits) != 0 || detail::word_has_zero_byte(w)) break;
#if CPMA_SIMD_AVX2
      base = detail::decode8_avx2(src + pos, base, out + n);
#else
      for (size_t i = 0; i < 8; ++i) {
        base += src[pos + i];
        out[n + i] = base;
      }
#endif
      n += 8;
      pos += 8;
    }
    while (n < max && pos < avail && src[pos] != 0) {
      uint64_t d;
      pos += decode(src + pos, &d);
      base += d;
      out[n++] = base;
    }
    *consumed = pos;
    return n;
  }

  // True when a probe of the next bytes suggests the upcoming run is mostly
  // multi-byte deltas, i.e. decode_block's word loop would fail its probe
  // immediately and its generic tail would decode the rest anyway. The
  // kernel then takes a tight scalar loop instead, which skips the per-block
  // probe and the word-loop setup entirely (the mid-density regime where
  // block decode used to trail the pure scalar loop by ~15-25%). The
  // continue-bit threshold is env-tunable: CPMA_PREFER_SCALAR_THRESHOLD
  // (pma/settings.hpp), default 3 — each set high bit is a continue bit, so
  // >= 3 of 8 bytes belonging to multi-byte codes means at most ~5 values
  // in the window and the word fast path cannot engage.
  static bool prefer_scalar(const uint8_t* src, size_t avail) {
    if (avail < 8) return false;  // short tail: decode_block's tail loop
    uint64_t w;
    std::memcpy(&w, src, 8);
    if (detail::word_has_zero_byte(w)) return false;  // terminator nearby
    return static_cast<unsigned>(std::popcount(w & detail::kHighBits)) >=
           pma::prefer_scalar_threshold();
  }

  // Sums encoded values without storing them, consuming whole codes while
  // they START before `limit` (so the caller can stop at a byte target, or
  // pass avail to drain to the terminator); *consumed receives the bytes
  // advanced. A leaf's delta widths are homogeneous enough that three
  // word-probe fast paths cover most content: 8 one-byte deltas fold with a
  // SWAR horizontal add, and uniform runs of 2-byte (4 codes/word) and
  // 3-byte (2 codes/6 bytes) codes are recognized by their continue-bit
  // patterns and decoded with shifts — no per-byte loop. This is what lets
  // a resize learn a leaf's last key (head + sum of deltas) and locate its
  // split points without ever materializing a key.
  static uint64_t sum_run_to(const uint8_t* src, size_t avail, size_t limit,
                             size_t* consumed) {
    if (limit > avail) limit = avail;
    uint64_t sum = 0;
    size_t pos = 0;
    while (pos + 8 <= limit) {
      uint64_t w;
      std::memcpy(&w, src + pos, 8);
      // A zero byte (the terminator) masquerades as a stop byte in the
      // width-pattern probes, so it must be excluded first.
      if (detail::word_has_zero_byte(w)) break;
      uint64_t hi = w & detail::kHighBits;
      if (hi == 0) {
        // Eight one-byte deltas: fold pairs, quads, then halves.
        uint64_t p2 =
            (w & 0x00FF00FF00FF00FFull) + ((w >> 8) & 0x00FF00FF00FF00FFull);
        uint64_t p4 = (p2 & 0x0000FFFF0000FFFFull) +
                      ((p2 >> 16) & 0x0000FFFF0000FFFFull);
        sum += (p4 + (p4 >> 32)) & 0xFFFFFFFFull;
        pos += 8;
      } else if (hi == 0x0080008000800080ull) {
        // Four 2-byte codes (continue bits 1,0 repeating).
        sum += (w & 0x7f) | (((w >> 8) & 0x7f) << 7);
        sum += ((w >> 16) & 0x7f) | (((w >> 24) & 0x7f) << 7);
        sum += ((w >> 32) & 0x7f) | (((w >> 40) & 0x7f) << 7);
        sum += ((w >> 48) & 0x7f) | (((w >> 56) & 0x7f) << 7);
        pos += 8;
      } else if ((w & 0x0000808080808080ull) == 0x0000008080008080ull) {
        // Two 3-byte codes in the low six bytes (continue bits 1,1,0).
        sum += (w & 0x7f) | (((w >> 8) & 0x7f) << 7) |
               (((w >> 16) & 0x7f) << 14);
        sum += ((w >> 24) & 0x7f) | (((w >> 32) & 0x7f) << 7) |
               (((w >> 40) & 0x7f) << 14);
        pos += 6;
      } else {
        uint64_t d;
        pos += decode(src + pos, &d);
        sum += d;
      }
    }
    while (pos < limit && src[pos] != 0) {
      uint64_t d;
      pos += decode(src + pos, &d);
      sum += d;
    }
    *consumed = pos;
    return sum;
  }

  // Counts the encoded values in src[0..avail) up to the terminator without
  // decoding them; *consumed receives the bytes advanced. Every value ends
  // in exactly one byte with a clear continue bit, so a window's value count
  // is a popcount — correct even when a varint straddles windows, because
  // its final byte is counted wherever it lands.
  static size_t count_run(const uint8_t* src, size_t avail, size_t* consumed) {
    size_t n = 0;
    size_t pos = 0;
    while (pos + 8 <= avail) {
      uint64_t w;
      std::memcpy(&w, src + pos, 8);
      if (detail::word_has_zero_byte(w)) break;
      n += static_cast<size_t>(
          std::popcount(~w & detail::kHighBits));
      pos += 8;
    }
    while (pos < avail && src[pos] != 0) {
      pos += skip(src + pos);
      ++n;
    }
    *consumed = pos;
    return n;
  }
};

template <typename Codec>
concept HasDecodeBlock = requires(const uint8_t* p, size_t a, uint64_t b,
                                  uint64_t* o, size_t m, size_t* c) {
  { Codec::decode_block(p, a, b, o, m, c) } -> std::same_as<size_t>;
};

template <typename Codec>
concept HasCountRun = requires(const uint8_t* p, size_t a, size_t* c) {
  { Codec::count_run(p, a, c) } -> std::same_as<size_t>;
};

template <typename Codec>
concept HasPreferScalar = requires(const uint8_t* p, size_t a) {
  { Codec::prefer_scalar(p, a) } -> std::same_as<bool>;
};

template <typename Codec>
concept HasSumRunTo = requires(const uint8_t* p, size_t a, size_t t,
                               size_t* c) {
  { Codec::sum_run_to(p, a, t, c) } -> std::same_as<uint64_t>;
};

// True when no encoding of a value >= 1 contains a 0x00 byte anywhere (not
// just in the first position), so a buffer's used bytes can be found with a
// memchr. Codecs opt OUT by declaring kZeroFree = false; absence of the
// member means the stronger guarantee holds (all pre-existing codecs).
template <typename Codec>
inline constexpr bool kCodecZeroFree = [] {
  if constexpr (requires { Codec::kZeroFree; }) {
    return static_cast<bool>(Codec::kZeroFree);
  } else {
    return true;
  }
}();

// Streaming decoder over a delta run. `value()` starts at the caller's base
// (a leaf's head) and advances by one decoded delta per next(), or by whole
// blocks via next_block(). `pos()` is the byte offset of the next undecoded
// delta relative to the start of the run, which is what the leaf's mutation
// paths use to splice bytes at the position the scan stopped.
template <typename Codec = ByteVarintCodec>
class DeltaStream {
 public:
  using codec_type = Codec;
  // Block size that amortizes per-block overhead without outgrowing the
  // stack buffers the leaf ops use.
  static constexpr size_t kBlockKeys = 64;

  DeltaStream(const uint8_t* deltas, size_t cap, uint64_t base,
              size_t pos = 0)
      : data_(deltas), cap_(cap), pos_(pos), value_(base) {}

  uint64_t value() const { return value_; }
  size_t pos() const { return pos_; }
  bool done() const { return pos_ >= cap_ || data_[pos_] == 0; }

  // Advances by one key; false once the terminator (or cap) is reached.
  bool next() {
    if (done()) return false;
    uint64_t d;
    pos_ += Codec::decode(data_ + pos_, &d);
    value_ += d;
    return true;
  }

  // Decodes up to `max` further keys into out[]; returns how many (0 at
  // end-of-stream). After a nonzero return, value() is the last key decoded.
  size_t next_block(uint64_t* out, size_t max) {
    if (pos_ >= cap_) return 0;
    if constexpr (HasDecodeBlock<Codec>) {
      if constexpr (HasPreferScalar<Codec>) {
        if (Codec::prefer_scalar(data_ + pos_, cap_ - pos_)) {
          // Mostly multi-byte deltas ahead: a tight scalar loop on local
          // copies of the stream state beats the block path's probing.
          size_t n = 0;
          size_t p = pos_;
          uint64_t v = value_;
          while (n < max && p < cap_ && data_[p] != 0) {
            uint64_t d;
            p += Codec::decode(data_ + p, &d);
            v += d;
            out[n++] = v;
          }
          pos_ = p;
          if (n > 0) value_ = v;
          return n;
        }
      }
      size_t consumed = 0;
      size_t n = Codec::decode_block(data_ + pos_, cap_ - pos_, value_, out,
                                     max, &consumed);
      pos_ += consumed;
      if (n > 0) value_ = out[n - 1];
      return n;
    } else {
      size_t n = 0;
      while (n < max && next()) out[n++] = value_;
      return n;
    }
  }

  // Consumes whole codes while they start before run offset `target`:
  // afterwards pos() is the first code boundary at or past target (or the
  // terminator) and value() has accumulated the skipped deltas. The
  // direct-spread resize uses this to find split keys without materializing
  // the run.
  void seek(size_t target) {
    if (pos_ >= cap_ || target <= pos_) return;
    if constexpr (HasSumRunTo<Codec>) {
      size_t consumed = 0;
      value_ += Codec::sum_run_to(data_ + pos_, cap_ - pos_, target - pos_,
                                  &consumed);
      pos_ += consumed;
    } else {
      while (pos_ < target && next()) {
      }
    }
  }

  // Consumes the rest of the stream: afterwards pos() is the terminator
  // offset (the run's used bytes) and value() is the run's last key.
  void drain() { seek(cap_); }

  // Number of keys left in the stream; consumes them (the stream ends at
  // the terminator afterwards). Does not decode values.
  uint64_t count_remaining() {
    if (pos_ >= cap_) return 0;
    if constexpr (HasCountRun<Codec>) {
      size_t consumed = 0;
      uint64_t n = Codec::count_run(data_ + pos_, cap_ - pos_, &consumed);
      pos_ += consumed;
      return n;
    } else {
      uint64_t n = 0;
      while (!done()) {
        pos_ += Codec::skip(data_ + pos_);
        ++n;
      }
      return n;
    }
  }

 private:
  const uint8_t* data_;
  size_t cap_;
  size_t pos_;
  uint64_t value_;
};

}  // namespace cpma::codec
