// Group-varint ("stream-vbyte"-flavored) delta codec.
//
// Byte varints pay one data-dependent branch per BYTE: every byte's continue
// bit must be inspected before the next byte's meaning is known. This codec
// moves all of the length information into a control byte so the payload
// decodes with one load + shift + mask, no per-byte loop:
//
//   b0 = 1 t t v v v v v      control: marker bit, 2-bit width tag, low 5
//   payload                   (v >> 5) little-endian in 1/2/4/8 bytes
//
// The width tag selects the payload width from {1, 2, 4, 8} — the classic
// group-varint width ladder — and the control byte carries the value's low
// five bits so small deltas still fit two bytes. The marker bit keeps every
// control byte nonzero, so a 0x00 byte AT A CODE BOUNDARY is the leaf's
// end-of-stream terminator exactly as with byte varints. Unlike byte
// varints, payload bytes MAY be zero (kZeroFree = false below): the leaf's
// used-bytes scan must hop code to code instead of memchr'ing
// (pma/leaf_compressed.hpp keys off the trait).
//
// Sizes: 2 bytes for deltas < 2^13, 3 to < 2^21, 5 to < 2^37, 9 beyond.
// On multi-byte-delta leaves (uniform 40-bit keys) codes match byte-varint
// sizes within a byte while the block decoder runs four codes per iteration
// with unconditional 8-byte masked loads — the regime where the byte-varint
// block path only ties its own scalar loop.
//
// Bulk hooks mirror ByteVarintCodec's (decode_block / count_run /
// sum_run_to); the AVX2 variant (gated like the byte-varint one on
// CPMA_SIMD && __AVX2__) decodes quads of homogeneous 3-byte codes — the
// uniform-40-bit steady state — with one shuffle + prefix sum.
#pragma once

#include <cstdint>
#include <cstring>

#include "codec/delta_stream.hpp"

namespace cpma::codec {

namespace gv_detail {
// Payload width / total code length / payload mask, indexed by the tag.
constexpr size_t kPayload[4] = {1, 2, 4, 8};
constexpr size_t kLen[4] = {2, 3, 5, 9};
constexpr uint64_t kMask[4] = {0xffull, 0xffffull, 0xffffffffull,
                               ~uint64_t{0}};

#if CPMA_SIMD_AVX2
// Decodes four consecutive 3-byte codes (all tag == 1) at p on top of
// `base`: one 16-byte load, shuffle the 16-bit payloads and control bytes
// into 32-bit lanes, combine, 32-bit prefix sum (max 4 * (2^21 - 1) fits),
// widen to 64-bit, add the base. Caller guarantees 16 readable bytes at p.
inline uint64_t decode4_gv3_avx2(const uint8_t* p, uint64_t base,
                                 uint64_t* out) {
  const __m128i raw =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  const __m128i shuf_pay = _mm_setr_epi8(1, 2, -1, -1, 4, 5, -1, -1, 7, 8,
                                         -1, -1, 10, 11, -1, -1);
  const __m128i shuf_ctl = _mm_setr_epi8(0, -1, -1, -1, 3, -1, -1, -1, 6,
                                         -1, -1, -1, 9, -1, -1, -1);
  __m128i pay = _mm_shuffle_epi8(raw, shuf_pay);
  __m128i ctl = _mm_and_si128(_mm_shuffle_epi8(raw, shuf_ctl),
                              _mm_set1_epi32(31));
  __m128i v = _mm_or_si128(_mm_slli_epi32(pay, 5), ctl);
  v = _mm_add_epi32(v, _mm_slli_si128(v, 4));
  v = _mm_add_epi32(v, _mm_slli_si128(v, 8));
  __m256i sums = _mm256_add_epi64(
      _mm256_cvtepu32_epi64(v),
      _mm256_set1_epi64x(static_cast<long long>(base)));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), sums);
  return base + static_cast<uint64_t>(
                    static_cast<uint32_t>(_mm_extract_epi32(v, 3)));
}
#endif
}  // namespace gv_detail

struct GroupVarintCodec {
  static constexpr const char* name = "group-varint";
  static constexpr size_t kMaxBytes = 9;
  // Payload bytes may be 0x00: terminators are only valid at code
  // boundaries, and the leaf must hop codes to find its used bytes.
  static constexpr bool kZeroFree = false;

  static constexpr size_t size(uint64_t v) {
    uint64_t hi = v >> 5;
    if (hi < (uint64_t{1} << 8)) return 2;
    if (hi < (uint64_t{1} << 16)) return 3;
    if (hi < (uint64_t{1} << 32)) return 5;
    return 9;
  }

  static size_t encode(uint64_t v, uint8_t* dst) {
    const uint64_t hi = v >> 5;
    const uint8_t lo = static_cast<uint8_t>(v & 31);
    if (hi < (uint64_t{1} << 8)) {
      dst[0] = static_cast<uint8_t>(0x80 | lo);
      dst[1] = static_cast<uint8_t>(hi);
      return 2;
    }
    if (hi < (uint64_t{1} << 16)) {
      dst[0] = static_cast<uint8_t>(0xA0 | lo);
      uint16_t x = static_cast<uint16_t>(hi);
      std::memcpy(dst + 1, &x, 2);
      return 3;
    }
    if (hi < (uint64_t{1} << 32)) {
      dst[0] = static_cast<uint8_t>(0xC0 | lo);
      uint32_t x = static_cast<uint32_t>(hi);
      std::memcpy(dst + 1, &x, 4);
      return 5;
    }
    dst[0] = static_cast<uint8_t>(0xE0 | lo);
    std::memcpy(dst + 1, &hi, 8);
    return 9;
  }

  // Exact-width loads: a code near the end of a leaf must not read past its
  // own payload (the block paths use masked 8-byte loads only when the
  // buffer provably extends).
  static size_t decode(const uint8_t* src, uint64_t* out) {
    const uint8_t b0 = src[0];
    const unsigned tag = (b0 >> 5) & 3;
    uint64_t hi;
    switch (tag) {
      case 0:
        hi = src[1];
        break;
      case 1: {
        uint16_t x;
        std::memcpy(&x, src + 1, 2);
        hi = x;
        break;
      }
      case 2: {
        uint32_t x;
        std::memcpy(&x, src + 1, 4);
        hi = x;
        break;
      }
      default:
        std::memcpy(&hi, src + 1, 8);
        break;
    }
    *out = (hi << 5) | (b0 & 31);
    return gv_detail::kLen[tag];
  }

  static size_t skip(const uint8_t* src) {
    return gv_detail::kLen[(src[0] >> 5) & 3];
  }

  // Bulk decode: four codes per iteration, each one unconditional 8-byte
  // load masked by the control byte's width — no per-byte continue-bit
  // chain. The quad loop needs 8 readable bytes past each control byte, so
  // it runs while a worst-case quad plus the trailing load slack fits;
  // the exact-width scalar loop finishes the tail.
  static size_t decode_block(const uint8_t* src, size_t avail, uint64_t base,
                             uint64_t* out, size_t max, size_t* consumed) {
    size_t n = 0;
    size_t pos = 0;
    while (n + 4 <= max && pos + 4 * kMaxBytes <= avail) {
#if CPMA_SIMD_AVX2
      // Homogeneous 3-byte quad (the uniform-40-bit steady state): one
      // vector decode. 16 bytes are readable: 4 * 9 > 12 + 4 slack.
      if (((src[pos] & src[pos + 3] & src[pos + 6] & src[pos + 9]) & 0x80) &&
          (src[pos] & 0x60) == 0x20 && (src[pos + 3] & 0x60) == 0x20 &&
          (src[pos + 6] & 0x60) == 0x20 && (src[pos + 9] & 0x60) == 0x20) {
        base = gv_detail::decode4_gv3_avx2(src + pos, base, out + n);
        n += 4;
        pos += 12;
        continue;
      }
#endif
      bool terminated = false;
      for (int i = 0; i < 4; ++i) {
        const uint8_t b0 = src[pos];
        if (b0 == 0) {
          terminated = true;
          break;
        }
        const unsigned tag = (b0 >> 5) & 3;
        uint64_t w;
        std::memcpy(&w, src + pos + 1, 8);
        base += ((w & gv_detail::kMask[tag]) << 5) | (b0 & 31);
        out[n++] = base;
        pos += gv_detail::kLen[tag];
      }
      if (terminated) break;
    }
    while (n < max && pos < avail && src[pos] != 0) {
      uint64_t d;
      pos += decode(src + pos, &d);
      base += d;
      out[n++] = base;
    }
    *consumed = pos;
    return n;
  }

  // Counts codes up to the terminator: pure control-byte hopping, one load
  // + table lookup + add per value.
  static size_t count_run(const uint8_t* src, size_t avail, size_t* consumed) {
    size_t n = 0;
    size_t pos = 0;
    while (pos < avail && src[pos] != 0) {
      pos += gv_detail::kLen[(src[pos] >> 5) & 3];
      ++n;
    }
    *consumed = pos;
    return n;
  }

  // Sums whole codes while they START before `limit` (same contract as the
  // byte-varint hook): masked 8-byte loads while the buffer provably
  // extends, exact-width decodes for the tail.
  static uint64_t sum_run_to(const uint8_t* src, size_t avail, size_t limit,
                             size_t* consumed) {
    if (limit > avail) limit = avail;
    uint64_t sum = 0;
    size_t pos = 0;
    while (pos < limit && pos + kMaxBytes <= avail) {
      const uint8_t b0 = src[pos];
      if (b0 == 0) break;
      const unsigned tag = (b0 >> 5) & 3;
      uint64_t w;
      std::memcpy(&w, src + pos + 1, 8);
      sum += ((w & gv_detail::kMask[tag]) << 5) | (b0 & 31);
      pos += gv_detail::kLen[tag];
    }
    while (pos < limit && src[pos] != 0) {
      uint64_t d;
      pos += decode(src + pos, &d);
      sum += d;
    }
    *consumed = pos;
    return sum;
  }
};

}  // namespace cpma::codec
