// Byte codes with continue bits (varints), the compression scheme the CPMA
// leaves and compressed PaC-tree blocks use for delta-encoded keys.
//
// Encoding: little-endian groups of 7 payload bits; the high bit of each byte
// is the continue bit (1 = more bytes follow). A value v >= 1 never encodes
// to a leading 0x00 byte, so a 0x00 byte unambiguously terminates a
// compressed leaf (deltas in a *set* are always >= 1; heads are stored
// uncompressed).
#pragma once

#include <cstdint>
#include <cstddef>

namespace cpma::codec {

constexpr size_t kMaxVarintBytes = 10;  // 64 payload bits / 7 rounded up

// Number of bytes encode(v) writes.
constexpr size_t varint_size(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

// Writes v at dst; returns the number of bytes written.
inline size_t varint_encode(uint64_t v, uint8_t* dst) {
  size_t n = 0;
  while (v >= 0x80) {
    dst[n++] = static_cast<uint8_t>(v) | 0x80;
    v >>= 7;
  }
  dst[n++] = static_cast<uint8_t>(v);
  return n;
}

// Reads a varint at src into *out; returns the number of bytes consumed.
inline size_t varint_decode(const uint8_t* src, uint64_t* out) {
  uint64_t v = src[0] & 0x7f;
  if ((src[0] & 0x80) == 0) {  // 1-byte fast path: the common case for deltas
    *out = v;
    return 1;
  }
  size_t n = 1;
  unsigned shift = 7;
  while (true) {
    uint8_t b = src[n++];
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  *out = v;
  return n;
}

// Advances over one encoded value without decoding it.
inline size_t varint_skip(const uint8_t* src) {
  size_t n = 1;
  while ((src[n - 1] & 0x80) != 0) ++n;
  return n;
}

}  // namespace cpma::codec
