// Durability I/O layer: a minimal VFS the checkpoint/WAL code writes
// through, with three implementations —
//
//   PosixVfs   real files (open/append/fsync/rename/unlink/readdir); what
//              production uses and what the durability bench measures.
//   MemVfs     in-memory files with an explicit CRASH MODEL: every byte is
//              either synced (durable) or unsynced; crash() truncates each
//              file to its synced prefix plus a seeded-random amount of the
//              unsynced tail (torn write), optionally flips bits in that
//              surviving unsynced region, and DROPS files whose directory
//              entry was never fsynced. This is deliberately the harshest
//              POSIX-legal model: if recovery survives MemVfs::crash() it
//              survives a kernel panic on ext4.
//   FaultyVfs  decorator injecting runtime faults under a seeded schedule:
//              EIO on write, short writes (a prefix lands on the base file,
//              then the call fails), failed fsync (reports failure WITHOUT
//              syncing), silent bit flips on the way down, and read errors.
//              Drives the chaos suite; checksums must catch what it plants.
//
// All methods return io::Status (empty message == OK); none throw. The
// interface is append-oriented because both durable formats are: WAL
// segments are append-only, checkpoints are write-once-then-rename.
#pragma once

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/random.hpp"

namespace cpma::durable::io {

inline uint64_t now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Empty message == success. Kept string-y (not an errno enum): every failure
// site wants to say *which* file and operation, and the chaos suite only
// branches on ok().
struct Status {
  std::string message;
  bool ok() const { return message.empty(); }
  static Status good() { return Status{}; }
  static Status error(std::string m) { return Status{std::move(m)}; }
};

class File {
 public:
  virtual ~File() = default;
  // Appends n bytes at the end of the file. A failed append may still have
  // written a prefix (torn write) — the on-disk tail is untrusted until the
  // next successful sync().
  virtual Status append(const void* data, uint64_t n) = 0;
  // Durability barrier: all previously appended bytes survive a crash once
  // sync() returns OK. A failed sync promises nothing.
  virtual Status sync() = 0;
  virtual Status pread(uint64_t offset, void* out, uint64_t n,
                       uint64_t* got) = 0;
  virtual uint64_t size() const = 0;
};

class Vfs {
 public:
  virtual ~Vfs() = default;
  // Creates (or opens, append-positioned) a file for writing. `truncate`
  // discards existing content.
  virtual std::unique_ptr<File> open_write(const std::string& path,
                                           bool truncate, Status* st) = 0;
  virtual std::unique_ptr<File> open_read(const std::string& path,
                                          Status* st) = 0;
  virtual Status mkdir(const std::string& path) = 0;  // OK if it exists
  virtual Status rename(const std::string& from, const std::string& to) = 0;
  virtual Status remove(const std::string& path) = 0;
  // Durability barrier for the DIRECTORY: creations/renames/removals under
  // `path` survive a crash once this returns OK (fsync of the dir fd on
  // POSIX; files created but never dir-synced can vanish).
  virtual Status sync_dir(const std::string& path) = 0;
  virtual Status list(const std::string& dir,
                      std::vector<std::string>& names) = 0;
  virtual bool exists(const std::string& path) = 0;

  // Convenience: whole file into `out`.
  Status read_all(const std::string& path, std::vector<uint8_t>& out) {
    Status st;
    std::unique_ptr<File> f = open_read(path, &st);
    if (!st.ok()) return st;
    out.resize(f->size());
    uint64_t got = 0;
    st = f->pread(0, out.data(), out.size(), &got);
    if (!st.ok()) return st;
    if (got != out.size()) {
      return Status::error("read_all " + path + ": short read");
    }
    return Status::good();
  }
};

// ---- PosixVfs --------------------------------------------------------------

class PosixFile final : public File {
 public:
  explicit PosixFile(int fd) : fd_(fd) {}
  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }
  PosixFile(const PosixFile&) = delete;
  PosixFile& operator=(const PosixFile&) = delete;

  Status append(const void* data, uint64_t n) override {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    while (n > 0) {
      ssize_t w = ::write(fd_, p, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        return Status::error(std::string("write: ") + std::strerror(errno));
      }
      p += w;
      n -= static_cast<uint64_t>(w);
    }
    return Status::good();
  }

  Status sync() override {
    if (::fsync(fd_) != 0) {
      return Status::error(std::string("fsync: ") + std::strerror(errno));
    }
    return Status::good();
  }

  Status pread(uint64_t offset, void* out, uint64_t n,
               uint64_t* got) override {
    uint8_t* p = static_cast<uint8_t*>(out);
    *got = 0;
    while (n > 0) {
      ssize_t r = ::pread(fd_, p, n, static_cast<off_t>(offset));
      if (r < 0) {
        if (errno == EINTR) continue;
        return Status::error(std::string("pread: ") + std::strerror(errno));
      }
      if (r == 0) break;  // EOF
      p += r;
      offset += static_cast<uint64_t>(r);
      n -= static_cast<uint64_t>(r);
      *got += static_cast<uint64_t>(r);
    }
    return Status::good();
  }

  uint64_t size() const override {
    struct stat sb;
    if (::fstat(fd_, &sb) != 0) return 0;
    return static_cast<uint64_t>(sb.st_size);
  }

 private:
  int fd_;
};

class PosixVfs final : public Vfs {
 public:
  std::unique_ptr<File> open_write(const std::string& path, bool truncate,
                                   Status* st) override {
    int flags = O_WRONLY | O_CREAT | O_APPEND | (truncate ? O_TRUNC : 0);
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) {
      *st = Status::error("open_write " + path + ": " + std::strerror(errno));
      return nullptr;
    }
    *st = Status::good();
    return std::make_unique<PosixFile>(fd);
  }

  std::unique_ptr<File> open_read(const std::string& path,
                                  Status* st) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      *st = Status::error("open_read " + path + ": " + std::strerror(errno));
      return nullptr;
    }
    *st = Status::good();
    return std::make_unique<PosixFile>(fd);
  }

  Status mkdir(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::error("mkdir " + path + ": " + std::strerror(errno));
    }
    return Status::good();
  }

  Status rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Status::error("rename " + from + ": " + std::strerror(errno));
    }
    return Status::good();
  }

  Status remove(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return Status::error("unlink " + path + ": " + std::strerror(errno));
    }
    return Status::good();
  }

  Status sync_dir(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) {
      return Status::error("open dir " + path + ": " + std::strerror(errno));
    }
    Status st = Status::good();
    if (::fsync(fd) != 0) {
      st = Status::error("fsync dir " + path + ": " + std::strerror(errno));
    }
    ::close(fd);
    return st;
  }

  Status list(const std::string& dir,
              std::vector<std::string>& names) override {
    names.clear();
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) {
      return Status::error("opendir " + dir + ": " + std::strerror(errno));
    }
    while (struct dirent* e = ::readdir(d)) {
      std::string n = e->d_name;
      if (n != "." && n != "..") names.push_back(std::move(n));
    }
    ::closedir(d);
    std::sort(names.begin(), names.end());
    return Status::good();
  }

  bool exists(const std::string& path) override {
    struct stat sb;
    return ::stat(path.c_str(), &sb) == 0;
  }
};

// ---- MemVfs ----------------------------------------------------------------

class MemVfs final : public Vfs {
 public:
  struct CrashStats {
    uint64_t files_dropped = 0;    // dir entry never synced
    uint64_t bytes_torn = 0;       // unsynced bytes discarded
    uint64_t bits_flipped = 0;     // corruption planted in surviving tails
  };

  std::unique_ptr<File> open_write(const std::string& path, bool truncate,
                                   Status* st) override;
  std::unique_ptr<File> open_read(const std::string& path,
                                  Status* st) override;

  Status mkdir(const std::string& path) override {
    std::lock_guard<std::mutex> lock(m_);
    dirs_synced_.insert({path, false});
    return Status::good();
  }

  Status rename(const std::string& from, const std::string& to) override {
    std::lock_guard<std::mutex> lock(m_);
    auto it = files_.find(from);
    if (it == files_.end()) {
      return Status::error("rename " + from + ": not found");
    }
    std::shared_ptr<Node> node = it->second;
    files_.erase(it);
    // The new name is volatile until the next sync_dir — and the old name
    // (with the pre-rename durable content) is what a crash would resurrect
    // on a real FS. We take the harsher line: the old entry is gone and the
    // new one vanishes entirely if the directory is never synced.
    node->meta_durable = false;
    files_[to] = std::move(node);
    return Status::good();
  }

  Status remove(const std::string& path) override {
    std::lock_guard<std::mutex> lock(m_);
    files_.erase(path);
    return Status::good();
  }

  Status sync_dir(const std::string&) override {
    std::lock_guard<std::mutex> lock(m_);
    for (auto& [name, node] : files_) node->meta_durable = true;
    return Status::good();
  }

  Status list(const std::string& dir,
              std::vector<std::string>& names) override {
    std::lock_guard<std::mutex> lock(m_);
    names.clear();
    const std::string prefix = dir.empty() || dir.back() == '/'
                                   ? dir
                                   : dir + "/";
    for (const auto& [name, node] : files_) {
      if (name.rfind(prefix, 0) == 0 &&
          name.find('/', prefix.size()) == std::string::npos) {
        names.push_back(name.substr(prefix.size()));
      }
    }
    std::sort(names.begin(), names.end());
    return Status::good();
  }

  bool exists(const std::string& path) override {
    std::lock_guard<std::mutex> lock(m_);
    return files_.count(path) > 0;
  }

  // Simulated kill -9 + power cut, seeded for reproduction. See the file
  // header for the model. Open handles become stale (the chaos suite
  // destroys the structure before crashing, as a killed process would).
  CrashStats crash(uint64_t seed) {
    std::lock_guard<std::mutex> lock(m_);
    util::Rng rng(seed);
    CrashStats stats;
    for (auto it = files_.begin(); it != files_.end();) {
      Node& node = *it->second;
      if (!node.meta_durable) {
        ++stats.files_dropped;
        it = files_.erase(it);
        continue;
      }
      if (node.data.size() > node.synced) {
        // A seeded fraction of the unsynced tail survives (torn write)...
        const uint64_t unsynced = node.data.size() - node.synced;
        const uint64_t keep = rng.next_below(unsynced + 1);
        stats.bytes_torn += unsynced - keep;
        node.data.resize(node.synced + keep);
        // ... and what survives may be garbage: flip a few bits in it.
        if (keep > 0 && rng.next_below(2) == 0) {
          const uint64_t flips = 1 + rng.next_below(3);
          for (uint64_t f = 0; f < flips; ++f) {
            const uint64_t at = node.synced + rng.next_below(keep);
            node.data[at] ^= static_cast<uint8_t>(1u << rng.next_below(8));
            ++stats.bits_flipped;
          }
        }
      }
      node.synced = node.data.size();
      ++it;
    }
    return stats;
  }

  uint64_t file_size(const std::string& path) {
    std::lock_guard<std::mutex> lock(m_);
    auto it = files_.find(path);
    return it == files_.end() ? 0 : it->second->data.size();
  }

  uint64_t synced_size(const std::string& path) {
    std::lock_guard<std::mutex> lock(m_);
    auto it = files_.find(path);
    return it == files_.end() ? 0 : it->second->synced;
  }

 private:
  struct Node {
    std::vector<uint8_t> data;
    uint64_t synced = 0;        // bytes guaranteed to survive crash()
    bool meta_durable = false;  // dir entry survived a sync_dir
  };

  friend class MemFile;
  std::mutex m_;
  std::map<std::string, std::shared_ptr<Node>> files_;
  std::map<std::string, bool> dirs_synced_;
};

class MemFile final : public File {
 public:
  MemFile(MemVfs* vfs, std::shared_ptr<MemVfs::Node> node)
      : vfs_(vfs), node_(std::move(node)) {}

  Status append(const void* data, uint64_t n) override {
    std::lock_guard<std::mutex> lock(vfs_->m_);
    const uint8_t* p = static_cast<const uint8_t*>(data);
    node_->data.insert(node_->data.end(), p, p + n);
    return Status::good();
  }

  Status sync() override {
    std::lock_guard<std::mutex> lock(vfs_->m_);
    node_->synced = node_->data.size();
    return Status::good();
  }

  Status pread(uint64_t offset, void* out, uint64_t n,
               uint64_t* got) override {
    std::lock_guard<std::mutex> lock(vfs_->m_);
    *got = 0;
    if (offset >= node_->data.size()) return Status::good();
    *got = std::min<uint64_t>(n, node_->data.size() - offset);
    std::memcpy(out, node_->data.data() + offset, *got);
    return Status::good();
  }

  uint64_t size() const override {
    std::lock_guard<std::mutex> lock(vfs_->m_);
    return node_->data.size();
  }

 private:
  MemVfs* vfs_;
  std::shared_ptr<MemVfs::Node> node_;
};

inline std::unique_ptr<File> MemVfs::open_write(const std::string& path,
                                                bool truncate, Status* st) {
  std::lock_guard<std::mutex> lock(m_);
  std::shared_ptr<Node>& node = files_[path];
  if (node == nullptr) {
    node = std::make_shared<Node>();
  } else if (truncate) {
    node->data.clear();
    node->synced = 0;
  }
  *st = Status::good();
  return std::make_unique<MemFile>(this, node);
}

inline std::unique_ptr<File> MemVfs::open_read(const std::string& path,
                                               Status* st) {
  std::lock_guard<std::mutex> lock(m_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    *st = Status::error("open_read " + path + ": not found");
    return nullptr;
  }
  *st = Status::good();
  return std::make_unique<MemFile>(this, it->second);
}

// ---- FaultyVfs -------------------------------------------------------------

// Per-ten-thousand fault rates; every draw comes from one seeded stream so a
// schedule is reproducible from (seed, rates) alone.
struct FaultPlan {
  uint64_t seed = 1;
  uint32_t write_error_bp = 0;   // append fails, nothing written
  uint32_t short_write_bp = 0;   // append fails, a random prefix written
  uint32_t bit_flip_bp = 0;      // append "succeeds" with a flipped bit
  uint32_t sync_fail_bp = 0;     // sync reports failure, does not sync
  uint32_t read_error_bp = 0;    // pread fails
};

struct FaultStats {
  uint64_t write_errors = 0;
  uint64_t short_writes = 0;
  uint64_t bit_flips = 0;
  uint64_t sync_failures = 0;
  uint64_t read_errors = 0;
};

class FaultyVfs;

class FaultyFile final : public File {
 public:
  FaultyFile(FaultyVfs* vfs, std::unique_ptr<File> base)
      : vfs_(vfs), base_(std::move(base)) {}

  Status append(const void* data, uint64_t n) override;
  Status sync() override;
  Status pread(uint64_t offset, void* out, uint64_t n,
               uint64_t* got) override;
  uint64_t size() const override { return base_->size(); }

 private:
  FaultyVfs* vfs_;
  std::unique_ptr<File> base_;
};

class FaultyVfs final : public Vfs {
 public:
  FaultyVfs(Vfs& base, FaultPlan plan)
      : base_(base), plan_(plan), rng_(plan.seed) {}

  std::unique_ptr<File> open_write(const std::string& path, bool truncate,
                                   Status* st) override {
    std::unique_ptr<File> f = base_.open_write(path, truncate, st);
    if (f == nullptr) return nullptr;
    return std::make_unique<FaultyFile>(this, std::move(f));
  }
  std::unique_ptr<File> open_read(const std::string& path,
                                  Status* st) override {
    std::unique_ptr<File> f = base_.open_read(path, st);
    if (f == nullptr) return nullptr;
    return std::make_unique<FaultyFile>(this, std::move(f));
  }
  Status mkdir(const std::string& path) override { return base_.mkdir(path); }
  Status rename(const std::string& from, const std::string& to) override {
    return base_.rename(from, to);
  }
  Status remove(const std::string& path) override {
    return base_.remove(path);
  }
  Status sync_dir(const std::string& path) override {
    return base_.sync_dir(path);
  }
  Status list(const std::string& dir,
              std::vector<std::string>& names) override {
    return base_.list(dir, names);
  }
  bool exists(const std::string& path) override { return base_.exists(path); }

  FaultStats fault_stats() const {
    std::lock_guard<std::mutex> lock(m_);
    return stats_;
  }

 private:
  friend class FaultyFile;

  // One seeded draw per decision point; basis points out of 10'000.
  bool draw(uint32_t bp) { return bp > 0 && rng_.next_below(10'000) < bp; }
  uint64_t draw_below(uint64_t bound) { return rng_.next_below(bound); }

  Vfs& base_;
  FaultPlan plan_;
  mutable std::mutex m_;
  util::Rng rng_;
  FaultStats stats_;
};

inline Status FaultyFile::append(const void* data, uint64_t n) {
  {
    std::lock_guard<std::mutex> lock(vfs_->m_);
    if (vfs_->draw(vfs_->plan_.write_error_bp)) {
      ++vfs_->stats_.write_errors;
      return Status::error("injected: EIO on write");
    }
    if (n > 1 && vfs_->draw(vfs_->plan_.short_write_bp)) {
      ++vfs_->stats_.short_writes;
      const uint64_t part = vfs_->draw_below(n);
      if (part > 0) base_->append(data, part);  // torn prefix lands
      return Status::error("injected: short write");
    }
    if (n > 0 && vfs_->draw(vfs_->plan_.bit_flip_bp)) {
      ++vfs_->stats_.bit_flips;
      std::vector<uint8_t> corrupt(static_cast<const uint8_t*>(data),
                                   static_cast<const uint8_t*>(data) + n);
      corrupt[vfs_->draw_below(n)] ^=
          static_cast<uint8_t>(1u << vfs_->draw_below(8));
      return base_->append(corrupt.data(), corrupt.size());  // silent
    }
  }
  return base_->append(data, n);
}

inline Status FaultyFile::sync() {
  {
    std::lock_guard<std::mutex> lock(vfs_->m_);
    if (vfs_->draw(vfs_->plan_.sync_fail_bp)) {
      ++vfs_->stats_.sync_failures;
      return Status::error("injected: fsync failed");
    }
  }
  return base_->sync();
}

inline Status FaultyFile::pread(uint64_t offset, void* out, uint64_t n,
                                uint64_t* got) {
  {
    std::lock_guard<std::mutex> lock(vfs_->m_);
    if (vfs_->draw(vfs_->plan_.read_error_bp)) {
      ++vfs_->stats_.read_errors;
      *got = 0;
      return Status::error("injected: EIO on read");
    }
  }
  return base_->pread(offset, out, n, got);
}

}  // namespace cpma::durable::io
