// Checkpoint files: one consistent, checksummed image of the whole sharded
// store, written from an epoch-pinned SnapshotView so ingest never stalls.
//
// Layout of `ckpt-<seq>.cpma` (all integers little-endian):
//
//   magic   u64  "CPMACKP1"
//   version u32  format version (1)
//   codec   u32  engine codec tag — informational; bodies are portable
//   seq     u64  checkpoint sequence number
//   cut_lsn u64  every WAL record with lsn <= cut is reflected in the body
//   shards  u64  shard count (recovery restores the same shard layout)
//   splitters     (shards-1) × u64
//   per shard     [count u64][body_bytes u64][shard_version u64][crc u32]
//   header_crc    u32 over all bytes above
//   bodies        concatenated per-shard key streams
//
// A shard body is the raw first key (u64) followed by byte-varint deltas —
// deliberately NOT the engine's in-memory leaf region. The delta stream is
// engine-portable (a checkpoint written by a byte-varint CPMA restores into
// an adaptive-leaf ACPMA and vice versa), it is usually smaller than the
// leaf region (no empty-slot gaps, no header tags), and restoring through
// `build_from_sorted` lands the keys in an optimally-packed engine instead
// of resurrecting whatever density skew the writer had accumulated.
//
// Write protocol: encode to `ckpt-<seq>.tmp`, fsync, rename to the final
// name, fsync the directory. A crash mid-write leaves a `.tmp` that
// recovery deletes; the rename is the commit point. Validation re-checks
// the header crc, every body crc, and strict key ordering, so a checkpoint
// that survives `validate` loads without further error handling.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "codec/varint.hpp"
#include "durable/io.hpp"
#include "durable/wal.hpp"
#include "util/crc32c.hpp"

namespace cpma::durable {

inline constexpr uint64_t kCkptMagic = 0x31504b43414d5043ull;  // "CPMACKP1"
inline constexpr uint32_t kCkptVersion = 1;

inline std::string ckpt_name(uint64_t seq) {
  return "ckpt-" + std::to_string(seq) + ".cpma";
}
inline std::string ckpt_tmp_name(uint64_t seq) {
  return "ckpt-" + std::to_string(seq) + ".tmp";
}

inline bool parse_ckpt_name(const std::string& name, uint64_t* seq) {
  if (name.rfind("ckpt-", 0) != 0) return false;
  size_t at = 5;
  if (!parse_u64_digits(name, at, seq)) return false;
  return name.compare(at, std::string::npos, ".cpma") == 0;
}

struct CheckpointInfo {
  uint64_t seq = 0;
  uint64_t cut_lsn = 0;
  uint32_t codec_tag = 0;
  std::vector<uint64_t> splitters;       // shards-1 entries
  std::vector<uint64_t> shard_counts;    // keys per shard
  std::vector<uint64_t> shard_versions;  // writer's shard_version() at cut
  uint64_t total_keys = 0;
  uint64_t file_bytes = 0;
};

namespace ckpt_detail {

// Delta-varint encodes a strictly-increasing key stream.
class BodyEncoder {
 public:
  void add(uint64_t key) {
    if (first_) {
      put_u64(bytes_, key);
      first_ = false;
    } else {
      uint8_t tmp[codec::kMaxVarintBytes];
      const size_t n = codec::varint_encode(key - prev_, tmp);
      bytes_.insert(bytes_.end(), tmp, tmp + n);
    }
    prev_ = key;
  }
  std::vector<uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
  uint64_t prev_ = 0;
  bool first_ = true;
};

// Decodes a shard body; returns false on any structural violation (short
// stream, trailing garbage, non-increasing keys).
inline bool decode_body(const uint8_t* data, uint64_t body_bytes,
                        uint64_t count, std::vector<uint64_t>& out) {
  out.clear();
  out.reserve(count);
  if (count == 0) return body_bytes == 0;
  if (body_bytes < 8) return false;
  uint64_t key = get_u64(data);
  out.push_back(key);
  uint64_t at = 8;
  for (uint64_t i = 1; i < count; ++i) {
    if (at >= body_bytes) return false;
    uint64_t delta;
    at += codec::varint_decode(data + at, &delta);
    if (at > body_bytes || delta == 0 || key + delta < key) return false;
    key += delta;
    out.push_back(key);
  }
  return at == body_bytes;
}

}  // namespace ckpt_detail

// Serializes `view` (any type exposing num_shards/splitters/shard(s).map)
// to `dir/ckpt-<seq>.cpma` via the tmp+rename protocol above.
template <typename View>
io::Status write_checkpoint(io::Vfs& vfs, const std::string& dir,
                            uint64_t seq, uint64_t cut_lsn,
                            uint32_t codec_tag, const View& view,
                            const std::vector<uint64_t>& shard_versions,
                            uint64_t* bytes_written = nullptr) {
  const uint64_t shards = view.num_shards();
  std::vector<std::vector<uint8_t>> bodies(shards);
  for (uint64_t s = 0; s < shards; ++s) {
    ckpt_detail::BodyEncoder enc;
    view.shard(s).map([&](uint64_t key) { enc.add(key); });
    bodies[s] = enc.take();
  }

  std::vector<uint8_t> header;
  put_u64(header, kCkptMagic);
  put_u32(header, kCkptVersion);
  put_u32(header, codec_tag);
  put_u64(header, seq);
  put_u64(header, cut_lsn);
  put_u64(header, shards);
  for (uint64_t sp : view.splitters()) put_u64(header, sp);
  for (uint64_t s = 0; s < shards; ++s) {
    put_u64(header, view.shard(s).size());
    put_u64(header, bodies[s].size());
    put_u64(header, s < shard_versions.size() ? shard_versions[s] : 0);
    put_u32(header, util::crc32c(bodies[s].data(), bodies[s].size()));
  }
  put_u32(header, util::crc32c(header.data(), header.size()));

  io::Status st;
  const std::string tmp = dir + "/" + ckpt_tmp_name(seq);
  std::unique_ptr<io::File> f = vfs.open_write(tmp, /*truncate=*/true, &st);
  if (!st.ok()) return st;
  st = f->append(header.data(), header.size());
  uint64_t total = header.size();
  for (uint64_t s = 0; st.ok() && s < shards; ++s) {
    st = f->append(bodies[s].data(), bodies[s].size());
    total += bodies[s].size();
  }
  if (st.ok()) st = f->sync();
  f.reset();
  if (!st.ok()) {
    vfs.remove(tmp);
    return st;
  }
  st = vfs.rename(tmp, dir + "/" + ckpt_name(seq));
  if (!st.ok()) return st;
  st = vfs.sync_dir(dir);  // the commit point
  if (!st.ok()) return st;
  if (bytes_written != nullptr) *bytes_written = total;
  return io::Status::good();
}

// Reads + fully validates a checkpoint: header crc, magic/version, body
// crcs, per-shard structural decode. On success fills `info` and, when
// `shard_keys` is non-null, the decoded sorted key vectors per shard.
inline io::Status load_checkpoint(
    io::Vfs& vfs, const std::string& path, CheckpointInfo* info,
    std::vector<std::vector<uint64_t>>* shard_keys) {
  std::vector<uint8_t> data;
  io::Status st = vfs.read_all(path, data);
  if (!st.ok()) return st;
  auto bad = [&](const char* why) {
    return io::Status::error("checkpoint " + path + ": " + why);
  };
  // Fixed prefix: magic + version + codec + seq + cut + shards = 40 bytes.
  if (data.size() < 40) return bad("truncated header");
  if (get_u64(data.data()) != kCkptMagic) return bad("bad magic");
  if (get_u32(data.data() + 8) != kCkptVersion) return bad("bad version");
  info->codec_tag = get_u32(data.data() + 12);
  info->seq = get_u64(data.data() + 16);
  info->cut_lsn = get_u64(data.data() + 24);
  const uint64_t shards = get_u64(data.data() + 32);
  if (shards == 0 || shards > (1u << 20)) return bad("insane shard count");
  const uint64_t header_bytes = 40 + (shards - 1) * 8 + shards * 28 + 4;
  if (data.size() < header_bytes) return bad("truncated header");
  if (util::crc32c(data.data(), header_bytes - 4) !=
      get_u32(data.data() + header_bytes - 4)) {
    return bad("header crc mismatch");
  }
  info->splitters.resize(shards - 1);
  uint64_t at = 40;
  for (uint64_t s = 0; s + 1 < shards; ++s, at += 8) {
    info->splitters[s] = get_u64(data.data() + at);
  }
  info->shard_counts.resize(shards);
  info->shard_versions.resize(shards);
  std::vector<uint64_t> body_bytes(shards);
  std::vector<uint32_t> body_crc(shards);
  info->total_keys = 0;
  for (uint64_t s = 0; s < shards; ++s, at += 28) {
    info->shard_counts[s] = get_u64(data.data() + at);
    body_bytes[s] = get_u64(data.data() + at + 8);
    info->shard_versions[s] = get_u64(data.data() + at + 16);
    body_crc[s] = get_u32(data.data() + at + 24);
    info->total_keys += info->shard_counts[s];
  }
  at = header_bytes;
  if (shard_keys != nullptr) shard_keys->assign(shards, {});
  for (uint64_t s = 0; s < shards; ++s) {
    if (at + body_bytes[s] > data.size()) return bad("truncated body");
    if (util::crc32c(data.data() + at, body_bytes[s]) != body_crc[s]) {
      return bad("body crc mismatch");
    }
    if (shard_keys != nullptr &&
        !ckpt_detail::decode_body(data.data() + at, body_bytes[s],
                                  info->shard_counts[s], (*shard_keys)[s])) {
      return bad("body decode failed");
    }
    at += body_bytes[s];
  }
  if (at != data.size()) return bad("trailing bytes");
  info->file_bytes = data.size();
  return io::Status::good();
}

}  // namespace cpma::durable
