// Per-shard write-ahead log.
//
// A WAL segment is a flat stream of framed records:
//
//   [magic u32 "WREC"][len u32][crc32c u32][payload: len bytes]
//   payload = [op u8: 0=insert 1=remove][lsn u64][count u32][count × key u64]
//
// The crc covers the payload only; len is additionally folded into the crc
// seed so a record whose length field was bit-flipped cannot re-frame into
// a shorter valid record. All integers little-endian (this repo is
// x86-only; the SIMD kernels already assume it).
//
// Segment files are named `wal-s<shard>-c<cseq>-p<part>.log`:
//   shard  which shard's queue the records came from,
//   cseq   the checkpoint sequence the segment belongs to — recovery only
//          replays segments with cseq >= the recovered checkpoint's seq,
//          and checkpointing prunes segments with cseq < the new seq,
//   part   monotone within (shard, cseq): rotation and post-recovery
//          reopen both bump part rather than appending to a file whose
//          tail may be torn.
//
// LSNs are GLOBAL (assigned under the serving layer's writer mutex), not
// per-shard: shard rebalancing moves keys across shard boundaries, so
// per-shard ordering alone cannot reconstruct a consistent cut. Recovery
// merges all surviving records by LSN and replays the longest contiguous
// prefix above the checkpoint's cut — a gap means a record in the middle
// was lost (corrupt/torn), and everything after it is from a future the
// store never acknowledged as durable.
//
// Fsync policy decides the ack watermark: kAlways makes every record
// durable before apply; kInterval batches fsyncs by bytes/time (the ≤10%
// overhead mode the bench tracks); kNever leaves durability to the OS.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "durable/io.hpp"
#include "util/crc32c.hpp"

namespace cpma::durable {

inline constexpr uint32_t kWalMagic = 0x43455257u;  // "WREC" little-endian
inline constexpr uint32_t kWalHeaderBytes = 12;     // magic + len + crc
inline constexpr uint32_t kWalMaxPayload = 1u << 26;  // 64 MiB sanity bound

enum class FsyncPolicy : uint8_t { kAlways, kInterval, kNever };

struct WalSettings {
  FsyncPolicy policy = FsyncPolicy::kInterval;
  uint64_t interval_bytes = 1u << 20;     // sync when this much is unsynced
  uint64_t interval_ns = 50'000'000;      // ... or this much time has passed
};

// ---- little-endian put/get helpers ----------------------------------------

inline void put_u32(std::vector<uint8_t>& out, uint32_t v) {
  const size_t at = out.size();
  out.resize(at + 4);
  std::memcpy(out.data() + at, &v, 4);
}
inline void put_u64(std::vector<uint8_t>& out, uint64_t v) {
  const size_t at = out.size();
  out.resize(at + 8);
  std::memcpy(out.data() + at, &v, 8);
}
inline uint32_t get_u32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
inline uint64_t get_u64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

// ---- segment naming --------------------------------------------------------

inline std::string wal_name(uint64_t shard, uint64_t cseq, uint64_t part) {
  return "wal-s" + std::to_string(shard) + "-c" + std::to_string(cseq) +
         "-p" + std::to_string(part) + ".log";
}

struct WalName {
  uint64_t shard = 0;
  uint64_t cseq = 0;
  uint64_t part = 0;
};

// Parses a run of decimal digits at `at`; advances `at` past them.
inline bool parse_u64_digits(const std::string& s, size_t& at,
                             uint64_t* out) {
  if (at >= s.size() || s[at] < '0' || s[at] > '9') return false;
  uint64_t v = 0;
  while (at < s.size() && s[at] >= '0' && s[at] <= '9') {
    v = v * 10 + static_cast<uint64_t>(s[at] - '0');
    ++at;
  }
  *out = v;
  return true;
}

inline bool parse_wal_name(const std::string& name, WalName* out) {
  // wal-s<u64>-c<u64>-p<u64>.log
  if (name.rfind("wal-s", 0) != 0) return false;
  size_t at = 5;
  if (!parse_u64_digits(name, at, &out->shard)) return false;
  if (name.compare(at, 2, "-c") != 0) return false;
  at += 2;
  if (!parse_u64_digits(name, at, &out->cseq)) return false;
  if (name.compare(at, 2, "-p") != 0) return false;
  at += 2;
  if (!parse_u64_digits(name, at, &out->part)) return false;
  return name.compare(at, std::string::npos, ".log") == 0;
}

// ---- writer ----------------------------------------------------------------

class WalWriter {
 public:
  WalWriter(io::Vfs& vfs, std::string dir, uint64_t shard, WalSettings s)
      : vfs_(vfs), dir_(std::move(dir)), shard_(shard), settings_(s) {}

  // Opens a fresh segment `wal-s<shard>-c<cseq>-p<next part>.log`. Called on
  // startup, after each checkpoint cut (with the new cseq), and never
  // reuses a part number — an existing file's tail is untrusted.
  //
  // Records appended since the last successful fsync are retained in
  // `pending_` and REPLAYED into the fresh part here. Without that, a
  // rotation forced by one failed append/sync would strand earlier
  // unsynced (but acknowledged and applied) records in the abandoned
  // file's tail, and a later sync of the new part would advance the
  // durable watermark over records only a lucky crash could preserve.
  // Memory cost: one fsync interval's worth of bytes (unbounded only
  // under kNever with no explicit syncs).
  io::Status rotate(uint64_t cseq) {
    if (cseq != cseq_) {
      cseq_ = cseq;
      // parts stay monotone across cseq bumps too; no harm, and it keeps
      // "(cseq, part) lexicographically newest" a total order per shard.
    }
    ++part_;
    file_.reset();
    io::Status st;
    path_ = dir_ + "/" + wal_name(shard_, cseq_, part_);
    file_ = vfs_.open_write(path_, /*truncate=*/true, &st);
    if (!st.ok()) return st;
    st = vfs_.sync_dir(dir_);  // the segment must exist after a crash
    if (!st.ok()) return st;
    unsynced_bytes_ = 0;
    last_sync_ns_ = io::now_ns();
    if (!pending_.empty()) {
      st = file_->append(pending_.data(), pending_.size());
      if (!st.ok()) {
        // Replay failed: keep pending_ (and the unsynced floor) for the
        // next rotation attempt; this part's tail is untrusted.
        poisoned_ = true;
        return st;
      }
      unsynced_bytes_ = pending_.size();
    } else {
      first_unsynced_lsn_ = 0;
    }
    return io::Status::good();
  }

  // Ensures part numbering resumes after the newest surviving segment.
  void seed_part(uint64_t max_seen_part) {
    if (max_seen_part > part_) part_ = max_seen_part;
  }

  // Appends one framed record and applies the fsync policy. On success
  // *durable is set to whether the record (and all before it) is on stable
  // storage — the caller's ack watermark.
  io::Status append(uint8_t op, uint64_t lsn, const uint64_t* keys,
                    uint32_t count, bool* durable) {
    *durable = false;
    if (file_ == nullptr) return io::Status::error("wal: no open segment");
    // Serialize straight onto pending_ (the rotation replay buffer) and
    // write from its tail: one serialization pass, no second copy.
    const size_t rec_at = pending_.size();
    put_u32(pending_, kWalMagic);
    const uint32_t len = 1 + 8 + 4 + 8ull * count;
    put_u32(pending_, len);
    put_u32(pending_, 0);  // crc placeholder
    const size_t payload_at = pending_.size();
    pending_.push_back(op);
    put_u64(pending_, lsn);
    put_u32(pending_, count);
    const size_t keys_at = pending_.size();
    pending_.resize(keys_at + 8ull * count);
    std::memcpy(pending_.data() + keys_at, keys, 8ull * count);
    const uint32_t crc =
        util::crc32c(pending_.data() + payload_at, len, /*prev=*/len);
    std::memcpy(pending_.data() + rec_at + 8, &crc, 4);

    io::Status st =
        file_->append(pending_.data() + rec_at, pending_.size() - rec_at);
    if (!st.ok()) {
      // The on-disk tail is now untrusted (possibly torn mid-record); force
      // the next append onto a fresh part so one bad write cannot corrupt
      // later, otherwise-good records in the same file. The caller vetoes
      // the apply, so the record was never acknowledged — it must not
      // resurface from the replay buffer either.
      pending_.resize(rec_at);
      poisoned_ = true;
      return st;
    }
    unsynced_bytes_ += pending_.size() - rec_at;
    if (first_unsynced_lsn_ == 0) first_unsynced_lsn_ = lsn;
    return maybe_sync(durable);
  }

  // True when a failed append poisoned the current segment; the owner
  // should rotate() before the next append.
  bool poisoned() const { return poisoned_; }
  void clear_poisoned() { poisoned_ = false; }

  // Explicit group-commit barrier (used at checkpoint cut and by
  // DurablePMA::sync_wal()). Must NOT report success while any pending
  // record is not safely in the current segment (poisoned tail, failed
  // rotation): callers take OK as "everything logged so far is durable".
  io::Status sync() {
    if (poisoned_) return io::Status::error("wal: segment poisoned");
    if (file_ == nullptr) {
      return pending_.empty() ? io::Status::good()
                              : io::Status::error("wal: no open segment");
    }
    if (unsynced_bytes_ == 0 && pending_.empty()) return io::Status::good();
    io::Status st = file_->sync();
    if (st.ok()) {
      unsynced_bytes_ = 0;
      first_unsynced_lsn_ = 0;
      pending_.clear();
      last_sync_ns_ = io::now_ns();
    }
    return st;
  }

  uint64_t unsynced_bytes() const { return unsynced_bytes_; }
  // Lowest lsn appended to this segment since its last successful sync
  // (0 = fully synced). The global durable watermark is bounded by
  // min(first_unsynced_lsn) - 1 across shards: syncing ONE shard's file
  // says nothing about earlier records still unsynced in the others.
  uint64_t first_unsynced_lsn() const { return first_unsynced_lsn_; }
  uint64_t cseq() const { return cseq_; }
  uint64_t part() const { return part_; }
  const std::string& path() const { return path_; }

 private:
  io::Status maybe_sync(bool* durable) {
    switch (settings_.policy) {
      case FsyncPolicy::kAlways: {
        io::Status st = sync();
        *durable = st.ok();
        return st;
      }
      case FsyncPolicy::kInterval: {
        if (unsynced_bytes_ >= settings_.interval_bytes ||
            io::now_ns() - last_sync_ns_ >= settings_.interval_ns) {
          io::Status st = sync();
          *durable = st.ok();
          return st;
        }
        return io::Status::good();
      }
      case FsyncPolicy::kNever:
        return io::Status::good();
    }
    return io::Status::good();
  }

  io::Vfs& vfs_;
  std::string dir_;
  uint64_t shard_;
  WalSettings settings_;
  std::unique_ptr<io::File> file_;
  std::string path_;
  uint64_t cseq_ = 0;
  uint64_t part_ = 0;
  uint64_t unsynced_bytes_ = 0;
  uint64_t first_unsynced_lsn_ = 0;
  // Framed bytes of every record appended since the last successful sync —
  // the rotation replay buffer (see rotate()) and the append scratch
  // space: records are serialized onto its tail and written from there.
  std::vector<uint8_t> pending_;
  uint64_t last_sync_ns_ = 0;
  bool poisoned_ = false;
};

// ---- tolerant scanner ------------------------------------------------------

struct WalRecord {
  uint64_t lsn = 0;
  bool is_insert = true;
  std::vector<uint64_t> keys;
  // Provenance, filled from the segment name by the caller — recovery
  // prefers the record from the newer (cseq, part) when LSNs collide
  // (a segment written before a crash-then-recover cycle can hold stale
  // records with since-reused LSNs).
  uint64_t cseq = 0;
  uint64_t part = 0;
};

struct WalScanStats {
  uint64_t records = 0;
  uint64_t corrupt_skipped = 0;  // bad crc / insane len, resynced past
  uint64_t torn_tails = 0;       // incomplete final record (expected!)
  uint64_t bytes_scanned = 0;
};

// Scans one segment, appending every intact record to `out`. Never fails:
// corruption is skipped by resyncing on the next magic, an incomplete
// final record is counted as a torn tail. Read errors abandon the rest of
// the file (counted as corrupt).
inline WalScanStats scan_wal_file(io::Vfs& vfs, const std::string& path,
                                  std::vector<WalRecord>& out) {
  WalScanStats stats;
  std::vector<uint8_t> data;
  if (!vfs.read_all(path, data).ok()) {
    ++stats.corrupt_skipped;
    return stats;
  }
  stats.bytes_scanned = data.size();
  size_t at = 0;
  while (at + kWalHeaderBytes <= data.size()) {
    if (get_u32(data.data() + at) != kWalMagic) {
      // Lost framing: slide byte-by-byte to the next magic.
      ++at;
      continue;
    }
    const uint32_t len = get_u32(data.data() + at + 4);
    const uint32_t crc = get_u32(data.data() + at + 8);
    if (len < 13 || len > kWalMaxPayload || (len - 13) % 8 != 0) {
      ++stats.corrupt_skipped;
      ++at;
      continue;
    }
    if (at + kWalHeaderBytes + len > data.size()) {
      // Frame extends past EOF: a torn final record — unless a later
      // magic exists, in which case this frame was corrupt mid-file.
      bool later_magic = false;
      for (size_t j = at + 1; j + 4 <= data.size(); ++j) {
        if (get_u32(data.data() + j) == kWalMagic) {
          later_magic = true;
          break;
        }
      }
      if (later_magic) {
        ++stats.corrupt_skipped;
        ++at;
        continue;
      }
      ++stats.torn_tails;
      break;
    }
    const uint8_t* payload = data.data() + at + kWalHeaderBytes;
    if (util::crc32c(payload, len, /*prev=*/len) != crc) {
      ++stats.corrupt_skipped;
      ++at;
      continue;
    }
    const uint8_t op = payload[0];
    const uint64_t lsn = get_u64(payload + 1);
    const uint32_t count = get_u32(payload + 9);
    if (op > 1 || 13 + 8ull * count != len) {
      ++stats.corrupt_skipped;
      ++at;
      continue;
    }
    WalRecord rec;
    rec.lsn = lsn;
    rec.is_insert = op == 0;
    rec.keys.resize(count);
    std::memcpy(rec.keys.data(), payload + 13, 8ull * count);
    out.push_back(std::move(rec));
    ++stats.records;
    at += kWalHeaderBytes + len;
  }
  return stats;
}

}  // namespace cpma::durable
