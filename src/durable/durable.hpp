// DurablePMA<Engine> — the serving layer with a disk underneath it:
// write-ahead logging before every apply, background checkpoints from
// epoch-pinned snapshots, and crash recovery to the last durable point.
//
//   client ops ──► ServingPMA (flat-combining queues, bounded)
//                     │ before_apply (WriteObserver, under the writer lock)
//                     ▼
//                  WalWriter per shard ──► wal-s*-c*-p*.log
//                     │ apply
//                     ▼
//                  ShardedPMA ──► SnapshotView ──► ckpt-<seq>.cpma
//
// WAL-BEFORE-APPLY: the serving layer's WriteObserver hook fires under the
// writer lock before each run of ops touches the store. The hook assigns
// the run a GLOBAL lsn, frames it into the owning shard's WAL segment, and
// applies the fsync policy. If the log cannot take the record (I/O error
// twice, even after rotating to a fresh segment) the apply is VETOED — an
// unlogged write never becomes visible, so recovery can never be missing
// state that readers once saw. LSNs are only consumed by records that
// reached the file: a failed append retries the SAME lsn on a fresh
// segment, keeping the lsn sequence gap-free on disk (a gap is how replay
// detects loss, so the writer must never create one deliberately).
//
// CHECKPOINT CUT (checkpoint()/checkpoint_async()): under flush_with —
// queues drained, snapshot published, writer lock held — the WAL is
// fsynced, cut_lsn = last assigned lsn is recorded, the snapshot is
// pinned, and every shard's WAL rotates to segments tagged with the new
// checkpoint seq. The lock is then released and the checkpoint body
// (delta-varint per shard, crc'd, tmp+rename — see checkpoint.hpp) writes
// out-of-line, possibly on a background thread, while ingest continues.
// On success, segments and checkpoints of older generations are pruned:
// every record in a cseq < N segment has lsn <= cut_lsn(N) (rotation
// happened inside the cut's critical section), so checkpoint N subsumes
// them.
//
// RECOVERY (constructor): delete *.tmp orphans; probe checkpoints newest-
// first until one passes full validation (header crc, body crcs,
// structural decode) — corrupt ones are counted and skipped, falling back
// as far as the empty store. Restore it via build_from_sorted (parallel
// per shard). Scan EVERY surviving WAL segment tolerantly (crc per record,
// magic resync after corruption, torn final records expected), merge the
// records by lsn — duplicates resolve to the newest (cseq, part), which
// wins over stale pre-recovery segments — and replay the longest
// CONTIGUOUS lsn run above cut_lsn through the sharded router. Records
// beyond the first gap are from a future the store never acknowledged;
// they are counted, not applied. Then write a FRESH checkpoint at the
// recovered state and prune, so stale segments cannot leak reused lsns
// into a later recovery. The full accounting lands in RecoveryReport.
//
// ACK SEMANTICS: insert()/remove() returning true means ADMITTED, not
// durable. Durability is a watermark: durable_lsn() advances when the
// fsync policy syncs (kAlways: every record; kInterval: by bytes/time;
// explicit sync_wal(): now). After a crash, the recovered state is
// guaranteed to contain every record with lsn <= the durable watermark —
// the chaos suite's core assertion.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "durable/checkpoint.hpp"
#include "durable/io.hpp"
#include "durable/wal.hpp"
#include "serve/serving.hpp"

namespace cpma::durable {

inline FsyncPolicy fsync_policy_from_env(FsyncPolicy fallback) {
  const char* v = std::getenv("CPMA_WAL_FSYNC");
  if (v == nullptr) return fallback;
  if (std::strcmp(v, "always") == 0) return FsyncPolicy::kAlways;
  if (std::strcmp(v, "interval") == 0) return FsyncPolicy::kInterval;
  if (std::strcmp(v, "never") == 0) return FsyncPolicy::kNever;
  return fallback;
}

struct DurableSettings {
  serve::ServingSettings serving;
  WalSettings wal = {
      fsync_policy_from_env(FsyncPolicy::kInterval),
      util::env_u64("CPMA_WAL_INTERVAL_BYTES", 1u << 20),
      util::env_u64("CPMA_WAL_INTERVAL_NS", 50'000'000),
  };
};

struct RecoveryReport {
  bool recovered_checkpoint = false;
  uint64_t checkpoint_seq = 0;   // seq of the checkpoint restored (0 = none)
  uint64_t checkpoint_keys = 0;  // keys loaded from it
  uint64_t checkpoints_ignored = 0;  // corrupt/unreadable checkpoints skipped
  uint64_t cut_lsn = 0;              // replay started above this
  uint64_t last_lsn = 0;             // highest lsn replayed
  uint64_t records_replayed = 0;
  uint64_t keys_replayed = 0;
  uint64_t records_dropped = 0;  // intact but beyond the first lsn gap
  uint64_t records_stale = 0;    // lsn <= cut or superseded duplicates
  uint64_t records_skipped = 0;  // failed crc / framing, resynced past
  uint64_t torn_tails = 0;       // segments ending in an incomplete record
  uint64_t bytes_scanned = 0;
  uint64_t segments_scanned = 0;
};

struct DurableStats {
  uint64_t wal_records = 0;
  uint64_t wal_bytes = 0;
  uint64_t wal_syncs = 0;
  uint64_t wal_append_errors = 0;  // failed appends (including retries)
  uint64_t wal_vetoes = 0;         // applies refused because logging failed
  uint64_t checkpoints_written = 0;
  uint64_t checkpoint_failures = 0;
  uint64_t checkpoint_bytes = 0;  // last checkpoint's file size
};

// Engine-portable body marker for the checkpoint header's codec field: the
// delta-varint stream restores into any engine (see checkpoint.hpp).
inline constexpr uint32_t kCodecTagPortable = 0x54524f50u;  // "PORT"

template <typename Engine>
class DurablePMA : private serve::WriteObserver {
 public:
  using key_type = uint64_t;
  using engine_type = Engine;
  using Serving = serve::ServingPMA<Engine>;
  using View = typename Serving::View;
  using Snapshot = typename Serving::Snapshot;

  // Opens (and recovers) the store rooted at `dir` inside `vfs`. Both must
  // outlive the object. Recovery accounting lands in recovery_report().
  DurablePMA(io::Vfs& vfs, std::string dir, DurableSettings settings = {})
      : vfs_(vfs), dir_(std::move(dir)), settings_(settings) {
    recover();
  }

  ~DurablePMA() override {
    // Join an in-flight background checkpoint; deliberately NO flush, NO
    // final sync — destruction is indistinguishable from a crash, which is
    // exactly what the recovery tests rely on. Call checkpoint() or
    // sync_wal() first for a clean shutdown.
    join_checkpoint_thread();
  }
  DurablePMA(const DurablePMA&) = delete;
  DurablePMA& operator=(const DurablePMA&) = delete;

  // ---- serving passthroughs ----------------------------------------------

  Serving& serving() { return *serving_; }
  const Serving& serving() const { return *serving_; }

  bool insert(key_type key) { return serving_->insert(key); }
  bool remove(key_type key) { return serving_->remove(key); }
  bool has(key_type key) const { return serving_->has(key); }
  uint64_t size() const { return serving_->size(); }
  typename Serving::Snapshot snapshot() const { return serving_->snapshot(); }

  uint64_t insert_batch(std::vector<key_type> batch) {
    return serving_->insert_batch(std::move(batch));
  }
  uint64_t remove_batch(std::vector<key_type> batch) {
    return serving_->remove_batch(std::move(batch));
  }

  // ---- durability control -------------------------------------------------

  // Drains the ingest queues (logging each run) and fsyncs every WAL
  // segment: on OK return, every op admitted before the call is durable.
  io::Status sync_wal() {
    io::Status st;
    serving_->flush_with([&] { st = sync_wals_locked(); });
    return st;
  }

  // Synchronous checkpoint: cut under the writer lock, body written on the
  // calling thread. Fails (leaving the previous checkpoint + WAL intact)
  // if another checkpoint is in flight or any I/O step errors.
  io::Status checkpoint() {
    Cut cut;
    io::Status st = begin_checkpoint(&cut);
    if (!st.ok()) return st;
    return finish_checkpoint(std::move(cut));
  }

  // Checkpoint with the body written on a background thread so ingest never
  // stalls past the cut itself. Errors surface via last_checkpoint_status()
  // and stats().checkpoint_failures.
  io::Status checkpoint_async() {
    Cut cut;
    io::Status st = begin_checkpoint(&cut);
    if (!st.ok()) return st;
    join_checkpoint_thread();
    ckpt_thread_ = std::thread([this, cut = std::move(cut)]() mutable {
      finish_checkpoint(std::move(cut));
    });
    return io::Status::good();
  }

  // Blocks until a checkpoint_async() body (if any) has finished.
  void wait_checkpoint() { join_checkpoint_thread(); }

  // ---- introspection ------------------------------------------------------

  const RecoveryReport& recovery_report() const { return report_; }
  DurableStats stats() const {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return stats_;
  }
  io::Status last_checkpoint_status() const {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return last_ckpt_status_;
  }
  // Every record with lsn <= this survives any crash (fsync'd).
  uint64_t durable_lsn() const {
    return durable_lsn_.load(std::memory_order_acquire);
  }
  // Highest lsn assigned to a logged record.
  uint64_t last_lsn() const {
    return last_lsn_pub_.load(std::memory_order_acquire);
  }
  uint64_t checkpoint_seq() const { return ckpt_seq_; }

 private:
  // ---- WriteObserver: WAL-before-apply (writer lock held) -----------------

  bool before_apply(const uint64_t* keys, uint64_t n,
                    bool is_insert) override {
    const uint64_t lsn = next_lsn_;
    const uint64_t shard = shard_for(keys[0]);
    WalWriter& w = wals_[shard];
    bool durable = false;
    io::Status st;
    for (int attempt = 0; attempt < 2; ++attempt) {
      if (w.poisoned() || attempt > 0) {
        // The current segment tail is untrusted; abandon it for a fresh
        // part so this record (same lsn) frames cleanly.
        if (!w.rotate(ckpt_seq_).ok()) break;
        w.clear_poisoned();
      }
      st = w.append(is_insert ? 0 : 1, lsn, keys,
                    static_cast<uint32_t>(n), &durable);
      if (st.ok()) break;
      note_append_error();
    }
    if (!st.ok() || w.poisoned()) {
      // Could not get the record onto disk: refuse the apply. The lsn was
      // never consumed by a durable record, so the on-disk sequence stays
      // gap-free and the next run reuses it.
      std::lock_guard<std::mutex> lock(stats_mutex_);
      stats_.wal_vetoes += n;
      return false;
    }
    next_lsn_ = lsn + 1;
    last_lsn_pub_.store(lsn, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.wal_records;
      stats_.wal_bytes += kWalHeaderBytes + 13 + 8 * n;
    }
    if (durable) {
      // THIS shard's segment synced through lsn — but the global watermark
      // is only as high as the oldest record still unsynced in ANY shard's
      // segment (records route by key, so lower lsns can sit in other
      // files).
      uint64_t mark = lsn;
      for (const WalWriter& other : wals_) {
        const uint64_t fu = other.first_unsynced_lsn();
        if (fu != 0 && fu - 1 < mark) mark = fu - 1;
      }
      if (mark > durable_lsn_.load(std::memory_order_relaxed)) {
        durable_lsn_.store(mark, std::memory_order_release);
      }
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.wal_syncs;
    }
    return true;
  }

  void note_append_error() {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.wal_append_errors;
  }

  uint64_t shard_for(key_type key) const {
    const std::vector<key_type>& sp = serving_->store().splitters();
    return static_cast<uint64_t>(
        std::upper_bound(sp.begin(), sp.end(), key) - sp.begin());
  }

  // Writer lock held. Syncs every segment; the watermark only advances if
  // ALL syncs succeed (records route to shards, so a lagging shard bounds
  // the global guarantee).
  io::Status sync_wals_locked() {
    io::Status first_err;
    for (WalWriter& w : wals_) {
      io::Status st = w.sync();
      if (!st.ok() && first_err.ok()) first_err = st;
    }
    if (first_err.ok() && next_lsn_ > 1) {
      durable_lsn_.store(next_lsn_ - 1, std::memory_order_release);
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.wal_syncs;
    }
    return first_err;
  }

  // ---- checkpointing ------------------------------------------------------

  struct Cut {
    // A free-standing copy of the published view: splitters + the shards'
    // shared_ptrs. NOT an epoch-pinned Snapshot — the body may be written
    // on a background thread, and epoch guards must be released on the
    // thread that created them; shared ownership has no such affinity and
    // keeps the engines alive just as well.
    std::optional<serve::SnapshotView<Engine>> view;
    std::vector<uint64_t> versions;
    uint64_t seq = 0;
    uint64_t cut_lsn = 0;
  };

  io::Status begin_checkpoint(Cut* cut) {
    bool expected = false;
    if (!ckpt_inflight_.compare_exchange_strong(expected, true)) {
      return io::Status::error("checkpoint already in flight");
    }
    io::Status st;
    serving_->flush_with([&] {
      // Barrier: the checkpoint claims cut_lsn, so every record at or
      // below it must already be durable when old segments get pruned.
      st = sync_wals_locked();
      if (!st.ok()) return;
      cut->seq = ckpt_seq_ + 1;
      cut->cut_lsn = next_lsn_ - 1;
      {
        // Pin briefly (this thread), copy the shard refs (safe: we hold
        // the writer lock, the only mutator of the control blocks), drop
        // the pin before the lambda returns.
        typename Serving::Snapshot snap = serving_->snapshot();
        const serve::SnapshotView<Engine>& v = snap.view();
        std::vector<std::shared_ptr<const Engine>> shards;
        shards.reserve(v.num_shards());
        for (uint64_t s = 0; s < v.num_shards(); ++s) {
          shards.push_back(v.shard_ref(s));
        }
        cut->view.emplace(v.splitters(), std::move(shards));
      }
      cut->versions.resize(wals_.size());
      for (uint64_t s = 0; s < wals_.size(); ++s) {
        cut->versions[s] = serving_->store().shard_version(s);
      }
      // Rotate INSIDE the cut: every later record (lsn > cut_lsn) lands in
      // a cseq == seq segment, which is what makes pruning cseq < seq
      // lossless.
      for (WalWriter& w : wals_) {
        io::Status rst = w.rotate(cut->seq);
        if (!rst.ok() && st.ok()) st = rst;
        w.clear_poisoned();
      }
      if (st.ok()) ckpt_seq_ = cut->seq;
    });
    if (!st.ok()) ckpt_inflight_.store(false, std::memory_order_release);
    return st;
  }

  io::Status finish_checkpoint(Cut cut) {
    uint64_t bytes = 0;
    io::Status st = write_checkpoint(vfs_, dir_, cut.seq, cut.cut_lsn,
                                     kCodecTagPortable, *cut.view,
                                     cut.versions, &bytes);
    cut.view.reset();  // release the shared engine refs promptly
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      last_ckpt_status_ = st;
      if (st.ok()) {
        ++stats_.checkpoints_written;
        stats_.checkpoint_bytes = bytes;
      } else {
        ++stats_.checkpoint_failures;
      }
    }
    if (st.ok()) prune_below(cut.seq);
    ckpt_inflight_.store(false, std::memory_order_release);
    return st;
  }

  // Removes checkpoints with seq < keep_seq and WAL segments with
  // cseq < keep_seq. Best-effort: a leftover file only costs scan time at
  // the next recovery (stale records lose lsn-duplicate arbitration and
  // land below the fresh checkpoint's cut).
  void prune_below(uint64_t keep_seq) {
    std::vector<std::string> names;
    if (!vfs_.list(dir_, names).ok()) return;
    for (const std::string& name : names) {
      uint64_t seq;
      WalName wn;
      if (parse_ckpt_name(name, &seq) && seq < keep_seq) {
        vfs_.remove(dir_ + "/" + name);
      } else if (parse_wal_name(name, &wn) && wn.cseq < keep_seq) {
        vfs_.remove(dir_ + "/" + name);
      }
    }
    vfs_.sync_dir(dir_);
  }

  void join_checkpoint_thread() {
    if (ckpt_thread_.joinable()) ckpt_thread_.join();
  }

  // ---- recovery -----------------------------------------------------------

  void recover() {
    vfs_.mkdir(dir_);
    std::vector<std::string> names;
    vfs_.list(dir_, names);

    // Orphaned tmp files are uncommitted checkpoints: delete.
    for (const std::string& name : names) {
      if (name.size() > 4 &&
          name.compare(name.size() - 4, 4, ".tmp") == 0) {
        vfs_.remove(dir_ + "/" + name);
      }
    }

    // Newest intact checkpoint wins; corrupt ones are skipped, not fatal.
    std::vector<uint64_t> ckpt_seqs;
    for (const std::string& name : names) {
      uint64_t seq;
      if (parse_ckpt_name(name, &seq)) ckpt_seqs.push_back(seq);
    }
    std::sort(ckpt_seqs.rbegin(), ckpt_seqs.rend());
    CheckpointInfo info;
    std::vector<std::vector<uint64_t>> shard_keys;
    bool have_ckpt = false;
    for (uint64_t seq : ckpt_seqs) {
      if (load_checkpoint(vfs_, dir_ + "/" + ckpt_name(seq), &info,
                          &shard_keys)
              .ok()) {
        have_ckpt = true;
        break;
      }
      ++report_.checkpoints_ignored;
    }

    // Build the store: the checkpoint dictates the shard layout; without
    // one, settings decide (fresh start).
    pma::ShardedSettings sharded = settings_.serving.sharded;
    if (have_ckpt) sharded.num_shards = info.shard_counts.size();
    pma::ShardedPMA<Engine> store(sharded);
    if (have_ckpt) {
      store.restore_from_checkpoint(info.splitters, [&](uint64_t s) {
        return std::move(shard_keys[s]);
      });
      report_.recovered_checkpoint = true;
      report_.checkpoint_seq = info.seq;
      report_.checkpoint_keys = info.total_keys;
      report_.cut_lsn = info.cut_lsn;
    }

    // Scan every surviving segment (old generations included: pruning may
    // not have finished) and merge by lsn.
    std::vector<WalRecord> records;
    uint64_t max_part = 0;
    uint64_t max_cseq = 0;
    for (const std::string& name : names) {
      WalName wn;
      if (!parse_wal_name(name, &wn)) continue;
      max_cseq = std::max(max_cseq, wn.cseq);
      const size_t before = records.size();
      WalScanStats st = scan_wal_file(vfs_, dir_ + "/" + name, records);
      for (size_t i = before; i < records.size(); ++i) {
        records[i].cseq = wn.cseq;
        records[i].part = wn.part;
      }
      report_.records_skipped += st.corrupt_skipped;
      report_.torn_tails += st.torn_tails;
      report_.bytes_scanned += st.bytes_scanned;
      ++report_.segments_scanned;
      max_part = std::max(max_part, wn.part);
    }

    // Duplicate lsns (stale segments from before an earlier recovery)
    // resolve to the newest provenance; then replay the contiguous run.
    std::sort(records.begin(), records.end(),
              [](const WalRecord& a, const WalRecord& b) {
                if (a.lsn != b.lsn) return a.lsn < b.lsn;
                if (a.cseq != b.cseq) return a.cseq < b.cseq;
                return a.part < b.part;
              });
    uint64_t expect = report_.cut_lsn + 1;
    report_.last_lsn = report_.cut_lsn;
    for (size_t i = 0; i < records.size(); ++i) {
      if (i + 1 < records.size() && records[i + 1].lsn == records[i].lsn) {
        ++report_.records_stale;  // superseded duplicate
        continue;
      }
      WalRecord& rec = records[i];
      if (rec.lsn < expect) {
        ++report_.records_stale;  // at/below the checkpoint cut
        continue;
      }
      if (rec.lsn > expect) {
        // Gap: a record in the middle was lost. Everything from here on
        // was never acknowledged below the durable watermark — drop it.
        report_.records_dropped += records.size() - i;
        break;
      }
      if (rec.is_insert) {
        store.insert_batch(rec.keys.data(), rec.keys.size());
      } else {
        store.remove_batch(rec.keys.data(), rec.keys.size());
      }
      ++report_.records_replayed;
      report_.keys_replayed += rec.keys.size();
      report_.last_lsn = rec.lsn;
      expect = rec.lsn + 1;
    }

    next_lsn_ = report_.last_lsn + 1;
    last_lsn_pub_.store(report_.last_lsn, std::memory_order_release);
    ckpt_seq_ = have_ckpt ? info.seq : 0;

    // Hand the restored store to the serving layer and hook the WAL in.
    serving_.emplace(std::move(store), settings_.serving);
    const uint64_t shards = serving_->store().num_shards();
    wals_.reserve(shards);
    for (uint64_t s = 0; s < shards; ++s) {
      wals_.emplace_back(vfs_, dir_, s, settings_.wal);
      wals_[s].seed_part(max_part);
    }

    // Re-checkpoint the recovered state under a fresh seq, then prune: the
    // replayed records' lsns are about to be REUSED by new writes, and a
    // stale segment still holding the old lsns must not survive to
    // ambiguate a future recovery. (On a fresh dir this just writes an
    // empty checkpoint — cheap, and it anchors lsn arbitration from the
    // first byte.) Failure is tolerated: the store still serves; the next
    // successful checkpoint cleans up. The fresh seq clears BOTH the
    // newest checkpoint and the newest WAL generation (a cut whose body
    // never committed leaves cseq > every checkpoint seq).
    const uint64_t fresh_seq =
        std::max(ckpt_seqs.empty() ? 0 : ckpt_seqs.front(), max_cseq) + 1;
    {
      std::vector<uint64_t> versions(shards);
      for (uint64_t s = 0; s < shards; ++s) {
        versions[s] = serving_->store().shard_version(s);
      }
      typename Serving::Snapshot snap = serving_->snapshot();
      uint64_t bytes = 0;
      io::Status st =
          write_checkpoint(vfs_, dir_, fresh_seq, report_.last_lsn,
                           kCodecTagPortable, snap.view(), versions, &bytes);
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        last_ckpt_status_ = st;
        if (st.ok()) {
          ++stats_.checkpoints_written;
          stats_.checkpoint_bytes = bytes;
        } else {
          ++stats_.checkpoint_failures;
        }
      }
      if (st.ok()) {
        ckpt_seq_ = fresh_seq;
        prune_below(fresh_seq);
      }
    }

    // Open the live segments and arm the WAL-before-apply hook.
    for (WalWriter& w : wals_) w.rotate(ckpt_seq_);
    durable_lsn_.store(report_.last_lsn, std::memory_order_release);
    serving_->set_write_observer(this);
  }

  io::Vfs& vfs_;
  std::string dir_;
  DurableSettings settings_;
  RecoveryReport report_;

  std::vector<WalWriter> wals_;  // one per shard, writer-lock protected
  uint64_t next_lsn_ = 1;        // writer-lock protected
  uint64_t ckpt_seq_ = 0;        // writer-lock protected (cuts only)
  std::atomic<uint64_t> durable_lsn_{0};
  std::atomic<uint64_t> last_lsn_pub_{0};

  std::atomic<bool> ckpt_inflight_{false};
  std::thread ckpt_thread_;
  mutable std::mutex stats_mutex_;
  DurableStats stats_;
  io::Status last_ckpt_status_;

  // Last so it is destroyed FIRST: a late combine may still fire the
  // observer, which uses wals_ above.
  std::optional<Serving> serving_;
};

}  // namespace cpma::durable
