// Density-bound settings shared by the PMA and CPMA.
//
// Both leaf policies report occupancy in BYTES (the CPMA counts filled bytes,
// the PMA counts 8 bytes per element), so one set of density bounds covers
// both — exactly the generalization Section 5 of the paper makes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "util/env.hpp"

namespace cpma::pma {

// Free bytes every leaf must retain after any rebalance so that a single
// point insert can always be placed before its rebalance runs. The worst
// case is a compressed-leaf insert that replaces one delta with two
// (<= 2*10-1 extra bytes) or displaces the head (8 + 10 bytes).
constexpr size_t kLeafSlack = 24;

// --------------------------------------------------------------------------
// Codec and adaptive-selection knobs. Runtime values, read from the
// environment once per process, so bench sweeps can tune them without a
// rebuild. The defaults are the measured-good values; the env names are
// documented in README "Leaf codecs & adaptive selection".
// --------------------------------------------------------------------------

// ByteVarintCodec::prefer_scalar: number of continue bits in an 8-byte
// probe at or above which next_block takes the tight scalar loop instead of
// the block path (>= 3 of 8 bytes in multi-byte codes means at most ~5
// values per window, so the word fast path cannot engage).
// The knob values live in namespace-scope inline variables, not
// function-local statics: the getters sit on decode hot paths (prefer_scalar
// runs once per 8-byte probe) and a local static would re-check its guard on
// every call, where these compile to a plain load.
namespace detail {
inline const unsigned kPreferScalarThreshold =
    static_cast<unsigned>(util::env_u64("CPMA_PREFER_SCALAR_THRESHOLD", 3));
}  // namespace detail

inline unsigned prefer_scalar_threshold() {
  return detail::kPreferScalarThreshold;
}

// Adaptive leaf selection: the bitmap format is chosen when its exact
// encoded size times this margin is no larger than the canonical
// (byte-varint) size. 1.0 selects bitmap whenever it is at least as small;
// raise it to demand a size advantage before accepting bitmap's higher
// point-update cost. (A span/density pre-filter proved too blunt: a leaf
// holding several dense islands separated by large gaps has a huge span
// but still compresses ~6x better as a bitmap — window-delta links cost
// ~14 bytes per gap.)
namespace detail {
inline const double kAdaptiveBitmapMargin =
    util::env_double("CPMA_ADAPTIVE_BITMAP_MARGIN", 1.0);
}  // namespace detail

inline double adaptive_bitmap_margin() { return detail::kAdaptiveBitmapMargin; }

// Adaptive leaf selection: average canonical (byte-varint) bytes per key at
// or above which the group-varint format is attempted — the multi-byte-delta
// regime where its unconditional-width block decode beats per-byte
// continue-bit chasing.
namespace detail {
inline const double kAdaptiveGvBytesPerKey =
    util::env_double("CPMA_ADAPTIVE_GV_BYTES_PER_KEY", 2.5);
}  // namespace detail

inline double adaptive_gv_bytes_per_key() {
  return detail::kAdaptiveGvBytesPerKey;
}

// CPMA_EYTZINGER=0 disables the branchless Eytzinger mirror of the head
// index (head_eytzinger.hpp) and falls back to the flat two-binary-search
// find_leaf. The mirror is maintained either way (its cost is a few writes
// on paths that already rewrite the flat index); the knob only selects the
// descent, so flipping it mid-process is safe for experiments.
namespace detail {
inline const bool kEytzingerEnabled = util::env_u64("CPMA_EYTZINGER", 1) != 0;
}  // namespace detail

inline bool eytzinger_enabled() { return detail::kEytzingerEnabled; }

// CPMA_FORCE_CODEC=byte-varint|group-varint|bitmap pins the adaptive leaf
// to one format (debug aid; bitmap/group-varint still fall back to
// byte-varint when the forced format cannot fit a particular run).
enum class ForcedCodec { kNone, kByteVarint, kGroupVarint, kBitmap };

namespace detail {
inline const ForcedCodec kForcedCodec = [] {
  const char* s = std::getenv("CPMA_FORCE_CODEC");
  if (s == nullptr || *s == '\0') return ForcedCodec::kNone;
  if (std::strcmp(s, "byte-varint") == 0) return ForcedCodec::kByteVarint;
  if (std::strcmp(s, "group-varint") == 0) return ForcedCodec::kGroupVarint;
  if (std::strcmp(s, "bitmap") == 0) return ForcedCodec::kBitmap;
  return ForcedCodec::kNone;
}();
}  // namespace detail

inline ForcedCodec forced_codec() { return detail::kForcedCodec; }

struct PmaSettings {
  // Array growth multiplier when the root's upper density bound is violated
  // (Appendix C of the paper sweeps 1.1..2.0; 1.2 is the paper's choice).
  double growth_factor = 1.2;

  // Upper density bounds. Leaves get a dedicated bound with extra headroom
  // over internal nodes: after any redistribution at height h >= 1, every
  // leaf in the region sits at <= upper_internal of its capacity, so each
  // leaf absorbs (upper_leaf - upper_internal) * leaf_bytes of inserts
  // before it can trigger another walk. Without this step the per-level
  // gap is a couple of keys and nearly every touched leaf re-violates on
  // every batch, which makes the counting phase the dominant cost.
  // Internal bounds DECREASE linearly from upper_internal (height 1) to
  // upper_root (the root), the classic PMA ramp.
  double upper_leaf = 0.92;
  double upper_internal = 0.80;
  double upper_root = 0.70;

  // Lower density bounds for deletes, INCREASING with height; leaves again
  // get extra slack below the internal ramp.
  double lower_leaf = 0.04;
  double lower_internal = 0.12;
  double lower_root = 0.20;

  double upper_at(uint64_t height, uint64_t tree_height) const {
    if (tree_height == 0) return upper_root;  // a single leaf IS the root
    if (height == 0) return upper_leaf;
    if (tree_height == 1) return upper_root;
    double t = static_cast<double>(height - 1) /
               static_cast<double>(tree_height - 1);
    return upper_internal + (upper_root - upper_internal) * t;
  }

  double lower_at(uint64_t height, uint64_t tree_height) const {
    if (tree_height == 0) return lower_root;  // a single leaf IS the root
    if (height == 0) return lower_leaf;
    if (tree_height == 1) return lower_root;
    double t = static_cast<double>(height - 1) /
               static_cast<double>(tree_height - 1);
    return lower_internal + (lower_root - lower_internal) * t;
  }
};

}  // namespace cpma::pma
