// Density-bound settings shared by the PMA and CPMA.
//
// Both leaf policies report occupancy in BYTES (the CPMA counts filled bytes,
// the PMA counts 8 bytes per element), so one set of density bounds covers
// both — exactly the generalization Section 5 of the paper makes.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cpma::pma {

// Free bytes every leaf must retain after any rebalance so that a single
// point insert can always be placed before its rebalance runs. The worst
// case is a compressed-leaf insert that replaces one delta with two
// (<= 2*10-1 extra bytes) or displaces the head (8 + 10 bytes).
constexpr size_t kLeafSlack = 24;

struct PmaSettings {
  // Array growth multiplier when the root's upper density bound is violated
  // (Appendix C of the paper sweeps 1.1..2.0; 1.2 is the paper's choice).
  double growth_factor = 1.2;

  // Upper density bounds. Leaves get a dedicated bound with extra headroom
  // over internal nodes: after any redistribution at height h >= 1, every
  // leaf in the region sits at <= upper_internal of its capacity, so each
  // leaf absorbs (upper_leaf - upper_internal) * leaf_bytes of inserts
  // before it can trigger another walk. Without this step the per-level
  // gap is a couple of keys and nearly every touched leaf re-violates on
  // every batch, which makes the counting phase the dominant cost.
  // Internal bounds DECREASE linearly from upper_internal (height 1) to
  // upper_root (the root), the classic PMA ramp.
  double upper_leaf = 0.92;
  double upper_internal = 0.80;
  double upper_root = 0.70;

  // Lower density bounds for deletes, INCREASING with height; leaves again
  // get extra slack below the internal ramp.
  double lower_leaf = 0.04;
  double lower_internal = 0.12;
  double lower_root = 0.20;

  double upper_at(uint64_t height, uint64_t tree_height) const {
    if (tree_height == 0) return upper_root;  // a single leaf IS the root
    if (height == 0) return upper_leaf;
    if (tree_height == 1) return upper_root;
    double t = static_cast<double>(height - 1) /
               static_cast<double>(tree_height - 1);
    return upper_internal + (upper_root - upper_internal) * t;
  }

  double lower_at(uint64_t height, uint64_t tree_height) const {
    if (tree_height == 0) return lower_root;  // a single leaf IS the root
    if (height == 0) return lower_leaf;
    if (tree_height == 1) return lower_root;
    double t = static_cast<double>(height - 1) /
               static_cast<double>(tree_height - 1);
    return lower_internal + (lower_root - lower_internal) * t;
  }
};

}  // namespace cpma::pma
