// ShardedPMA<Engine> — a keyspace-sharded composition of independent
// PMA/CPMA engines behind the single-engine set API.
//
// The paper parallelizes *within* one batch update; a single engine still
// serializes on one root, one resize coordinate, and one head index. This
// layer partitions the keyspace into S contiguous ranges, each owned by an
// independent engine ("shard"), PaC-tree style: many independent compressed
// chunks composed under one collection API — except our chunks are whole
// pointer-free engines that keep the paper's batch-parallel semantics
// internally.
//
//  * Routing: shard i+1 owns keys >= splitters_[i] (splitters are ascending;
//    shard 0 owns everything below splitters_[0], including the key-0
//    sentinel). A sorted batch is partitioned against the splitters with the
//    same exponential-gallop idiom as the engine's route_batch, then each
//    shard's slice is applied by a sibling top-level task — one parallel_for
//    at grain 1 — with every shard free to use its full inner parallelism
//    (nested fork-join; the work-stealing scheduler interleaves the shards'
//    subtasks).
//  * Splitter seeding: an empty structure receiving its first large sorted
//    batch takes its splitters from the batch's quantiles, so bulk loads
//    start balanced instead of waiting for the rebalancer to spread shard 0.
//  * Adaptive rebalancing: shard sizes are compared in CONTENT BYTES (the
//    terminator-scan sizing resize_spread uses — the honest coordinate for
//    compressed leaves). When the largest shard drifts past
//    rebalance_ratio * mean, one left-to-right sweep moves boundary ranges
//    between neighbors: the donor's engine extracts the range with
//    extract_range (leaf surgery + one direct spread, no full rebuild) and
//    the receiver absorbs it as a sorted batch. A cheap O(S) key-count probe
//    gates the byte scan so steady-state batches never pay it.
//  * Queries: point ops route to one shard; successor/map_range/
//    map_range_length/iteration stitch shard results in key order (shard
//    ranges are disjoint and ascending, so concatenation preserves order).
//
// The per-shard engines are completely independent: no shared state, no
// cross-shard locks — the composition is safe under the engine's
// single-writer model because one batch dispatch writes each shard from
// exactly one task.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "parallel/reduce.hpp"
#include "parallel/scheduler.hpp"
#include "pma/flat_leaves.hpp"
#include "pma/pma.hpp"
#include "util/uninitialized.hpp"

namespace cpma::pma {

struct ShardedSettings {
  // Number of keyspace shards; 0 picks the scheduler's worker count
  // (clamped to [1, 64]) — one top-level task per worker.
  uint64_t num_shards = 0;

  // Rebalance trigger: a pass runs when the largest shard's content bytes
  // exceed ratio * (total / S). 2.0 tolerates healthy skew while keeping the
  // slowest shard within ~2x of the mean batch work.
  double rebalance_ratio = 2.0;

  // Total content below this never rebalances: boundary moves on tiny sets
  // churn more bytes than they balance.
  uint64_t min_rebalance_bytes = 1 << 20;

  // Per-shard engine settings (density bounds, growth factor).
  PmaSettings engine;
};

// Router-side counters, kept separately from the engines' BatchPhaseTimes:
// route_ns is the sharded sort + splitter partition, rebalance_ns the full
// rebalance passes (byte scans + boundary moves).
struct ShardRouterTimes {
  uint64_t route_ns = 0;
  uint64_t rebalance_ns = 0;
  uint64_t rebalances = 0;  // passes that ran (post-probe)
  uint64_t moves = 0;       // boundary ranges moved between neighbors
};

template <typename Engine>
class ShardedPMA {
 public:
  using key_type = uint64_t;
  using engine_type = Engine;
  using kvec = typename Engine::kvec;

  // First sorted batch at least this large seeds the splitters from its
  // quantiles (smaller loads start in shard 0 and rely on rebalancing).
  static constexpr uint64_t kSplitterSeedMin = 1024;

  explicit ShardedPMA(ShardedSettings settings = {}) : settings_(settings) {
    uint64_t s = settings_.num_shards;
    if (s == 0) {
      s = par::Scheduler::instance().num_workers();
      s = std::min<uint64_t>(std::max<uint64_t>(s, 1), 64);
    }
    shards_.reserve(s);
    for (uint64_t i = 0; i < s; ++i) shards_.emplace_back(settings_.engine);
    versions_.assign(s, 0);
    // All-UINT64_MAX splitters route every key below 2^64-1 to shard 0,
    // which is exactly the degenerate one-shard layout an empty structure
    // wants; seeding or rebalancing replaces them.
    splitters_.assign(s - 1, UINT64_MAX);
  }

  // Builds from an arbitrary range of keys (need not be sorted or unique):
  // sort + dedupe once, seed splitters, then bulk-build every shard through
  // the engine's build_from_sorted hook.
  ShardedPMA(const key_type* start, const key_type* end,
             ShardedSettings settings = {})
      : ShardedPMA(settings) {
    kvec keys(start, end);
    par::parallel_sort(keys.data(), keys.size());
    par::dedupe_sorted(keys);
    if (keys.size() >= kSplitterSeedMin) {
      set_splitters_from_sorted(keys.data(), keys.size());
    }
    std::vector<uint64_t> bounds;
    partition_batch(keys.data(), keys.size(), bounds);
    par::parallel_for(0, shards_.size(), [&](uint64_t s) {
      shards_[s].build_from_sorted(keys.data() + bounds[s],
                                   bounds[s + 1] - bounds[s]);
      if (bounds[s + 1] > bounds[s]) ++versions_[s];
    }, 1);
  }

  // Checkpoint restore hook (src/durable/): adopt the checkpoint's splitter
  // layout verbatim, then bulk-build each shard from its decoded sorted key
  // stream — `load_shard(s)` returns shard s's keys (sorted, deduped,
  // within the splitter range, as the validated checkpoint guarantees).
  // Requires an empty structure with matching shard count; returns false
  // (untouched) otherwise. Shards load in parallel as sibling tasks.
  template <typename Loader>
  bool restore_from_checkpoint(std::vector<key_type> splitters,
                               Loader&& load_shard) {
    if (!empty() || splitters.size() + 1 != shards_.size()) return false;
    splitters_ = std::move(splitters);
    par::parallel_for(0, shards_.size(), [&](uint64_t s) {
      std::vector<key_type> keys = load_shard(s);
      shards_[s].build_from_sorted(keys.data(), keys.size());
      if (!keys.empty()) ++versions_[s];
    }, 1);
    return true;
  }

  // ---- size & space -------------------------------------------------------

  uint64_t size() const {
    uint64_t total = 0;
    for (const Engine& e : shards_) total += e.size();
    return total;
  }

  // Short-circuits on the first non-empty shard instead of summing all S
  // shard sizes — empty() sits on hot guard paths (splitter seeding, the
  // serving layer's per-op checks) where the O(S) size() walk showed up.
  bool empty() const {
    for (const Engine& e : shards_) {
      if (!e.empty()) return false;
    }
    return true;
  }

  uint64_t get_size() const {
    uint64_t total = sizeof(*this) + splitters_.capacity() * sizeof(key_type);
    for (const Engine& e : shards_) total += e.get_size();
    return total;
  }

  uint64_t num_shards() const { return shards_.size(); }
  const Engine& shard(uint64_t s) const { return shards_[s]; }
  const std::vector<key_type>& splitters() const { return splitters_; }
  const ShardedSettings& settings() const { return settings_; }

  // Monotone per-shard mutation counter: bumped whenever the shard's SET
  // CONTENT may have changed (point op that took effect, batch slice with a
  // nonzero delta, boundary move). Equal versions across two observations
  // guarantee identical content — the serving layer's snapshot publisher
  // uses this to copy only dirty shards and share the rest.
  uint64_t shard_version(uint64_t s) const { return versions_[s]; }

  // Per-shard content bytes (the rebalance coordinate), computed in
  // parallel; benches report min/max of this as the imbalance statistic.
  std::vector<uint64_t> shard_content_bytes() const {
    std::vector<uint64_t> bytes(shards_.size());
    par::parallel_for(0, shards_.size(), [&](uint64_t s) {
      bytes[s] = shards_[s].content_bytes();
    }, 1);
    return bytes;
  }

  // ---- point operations ---------------------------------------------------

  bool has(key_type key) const { return shards_[shard_for(key)].has(key); }

  bool insert(key_type key) {
    const uint64_t s = shard_for(key);
    const bool added = shards_[s].insert(key);
    if (added) ++versions_[s];
    return added;
  }

  bool remove(key_type key) {
    const uint64_t s = shard_for(key);
    const bool removed = shards_[s].remove(key);
    if (removed) ++versions_[s];
    return removed;
  }

  std::optional<key_type> successor(key_type key) const {
    for (uint64_t s = shard_for(key); s < shards_.size(); ++s) {
      if (auto v = shards_[s].successor(key)) return v;
    }
    return std::nullopt;
  }

  // Empty set -> nullopt. (These used to return key 0, which is a real,
  // storable key here — an empty structure was indistinguishable from {0}.)
  std::optional<key_type> min() const {
    for (const Engine& e : shards_) {
      if (auto v = e.min()) return v;
    }
    return std::nullopt;
  }

  std::optional<key_type> max() const {
    for (uint64_t s = shards_.size(); s-- > 0;) {
      if (auto v = shards_[s].max()) return v;
    }
    return std::nullopt;
  }

  // ---- batch operations ---------------------------------------------------

  // Inserts a batch; `input` is used as scratch (sorted in place when
  // sorted == false). Returns the number of keys newly added.
  uint64_t insert_batch(key_type* input, uint64_t n, bool sorted = false) {
    return batch_dispatch<true>(input, n, sorted);
  }
  uint64_t insert_batch(std::vector<key_type> batch, bool sorted = false) {
    return insert_batch(batch.data(), batch.size(), sorted);
  }

  // Removes a batch; returns the number of keys actually removed.
  uint64_t remove_batch(key_type* input, uint64_t n, bool sorted = false) {
    return batch_dispatch<false>(input, n, sorted);
  }
  uint64_t remove_batch(std::vector<key_type> batch, bool sorted = false) {
    return remove_batch(batch.data(), batch.size(), sorted);
  }

  // Aggregated batch-pipeline breakdown: the sum of every shard's
  // BatchPhaseTimes, with the router's own sort + partition time folded
  // into route_ns. (Shard phases overlap in wall-clock when they run as
  // siblings, so the sums measure total work, not elapsed time.)
  BatchPhaseTimes batch_phase_times() const {
    BatchPhaseTimes t;
    t.route_ns = router_times_.route_ns;
    for (const Engine& e : shards_) {
      const BatchPhaseTimes& p = e.batch_phase_times();
      t.route_ns += p.route_ns;
      t.merge_ns += p.merge_ns;
      t.count_ns += p.count_ns;
      t.redistribute_ns += p.redistribute_ns;
      t.spread_ns += p.spread_ns;
      t.rebuild_ns += p.rebuild_ns;
      t.batches += p.batches;
      t.rebuilds += p.rebuilds;
      t.spreads += p.spreads;
    }
    return t;
  }
  void reset_batch_phase_times() {
    router_times_ = ShardRouterTimes{};
    for (Engine& e : shards_) e.reset_batch_phase_times();
  }
  const ShardRouterTimes& router_times() const { return router_times_; }

  // ---- rebalancing --------------------------------------------------------

  // One rebalance pass, unconditionally (the batch paths run it behind the
  // drift probe; point-op-only workloads can call it directly). Sweeps
  // left to right over neighbor pairs moving boundary ranges toward equal
  // content bytes; a single pass converges geometrically over successive
  // batches rather than chasing exact balance in one go.
  void rebalance() { rebalance_with(shard_content_bytes()); }

 private:
  void rebalance_with(std::vector<uint64_t> bytes) {
    const uint64_t s_count = shards_.size();
    if (s_count <= 1) return;
    detail::PhaseTimer pt;
    uint64_t total = 0;
    for (uint64_t b : bytes) total += b;
    if (total == 0) {
      router_times_.rebalance_ns += pt.lap();
      return;
    }
    ++router_times_.rebalances;
    uint64_t prefix = 0;
    for (uint64_t i = 0; i + 1 < s_count; ++i) {
      // Ideal cumulative content through shard i, and a dead band below
      // which a boundary move churns more than it balances (a couple of
      // leaves of granularity — split points land on leaf heads).
      const uint64_t ideal = (i + 1) * (total / s_count);
      const uint64_t cum = prefix + bytes[i];
      const uint64_t slack = std::max<uint64_t>(
          total / (8 * s_count), 2 * shards_[i].leaf_bytes());
      if (cum > ideal + slack) {
        // Donor: shard i's tail (everything at/after the split key) moves
        // right. keep < bytes[i] because cum > ideal.
        const uint64_t keep = bytes[i] - std::min(cum - ideal, bytes[i]);
        if (auto split = shards_[i].split_key_for_bytes(keep)) {
          kvec moved = shards_[i].extract_range(*split, splitters_[i]);
          if (!moved.empty()) {
            shards_[i + 1].insert_batch(moved.data(), moved.size(),
                                        /*sorted=*/true);
            splitters_[i] = *split;
            ++versions_[i];
            ++versions_[i + 1];
            ++router_times_.moves;
            bytes[i] = shards_[i].content_bytes();
            bytes[i + 1] = shards_[i + 1].content_bytes();
          }
        }
      } else if (cum + slack < ideal && bytes[i + 1] > 0) {
        // Receiver: pull shard i+1's head range left. When the want covers
        // shard i+1 entirely (split lands past its content), take the whole
        // shard: its upper bound becomes the new splitter.
        const uint64_t want = ideal - cum;
        std::optional<key_type> split =
            shards_[i + 1].split_key_for_bytes(want);
        const key_type cut =
            split ? *split
                  : (i + 2 < s_count ? splitters_[i + 1] : UINT64_MAX);
        kvec moved = shards_[i + 1].extract_range(0, cut);
        if (!moved.empty()) {
          shards_[i].insert_batch(moved.data(), moved.size(),
                                  /*sorted=*/true);
          splitters_[i] = cut;
          ++versions_[i];
          ++versions_[i + 1];
          ++router_times_.moves;
          bytes[i] = shards_[i].content_bytes();
          bytes[i + 1] = shards_[i + 1].content_bytes();
        }
      }
      prefix += bytes[i];
    }
    router_times_.rebalance_ns += pt.lap();
  }

 public:
  // ---- scans --------------------------------------------------------------

  // Applies f(key) to every key in sorted order (shard ranges ascend, so
  // shard-by-shard is global key order).
  template <typename F>
  void map(F&& f) const {
    for (const Engine& e : shards_) e.map(f);
  }

  // Applies f(key) to every key, in parallel across shards AND across each
  // shard's leaves (nested sibling tasks, like the batch dispatch).
  template <typename F>
  void parallel_map(F&& f) const {
    par::parallel_for(0, shards_.size(), [&](uint64_t s) {
      shards_[s].parallel_map(f);
    }, 1);
  }

  // Applies f to keys in [start, end), in order, stitching shards.
  template <typename F>
  void map_range(F&& f, key_type start, key_type end) const {
    if (start >= end) return;
    for (uint64_t s = shard_for(start); s < shards_.size(); ++s) {
      // Shard s's lower bound at/after `end` means no further shard
      // overlaps the range.
      if (s > 0 && splitters_[s - 1] >= end) break;
      shards_[s].map_range(f, start, end);
    }
  }

  // Applies f to at most `length` keys starting from the smallest key
  // >= start; returns how many were applied.
  template <typename F>
  uint64_t map_range_length(F&& f, key_type start, uint64_t length) const {
    uint64_t applied = 0;
    for (uint64_t s = shard_for(start);
         s < shards_.size() && applied < length; ++s) {
      applied += shards_[s].map_range_length(f, start, length - applied);
    }
    return applied;
  }

  // Parallel sum of all keys: per-shard sums as sibling tasks, each shard
  // summing its leaves in parallel underneath.
  uint64_t sum() const {
    return par::parallel_sum<uint64_t>(
        0, shards_.size(), [&](uint64_t s) { return shards_[s].sum(); }, 1);
  }

  // ---- batch queries ------------------------------------------------------
  // Sorted query batches are partitioned against the splitters (the same
  // gallop as the insert router) and each shard's slice runs as a sibling
  // task with the engine's full inner parallelism underneath. All slices
  // write one shared output: bitmap words via relaxed atomic ORs (the
  // engine's bit protocol), out[] slots per-query exclusive.

  void has_batch(const key_type* keys, uint64_t n, uint64_t* bits,
                 uint64_t bit_base = 0) const {
    if (n == 0) return;
    std::vector<uint64_t> bounds;
    partition_batch(keys, n, bounds);
    par::parallel_for(0, shards_.size(), [&](uint64_t s) {
      const uint64_t b = bounds[s], e = bounds[s + 1];
      if (e > b) shards_[s].has_batch(keys + b, e - b, bits, bit_base + b);
    }, 1);
  }

  std::vector<uint64_t> has_batch(const key_type* keys, uint64_t n) const {
    std::vector<uint64_t> bits((n + 63) / 64, 0);
    has_batch(keys, n, bits.data(), 0);
    return bits;
  }

  // Per-shard successor_batch, then one stitch pass: queries whose slice
  // shard holds no key >= them (the slice's unfound SUFFIX — slices are
  // sorted) share one answer, the next nonempty shard's minimum.
  void successor_batch(const key_type* keys, uint64_t n, key_type* out,
                       uint64_t* found, uint64_t bit_base = 0) const {
    if (n == 0) return;
    const uint64_t s_count = shards_.size();
    std::vector<uint64_t> bounds;
    partition_batch(keys, n, bounds);
    par::parallel_for(0, s_count, [&](uint64_t s) {
      const uint64_t b = bounds[s], e = bounds[s + 1];
      if (e > b) {
        shards_[s].successor_batch(keys + b, e - b, out + b, found,
                                   bit_base + b);
      }
    }, 1);
    // next_min[s]: smallest key in any shard after s (the shared answer for
    // shard s's spill-over queries). The parallel_for above joined, so the
    // found bits are plainly readable here.
    std::optional<key_type> next_min;
    for (uint64_t s = s_count; s-- > 0;) {
      if (next_min) {
        for (uint64_t q = bounds[s + 1]; q-- > bounds[s];) {
          const uint64_t bit = bit_base + q;
          if ((found[bit >> 6] >> (bit & 63)) & 1) break;  // found suffix ends
          out[q] = *next_min;
          found[bit >> 6] |= uint64_t{1} << (bit & 63);
        }
      }
      if (auto v = shards_[s].min()) next_min = v;
    }
  }

  // Engine map_ranges stitched across shards: each shard receives the slice
  // of ranges overlapping its key span (a range straddling a splitter goes
  // to every shard it crosses — each emits only its stored keys, so the
  // union is exact). Same f contract as the engine, plus: one straddling
  // range's keys may arrive from different shard tasks concurrently.
  template <typename F>
  void map_ranges(const std::pair<key_type, key_type>* ranges, uint64_t m,
                  F&& f) const {
    if (m == 0) return;
    const uint64_t s_count = shards_.size();
    std::vector<std::pair<uint64_t, uint64_t>> slices(s_count);
    uint64_t rb = 0;
    for (uint64_t s = 0; s < s_count; ++s) {
      const key_type lo = s == 0 ? 0 : splitters_[s - 1];
      while (rb < m && ranges[rb].second <= lo) ++rb;
      uint64_t re = rb;
      while (re < m &&
             (s + 1 >= s_count || ranges[re].first < splitters_[s])) {
        ++re;
      }
      slices[s] = {rb, re};
    }
    par::parallel_for(0, s_count, [&](uint64_t s) {
      auto [b, e] = slices[s];
      if (e > b) {
        shards_[s].map_ranges(
            ranges + b, e - b,
            [&, b](uint64_t ri, key_type k) { f(b + ri, k); });
      }
    }, 1);
  }

  // ---- iteration ----------------------------------------------------------

  class const_iterator {
   public:
    using value_type = key_type;
    using difference_type = std::ptrdiff_t;
    using reference = key_type;
    using pointer = const key_type*;
    using iterator_category = std::forward_iterator_tag;

    const_iterator() = default;
    key_type operator*() const { return *it_; }

    const_iterator& operator++() {
      ++it_;
      advance_past_empty();
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator copy = *this;
      ++*this;
      return copy;
    }

    bool operator==(const const_iterator& o) const {
      if (shard_ != o.shard_) return false;
      if (owner_ == nullptr || shard_ == owner_->shards_.size()) return true;
      return it_ == o.it_;
    }

   private:
    friend class ShardedPMA;
    explicit const_iterator(const ShardedPMA* owner) : owner_(owner) {}

    void advance_past_empty() {
      while (shard_ < owner_->shards_.size() &&
             it_ == owner_->shards_[shard_].end()) {
        ++shard_;
        if (shard_ < owner_->shards_.size()) {
          it_ = owner_->shards_[shard_].begin();
        }
      }
    }

    const ShardedPMA* owner_ = nullptr;
    uint64_t shard_ = 0;
    typename Engine::const_iterator it_{};
  };

  const_iterator begin() const {
    const_iterator it(this);
    it.shard_ = 0;
    it.it_ = shards_[0].begin();
    it.advance_past_empty();
    return it;
  }

  const_iterator end() const {
    const_iterator it(this);
    it.shard_ = shards_.size();
    return it;
  }

  // ---- flattened-leaf iteration (graph vertex index) ----------------------
  // The engine's advanced-iteration surface, flattened across shards: global
  // leaf l is shard 0's leaves, then shard 1's, ... (still key order, since
  // shard ranges ascend). Positions are (shard, engine Position) and are
  // invalidated by ANY update, exactly like engine positions — the graph
  // layer rebuilds its vertex index after batches. This is what lets
  // FGraphT<SCPMA> run the paper's graph suite on the sharded store.

  using Position = FlatPosition<Engine>;
  using FlatOps = FlatLeafOps<ShardedPMA, Engine>;

  uint64_t num_leaves() const { return FlatOps::num_leaves(*this); }

  uint64_t leaf_element_count(uint64_t l) const {
    return FlatOps::leaf_element_count(*this, l);
  }

  template <typename F>
  void scan_leaf_positions(uint64_t l, F&& f) const {
    FlatOps::scan_leaf_positions(*this, l, std::forward<F>(f));
  }

  template <typename F>
  void scan_leaf_keys(uint64_t l, F&& f) const {
    FlatOps::scan_leaf_keys(*this, l, std::forward<F>(f));
  }

  template <typename F>
  void map_from_position(Position pos, F&& f) const {
    FlatOps::map_from_position(*this, pos, std::forward<F>(f));
  }

  // ---- introspection ------------------------------------------------------

  // Validates every shard's engine invariants plus the sharding invariants:
  // ascending splitters and shard contents confined to their key ranges
  // (which also pins the key-0 sentinel to shard 0).
  bool check_invariants(std::string* err) const {
    auto fail = [&](const std::string& msg) {
      if (err != nullptr) *err = msg;
      return false;
    };
    for (uint64_t s = 0; s < shards_.size(); ++s) {
      if (!shards_[s].check_invariants(err)) {
        if (err != nullptr) *err = "shard " + std::to_string(s) + ": " + *err;
        return false;
      }
    }
    for (uint64_t i = 1; i < splitters_.size(); ++i) {
      if (splitters_[i - 1] > splitters_[i]) {
        return fail("splitters not ascending at " + std::to_string(i));
      }
    }
    for (uint64_t s = 0; s < shards_.size(); ++s) {
      if (shards_[s].empty()) continue;
      const key_type lo = s == 0 ? 0 : splitters_[s - 1];
      if (*shards_[s].min() < lo) {
        return fail("shard " + std::to_string(s) + " min below its range");
      }
      if (s + 1 < shards_.size() && *shards_[s].max() >= splitters_[s]) {
        return fail("shard " + std::to_string(s) + " max above its range");
      }
    }
    return true;
  }

 private:
  // Shard owning `key`: the number of splitters <= key (shard i+1's range
  // starts at splitters_[i], inclusive).
  uint64_t shard_for(key_type key) const {
    return static_cast<uint64_t>(
        std::upper_bound(splitters_.begin(), splitters_.end(), key) -
        splitters_.begin());
  }

  // Quantile splitters from a sorted (possibly duplicated) stream; clamped
  // to >= 1 so the key-0 sentinel always routes to shard 0.
  void set_splitters_from_sorted(const key_type* keys, uint64_t n) {
    const uint64_t s_count = shards_.size();
    for (uint64_t i = 0; i + 1 < s_count; ++i) {
      splitters_[i] = std::max<key_type>(keys[(i + 1) * n / s_count], 1);
    }
  }

  // bounds[i] = first batch index routed to shard i; bounds[S] = n. Same
  // exponential-gallop-then-binary-search idiom as the engine's run_end:
  // gallop from the previous boundary, bounded search over the last gap.
  void partition_batch(const key_type* batch, uint64_t n,
                       std::vector<uint64_t>& bounds) const {
    const uint64_t s_count = shards_.size();
    bounds.assign(s_count + 1, n);
    bounds[0] = 0;
    uint64_t pos = 0;
    for (uint64_t i = 0; i + 1 < s_count; ++i) {
      const key_type sp = splitters_[i];
      if (pos < n && batch[pos] < sp) {
        uint64_t lo = pos, step = 1;
        while (lo + step < n && batch[lo + step] < sp) {
          lo += step;
          step *= 2;
        }
        uint64_t hi = std::min(lo + step, n);
        pos = static_cast<uint64_t>(
            std::lower_bound(batch + lo, batch + hi, sp) - batch);
      }
      bounds[i + 1] = pos;
    }
  }

  // Shared insert/remove batch driver: sort once, partition against the
  // splitters, dispatch every shard's slice as a sibling top-level task
  // (each slice arrives sorted, so the engines skip their own sort), then
  // probe for drift.
  template <bool IsInsert>
  uint64_t batch_dispatch(key_type* input, uint64_t n, bool sorted) {
    if (n == 0) return 0;
    // Sub-threshold batches go straight to point updates (the engines
    // would do the same per slice): no sort, no partition, no task
    // dispatch — keeps tiny-batch throughput at engine parity.
    if (n < Engine::kPointThreshold) {
      uint64_t delta = 0;
      for (uint64_t i = 0; i < n; ++i) {
        delta += (IsInsert ? insert(input[i]) : remove(input[i])) ? 1 : 0;
      }
      // Still probe for drift: point-only workloads must rebalance too,
      // and the pre-trigger probe is O(S) loads.
      maybe_rebalance();
      return delta;
    }
    detail::PhaseTimer pt;
    if (!sorted) par::parallel_sort(input, n);
    if constexpr (IsInsert) {
      if (n >= kSplitterSeedMin && empty()) {
        set_splitters_from_sorted(input, n);
      }
    }
    std::vector<uint64_t> bounds;
    partition_batch(input, n, bounds);
    router_times_.route_ns += pt.lap();
    const uint64_t s_count = shards_.size();
    util::uvector<uint64_t> delta(s_count);
    par::parallel_for(0, s_count, [&](uint64_t s) {
      const uint64_t b = bounds[s], e = bounds[s + 1];
      if (e > b) {
        delta[s] = IsInsert
                       ? shards_[s].insert_batch(input + b, e - b, true)
                       : shards_[s].remove_batch(input + b, e - b, true);
        // Disjoint s per sibling task, so the plain increment is race-free.
        if (delta[s] > 0) ++versions_[s];
      } else {
        delta[s] = 0;
      }
    }, 1);
    uint64_t total = 0;
    for (uint64_t s = 0; s < s_count; ++s) total += delta[s];
    maybe_rebalance();
    return total;
  }

  // Drift probe after each batch: an O(S) key-count check gates the exact
  // content-byte scan (a terminator pass over every leaf), so balanced
  // steady states rarely pay the scan. Counts only track bytes within the
  // shards' compressibility spread (CPMA deltas span ~1-9 bytes/key), so
  // the count gate alone could suppress a genuine byte imbalance forever;
  // every kBytePeriod-th batch therefore bypasses it and checks true
  // bytes — the amortized cost is 1/kBytePeriod of a terminator pass per
  // batch, and the suppression window is bounded.
  static constexpr uint64_t kBytePeriod = 32;

  void maybe_rebalance() {
    const uint64_t s_count = shards_.size();
    if (s_count <= 1) return;
    uint64_t total = 0, largest = 0;
    for (const Engine& e : shards_) {
      const uint64_t c = e.size();
      total += c;
      largest = std::max(largest, c);
    }
    // ~8 bytes/key upper-bounds the content; below the floor, skip.
    if (total * 8 < settings_.min_rebalance_bytes) return;
    const bool forced_byte_check = ++batches_since_byte_check_ >= kBytePeriod;
    if (!forced_byte_check &&
        static_cast<double>(largest) * static_cast<double>(s_count) <=
            0.75 * settings_.rebalance_ratio * static_cast<double>(total)) {
      return;
    }
    batches_since_byte_check_ = 0;
    std::vector<uint64_t> bytes = shard_content_bytes();
    uint64_t byte_total = 0, byte_largest = 0;
    for (uint64_t b : bytes) {
      byte_total += b;
      byte_largest = std::max(byte_largest, b);
    }
    if (static_cast<double>(byte_largest) * static_cast<double>(s_count) <=
        settings_.rebalance_ratio * static_cast<double>(byte_total)) {
      return;
    }
    rebalance_with(std::move(bytes));
  }

  ShardedSettings settings_;
  std::vector<Engine> shards_;
  std::vector<key_type> splitters_;  // ascending; size num_shards() - 1
  std::vector<uint64_t> versions_;   // see shard_version()
  ShardRouterTimes router_times_;
  uint64_t batches_since_byte_check_ = 0;
};

}  // namespace cpma::pma
