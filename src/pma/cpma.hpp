// Public umbrella header for the PMA / CPMA library.
//
//   #include "pma/cpma.hpp"
//   cpma::PMA  pma;   // uncompressed Packed Memory Array
//   cpma::CPMA cpma;  // Compressed Packed Memory Array (delta + byte codes)
//
// Both types share one engine (see pma/pma.hpp) and expose the API documented
// in the paper's artifact appendix.
#pragma once

#include "durable/durable.hpp"
#include "pma/leaf_adaptive.hpp"
#include "pma/leaf_compressed.hpp"
#include "pma/leaf_uncompressed.hpp"
#include "pma/pma.hpp"
#include "pma/sharded.hpp"
#include "serve/serving.hpp"

namespace cpma {

using PMA = pma::PackedMemoryArray<pma::UncompressedLeaf>;
// Default codec (byte varints); swap the codec by instantiating
// pma::PackedMemoryArray<pma::CompressedLeaf<YourCodec>> directly.
using CPMA = pma::PackedMemoryArray<pma::CompressedLeaf<>>;
// Adaptive per-leaf codec selection (byte-varint / group-varint / bitmap,
// chosen per leaf at materialization time; see pma/leaf_adaptive.hpp).
using ACPMA = pma::PackedMemoryArray<pma::AdaptiveLeaf>;

// Keyspace-sharded compositions: S independent engines behind the same set
// API (see pma/sharded.hpp for the router/rebalancer design).
using SPMA = pma::ShardedPMA<PMA>;
using SCPMA = pma::ShardedPMA<CPMA>;

// Concurrent serving layer: epoch-pinned read snapshots over a sharded
// store, flat-combining ingest front end (see serve/serving.hpp).
using ServingPMA = serve::ServingPMA<PMA>;
using ServingCPMA = serve::ServingPMA<CPMA>;

// Durable serving: WAL-before-apply + checkpoints + crash recovery on top
// of the serving layer (see durable/durable.hpp).
using DurablePMA = durable::DurablePMA<PMA>;
using DurableCPMA = durable::DurablePMA<CPMA>;
using DurableACPMA = durable::DurablePMA<ACPMA>;

}  // namespace cpma
