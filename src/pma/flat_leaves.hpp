// Flattened-leaf read API over a sharded composition.
//
// The engine exposes an "advanced iteration" surface — num_leaves /
// leaf_element_count / scan_leaf_positions / scan_leaf_keys /
// map_from_position — that the graph layer's vertex index is built on
// (graph/vertex_index.hpp). A sharded composition (ShardedPMA, or the
// serving layer's immutable SnapshotView) is S engines whose key ranges
// are disjoint and ascending, so its leaves form one global sequence:
// shard 0's leaves, then shard 1's, and so on, still in key order.
//
// FlatLeafOps implements that surface once for anything exposing
// `num_shards()` and `shard(s) -> const Engine&`; ShardedPMA and
// SnapshotView delegate their hooks here. A flat Position is
// (shard, engine Position); like engine positions, it is invalidated by
// ANY update — callers (the vertex index) rebuild after batches, or hold
// an epoch pin over an immutable view.
//
// locate() walks the shard prefix per call — O(S) with S <= 64, noise next
// to the leaf scan each call performs.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>

namespace cpma::pma {

template <typename Engine>
struct FlatPosition {
  uint64_t shard = 0;
  typename Engine::Position inner{};
};

template <typename C, typename Engine>
struct FlatLeafOps {
  using Position = FlatPosition<Engine>;

  static uint64_t num_leaves(const C& c) {
    uint64_t total = 0;
    for (uint64_t s = 0; s < c.num_shards(); ++s) {
      total += c.shard(s).num_leaves();
    }
    return total;
  }

  // Global leaf l -> (shard, local leaf).
  static std::pair<uint64_t, uint64_t> locate(const C& c, uint64_t l) {
    uint64_t s = 0;
    while (l >= c.shard(s).num_leaves()) {
      l -= c.shard(s).num_leaves();
      ++s;
    }
    return {s, l};
  }

  static uint64_t leaf_element_count(const C& c, uint64_t l) {
    const auto sl = locate(c, l);
    return c.shard(sl.first).leaf_element_count(sl.second);
  }

  template <typename F>
  static void scan_leaf_positions(const C& c, uint64_t l, F&& f) {
    const auto sl = locate(c, l);
    c.shard(sl.first).scan_leaf_positions(
        sl.second, [&](typename Engine::Position pos, uint64_t key) {
          f(Position{sl.first, pos}, key);
        });
  }

  template <typename F>
  static void scan_leaf_keys(const C& c, uint64_t l, F&& f) {
    const auto sl = locate(c, l);
    c.shard(sl.first).scan_leaf_keys(sl.second, f);
  }

  // Iterates keys from `pos` (inclusive) while f(key) returns true,
  // continuing across leaf AND shard boundaries (shard ranges ascend, so
  // the concatenation is global key order).
  template <typename F>
  static void map_from_position(const C& c, Position pos, F&& f) {
    bool more = true;
    auto wrapped = [&](uint64_t key) {
      more = f(key);
      return more;
    };
    c.shard(pos.shard).map_from_position(pos.inner, wrapped);
    for (uint64_t s = pos.shard + 1; more && s < c.num_shards(); ++s) {
      const Engine& e = c.shard(s);
      const uint64_t leaves = e.num_leaves();
      for (uint64_t l = 0; l < leaves; ++l) {
        if (auto first = e.leaf_first_position(l)) {
          e.map_from_position(*first, wrapped);
          break;  // the engine continues to its own end internally
        }
      }
    }
  }
};

}  // namespace cpma::pma
