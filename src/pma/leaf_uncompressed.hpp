// Uncompressed leaf policy: packed-left sorted 64-bit keys, empty cells are
// 0 (which is why key 0 is handled out-of-band by the engine). The policy
// reports occupancy in bytes so the engine's density math is shared with the
// compressed policy.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

#include "util/uninitialized.hpp"

namespace cpma::pma {

struct UncompressedLeaf {
  using key_type = uint64_t;
  static constexpr const char* name = "pma";
  static constexpr bool compressed = false;
  // Content-coordinate cost of a leaf's first key (one cell).
  static constexpr size_t kHeadBytes = 8;
  // Worst-case byte growth of one insert(): one new cell.
  static constexpr size_t kMaxInsertGrowth = 8;

  static const uint64_t* cells(const uint8_t* leaf) {
    return reinterpret_cast<const uint64_t*>(leaf);
  }
  static uint64_t* cells(uint8_t* leaf) {
    return reinterpret_cast<uint64_t*>(leaf);
  }

  // Number of occupied cells: packed-left, so it's the index of the first
  // zero cell (linear scan; leaves are O(log n) cells).
  static uint64_t element_count(const uint8_t* leaf, size_t cap) {
    const uint64_t* c = cells(leaf);
    uint64_t n = cap / 8;
    uint64_t i = 0;
    while (i < n && c[i] != 0) ++i;
    return i;
  }

  static size_t used_bytes(const uint8_t* leaf, size_t cap) {
    return element_count(leaf, cap) * 8;
  }

  static uint64_t head(const uint8_t* leaf) { return cells(leaf)[0]; }

  static bool contains(const uint8_t* leaf, size_t cap, uint64_t key) {
    const uint64_t* c = cells(leaf);
    uint64_t n = cap / 8;
    for (uint64_t i = 0; i < n && c[i] != 0; ++i) {
      if (c[i] == key) return true;
      if (c[i] > key) return false;
    }
    return false;
  }

  // Smallest stored key >= `key`, if any.
  static std::optional<uint64_t> lower_bound(const uint8_t* leaf, size_t cap,
                                             uint64_t key) {
    const uint64_t* c = cells(leaf);
    uint64_t n = cap / 8;
    for (uint64_t i = 0; i < n && c[i] != 0; ++i) {
      if (c[i] >= key) return c[i];
    }
    return std::nullopt;
  }

  // Inserts `key`; returns false if already present. Precondition: the leaf
  // has at least one free cell (the engine's slack invariant guarantees it).
  static bool insert(uint8_t* leaf, size_t cap, uint64_t key) {
    uint64_t* c = cells(leaf);
    uint64_t n = cap / 8;
    uint64_t i = 0;
    while (i < n && c[i] != 0 && c[i] < key) ++i;
    assert(i < n);
    if (c[i] == key) return false;
    // Shift the tail right by one cell to open the slot.
    uint64_t cnt = i;
    while (cnt < n && c[cnt] != 0) ++cnt;
    assert(cnt < n);
    std::memmove(c + i + 1, c + i, (cnt - i) * 8);
    c[i] = key;
    return true;
  }

  static bool remove(uint8_t* leaf, size_t cap, uint64_t key) {
    uint64_t* c = cells(leaf);
    uint64_t n = cap / 8;
    uint64_t i = 0;
    while (i < n && c[i] != 0 && c[i] < key) ++i;
    if (i >= n || c[i] != key) return false;
    uint64_t cnt = i;
    while (cnt < n && c[cnt] != 0) ++cnt;
    std::memmove(c + i, c + i + 1, (cnt - 1 - i) * 8);
    c[cnt - 1] = 0;
    return true;
  }

  // Reusable scratch for merge_tail (the engine keeps one per worker).
  struct MergeBuf {
    util::uvector<uint64_t> keys;
  };

  // Merges the sorted batch slice keys[0..k) into the leaf by rewriting only
  // the cell suffix from the first splice point (mirror of the compressed
  // policy's byte splice). Returns false (leaf unmodified) when the caller
  // must materialize instead: empty leaf, batch key below the head, or
  // overflow past max_bytes.
  static bool merge_tail(uint8_t* leaf, size_t cap, const uint64_t* keys,
                         size_t k, size_t max_bytes, MergeBuf& buf,
                         size_t* need_out, uint64_t* added_out) {
    uint64_t* c = cells(leaf);
    const uint64_t cap_cells = cap / 8;
    if (c[0] == 0 || keys[0] < c[0]) return false;
    // First cell >= keys[0] or empty; the predicate is monotone because the
    // occupied prefix is sorted and the zero tail follows it. No up-front
    // element count: the merge below stops at the first empty cell.
    const uint64_t i0 = static_cast<uint64_t>(
        std::partition_point(c, c + cap_cells,
                             [&](uint64_t v) {
                               return v != 0 && v < keys[0];
                             }) -
        c);
    auto& out = buf.keys;
    out.resize((cap_cells - i0) + k);
    uint64_t* op = out.data();
    size_t o = 0;
    uint64_t last = 0;  // keys are >= 1, so 0 is a safe dedupe sentinel
    uint64_t added = 0;
    uint64_t ei = i0;
    size_t bi = 0;
    while (ei < cap_cells && c[ei] != 0 && bi < k) {
      if (c[ei] <= keys[bi]) {
        if (c[ei] == keys[bi]) ++bi;
        last = c[ei];
        op[o++] = c[ei++];
      } else {
        if (keys[bi] != last) {
          last = keys[bi];
          op[o++] = last;
          ++added;
        }
        ++bi;
      }
    }
    while (ei < cap_cells && c[ei] != 0) op[o++] = c[ei++];
    for (; bi < k; ++bi) {
      if (keys[bi] != last) {
        last = keys[bi];
        op[o++] = last;
        ++added;
      }
    }
    const size_t need = (i0 + o) * 8;
    if (need > max_bytes) return false;
    std::memcpy(c + i0, op, o * 8);
    const size_t old_used = ei * 8;  // ei stopped at the first empty cell
    if (old_used > need) std::memset(leaf + need, 0, old_used - need);
    *need_out = need;
    *added_out = added;
    return true;
  }

  // Subtracts the sorted batch slice keys[0..k) from the leaf by compacting
  // only the cell suffix from the first removable key (mirror of the
  // compressed policy's byte splice; removal never grows, so the compaction
  // is done in place and `buf` goes unused). The only refusal (false, leaf
  // unmodified) is an empty leaf; *removed_out == 0 also means untouched.
  static bool remove_tail(uint8_t* leaf, size_t cap, const uint64_t* keys,
                          size_t k, MergeBuf& /*buf*/, size_t* need_out,
                          uint64_t* removed_out) {
    uint64_t* c = cells(leaf);
    const uint64_t cap_cells = cap / 8;
    if (c[0] == 0) return false;
    size_t j = static_cast<size_t>(
        std::lower_bound(keys, keys + k, c[0]) - keys);
    if (j == k) {
      *removed_out = 0;
      return true;
    }
    // First cell >= keys[j] (monotone: sorted occupied prefix, zero tail).
    const uint64_t i0 = static_cast<uint64_t>(
        std::partition_point(c, c + cap_cells,
                             [&](uint64_t v) {
                               return v != 0 && v < keys[j];
                             }) -
        c);
    uint64_t w = i0;
    uint64_t removed = 0;
    uint64_t r = i0;
    for (; r < cap_cells && c[r] != 0; ++r) {
      while (j < k && keys[j] < c[r]) ++j;
      if (j < k && keys[j] == c[r]) {
        ++removed;
        continue;
      }
      c[w++] = c[r];
    }
    if (removed == 0) {
      *removed_out = 0;
      return true;
    }
    std::memset(c + w, 0, (r - w) * 8);
    *need_out = w * 8;
    *removed_out = removed;
    return true;
  }

  // ---- direct-spread resize primitives ------------------------------------
  // Content offsets are cell offsets: key r lives at byte 8*r (offset 0 is
  // the head, which for this policy is just the first cell). Copy ranges are
  // raw memcpy; nothing re-encodes at joins.

  struct SpreadPoint {
    size_t off = 0;
    size_t next = 0;
    uint64_t key = 0;
  };

  // One-pass split emitter (mirror of the compressed policy's; here every
  // "walk" is O(1) cell indexing). `base`/`limit` bound the leaf's absolute
  // content-coordinate range, so limit - base is its used byte count.
  class SpreadSeeker {
   public:
    SpreadSeeker(const uint8_t* leaf, size_t /*cap*/) : c_(cells(leaf)) {}

    template <typename Emit>
    uint64_t split_targets(uint64_t base, uint64_t budget, uint64_t j,
                           uint64_t limit, Emit&& emit) {
      const uint64_t used = limit - base;
      for (; j * budget < limit; ++j) {
        size_t target = static_cast<size_t>(j * budget - base);
        uint64_t r = (target + 7) / 8;
        if (r * 8 >= used) {
          emit(j, SpreadPoint{}, true);
        } else {
          emit(j, SpreadPoint{r * 8, r * 8 + 8, c_[r]}, false);
        }
      }
      return c_[used / 8 - 1];  // the leaf's last key
    }

   private:
    const uint64_t* c_;
  };

  struct SpreadWriter {
    uint8_t* dst = nullptr;
    size_t cap = 0;
    size_t pos = 0;
    uint64_t last = 0;
  };

  static void spread_begin(SpreadWriter& w, uint8_t* dst, size_t cap,
                           uint64_t first_key) {
    w.dst = dst;
    w.cap = cap;
    std::memcpy(dst, &first_key, 8);
    w.pos = 8;
    w.last = first_key;
  }

  static void spread_copy_tail(SpreadWriter& w, const uint8_t* src,
                               size_t from, size_t to) {
    assert(from >= 8 && to >= from);
    assert(w.pos + (to - from) <= w.cap);
    std::memcpy(w.dst + w.pos, src + from, to - from);
    w.pos += to - from;
  }

  static void spread_join(SpreadWriter& w, const uint8_t* src,
                          uint64_t src_head, size_t to) {
    assert(w.pos + 8 <= w.cap);
    std::memcpy(w.dst + w.pos, &src_head, 8);
    w.pos += 8;
    w.last = src_head;
    spread_copy_tail(w, src, 8, to);
  }

  static void spread_append_keys(SpreadWriter& w, const uint64_t* keys,
                                 size_t n) {
    assert(w.pos + n * 8 <= w.cap);
    if (n != 0) std::memcpy(w.dst + w.pos, keys, n * 8);
    w.pos += n * 8;
    if (n != 0) w.last = keys[n - 1];
  }

  static size_t spread_finish(SpreadWriter& w) {
    assert(w.pos <= w.cap);
    std::memset(w.dst + w.pos, 0, w.cap - w.pos);
    return w.pos;
  }

  static void decode_append(const uint8_t* leaf, size_t cap,
                            std::vector<uint64_t>& out) {
    const uint64_t* c = cells(leaf);
    uint64_t n = cap / 8;
    for (uint64_t i = 0; i < n && c[i] != 0; ++i) out.push_back(c[i]);
  }

  // Bulk decode into a caller-sized buffer (must hold element_count keys);
  // returns the number of keys written.
  static size_t decode_to(const uint8_t* leaf, size_t cap, uint64_t* out) {
    size_t n = element_count(leaf, cap);
    if (n != 0) std::memcpy(out, cells(leaf), n * 8);
    return n;
  }

  // Bytes `write` would use for these keys.
  static size_t encoded_size(const uint64_t* /*keys*/, size_t n) {
    return n * 8;
  }

  // Overwrites the leaf with keys[0..n); zero-fills the tail.
  static void write(uint8_t* leaf, size_t cap, const uint64_t* keys,
                    size_t n) {
    assert(n * 8 <= cap);
    // keys may be null when n == 0; memcpy forbids null even for size 0.
    if (n != 0) std::memcpy(leaf, keys, n * 8);
    std::memset(leaf + n * 8, 0, cap - n * 8);
  }

  static uint64_t sum_leaf(const uint8_t* leaf, size_t cap) {
    const uint64_t* c = cells(leaf);
    uint64_t n = cap / 8;
    uint64_t s = 0;
    for (uint64_t i = 0; i < n && c[i] != 0; ++i) s += c[i];
    return s;
  }

  static uint64_t last(const uint8_t* leaf, size_t cap) {
    const uint64_t* c = cells(leaf);
    uint64_t n = element_count(leaf, cap);
    return n == 0 ? 0 : c[n - 1];
  }

  // Applies f(key) in order; f returns false to stop. Returns false if
  // stopped early.
  template <typename F>
  static bool map(const uint8_t* leaf, size_t cap, F&& f) {
    const uint64_t* c = cells(leaf);
    uint64_t n = cap / 8;
    for (uint64_t i = 0; i < n && c[i] != 0; ++i) {
      if (!f(c[i])) return false;
    }
    return true;
  }

  // Streaming cursor for the engine's iterators.
  struct Cursor {
    uint64_t pos = 0;
    uint64_t value = 0;
  };

  static bool cursor_begin(const uint8_t* leaf, size_t cap, Cursor& cur) {
    const uint64_t* c = cells(leaf);
    if (cap == 0 || c[0] == 0) return false;
    cur.pos = 0;
    cur.value = c[0];
    return true;
  }

  static bool cursor_next(const uint8_t* leaf, size_t cap, Cursor& cur) {
    const uint64_t* c = cells(leaf);
    uint64_t n = cap / 8;
    if (cur.pos + 1 >= n || c[cur.pos + 1] == 0) return false;
    ++cur.pos;
    cur.value = c[cur.pos];
    return true;
  }

  // Block-streaming decode for the engine's merge paths (mirror of the
  // compressed policy's kernel-backed cursor): copies runs of occupied
  // cells. Returns 0 at end.
  struct BlockCursor {
    uint64_t idx = 0;
  };

  static size_t block_next(const uint8_t* leaf, size_t cap, BlockCursor& bc,
                           uint64_t* out, size_t max) {
    const uint64_t* c = cells(leaf);
    uint64_t n = cap / 8;
    size_t k = 0;
    while (k < max && bc.idx < n && c[bc.idx] != 0) out[k++] = c[bc.idx++];
    return k;
  }
};

}  // namespace cpma::pma
