// The PMA's implicit binary tree over leaves — "without pointers".
//
// A node is identified by (height, index): node (h, i) covers leaves
// [i * 2^h, min((i+1) * 2^h, num_leaves)). Supporting a non-power-of-two
// number of leaves (the right spine of the conceptual tree is clipped) is
// what lets the array grow by a 1.2x factor instead of doubling.
#pragma once

#include <cstdint>

#include "util/bits.hpp"

namespace cpma::pma {

struct NodeId {
  uint64_t height;
  uint64_t index;

  NodeId parent() const { return {height + 1, index / 2}; }
  bool operator==(const NodeId&) const = default;
};

// Packs a NodeId into a hash-map key. Heights fit easily in 8 bits
// (2^56 leaves is beyond any address space).
constexpr uint64_t node_key(NodeId n) {
  return (n.height << 56) | n.index;
}

class ImplicitTree {
 public:
  explicit ImplicitTree(uint64_t num_leaves) : num_leaves_(num_leaves) {
    height_ = (num_leaves <= 1) ? 0 : util::log2_ceil(num_leaves);
  }

  uint64_t num_leaves() const { return num_leaves_; }
  // Height of the root; leaves are height 0.
  uint64_t height() const { return height_; }

  NodeId root() const { return {height_, 0}; }
  bool is_root(NodeId n) const { return n.height == height_; }

  // First leaf covered by the node (may be >= num_leaves for clipped nodes).
  uint64_t region_begin(NodeId n) const { return n.index << n.height; }
  // One past the last leaf covered, clipped to the real leaf count.
  uint64_t region_end(NodeId n) const {
    uint64_t end = (n.index + 1) << n.height;
    return end > num_leaves_ ? num_leaves_ : end;
  }
  uint64_t region_leaves(NodeId n) const {
    uint64_t b = region_begin(n), e = region_end(n);
    return e > b ? e - b : 0;
  }
  bool valid(NodeId n) const {
    return n.height <= height_ && region_begin(n) < num_leaves_;
  }

  NodeId leaf_node(uint64_t leaf) const { return {0, leaf}; }

 private:
  uint64_t num_leaves_;
  uint64_t height_;
};

}  // namespace cpma::pma
