// Adaptive leaf policy: per-leaf codec selection over three formats.
//
// Layout: [8-byte head][1-byte format tag][body...]. The tag is part of the
// leaf header (kHeadBytes = 9), so every format's body starts at offset 9
// and a zero-filled leaf is a valid empty byte-varint leaf (tag 0). The
// varint formats delegate to CompressedLeaf<Codec, 9>, which leaves the tag
// byte untouched (its writes cover [0,8) and [9,cap)); the bitmap format is
// implemented here on top of codec/bitmap_leaf.hpp.
//
// Formats:
//   0 byte-varint   — the canonical format (CompressedLeaf<ByteVarintCodec>)
//   1 group-varint  — control-byte codes, wins on multi-byte-delta leaves
//   2 bitmap        — window/word pairs, wins on dense runs (~1 bit/key)
//
// CANONICAL-COST INVARIANT: all engine planning (delta_bytes, encoded_size,
// spread budgets, overflow accounting) quotes byte-varint cost. write()
// selects a non-canonical format only when its exact encoded size is no
// larger than the canonical size, so a materialized leaf never exceeds the
// bytes the engine budgeted for it. Mutations preserve the property: varint
// leaves grow exactly as CompressedLeaf does, bitmap point ops grow by at
// most kMaxInsertGrowth, and bitmap remove_tail re-encodes in bitmap format
// (a subset never encodes larger). Direct-spread byte stitching, whose cost
// model is also canonical, is only exact for byte-varint content — the
// engine refuses direct spreads when other formats are present and takes
// the pack+rebuild path, which re-selects formats anyway (pma_impl.hpp).
//
// Selection (write()): exact encoded sizes of all three formats are
// computed and the bitmap is chosen when its size beats the canonical size
// by adaptive_bitmap_margin(); group-varint is attempted when canonical
// body bytes per key reach adaptive_gv_bytes_per_key(). CPMA_FORCE_CODEC
// pins the choice (still subject to the exact-size check). The same gates
// drive StreamSizer, the incremental sizer the engine uses to pack leaves
// by physical (selected-format) bytes during spread/rebuild.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <optional>
#include <variant>
#include <vector>

#include "codec/bitmap_leaf.hpp"
#include "codec/delta_stream.hpp"
#include "codec/group_varint.hpp"
#include "pma/leaf_compressed.hpp"
#include "pma/settings.hpp"

namespace cpma::pma {

struct AdaptiveLeaf {
  using key_type = uint64_t;
  using BV = CompressedLeaf<codec::ByteVarintCodec, 9>;
  using GV = CompressedLeaf<codec::GroupVarintCodec, 9>;
  static constexpr const char* name = "acpma";
  static constexpr bool compressed = true;
  static constexpr size_t kHeadBytes = 9;
  // Wider than the single-codec leaves so the bitmap full-window fast path
  // (64 keys per pair) can land several whole windows per block_next call;
  // at the byte-varint default of 64 the head alone leaves room for < 1.
  static constexpr size_t kBlockKeys = 256;
  // Byte-varint dominates: a split delta (19) beats group-varint's (17) and
  // the bitmap's worst case (a displaced-head pair insert plus a first-pair
  // window rebase, <= 18).
  static constexpr size_t kMaxInsertGrowth = BV::kMaxInsertGrowth;

  enum Format : uint8_t { kByteVarint = 0, kGroupVarint = 1, kBitmap = 2 };
  static uint8_t format_of(const uint8_t* leaf) { return leaf[8]; }

  static uint64_t head(const uint8_t* leaf) {
    uint64_t h;
    std::memcpy(&h, leaf, 8);
    return h;
  }
  static void set_head(uint8_t* leaf, uint64_t h) { std::memcpy(leaf, &h, 8); }

  // Canonical (byte-varint) cost model — see the invariant above.
  static constexpr size_t delta_bytes(key_type prev, key_type key) {
    return BV::delta_bytes(prev, key);
  }
  static size_t encoded_size(const uint64_t* keys, size_t n) {
    return BV::encoded_size(keys, n);
  }

  // ---- bitmap body access ---------------------------------------------------

  static const uint8_t* body(const uint8_t* leaf) { return leaf + kHeadBytes; }
  static uint8_t* body(uint8_t* leaf) { return leaf + kHeadBytes; }

  static codec::bitmap::PairReader pairs(const uint8_t* leaf, size_t cap) {
    return codec::bitmap::PairReader(body(leaf), cap - kHeadBytes,
                                     codec::bitmap::window(head(leaf)));
  }

  // ---- reads ----------------------------------------------------------------

  static size_t used_bytes(const uint8_t* leaf, size_t cap) {
    switch (leaf[8]) {
      case kGroupVarint:
        return GV::used_bytes(leaf, cap);
      case kBitmap: {
        if (head(leaf) == 0) return 0;
        return kHeadBytes + codec::bitmap::body_used(body(leaf),
                                                     cap - kHeadBytes);
      }
      default:
        return BV::used_bytes(leaf, cap);
    }
  }

  static uint64_t element_count(const uint8_t* leaf, size_t cap) {
    switch (leaf[8]) {
      case kGroupVarint:
        return GV::element_count(leaf, cap);
      case kBitmap: {
        if (head(leaf) == 0) return 0;
        uint64_t n = 1;
        auto r = pairs(leaf, cap);
        while (r.next()) n += static_cast<uint64_t>(__builtin_popcountll(r.word()));
        return n;
      }
      default:
        return BV::element_count(leaf, cap);
    }
  }

  static bool contains(const uint8_t* leaf, size_t cap, uint64_t key) {
    switch (leaf[8]) {
      case kGroupVarint:
        return GV::contains(leaf, cap, key);
      case kBitmap: {
        uint64_t h = head(leaf);
        if (h == 0 || key < h) return false;
        if (key == h) return true;
        const uint64_t wk = codec::bitmap::window(key);
        auto r = pairs(leaf, cap);
        while (r.next()) {
          if (r.win() > wk) return false;
          if (r.win() == wk) return (r.word() & codec::bitmap::bit_mask(key)) != 0;
        }
        return false;
      }
      default:
        return BV::contains(leaf, cap, key);
    }
  }

  static std::optional<uint64_t> lower_bound(const uint8_t* leaf, size_t cap,
                                             uint64_t key) {
    switch (leaf[8]) {
      case kGroupVarint:
        return GV::lower_bound(leaf, cap, key);
      case kBitmap: {
        uint64_t h = head(leaf);
        if (h == 0) return std::nullopt;
        if (h >= key) return h;
        const uint64_t wk = codec::bitmap::window(key);
        auto r = pairs(leaf, cap);
        while (r.next()) {
          if (r.win() < wk) continue;
          uint64_t word = r.word();
          if (r.win() == wk) {
            word &= ~uint64_t{0} << codec::bitmap::bit_of(key);
            if (word == 0) continue;
          }
          return (r.win() << 6) | static_cast<unsigned>(__builtin_ctzll(word));
        }
        return std::nullopt;
      }
      default:
        return BV::lower_bound(leaf, cap, key);
    }
  }

  template <typename F>
  static bool map(const uint8_t* leaf, size_t cap, F&& f) {
    switch (leaf[8]) {
      case kGroupVarint:
        return GV::map(leaf, cap, f);
      case kBitmap: {
        uint64_t h = head(leaf);
        if (h == 0) return true;
        if (!f(h)) return false;
        auto r = pairs(leaf, cap);
        while (r.next()) {
          uint64_t word = r.word();
          const uint64_t base = r.win() << 6;
          if (word == ~uint64_t{0}) {
            for (unsigned i = 0; i < 64; ++i) {
              if (!f(base + i)) return false;
            }
            continue;
          }
          while (word) {
            if (!f(base | static_cast<unsigned>(__builtin_ctzll(word)))) {
              return false;
            }
            word &= word - 1;
          }
        }
        return true;
      }
      default:
        return BV::map(leaf, cap, f);
    }
  }

  static uint64_t sum_leaf(const uint8_t* leaf, size_t cap) {
    switch (leaf[8]) {
      case kGroupVarint:
        return GV::sum_leaf(leaf, cap);
      case kBitmap: {
        uint64_t sum = 0;
        map(leaf, cap, [&](uint64_t k) {
          sum += k;
          return true;
        });
        return sum;
      }
      default:
        return BV::sum_leaf(leaf, cap);
    }
  }

  static uint64_t last(const uint8_t* leaf, size_t cap) {
    switch (leaf[8]) {
      case kGroupVarint:
        return GV::last(leaf, cap);
      case kBitmap: {
        uint64_t h = head(leaf);
        if (h == 0) return 0;
        uint64_t v = h;
        auto r = pairs(leaf, cap);
        while (r.next()) {
          v = (r.win() << 6) |
              static_cast<unsigned>(63 - __builtin_clzll(r.word()));
        }
        return v;
      }
      default:
        return BV::last(leaf, cap);
    }
  }

  static void decode_append(const uint8_t* leaf, size_t cap,
                            std::vector<uint64_t>& out) {
    switch (leaf[8]) {
      case kGroupVarint:
        GV::decode_append(leaf, cap, out);
        return;
      case kBitmap:
        map(leaf, cap, [&](uint64_t k) {
          out.push_back(k);
          return true;
        });
        return;
      default:
        BV::decode_append(leaf, cap, out);
        return;
    }
  }

  static size_t decode_to(const uint8_t* leaf, size_t cap, uint64_t* out) {
    switch (leaf[8]) {
      case kGroupVarint:
        return GV::decode_to(leaf, cap, out);
      case kBitmap: {
        size_t n = 0;
        map(leaf, cap, [&](uint64_t k) {
          out[n++] = k;
          return true;
        });
        return n;
      }
      default:
        return BV::decode_to(leaf, cap, out);
    }
  }

  // ---- point mutations ------------------------------------------------------

  static bool insert(uint8_t* leaf, size_t cap, uint64_t key) {
    switch (leaf[8]) {
      case kGroupVarint:
        return GV::insert(leaf, cap, key);
      case kBitmap:
        return insert_bitmap(leaf, cap, key);
      default:
        return BV::insert(leaf, cap, key);
    }
  }

  static bool remove(uint8_t* leaf, size_t cap, uint64_t key) {
    switch (leaf[8]) {
      case kGroupVarint:
        return GV::remove(leaf, cap, key);
      case kBitmap:
        return remove_bitmap(leaf, cap, key);
      default:
        return BV::remove(leaf, cap, key);
    }
  }

 private:
  // Replaces body bytes [off, off+old_len) with rep[0, new_len), shifting the
  // tail and zero-filling any freed suffix. `used` is the body's used bytes.
  static void splice_body(uint8_t* b, size_t bcap, size_t used, size_t off,
                          size_t old_len, const uint8_t* rep, size_t new_len) {
    assert(off + old_len <= used && used - old_len + new_len <= bcap);
    (void)bcap;
    std::memmove(b + off + new_len, b + off + old_len, used - off - old_len);
    if (new_len != 0) std::memcpy(b + off, rep, new_len);
    if (new_len < old_len) {
      std::memset(b + used - (old_len - new_len), 0, old_len - new_len);
    }
  }

  static bool insert_bitmap(uint8_t* leaf, size_t cap, uint64_t key) {
    namespace bm = codec::bitmap;
    uint64_t h = head(leaf);
    uint8_t* b = body(leaf);
    const size_t bcap = cap - kHeadBytes;
    if (key == h) return false;
    if (key < h) {
      // key becomes the head; the old head becomes a bit. The first pair's
      // window delta rebases from window(h) to window(key).
      const size_t used = bm::body_used(b, bcap);
      uint8_t tmp[2 * bm::kMaxPairBytes];
      size_t tlen;
      size_t old_len;
      if (used == 0) {
        old_len = 0;
        tlen = bm::store_pair(tmp, bm::window(h) - bm::window(key),
                              bm::bit_mask(h));
      } else {
        bm::Pair f = bm::load_pair(b);
        old_len = f.len;
        const uint64_t w1 = bm::window(h) + f.wdelta;
        if (w1 == bm::window(h)) {
          tlen = bm::store_pair(tmp, w1 - bm::window(key),
                                f.word | bm::bit_mask(h));
        } else {
          tlen = bm::store_pair(tmp, bm::window(h) - bm::window(key),
                                bm::bit_mask(h));
          tlen += bm::store_pair(tmp + tlen, f.wdelta, f.word);
        }
      }
      splice_body(b, bcap, used, 0, old_len, tmp, tlen);
      set_head(leaf, key);
      return true;
    }
    const uint64_t wk = bm::window(key);
    uint64_t prev_w = bm::window(h);
    bm::PairReader r(b, bcap, prev_w);
    while (r.next()) {
      if (r.win() == wk) {
        if (r.word() & bm::bit_mask(key)) return false;
        const uint64_t nw = r.word() | bm::bit_mask(key);
        std::memcpy(b + r.pair_end() - 8, &nw, 8);
        return true;
      }
      if (r.win() > wk) {
        // New pair before this one; this pair's delta re-chains from wk.
        const size_t used = bm::body_used(b, bcap);
        uint8_t tmp[2 * bm::kMaxPairBytes];
        size_t tlen = bm::store_pair(tmp, wk - prev_w, bm::bit_mask(key));
        tlen += bm::store_pair(tmp + tlen, r.win() - wk, r.word());
        splice_body(b, bcap, used, r.pair_off(),
                    r.pair_end() - r.pair_off(), tmp, tlen);
        return true;
      }
      prev_w = r.win();
    }
    // Largest window: append (pair_off() is the terminator offset here).
    uint8_t tmp[bm::kMaxPairBytes];
    const size_t tlen = bm::store_pair(tmp, wk - prev_w, bm::bit_mask(key));
    assert(r.pair_off() + tlen <= bcap);
    std::memcpy(b + r.pair_off(), tmp, tlen);
    return true;
  }

  static bool remove_bitmap(uint8_t* leaf, size_t cap, uint64_t key) {
    namespace bm = codec::bitmap;
    uint64_t h = head(leaf);
    if (h == 0 || key < h) return false;
    uint8_t* b = body(leaf);
    const size_t bcap = cap - kHeadBytes;
    if (key == h) {
      if (bcap == 0 || b[0] == 0) {  // only element: clear head AND tag
        std::memset(leaf, 0, kHeadBytes);
        return true;
      }
      // Promote the first bit of the first pair into the head; its window
      // delta rebases to 0 (the new head lives in that same window).
      bm::Pair f = bm::load_pair(b);
      const uint64_t w1 = bm::window(h) + f.wdelta;
      const uint64_t nh =
          (w1 << 6) | static_cast<unsigned>(__builtin_ctzll(f.word));
      const uint64_t nword = f.word & (f.word - 1);
      const size_t used = bm::body_used(b, bcap);
      if (nword == 0) {
        // Drop the pair; the next pair's delta chains from w1 == window(nh).
        splice_body(b, bcap, used, 0, f.len, nullptr, 0);
      } else {
        uint8_t tmp[bm::kMaxPairBytes];
        const size_t tlen = bm::store_pair(tmp, 0, nword);
        splice_body(b, bcap, used, 0, f.len, tmp, tlen);
      }
      set_head(leaf, nh);
      return true;
    }
    const uint64_t wk = bm::window(key);
    uint64_t prev_w = bm::window(h);
    bm::PairReader r(b, bcap, prev_w);
    while (r.next()) {
      if (r.win() > wk) return false;
      if (r.win() == wk) {
        if (!(r.word() & bm::bit_mask(key))) return false;
        const uint64_t nw = r.word() & ~bm::bit_mask(key);
        if (nw != 0) {
          std::memcpy(b + r.pair_end() - 8, &nw, 8);
          return true;
        }
        // Pair emptied: drop it, merging its delta into the next pair
        // (var(a+b+1) <= var(a+1) + var(b+1) + 8, so this never grows).
        const size_t used = bm::body_used(b, bcap);
        const size_t off = r.pair_off();
        const size_t len = r.pair_end() - off;
        const uint64_t a = r.win() - prev_w;
        if (r.pair_end() < bcap && b[r.pair_end()] != 0) {
          bm::Pair nx = bm::load_pair(b + r.pair_end());
          uint8_t tmp[bm::kMaxPairBytes];
          const size_t tlen = bm::store_pair(tmp, a + nx.wdelta, nx.word);
          splice_body(b, bcap, used, off, len + nx.len, tmp, tlen);
        } else {
          splice_body(b, bcap, used, off, len, nullptr, 0);
        }
        return true;
      }
      prev_w = r.win();
    }
    return false;
  }

 public:
  // ---- materialized writes (format selection happens here) ------------------

  // Selection gates shared by select_format (array form) and StreamSizer
  // (incremental form). All sizes are exact encoded sizes including the
  // kHeadBytes header; the chosen format's size never exceeds the canonical
  // (byte-varint) size, which batch planning quotes as the upper bound.
  static uint8_t choose_format(size_t n, size_t canonical, size_t bmsz,
                               size_t gvsz, size_t cap) {
    if (n < 2) return kByteVarint;
    const ForcedCodec force = forced_codec();
    if (force == ForcedCodec::kByteVarint) return kByteVarint;
    if (force == ForcedCodec::kBitmap ||
        (force == ForcedCodec::kNone &&
         static_cast<double>(bmsz) * adaptive_bitmap_margin() <=
             static_cast<double>(canonical))) {
      if (bmsz <= canonical && bmsz <= cap) return kBitmap;
    }
    if (force == ForcedCodec::kGroupVarint ||
        (force == ForcedCodec::kNone &&
         static_cast<double>(canonical - kHeadBytes) >=
             adaptive_gv_bytes_per_key() * static_cast<double>(n - 1))) {
      if (gvsz <= canonical && gvsz <= cap) return kGroupVarint;
    }
    return kByteVarint;
  }

  static uint8_t select_format(const uint64_t* keys, size_t n, size_t cap) {
    if (n < 2) return kByteVarint;
    return choose_format(n, BV::encoded_size(keys, n),
                         kHeadBytes + codec::bitmap::body_size(keys, n),
                         GV::encoded_size(keys, n), cap);
  }

  // Incremental exact sizer for a growing key slice: tracks each format's
  // encoded body bytes key-by-key so the engine can pack leaves by the size
  // the slice will ACTUALLY materialize at (selected format), not by its
  // canonical byte-varint cost. Physical packing is what lets dense regions
  // keep their bitmap-compressed footprint through redistributes/resizes.
  struct StreamSizer {
    size_t n = 0;
    uint64_t first = 0;
    uint64_t last = 0;
    uint64_t win = 0;        // bitmap window of `last`
    bool pair_open = false;  // current window already has a bitmap pair
    size_t bv_bytes = 0, gv_bytes = 0, bm_bytes = 0;  // body bytes

    void add(uint64_t key) {
      if (n++ == 0) {
        first = last = key;
        win = codec::bitmap::window(key);
        return;
      }
      const uint64_t d = key - last;
      bv_bytes += codec::ByteVarintCodec::size(d);
      gv_bytes += codec::GroupVarintCodec::size(d);
      const uint64_t wk = codec::bitmap::window(key);
      if (!pair_open || wk != win) {
        // New pair: biased window delta chained from the previous pair's
        // window (== window(last); the head shares this rule via delta 0).
        bm_bytes += codec::ByteVarintCodec::size(wk - win + 1) + 8;
        pair_open = true;
      }
      win = wk;
      last = key;
    }

    // Exact bytes write() would materialize this slice at within `cap`.
    size_t selected_bytes(size_t cap) const {
      if (n == 0) return 0;
      switch (choose_format(n, kHeadBytes + bv_bytes, kHeadBytes + bm_bytes,
                            kHeadBytes + gv_bytes, cap)) {
        case kBitmap:
          return kHeadBytes + bm_bytes;
        case kGroupVarint:
          return kHeadBytes + gv_bytes;
        default:
          return kHeadBytes + bv_bytes;
      }
    }
  };

  static void write_format(uint8_t* leaf, size_t cap, const uint64_t* keys,
                           size_t n, uint8_t fmt) {
    if (n == 0) {
      std::memset(leaf, 0, cap);
      return;
    }
    switch (fmt) {
      case kGroupVarint:
        GV::write(leaf, cap, keys, n);  // leaves byte 8 untouched
        leaf[8] = kGroupVarint;
        return;
      case kBitmap: {
        set_head(leaf, keys[0]);
        leaf[8] = kBitmap;
        const size_t blen = codec::bitmap::encode_body(body(leaf), keys, n);
        assert(kHeadBytes + blen <= cap);
        std::memset(leaf + kHeadBytes + blen, 0, cap - kHeadBytes - blen);
        return;
      }
      default:
        BV::write(leaf, cap, keys, n);
        leaf[8] = kByteVarint;
        return;
    }
  }

  static void write(uint8_t* leaf, size_t cap, const uint64_t* keys,
                    size_t n) {
    write_format(leaf, cap, keys, n, select_format(keys, n, cap));
  }

  // ---- batch merge / remove -------------------------------------------------

  struct MergeBuf {
    BV::MergeBuf bv;
    GV::MergeBuf gv;
    std::vector<uint64_t> cur, next;
  };

  // Varint formats splice their suffix in place (the format is sticky under
  // merge); a bitmap leaf refuses, sending the engine down its materializing
  // path, whose write() re-selects the format for the merged run.
  static bool merge_tail(uint8_t* leaf, size_t cap, const uint64_t* keys,
                         size_t k, size_t max_bytes, MergeBuf& buf,
                         size_t* need_out, uint64_t* added_out) {
    switch (leaf[8]) {
      case kGroupVarint:
        return GV::merge_tail(leaf, cap, keys, k, max_bytes, buf.gv, need_out,
                              added_out);
      case kBitmap:
        return false;
      default:
        return BV::merge_tail(leaf, cap, keys, k, max_bytes, buf.bv, need_out,
                              added_out);
    }
  }

  // remove_tail may NOT refuse on content (the engine treats refusal as
  // "nothing to remove"), so the bitmap case materializes, subtracts, and
  // rewrites IN BITMAP FORMAT — a subset never encodes larger in the same
  // format, while the canonical format could overflow the leaf.
  static bool remove_tail(uint8_t* leaf, size_t cap, const uint64_t* keys,
                          size_t k, MergeBuf& buf, size_t* need_out,
                          uint64_t* removed_out) {
    switch (leaf[8]) {
      case kGroupVarint:
        return GV::remove_tail(leaf, cap, keys, k, buf.gv, need_out,
                               removed_out);
      case kBitmap: {
        if (head(leaf) == 0) return false;
        auto& cur = buf.cur;
        auto& next = buf.next;
        cur.clear();
        next.clear();
        decode_append(leaf, cap, cur);
        size_t j = 0;
        uint64_t removed = 0;
        for (uint64_t v : cur) {
          while (j < k && keys[j] < v) ++j;
          if (j < k && keys[j] == v) {
            ++removed;
          } else {
            next.push_back(v);
          }
        }
        if (removed == 0) {
          *removed_out = 0;
          return true;
        }
        if (next.empty()) {
          std::memset(leaf, 0, cap);
          *need_out = 0;
          *removed_out = removed;
          return true;
        }
        write_format(leaf, cap, next.data(), next.size(), kBitmap);
        *need_out = used_bytes(leaf, cap);
        *removed_out = removed;
        return true;
      }
      default:
        return BV::remove_tail(leaf, cap, keys, k, buf.bv, need_out,
                               removed_out);
    }
  }

  // ---- cursors --------------------------------------------------------------
  // pos/value mirror the varint cursors; `win` is bitmap-only state (the
  // window chain base of the pair at pos). Delegation copies pos/value
  // through the underlying policy's cursor struct.

  struct Cursor {
    size_t pos = 0;
    uint64_t value = 0;
    uint64_t win = 0;
  };

  static bool cursor_begin(const uint8_t* leaf, size_t /*cap*/, Cursor& cur) {
    uint64_t h = head(leaf);
    if (h == 0) return false;
    cur.value = h;
    cur.pos = kHeadBytes;
    cur.win = codec::bitmap::window(h);
    return true;
  }

  static bool cursor_next(const uint8_t* leaf, size_t cap, Cursor& cur) {
    switch (leaf[8]) {
      case kGroupVarint: {
        GV::Cursor c{cur.pos, cur.value};
        bool ok = GV::cursor_next(leaf, cap, c);
        cur.pos = c.pos;
        cur.value = c.value;
        return ok;
      }
      case kBitmap:
        return cursor_next_bitmap(leaf, cap, cur);
      default: {
        BV::Cursor c{cur.pos, cur.value};
        bool ok = BV::cursor_next(leaf, cap, c);
        cur.pos = c.pos;
        cur.value = c.value;
        return ok;
      }
    }
  }

  struct BlockCursor {
    size_t pos = 0;
    uint64_t value = 0;
    bool started = false;
    uint64_t win = 0;
  };

  static size_t block_next(const uint8_t* leaf, size_t cap, BlockCursor& bc,
                           uint64_t* out, size_t max) {
    switch (leaf[8]) {
      case kGroupVarint: {
        GV::BlockCursor c{bc.pos, bc.value, bc.started};
        size_t n = GV::block_next(leaf, cap, c, out, max);
        bc.pos = c.pos;
        bc.value = c.value;
        bc.started = c.started;
        return n;
      }
      case kBitmap:
        return block_next_bitmap(leaf, cap, bc, out, max);
      default: {
        BV::BlockCursor c{bc.pos, bc.value, bc.started};
        size_t n = BV::block_next(leaf, cap, c, out, max);
        bc.pos = c.pos;
        bc.value = c.value;
        bc.started = c.started;
        return n;
      }
    }
  }

 private:
  static bool cursor_next_bitmap(const uint8_t* leaf, size_t cap,
                                 Cursor& cur) {
    namespace bm = codec::bitmap;
    const uint8_t* b = body(leaf);
    const size_t bcap = cap - kHeadBytes;
    size_t pos = cur.pos - kHeadBytes;
    while (pos < bcap && b[pos] != 0) {
      bm::Pair p = bm::load_pair(b + pos);
      const uint64_t w = cur.win + p.wdelta;
      uint64_t word = p.word;
      if (w == bm::window(cur.value)) word &= bm::above_mask(cur.value);
      if (word != 0) {
        cur.value = (w << 6) | static_cast<unsigned>(__builtin_ctzll(word));
        return true;
      }
      pos += p.len;
      cur.pos = kHeadBytes + pos;
      cur.win = w;
    }
    return false;
  }

  static size_t block_next_bitmap(const uint8_t* leaf, size_t cap,
                                  BlockCursor& bc, uint64_t* out, size_t max) {
    namespace bm = codec::bitmap;
    size_t n = 0;
    if (!bc.started) {
      uint64_t h = head(leaf);
      if (h == 0) return 0;
      bc.started = true;
      bc.value = h;
      bc.pos = kHeadBytes;
      bc.win = bm::window(h);
      out[n++] = h;
    }
    const uint8_t* b = body(leaf);
    const size_t bcap = cap - kHeadBytes;
    size_t pos = bc.pos - kHeadBytes;
    while (n < max && pos < bcap && b[pos] != 0) {
      bm::Pair p = bm::load_pair(b + pos);
      const uint64_t w = bc.win + p.wdelta;
      uint64_t word = p.word;
      if (w == bm::window(bc.value)) word &= bm::above_mask(bc.value);
      if (word == ~uint64_t{0}) {
        // Full window: 64 consecutive keys, no per-bit scan. A resumed
        // (masked) word always has bit 0 cleared, so this branch only fires
        // on windows not yet touched — the dominant case in dense runs.
        const uint64_t base = w << 6;
        const size_t take = max - n < 64 ? max - n : 64;
        for (size_t i = 0; i < take; ++i) out[n + i] = base + i;
        n += take;
        bc.value = base + take - 1;
        if (take < 64) break;  // out is full mid-pair; value resumes the mask
      } else {
        while (word != 0 && n < max) {
          bc.value = (w << 6) | static_cast<unsigned>(__builtin_ctzll(word));
          out[n++] = bc.value;
          word &= word - 1;
        }
        if (word != 0) break;  // out is full mid-pair; value resumes the mask
      }
      pos += p.len;
      bc.pos = kHeadBytes + pos;
      bc.win = w;
    }
    return n;
  }

 public:
  // ---- direct-spread primitives ---------------------------------------------
  // Content coordinates follow CompressedLeaf: [0, kHeadBytes) is the head
  // (+tag), codes/pairs follow. In the engine these only ever run over
  // uniformly byte-varint content (pma_impl.hpp refuses the direct spread
  // otherwise, because its byte budgets are canonical); the bitmap and
  // cross-format paths below keep the primitives total for leaf-level use
  // (tests, and any future format-aware spread).

  using SpreadPoint = BV::SpreadPoint;

  // Bitmap split points land at pair starts with next == off: the whole
  // pair copies into the destination, whose writer masks out the bits at or
  // below the promoted head (the pair's first bit).
  class BitmapSeeker {
   public:
    BitmapSeeker(const uint8_t* leaf, size_t cap)
        : head_(head(leaf)), last_(head(leaf)), r_(pairs(leaf, cap)) {}

    template <typename Emit>
    uint64_t split_targets(uint64_t base, uint64_t budget, uint64_t j,
                           uint64_t limit, Emit&& emit) {
      namespace bm = codec::bitmap;
      for (; j * budget < limit; ++j) {
        const size_t target = static_cast<size_t>(j * budget - base);
        if (target == 0) {
          emit(j, SpreadPoint{0, kHeadBytes, head_}, false);
          continue;
        }
        while (have_ || (have_ = r_.next())) {
          if (kHeadBytes + r_.pair_off() >= target) break;
          last_ = (r_.win() << 6) |
                  static_cast<unsigned>(63 - __builtin_clzll(r_.word()));
          have_ = false;
        }
        if (!have_) {
          emit(j, SpreadPoint{}, true);
          continue;
        }
        const size_t off = kHeadBytes + r_.pair_off();
        const uint64_t key =
            (r_.win() << 6) |
            static_cast<unsigned>(__builtin_ctzll(r_.word()));
        emit(j, SpreadPoint{off, off, key}, false);
      }
      while (have_ || r_.next()) {
        last_ = (r_.win() << 6) |
                static_cast<unsigned>(63 - __builtin_clzll(r_.word()));
        have_ = false;
      }
      return last_;
    }

   private:
    uint64_t head_;
    uint64_t last_;
    codec::bitmap::PairReader r_;
    bool have_ = false;
  };

  class SpreadSeeker {
   public:
    SpreadSeeker(const uint8_t* leaf, size_t cap) : v_(make(leaf, cap)) {}

    template <typename Emit>
    uint64_t split_targets(uint64_t base, uint64_t budget, uint64_t j,
                           uint64_t limit, Emit&& emit) {
      return std::visit(
          [&](auto& s) {
            return s.split_targets(
                base, budget, j, limit, [&](uint64_t jj, auto p, bool sliver) {
                  emit(jj, SpreadPoint{p.off, p.next, p.key}, sliver);
                });
          },
          v_);
    }

   private:
    using Var =
        std::variant<BV::SpreadSeeker, GV::SpreadSeeker, BitmapSeeker>;
    static Var make(const uint8_t* leaf, size_t cap) {
      switch (leaf[8]) {
        case kGroupVarint:
          return Var(std::in_place_type<GV::SpreadSeeker>, leaf, cap);
        case kBitmap:
          return Var(std::in_place_type<BitmapSeeker>, leaf, cap);
        default:
          return Var(std::in_place_type<BV::SpreadSeeker>, leaf, cap);
      }
    }
    Var v_;
  };

  // The destination adopts the format of the first content it receives
  // (copy/join); keys appended before that decide byte-varint. As in
  // CompressedLeaf, the ENGINE maintains `last` between calls from its
  // per-source stats; leaf-level users must do the same.
  struct SpreadWriter {
    uint8_t* dst = nullptr;
    size_t cap = 0;
    size_t pos = 0;
    uint64_t last = 0;
    uint8_t fmt = kByteVarint;
    bool decided = false;
    size_t last_pair = 0;  // bitmap: offset of the last written pair (0=none)
  };

  static void spread_begin(SpreadWriter& w, uint8_t* dst, size_t cap,
                           uint64_t first_key) {
    w.dst = dst;
    w.cap = cap;
    set_head(dst, first_key);
    dst[8] = kByteVarint;
    w.pos = kHeadBytes;
    w.last = first_key;
    w.fmt = kByteVarint;
    w.decided = false;
    w.last_pair = 0;
  }

  // Copies source content [from, to); destination start only (the engine
  // calls this once per destination, right after spread_begin, with the key
  // preceding `from` promoted into the head == w.last).
  static void spread_copy_tail(SpreadWriter& w, const uint8_t* src,
                               size_t from, size_t to) {
    assert(from >= kHeadBytes && to >= from);
    if (to == from) return;
    const uint8_t sf = src[8];
    adopt(w, sf);
    if (w.fmt == sf && sf != kBitmap) {
      assert(w.pos + (to - from) <= w.cap);
      std::memcpy(w.dst + w.pos, src + from, to - from);
      w.pos += to - from;
      return;
    }
    if (w.fmt == kBitmap && sf == kBitmap) {
      copy_tail_bitmap(w, src, from, to);
      return;
    }
    transcode_range(w, src, from, to);
  }

  // Splices the start of another source leaf: its head re-encodes into the
  // destination, then its content [kHeadBytes, to) follows.
  static void spread_join(SpreadWriter& w, const uint8_t* src,
                          uint64_t src_head, size_t to) {
    const uint8_t sf = src[8];
    adopt(w, sf);
    if (w.fmt == sf && sf != kBitmap) {
      assert(w.pos + codec::ByteVarintCodec::kMaxBytes + 1 <= w.cap);
      if (sf == kGroupVarint) {
        w.pos += codec::GroupVarintCodec::encode(src_head - w.last,
                                                 w.dst + w.pos);
      } else {
        w.pos += codec::ByteVarintCodec::encode(src_head - w.last,
                                                w.dst + w.pos);
      }
      w.last = src_head;
      assert(w.pos + (to - kHeadBytes) <= w.cap);
      std::memcpy(w.dst + w.pos, src + kHeadBytes, to - kHeadBytes);
      w.pos += to - kHeadBytes;
      return;
    }
    if (w.fmt == kBitmap && sf == kBitmap) {
      join_bitmap(w, src, src_head, to);
      return;
    }
    append_one(w, src_head);
    if (to > kHeadBytes) transcode_range(w, src, kHeadBytes, to);
  }

  static void spread_append_keys(SpreadWriter& w, const uint64_t* keys,
                                 size_t n) {
    for (size_t i = 0; i < n; ++i) append_one(w, keys[i]);
  }

  static size_t spread_finish(SpreadWriter& w) {
    assert(w.pos <= w.cap);
    std::memset(w.dst + w.pos, 0, w.cap - w.pos);
    return w.pos;
  }

 private:
  static void adopt(SpreadWriter& w, uint8_t f) {
    if (!w.decided) {
      w.decided = true;
      w.fmt = f;
      w.dst[8] = f;
    }
  }

  // Appends one key (> w.last) in the destination's format.
  static void append_one(SpreadWriter& w, uint64_t key) {
    namespace bm = codec::bitmap;
    if (!w.decided) adopt(w, kByteVarint);
    switch (w.fmt) {
      case kGroupVarint:
        assert(w.pos + codec::GroupVarintCodec::kMaxBytes <= w.cap);
        w.pos += codec::GroupVarintCodec::encode(key - w.last, w.dst + w.pos);
        break;
      case kBitmap: {
        const uint64_t wk = bm::window(key);
        if (w.last_pair != 0 && wk == bm::window(w.last)) {
          const size_t woff = w.last_pair + bm::Var::skip(w.dst + w.last_pair);
          uint64_t word;
          std::memcpy(&word, w.dst + woff, 8);
          word |= bm::bit_mask(key);
          std::memcpy(w.dst + woff, &word, 8);
        } else {
          assert(w.pos + bm::kMaxPairBytes <= w.cap);
          w.last_pair = w.pos;
          w.pos += bm::store_pair(w.dst + w.pos, wk - bm::window(w.last),
                                  bm::bit_mask(key));
        }
        break;
      }
      default:
        assert(w.pos + codec::ByteVarintCodec::kMaxBytes <= w.cap);
        w.pos += codec::ByteVarintCodec::encode(key - w.last, w.dst + w.pos);
        break;
    }
    w.last = key;
  }

  // Verbatim-copies body pairs [from, to) of a bitmap source into a bitmap
  // destination at destination start: the first pair re-encodes (rebased to
  // the head's window chain, bits <= w.last masked out), the rest copies
  // byte-for-byte (their deltas chain pair-to-pair, anchor unchanged).
  static void copy_tail_bitmap(SpreadWriter& w, const uint8_t* src,
                               size_t from, size_t to) {
    namespace bm = codec::bitmap;
    const uint8_t* sb = body(src);
    const size_t boff = from - kHeadBytes;
    const size_t bend = to - kHeadBytes;
    if (boff >= bend || sb[boff] == 0) return;
    bm::Pair p = bm::load_pair(sb + boff);
    // from == kHeadBytes: the pair chains from the source head's window ==
    // window(w.last). Mid-leaf split: w.last is the pair's promoted first
    // bit, so its absolute window is window(w.last) either way.
    const uint64_t w1 = (from == kHeadBytes)
                            ? bm::window(w.last) + p.wdelta
                            : bm::window(w.last);
    uint64_t word = p.word;
    if (w1 == bm::window(w.last)) word &= bm::above_mask(w.last);
    if (word != 0) {
      assert(w.pos + bm::kMaxPairBytes <= w.cap);
      w.last_pair = w.pos;
      w.pos += bm::store_pair(w.dst + w.pos, w1 - bm::window(w.last), word);
    }
    // word == 0 only when w1 == window(w.last); the dropped pair's window
    // equals the chain anchor, so the rest still chains correctly.
    const size_t rest_off = boff + p.len;
    if (rest_off < bend) {
      const size_t rest = bend - rest_off;
      assert(w.pos + rest <= w.cap);
      std::memcpy(w.dst + w.pos, sb + rest_off, rest);
      for (size_t q = 0; q < rest;
           q += bm::Var::skip(sb + rest_off + q) + 8) {
        w.last_pair = w.pos + q;
      }
      w.pos += rest;
    }
  }

  static void join_bitmap(SpreadWriter& w, const uint8_t* src,
                          uint64_t src_head, size_t to) {
    namespace bm = codec::bitmap;
    const uint8_t* sb = body(src);
    const size_t bend = to - kHeadBytes;
    const uint64_t wh = bm::window(src_head);
    if (bend == 0 || sb[0] == 0) {
      append_one(w, src_head);
      return;
    }
    bm::Pair f = bm::load_pair(sb);
    if (f.wdelta == 0) {
      // The source's first pair shares the head's window: merge the head's
      // bit into it so no window is stored twice.
      assert(w.pos + bm::kMaxPairBytes <= w.cap);
      w.last_pair = w.pos;
      w.pos += bm::store_pair(w.dst + w.pos, wh - bm::window(w.last),
                              f.word | bm::bit_mask(src_head));
      w.last = src_head;
      if (f.len < bend) {
        const size_t rest = bend - f.len;
        assert(w.pos + rest <= w.cap);
        std::memcpy(w.dst + w.pos, sb + f.len, rest);
        for (size_t q = 0; q < rest; q += bm::Var::skip(sb + f.len + q) + 8) {
          w.last_pair = w.pos + q;
        }
        w.pos += rest;
      }
      return;
    }
    // Distinct windows: append the head's own pair (or merge it into the
    // destination's current last pair), then copy every source pair
    // verbatim — their chain anchors at window(src_head) == window(w.last).
    append_one(w, src_head);
    assert(w.pos + bend <= w.cap);
    std::memcpy(w.dst + w.pos, sb, bend);
    for (size_t q = 0; q < bend; q += bm::Var::skip(sb + q) + 8) {
      w.last_pair = w.pos + q;
    }
    w.pos += bend;
  }

  // Cross-format stitch: decode the source range (anchored at w.last) and
  // re-append each key in the destination's format.
  static void transcode_range(SpreadWriter& w, const uint8_t* src,
                              size_t from, size_t to) {
    namespace bm = codec::bitmap;
    switch (src[8]) {
      case kBitmap: {
        const uint8_t* sb = body(src);
        const size_t boff = from - kHeadBytes;
        const size_t bend = to - kHeadBytes;
        uint64_t win = bm::window(w.last);
        bool first = true;
        size_t q = boff;
        while (q < bend && sb[q] != 0) {
          bm::Pair p = bm::load_pair(sb + q);
          // Same anchoring rule as copy_tail_bitmap's first pair.
          const uint64_t pw = (first && from != kHeadBytes)
                                  ? bm::window(w.last)
                                  : win + p.wdelta;
          uint64_t word = p.word;
          if (pw == bm::window(w.last)) word &= bm::above_mask(w.last);
          while (word != 0) {
            append_one(w, (pw << 6) |
                              static_cast<unsigned>(__builtin_ctzll(word)));
            word &= word - 1;
          }
          win = pw;
          q += p.len;
          first = false;
        }
        return;
      }
      case kGroupVarint: {
        codec::DeltaStream<codec::GroupVarintCodec> s(src + from, to - from,
                                                      w.last);
        while (s.next()) append_one(w, s.value());
        return;
      }
      default: {
        codec::DeltaStream<codec::ByteVarintCodec> s(src + from, to - from,
                                                     w.last);
        while (s.next()) append_one(w, s.value());
        return;
      }
    }
  }
};

}  // namespace cpma::pma
