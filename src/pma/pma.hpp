// PackedMemoryArray<LeafPolicy> — the paper's core data structure.
//
// One engine implements both the PMA (UncompressedLeaf) and the CPMA
// (CompressedLeaf): the engine works entirely in BYTE densities, which is the
// generalization Section 5 makes ("the density in a CPMA node is the ratio of
// filled bytes to total bytes").
//
// Structure: a flat byte array split into `num_leaves` leaves of `leaf_bytes`
// bytes (Theta(log n) sized, power-of-two), an implicit binary tree over the
// leaves with height-interpolated density bounds, and a contiguous head index
// (one key per leaf, empty leaves inherit their predecessor's head) used for
// binary-searching — our stand-in for the search-optimized layout of
// Wheatman et al. [ALENEX'23] that the paper builds on.
//
// Supported operations mirror the paper's artifact API: insert/remove,
// insert_batch/remove_batch (the paper's parallel batch-update algorithm),
// has, size, get_size, sum, min/max, map, parallel_map, map_range,
// map_range_length, iteration.
//
// Key 0 is the empty-cell sentinel inside leaves, so it is stored out-of-band
// (`has_zero_`); all public operations handle it transparently.
#pragma once

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <iterator>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "parallel/reduce.hpp"
#include "parallel/scan.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/seq_ops.hpp"
#include "parallel/sort.hpp"
#include "parallel/worker_local.hpp"
#include "pma/head_eytzinger.hpp"
#include "pma/implicit_tree.hpp"
#include "pma/settings.hpp"
#include "util/bits.hpp"
#include "util/uninitialized.hpp"

namespace cpma::pma {

// Accumulated wall-clock breakdown of the batch-update pipeline, kept by
// every PackedMemoryArray and always compiled in: the cost is a handful of
// steady_clock reads per BATCH (not per leaf), which is noise next to the
// phases being measured. The bench surfaces these so batch-insert
// regressions are attributable to a phase.
struct BatchPhaseTimes {
  uint64_t route_ns = 0;         // phase 1a: partition batch into leaf runs
  uint64_t merge_ns = 0;         // phase 1b: per-leaf merges / subtractions
  uint64_t count_ns = 0;         // phase 2: work-efficient counting
  uint64_t redistribute_ns = 0;  // phase 3: redistribution + index repair
  uint64_t spread_ns = 0;        // direct-spread resize on root violation
  uint64_t rebuild_ns = 0;       // whole-structure rebuild strategy, plus
                                 // the rare pack+rebuild resize fallback
  uint64_t batches = 0;          // merge-path batches measured
  uint64_t rebuilds = 0;         // rebuild-path batches measured
  uint64_t spreads = 0;          // direct-spread resizes measured
};

namespace detail {
// Lap timer for the phase boundaries above.
class PhaseTimer {
 public:
  uint64_t lap() {
    auto now = clock::now();
    uint64_t ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - last_)
            .count());
    last_ = now;
    return ns;
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point last_ = clock::now();
};
}  // namespace detail

template <typename Leaf>
class PackedMemoryArray {
 public:
  using key_type = uint64_t;
  using leaf_policy = Leaf;
  // Default-init vector used for all bulk key scratch (see util/uninitialized.hpp).
  using kvec = util::uvector<key_type>;

  static constexpr size_t kMinLeafBytes = 512;
  static constexpr uint64_t kMinLeaves = 2;
  // Batches below this size are applied as point updates (the paper: "if k is
  // small, the overheads from the batch-update algorithm outweigh the
  // benefits").
  static constexpr uint64_t kPointThreshold = 128;

  explicit PackedMemoryArray(PmaSettings settings = {})
      : settings_(settings) {
    init_empty();
  }

  // Builds from an arbitrary range of keys (need not be sorted or unique).
  PackedMemoryArray(const key_type* start, const key_type* end,
                    PmaSettings settings = {})
      : settings_(settings) {
    init_empty();
    std::vector<key_type> keys(start, end);
    insert_batch(keys.data(), keys.size(), /*sorted=*/false);
  }

  // ---- size & space -------------------------------------------------------

  // Number of stored keys.
  uint64_t size() const { return count_ + (has_zero_ ? 1 : 0); }
  bool empty() const { return size() == 0; }

  // Memory used by the structure, in bytes (paper API `get_size`).
  uint64_t get_size() const {
    return data_.capacity() + head_index_.capacity() * sizeof(key_type) +
           overflow_slot_.capacity() * sizeof(uint32_t) + sizeof(*this);
  }

  uint64_t num_leaves() const { return num_leaves_; }
  uint64_t leaf_bytes() const { return leaf_bytes_; }
  uint64_t total_bytes() const { return data_.size(); }
  const PmaSettings& settings() const { return settings_; }

  // ---- point operations ---------------------------------------------------

  // NOTE: has() and every other query below are genuinely const — no lazy
  // index repair, no mutable caches. (The head index is repaired eagerly on
  // the write paths: insert() re-indexes a leaf whose head changed
  // immediately after the leaf write, never from a read.) Snapshot layers
  // share one engine across reader threads relying on exactly this;
  // test_query_batch's TSan case pins it.
  bool has(key_type key) const {
    if (key == 0) return has_zero_;
    uint64_t l = find_leaf(key);
    // Head-index fast paths: every index entry is a stored key (empty leaves
    // inherit their predecessor's head) or 0, so an exact match is a hit and
    // a key below its leaf's indexed head is a miss — neither touches leaf
    // bytes, so misses that fall before the first head never decode.
    key_type indexed = head_index_[l];
    if (key == indexed) return true;
    if (key < indexed || indexed == 0) return false;
    return Leaf::contains(leaf_ptr(l), leaf_bytes_, key);
  }

  // Inserts `key`; returns true iff it was not already present.
  bool insert(key_type key) {
    if (key == 0) {
      bool added = !has_zero_;
      has_zero_ = true;
      return added;
    }
    uint64_t l = find_leaf(key);
    uint8_t* lp = leaf_ptr(l);
    if (!Leaf::insert(lp, leaf_bytes_, key)) return false;
    ++count_;
    if (Leaf::head(lp) != head_index_[l]) update_head_index(l, l + 1);
    rebalance_insert(l);
    return true;
  }

  // Removes `key`; returns true iff it was present.
  bool remove(key_type key) {
    if (key == 0) {
      bool removed = has_zero_;
      has_zero_ = false;
      return removed;
    }
    uint64_t l = find_leaf(key);
    uint8_t* lp = leaf_ptr(l);
    if (!Leaf::remove(lp, leaf_bytes_, key)) return false;
    --count_;
    update_head_index(l, l + 1);
    rebalance_remove(l);
    return true;
  }

  // Smallest stored key >= `key` (paper's `search`).
  std::optional<key_type> successor(key_type key) const {
    if (key == 0 && has_zero_) return key_type{0};
    key_type lo = key == 0 ? 1 : key;
    uint64_t l = find_leaf(lo);
    // Exact head-index hit: the entry is a stored key, answer without
    // decoding the leaf.
    if (head_index_[l] == lo) return lo;
    if (auto v = Leaf::lower_bound(leaf_ptr(l), leaf_bytes_, key)) return v;
    for (uint64_t j = l + 1; j < num_leaves_; ++j) {
      key_type h = Leaf::head(leaf_ptr(j));
      if (h != 0) return h;  // first key after leaf l; necessarily >= key
    }
    return std::nullopt;
  }

  // Empty set -> nullopt. (These used to return key 0 on empty, which
  // collides with the out-of-band zero sentinel: {} and {0} both answered
  // min() == 0. The optional keeps the two distinguishable.)
  std::optional<key_type> min() const {
    if (has_zero_) return key_type{0};
    for (uint64_t l = 0; l < num_leaves_; ++l) {
      key_type h = Leaf::head(leaf_ptr(l));
      if (h != 0) return h;
    }
    return std::nullopt;
  }

  std::optional<key_type> max() const {
    for (uint64_t l = num_leaves_; l-- > 0;) {
      if (Leaf::head(leaf_ptr(l)) != 0) {
        return Leaf::last(leaf_ptr(l), leaf_bytes_);
      }
    }
    // No non-zero keys: the zero sentinel alone is the maximum.
    if (has_zero_) return key_type{0};
    return std::nullopt;
  }

  // ---- batch operations (Section 4 of the paper) --------------------------

  // Inserts a batch; `input` is used as scratch (sorted in place when
  // sorted == false, matching the artifact API). Returns the number of keys
  // newly added (duplicates of existing keys do not count).
  uint64_t insert_batch(key_type* input, uint64_t n, bool sorted = false);
  uint64_t insert_batch(std::vector<key_type> batch, bool sorted = false) {
    return insert_batch(batch.data(), batch.size(), sorted);
  }

  // Removes a batch; returns the number of keys actually removed.
  uint64_t remove_batch(key_type* input, uint64_t n, bool sorted = false);
  uint64_t remove_batch(std::vector<key_type> batch, bool sorted = false) {
    return remove_batch(batch.data(), batch.size(), sorted);
  }

  // Serial batch-insert BASELINE in the style of the Rewired PMA [De Leo &
  // Boncz, ICDE'19]: per-leaf merges shared between updates, but rebalancing
  // walks (and re-counts) per touched leaf instead of running the
  // work-efficient counting phase. Used by the Table 4 bench as the
  // comparator the paper's serial batch algorithm is measured against.
  uint64_t insert_batch_serial_baseline(key_type* input, uint64_t n,
                                        bool sorted = false);

  // Accumulated per-phase wall-clock times of the batch pipeline since
  // construction (or the last reset). Cheap enough to be always on.
  const BatchPhaseTimes& batch_phase_times() const { return phase_times_; }
  void reset_batch_phase_times() { phase_times_ = BatchPhaseTimes{}; }

  // ---- scans --------------------------------------------------------------

  // Applies f(key) to every key in sorted order.
  template <typename F>
  void map(F&& f) const {
    if (has_zero_) f(key_type{0});
    for (uint64_t l = 0; l < num_leaves_; ++l) {
      Leaf::map(leaf_ptr(l), leaf_bytes_, [&](key_type k) {
        f(k);
        return true;
      });
    }
  }

  // Applies f(key) to every key, in parallel across leaves (order within a
  // leaf is sorted; across leaves, concurrent).
  template <typename F>
  void parallel_map(F&& f) const {
    if (has_zero_) f(key_type{0});
    par::parallel_for(0, num_leaves_, [&](uint64_t l) {
      Leaf::map(leaf_ptr(l), leaf_bytes_, [&](key_type k) {
        f(k);
        return true;
      });
    }, 4);
  }

  // Applies f to keys in [start, end), in order (paper's range_map).
  template <typename F>
  void map_range(F&& f, key_type start, key_type end) const {
    if (start >= end) return;
    if (start == 0 && has_zero_) f(key_type{0});
    key_type lo = start == 0 ? 1 : start;
    uint64_t l = find_leaf(lo);
    for (; l < num_leaves_; ++l) {
      bool keep_going = Leaf::map(leaf_ptr(l), leaf_bytes_, [&](key_type k) {
        if (k < lo) return true;
        if (k >= end) return false;
        f(k);
        return true;
      });
      if (!keep_going) return;
      // Next leaf's keys are all > this leaf's; stop once past `end`.
      if (l + 1 < num_leaves_ && head_index_[l + 1] >= end &&
          Leaf::head(leaf_ptr(l + 1)) != 0) {
        return;
      }
    }
  }

  // Applies f to at most `length` keys starting from the smallest key
  // >= start; returns how many were applied.
  template <typename F>
  uint64_t map_range_length(F&& f, key_type start, uint64_t length) const {
    if (length == 0) return 0;
    uint64_t applied = 0;
    if (start == 0 && has_zero_) {
      f(key_type{0});
      if (++applied == length) return applied;
    }
    key_type lo = start == 0 ? 1 : start;
    uint64_t l = find_leaf(lo);
    for (; l < num_leaves_ && applied < length; ++l) {
      Leaf::map(leaf_ptr(l), leaf_bytes_, [&](key_type k) {
        if (k < lo) return true;
        f(k);
        return ++applied < length;
      });
    }
    return applied;
  }

  // ---- batch queries (read-side twin of the batch-insert pipeline) --------
  //
  // All three take SORTED query inputs (duplicates allowed), route them
  // through the same gallop partition the insert router uses, and decode
  // each touched leaf ONCE — a single streaming pass shared by every query
  // landing in that leaf — with per-run work dispatched as parallel tasks
  // at the merge phase's grain. Wait-free const reads (see has()).

  // Sets bit (bit_base + i) of `bits` for every keys[i] present. Bits for
  // missing keys are left untouched (callers zero-init), so concurrent
  // writers of one shared bitmap only ever OR — the sharded layer exploits
  // this to let sibling shards fill disjoint query slices of one output.
  void has_batch(const key_type* keys, uint64_t n, uint64_t* bits,
                 uint64_t bit_base = 0) const;

  // Convenience: bitmap sized to ceil(n / 64) words.
  std::vector<uint64_t> has_batch(const key_type* keys, uint64_t n) const {
    std::vector<uint64_t> bits((n + 63) / 64, 0);
    has_batch(keys, n, bits.data(), 0);
    return bits;
  }

  // out[i] = smallest stored key >= keys[i], and bit (bit_base + i) of
  // `found` is set, for every query with a successor; entries without one
  // are left untouched. (A sentinel cannot signal "none": both 0 and
  // UINT64_MAX are storable keys.)
  void successor_batch(const key_type* keys, uint64_t n, key_type* out,
                       uint64_t* found, uint64_t bit_base = 0) const;

  // Applies f(range_index, key) to every stored key in each [start, end)
  // range. `ranges` must be sorted by start and pairwise disjoint. Ranges
  // are grouped by starting leaf and the groups run as parallel tasks, so f
  // must be safe to call concurrently for different ranges (same contract
  // as parallel_map); within one range keys arrive in order.
  template <typename F>
  void map_ranges(const std::pair<key_type, key_type>* ranges, uint64_t m,
                  F&& f) const;

  // Parallel sum of all keys.
  uint64_t sum() const {
    return par::parallel_sum<uint64_t>(
        0, num_leaves_,
        [&](uint64_t l) { return Leaf::sum_leaf(leaf_ptr(l), leaf_bytes_); },
        4);
  }

  // ---- sharding hooks (used by pma/sharded.hpp) ---------------------------

  // Encoded content bytes over all leaves, via the same terminator-scan
  // sizing resize_spread's pass 1 uses. This is the sharded layer's balance
  // coordinate (and the numerator of density()).
  uint64_t content_bytes() const {
    return par::parallel_sum<uint64_t>(
        0, num_leaves_,
        [&](uint64_t l) { return Leaf::used_bytes(leaf_ptr(l), leaf_bytes_); },
        4);
  }

  // Smallest stored key at or after `target` content bytes (leaf
  // granularity): the keys below the returned key occupy approximately
  // `target` encoded bytes. nullopt when the target lands in or past the
  // last nonempty leaf — the caller cannot split there any finer than
  // "everything".
  std::optional<key_type> split_key_for_bytes(uint64_t target) const;

  // Removes every stored key in [lo, hi) and returns them sorted — the
  // sharded layer's boundary-move hook. Restores the density bounds with
  // one direct spread (resize machinery) instead of packing every key, so
  // a boundary move costs one streaming pass of this engine, not a full
  // materialize + rebuild.
  kvec extract_range(key_type lo, key_type hi);

  // Replaces the entire contents from a sorted, duplicate-free key stream
  // (leading zeros allowed: they set the key-0 sentinel). The sharded
  // layer's bulk-construction hook: O(n) spread, no merge.
  void build_from_sorted(const key_type* keys, uint64_t n);

  // ---- iteration ----------------------------------------------------------

  class const_iterator {
   public:
    using value_type = key_type;
    using difference_type = std::ptrdiff_t;
    using reference = key_type;
    using pointer = const key_type*;
    using iterator_category = std::forward_iterator_tag;

    const_iterator() = default;
    key_type operator*() const { return at_zero_ ? 0 : cur_.value; }

    const_iterator operator++(int) {
      const_iterator copy = *this;
      ++*this;
      return copy;
    }

    const_iterator& operator++() {
      if (at_zero_) {
        at_zero_ = false;
        seek_first_leaf(0);
        return *this;
      }
      if (!Leaf::cursor_next(pma_->leaf_ptr(leaf_), pma_->leaf_bytes_, cur_)) {
        seek_first_leaf(leaf_ + 1);
      }
      return *this;
    }

    bool operator==(const const_iterator& o) const {
      return leaf_ == o.leaf_ && at_zero_ == o.at_zero_ &&
             (leaf_ == end_leaf() || cur_.pos == o.cur_.pos);
    }

   private:
    friend class PackedMemoryArray;
    explicit const_iterator(const PackedMemoryArray* p) : pma_(p) {}

    uint64_t end_leaf() const { return pma_ ? pma_->num_leaves_ : 0; }

    void seek_first_leaf(uint64_t from) {
      for (leaf_ = from; leaf_ < pma_->num_leaves_; ++leaf_) {
        if (Leaf::cursor_begin(pma_->leaf_ptr(leaf_), pma_->leaf_bytes_,
                               cur_)) {
          return;
        }
      }
    }

    const PackedMemoryArray* pma_ = nullptr;
    uint64_t leaf_ = 0;
    typename Leaf::Cursor cur_{};
    bool at_zero_ = false;
  };

  const_iterator begin() const {
    const_iterator it(this);
    if (has_zero_) {
      it.at_zero_ = true;
    } else {
      it.seek_first_leaf(0);
    }
    return it;
  }

  const_iterator end() const {
    const_iterator it(this);
    it.leaf_ = num_leaves_;
    return it;
  }

  // ---- advanced iteration (used by F-Graph's vertex index) -----------------
  // A Position names a key's location (leaf + in-leaf cursor). Positions are
  // invalidated by ANY update; F-Graph rebuilds its index after batches, the
  // same protocol the paper uses for the vertex offset array.

  struct Position {
    uint64_t leaf = 0;
    typename Leaf::Cursor cur{};
  };

  // Calls f(position, key) for every key in leaf l, in order.
  template <typename F>
  void scan_leaf_positions(uint64_t l, F&& f) const {
    typename Leaf::Cursor cur;
    const uint8_t* lp = leaf_ptr(l);
    if (!Leaf::cursor_begin(lp, leaf_bytes_, cur)) return;
    do {
      f(Position{l, cur}, cur.value);
    } while (Leaf::cursor_next(lp, leaf_bytes_, cur));
  }

  // Number of keys stored in leaf l (for building rank offsets).
  uint64_t leaf_element_count(uint64_t l) const {
    return Leaf::element_count(leaf_ptr(l), leaf_bytes_);
  }

  // Key-only scan of leaf l (no positions): the hot loop of flat
  // arbitrary-order graph kernels.
  template <typename F>
  void scan_leaf_keys(uint64_t l, F&& f) const {
    Leaf::map(leaf_ptr(l), leaf_bytes_, [&](key_type k) {
      f(k);
      return true;
    });
  }

  // First position of leaf l, or nullopt for an empty leaf. The sharded
  // compositions use this to resume a cross-shard scan at the next shard's
  // first key (pma/flat_leaves.hpp).
  std::optional<Position> leaf_first_position(uint64_t l) const {
    typename Leaf::Cursor cur;
    if (!Leaf::cursor_begin(leaf_ptr(l), leaf_bytes_, cur)) {
      return std::nullopt;
    }
    return Position{l, cur};
  }

  // Iterates keys starting at `pos` (inclusive), continuing across leaves,
  // while f(key) returns true.
  template <typename F>
  void map_from_position(Position pos, F&& f) const {
    uint64_t l = pos.leaf;
    if (l >= num_leaves_) return;
    typename Leaf::Cursor cur = pos.cur;
    while (true) {
      if (!f(cur.value)) return;
      if (!Leaf::cursor_next(leaf_ptr(l), leaf_bytes_, cur)) {
        ++l;
        while (l < num_leaves_ &&
               !Leaf::cursor_begin(leaf_ptr(l), leaf_bytes_, cur)) {
          ++l;
        }
        if (l >= num_leaves_) return;
      }
    }
  }

  // ---- introspection (tests, benches) --------------------------------------

  // Occupied bytes over total bytes.
  double density() const {
    return static_cast<double>(content_bytes()) /
           static_cast<double>(data_.size());
  }

  // Validates the structural invariants; returns true and leaves *err
  // untouched on success.
  bool check_invariants(std::string* err) const;

 private:
  // ---- layout ---------------------------------------------------------------

  uint8_t* leaf_ptr(uint64_t l) { return data_.data() + l * leaf_bytes_; }
  const uint8_t* leaf_ptr(uint64_t l) const {
    return data_.data() + l * leaf_bytes_;
  }

  // Chooses leaf size Theta(log N) bytes (power of two) for a given total.
  static size_t pick_leaf_bytes(uint64_t total) {
    uint64_t target = 16 * util::log2_ceil(std::max<uint64_t>(total, 2));
    target = std::max<uint64_t>(target, kMinLeafBytes);
    target = std::min<uint64_t>(target, 1 << 16);
    return util::next_pow2(target);
  }

  void init_empty() {
    leaf_bytes_ = kMinLeafBytes;
    num_leaves_ = kMinLeaves;
    data_.assign(num_leaves_ * leaf_bytes_, 0);  // small: serial zeroing fine
    head_index_.assign(num_leaves_, 0);
    eytz_.build(head_index_);
    count_ = 0;
  }

  // ---- head index ----------------------------------------------------------
  // Two coupled structures answer find_leaf: the flat `head_index_` (source
  // of truth — the routing gallop, run_end, and map_range all read it by
  // position) and `eytz_`, a branchless Eytzinger-layout mirror
  // (head_eytzinger.hpp) that the point-query descent prefers. Both are
  // maintained here and ONLY here: every write funnels through
  // update_head_index / rebuild_head_index, always from the single-writer
  // update paths.

  // Leaf whose key range contains `key`: the first leaf of the run of equal
  // head-index entries ending at the last entry <= key.
  uint64_t find_leaf(key_type key) const {
    if (eytzinger_enabled()) return eytz_.find_leaf(key);
    return find_leaf_flat(key);
  }

  // Flat fallback (CPMA_EYTZINGER=0) and the mirror's reference semantics:
  // locate the last entry <= key, then a second search for its run's first.
  uint64_t find_leaf_flat(key_type key) const {
    auto it = std::upper_bound(head_index_.begin(), head_index_.end(), key);
    if (it == head_index_.begin()) return 0;
    --it;
    auto first = std::lower_bound(head_index_.begin(), it, *it);
    return static_cast<uint64_t>(first - head_index_.begin());
  }

  // Recomputes index entries for leaves [lo, hi), then propagates through any
  // trailing run of empty leaves; the mirror is repaired over the full extent
  // actually written.
  void update_head_index(uint64_t lo, uint64_t hi) {
    for (uint64_t l = lo; l < hi; ++l) {
      key_type h = Leaf::head(leaf_ptr(l));
      head_index_[l] = (h != 0) ? h : (l == 0 ? 0 : head_index_[l - 1]);
    }
    uint64_t stop = hi;
    for (; stop < num_leaves_; ++stop) {
      if (Leaf::head(leaf_ptr(stop)) != 0) break;
      head_index_[stop] = head_index_[stop - 1];
    }
    eytz_.repair(head_index_, lo, stop);
  }

  void rebuild_head_index() {
    rebuild_head_index_flat();
    eytz_.build(head_index_);
  }

  void rebuild_head_index_flat() {
    head_index_.resize(num_leaves_);
    const uint64_t chunk = 2048;
    if (num_leaves_ <= 2 * chunk) {
      key_type prev = 0;
      for (uint64_t l = 0; l < num_leaves_; ++l) {
        key_type h = Leaf::head(leaf_ptr(l));
        prev = (h != 0) ? h : prev;
        head_index_[l] = prev;
      }
      return;
    }
    // Chunked two-pass: fill raw heads per chunk and record each chunk's
    // last nonempty head; serially carry across chunks; then fill the empty
    // entries with the carried value.
    const uint64_t num_chunks = (num_leaves_ + chunk - 1) / chunk;
    std::vector<key_type> chunk_last(num_chunks, 0);
    par::parallel_for(0, num_chunks, [&](uint64_t c) {
      uint64_t lo = c * chunk, hi = std::min(num_leaves_, lo + chunk);
      key_type prev = 0;
      for (uint64_t l = lo; l < hi; ++l) {
        key_type h = Leaf::head(leaf_ptr(l));
        prev = (h != 0) ? h : prev;
        head_index_[l] = prev;  // 0 marks "no head yet within this chunk"
      }
      chunk_last[c] = prev;
    }, 1);
    for (uint64_t c = 1; c < num_chunks; ++c) {
      if (chunk_last[c] == 0) chunk_last[c] = chunk_last[c - 1];
    }
    par::parallel_for(1, num_chunks, [&](uint64_t c) {
      key_type carry = chunk_last[c - 1];
      uint64_t lo = c * chunk, hi = std::min(num_leaves_, lo + chunk);
      for (uint64_t l = lo; l < hi && head_index_[l] == 0; ++l) {
        head_index_[l] = carry;
      }
    }, 1);
  }

  // ---- densities -----------------------------------------------------------

  uint64_t region_capacity(const ImplicitTree& t, NodeId n) const {
    return t.region_leaves(n) * leaf_bytes_;
  }

  uint64_t upper_bytes(const ImplicitTree& t, NodeId n) const {
    double frac = settings_.upper_at(n.height, t.height());
    return static_cast<uint64_t>(frac *
                                 static_cast<double>(region_capacity(t, n)));
  }

  uint64_t lower_bytes(const ImplicitTree& t, NodeId n) const {
    double frac = settings_.lower_at(n.height, t.height());
    return static_cast<uint64_t>(frac *
                                 static_cast<double>(region_capacity(t, n)));
  }

  uint64_t count_bytes(uint64_t leaf_lo, uint64_t leaf_hi) const {
    uint64_t total = 0;
    for (uint64_t l = leaf_lo; l < leaf_hi; ++l) {
      total += Leaf::used_bytes(leaf_ptr(l), leaf_bytes_);
    }
    return total;
  }

  // ---- point-update rebalancing ---------------------------------------------

  void rebalance_insert(uint64_t leaf) {
    ImplicitTree tree(num_leaves_);
    NodeId node = tree.leaf_node(leaf);
    uint64_t used = Leaf::used_bytes(leaf_ptr(leaf), leaf_bytes_);
    if (used <= upper_bytes(tree, node)) return;
    while (true) {
      if (tree.is_root(node)) {
        resize_rebuild(/*growing=*/true);
        return;
      }
      node = node.parent();
      used = count_bytes(tree.region_begin(node), tree.region_end(node));
      if (used <= upper_bytes(tree, node)) break;
    }
    redistribute_serial(tree, node);
  }

  void rebalance_remove(uint64_t leaf) {
    ImplicitTree tree(num_leaves_);
    NodeId node = tree.leaf_node(leaf);
    uint64_t used = Leaf::used_bytes(leaf_ptr(leaf), leaf_bytes_);
    if (used >= lower_bytes(tree, node)) return;
    while (true) {
      if (tree.is_root(node)) {
        resize_rebuild(/*growing=*/false);
        return;
      }
      node = node.parent();
      used = count_bytes(tree.region_begin(node), tree.region_end(node));
      if (used >= lower_bytes(tree, node)) break;
    }
    redistribute_serial(tree, node);
  }

  void redistribute_serial(const ImplicitTree& tree, NodeId node) {
    uint64_t lo = tree.region_begin(node), hi = tree.region_end(node);
    std::vector<key_type> keys;
    for (uint64_t l = lo; l < hi; ++l) {
      Leaf::decode_append(leaf_ptr(l), leaf_bytes_, keys);
    }
    if constexpr (requires(const uint8_t* p) { Leaf::format_of(p); }) {
      // Byte density admitted this region, but physical packing can still
      // need more leaves than it has (dense-island fragmentation: an
      // island's tail leaf cannot absorb far keys in any format). Escalate
      // to ancestors until the content provably fits; at the root, resize.
      while (pack_physical(keys.data(), keys.size(),
                           leaf_bytes_ - kLeafSlack - 18)
                 .first > hi - lo) {
        if (tree.is_root(node)) {
          resize_rebuild(/*growing=*/true);
          return;
        }
        node = node.parent();
        uint64_t nlo = tree.region_begin(node), nhi = tree.region_end(node);
        keys.clear();
        for (uint64_t l = nlo; l < nhi; ++l) {
          Leaf::decode_append(leaf_ptr(l), leaf_bytes_, keys);
        }
        lo = nlo;
        hi = nhi;
      }
    }
    spread(lo, hi, keys.data(), keys.size());
    update_head_index(lo, hi);
  }

  // ---- spread (the redistribute primitive) ----------------------------------
  // Writes keys[0..n) into leaves [lo, hi), equalizing BYTE densities: the
  // paper's redistribution "spreads the elements evenly" — with compression,
  // evenly in encoded bytes. Parallel: per-key costs, prefix sums, split by
  // byte budget, write each leaf independently.
  void spread(uint64_t lo, uint64_t hi, const key_type* keys, uint64_t n);

  // Per-key incremental encoded cost used by spread.
  static uint64_t key_cost(key_type prev, key_type key, bool first);

  // Greedy physical packer for multi-format leaves: walks the stream
  // accumulating each format's exact encoded size (Leaf::StreamSizer) and
  // cuts a new leaf whenever the SELECTED format's size would exceed
  // `budget`. Canonical (byte-varint) budgeting under-counts how many keys a
  // bitmap leaf absorbs, so dense regions must be split by the bytes they
  // will actually materialize at. Returns {leaves, physical bytes}; when
  // `cuts` is given, records each leaf's first key index. Only instantiated
  // for leaves exposing StreamSizer (AdaptiveLeaf).
  std::pair<uint64_t, uint64_t> pack_physical(
      const key_type* keys, uint64_t n, uint64_t budget,
      std::vector<uint64_t>* cuts = nullptr) const {
    typename Leaf::StreamSizer s{};
    uint64_t leaves = 0, phys = 0;
    for (uint64_t i = 0; i < n; ++i) {
      typename Leaf::StreamSizer t = s;
      t.add(keys[i]);
      if (s.n > 0 && t.selected_bytes(leaf_bytes_) > budget) {
        phys += s.selected_bytes(leaf_bytes_);
        ++leaves;
        s = {};
        s.add(keys[i]);
        if (cuts) cuts->push_back(i);
      } else {
        if (s.n == 0 && cuts) cuts->push_back(i);
        s = t;
      }
    }
    if (s.n > 0) {
      phys += s.selected_bytes(leaf_bytes_);
      ++leaves;
    }
    return {leaves, phys};
  }

  // Parallel equivalent of Leaf::encoded_size (a serial pass over millions
  // of keys otherwise shows up in every resize). For multi-format leaves the
  // estimate is PHYSICAL: the bytes the stream packs into at the current
  // leaf cap, so resize targets track the compressed footprint dense
  // regions actually occupy (canonical sizing would over-allocate them and
  // erase the bitmap space win).
  uint64_t stream_size_parallel(const key_type* keys, uint64_t n) const {
    if (n == 0) return 0;
    if constexpr (requires(const uint8_t* p) { Leaf::format_of(p); }) {
      return pack_physical(keys, n, leaf_bytes_ - kLeafSlack - 18).second;
    }
    if (n < 8192) return Leaf::encoded_size(keys, n);
    return 8 + par::parallel_sum<uint64_t>(1, n, [&](uint64_t i) {
             return key_cost(keys[i - 1], keys[i], false);
           });
  }

  // ---- resize ----------------------------------------------------------------

  kvec pack_all() const;
  void rebuild_into(uint64_t new_total_bytes, const key_type* keys,
                    uint64_t n);
  void rebuild_into(uint64_t new_total_bytes, const kvec& keys) {
    rebuild_into(new_total_bytes, keys.data(), keys.size());
  }
  uint64_t choose_total_bytes(uint64_t stream_bytes) const;
  // Resize sizing policy shared by the direct-spread and pack+rebuild
  // paths: grow by the configured factor until `bytes` comfortably respects
  // the root's upper bound (0.95 margin absorbs per-leaf head inflation),
  // shrink while the contents still fit a smaller array with room to spare.
  uint64_t resize_target_bytes(uint64_t bytes, bool growing) const {
    const double g = settings_.growth_factor;
    const uint64_t min_total = kMinLeaves * kMinLeafBytes;
    uint64_t nt = data_.size();
    if (growing) {
      do {
        nt = static_cast<uint64_t>(static_cast<double>(nt) * g) + 1;
      } while (static_cast<double>(bytes) >
               settings_.upper_root * 0.95 * static_cast<double>(nt));
      return nt;
    }
    while (nt > min_total) {
      uint64_t smaller = std::max<uint64_t>(
          min_total, static_cast<uint64_t>(static_cast<double>(nt) / g));
      if (smaller == nt) break;
      if (static_cast<double>(bytes) <=
          settings_.upper_root * 0.7 * static_cast<double>(smaller)) {
        nt = smaller;
      } else {
        break;
      }
    }
    return nt;
  }
  // Tries the direct spread first, falling back to pack + rebuild.
  void resize_rebuild(bool growing);
  // The old materializing resize: pack every key into a flat vector and
  // re-encode the whole structure. Kept as the fallback for density targets
  // that leave too little slack for verbatim splicing, and reused by the
  // huge-batch rebuild strategy's helpers.
  void resize_pack_rebuild(bool growing);

  // A destination-leaf boundary in the direct spread: the first key whose
  // content offset is at or past the boundary's byte target. `off`/`next`
  // are the key's code start / one-past-code offsets inside source leaf
  // `leaf` (off == 0 is the head); `kidx` is the key's index when the
  // source is an overflowed leaf's flat key vector. leaf == num_leaves_
  // marks "past the end"; off == kSliverOff marks a target that fell in the
  // sliver past the leaf's last key (resolved to the next nonempty head).
  struct SpreadSplit {
    uint64_t leaf = 0;
    size_t off = 0;
    size_t next = 0;
    key_type key = 0;
    uint64_t kidx = 0;
  };
  static constexpr size_t kSliverOff = SIZE_MAX;

  // Reusable arenas for the direct-spread resize (one per BatchContext; the
  // point-update paths use a local).
  struct ResizeScratch {
    util::uvector<uint64_t> prefix;  // per-leaf content bytes, then prefix sums
    util::uvector<key_type> last;    // per-leaf last key (0 = empty)
    util::uvector<SpreadSplit> splits;  // one per destination leaf, plus end
  };

  // Direct-spread resize (no flat key vector): computes per-leaf byte
  // prefix sums, sizes the new array from the exact concatenated stream
  // size, and stitches encoded source runs straight into the destination
  // leaves — splitting runs at leaf boundaries, re-encoding only at
  // source-leaf joins and promoted heads. `ctx` (nullable) supplies the
  // batch's overflowed leaves and the reusable arenas. Returns false
  // (structure untouched) when the byte budget cannot guarantee the slack
  // bound; the caller then packs and rebuilds.
  struct BatchContext;
  bool resize_spread(bool growing, BatchContext* ctx);

  // ---- batch machinery (pma_impl.hpp) ----------------------------------------
  //
  // The batch-update middle is a flat four-phase pipeline:
  //   1. route:        one parallel partition of the sorted batch against the
  //                    head index emits a dense (leaf, begin, end) work list,
  //                    sorted by leaf; per-leaf merges then run as one
  //                    parallel_for over that list.
  //   2. overflow:     out-of-place leaf overflows are tracked by a flat
  //                    per-leaf slot array (kNoOverflow sentinel) — every
  //                    lookup in the later phases is one array load.
  //   3. count/redistribute: the counting cache is a sorted flat vector
  //                    merged in parallel between levels, and region
  //                    redistribution reuses BatchContext-owned arenas.
  //   4. measure:      phase boundaries feed BatchPhaseTimes (always on).

  struct Overflow {
    uint64_t leaf;
    std::vector<key_type> keys;  // full merged content of the leaf
    uint64_t bytes;              // true encoded size
  };

  // (leaf, bytes-after-merge): the merge phase hands its byte counts to the
  // counting phase so level-0 seeding never rescans leaves.
  struct TouchedLeaf {
    uint64_t leaf;
    uint64_t bytes;
  };

  // A maximal slice of the sorted batch routed to one leaf.
  struct LeafRun {
    uint64_t leaf;
    uint64_t begin;
    uint64_t end;
  };

  // Flat overflow tracking: overflow_slot_[leaf] indexes into the batch's
  // overflow list, or kNoOverflow. The array persists across batches with
  // the invariant that every entry is kNoOverflow between batches (each
  // batch resets exactly the slots it set).
  static constexpr uint32_t kNoOverflow = UINT32_MAX;

  // Sentinel byte count marking a routed leaf that a remove batch did not
  // actually change (filtered out before the counting phase).
  static constexpr uint64_t kUntouched = UINT64_MAX;

  // Reusable per-worker scratch for leaf merges. The tail-splice fast path
  // re-encodes into the leaf policy's MergeBuf; the materializing fallback
  // builds the merged key list. Merge tasks never fork, so worker-local
  // scratch cannot be re-entered by a stolen task.
  struct MergeScratch {
    std::vector<key_type> merged;
    typename Leaf::MergeBuf tail;
  };

  // Reusable per-worker pack scratch for small-region redistribution.
  struct RegionArena {
    util::uvector<uint64_t> counts;
    kvec buffer;
  };

  // (node_key, bytes) entry of the counting phase's sorted flat cache.
  using CountEntry = std::pair<uint64_t, uint64_t>;

  struct BatchContext {
    // Phase 1 (route): per-chunk run lists flattened into the dense work
    // list, plus per-run outputs written by index (no combining, no sort).
    std::vector<LeafRun> runs;
    std::vector<std::vector<LeafRun>> route_parts;
    util::uvector<TouchedLeaf> touched_dense;
    util::uvector<uint64_t> delta_dense;  // keys added / removed per run
    // Phase 1 (merge): per-worker scratch; overflows are rare and combined
    // once at the phase boundary.
    par::WorkerLocal<MergeScratch> scratch;
    par::WorkerLocal<std::vector<Overflow>> overflows;
    std::vector<Overflow> overflow_list;  // slot-indexed by overflow_slot_
    // Phase 3 arenas: region pack buffers and the counting cache, reused
    // across regions/levels instead of allocated per region.
    par::WorkerLocal<RegionArena> arenas;
    util::uvector<CountEntry> count_cache;    // sorted by node_key
    util::uvector<CountEntry> count_scratch;  // merge swap buffer
    util::uvector<CountEntry> fresh_all;
    // Direct-spread resize arenas (root-violation grows inside the batch).
    ResizeScratch resize;
  };

  // Phase 1 routing: fills ctx.runs with the batch's leaf runs (sorted by
  // leaf, disjoint, covering [0, n)).
  void route_batch(const key_type* batch, uint64_t n, BatchContext& ctx) const;
  // Routing core shared with the batch-query paths: same chunked gallop
  // partition, but with caller-owned output so queries need no BatchContext.
  void route_runs(const key_type* batch, uint64_t n, std::vector<LeafRun>& runs,
                  std::vector<std::vector<LeafRun>>& parts) const;
  void route_chunk(const key_type* batch, uint64_t n, uint64_t lo, uint64_t hi,
                   std::vector<LeafRun>& out) const;
  // End of the batch run routed to leaf l starting at batch index i, and the
  // first candidate leaf for the next run (num_leaves_ if none).
  std::pair<uint64_t, uint64_t> run_end(uint64_t l, const key_type* batch,
                                        uint64_t n, uint64_t i) const;
  // find_leaf restricted to leaves >= from (preconditions: `from` is the
  // first leaf of its equal-head run and head_index_[from] <= key), used by
  // the routing gallop.
  uint64_t find_leaf_from(uint64_t from, key_type key) const {
    // Consecutive runs usually route to consecutive leaves: if the key sits
    // below the next head, it belongs to `from` and no search is needed.
    uint64_t nx = from + 1;
    if (nx >= num_leaves_ || key < head_index_[nx]) return from;
    auto it = std::upper_bound(head_index_.begin() + from, head_index_.end(),
                               key);
    --it;  // safe: head_index_[from] <= key
    auto first = std::lower_bound(head_index_.begin() + from, it, *it);
    return static_cast<uint64_t>(first - head_index_.begin());
  }

  void merge_into_leaf(uint64_t leaf, const key_type* keys, uint64_t k,
                       uint64_t slot, BatchContext& ctx);
  void remove_from_leaf(uint64_t leaf, const key_type* keys, uint64_t k,
                        uint64_t slot, BatchContext& ctx);

  // Binds/releases the overflow slot array for ctx.overflow_list.
  void bind_overflow_slots(BatchContext& ctx);
  void release_overflow_slots(BatchContext& ctx);

  uint64_t leaf_bytes_aware(uint64_t leaf, const BatchContext& ctx) const;

  // Work-efficient counting phase; fills `roots` with the maximal nodes to
  // redistribute. Returns false if the root's bound is violated (caller must
  // resize-rebuild). `touched` is sorted by leaf.
  bool counting_phase(const TouchedLeaf* touched, uint64_t num_touched,
                      BatchContext& ctx, bool is_insert,
                      std::vector<NodeId>* roots);

  // Incremental head-index repair after a batch: only leaves that were
  // merged into or covered by a redistribution region can have changed
  // heads (full-array rebuilds are O(num_leaves), which would dominate
  // small batches).
  void update_index_after_batch(const TouchedLeaf* touched,
                                uint64_t num_touched,
                                const std::vector<NodeId>& roots) {
    ImplicitTree tree(num_leaves_);
    std::vector<std::pair<uint64_t, uint64_t>> intervals;
    intervals.reserve(roots.size() + num_touched);
    for (NodeId r : roots) {
      intervals.emplace_back(tree.region_begin(r), tree.region_end(r));
    }
    for (uint64_t t = 0; t < num_touched; ++t) {
      intervals.emplace_back(touched[t].leaf, touched[t].leaf + 1);
    }
    std::sort(intervals.begin(), intervals.end());
    uint64_t covered = 0;
    for (auto [lo, hi] : intervals) {
      if (hi <= covered) continue;
      update_head_index(std::max(lo, covered), hi);
      covered = hi;
    }
  }

  void redistribute_parallel(const std::vector<NodeId>& roots,
                             BatchContext& ctx);

  // Shared prologue of insert_batch / remove_batch: sort, strip the key-0
  // sentinel, and apply small batches as point updates. done == true means
  // the batch was fully handled and `delta` is the return value.
  struct BatchPrologue {
    const key_type* keys = nullptr;
    uint64_t n = 0;
    uint64_t delta = 0;
    bool done = false;
  };
  template <bool IsInsert>
  BatchPrologue batch_prologue(key_type* input, uint64_t n, bool sorted);

  uint64_t insert_batch_merge(const key_type* batch, uint64_t n);
  uint64_t insert_batch_rebuild(const key_type* batch, uint64_t n);
  uint64_t remove_batch_merge(const key_type* batch, uint64_t n);
  uint64_t remove_batch_rebuild(const key_type* batch, uint64_t n);

  // ---- members ----------------------------------------------------------------

  PmaSettings settings_;
  util::uvector<uint8_t> data_;
  size_t leaf_bytes_ = 0;
  uint64_t num_leaves_ = 0;
  uint64_t count_ = 0;
  bool has_zero_ = false;
  std::vector<key_type> head_index_;
  EytzingerHeadIndex eytz_;  // branchless mirror of head_index_ (see above)
  util::uvector<uint32_t> overflow_slot_;  // all kNoOverflow between batches
  BatchPhaseTimes phase_times_;
};

}  // namespace cpma::pma

#include "pma/pma_impl.hpp"  // IWYU pragma: keep
