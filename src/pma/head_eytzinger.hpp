// Branchless Eytzinger-layout mirror of the engine's flat head index.
//
// The flat `head_index_` (one key per leaf; empty leaves inherit their
// predecessor's head) stays the source of truth — route_batch's gallop, the
// map_range early-exit checks, and every repair path keep reading it. This
// structure is a read-kernel MIRROR of it, rebuilt/patched at exactly the
// points that touch the flat index, and answers `find_leaf` with one
// cache-friendly descent instead of the flat path's two binary searches:
//
//  * BFS (Eytzinger) layout: the descent touches one node per level, and
//    every node's near descendants share a cache line, so a software
//    prefetch three levels ahead hides most of the misses a binary search
//    over a large flat array pays serially.
//  * Branchless: each step is `k = 2k + (keys_[k] <= key)` — no compare
//    jump for the predictor to miss on random query keys.
//  * Equal-head-run disambiguation folded into the layout: the flat search
//    needs a SECOND binary search (`lower_bound` over the prefix) to map
//    the located entry to the first leaf of its run of equal entries (runs
//    arise from empty-leaf inheritance). Here every BFS slot stores
//    `leaf_of_` — the run-first leaf — precomputed at build/repair time, so
//    the descent's answer is one array load.
//
// Maintenance contract (enforced by PackedMemoryArray::check_invariants):
//  * build(head) whenever the leaf count changes (rebuild_head_index);
//  * repair(head, lo, hi) after update_head_index writes entries [lo, hi)
//    — `hi` must cover the trailing empty-leaf propagation too. repair
//    recomputes run_first over [lo, hi) only; that is sufficient because a
//    nonempty leaf is always its own run-first (heads are distinct stored
//    keys; equal entries only ever come from empty-leaf inheritance), and
//    update_head_index's walk always ends at the array end or at a
//    nonempty leaf, whose run_first is unchanged.
//
// Queries are wait-free const reads; all mutation happens on the engine's
// single-writer paths, exactly like the flat index.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

namespace cpma::pma {

class EytzingerHeadIndex {
 public:
  using key_type = uint64_t;

  bool built() const { return n_ != 0; }
  uint64_t size() const { return n_; }

  // (Re)builds the mirror from the flat head index.
  void build(const std::vector<key_type>& head) {
    n_ = head.size();
    keys_.resize(n_ + 1);
    leaf_of_.resize(n_ + 1);
    pos_of_.resize(n_);
    run_first_.resize(n_);
    keys_[0] = 0;
    leaf_of_[0] = 0;
    for (uint64_t l = 0; l < n_; ++l) {
      run_first_[l] = (l > 0 && head[l] == head[l - 1])
                          ? run_first_[l - 1]
                          : static_cast<uint32_t>(l);
    }
    uint64_t next = 0;
    fill(head, 1, next);
  }

  // Patches the mirror after the flat index rewrote entries [lo, hi).
  void repair(const std::vector<key_type>& head, uint64_t lo, uint64_t hi) {
    for (uint64_t l = lo; l < hi; ++l) {
      run_first_[l] = (l > 0 && head[l] == head[l - 1])
                          ? run_first_[l - 1]
                          : static_cast<uint32_t>(l);
      const uint32_t p = pos_of_[l];
      keys_[p] = head[l];
      leaf_of_[p] = run_first_[l];
    }
  }

  // First leaf of the equal-head run owning `key` — same contract as the
  // flat find_leaf: the run ending at the last head-index entry <= key,
  // or leaf 0 when every entry exceeds key.
  uint64_t find_leaf(key_type key) const {
    const key_type* keys = keys_.data();
    uint64_t k = 1;
    while (k <= n_) {
      // Descendants three levels down share (about) one cache line of
      // 8-byte keys; fetching them now hides the miss the level-log(n)
      // loads would otherwise pay back to back.
      __builtin_prefetch(keys + (k << 3));
      k = 2 * k + (keys[k] <= key);
    }
    // The answer is the node where the descent last went right (the last
    // entry <= key): strip the trailing left-moves, then step to the node
    // the final right-move was taken FROM. k == 0 afterwards means no
    // right-move ever happened — every entry exceeds key — which the flat
    // search also answers with leaf 0.
    k >>= (std::countr_zero(k) + 1);
    if (k == 0) return 0;
    return leaf_of_[k];
  }

  // Introspection for check_invariants: the mirror entry for flat slot l.
  key_type key_at(uint64_t l) const { return keys_[pos_of_[l]]; }
  uint64_t run_first_at(uint64_t l) const { return leaf_of_[pos_of_[l]]; }

 private:
  // In-order walk: BFS slot k receives the next flat entry, so the BFS
  // array is a permutation of the sorted flat array.
  void fill(const std::vector<key_type>& head, uint64_t k, uint64_t& next) {
    if (k > n_) return;
    fill(head, 2 * k, next);
    keys_[k] = head[next];
    leaf_of_[k] = run_first_[next];
    pos_of_[next] = static_cast<uint32_t>(k);
    ++next;
    fill(head, 2 * k + 1, next);
  }

  uint64_t n_ = 0;
  std::vector<key_type> keys_;      // BFS-order heads; slot 0 unused
  std::vector<uint32_t> leaf_of_;   // BFS slot -> run-first flat leaf
  std::vector<uint32_t> pos_of_;    // flat leaf -> BFS slot
  std::vector<uint32_t> run_first_; // flat leaf -> first leaf of its run
};

}  // namespace cpma::pma
