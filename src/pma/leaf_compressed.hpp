// Compressed leaf policy (the C in CPMA), parameterized by codec.
//
// Layout per Section 5 of the paper: the first sizeof(key) bytes hold the
// HEAD, uncompressed (0 = empty leaf); the body holds delta-encoded codes
// for the remaining keys. Because this is a set, every delta is >= 1, and
// the codec contract (codec/delta_stream.hpp) guarantees such encodings
// contain no 0x00 byte — the zero-filled tail therefore doubles as the
// end-of-stream marker and the leaf needs no explicit length (the structure
// stays pointer- and metadata-free).
//
// Every scan and query routes through the ONE streaming decode kernel,
// codec::DeltaStream: this file contains no decode loop of its own, only
// the head bookkeeping and the byte-splicing of the two mutation paths.
// All mutations are single passes over the leaf, which is what preserves
// the PMA's asymptotic bounds (leaves are O(log n) bytes).
//
// To drop in another encoding, implement the codec concept documented in
// codec/delta_stream.hpp and instantiate CompressedLeaf<YourCodec>; the
// engine (pma/pma.hpp) is already generic over the leaf policy.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

#include "codec/delta_stream.hpp"
#include "util/uninitialized.hpp"

namespace cpma::pma {

// HeadBytes is the content-coordinate cost of a leaf's first key: the 8-byte
// uncompressed head plus any per-leaf header bytes between the head and the
// first delta code (the adaptive leaf reserves one for its format tag; this
// policy leaves the extra bytes untouched, so a wrapper may claim them).
template <typename Codec = codec::ByteVarintCodec, size_t HeadBytes = 8>
struct CompressedLeaf {
  using key_type = uint64_t;
  using codec_type = Codec;
  using Stream = codec::DeltaStream<Codec>;
  static constexpr const char* name = "cpma";
  static constexpr bool compressed = true;
  static constexpr size_t kHeadBytes = HeadBytes;
  static_assert(HeadBytes >= 8, "head stores an uncompressed 8-byte key");
  static constexpr size_t kBlockKeys = Stream::kBlockKeys;
  // Worst-case byte growth of one insert(): a delta split into two maximal
  // codes (2*kMaxBytes - 1) dominates head displacement (8 + kMaxBytes).
  static constexpr size_t kMaxInsertGrowth = 2 * Codec::kMaxBytes - 1;

  static uint64_t head(const uint8_t* leaf) {
    uint64_t h;
    std::memcpy(&h, leaf, 8);
    return h;
  }
  static void set_head(uint8_t* leaf, uint64_t h) { std::memcpy(leaf, &h, 8); }

  // Decode kernel positioned at the first delta (caller checks head != 0).
  static Stream stream(const uint8_t* leaf, size_t cap) {
    return Stream(leaf + kHeadBytes, cap - kHeadBytes, head(leaf));
  }

  // Encoded bytes one delta contributes (spread's cost model).
  static constexpr size_t delta_bytes(key_type prev, key_type key) {
    return Codec::size(key - prev);
  }

  // One past the last used byte (head included); 0 for an empty leaf. The
  // only end-of-stream rescan left in the leaf: queries stop at the
  // terminator inline, so only mutations (which memmove the tail) call it.
  // Zero-free codecs memchr for the terminator; codecs whose payload bytes
  // may be 0x00 hop code to code instead (terminators are only meaningful
  // at code boundaries).
  static size_t used_bytes(const uint8_t* leaf, size_t cap) {
    if (head(leaf) == 0) return 0;
    if constexpr (codec::kCodecZeroFree<Codec>) {
      const void* z = std::memchr(leaf + kHeadBytes, 0, cap - kHeadBytes);
      return z == nullptr
                 ? cap
                 : static_cast<size_t>(static_cast<const uint8_t*>(z) - leaf);
    } else {
      size_t pos = kHeadBytes;
      while (pos < cap && leaf[pos] != 0) pos += Codec::skip(leaf + pos);
      return pos;
    }
  }

  static uint64_t element_count(const uint8_t* leaf, size_t cap) {
    if (head(leaf) == 0) return 0;
    return 1 + stream(leaf, cap).count_remaining();
  }

  static bool contains(const uint8_t* leaf, size_t cap, uint64_t key) {
    uint64_t h = head(leaf);
    if (h == 0 || key < h) return false;
    if (key == h) return true;
    Stream s = stream(leaf, cap);
    while (s.next()) {
      if (s.value() >= key) return s.value() == key;
    }
    return false;
  }

  static std::optional<uint64_t> lower_bound(const uint8_t* leaf, size_t cap,
                                             uint64_t key) {
    uint64_t h = head(leaf);
    if (h == 0) return std::nullopt;
    if (h >= key) return h;
    Stream s = stream(leaf, cap);
    while (s.next()) {
      if (s.value() >= key) return s.value();
    }
    return std::nullopt;
  }

  // Inserts `key` with a single pass; returns false if present.
  // Precondition (engine slack invariant): up to 19 extra bytes fit.
  static bool insert(uint8_t* leaf, size_t cap, uint64_t key) {
    uint64_t h = head(leaf);
    if (h == 0) {
      set_head(leaf, key);
      return true;
    }
    if (key == h) return false;
    if (key < h) {
      // New minimum: key becomes the head, the old head becomes the first
      // delta.
      uint8_t tmp[Codec::kMaxBytes];
      size_t len = Codec::encode(h - key, tmp);
      size_t end = used_bytes(leaf, cap);
      assert(end + len <= cap);
      std::memmove(leaf + kHeadBytes + len, leaf + kHeadBytes,
                   end - kHeadBytes);
      std::memcpy(leaf + kHeadBytes, tmp, len);
      set_head(leaf, key);
      return true;
    }
    Stream s = stream(leaf, cap);
    uint64_t prev = h;
    while (true) {
      size_t dpos = s.pos();
      if (!s.next()) {
        // Largest key in the leaf: append.
        uint8_t tmp[Codec::kMaxBytes];
        size_t len = Codec::encode(key - prev, tmp);
        assert(kHeadBytes + dpos + len <= cap);
        std::memcpy(leaf + kHeadBytes + dpos, tmp, len);
        return true;
      }
      uint64_t cur = s.value();
      if (cur == key) return false;
      if (cur > key) {
        // Split delta(cur - prev) into delta(key - prev) + delta(cur - key).
        size_t old_len = s.pos() - dpos;
        size_t pos = kHeadBytes + dpos;
        uint8_t tmp[2 * Codec::kMaxBytes];
        size_t l1 = Codec::encode(key - prev, tmp);
        size_t l2 = Codec::encode(cur - key, tmp + l1);
        size_t new_len = l1 + l2;
        size_t end = used_bytes(leaf, cap);
        assert(new_len >= old_len);
        assert(end + (new_len - old_len) <= cap);
        std::memmove(leaf + pos + new_len, leaf + pos + old_len,
                     end - (pos + old_len));
        std::memcpy(leaf + pos, tmp, new_len);
        return true;
      }
      prev = cur;
    }
  }

  static bool remove(uint8_t* leaf, size_t cap, uint64_t key) {
    uint64_t h = head(leaf);
    if (h == 0 || key < h) return false;
    if (key == h) {
      Stream s = stream(leaf, cap);
      if (!s.next()) {  // only element
        std::memset(leaf, 0, kHeadBytes);
        return true;
      }
      size_t len = s.pos();  // bytes of the first delta
      set_head(leaf, s.value());
      size_t end = used_bytes(leaf, cap);
      std::memmove(leaf + kHeadBytes, leaf + kHeadBytes + len,
                   end - kHeadBytes - len);
      std::memset(leaf + end - len, 0, len);
      return true;
    }
    Stream s = stream(leaf, cap);
    uint64_t prev = h;
    while (true) {
      size_t dpos = s.pos();
      if (!s.next()) return false;
      uint64_t cur = s.value();
      if (cur > key) return false;
      if (cur == key) {
        size_t l1 = s.pos() - dpos;
        size_t pos = kHeadBytes + dpos;
        size_t npos = s.pos();
        if (!s.next()) {  // last element: drop its delta
          std::memset(leaf + pos, 0, l1);
          return true;
        }
        // Merge delta(key - prev) + delta(next - key) into delta(next - prev).
        size_t l2 = s.pos() - npos;
        uint8_t tmp[Codec::kMaxBytes];
        size_t lm = Codec::encode(s.value() - prev, tmp);
        assert(lm <= l1 + l2);
        size_t end = used_bytes(leaf, cap);
        std::memcpy(leaf + pos, tmp, lm);
        std::memmove(leaf + pos + lm, leaf + pos + l1 + l2,
                     end - (pos + l1 + l2));
        std::memset(leaf + end - (l1 + l2 - lm), 0, l1 + l2 - lm);
        return true;
      }
      prev = cur;
    }
  }

  // Reusable scratch for merge_tail (the engine keeps one per worker).
  struct MergeBuf {
    util::uvector<uint8_t> bytes;
  };

  // Merges the sorted batch slice keys[0..k) into the leaf by rewriting only
  // the byte suffix from the first splice point: the prefix below keys[0] is
  // left untouched, the tail is re-encoded into `buf` in one streaming merge
  // pass, and spliced back iff the result fits in max_bytes. Returns false
  // (leaf unmodified) when the caller must take the materializing path
  // instead: empty leaf, a batch key below the head, or overflow. On success
  // *need_out is the merged byte count and *added_out the newly added keys.
  static bool merge_tail(uint8_t* leaf, size_t cap, const uint64_t* keys,
                         size_t k, size_t max_bytes, MergeBuf& buf,
                         size_t* need_out, uint64_t* added_out) {
    uint64_t h = head(leaf);
    if (h == 0 || keys[0] < h) return false;
    // Scan to the splice point: prev = last existing key < keys[0], splice =
    // body offset of the first delta to be rewritten.
    Stream s = stream(leaf, cap);
    uint64_t prev = h;
    size_t splice;
    uint64_t e = 0;
    bool have;
    while (true) {
      size_t dpos = s.pos();
      if (!s.next()) {
        splice = dpos;
        have = false;
        break;
      }
      if (s.value() >= keys[0]) {
        splice = dpos;
        e = s.value();
        have = true;
        break;
      }
      prev = s.value();
    }
    // Re-encode the merged tail into scratch. Upper bound: every remaining
    // leaf byte plus a maximal code per batch key.
    auto& out = buf.bytes;
    out.resize((cap - kHeadBytes - splice) + k * Codec::kMaxBytes);
    uint8_t* op = out.data();
    size_t olen = 0;
    uint64_t last = prev;
    auto emit = [&](uint64_t v) {
      olen += Codec::encode(v - last, op + olen);
      last = v;
    };
    uint64_t ebuf[kBlockKeys];
    size_t en = 0, ei = 0;
    auto take_existing = [&]() -> bool {
      if (ei < en) {
        e = ebuf[ei++];
        return true;
      }
      en = s.next_block(ebuf, kBlockKeys);
      ei = 0;
      if (en == 0) return false;
      e = ebuf[ei++];
      return true;
    };
    uint64_t added = 0;
    size_t i = 0;
    while (have && i < k) {
      uint64_t b = keys[i];
      if (e <= b) {
        emit(e);
        if (e == b) ++i;
        have = take_existing();
      } else {
        if (b != last) {
          emit(b);
          ++added;
        }
        ++i;
      }
    }
    while (have) {
      emit(e);
      have = take_existing();
    }
    for (; i < k; ++i) {
      if (keys[i] != last) {
        emit(keys[i]);
        ++added;
      }
    }
    const size_t need = kHeadBytes + splice + olen;
    if (need > max_bytes) return false;
    std::memcpy(leaf + kHeadBytes + splice, op, olen);
    // The stream is drained, so its position is the old terminator offset.
    const size_t old_used = kHeadBytes + s.pos();
    if (old_used > need) std::memset(leaf + need, 0, old_used - need);
    *need_out = need;
    *added_out = added;
    return true;
  }

  // Subtracts the sorted batch slice keys[0..k) from the leaf by rewriting
  // only the byte suffix from the first removable key (mirror of merge_tail):
  // the prefix below the first matching key is left untouched and the tail is
  // re-encoded into `buf` in one streaming pass. A re-encoded subset never
  // grows (merged deltas encode no larger than the deltas they replace), so
  // there is no overflow refusal — the only refusal (false, leaf unmodified)
  // is an empty leaf. On success *removed_out is the number of keys dropped;
  // when it is 0 the leaf was not modified and *need_out is unspecified.
  static bool remove_tail(uint8_t* leaf, size_t cap, const uint64_t* keys,
                          size_t k, MergeBuf& buf, size_t* need_out,
                          uint64_t* removed_out) {
    uint64_t h = head(leaf);
    if (h == 0) return false;
    // Batch keys below the head are absent by definition.
    size_t j = static_cast<size_t>(
        std::lower_bound(keys, keys + k, h) - keys);
    if (j == k) {
      *removed_out = 0;
      return true;
    }
    // Scan to the splice point: the first existing key >= keys[j]. If the
    // head itself matches, the splice starts at the head and the first
    // surviving key is promoted into it.
    Stream s = stream(leaf, cap);
    uint64_t prev = h;
    size_t splice = 0;
    bool at_head = (keys[j] == h);
    bool have = at_head;
    uint64_t e = h;
    if (!at_head) {
      while (true) {
        size_t dpos = s.pos();
        if (!s.next()) {
          have = false;
          break;
        }
        if (s.value() >= keys[j]) {
          splice = dpos;
          e = s.value();
          have = true;
          break;
        }
        prev = s.value();
      }
      if (!have) {  // every existing key < keys[j]: nothing to remove
        *removed_out = 0;
        return true;
      }
    }
    auto& out = buf.bytes;
    out.resize(cap);  // survivors re-encode no larger than the leaf
    uint8_t* op = out.data();
    size_t olen = 0;
    uint64_t last = prev;
    uint64_t new_head = 0;  // first survivor when splicing at the head
    bool head_open = at_head;
    auto emit = [&](uint64_t v) {
      if (head_open) {
        new_head = v;
        head_open = false;
      } else {
        olen += Codec::encode(v - last, op + olen);
      }
      last = v;
    };
    uint64_t ebuf[kBlockKeys];
    size_t en = 0, ei = 0;
    auto take_existing = [&]() -> bool {
      if (ei < en) {
        e = ebuf[ei++];
        return true;
      }
      en = s.next_block(ebuf, kBlockKeys);
      ei = 0;
      if (en == 0) return false;
      e = ebuf[ei++];
      return true;
    };
    uint64_t removed = 0;
    while (have) {
      while (j < k && keys[j] < e) ++j;
      if (j < k && keys[j] == e) {
        ++removed;
      } else {
        emit(e);
      }
      have = take_existing();
    }
    if (removed == 0) {  // scratch pass found nothing to drop
      *removed_out = 0;
      return true;
    }
    // The stream is drained, so its position is the old terminator offset.
    const size_t old_used = kHeadBytes + s.pos();
    size_t need;
    if (at_head) {
      if (head_open) {
        need = 0;  // every key removed
      } else {
        set_head(leaf, new_head);
        std::memcpy(leaf + kHeadBytes, op, olen);
        need = kHeadBytes + olen;
      }
    } else {
      std::memcpy(leaf + kHeadBytes + splice, op, olen);
      need = kHeadBytes + splice + olen;
    }
    if (old_used > need) std::memset(leaf + need, 0, old_used - need);
    *need_out = need;
    *removed_out = removed;
    return true;
  }

  // ---- direct-spread resize primitives ------------------------------------
  // A leaf's CONTENT is addressed in bytes: offsets [0, kHeadBytes) are the
  // head, and each later key's code starts where the previous one ended. A
  // resize re-spreads content by copying code ranges verbatim — a mid-leaf
  // run's delta chain stays valid wherever it lands, because the key
  // preceding the run becomes the destination leaf's head — re-encoding only
  // at source-leaf joins and at the keys promoted into destination heads.

  // Split point for the direct spread: the first key whose content offset is
  // >= some target. `off` is that key's code start (0 for the head), `next`
  // is one past its code (where a copy continuing after the key begins),
  // and `key` its decoded value.
  struct SpreadPoint {
    size_t off = 0;
    size_t next = 0;
    uint64_t key = 0;
  };

  // One-pass split emitter: streams the leaf forward once, visiting every
  // destination boundary target that lands inside it (ascending), then
  // drains to the last key — the resize's only decoding pass. Boundary
  // targets are absolute content-coordinate bytes; `base` is the leaf's
  // coordinate start and `limit` its end. emit(j, point, sliver) fires once
  // per boundary j; sliver means the target fell past the last key's code
  // start (the engine resolves it to the next nonempty leaf's head).
  class SpreadSeeker {
   public:
    SpreadSeeker(const uint8_t* leaf, size_t cap)
        : head_(head(leaf)), s_(stream(leaf, cap)) {}

    template <typename Emit>
    uint64_t split_targets(uint64_t base, uint64_t budget, uint64_t j,
                           uint64_t limit, Emit&& emit) {
      for (; j * budget < limit; ++j) {
        size_t target = static_cast<size_t>(j * budget - base);
        if (target == 0) {
          emit(j, SpreadPoint{0, kHeadBytes, head_}, false);
          continue;
        }
        s_.seek(target <= kHeadBytes ? 0 : target - kHeadBytes);
        size_t off = kHeadBytes + s_.pos();
        if (!s_.next()) {
          emit(j, SpreadPoint{}, true);
          continue;
        }
        emit(j, SpreadPoint{off, kHeadBytes + s_.pos(), s_.value()}, false);
      }
      s_.drain();
      return s_.value();  // the leaf's last key
    }

   private:
    uint64_t head_;
    Stream s_;
  };

  // Streaming writer that assembles one destination leaf out of source
  // content ranges. The engine maintains `last` (the last key written) from
  // its per-source-leaf stats between calls; append_keys tracks it itself.
  struct SpreadWriter {
    uint8_t* dst = nullptr;
    size_t cap = 0;
    size_t pos = 0;
    uint64_t last = 0;
  };

  static void spread_begin(SpreadWriter& w, uint8_t* dst, size_t cap,
                           uint64_t first_key) {
    w.dst = dst;
    w.cap = cap;
    set_head(dst, first_key);
    w.pos = kHeadBytes;
    w.last = first_key;
  }

  // Copies source content bytes [from, to) verbatim; the key preceding
  // offset `from` must already be in the destination (== w.last).
  static void spread_copy_tail(SpreadWriter& w, const uint8_t* src,
                               size_t from, size_t to) {
    assert(from >= kHeadBytes && to >= from);
    assert(w.pos + (to - from) <= w.cap);
    std::memcpy(w.dst + w.pos, src + from, to - from);
    w.pos += to - from;
  }

  // Splices the start of another source leaf: its head re-encodes as a delta
  // from w.last, then its content bytes [kHeadBytes, to) copy verbatim.
  static void spread_join(SpreadWriter& w, const uint8_t* src,
                          uint64_t src_head, size_t to) {
    assert(w.pos + Codec::kMaxBytes <= w.cap);
    w.pos += Codec::encode(src_head - w.last, w.dst + w.pos);
    w.last = src_head;
    spread_copy_tail(w, src, kHeadBytes, to);
  }

  // Appends keys[0..n) (all > w.last) by encoding; used for content that
  // only exists as flat keys (a batch's overflowed leaves).
  static void spread_append_keys(SpreadWriter& w, const uint64_t* keys,
                                 size_t n) {
    for (size_t i = 0; i < n; ++i) {
      assert(w.pos + Codec::kMaxBytes <= w.cap);
      w.pos += Codec::encode(keys[i] - w.last, w.dst + w.pos);
      w.last = keys[i];
    }
  }

  // Zero-fills the tail; returns the destination's used bytes.
  static size_t spread_finish(SpreadWriter& w) {
    assert(w.pos <= w.cap);
    std::memset(w.dst + w.pos, 0, w.cap - w.pos);
    return w.pos;
  }

  static void decode_append(const uint8_t* leaf, size_t cap,
                            std::vector<uint64_t>& out) {
    uint64_t h = head(leaf);
    if (h == 0) return;
    out.push_back(h);
    Stream s = stream(leaf, cap);
    uint64_t buf[kBlockKeys];
    while (size_t k = s.next_block(buf, kBlockKeys)) {
      out.insert(out.end(), buf, buf + k);
    }
  }

  // Bulk decode into a caller-sized buffer (must hold element_count keys);
  // returns the number of keys written. The engine's pack/redistribute
  // paths use this to fill their prefix-summed slices without a per-key
  // callback.
  static size_t decode_to(const uint8_t* leaf, size_t cap, uint64_t* out) {
    uint64_t h = head(leaf);
    if (h == 0) return 0;
    out[0] = h;
    size_t n = 1;
    Stream s = stream(leaf, cap);
    // cap bounds the element count, so blocks can be maximal.
    while (size_t k = s.next_block(out + n, cap)) n += k;
    return n;
  }

  static size_t encoded_size(const uint64_t* keys, size_t n) {
    if (n == 0) return 0;
    size_t total = kHeadBytes;
    for (size_t i = 1; i < n; ++i) {
      total += Codec::size(keys[i] - keys[i - 1]);
    }
    return total;
  }

  static void write(uint8_t* leaf, size_t cap, const uint64_t* keys,
                    size_t n) {
    if (n == 0) {
      std::memset(leaf, 0, cap);
      return;
    }
    set_head(leaf, keys[0]);
    size_t pos = kHeadBytes;
    for (size_t i = 1; i < n; ++i) {
      assert(pos + Codec::kMaxBytes <= cap ||
             pos + Codec::size(keys[i] - keys[i - 1]) <= cap);
      pos += Codec::encode(keys[i] - keys[i - 1], leaf + pos);
    }
    assert(pos <= cap);
    std::memset(leaf + pos, 0, cap - pos);
  }

  static uint64_t sum_leaf(const uint8_t* leaf, size_t cap) {
    uint64_t h = head(leaf);
    if (h == 0) return 0;
    uint64_t sum = h;
    Stream s = stream(leaf, cap);
    uint64_t buf[kBlockKeys];
    while (size_t k = s.next_block(buf, kBlockKeys)) {
      for (size_t i = 0; i < k; ++i) sum += buf[i];
    }
    return sum;
  }

  static uint64_t last(const uint8_t* leaf, size_t cap) {
    uint64_t h = head(leaf);
    if (h == 0) return 0;
    Stream s = stream(leaf, cap);
    uint64_t buf[kBlockKeys];
    while (s.next_block(buf, kBlockKeys) != 0) {
    }
    return s.value();  // base (the head) if the body was empty
  }

  template <typename F>
  static bool map(const uint8_t* leaf, size_t cap, F&& f) {
    uint64_t h = head(leaf);
    if (h == 0) return true;
    if (!f(h)) return false;
    Stream s = stream(leaf, cap);
    uint64_t buf[kBlockKeys];
    while (size_t k = s.next_block(buf, kBlockKeys)) {
      for (size_t i = 0; i < k; ++i) {
        if (!f(buf[i])) return false;
      }
    }
    return true;
  }

  struct Cursor {
    size_t pos = 0;  // byte offset of the NEXT delta (absolute in the leaf)
    uint64_t value = 0;
  };

  static bool cursor_begin(const uint8_t* leaf, size_t /*cap*/, Cursor& cur) {
    uint64_t h = head(leaf);
    if (h == 0) return false;
    cur.value = h;
    cur.pos = kHeadBytes;
    return true;
  }

  static bool cursor_next(const uint8_t* leaf, size_t cap, Cursor& cur) {
    Stream s(leaf + kHeadBytes, cap - kHeadBytes, cur.value,
             cur.pos - kHeadBytes);
    if (!s.next()) return false;
    cur.pos = kHeadBytes + s.pos();
    cur.value = s.value();
    return true;
  }

  // Block-streaming decode for the engine's merge paths: emits the head on
  // the first call, then whole blocks from the kernel. Returns 0 at end.
  struct BlockCursor {
    size_t pos = 0;
    uint64_t value = 0;
    bool started = false;
  };

  static size_t block_next(const uint8_t* leaf, size_t cap, BlockCursor& bc,
                           uint64_t* out, size_t max) {
    size_t n = 0;
    if (!bc.started) {
      uint64_t h = head(leaf);
      if (h == 0) return 0;
      bc.started = true;
      bc.value = h;
      bc.pos = kHeadBytes;
      out[n++] = h;
    }
    Stream s(leaf + kHeadBytes, cap - kHeadBytes, bc.value,
             bc.pos - kHeadBytes);
    n += s.next_block(out + n, max - n);
    bc.pos = kHeadBytes + s.pos();
    bc.value = s.value();
    return n;
  }
};

}  // namespace cpma::pma
