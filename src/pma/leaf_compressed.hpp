// Compressed leaf policy (the C in CPMA).
//
// Layout per Section 5 of the paper: the first sizeof(key) bytes hold the
// HEAD, uncompressed (0 = empty leaf); the body holds delta-encoded byte
// codes for the remaining keys. Because this is a set, every delta is >= 1,
// so no encoded value contains a 0x00 byte — the zero-filled tail therefore
// doubles as the end-of-stream marker and the leaf needs no explicit length
// (the structure stays pointer- and metadata-free).
//
// All mutations are single passes over the leaf, which is what preserves the
// PMA's asymptotic bounds (leaves are O(log n) bytes).
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

#include "codec/varint.hpp"

namespace cpma::pma {

struct CompressedLeaf {
  using key_type = uint64_t;
  static constexpr const char* name = "cpma";
  static constexpr bool compressed = true;
  static constexpr size_t kHeadBytes = 8;

  static uint64_t head(const uint8_t* leaf) {
    uint64_t h;
    std::memcpy(&h, leaf, 8);
    return h;
  }
  static void set_head(uint8_t* leaf, uint64_t h) { std::memcpy(leaf, &h, 8); }

  // One past the last used byte (head included); 0 for an empty leaf.
  static size_t used_bytes(const uint8_t* leaf, size_t cap) {
    if (head(leaf) == 0) return 0;
    const void* z = std::memchr(leaf + kHeadBytes, 0, cap - kHeadBytes);
    return z == nullptr ? cap
                        : static_cast<size_t>(static_cast<const uint8_t*>(z) -
                                              leaf);
  }

  static uint64_t element_count(const uint8_t* leaf, size_t cap) {
    if (head(leaf) == 0) return 0;
    size_t end = used_bytes(leaf, cap);
    uint64_t n = 1;
    size_t pos = kHeadBytes;
    while (pos < end) {
      pos += codec::varint_skip(leaf + pos);
      ++n;
    }
    return n;
  }

  static bool contains(const uint8_t* leaf, size_t cap, uint64_t key) {
    uint64_t h = head(leaf);
    if (h == 0 || key < h) return false;
    if (key == h) return true;
    size_t end = used_bytes(leaf, cap);
    uint64_t cur = h;
    size_t pos = kHeadBytes;
    while (pos < end) {
      uint64_t delta;
      pos += codec::varint_decode(leaf + pos, &delta);
      cur += delta;
      if (cur == key) return true;
      if (cur > key) return false;
    }
    return false;
  }

  static std::optional<uint64_t> lower_bound(const uint8_t* leaf, size_t cap,
                                             uint64_t key) {
    uint64_t h = head(leaf);
    if (h == 0) return std::nullopt;
    if (h >= key) return h;
    size_t end = used_bytes(leaf, cap);
    uint64_t cur = h;
    size_t pos = kHeadBytes;
    while (pos < end) {
      uint64_t delta;
      pos += codec::varint_decode(leaf + pos, &delta);
      cur += delta;
      if (cur >= key) return cur;
    }
    return std::nullopt;
  }

  // Inserts `key` with a single pass; returns false if present.
  // Precondition (engine slack invariant): up to 19 extra bytes fit.
  static bool insert(uint8_t* leaf, size_t cap, uint64_t key) {
    uint64_t h = head(leaf);
    if (h == 0) {
      set_head(leaf, key);
      return true;
    }
    if (key == h) return false;
    size_t end = used_bytes(leaf, cap);
    if (key < h) {
      // New minimum: key becomes the head, the old head becomes the first
      // delta.
      uint8_t tmp[codec::kMaxVarintBytes];
      size_t len = codec::varint_encode(h - key, tmp);
      assert(end + len <= cap);
      std::memmove(leaf + kHeadBytes + len, leaf + kHeadBytes,
                   end - kHeadBytes);
      std::memcpy(leaf + kHeadBytes, tmp, len);
      set_head(leaf, key);
      return true;
    }
    uint64_t prev = h;
    size_t pos = kHeadBytes;
    while (pos < end) {
      uint64_t delta;
      size_t old_len = codec::varint_decode(leaf + pos, &delta);
      uint64_t cur = prev + delta;
      if (cur == key) return false;
      if (cur > key) {
        // Split delta(cur - prev) into delta(key - prev) + delta(cur - key).
        uint8_t tmp[2 * codec::kMaxVarintBytes];
        size_t l1 = codec::varint_encode(key - prev, tmp);
        size_t l2 = codec::varint_encode(cur - key, tmp + l1);
        size_t new_len = l1 + l2;
        assert(new_len >= old_len);
        assert(end + (new_len - old_len) <= cap);
        std::memmove(leaf + pos + new_len, leaf + pos + old_len,
                     end - (pos + old_len));
        std::memcpy(leaf + pos, tmp, new_len);
        return true;
      }
      prev = cur;
      pos += old_len;
    }
    // Largest key in the leaf: append.
    uint8_t tmp[codec::kMaxVarintBytes];
    size_t len = codec::varint_encode(key - prev, tmp);
    assert(pos + len <= cap);
    std::memcpy(leaf + pos, tmp, len);
    return true;
  }

  static bool remove(uint8_t* leaf, size_t cap, uint64_t key) {
    uint64_t h = head(leaf);
    if (h == 0 || key < h) return false;
    size_t end = used_bytes(leaf, cap);
    if (key == h) {
      if (end <= kHeadBytes) {  // only element
        std::memset(leaf, 0, kHeadBytes);
        return true;
      }
      uint64_t delta;
      size_t len = codec::varint_decode(leaf + kHeadBytes, &delta);
      set_head(leaf, h + delta);
      std::memmove(leaf + kHeadBytes, leaf + kHeadBytes + len,
                   end - kHeadBytes - len);
      std::memset(leaf + end - len, 0, len);
      return true;
    }
    uint64_t prev = h;
    size_t pos = kHeadBytes;
    while (pos < end) {
      uint64_t delta;
      size_t l1 = codec::varint_decode(leaf + pos, &delta);
      uint64_t cur = prev + delta;
      if (cur > key) return false;
      if (cur == key) {
        if (pos + l1 >= end) {  // last element: drop its delta
          std::memset(leaf + pos, 0, l1);
          return true;
        }
        uint64_t next_delta;
        size_t l2 = codec::varint_decode(leaf + pos + l1, &next_delta);
        uint8_t tmp[codec::kMaxVarintBytes];
        size_t lm = codec::varint_encode(delta + next_delta, tmp);
        assert(lm <= l1 + l2);
        std::memcpy(leaf + pos, tmp, lm);
        std::memmove(leaf + pos + lm, leaf + pos + l1 + l2,
                     end - (pos + l1 + l2));
        std::memset(leaf + end - (l1 + l2 - lm), 0, l1 + l2 - lm);
        return true;
      }
      prev = cur;
      pos += l1;
    }
    return false;
  }

  static void decode_append(const uint8_t* leaf, size_t cap,
                            std::vector<uint64_t>& out) {
    uint64_t h = head(leaf);
    if (h == 0) return;
    out.push_back(h);
    size_t end = used_bytes(leaf, cap);
    uint64_t cur = h;
    size_t pos = kHeadBytes;
    while (pos < end) {
      uint64_t delta;
      pos += codec::varint_decode(leaf + pos, &delta);
      cur += delta;
      out.push_back(cur);
    }
  }

  static size_t encoded_size(const uint64_t* keys, size_t n) {
    if (n == 0) return 0;
    size_t total = kHeadBytes;
    for (size_t i = 1; i < n; ++i) {
      total += codec::varint_size(keys[i] - keys[i - 1]);
    }
    return total;
  }

  static void write(uint8_t* leaf, size_t cap, const uint64_t* keys,
                    size_t n) {
    if (n == 0) {
      std::memset(leaf, 0, cap);
      return;
    }
    set_head(leaf, keys[0]);
    size_t pos = kHeadBytes;
    for (size_t i = 1; i < n; ++i) {
      assert(pos + codec::kMaxVarintBytes <= cap ||
             pos + codec::varint_size(keys[i] - keys[i - 1]) <= cap);
      pos += codec::varint_encode(keys[i] - keys[i - 1], leaf + pos);
    }
    assert(pos <= cap);
    std::memset(leaf + pos, 0, cap - pos);
  }

  static uint64_t sum_leaf(const uint8_t* leaf, size_t cap) {
    uint64_t h = head(leaf);
    if (h == 0) return 0;
    size_t end = used_bytes(leaf, cap);
    uint64_t cur = h, s = h;
    size_t pos = kHeadBytes;
    while (pos < end) {
      uint64_t delta;
      pos += codec::varint_decode(leaf + pos, &delta);
      cur += delta;
      s += cur;
    }
    return s;
  }

  static uint64_t last(const uint8_t* leaf, size_t cap) {
    uint64_t h = head(leaf);
    if (h == 0) return 0;
    size_t end = used_bytes(leaf, cap);
    uint64_t cur = h;
    size_t pos = kHeadBytes;
    while (pos < end) {
      uint64_t delta;
      pos += codec::varint_decode(leaf + pos, &delta);
      cur += delta;
    }
    return cur;
  }

  template <typename F>
  static bool map(const uint8_t* leaf, size_t cap, F&& f) {
    uint64_t h = head(leaf);
    if (h == 0) return true;
    if (!f(h)) return false;
    size_t end = used_bytes(leaf, cap);
    uint64_t cur = h;
    size_t pos = kHeadBytes;
    while (pos < end) {
      uint64_t delta;
      pos += codec::varint_decode(leaf + pos, &delta);
      cur += delta;
      if (!f(cur)) return false;
    }
    return true;
  }

  struct Cursor {
    size_t pos = 0;  // byte offset of the NEXT delta
    uint64_t value = 0;
  };

  static bool cursor_begin(const uint8_t* leaf, size_t /*cap*/, Cursor& cur) {
    uint64_t h = head(leaf);
    if (h == 0) return false;
    cur.value = h;
    cur.pos = kHeadBytes;
    return true;
  }

  static bool cursor_next(const uint8_t* leaf, size_t cap, Cursor& cur) {
    if (cur.pos >= cap || leaf[cur.pos] == 0) return false;
    uint64_t delta;
    cur.pos += codec::varint_decode(leaf + cur.pos, &delta);
    cur.value += delta;
    return true;
  }
};

}  // namespace cpma::pma
