// Method definitions for PackedMemoryArray: the spread/redistribute
// primitive, resizing, and the parallel batch-update algorithm of Section 4
// (batch merge -> work-efficient counting -> parallel redistribution).
// Included at the bottom of pma/pma.hpp; do not include directly.
#pragma once

#include <atomic>

#include "pma/pma.hpp"

namespace cpma::pma {

// ---------------------------------------------------------------------------
// spread: write keys into [lo, hi) equalizing byte densities.
// ---------------------------------------------------------------------------

template <typename Leaf>
uint64_t PackedMemoryArray<Leaf>::key_cost(key_type prev, key_type key,
                                           bool first) {
  if constexpr (Leaf::compressed) {
    return first ? Leaf::kHeadBytes : Leaf::delta_bytes(prev, key);
  } else {
    return 8;
  }
}

template <typename Leaf>
void PackedMemoryArray<Leaf>::spread(uint64_t lo, uint64_t hi,
                                     const key_type* keys, uint64_t n) {
  const uint64_t m = hi - lo;
  assert(m >= 1);
  if (n == 0) {
    par::parallel_for(lo, hi, [&](uint64_t l) {
      std::memset(leaf_ptr(l), 0, leaf_bytes_);
    }, 8);
    return;
  }
  const uint64_t budget_cap = leaf_bytes_ - kLeafSlack - 18;

  // Multi-format leaves: when the canonical (byte-varint) budget would clamp
  // at the per-leaf cap, the region is denser than canonical accounting can
  // express — bitmap leaves hold many more keys per byte, so splitting by
  // canonical cost would cram the tail into one leaf and overflow it
  // physically. Pack greedily by the EXACT selected-format size instead:
  // probe at the cap to learn the physical total, then re-pack at an even
  // per-leaf budget so densities stay balanced.
  if constexpr (requires(const uint8_t* p) { Leaf::format_of(p); }) {
    uint64_t canonical = 0;
    if (n < 8192) {
      for (uint64_t i = 0; i < n; ++i) {
        canonical += key_cost(i > 0 ? keys[i - 1] : 0, keys[i], i == 0);
      }
    } else {
      canonical = 8 + par::parallel_sum<uint64_t>(1, n, [&](uint64_t i) {
                    return key_cost(keys[i - 1], keys[i], false);
                  });
    }
    const uint64_t budget0 =
        (canonical + Leaf::kHeadBytes * m + m - 1) / m + 2;
    if (budget0 > budget_cap) {
      auto [lmin, phys] = pack_physical(keys, n, budget_cap);
      assert(lmin <= m && "region physically too dense to spread");
      (void)lmin;
      uint64_t budget = std::max<uint64_t>(
          16, phys / m + Leaf::kHeadBytes + 16);
      budget = std::min(budget, budget_cap);
      std::vector<uint64_t> cuts;
      for (;;) {
        cuts.clear();
        auto [l2, p2] = pack_physical(keys, n, budget, &cuts);
        (void)p2;
        if (l2 <= m || budget >= budget_cap) break;
        // Per-leaf fragmentation pushed the even budget past m leaves;
        // retry closer to the cap (the probe guarantees it fits there).
        budget = std::min<uint64_t>(budget_cap, budget + budget / 4 + 8);
      }
      if (cuts.size() > m) cuts.resize(m);  // cap-probe assert covers this
      for (uint64_t j = 0; j < m; ++j) {
        const uint64_t s = j < cuts.size() ? cuts[j] : n;
        const uint64_t e = j + 1 < cuts.size() ? cuts[j + 1] : n;
        Leaf::write(leaf_ptr(lo + j), leaf_bytes_, keys + s, e - s);
      }
      return;
    }
  }

  // Serial fast path: point-update redistributes spread a few hundred keys;
  // fork-join setup would dominate.
  if (n < 8192) {
    uint64_t total = 0;
    for (uint64_t i = 0; i < n; ++i) {
      total += key_cost(i > 0 ? keys[i - 1] : 0, keys[i], i == 0);
    }
    uint64_t budget = (total + Leaf::kHeadBytes * m + m - 1) / m + 2;
    budget = std::min(std::max<uint64_t>(budget, 16), budget_cap);
    uint64_t i = 0;
    uint64_t cum = 0;
    for (uint64_t j = 0; j < m; ++j) {
      uint64_t target = (j + 1) * budget;
      uint64_t s = i;
      if (j + 1 == m) {
        i = n;
      } else {
        while (i < n) {
          uint64_t c = key_cost(i > 0 ? keys[i - 1] : 0, keys[i], i == 0);
          if (cum + c > target) break;
          cum += c;
          ++i;
        }
      }
      Leaf::write(leaf_ptr(lo + j), leaf_bytes_, keys + s, i - s);
    }
    return;
  }

  // Parallel path: per-key incremental encoded cost, then prefix sums so
  // leaf boundaries can be found independently (span O(log)) instead of by a
  // serial walk.
  util::uvector<uint64_t> prefix(n);
  par::parallel_for(0, n, [&](uint64_t i) {
    prefix[i] = key_cost(i > 0 ? keys[i - 1] : 0, keys[i], i == 0);
  });
  uint64_t total = par::exclusive_scan_inplace(prefix);
  // Byte budget per leaf: average, plus the per-leaf head allowance (a leaf's
  // first key is stored as a kHeadBytes header rather than a delta).
  uint64_t budget = (total + Leaf::kHeadBytes * m + m - 1) / m + 2;
  budget = std::max<uint64_t>(budget, 16);
  assert(budget <= budget_cap &&
         "region too dense to spread; caller must grow first");
  if (budget > budget_cap) budget = budget_cap;  // defensive in release

  // splits[j] = first key index whose prefix reaches j*budget.
  util::uvector<uint64_t> splits(m + 1);
  par::parallel_for(0, m, [&](uint64_t j) {
    uint64_t target = j * budget;
    splits[j] = static_cast<uint64_t>(
        std::lower_bound(prefix.begin(), prefix.end(), target) -
        prefix.begin());
  }, 64);
  splits[m] = n;
  par::parallel_for(0, m, [&](uint64_t j) {
    uint64_t s = splits[j], e = splits[j + 1];
    Leaf::write(leaf_ptr(lo + j), leaf_bytes_, keys + s, e - s);
  }, 4);
}

// ---------------------------------------------------------------------------
// pack / resize
// ---------------------------------------------------------------------------

template <typename Leaf>
typename PackedMemoryArray<Leaf>::kvec PackedMemoryArray<Leaf>::pack_all()
    const {
  util::uvector<uint64_t> counts(num_leaves_);
  par::parallel_for(0, num_leaves_, [&](uint64_t l) {
    counts[l] = Leaf::element_count(leaf_ptr(l), leaf_bytes_);
  }, 8);
  uint64_t total = par::exclusive_scan_inplace(counts);
  kvec out(total);
  par::parallel_for(0, num_leaves_, [&](uint64_t l) {
    Leaf::decode_to(leaf_ptr(l), leaf_bytes_, out.data() + counts[l]);
  }, 8);
  return out;
}

template <typename Leaf>
uint64_t PackedMemoryArray<Leaf>::choose_total_bytes(
    uint64_t stream_bytes) const {
  // Build/rebuild density target: middle of the steady-state range the growth
  // factor induces (the root oscillates in [upper_root/g, upper_root]).
  constexpr double kBuildDensity = 0.65;
  uint64_t t = static_cast<uint64_t>(static_cast<double>(stream_bytes) /
                                     kBuildDensity);
  return std::max<uint64_t>(t, kMinLeaves * kMinLeafBytes);
}

template <typename Leaf>
void PackedMemoryArray<Leaf>::rebuild_into(uint64_t new_total_bytes,
                                           const key_type* keys, uint64_t n) {
  leaf_bytes_ = pick_leaf_bytes(new_total_bytes);
  num_leaves_ = std::max<uint64_t>(
      kMinLeaves, util::div_round_up(new_total_bytes, leaf_bytes_));
  if constexpr (requires(const uint8_t* p) { Leaf::format_of(p); }) {
    // Physical packing can need more leaves than byte density predicts: a
    // dense (bitmap) island's tail leaf cannot absorb far-away keys in any
    // format, so each island may cost one underfull leaf. Probe the greedy
    // packer at the per-leaf cap and make sure the array has that many
    // leaves plus headroom.
    const uint64_t lmin =
        pack_physical(keys, n, leaf_bytes_ - kLeafSlack - 18).first;
    num_leaves_ = std::max(num_leaves_, lmin + (lmin + 3) / 4);
  }
  // No zero pass: spread() writes every leaf (including empty ones, whose
  // write() zero-fills), so the buffer is first-touched by parallel writers.
  data_.resize(num_leaves_ * leaf_bytes_);
  data_.shrink_to_fit();
  spread(0, num_leaves_, keys, n);
  rebuild_head_index();
}

template <typename Leaf>
void PackedMemoryArray<Leaf>::resize_rebuild(bool growing) {
  if (resize_spread(growing, nullptr)) return;
  resize_pack_rebuild(growing);
}

template <typename Leaf>
void PackedMemoryArray<Leaf>::resize_pack_rebuild(bool growing) {
  kvec keys = pack_all();
  uint64_t stream = stream_size_parallel(keys.data(), keys.size());
  rebuild_into(resize_target_bytes(stream, growing), keys);
}

// ---------------------------------------------------------------------------
// Sharding hooks: boundary-range extraction and bulk construction, used by
// the keyspace-sharded layer (pma/sharded.hpp) to move content between
// neighbor shards without rebuilding either side from a flat key vector.
// ---------------------------------------------------------------------------

template <typename Leaf>
std::optional<uint64_t> PackedMemoryArray<Leaf>::split_key_for_bytes(
    uint64_t target) const {
  uint64_t cum = 0;
  for (uint64_t l = 0; l < num_leaves_; ++l) {
    const uint8_t* lp = leaf_ptr(l);
    key_type h = Leaf::head(lp);
    if (h == 0) continue;  // empty leaf contributes no content
    if (cum >= target) return h;
    cum += Leaf::used_bytes(lp, leaf_bytes_);
  }
  return std::nullopt;
}

template <typename Leaf>
typename PackedMemoryArray<Leaf>::kvec
PackedMemoryArray<Leaf>::extract_range(key_type lo, key_type hi) {
  kvec out;
  if (lo >= hi) return out;
  if (lo == 0) {
    if (has_zero_) {
      out.push_back(0);
      has_zero_ = false;
    }
    lo = 1;
    if (lo >= hi) return out;
  }
  if (count_ == 0) return out;
  // The extracted span covers a contiguous leaf run: only the first touched
  // leaf can keep a prefix (< lo) and only the last can keep a suffix
  // (>= hi). Each touched leaf is decoded once and rewritten from its kept
  // keys; fully-covered leaves rewrite to empty.
  const uint64_t l0 = find_leaf(lo);
  std::vector<key_type> buf, kept;
  uint64_t removed = 0;
  for (uint64_t l = l0; l < num_leaves_; ++l) {
    const uint8_t* lp = leaf_ptr(l);
    key_type h = Leaf::head(lp);
    if (h == 0) continue;
    if (h >= hi) break;  // leaves are globally sorted: nothing further
    if (Leaf::last(lp, leaf_bytes_) < lo) continue;  // only possible at l0
    buf.clear();
    Leaf::decode_append(lp, leaf_bytes_, buf);
    auto first = std::lower_bound(buf.begin(), buf.end(), lo);
    auto past = std::lower_bound(first, buf.end(), hi);
    if (first != past) {
      out.insert(out.end(), first, past);
      removed += static_cast<uint64_t>(past - first);
      kept.clear();
      kept.insert(kept.end(), buf.begin(), first);
      kept.insert(kept.end(), past, buf.end());
      Leaf::write(leaf_ptr(l), leaf_bytes_, kept.data(), kept.size());
    }
    if (past != buf.end()) break;  // hi fell inside this leaf
  }
  if (removed > 0) {
    count_ -= removed;
    // The emptied span leaves the region far below its lower density
    // bounds; one resize pass (direct spread, shrinking when warranted)
    // restores balance and rebuilds the head index. No key vector is
    // materialized unless the spread's slack guard refuses.
    resize_rebuild(/*growing=*/false);
  }
  return out;
}

template <typename Leaf>
void PackedMemoryArray<Leaf>::build_from_sorted(const key_type* keys,
                                                uint64_t n) {
  uint64_t zeros = 0;
  while (zeros < n && keys[zeros] == 0) ++zeros;
  has_zero_ = zeros > 0;
  keys += zeros;
  n -= zeros;
  count_ = n;
  if (n == 0) {
    init_empty();
    return;
  }
  rebuild_into(choose_total_bytes(stream_size_parallel(keys, n)), keys, n);
}

// ---------------------------------------------------------------------------
// Direct-spread resize: re-spread the existing leaves into a resized array
// without materializing the flat key vector. Per-leaf content byte counts
// and last keys come from one streaming pass (codec sum_run: no key is ever
// stored); a parallel prefix sum turns them into a global content-byte
// coordinate; then every destination leaf independently locates its slice
// [j*budget, (j+1)*budget) of that coordinate and stitches the covered
// source runs in: verbatim byte copies inside a source leaf (a run's delta
// chain stays valid wherever it lands, because the key preceding the run
// becomes the destination head), one re-encoded delta per source-leaf join,
// and plain encoding for content that only exists as flat keys (a batch's
// overflowed leaves).
// ---------------------------------------------------------------------------

template <typename Leaf>
bool PackedMemoryArray<Leaf>::resize_spread(bool growing, BatchContext* ctx) {
  const bool has_ovf = ctx != nullptr && !ctx->overflow_list.empty();
  auto ovf_slot = [&](uint64_t l) -> uint32_t {
    return has_ovf ? overflow_slot_[l] : kNoOverflow;
  };
  ResizeScratch local;
  ResizeScratch& rs = ctx != nullptr ? ctx->resize : local;
  const uint64_t nl = num_leaves_;

  // Pass 1 (cheap, no decoding): per-leaf content bytes via the terminator
  // scan, then a parallel prefix sum building the CONTENT coordinate (every
  // source head counted as Leaf::kHeadBytes).
  rs.prefix.resize(nl + 1);
  rs.last.resize(nl);
  par::parallel_for(0, nl, [&](uint64_t l) {
    uint32_t s = ovf_slot(l);
    rs.prefix[l] = (s != kNoOverflow)
                       ? ctx->overflow_list[s].bytes
                       : Leaf::used_bytes(leaf_ptr(l), leaf_bytes_);
  }, 8);

  // The content total stands in for the exact stream size in the sizing
  // loops below: it differs only at source-leaf joins (a head's 8 bytes
  // versus the join delta's code), at most a few bytes per leaf in either
  // direction, which the sizing margins absorb. join_excess bounds the rare
  // joins whose delta encodes LARGER than the 8-byte head it replaces
  // (keys > 2^49 apart, bounded via head differences without any decoding)
  // — the only way a destination leaf can exceed its content-coordinate
  // span.
  auto src_head = [&](uint64_t l) -> key_type {
    uint32_t s = ovf_slot(l);
    if (s != kNoOverflow) return ctx->overflow_list[s].keys.front();
    return Leaf::head(leaf_ptr(l));
  };
  uint64_t join_excess = 0;
  if constexpr (Leaf::compressed) {
    // The join delta (head - previous nonempty leaf's last key) is bounded
    // by the head difference, and code size is monotone. Chunks accumulate
    // their interior terms in parallel and publish their first/last
    // nonempty heads; the cross-chunk boundary terms are added serially
    // (heads are >= 1, so 0 marks "no nonempty leaf in this chunk").
    // Multi-format leaves (AdaptiveLeaf) also publish the OR of the format
    // tags they saw: the byte budgets here are canonical (byte-varint)
    // costs, which only match the bytes the stitch pass actually copies
    // when every source leaf is byte-varint — any other tag refuses the
    // direct spread, and the pack+rebuild fallback re-selects formats.
    constexpr bool kMultiFormat =
        requires(const uint8_t* p) { Leaf::format_of(p); };
    const uint64_t chunk = 4096;
    const uint64_t num_chunks = util::div_round_up(nl, chunk);
    struct ChunkHeads {
      key_type first = 0;
      key_type last = 0;
      uint64_t excess = 0;
      uint8_t fmts = 0;
    };
    std::vector<ChunkHeads> heads(num_chunks);
    par::parallel_for(0, num_chunks, [&](uint64_t c) {
      uint64_t lo = c * chunk, hi = std::min(nl, lo + chunk);
      ChunkHeads out;
      key_type prev = 0;
      for (uint64_t l = lo; l < hi; ++l) {
        if (rs.prefix[l] == 0) continue;  // still raw bytes at this point
        if constexpr (kMultiFormat) {
          if (ovf_slot(l) == kNoOverflow) {
            out.fmts |= Leaf::format_of(leaf_ptr(l));
          }
        }
        key_type h = src_head(l);
        if (prev != 0) {
          uint64_t cost = Leaf::delta_bytes(prev, h);
          if (cost > Leaf::kHeadBytes) out.excess += cost - Leaf::kHeadBytes;
        } else {
          out.first = h;
        }
        prev = h;
      }
      out.last = prev;
      heads[c] = out;
    }, 1);
    key_type prev = 0;
    uint8_t all_fmts = 0;
    for (uint64_t c = 0; c < num_chunks; ++c) {
      all_fmts |= heads[c].fmts;
      if (heads[c].first == 0) continue;  // chunk entirely empty
      if (prev != 0) {
        uint64_t cost = Leaf::delta_bytes(prev, heads[c].first);
        if (cost > Leaf::kHeadBytes) join_excess += cost - Leaf::kHeadBytes;
      }
      join_excess += heads[c].excess;
      prev = heads[c].last;
    }
    if (all_fmts != 0) return false;  // non-canonical content present
  }
  const uint64_t total = par::exclusive_scan_inplace(rs.prefix.data(), nl);
  rs.prefix[nl] = total;

  // Target total bytes: the same growth/shrink policy as the pack path.
  const uint64_t nt = resize_target_bytes(total, growing);

  // New geometry and per-destination-leaf byte budget, in the content
  // coordinate, so the partition covers the whole coordinate with no spill
  // onto the last leaf. A destination leaf's actual bytes exceed its
  // consumed content by at most the head-for-code swap (<= 7), one max code
  // of split overshoot, and the global join excess; refuse (caller packs
  // and rebuilds) if that cannot be guaranteed under the slack bound.
  const size_t nlb = pick_leaf_bytes(nt);
  const uint64_t nn = std::max<uint64_t>(
      kMinLeaves, util::div_round_up(nt, nlb));
  uint64_t budget = (total + nn - 1) / nn + 2;
  budget = std::max<uint64_t>(budget, 16);
  const uint64_t budget_cap = nlb - kLeafSlack - 18;
  if (budget + 24 + join_excess > budget_cap) return false;

  // Pass 2 (the ONE decoding pass): every source leaf streams forward once,
  // skip-summing to each destination boundary that lands inside it (targets
  // j*budget in [prefix[l], prefix[l+1])), then draining to its last key.
  // Boundaries that fall in the sliver past a leaf's last key are marked
  // and resolved to the next nonempty head at write time.
  rs.splits.resize(nn + 1);
  const SpreadSplit kEnd{nl, 0, 0, 0, 0};
  par::parallel_for(0, nn + 1, [&](uint64_t j) { rs.splits[j] = kEnd; }, 512);
  par::parallel_for(0, nl, [&](uint64_t l) {
    const uint64_t lbytes = rs.prefix[l + 1] - rs.prefix[l];
    if (lbytes == 0) return;
    uint64_t j = (rs.prefix[l] + budget - 1) / budget;  // first target >= lo
    const uint64_t jhi_t = rs.prefix[l + 1];            // targets stay below
    uint32_t s = ovf_slot(l);
    if (s != kNoOverflow) {
      const auto& keys = ctx->overflow_list[s].keys;
      rs.last[l] = keys.back();
      size_t off = Leaf::kHeadBytes;  // content offset of keys[1]
      uint64_t i = 1;
      for (; j <= nn && j * budget < jhi_t; ++j) {
        size_t target = j * budget - rs.prefix[l];
        if (target == 0) {
          rs.splits[j] = SpreadSplit{l, 0, Leaf::kHeadBytes, keys[0], 0};
          continue;
        }
        while (i < keys.size() && off < target) {
          off += key_cost(keys[i - 1], keys[i], false);
          ++i;
        }
        if (i >= keys.size()) {
          rs.splits[j] = SpreadSplit{l, kSliverOff, 0, 0, 0};
          continue;
        }
        size_t len = key_cost(keys[i - 1], keys[i], false);
        rs.splits[j] = SpreadSplit{l, off, off + len, keys[i], i};
      }
      return;
    }
    typename Leaf::SpreadSeeker seek(leaf_ptr(l), leaf_bytes_);
    rs.last[l] = seek.split_targets(
        rs.prefix[l], budget, j, jhi_t,
        [&](uint64_t jj, typename Leaf::SpreadPoint sp, bool sliver) {
          rs.splits[jj] = sliver ? SpreadSplit{l, kSliverOff, 0, 0, 0}
                                 : SpreadSplit{l, sp.off, sp.next, sp.key, 0};
        });
  }, 4);

  // Resolve a split for consumption: slivers advance to the next nonempty
  // leaf's head (cheap: empty leaves are rare and heads are O(1) loads).
  auto resolve = [&](SpreadSplit sp) -> SpreadSplit {
    if (sp.off != kSliverOff) return sp;
    uint64_t l = sp.leaf;
    do {
      ++l;
    } while (l < nl && rs.prefix[l + 1] == rs.prefix[l]);
    if (l >= nl) return kEnd;
    return SpreadSplit{l, 0, Leaf::kHeadBytes, src_head(l), 0};
  };

  // Pass 3: stitch every destination leaf from its two boundaries — byte
  // copies inside source leaves, one re-encoded delta per source-leaf join.
  util::uvector<uint8_t> ndata(nn * nlb);
  par::parallel_for(0, nn, [&](uint64_t j) {
    uint8_t* dst = ndata.data() + j * nlb;
    SpreadSplit s0 = resolve(rs.splits[j]);
    SpreadSplit s1 = resolve(rs.splits[j + 1]);
    if (s0.leaf >= nl || (s0.leaf == s1.leaf && s0.off == s1.off)) {
      std::memset(dst, 0, nlb);
      return;
    }
    typename Leaf::SpreadWriter w;
    Leaf::spread_begin(w, dst, nlb, s0.key);
    uint64_t l = s0.leaf;
    {
      // First run: the rest of s0's source leaf (or up to s1 within it).
      uint32_t s = ovf_slot(l);
      if (s != kNoOverflow) {
        const auto& keys = ctx->overflow_list[s].keys;
        uint64_t hi = (s1.leaf == l) ? s1.kidx : keys.size();
        Leaf::spread_append_keys(w, keys.data() + s0.kidx + 1,
                                 hi - s0.kidx - 1);
      } else {
        size_t to = (s1.leaf == l) ? s1.off
                                   : (rs.prefix[l + 1] - rs.prefix[l]);
        Leaf::spread_copy_tail(w, leaf_ptr(l), s0.next, to);
        w.last = rs.last[l];  // only read again if the run covered the leaf
      }
      ++l;
    }
    while (l < nl && l <= s1.leaf) {
      const bool final_leaf = (l == s1.leaf);
      if (final_leaf && s1.off == 0) break;  // s1 is this leaf's head
      const uint64_t lbytes = rs.prefix[l + 1] - rs.prefix[l];
      if (lbytes == 0) {
        ++l;
        continue;
      }
      uint32_t s = ovf_slot(l);
      if (s != kNoOverflow) {
        const auto& keys = ctx->overflow_list[s].keys;
        Leaf::spread_append_keys(w, keys.data(),
                                 final_leaf ? s1.kidx : keys.size());
      } else {
        Leaf::spread_join(w, leaf_ptr(l), Leaf::head(leaf_ptr(l)),
                          final_leaf ? s1.off : lbytes);
        w.last = rs.last[l];
      }
      if (final_leaf) break;
      ++l;
    }
    size_t used = Leaf::spread_finish(w);
    assert(used <= nlb - kLeafSlack);
    (void)used;
  }, 2);

  // Restore the overflow-slot invariant while the geometry still matches,
  // then swap the new array in.
  if (ctx != nullptr) release_overflow_slots(*ctx);
  data_ = std::move(ndata);
  leaf_bytes_ = nlb;
  num_leaves_ = nn;
  rebuild_head_index();
  return true;
}

// ---------------------------------------------------------------------------
// Batch phase 1a: flat routing. One parallel partition of the sorted batch
// against the head-index boundaries replaces the old fork-join recursion
// (which re-ran find_leaf plus two binary searches at every node): each
// chunk gallops leaf by leaf — the next-head search doubles as the next
// run's leaf locator — and the chunk lists concatenate into a dense work
// list that is sorted by leaf by construction.
// ---------------------------------------------------------------------------

// Batch keys per routing chunk. Routing a chunk costs O(runs * log) after
// one find_leaf, so chunks only exist to expose parallelism.
constexpr uint64_t kRouteChunkKeys = 2048;

template <typename Leaf>
std::pair<uint64_t, uint64_t> PackedMemoryArray<Leaf>::run_end(
    uint64_t l, const key_type* batch, uint64_t n, uint64_t i) const {
  // After a redistribution nearly every leaf is nonempty, so the next
  // distinct head is almost always at l + 1 — check before paying a binary
  // search over the index tail.
  uint64_t nh;
  if (l + 1 < num_leaves_ && head_index_[l + 1] != head_index_[l]) {
    nh = l + 1;
  } else {
    auto it = std::upper_bound(head_index_.begin() + l, head_index_.end(),
                               head_index_[l]);
    if (it == head_index_.end()) return {n, num_leaves_};
    nh = static_cast<uint64_t>(it - head_index_.begin());
  }
  // Runs are typically a handful of keys: gallop from i, then binary-search
  // the last gap (batch[i] < h because batch[i] routes to leaf l).
  const key_type h = head_index_[nh];
  uint64_t lo = i, step = 1;
  while (lo + step < n && batch[lo + step] < h) {
    lo += step;
    step *= 2;
  }
  uint64_t hi = std::min(lo + step, n);
  uint64_t e = static_cast<uint64_t>(
      std::lower_bound(batch + lo, batch + hi, h) - batch);
  return {e, nh};
}

template <typename Leaf>
void PackedMemoryArray<Leaf>::route_chunk(const key_type* batch, uint64_t n,
                                          uint64_t lo, uint64_t hi,
                                          std::vector<LeafRun>& out) const {
  if (lo >= hi) return;
  uint64_t i = lo;
  uint64_t l = find_leaf(batch[i]);
  if (lo > 0) {
    // A run whose first key lies in an earlier chunk belongs to that chunk;
    // skip past it.
    uint64_t g = (l == 0) ? 0
                          : static_cast<uint64_t>(
                                std::lower_bound(batch, batch + n,
                                                 head_index_[l]) -
                                batch);
    if (g < lo) {
      auto [e, next_l] = run_end(l, batch, n, i);
      i = e;
      if (i >= hi) return;
      l = find_leaf_from(next_l, batch[i]);
    }
  }
  while (i < hi) {
    auto [e, next_l] = run_end(l, batch, n, i);
    out.push_back(LeafRun{l, i, e});
    i = e;
    if (i >= hi) break;
    l = find_leaf_from(next_l, batch[i]);
  }
}

template <typename Leaf>
void PackedMemoryArray<Leaf>::route_runs(
    const key_type* batch, uint64_t n, std::vector<LeafRun>& runs,
    std::vector<std::vector<LeafRun>>& parts) const {
  runs.clear();
  const uint64_t chunks = std::min<uint64_t>(
      util::div_round_up(n, kRouteChunkKeys),
      uint64_t{8} * par::Scheduler::instance().num_workers());
  if (chunks <= 1) {
    route_chunk(batch, n, 0, n, runs);
    return;
  }
  parts.resize(chunks);
  par::parallel_for(0, chunks, [&](uint64_t c) {
    parts[c].clear();
    route_chunk(batch, n, c * n / chunks, (c + 1) * n / chunks, parts[c]);
  }, 1);
  par::flatten_parts(parts, runs);
}

template <typename Leaf>
void PackedMemoryArray<Leaf>::route_batch(const key_type* batch, uint64_t n,
                                          BatchContext& ctx) const {
  route_runs(batch, n, ctx.runs, ctx.route_parts);
}

// ---------------------------------------------------------------------------
// Batch phase 1b: per-leaf merges over the routed work list.
// ---------------------------------------------------------------------------

// Keys per refill of the merge loops' stack block; one kernel call decodes
// a whole block, so the per-key cost is a compare and an append.
constexpr size_t kMergeBlockKeys = 64;

template <typename Leaf>
void PackedMemoryArray<Leaf>::merge_into_leaf(uint64_t leaf,
                                              const key_type* keys,
                                              uint64_t k, uint64_t slot,
                                              BatchContext& ctx) {
  MergeScratch& scratch = ctx.scratch.local();
  const uint64_t max_bytes = leaf_bytes_ - kLeafSlack;
  // Single-key run (the common case for small batches over many leaves):
  // the leaf's point-insert splice needs no scratch and no tail re-encode.
  // Guarded by the worst-case growth so the in-place write cannot overflow.
  if (k == 1) {
    const uint64_t used = Leaf::used_bytes(leaf_ptr(leaf), leaf_bytes_);
    if (used + Leaf::kMaxInsertGrowth <= max_bytes) {
      const bool inserted = Leaf::insert(leaf_ptr(leaf), leaf_bytes_, keys[0]);
      ctx.touched_dense[slot] = TouchedLeaf{
          leaf, inserted ? Leaf::used_bytes(leaf_ptr(leaf), leaf_bytes_)
                         : used};
      ctx.delta_dense[slot] = inserted ? 1 : 0;
      return;
    }
  }
  // Fast path: splice the batch into the leaf's byte suffix in place. A
  // slice larger than the leaf's key capacity cannot fit, so don't bother
  // scanning for its splice point.
  if (k <= leaf_bytes_) {
    size_t need;
    uint64_t added;
    if (Leaf::merge_tail(leaf_ptr(leaf), leaf_bytes_, keys, k, max_bytes,
                         scratch.tail, &need, &added)) {
      ctx.touched_dense[slot] = TouchedLeaf{leaf, need};
      ctx.delta_dense[slot] = added;
      return;
    }
  }
  const uint8_t* lp = leaf_ptr(leaf);
  // Oversized slice (a skewed batch routing a huge run to one leaf): keep
  // the serial per-key loop off the critical path — materialize and merge
  // in parallel. Buffers are task-local here: the nested parallel calls
  // suspend at joins, where a stolen sibling task must not find this task's
  // scratch in use.
  const uint64_t existing_count = Leaf::element_count(lp, leaf_bytes_);
  if (existing_count + k > (1 << 15)) {
    util::uvector<key_type> existing(existing_count);
    Leaf::decode_to(lp, leaf_bytes_, existing.data());
    std::vector<key_type> merged(existing_count + k);
    par::parallel_merge(existing.data(), existing_count, keys, k,
                        merged.data());
    par::dedupe_sorted(merged);
    const uint64_t big_added = merged.size() - existing_count;
    const uint64_t big_need = Leaf::encoded_size(merged.data(), merged.size());
    if (big_need <= max_bytes) {
      Leaf::write(leaf_ptr(leaf), leaf_bytes_, merged.data(), merged.size());
    } else {
      ctx.overflows.local().push_back(
          Overflow{leaf, std::move(merged), big_need});
    }
    ctx.touched_dense[slot] = TouchedLeaf{leaf, big_need};
    ctx.delta_dense[slot] = big_added;
    return;
  }
  // Materializing fallback (empty leaf, batch key below the head, or the
  // tail splice overflowed): block-stream the leaf through the decode
  // kernel, merge into per-worker scratch, and either rewrite the leaf or
  // park the content out-of-place until redistribution (Figure 4).
  // Batch-internal duplicates are dropped via `last` (keys are >= 1, so 0
  // is a safe sentinel).
  std::vector<key_type>& merged = scratch.merged;
  merged.clear();
  typename Leaf::BlockCursor bc{};
  key_type buf[kMergeBlockKeys];
  size_t bn = 0, bi = 0;
  auto refill = [&] {
    bi = 0;
    bn = Leaf::block_next(lp, leaf_bytes_, bc, buf, kMergeBlockKeys);
    return bn != 0;
  };
  uint64_t existing_n = 0;
  uint64_t i = 0;
  key_type last = 0;
  bool have = refill();
  while (have && i < k) {
    key_type e = buf[bi], b = keys[i];
    if (e <= b) {
      merged.push_back(e);
      last = e;
      ++existing_n;
      if (e == b) ++i;
      if (++bi == bn) have = refill();
    } else {
      if (b != last) {
        merged.push_back(b);
        last = b;
      }
      ++i;
    }
  }
  while (have) {
    merged.insert(merged.end(), buf + bi, buf + bn);
    existing_n += bn - bi;
    have = refill();
  }
  for (; i < k; ++i) {
    if (keys[i] != last) {
      merged.push_back(keys[i]);
      last = keys[i];
    }
  }
  const uint64_t added = merged.size() - existing_n;
  const uint64_t need = Leaf::encoded_size(merged.data(), merged.size());
  if (need <= max_bytes) {
    Leaf::write(leaf_ptr(leaf), leaf_bytes_, merged.data(), merged.size());
  } else {
    // Leaf overflow: keep the merged content out-of-place until the
    // redistribution phase cleans it up (Figure 4). Copies out of the
    // scratch (overflow is the rare case).
    ctx.overflows.local().push_back(Overflow{leaf, merged, need});
  }
  ctx.touched_dense[slot] = TouchedLeaf{leaf, need};
  ctx.delta_dense[slot] = added;
}

// ---------------------------------------------------------------------------
// Batch remove: phase 1 (same routing; per-leaf subtraction, never overflows).
// ---------------------------------------------------------------------------

template <typename Leaf>
void PackedMemoryArray<Leaf>::remove_from_leaf(uint64_t leaf,
                                               const key_type* keys,
                                               uint64_t k, uint64_t slot,
                                               BatchContext& ctx) {
  ctx.delta_dense[slot] = 0;
  ctx.touched_dense[slot] = TouchedLeaf{leaf, kUntouched};
  // Suffix-splice subtraction (the remove mirror of merge_tail): the byte
  // prefix below the first removable key is never touched and the leaf is
  // never materialized. A subset re-encodes no larger than what it replaces,
  // so unlike the insert side there is no overflow fallback — the only
  // refusal is an empty leaf, which has nothing to remove anyway.
  size_t need = 0;
  uint64_t removed = 0;
  if (!Leaf::remove_tail(leaf_ptr(leaf), leaf_bytes_, keys, k,
                         ctx.scratch.local().tail, &need, &removed)) {
    return;
  }
  if (removed == 0) return;
  ctx.touched_dense[slot] = TouchedLeaf{leaf, need};
  ctx.delta_dense[slot] = removed;
}

// ---------------------------------------------------------------------------
// Batch phase 2 bookkeeping: flat overflow slots.
// ---------------------------------------------------------------------------

template <typename Leaf>
void PackedMemoryArray<Leaf>::bind_overflow_slots(BatchContext& ctx) {
  if (ctx.overflow_list.empty()) return;
  // Lazily (re)size after rebuilds; between batches every entry is
  // kNoOverflow, so no per-batch clearing pass is needed.
  if (overflow_slot_.size() != num_leaves_) {
    overflow_slot_.assign(num_leaves_, kNoOverflow);
  }
  for (uint32_t i = 0; i < ctx.overflow_list.size(); ++i) {
    overflow_slot_[ctx.overflow_list[i].leaf] = i;
  }
}

template <typename Leaf>
void PackedMemoryArray<Leaf>::release_overflow_slots(BatchContext& ctx) {
  if (ctx.overflow_list.empty()) return;
  // Restore the all-kNoOverflow invariant (skip if a rebuild already
  // invalidated the array wholesale).
  if (overflow_slot_.size() == num_leaves_) {
    for (const Overflow& o : ctx.overflow_list) {
      overflow_slot_[o.leaf] = kNoOverflow;
    }
  }
}


// ---------------------------------------------------------------------------
// Phase 2: work-efficient counting (Lemmas 2 and 3).
// ---------------------------------------------------------------------------

template <typename Leaf>
uint64_t PackedMemoryArray<Leaf>::leaf_bytes_aware(
    uint64_t leaf, const BatchContext& ctx) const {
  if (!ctx.overflow_list.empty()) {
    uint32_t s = overflow_slot_[leaf];
    if (s != kNoOverflow) return ctx.overflow_list[s].bytes;
  }
  return Leaf::used_bytes(leaf_ptr(leaf), leaf_bytes_);
}

namespace detail {
// Counts a node's bytes, reading previously-cached counts and recording newly
// computed ones in `fresh` (merged into the shared cache between levels so
// every region is counted exactly once — Lemma 2). The cache is a flat
// vector sorted by node_key: lookups are binary searches, and the
// between-level merge is a parallel sort + merge instead of serial hash
// inserts. Below kBulkHeight the recursion switches to a direct scan of the
// node's leaf range: memoizing per-leaf results costs more than rescanning
// <= 2^kBulkHeight small leaves (a bounded constant factor on the work
// bound).
constexpr uint64_t kBulkHeight = 3;

using CountEntry = std::pair<uint64_t, uint64_t>;

inline const uint64_t* cache_find(const util::uvector<CountEntry>& cache,
                                  uint64_t key) {
  auto it = std::lower_bound(
      cache.begin(), cache.end(), key,
      [](const CountEntry& e, uint64_t k) { return e.first < k; });
  if (it != cache.end() && it->first == key) return &it->second;
  return nullptr;
}

template <typename CountLeaf>
uint64_t count_node(const ImplicitTree& tree, NodeId n,
                    const util::uvector<CountEntry>& cache,
                    std::vector<CountEntry>& fresh,
                    const CountLeaf& count_leaf) {
  if (const uint64_t* hit = cache_find(cache, node_key(n))) return *hit;
  uint64_t bytes;
  if (n.height <= kBulkHeight) {
    bytes = 0;
    uint64_t lo = tree.region_begin(n), hi = tree.region_end(n);
    for (uint64_t l = lo; l < hi; ++l) bytes += count_leaf(l);
  } else {
    NodeId left{n.height - 1, n.index * 2};
    NodeId right{n.height - 1, n.index * 2 + 1};
    bytes = count_node(tree, left, cache, fresh, count_leaf);
    if (tree.valid(right)) {
      bytes += count_node(tree, right, cache, fresh, count_leaf);
    }
  }
  // Nodes at or below kBulkHeight are never looked up (their parents scan
  // leaf ranges directly), so memoizing them would only bloat the cache.
  if (n.height > kBulkHeight) fresh.emplace_back(node_key(n), bytes);
  return bytes;
}
}  // namespace detail

template <typename Leaf>
bool PackedMemoryArray<Leaf>::counting_phase(const TouchedLeaf* touched,
                                             uint64_t num_touched,
                                             BatchContext& ctx, bool is_insert,
                                             std::vector<NodeId>* roots) {
  ImplicitTree tree(num_leaves_);
  auto& cache = ctx.count_cache;
  cache.clear();

  auto violates = [&](NodeId n, uint64_t bytes) {
    return is_insert ? bytes > upper_bytes(tree, n)
                     : bytes < lower_bytes(tree, n);
  };

  std::vector<NodeId> found_roots;
  std::vector<uint64_t> to_count;  // node indices at the current level

  // Level 0: seed with the touched leaves. The merge phase recorded every
  // touched leaf's byte count, so no leaf is rescanned here — and the
  // routing phase hands the leaves over sorted, so parents dedupe on the
  // fly without a sort.
  {
    to_count.reserve(num_touched / 4);
    for (uint64_t t = 0; t < num_touched; ++t) {
      if (violates({0, touched[t].leaf}, touched[t].bytes)) {
        uint64_t parent = touched[t].leaf / 2;
        if (to_count.empty() || to_count.back() != parent) {
          to_count.push_back(parent);
        }
      }
    }
    // A single-leaf PMA (height 0) cannot occur (kMinLeaves >= 2), but guard
    // the degenerate case anyway.
    if (tree.height() == 0 && !to_count.empty()) return false;
  }

  // Levels are processed serially; all nodes within a level in parallel.
  bool to_count_sorted = true;  // level-0 seed is sorted and deduped
  for (uint64_t h = 1; h <= tree.height() && !to_count.empty(); ++h) {
    if (!to_count_sorted) {
      par::parallel_sort(to_count);
      to_count.erase(std::unique(to_count.begin(), to_count.end()),
                     to_count.end());
    }

    par::WorkerLocal<std::vector<CountEntry>> fresh;
    par::WorkerLocal<std::vector<uint64_t>> parents;
    par::WorkerLocal<std::vector<NodeId>> level_roots;
    std::atomic<bool> root_violated{false};

    par::parallel_for(0, to_count.size(), [&](uint64_t i) {
      NodeId node{h, to_count[i]};
      if (!tree.valid(node)) return;
      uint64_t bytes = detail::count_node(
          tree, node, cache, fresh.local(),
          [&](uint64_t l) { return leaf_bytes_aware(l, ctx); });
      if (violates(node, bytes)) {
        if (tree.is_root(node)) {
          root_violated.store(true, std::memory_order_relaxed);
        } else {
          parents.local().push_back(node.index / 2);
        }
      } else {
        level_roots.local().push_back(node);
      }
    }, 1);

    if (root_violated.load()) return false;
    // Merge the level's fresh counts into the sorted cache: flatten the
    // worker slots, parallel-sort by node_key (keys are unique — the
    // level's nodes have disjoint subtrees), and one parallel merge with
    // the existing cache into the swap buffer.
    par::flatten_parts(fresh, ctx.fresh_all);
    if (!ctx.fresh_all.empty()) {
      par::parallel_sort(ctx.fresh_all.data(), ctx.fresh_all.size());
      ctx.count_scratch.resize(cache.size() + ctx.fresh_all.size());
      par::parallel_merge(cache.data(), cache.size(), ctx.fresh_all.data(),
                          ctx.fresh_all.size(), ctx.count_scratch.data());
      std::swap(cache, ctx.count_scratch);
    }
    auto lr = level_roots.template combined<std::vector<NodeId>>();
    found_roots.insert(found_roots.end(), lr.begin(), lr.end());
    to_count = parents.template combined<std::vector<uint64_t>>();
    to_count_sorted = false;  // slot concatenation interleaves workers
  }

  // Keep only maximal regions (the redistribution intervals form a laminar
  // family: sort by start, then drop any region contained in the previous
  // kept one).
  ImplicitTree t2(num_leaves_);
  std::sort(found_roots.begin(), found_roots.end(),
            [&](NodeId a, NodeId b) {
              uint64_t ba = t2.region_begin(a), bb = t2.region_begin(b);
              if (ba != bb) return ba < bb;
              return a.height > b.height;
            });
  uint64_t covered_end = 0;
  for (NodeId n : found_roots) {
    if (t2.region_begin(n) >= covered_end) {
      roots->push_back(n);
      covered_end = t2.region_end(n);
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Phase 3: parallel redistribution (Lemma 4).
// ---------------------------------------------------------------------------

template <typename Leaf>
void PackedMemoryArray<Leaf>::redistribute_parallel(
    const std::vector<NodeId>& roots, BatchContext& ctx) {
  ImplicitTree tree(num_leaves_);
  const bool has_ovf = !ctx.overflow_list.empty();
  // Regions small enough that every step below (including spread, whose
  // serial fast path starts at 8192 keys) runs serially inside this task can
  // use the per-worker arena: with no suspension point while the arena is
  // live, a stolen sibling task can never observe it mid-use. Larger regions
  // allocate task-locally and keep their internal parallelism.
  const uint64_t arena_max_bytes = 8191;
  par::parallel_for(0, roots.size(), [&](uint64_t r) {
    NodeId node = roots[r];
    uint64_t lo = tree.region_begin(node), hi = tree.region_end(node);
    uint64_t m = hi - lo;
    auto leaf_keys = [&](uint64_t l) -> uint64_t {
      if (has_ovf) {
        uint32_t s = overflow_slot_[l];
        if (s != kNoOverflow) return ctx.overflow_list[s].keys.size();
      }
      return Leaf::element_count(leaf_ptr(l), leaf_bytes_);
    };
    auto leaf_fill = [&](uint64_t l, key_type* dst) {
      if (has_ovf) {
        uint32_t s = overflow_slot_[l];
        if (s != kNoOverflow) {
          const auto& keys = ctx.overflow_list[s].keys;
          std::copy(keys.begin(), keys.end(), dst);
          return;
        }
      }
      Leaf::decode_to(leaf_ptr(l), leaf_bytes_, dst);
    };
    if (m * leaf_bytes_ <= arena_max_bytes) {
      RegionArena& a = ctx.arenas.local();
      a.counts.resize(m);
      uint64_t total = 0;
      for (uint64_t j = 0; j < m; ++j) {
        uint64_t c = leaf_keys(lo + j);
        a.counts[j] = total;
        total += c;
      }
      a.buffer.resize(total);
      for (uint64_t j = 0; j < m; ++j) {
        leaf_fill(lo + j, a.buffer.data() + a.counts[j]);
      }
      spread(lo, hi, a.buffer.data(), total);
      return;
    }
    // Pack: per-leaf counts -> prefix -> decode into slices (two parallel
    // passes; each cell is touched a constant number of times).
    util::uvector<uint64_t> counts(m);
    par::parallel_for(0, m, [&](uint64_t j) {
      counts[j] = leaf_keys(lo + j);
    }, 8);
    uint64_t total = par::exclusive_scan_inplace(counts);
    kvec buffer(total);
    par::parallel_for(0, m, [&](uint64_t j) {
      leaf_fill(lo + j, buffer.data() + counts[j]);
    }, 8);
    spread(lo, hi, buffer.data(), total);
  }, 1);
}

// ---------------------------------------------------------------------------
// Batch entry points.
// ---------------------------------------------------------------------------

// Shared prologue: sort, strip the key-0 sentinel (stored out-of-band), and
// apply sub-threshold batches as point updates.
template <typename Leaf>
template <bool IsInsert>
typename PackedMemoryArray<Leaf>::BatchPrologue
PackedMemoryArray<Leaf>::batch_prologue(key_type* input, uint64_t n,
                                        bool sorted) {
  BatchPrologue p;
  if (n == 0) {
    p.done = true;
    return p;
  }
  if (!sorted) par::parallel_sort(input, n);
  uint64_t zeros = 0;
  while (zeros < n && input[zeros] == 0) ++zeros;
  if (zeros > 0) {
    if constexpr (IsInsert) {
      if (!has_zero_) {
        has_zero_ = true;
        p.delta = 1;
      }
    } else {
      if (has_zero_) {
        has_zero_ = false;
        p.delta = 1;
      }
    }
  }
  p.keys = input + zeros;
  p.n = n - zeros;
  if (p.n == 0 || (!IsInsert && count_ == 0)) {
    p.done = true;
    return p;
  }
  if (p.n < kPointThreshold) {
    for (uint64_t i = 0; i < p.n; ++i) {
      if constexpr (IsInsert) {
        p.delta += insert(p.keys[i]) ? 1 : 0;
      } else {
        p.delta += remove(p.keys[i]) ? 1 : 0;
      }
    }
    p.done = true;
  }
  return p;
}

template <typename Leaf>
uint64_t PackedMemoryArray<Leaf>::insert_batch(key_type* input, uint64_t n,
                                               bool sorted) {
  BatchPrologue p = batch_prologue<true>(input, n, sorted);
  if (p.done) return p.delta;
  // No explicit dedupe or copy: both downstream paths deduplicate during
  // their merges (duplicates cost only redundant routing).
  // Strategy crossover (Section 4): huge batches rebuild with a two-finger
  // merge; intermediate batches run the batch-merge algorithm.
  if (count_ == 0 || p.n >= count_ / 10) {
    return p.delta + insert_batch_rebuild(p.keys, p.n);
  }
  return p.delta + insert_batch_merge(p.keys, p.n);
}

template <typename Leaf>
uint64_t PackedMemoryArray<Leaf>::insert_batch_rebuild(const key_type* batch,
                                                       uint64_t n) {
  detail::PhaseTimer pt;
  kvec existing = pack_all();
  kvec merged;
  par::merge_unique(existing.data(), existing.size(), batch, n, merged);
  const uint64_t added = merged.size() - existing.size();
  rebuild_into(choose_total_bytes(
                   stream_size_parallel(merged.data(), merged.size())),
               merged);
  count_ = merged.size();
  phase_times_.rebuild_ns += pt.lap();
  ++phase_times_.rebuilds;
  return added;
}

template <typename Leaf>
uint64_t PackedMemoryArray<Leaf>::insert_batch_merge(const key_type* batch,
                                                     uint64_t n) {
  BatchContext ctx;
  detail::PhaseTimer pt;

  // Phase 1a: one flat partition of the batch against the head index.
  route_batch(batch, n, ctx);
  const uint64_t num_runs = ctx.runs.size();
  ctx.touched_dense.resize(num_runs);
  ctx.delta_dense.resize(num_runs);
  phase_times_.route_ns += pt.lap();

  // Phase 1b: per-leaf merges, one parallel_for over the dense work list.
  par::parallel_for(0, num_runs, [&](uint64_t r) {
    const LeafRun& run = ctx.runs[r];
    merge_into_leaf(run.leaf, batch + run.begin, run.end - run.begin, r, ctx);
  }, 4);
  uint64_t added = par::parallel_sum<uint64_t>(
      0, num_runs, [&](uint64_t r) { return ctx.delta_dense[r]; });
  count_ += added;
  ctx.overflow_list = ctx.overflows.template combined<std::vector<Overflow>>();
  bind_overflow_slots(ctx);
  phase_times_.merge_ns += pt.lap();

  // The routed work list is sorted by leaf, so touched_dense is the sorted
  // touched-leaf list the counting phase wants — no sort, no combine.
  std::vector<NodeId> roots;
  bool root_ok = counting_phase(ctx.touched_dense.data(), num_runs, ctx,
                                /*is_insert=*/true, &roots);
  phase_times_.count_ns += pt.lap();

  if (!root_ok) {
    // Root bound violated: grow by re-spreading the encoded leaf content
    // (overflow-aware) directly into the larger array. The pack+rebuild
    // fallback only triggers for density targets that leave too little
    // slack for verbatim splicing; its time is charged to rebuild_ns so
    // spread_ns/spreads only ever measure actual direct spreads.
    if (resize_spread(/*growing=*/true, &ctx)) {
      phase_times_.spread_ns += pt.lap();
      ++phase_times_.spreads;
    } else {
      util::uvector<uint64_t> counts(num_leaves_);
      const bool has_ovf = !ctx.overflow_list.empty();
      par::parallel_for(0, num_leaves_, [&](uint64_t l) {
        uint32_t s = has_ovf ? overflow_slot_[l] : kNoOverflow;
        counts[l] = (s != kNoOverflow)
                        ? ctx.overflow_list[s].keys.size()
                        : Leaf::element_count(leaf_ptr(l), leaf_bytes_);
      }, 8);
      uint64_t total = par::exclusive_scan_inplace(counts);
      kvec all(total);
      par::parallel_for(0, num_leaves_, [&](uint64_t l) {
        uint64_t off = counts[l];
        uint32_t s = has_ovf ? overflow_slot_[l] : kNoOverflow;
        if (s != kNoOverflow) {
          const auto& keys = ctx.overflow_list[s].keys;
          std::copy(keys.begin(), keys.end(), all.begin() + off);
        } else {
          Leaf::decode_to(leaf_ptr(l), leaf_bytes_, all.data() + off);
        }
      }, 8);
      release_overflow_slots(ctx);
      uint64_t stream = stream_size_parallel(all.data(), all.size());
      rebuild_into(resize_target_bytes(stream, /*growing=*/true), all);
      phase_times_.rebuild_ns += pt.lap();
    }
    ++phase_times_.batches;
    return added;
  }

  redistribute_parallel(roots, ctx);
  update_index_after_batch(ctx.touched_dense.data(), num_runs, roots);
  release_overflow_slots(ctx);
  phase_times_.redistribute_ns += pt.lap();
  ++phase_times_.batches;
  return added;
}

template <typename Leaf>
uint64_t PackedMemoryArray<Leaf>::remove_batch(key_type* input, uint64_t n,
                                               bool sorted) {
  BatchPrologue p = batch_prologue<false>(input, n, sorted);
  if (p.done) return p.delta;
  // Duplicates in the batch are harmless: the per-leaf set_differences and
  // the rebuild-path difference match each stored key at most once.
  if (p.n >= count_ / 10) {
    return p.delta + remove_batch_rebuild(p.keys, p.n);
  }
  return p.delta + remove_batch_merge(p.keys, p.n);
}

template <typename Leaf>
uint64_t PackedMemoryArray<Leaf>::remove_batch_rebuild(const key_type* batch,
                                                       uint64_t n) {
  detail::PhaseTimer pt;
  kvec existing = pack_all();
  // Pointer-range view of the batch for the templated difference helper.
  struct Span {
    const key_type* d;
    uint64_t n;
    const key_type* begin() const { return d; }
    const key_type* end() const { return d + n; }
    bool empty() const { return n == 0; }
  };
  kvec kept = par::sorted_difference(existing, Span{batch, n});
  const uint64_t removed = existing.size() - kept.size();
  rebuild_into(
      choose_total_bytes(stream_size_parallel(kept.data(), kept.size())),
      kept);
  count_ = kept.size();
  phase_times_.rebuild_ns += pt.lap();
  ++phase_times_.rebuilds;
  return removed;
}

template <typename Leaf>
uint64_t PackedMemoryArray<Leaf>::remove_batch_merge(const key_type* batch,
                                                     uint64_t n) {
  BatchContext ctx;
  detail::PhaseTimer pt;

  route_batch(batch, n, ctx);
  const uint64_t num_runs = ctx.runs.size();
  ctx.touched_dense.resize(num_runs);
  ctx.delta_dense.resize(num_runs);
  phase_times_.route_ns += pt.lap();

  par::parallel_for(0, num_runs, [&](uint64_t r) {
    const LeafRun& run = ctx.runs[r];
    remove_from_leaf(run.leaf, batch + run.begin, run.end - run.begin, r, ctx);
  }, 4);
  uint64_t removed = par::parallel_sum<uint64_t>(
      0, num_runs, [&](uint64_t r) { return ctx.delta_dense[r]; });
  count_ -= removed;
  phase_times_.merge_ns += pt.lap();
  if (removed == 0) {
    ++phase_times_.batches;
    return 0;
  }

  // Compact away the routed-but-unchanged leaves; order (by leaf) is
  // preserved, which is what the counting phase expects.
  uint64_t num_touched = 0;
  for (uint64_t r = 0; r < num_runs; ++r) {
    if (ctx.touched_dense[r].bytes != kUntouched) {
      ctx.touched_dense[num_touched++] = ctx.touched_dense[r];
    }
  }

  std::vector<NodeId> roots;
  bool root_ok = counting_phase(ctx.touched_dense.data(), num_touched, ctx,
                                /*is_insert=*/false, &roots);
  phase_times_.count_ns += pt.lap();
  if (!root_ok) {
    // Root lower bound violated: shrink by direct spread (reusing the batch
    // arenas; removes never overflow, so ctx carries no out-of-place
    // leaves). Fallback time is charged to rebuild_ns, as on the grow side.
    if (resize_spread(/*growing=*/false, &ctx)) {
      phase_times_.spread_ns += pt.lap();
      ++phase_times_.spreads;
    } else {
      resize_pack_rebuild(false);
      phase_times_.rebuild_ns += pt.lap();
    }
    ++phase_times_.batches;
    return removed;
  }
  redistribute_parallel(roots, ctx);
  update_index_after_batch(ctx.touched_dense.data(), num_touched, roots);
  phase_times_.redistribute_ns += pt.lap();
  ++phase_times_.batches;
  return removed;
}

// ---------------------------------------------------------------------------
// Serial RMA-like batch baseline (Table 4 comparator).
// ---------------------------------------------------------------------------

template <typename Leaf>
uint64_t PackedMemoryArray<Leaf>::insert_batch_serial_baseline(
    key_type* input, uint64_t n, bool sorted) {
  if (n == 0) return 0;
  if (!sorted) std::sort(input, input + n);
  uint64_t zeros = 0;
  while (zeros < n && input[zeros] == 0) ++zeros;
  uint64_t added = 0;
  if (zeros > 0 && !has_zero_) {
    has_zero_ = true;
    added = 1;
  }
  std::vector<key_type> batch(input + zeros, input + n);
  batch.erase(std::unique(batch.begin(), batch.end()), batch.end());

  uint64_t i = 0;
  while (i < batch.size()) {
    const uint64_t l = find_leaf(batch[i]);
    // Extent of the batch destined for this leaf under the live index.
    uint64_t j = batch.size();
    auto next_head = std::upper_bound(head_index_.begin() + l,
                                      head_index_.end(), head_index_[l]);
    if (next_head != head_index_.end()) {
      j = static_cast<uint64_t>(std::lower_bound(batch.begin() + i,
                                                 batch.end(), *next_head) -
                                batch.begin());
    }
    std::vector<key_type> existing;
    Leaf::decode_append(leaf_ptr(l), leaf_bytes_, existing);
    std::vector<key_type> merged(existing.size() + (j - i));
    std::merge(existing.begin(), existing.end(), batch.begin() + i,
               batch.begin() + j, merged.begin());
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    uint64_t need = Leaf::encoded_size(merged.data(), merged.size());
    if (need <= leaf_bytes_ - kLeafSlack) {
      Leaf::write(leaf_ptr(l), leaf_bytes_, merged.data(), merged.size());
      added += merged.size() - existing.size();
      count_ += merged.size() - existing.size();
      update_head_index(l, l + 1);
      // Per-leaf walk-up rebalance: re-counts ancestor regions from scratch
      // (the redundant work the paper's counting phase eliminates).
      rebalance_insert(l);
    } else {
      // Slice exceeds the leaf even after a rebalance would run: fall back
      // to point inserts for this slice.
      for (uint64_t q = i; q < j; ++q) added += insert(batch[q]) ? 1 : 0;
    }
    i = j;
  }
  return added;
}

// ---------------------------------------------------------------------------
// Batch queries: the read-side twin of the batch pipeline. One route_runs
// partition (the insert router's gallop) turns the sorted query array into
// per-leaf runs; each run decodes its leaf AT MOST ONCE with a single
// streaming Leaf::map pass shared by every query in the run, and runs are
// dispatched as parallel tasks at the merge phase's grain. Hit bits go
// through relaxed atomic ORs so runs (and sibling shards writing disjoint
// slices of one bitmap) can share output words.
// ---------------------------------------------------------------------------

namespace detail {
inline void set_query_bit(uint64_t* bits, uint64_t i) {
  std::atomic_ref<uint64_t>(bits[i >> 6])
      .fetch_or(uint64_t{1} << (i & 63), std::memory_order_relaxed);
}
}  // namespace detail

// Run-task grain: same as the merge phase's parallel_for over leaf runs.
constexpr uint64_t kQueryRunGrain = 4;

template <typename Leaf>
void PackedMemoryArray<Leaf>::has_batch(const key_type* keys, uint64_t n,
                                        uint64_t* bits,
                                        uint64_t bit_base) const {
  if (n == 0) return;
  // Key 0 is out of band; zero queries are a (sorted) prefix.
  uint64_t start = 0;
  while (start < n && keys[start] == 0) {
    if (has_zero_) detail::set_query_bit(bits, bit_base + start);
    ++start;
  }
  if (start == n) return;
  const key_type* qk = keys + start;
  const uint64_t qn = n - start;
  std::vector<LeafRun> runs;
  std::vector<std::vector<LeafRun>> parts;
  route_runs(qk, qn, runs, parts);
  par::parallel_for(0, runs.size(), [&](uint64_t r) {
    const LeafRun& run = runs[r];
    const uint8_t* lp = leaf_ptr(run.leaf);
    const key_type h = Leaf::head(lp);
    auto hit = [&](uint64_t q) {
      detail::set_query_bit(bits, bit_base + start + q);
    };
    // Single-query run: identical work to has() — head compare, then one
    // leaf search, no merge-join bookkeeping.
    if (run.end - run.begin == 1) {
      const key_type k = qk[run.begin];
      if (k == h) {
        hit(run.begin);
      } else if (h != 0 && k > h && Leaf::contains(lp, leaf_bytes_, k)) {
        hit(run.begin);
      }
      return;
    }
    uint64_t q = run.begin;
    // Queries below the head (possible only at leaf 0) are misses; an empty
    // leaf (h == 0, also only leaf 0 after routing) answers all-miss.
    while (q < run.end && qk[q] < h) ++q;
    if (h == 0 || q >= run.end) return;
    // One streaming pass; both sides ascend, so this is a merge-join. The
    // head is the first key the pass emits, so exact-head queries resolve
    // before any delta decoding.
    Leaf::map(lp, leaf_bytes_, [&](key_type k) {
      while (q < run.end && qk[q] < k) ++q;
      while (q < run.end && qk[q] == k) {
        hit(q);
        ++q;
      }
      return q < run.end;
    });
  }, kQueryRunGrain);
}

template <typename Leaf>
void PackedMemoryArray<Leaf>::successor_batch(const key_type* keys, uint64_t n,
                                              key_type* out, uint64_t* found,
                                              uint64_t bit_base) const {
  if (n == 0) return;
  // Zero queries: successor(0) is 0 when the sentinel is set, else the
  // global minimum nonzero key — the first nonzero head-index entry.
  uint64_t start = 0;
  if (keys[0] == 0) {
    std::optional<key_type> zero_succ;
    if (has_zero_) {
      zero_succ = key_type{0};
    } else {
      auto it = std::upper_bound(head_index_.begin(), head_index_.end(),
                                 key_type{0});
      if (it != head_index_.end()) zero_succ = *it;
    }
    while (start < n && keys[start] == 0) {
      if (zero_succ) {
        out[start] = *zero_succ;
        detail::set_query_bit(found, bit_base + start);
      }
      ++start;
    }
    if (start == n) return;
  }
  const key_type* qk = keys + start;
  const uint64_t qn = n - start;
  std::vector<LeafRun> runs;
  std::vector<std::vector<LeafRun>> parts;
  route_runs(qk, qn, runs, parts);
  par::parallel_for(0, runs.size(), [&](uint64_t r) {
    const LeafRun& run = runs[r];
    const uint8_t* lp = leaf_ptr(run.leaf);
    const key_type h = Leaf::head(lp);
    auto answer = [&](uint64_t q, key_type v) {
      out[start + q] = v;
      detail::set_query_bit(found, bit_base + start + q);
    };
    // Queries past the leaf's last key all share one answer: the next
    // nonempty leaf's head (the next stored key). run_end-style fast path
    // on the index before a binary search over its tail.
    auto spill = [&](uint64_t q) {
      if (q >= run.end) return;
      const key_type hi = head_index_[run.leaf];
      uint64_t nh;
      if (run.leaf + 1 < num_leaves_ && head_index_[run.leaf + 1] != hi) {
        nh = run.leaf + 1;
      } else {
        auto it = std::upper_bound(head_index_.begin() + run.leaf,
                                   head_index_.end(), hi);
        if (it == head_index_.end()) return;  // no successor exists
        nh = static_cast<uint64_t>(it - head_index_.begin());
      }
      for (; q < run.end; ++q) answer(q, head_index_[nh]);
    };
    // Single-query run: identical work to successor().
    if (run.end - run.begin == 1) {
      const key_type k = qk[run.begin];
      if (h != 0 && k <= h) {
        answer(run.begin, h);
      } else if (auto v = Leaf::lower_bound(lp, leaf_bytes_, k)) {
        answer(run.begin, *v);
      } else {
        spill(run.begin);
      }
      return;
    }
    uint64_t q = run.begin;
    if (h == 0) {  // empty leaf 0: everything spills to the first real key
      spill(q);
      return;
    }
    Leaf::map(lp, leaf_bytes_, [&](key_type k) {
      while (q < run.end && qk[q] <= k) {
        answer(q, k);
        ++q;
      }
      return q < run.end;
    });
    spill(q);  // queries above the leaf's last key
  }, kQueryRunGrain);
}

template <typename Leaf>
template <typename F>
void PackedMemoryArray<Leaf>::map_ranges(
    const std::pair<key_type, key_type>* ranges, uint64_t m, F&& f) const {
  if (m == 0) return;
  // Key 0: only the first range can contain it (sorted + disjoint).
  if (ranges[0].first == 0 && ranges[0].second > 0 && has_zero_) {
    f(uint64_t{0}, key_type{0});
  }
  // Serial gallop over the (sorted) range starts: the start leaf of range i
  // is at or after the start leaf of range i - 1.
  util::uvector<uint64_t> sl(m);
  sl[0] = find_leaf(std::max<key_type>(ranges[0].first, 1));
  for (uint64_t i = 1; i < m; ++i) {
    sl[i] = find_leaf_from(sl[i - 1], std::max<key_type>(ranges[i].first, 1));
  }
  // Group consecutive ranges sharing a start leaf; each group walks leaves
  // from its start, decoding each leaf once for all its ranges. (A range
  // tail crossing into another group's start leaf re-decodes that one leaf;
  // disjointness keeps the emitted keys exact.)
  std::vector<std::pair<uint64_t, uint64_t>> groups;  // [begin, end) ranges
  for (uint64_t i = 0; i < m;) {
    uint64_t j = i + 1;
    while (j < m && sl[j] == sl[i]) ++j;
    groups.emplace_back(i, j);
    i = j;
  }
  par::parallel_for(0, groups.size(), [&](uint64_t g) {
    auto [gb, ge] = groups[g];
    uint64_t ri = gb;
    uint64_t l = sl[gb];
    while (ri < ge && l < num_leaves_) {
      Leaf::map(leaf_ptr(l), leaf_bytes_, [&](key_type k) {
        while (ri < ge && k >= ranges[ri].second) ++ri;
        if (ri >= ge) return false;
        if (k >= ranges[ri].first) f(ri, k);
        return true;
      });
      if (ri >= ge) break;
      // Jump over leaves that cannot contain the next needed key; mid-range
      // (start already passed) this degenerates to l + 1.
      l = std::max(find_leaf(std::max<key_type>(ranges[ri].first, 1)), l + 1);
    }
  }, 1);
}

// ---------------------------------------------------------------------------
// Invariant checking (tests).
// ---------------------------------------------------------------------------

template <typename Leaf>
bool PackedMemoryArray<Leaf>::check_invariants(std::string* err) const {
  auto fail = [&](const std::string& msg) {
    if (err != nullptr) *err = msg;
    return false;
  };
  if (data_.size() != num_leaves_ * leaf_bytes_) {
    return fail("data size mismatch");
  }
  if (head_index_.size() != num_leaves_) return fail("index size mismatch");
  uint64_t total = 0;
  key_type prev = 0;
  key_type inherited = 0;
  for (uint64_t l = 0; l < num_leaves_; ++l) {
    const uint8_t* lp = leaf_ptr(l);
    uint64_t used = Leaf::used_bytes(lp, leaf_bytes_);
    if (used > leaf_bytes_ - kLeafSlack) {
      return fail("leaf " + std::to_string(l) + " exceeds slack bound");
    }
    key_type h = Leaf::head(lp);
    if (h != 0) inherited = h;
    if (head_index_[l] != inherited) {
      return fail("head index wrong at leaf " + std::to_string(l));
    }
    bool ok = true;
    key_type last_in_leaf = prev;
    uint64_t in_leaf = 0;
    Leaf::map(lp, leaf_bytes_, [&](key_type k) {
      if (k == 0 || (total + in_leaf > 0 && k <= last_in_leaf)) ok = false;
      last_in_leaf = k;
      ++in_leaf;
      return true;
    });
    if (!ok) {
      return fail("ordering violated in leaf " + std::to_string(l));
    }
    if (in_leaf > 0) prev = last_in_leaf;
    total += in_leaf;
  }
  if (total != count_) {
    return fail("count mismatch: stored " + std::to_string(total) +
                " vs count_ " + std::to_string(count_));
  }
  // The Eytzinger mirror must agree with the flat index entry-for-entry —
  // both the keys and the folded run-first mapping — so every maintenance
  // path (point repair, batch repair, rebuild) is checked by every test
  // that calls check_invariants.
  if (eytz_.size() != num_leaves_) {
    return fail("eytzinger mirror size mismatch");
  }
  uint64_t run_first = 0;
  for (uint64_t l = 0; l < num_leaves_; ++l) {
    if (l > 0 && head_index_[l] != head_index_[l - 1]) run_first = l;
    if (eytz_.key_at(l) != head_index_[l]) {
      return fail("eytzinger key mismatch at leaf " + std::to_string(l));
    }
    if (eytz_.run_first_at(l) != run_first) {
      return fail("eytzinger run-first mismatch at leaf " + std::to_string(l));
    }
  }
  return true;
}

}  // namespace cpma::pma
