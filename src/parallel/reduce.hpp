// Parallel reduction over an index range via recursive splitting.
#pragma once

#include <cstdint>
#include <utility>

#include "parallel/scheduler.hpp"

namespace cpma::par {

// Returns combine-fold of map(i) for i in [start, end); `identity` is the
// result for an empty range. `combine` must be associative.
template <typename T, typename Map, typename Combine>
T parallel_reduce(uint64_t start, uint64_t end, T identity, const Map& map,
                  const Combine& combine, uint64_t grain = 0) {
  if (start >= end) return identity;
  uint64_t n = end - start;
  if (grain == 0) grain = default_grain(n);
  if (n <= grain || Scheduler::instance().num_workers() <= 1) {
    T acc = identity;
    for (uint64_t i = start; i < end; ++i) acc = combine(acc, map(i));
    return acc;
  }
  uint64_t mid = start + n / 2;
  T left{}, right{};
  fork2([&] { left = parallel_reduce(start, mid, identity, map, combine,
                                     grain); },
        [&] { right = parallel_reduce(mid, end, identity, map, combine,
                                      grain); });
  return combine(left, right);
}

// Convenience: parallel sum of map(i).
template <typename T, typename Map>
T parallel_sum(uint64_t start, uint64_t end, const Map& map,
               uint64_t grain = 0) {
  return parallel_reduce<T>(start, end, T{}, map,
                            [](T a, T b) { return a + b; }, grain);
}

}  // namespace cpma::par
