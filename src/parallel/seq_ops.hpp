// Parallel operations on sorted sequences: deduplication, merge-with-dedupe,
// and set difference. Used by the PMA's full-rebuild batch paths and by the
// tree baselines' bulk updates. Templated over the vector type so callers
// can use util::uvector (default-init) scratch without conversions.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "parallel/merge.hpp"
#include "parallel/scan.hpp"
#include "parallel/scheduler.hpp"
#include "util/uninitialized.hpp"

namespace cpma::par {

// Concatenates parts[0..p) into `out` (resized to the total), preserving
// part order, with the copies running in parallel. Shared by the phase
// boundaries of the batch pipeline (route-chunk work lists, counting-cache
// merges): each worker produced an ordered part, and the concatenation in
// part order preserves the global order.
template <typename Parts, typename Vec>
void flatten_parts(const Parts& parts, Vec& out) {
  const uint64_t p = parts.size();
  util::uvector<uint64_t> offsets(p);
  for (uint64_t c = 0; c < p; ++c) offsets[c] = parts[c].size();
  uint64_t total = exclusive_scan_inplace(offsets.data(), p);
  out.resize(total);
  parallel_for(0, p, [&](uint64_t c) {
    std::copy(parts[c].begin(), parts[c].end(), out.begin() + offsets[c]);
  }, 1);
}

// Removes duplicates from sorted `v` (keeps first of each run). Parallel
// flag/prefix/scatter when large.
template <typename Vec>
void dedupe_sorted(Vec& v) {
  using T = typename Vec::value_type;
  const uint64_t n = v.size();
  if (n <= 1) return;
  if (n < (1 << 16) || Scheduler::instance().num_workers() <= 1) {
    v.erase(std::unique(v.begin(), v.end()), v.end());
    return;
  }
  util::uvector<uint64_t> keep(n);
  parallel_for(0, n, [&](uint64_t i) {
    keep[i] = (i == 0 || v[i] != v[i - 1]) ? 1 : 0;
  });
  uint64_t total = exclusive_scan_inplace(keep.data(), n);
  util::uvector<T> out(total);
  parallel_for(0, n, [&](uint64_t i) {
    bool is_first = (i == 0 || v[i] != v[i - 1]);
    if (is_first) out[keep[i]] = v[i];
  });
  if constexpr (std::is_same_v<Vec, util::uvector<T>>) {
    v = std::move(out);
  } else {
    v.assign(out.begin(), out.end());
  }
}

// Merges two sorted unique sequences into one sorted unique sequence.
template <typename T>
std::vector<T> merge_dedupe(const std::vector<T>& a, const std::vector<T>& b) {
  std::vector<T> merged(a.size() + b.size());
  parallel_merge(a.data(), a.size(), b.data(), b.size(), merged.data());
  dedupe_sorted(merged);
  return merged;
}

// Fused merge + dedupe: `a` sorted unique, `b` sorted (duplicates allowed);
// `out` receives the sorted unique union. One chunked merge pass plus one
// compaction pass — two fewer passes than merge-then-dedupe, which matters
// on the PMA's full-rebuild path.
template <typename T>
void merge_unique(const T* a, uint64_t na, const T* b, uint64_t nb,
                  util::uvector<T>& out) {
  if (na == 0) {
    out.assign(b, b + nb);
    dedupe_sorted(out);
    return;
  }
  if (nb == 0) {
    out.assign(a, a + na);
    return;
  }
  const uint64_t chunk = 1 << 15;
  const uint64_t num_chunks = (na + chunk - 1) / chunk;
  std::vector<util::uvector<T>> parts(num_chunks);
  parallel_for(0, num_chunks, [&](uint64_t c) {
    uint64_t alo = c * chunk, ahi = std::min(na, alo + chunk);
    // b-range: values below the NEXT chunk's first a value; chunk 0 also
    // takes b values below a[0], the last chunk takes the b tail.
    uint64_t blo = (c == 0)
                       ? 0
                       : static_cast<uint64_t>(
                             std::lower_bound(b, b + nb, a[alo]) - b);
    uint64_t bhi = (c + 1 == num_chunks)
                       ? nb
                       : static_cast<uint64_t>(
                             std::lower_bound(b, b + nb, a[ahi]) - b);
    auto& part = parts[c];
    part.reserve((ahi - alo) + (bhi - blo));
    uint64_t i = alo, j = blo;
    while (i < ahi && j < bhi) {
      if (a[i] < b[j]) {
        part.push_back(a[i++]);
      } else if (b[j] < a[i]) {
        T v = b[j++];
        part.push_back(v);
        while (j < bhi && b[j] == v) ++j;  // b-internal duplicates
      } else {
        part.push_back(a[i++]);
        T v = b[j++];
        while (j < bhi && b[j] == v) ++j;
      }
    }
    while (i < ahi) part.push_back(a[i++]);
    while (j < bhi) {
      T v = b[j++];
      part.push_back(v);
      while (j < bhi && b[j] == v) ++j;
    }
  }, 1);
  flatten_parts(parts, out);
}

// Returns sorted unique `a` minus elements of sorted unique `b` (all
// occurrences matching `b` are dropped). Parallel by chunking `a` and
// walking the matching window of `b` per chunk.
template <typename VecA, typename VecB>
VecA sorted_difference(const VecA& a, const VecB& b) {
  using T = typename VecA::value_type;
  const uint64_t n = a.size();
  if (n == 0) return {};
  VecA out;
  if (b.empty()) {
    out.assign(a.begin(), a.end());
    return out;
  }
  const uint64_t chunk = 1 << 14;
  const uint64_t num_chunks = (n + chunk - 1) / chunk;
  std::vector<util::uvector<T>> parts(num_chunks);
  parallel_for(0, num_chunks, [&](uint64_t c) {
    uint64_t lo = c * chunk, hi = std::min(n, lo + chunk);
    auto bi = std::lower_bound(b.begin(), b.end(), a[lo]);
    auto& part = parts[c];
    part.reserve(hi - lo);
    for (uint64_t i = lo; i < hi; ++i) {
      while (bi != b.end() && *bi < a[i]) ++bi;
      if (bi == b.end() || *bi != a[i]) part.push_back(a[i]);
    }
  }, 1);
  flatten_parts(parts, out);
  return out;
}

}  // namespace cpma::par
