// Fork-join work-stealing scheduler ("parlay-lite").
//
// The paper parallelizes the PMA/CPMA with ParlayLib's fork-join model; this
// is our from-scratch substrate with the same model: binary forking
// (`fork2`), recursive-splitting `parallel_for`, and work stealing so that a
// worker blocked at a join helps execute other ready tasks.
//
// Design notes:
//  * Jobs are stack-allocated closures; the deque stores raw pointers. A job
//    cannot outlive its fork2 frame because fork2 does not return until both
//    branches complete.
//  * Each worker owns a small mutex-protected deque: the owner pushes/pops at
//    the bottom (LIFO), thieves steal from the top (FIFO). Steals are rare
//    under recursive splitting, so a mutex per deque is not a bottleneck at
//    the grain sizes we use; it buys simple, correct growth semantics.
//  * The thread that calls a top-level parallel operation registers itself as
//    worker 0 ("master") for the duration; N-1 additional threads are
//    spawned. With num_workers()==1 everything degrades to serial calls,
//    which the strong-scaling benches rely on.
//  * At a join we only steal from *other* workers: jobs below the joined job
//    in our own deque belong to enclosing frames whose joins have not been
//    reached yet, and running them here would break the LIFO pop discipline.
//  * Exceptions escaping a forked closure terminate (HPC convention); none of
//    the library's parallel bodies throw.
#pragma once

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace cpma::par {

class JobBase {
 public:
  virtual ~JobBase() = default;
  virtual void execute() = 0;
  bool done() const { return done_.load(std::memory_order_acquire); }

 protected:
  void mark_done() { done_.store(true, std::memory_order_release); }
  std::atomic<bool> done_{false};
};

template <typename F>
class ClosureJob final : public JobBase {
 public:
  explicit ClosureJob(F& f) : f_(f) {}
  void execute() override {
    f_();
    mark_done();
  }
  // Runs the closure without publishing `done`; used when the owner pops its
  // own un-stolen job and no other thread can be waiting on it.
  void run_inline() { f_(); }

 private:
  F& f_;
};

class Scheduler {
 public:
  // Returns the process-wide scheduler, creating it on first use with
  // CPMA_NUM_THREADS (default: hardware concurrency) workers.
  static Scheduler& instance();

  // Tears down the current pool and rebuilds it with `n` workers (including
  // the master slot). Must not be called from inside a parallel region.
  static void set_num_workers(unsigned n);

  explicit Scheduler(unsigned num_workers);
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  unsigned num_workers() const { return num_workers_; }

  // Thread-local worker id; -1 on threads not part of the pool.
  static int current_worker_id();

  // ---- participant registry (serve/ epoch reclamation) ---------------------
  // Any thread — pool worker, registered master, or an external client
  // thread of the serving layer — can claim a stable dense id. Ids are
  // assigned lazily on first call, cached in a thread-local, and returned
  // to a free list when the thread exits, so long-lived servers with
  // thread churn do not exhaust the space. The serve/ epoch manager sizes
  // its per-thread pin-slot array by kMaxParticipants; ids AT OR ABOVE the
  // cap are still handed out (with a one-time stderr warning) and the
  // epoch manager folds them onto a shared conservative overflow slot —
  // graceful degradation (overflow readers contend on one slot and hold
  // reclamation back a little longer) instead of aborting or, worse,
  // silently aliasing two threads onto one pin slot.
  static constexpr unsigned kMaxParticipants = 512;
  static unsigned participant_id();

  void push_local(JobBase* job);
  // Pops the bottom of the local deque if it equals `job` (i.e. the job was
  // not stolen). Returns true when the caller should run it inline.
  bool try_pop_local(JobBase* job);
  // Steal-while-waiting join: executes other workers' jobs until `job`
  // completes.
  void wait_for(JobBase* job);

  // RAII registration of an external thread as worker 0 for the duration of
  // a top-level parallel call. If another external thread already holds the
  // master slot, is_worker() is false and the caller runs serially.
  class MasterGuard {
   public:
    explicit MasterGuard(Scheduler& s);
    ~MasterGuard();
    bool is_worker() const { return worker_; }

   private:
    Scheduler& s_;
    bool registered_ = false;
    bool worker_ = false;
  };

 private:
  struct alignas(64) WorkerDeque {
    std::mutex m;
    std::deque<JobBase*> q;
    // Mirror of q.size(), readable without the lock: thieves probe it before
    // locking, so an idle pool costs atomic loads instead of mutex traffic.
    std::atomic<int64_t> size{0};
  };

  void worker_main(unsigned id);
  JobBase* steal_from_others(unsigned self);
  void notify_work();
  // Any deque nonempty? Sleepers re-check this after registering in
  // sleepers_ so a push racing the registration cannot be missed (the
  // seq_cst size increment in push_local and the seq_cst registration in
  // worker_main form the store/load pair of the handshake).
  bool have_pending_jobs() const;

  unsigned num_workers_;
  std::vector<std::unique_ptr<WorkerDeque>> deques_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> master_busy_{false};
  std::atomic<int> sleepers_{0};
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
};

// ---------------------------------------------------------------------------
// fork2: run fa and fb, potentially in parallel; returns when both are done.
// ---------------------------------------------------------------------------
template <typename Fa, typename Fb>
void fork2(Fa&& fa, Fb&& fb) {
  Scheduler& s = Scheduler::instance();
  if (s.num_workers() <= 1) {
    fa();
    fb();
    return;
  }
  const bool already_worker = Scheduler::current_worker_id() >= 0;
  if (!already_worker) {
    Scheduler::MasterGuard guard(s);
    if (!guard.is_worker()) {
      fa();
      fb();
      return;
    }
    // Re-enter now that this thread holds the master slot.
    fork2(std::forward<Fa>(fa), std::forward<Fb>(fb));
    return;
  }
  ClosureJob<std::remove_reference_t<Fb>> job(fb);
  s.push_local(&job);
  fa();
  if (s.try_pop_local(&job)) {
    job.run_inline();
  } else {
    s.wait_for(&job);
  }
}

// ---------------------------------------------------------------------------
// parallel_for over [start, end): recursive splitting down to `grain`
// iterations per task. grain==0 picks a default based on worker count.
// ---------------------------------------------------------------------------
namespace detail {
template <typename F>
void parallel_for_rec(uint64_t start, uint64_t end, uint64_t grain,
                      const F& f) {
  uint64_t n = end - start;
  if (n <= grain) {
    for (uint64_t i = start; i < end; ++i) f(i);
    return;
  }
  uint64_t mid = start + n / 2;
  fork2([&] { parallel_for_rec(start, mid, grain, f); },
        [&] { parallel_for_rec(mid, end, grain, f); });
}
}  // namespace detail

inline uint64_t default_grain(uint64_t n) {
  unsigned p = Scheduler::instance().num_workers();
  uint64_t g = n / (8 * static_cast<uint64_t>(p) + 1);
  // Floor of 512: iterations that are individually heavy should pass an
  // explicit grain; for cheap per-index bodies, forking below ~512
  // iterations costs more than it buys.
  if (g < 512) g = 512;
  if (g > 8192) g = 8192;
  return g;
}

template <typename F>
void parallel_for(uint64_t start, uint64_t end, F&& f, uint64_t grain = 0) {
  if (start >= end) return;
  uint64_t n = end - start;
  if (grain == 0) grain = default_grain(n);
  if (Scheduler::instance().num_workers() <= 1 || n <= grain) {
    for (uint64_t i = start; i < end; ++i) f(i);
    return;
  }
  detail::parallel_for_rec(start, end, grain, f);
}

}  // namespace cpma::par
