// Parallel merge sort built on fork2 + parallel_merge. Used to sort unsorted
// update batches (O(k log k) work, as the paper assumes) before the
// batch-merge phase.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "parallel/merge.hpp"
#include "parallel/scheduler.hpp"
#include "util/uninitialized.hpp"

namespace cpma::par {

namespace detail {
// Sorts [data, data+n); buf is scratch of the same size. `data_in_place`
// selects which array receives the sorted output at this level.
template <typename T>
void sort_rec(T* data, T* buf, uint64_t n, bool result_in_data,
              uint64_t grain) {
  if (n <= grain) {
    std::sort(data, data + n);
    if (!result_in_data) std::copy(data, data + n, buf);
    return;
  }
  uint64_t mid = n / 2;
  fork2([&] { sort_rec(data, buf, mid, !result_in_data, grain); },
        [&] { sort_rec(data + mid, buf + mid, n - mid, !result_in_data,
                       grain); });
  if (result_in_data) {
    parallel_merge(buf, mid, buf + mid, n - mid, data, grain);
  } else {
    parallel_merge(data, mid, data + mid, n - mid, buf, grain);
  }
}
}  // namespace detail

template <typename T>
void parallel_sort(T* data, uint64_t n, uint64_t grain = 8192) {
  if (n <= 1) return;
  if (Scheduler::instance().num_workers() <= 1 || n <= grain) {
    std::sort(data, data + n);
    return;
  }
  util::uvector<T> buf(n);  // scratch: first-touched by the parallel writers
  detail::sort_rec(data, buf.data(), n, true, grain);
}

template <typename T>
void parallel_sort(std::vector<T>& v) {
  parallel_sort(v.data(), v.size());
}

}  // namespace cpma::par
