// Per-worker storage, used to implement the "thread-safe set of modified
// leaves" from the batch-merge phase without contention: each worker appends
// to its own padded slot, and the single-threaded phase boundary combines
// the slots.
#pragma once

#include <cstdint>
#include <vector>

#include "parallel/scheduler.hpp"

namespace cpma::par {

template <typename T>
class WorkerLocal {
 public:
  WorkerLocal() : slots_(Scheduler::instance().num_workers()) {}

  T& local() {
    int id = Scheduler::current_worker_id();
    // Threads outside the pool (e.g. the caller before registering as
    // master) share slot 0; the library's single-writer batch model means at
    // most one such thread is active.
    return slots_[id < 0 ? 0 : static_cast<size_t>(id)].value;
  }

  size_t num_slots() const { return slots_.size(); }
  T& slot(size_t i) { return slots_[i].value; }

  // Container-style views so slot sequences plug into generic helpers
  // (e.g. par::flatten_parts, which concatenates the slots in order).
  size_t size() const { return slots_.size(); }
  const T& operator[](size_t i) const { return slots_[i].value; }

  // Single-threaded combine of vector-like slots into one vector (moves the
  // elements out of the slots).
  template <typename U = T>
  U combined() {
    U all;
    for (auto& s : slots_) {
      all.insert(all.end(), std::make_move_iterator(s.value.begin()),
                 std::make_move_iterator(s.value.end()));
      s.value.clear();
    }
    return all;
  }

 private:
  struct alignas(64) Padded {
    T value{};
  };
  std::vector<Padded> slots_;
};

}  // namespace cpma::par
