#include "parallel/scheduler.hpp"

#include <cstdio>
#include <cstdlib>
#include <random>

#include "util/env.hpp"

namespace cpma::par {

namespace {
thread_local int tl_worker_id = -1;

std::mutex g_instance_mutex;
std::unique_ptr<Scheduler> g_instance;
std::atomic<Scheduler*> g_instance_fast{nullptr};

// ---- participant registry ------------------------------------------------
// Dense thread ids for epoch participation (serve/). A free list recycles
// the ids of exited threads; the thread_local holder returns its id in its
// destructor.
std::mutex g_participant_mutex;
std::vector<unsigned> g_participant_free;
unsigned g_participant_next = 0;

struct ParticipantSlot {
  int id = -1;
  ~ParticipantSlot() {
    if (id >= 0) {
      std::lock_guard<std::mutex> lock(g_participant_mutex);
      g_participant_free.push_back(static_cast<unsigned>(id));
    }
  }
};
thread_local ParticipantSlot tl_participant;

unsigned default_worker_count() {
#if defined(CPMA_FORCE_SERIAL)
  // Build configured with -DCPMA_PARALLEL=OFF: always a single worker,
  // regardless of CPMA_NUM_THREADS.
  return 1;
#else
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return static_cast<unsigned>(
      cpma::util::env_u64("CPMA_NUM_THREADS", hw));
#endif
}
}  // namespace

Scheduler& Scheduler::instance() {
  Scheduler* fast = g_instance_fast.load(std::memory_order_acquire);
  if (fast != nullptr) return *fast;
  std::lock_guard<std::mutex> lock(g_instance_mutex);
  if (!g_instance) {
    g_instance = std::make_unique<Scheduler>(default_worker_count());
    g_instance_fast.store(g_instance.get(), std::memory_order_release);
  }
  return *g_instance;
}

// Precondition: no parallel region is active (callers are the scaling benches
// between measurement phases).
void Scheduler::set_num_workers(unsigned n) {
#if defined(CPMA_FORCE_SERIAL)
  // Serial builds stay serial even when benches/tests sweep worker counts.
  n = 1;
#endif
  if (n == 0) n = 1;
  std::lock_guard<std::mutex> lock(g_instance_mutex);
  g_instance_fast.store(nullptr, std::memory_order_release);
  g_instance.reset();  // joins the old pool
  g_instance = std::make_unique<Scheduler>(n);
  g_instance_fast.store(g_instance.get(), std::memory_order_release);
}

int Scheduler::current_worker_id() { return tl_worker_id; }

unsigned Scheduler::participant_id() {
  if (tl_participant.id < 0) {
    std::lock_guard<std::mutex> lock(g_participant_mutex);
    if (!g_participant_free.empty()) {
      tl_participant.id = static_cast<int>(g_participant_free.back());
      g_participant_free.pop_back();
    } else {
      // Ids >= kMaxParticipants are legal: the epoch manager folds them
      // onto a shared conservative overflow slot (serve/epoch.hpp), so an
      // unexpected thread explosion degrades (overflow threads contend on
      // one pin slot) rather than aliasing two threads onto one slot —
      // which would silently break reclamation — or aborting the process.
      if (g_participant_next == kMaxParticipants) {
        std::fprintf(stderr,
                     "cpma: warning: more than %u concurrent epoch "
                     "participants; extra threads share one overflow pin "
                     "slot (degraded reclamation, still safe)\n",
                     kMaxParticipants);
      }
      tl_participant.id = static_cast<int>(g_participant_next++);
    }
  }
  return static_cast<unsigned>(tl_participant.id);
}

Scheduler::Scheduler(unsigned num_workers)
    : num_workers_(num_workers == 0 ? 1 : num_workers) {
  deques_.reserve(num_workers_);
  for (unsigned i = 0; i < num_workers_; ++i) {
    deques_.push_back(std::make_unique<WorkerDeque>());
  }
  threads_.reserve(num_workers_ - 1);
  for (unsigned i = 1; i < num_workers_; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

Scheduler::~Scheduler() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    sleep_cv_.notify_all();
  }
  for (auto& t : threads_) t.join();
}

void Scheduler::push_local(JobBase* job) {
  int id = tl_worker_id;
  assert(id >= 0);
  WorkerDeque& d = *deques_[id];
  {
    std::lock_guard<std::mutex> lock(d.m);
    d.q.push_back(job);
  }
  // seq_cst pairs with the sleeper's seq_cst registration in worker_main
  // (Dekker handshake): if this increment is not visible to a registering
  // sleeper's re-check, then its sleepers_ increment IS visible to the load
  // below and we take the notify path.
  int64_t prev = d.size.fetch_add(1, std::memory_order_seq_cst);
  // Wake a sleeper only on the empty->nonempty transition: workers waking up
  // fan out further wakeups via their own pushes. Notifying on every push
  // would put a futex syscall on the fork fast path.
  if (prev == 0 && sleepers_.load(std::memory_order_seq_cst) > 0) {
    notify_work();
  }
}

bool Scheduler::try_pop_local(JobBase* job) {
  int id = tl_worker_id;
  assert(id >= 0);
  WorkerDeque& d = *deques_[id];
  std::lock_guard<std::mutex> lock(d.m);
  auto& q = d.q;
  if (q.empty()) return false;
  // LIFO discipline: by the time a frame joins, every job pushed by its first
  // branch has been consumed, so the bottom is either `job` or `job` was
  // stolen and the deque holds only outer-frame jobs.
  if (q.back() != job) return false;
  q.pop_back();
  d.size.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

JobBase* Scheduler::steal_from_others(unsigned self) {
  // Start from a per-thread pseudo-random victim so thieves spread out.
  thread_local uint32_t rng_state = 0x9e3779b9u ^ (self * 0x85ebca6bu + 1);
  rng_state ^= rng_state << 13;
  rng_state ^= rng_state >> 17;
  rng_state ^= rng_state << 5;
  unsigned start = rng_state % num_workers_;
  for (unsigned k = 0; k < num_workers_; ++k) {
    unsigned v = (start + k) % num_workers_;
    if (v == self) continue;
    WorkerDeque& d = *deques_[v];
    // Lock-free probe: only touch the mutex when there is plausibly work.
    if (d.size.load(std::memory_order_acquire) <= 0) continue;
    std::lock_guard<std::mutex> lock(d.m);
    auto& q = d.q;
    if (!q.empty()) {
      JobBase* job = q.front();
      q.pop_front();
      d.size.fetch_sub(1, std::memory_order_relaxed);
      return job;
    }
  }
  return nullptr;
}

void Scheduler::wait_for(JobBase* job) {
  unsigned self = static_cast<unsigned>(tl_worker_id);
  int spins = 0;
  while (!job->done()) {
    if (JobBase* other = steal_from_others(self)) {
      other->execute();
      spins = 0;
    } else {
      if (++spins > 64) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }
}

void Scheduler::notify_work() {
  // Notify while holding sleep_mutex_: a sleeper that has registered in
  // sleepers_ but not yet entered wait_for still holds the mutex, so taking
  // it here serializes this notify after the sleeper parks (the wait
  // releases the mutex) — or before its work re-check, which then sees the
  // push. Without the lock that window dropped the signal and the sleeper
  // idled out its full timed wait (a latency blip every idle->busy
  // transition the serving layer's tail latencies would pay for).
  std::lock_guard<std::mutex> lock(sleep_mutex_);
  sleep_cv_.notify_one();
}

bool Scheduler::have_pending_jobs() const {
  for (const auto& d : deques_) {
    if (d->size.load(std::memory_order_seq_cst) > 0) return true;
  }
  return false;
}

void Scheduler::worker_main(unsigned id) {
  tl_worker_id = static_cast<int>(id);
  int failed_rounds = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    JobBase* job = steal_from_others(id);
    if (job != nullptr) {
      job->execute();
      failed_rounds = 0;
      continue;
    }
    if (++failed_rounds < 16) {
      std::this_thread::yield();
      continue;
    }
    // Nothing to do: register as a sleeper, then RE-CHECK the deques before
    // parking. A push can land between the failed steal sweep above and the
    // registration; push_local only notifies when it observes sleepers_ > 0,
    // so skipping this re-check would miss that push entirely. The seq_cst
    // order (register, then probe) against push_local's (publish size, then
    // probe sleepers_) guarantees at least one side sees the other. The
    // timed wait stays as a belt-and-braces backstop, not a correctness
    // requirement.
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    if (!have_pending_jobs() && !stop_.load(std::memory_order_acquire)) {
      sleep_cv_.wait_for(lock, std::chrono::milliseconds(1));
    }
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
    failed_rounds = 0;
  }
  tl_worker_id = -1;
}

Scheduler::MasterGuard::MasterGuard(Scheduler& s) : s_(s) {
  if (tl_worker_id >= 0) {
    worker_ = true;  // already inside the pool; nothing to register
    return;
  }
  bool expected = false;
  if (s_.master_busy_.compare_exchange_strong(expected, true)) {
    tl_worker_id = 0;
    registered_ = true;
    worker_ = true;
  }
}

Scheduler::MasterGuard::~MasterGuard() {
  if (registered_) {
    tl_worker_id = -1;
    s_.master_busy_.store(false, std::memory_order_release);
  }
}

}  // namespace cpma::par
