// Parallel prefix sums (exclusive scan), the classic two-pass blocked
// algorithm: per-block sums in parallel, serial scan of the (short) block-sum
// vector, then a parallel pass writing offsets.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "parallel/scheduler.hpp"

namespace cpma::par {

// Replaces values[i] with sum of values[0..i) and returns the total.
template <typename T>
T exclusive_scan_inplace(T* values, uint64_t n) {
  if (n == 0) return T{};
  const uint64_t block = 4096;
  const uint64_t num_blocks = (n + block - 1) / block;
  if (num_blocks <= 2 || Scheduler::instance().num_workers() <= 1) {
    T acc{};
    for (uint64_t i = 0; i < n; ++i) {
      T v = values[i];
      values[i] = acc;
      acc += v;
    }
    return acc;
  }
  std::vector<T> block_sums(num_blocks);
  parallel_for(0, num_blocks, [&](uint64_t b) {
    uint64_t lo = b * block, hi = std::min(n, lo + block);
    T acc{};
    for (uint64_t i = lo; i < hi; ++i) acc += values[i];
    block_sums[b] = acc;
  }, 1);
  T total{};
  for (uint64_t b = 0; b < num_blocks; ++b) {
    T v = block_sums[b];
    block_sums[b] = total;
    total += v;
  }
  parallel_for(0, num_blocks, [&](uint64_t b) {
    uint64_t lo = b * block, hi = std::min(n, lo + block);
    T acc = block_sums[b];
    for (uint64_t i = lo; i < hi; ++i) {
      T v = values[i];
      values[i] = acc;
      acc += v;
    }
  }, 1);
  return total;
}

// Vector-of-any-allocator convenience wrapper.
template <typename Vec>
typename Vec::value_type exclusive_scan_inplace(Vec& values) {
  return exclusive_scan_inplace(values.data(),
                                static_cast<uint64_t>(values.size()));
}

}  // namespace cpma::par
