// Load-balanced parallel merge of two sorted ranges (the primitive the
// batch-merge phase uses when many batch elements land in one region; the
// paper cites Akl & Santoro's optimal parallel merging). The splitting rule
// is the standard one: bisect the larger input, binary-search the split key
// in the smaller input, and recurse on the two halves in parallel — span
// O(log^2 (n+m)).
#pragma once

#include <algorithm>
#include <cstdint>

#include "parallel/scheduler.hpp"

namespace cpma::par {

namespace detail {
template <typename T, typename Out>
void merge_rec(const T* a, uint64_t na, const T* b, uint64_t nb, Out out,
               uint64_t grain) {
  if (na + nb <= grain) {
    std::merge(a, a + na, b, b + nb, out);
    return;
  }
  if (na < nb) {
    merge_rec(b, nb, a, na, out, grain);
    return;
  }
  uint64_t ma = na / 2;
  const T* bsplit = std::lower_bound(b, b + nb, a[ma]);
  uint64_t mb = static_cast<uint64_t>(bsplit - b);
  fork2([&] { merge_rec(a, ma, b, mb, out, grain); },
        [&] {
          merge_rec(a + ma, na - ma, b + mb, nb - mb, out + (ma + mb), grain);
        });
}
}  // namespace detail

// Merges sorted [a, a+na) and [b, b+nb) into out (which must not alias the
// inputs). Duplicates are kept (two-input stability: a's elements first).
template <typename T, typename Out>
void parallel_merge(const T* a, uint64_t na, const T* b, uint64_t nb, Out out,
                    uint64_t grain = 8192) {
  if (Scheduler::instance().num_workers() <= 1 || na + nb <= grain) {
    std::merge(a, a + na, b, b + nb, out);
    return;
  }
  detail::merge_rec(a, na, b, nb, out, grain);
}

}  // namespace cpma::par
