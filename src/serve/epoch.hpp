// Epoch-based reclamation for the serving layer's read snapshots.
//
// The serving layer (serve/serving.hpp) publishes immutable snapshot views
// through a single atomic pointer; readers must be able to keep using a view
// after the writer has replaced it, and the writer must eventually free
// replaced views without ever making a reader wait. Classic epoch-based
// reclamation (EBR) gives exactly that:
//
//  * A global epoch counter only the writer advances.
//  * One pin slot per participating thread (dense ids from
//    par::Scheduler::participant_id()). A reader PINS by publishing the
//    current global epoch into its slot before it dereferences the snapshot
//    pointer, and UNPINS by restoring the idle sentinel. Pins are two
//    relaxed-cost atomic stores plus loads — readers never take a lock and
//    never block on the writer.
//  * When the writer retires a view it stamps it with the post-advance
//    epoch E. Any reader still holding the old view pinned an epoch < E
//    (the seq_cst ordering between the snapshot swap, the advance, and the
//    reader's pin-then-load sequence makes this exact, not approximate), so
//    the view is reclaimable once min_active() >= E.
//
// Safety argument (all marked operations are seq_cst, so they have one
// total order): the writer swaps the snapshot pointer and THEN advances the
// epoch to E; a reader stores its pin p and THEN loads the pointer. If the
// reader obtained the old view, its pointer load preceded the swap, hence
// its pin store preceded the advance, hence p < E and the pin stays visible
// to every later min_active() scan until the reader unpins. Conversely a
// reader that pins p >= E loads the pointer after the swap and gets the new
// view. Therefore min_active() >= E proves no reader holds the old view.
//
// Nesting: a thread that pins while already pinned keeps its outer (older)
// epoch — conservative and safe. Guards must be destroyed on the thread
// that created them.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "parallel/scheduler.hpp"

namespace cpma::serve {

class EpochManager {
 public:
  static constexpr uint64_t kIdle = UINT64_MAX;

  EpochManager() : slots_(par::Scheduler::kMaxParticipants) {}
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  // RAII pin of the current epoch for the calling thread.
  class Guard {
   public:
    Guard() = default;
    Guard(Guard&& o) noexcept : slot_(o.slot_) { o.slot_ = nullptr; }
    Guard& operator=(Guard&& o) noexcept {
      if (this != &o) {
        release();
        slot_ = o.slot_;
        o.slot_ = nullptr;
      }
      return *this;
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard() { release(); }

   private:
    friend class EpochManager;
    explicit Guard(std::atomic<uint64_t>* slot) : slot_(slot) {}
    void release() {
      if (slot_ != nullptr) {
        slot_->store(kIdle, std::memory_order_seq_cst);
        slot_ = nullptr;
      }
    }
    // nullptr for a nested (no-op) guard: the outer pin already protects.
    std::atomic<uint64_t>* slot_ = nullptr;
  };

  Guard pin() {
    std::atomic<uint64_t>& slot = slots_[par::Scheduler::participant_id()].e;
    if (slot.load(std::memory_order_relaxed) != kIdle) {
      return Guard(nullptr);  // nested pin: keep the outer epoch
    }
    // Publish the pin, then confirm the epoch did not advance underneath —
    // one retry round keeps the published pin at most one epoch stale,
    // which tightens (but is not required by) the reclamation bound.
    uint64_t e = global_.load(std::memory_order_seq_cst);
    slot.store(e, std::memory_order_seq_cst);
    uint64_t now = global_.load(std::memory_order_seq_cst);
    if (now != e) slot.store(now, std::memory_order_seq_cst);
    return Guard(&slot);
  }

  uint64_t current() const { return global_.load(std::memory_order_seq_cst); }

  // Writer-side: advance the global epoch; returns the NEW value, used as
  // the retire stamp of whatever became unreachable before the advance.
  uint64_t advance() {
    return global_.fetch_add(1, std::memory_order_seq_cst) + 1;
  }

  // Oldest pinned epoch, or current() when nothing is pinned. Objects
  // retired with stamp E are reclaimable once min_active() >= E.
  uint64_t min_active() const {
    uint64_t min = current();
    for (const Slot& s : slots_) {
      uint64_t e = s.e.load(std::memory_order_seq_cst);
      if (e != kIdle && e < min) min = e;
    }
    return min;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> e{kIdle};
  };
  std::atomic<uint64_t> global_{1};
  std::vector<Slot> slots_;  // indexed by Scheduler::participant_id()
};

}  // namespace cpma::serve
