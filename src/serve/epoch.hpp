// Epoch-based reclamation for the serving layer's read snapshots.
//
// The serving layer (serve/serving.hpp) publishes immutable snapshot views
// through a single atomic pointer; readers must be able to keep using a view
// after the writer has replaced it, and the writer must eventually free
// replaced views without ever making a reader wait. Classic epoch-based
// reclamation (EBR) gives exactly that:
//
//  * A global epoch counter only the writer advances.
//  * One pin slot per participating thread (dense ids from
//    par::Scheduler::participant_id()). A reader PINS by publishing the
//    current global epoch into its slot before it dereferences the snapshot
//    pointer, and UNPINS by restoring the idle sentinel. Pins are two
//    relaxed-cost atomic stores plus loads — readers never take a lock and
//    never block on the writer.
//  * When the writer retires a view it stamps it with the post-advance
//    epoch E. Any reader still holding the old view pinned an epoch < E
//    (the seq_cst ordering between the snapshot swap, the advance, and the
//    reader's pin-then-load sequence makes this exact, not approximate), so
//    the view is reclaimable once min_active() >= E.
//
// Safety argument (all marked operations are seq_cst, so they have one
// total order): the writer swaps the snapshot pointer and THEN advances the
// epoch to E; a reader stores its pin p and THEN loads the pointer. If the
// reader obtained the old view, its pointer load preceded the swap, hence
// its pin store preceded the advance, hence p < E and the pin stays visible
// to every later min_active() scan until the reader unpins. Conversely a
// reader that pins p >= E loads the pointer after the swap and gets the new
// view. Therefore min_active() >= E proves no reader holds the old view.
//
// Nesting: a thread that pins while already pinned keeps its outer (older)
// epoch — conservative and safe. Guards must be destroyed on the thread
// that created them.
//
// Overflow: participant ids >= the slot-array capacity (the scheduler keeps
// handing ids out past kMaxParticipants rather than aborting) share ONE
// refcounted overflow slot, taken under a mutex. The shared slot keeps the
// epoch of the OLDEST overflow pin until every overflow guard releases —
// strictly more conservative than a per-thread pin (min_active() can only
// be lower), so the reclamation proof is unchanged; the cost is that a
// burst of >capacity threads contends on one mutex and can hold retired
// views a little longer. Degradation, not corruption.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "parallel/scheduler.hpp"

namespace cpma::serve {

class EpochManager {
 public:
  static constexpr uint64_t kIdle = UINT64_MAX;

  explicit EpochManager(uint64_t max_slots = par::Scheduler::kMaxParticipants)
      : slots_(max_slots == 0 ? 1 : max_slots) {}
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  // RAII pin of the current epoch for the calling thread.
  class Guard {
   public:
    Guard() = default;
    Guard(Guard&& o) noexcept : slot_(o.slot_), overflow_mgr_(o.overflow_mgr_) {
      o.slot_ = nullptr;
      o.overflow_mgr_ = nullptr;
    }
    Guard& operator=(Guard&& o) noexcept {
      if (this != &o) {
        release();
        slot_ = o.slot_;
        overflow_mgr_ = o.overflow_mgr_;
        o.slot_ = nullptr;
        o.overflow_mgr_ = nullptr;
      }
      return *this;
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard() { release(); }

   private:
    friend class EpochManager;
    explicit Guard(std::atomic<uint64_t>* slot) : slot_(slot) {}
    explicit Guard(EpochManager* overflow_mgr) : overflow_mgr_(overflow_mgr) {}
    void release() {
      if (slot_ != nullptr) {
        slot_->store(kIdle, std::memory_order_seq_cst);
        slot_ = nullptr;
      } else if (overflow_mgr_ != nullptr) {
        overflow_mgr_->release_overflow();
        overflow_mgr_ = nullptr;
      }
    }
    // nullptr for a nested (no-op) guard: the outer pin already protects.
    std::atomic<uint64_t>* slot_ = nullptr;
    // Set instead of slot_ for overflow pins (shared refcounted slot).
    EpochManager* overflow_mgr_ = nullptr;
  };

  Guard pin() {
    const unsigned id = par::Scheduler::participant_id();
    if (id >= slots_.size()) return pin_overflow();
    std::atomic<uint64_t>& slot = slots_[id].e;
    if (slot.load(std::memory_order_relaxed) != kIdle) {
      // Nested pin: the outer pin already protects; hand out a no-op guard.
      return Guard(static_cast<std::atomic<uint64_t>*>(nullptr));
    }
    // Publish the pin, then confirm the epoch did not advance underneath —
    // one retry round keeps the published pin at most one epoch stale,
    // which tightens (but is not required by) the reclamation bound.
    uint64_t e = global_.load(std::memory_order_seq_cst);
    slot.store(e, std::memory_order_seq_cst);
    uint64_t now = global_.load(std::memory_order_seq_cst);
    if (now != e) slot.store(now, std::memory_order_seq_cst);
    return Guard(&slot);
  }

  uint64_t current() const { return global_.load(std::memory_order_seq_cst); }

  // Writer-side: advance the global epoch; returns the NEW value, used as
  // the retire stamp of whatever became unreachable before the advance.
  uint64_t advance() {
    return global_.fetch_add(1, std::memory_order_seq_cst) + 1;
  }

  // Oldest pinned epoch, or current() when nothing is pinned. Objects
  // retired with stamp E are reclaimable once min_active() >= E.
  uint64_t min_active() const {
    uint64_t min = current();
    for (const Slot& s : slots_) {
      uint64_t e = s.e.load(std::memory_order_seq_cst);
      if (e != kIdle && e < min) min = e;
    }
    uint64_t e = overflow_slot_.e.load(std::memory_order_seq_cst);
    if (e != kIdle && e < min) min = e;
    return min;
  }

  uint64_t num_slots() const { return slots_.size(); }
  // Live overflow pins (threads with id >= num_slots), for tests/metrics.
  uint64_t overflow_pins() const {
    std::lock_guard<std::mutex> lock(overflow_mutex_);
    return overflow_count_;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> e{kIdle};
  };

  // Shared pin for every thread whose participant id exceeds the slot
  // array. The first pinner publishes the epoch; later pinners (and nested
  // pins — the refcount subsumes per-thread nesting) keep that OLDER epoch,
  // which only makes min_active() more conservative. The slot idles when
  // the last overflow guard releases.
  Guard pin_overflow() {
    std::lock_guard<std::mutex> lock(overflow_mutex_);
    if (overflow_count_ == 0) {
      uint64_t e = global_.load(std::memory_order_seq_cst);
      overflow_slot_.e.store(e, std::memory_order_seq_cst);
      uint64_t now = global_.load(std::memory_order_seq_cst);
      if (now != e) overflow_slot_.e.store(now, std::memory_order_seq_cst);
    }
    ++overflow_count_;
    return Guard(this);
  }

  void release_overflow() {
    std::lock_guard<std::mutex> lock(overflow_mutex_);
    if (--overflow_count_ == 0) {
      overflow_slot_.e.store(kIdle, std::memory_order_seq_cst);
    }
  }

  std::atomic<uint64_t> global_{1};
  std::vector<Slot> slots_;  // indexed by Scheduler::participant_id()
  mutable std::mutex overflow_mutex_;
  uint64_t overflow_count_ = 0;
  Slot overflow_slot_;
};

}  // namespace cpma::serve
