// ServingPMA<Engine> — concurrent reads while ingesting, on the sharding
// seam.
//
// Everything below pma/ is phase-based fork-join: a batch runs, then
// queries run. This layer turns the composition into a serving system:
//
//   writer side                       reader side
//   -----------                      -----------
//   ShardedPMA<Engine> store_        epoch-pinned SnapshotView
//   (single writer, full batch       (immutable; raw pointers; never
//    parallelism inside)              blocks, never takes a lock)
//
//  * READS: snapshot() pins the current epoch and returns an accessor over
//    the latest published SnapshotView — the full read API (has, successor,
//    min/max, map/map_range/map_range_length, iteration) against a frozen,
//    consistent picture of the set. The pin keeps the view (and every shard
//    engine it shares) alive across any number of concurrent batch applies,
//    rebalances, and republishes; dropping the guard lets the writer
//    reclaim. Readers NEVER block on the writer: the handoff is one atomic
//    pointer load under two atomic slot stores.
//  * WRITES: a single writer applies batches to store_ under writer_mutex_
//    (the engine pipeline keeps its internal fork-join parallelism), then
//    publishes a fresh view. Publishing is copy-on-write at shard
//    granularity: per-shard version counters (the publish hooks on
//    ShardedPMA) tell the publisher which shard engines changed; unchanged
//    shards are shared with the previous view.
//  * INGEST FRONT END: many client threads call insert()/remove(); ops are
//    routed by the published splitters into per-shard CombiningQueues and
//    applied by a flat combiner — the client whose enqueue crosses
//    combine_batch volunteers (try_lock; never blocks) or an explicit
//    poll()/flush() drains queues past their size/age thresholds. Queue
//    slices go through the sharded batch router, so splitter drift between
//    enqueue-time routing and apply time is harmless (the router re-routes).
//
// Publish cadence ("when do readers see a batch"): flush() is always
// immediate. Otherwise a publish runs after a write when EITHER
//  * publish_eager is set (tests), OR
//  * the accumulated publish cost stays within publish_budget of the
//    accumulated apply cost (self-tuning: snapshotting is bounded to a
//    fixed fraction of ingest work, whatever the machine), OR
//  * the current view is older than max_staleness_ns (hard freshness cap).
// So a reader observes a batch no later than one publish interval after its
// apply; with the defaults that is a few percent of ingest time, capped at
// max_staleness_ns.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "pma/sharded.hpp"
#include "serve/combiner.hpp"
#include "serve/epoch.hpp"
#include "serve/snapshot.hpp"
#include "util/env.hpp"

namespace cpma::serve {

// What a client's insert()/remove() does when its shard queue is at
// queue_cap: kBlock waits (bounded by block_deadline_ns, re-volunteering
// as the combiner while it waits) then fails; kReject fails immediately.
// try_insert()/try_remove() always take the reject path.
enum class Admission : uint8_t { kBlock, kReject };

struct ServingSettings {
  // Write-side composition (shard count, rebalance policy, engine bounds).
  pma::ShardedSettings sharded;

  // Flat-combining flush thresholds: a queue is due when it holds this many
  // ops, or when its oldest op is older than max_combine_delay_ns (age
  // flushes happen on the next combiner pass / poll()).
  uint64_t combine_batch = 4096;
  uint64_t max_combine_delay_ns = 2'000'000;  // 2 ms

  // Publish cadence (see file header). Budget is publish-time over
  // apply-time; 0.05 bounds snapshotting to ~5% of ingest work.
  double publish_budget = 0.05;
  uint64_t max_staleness_ns = 100'000'000;  // 100 ms
  // Publish after every write regardless of cost — deterministic visibility
  // for tests and read-mostly workloads.
  bool publish_eager = false;

  // Ingest backpressure: per-shard queue cap (0 = unbounded, the pre-cap
  // behavior) and what a full queue does to the client. The env override
  // lets deployments bound ingest memory without a rebuild.
  uint64_t queue_cap = util::env_u64("CPMA_SERVE_QUEUE_CAP", 0);
  Admission admission = Admission::kBlock;
  uint64_t block_deadline_ns = 100'000'000;  // 100 ms
};

struct ServingStats {
  uint64_t publishes = 0;      // views published
  uint64_t shard_copies = 0;   // shard engines copied across all publishes
  uint64_t combines = 0;       // combiner passes that applied ops
  uint64_t combined_ops = 0;   // ops applied through the combiner
  uint64_t publish_ns = 0;     // total time in publish (copy + swap)
  uint64_t apply_ns = 0;       // total time applying writes to the store
  uint64_t retired_views = 0;  // retired, not yet reclaimed
  uint64_t reclaimed_views = 0;
  uint64_t vetoed_ops = 0;     // ops refused by the write observer (WAL down)
};

// Per-shard ingest front-end counters (serving_stats()): live queue depth
// plus cumulative admission-policy outcomes.
struct ShardQueueStats {
  uint64_t depth = 0;     // ops currently queued
  uint64_t rejected = 0;  // ops turned away (reject policy / deadline)
  uint64_t blocked = 0;   // block events (client waited at the cap)
};

// Called by the serving layer UNDER THE WRITER LOCK immediately before a
// run of same-op keys is applied to the store — the seam the durability
// layer (src/durable/) hangs its WAL on. Returning false vetoes the apply:
// the keys are dropped and counted in ServingStats::vetoed_ops (a WAL that
// cannot log must not let unlogged writes through).
class WriteObserver {
 public:
  virtual ~WriteObserver() = default;
  virtual bool before_apply(const uint64_t* keys, uint64_t n,
                            bool is_insert) = 0;
};

template <typename Engine>
class ServingPMA {
 public:
  using key_type = uint64_t;
  using engine_type = Engine;
  using View = SnapshotView<Engine>;

  explicit ServingPMA(ServingSettings settings = {})
      : settings_(settings), store_(settings.sharded) {
    queues_ = std::vector<CombiningQueue>(store_.num_shards());
    snap_versions_.assign(store_.num_shards(), 0);
    std::lock_guard<std::mutex> lock(writer_mutex_);
    publish_locked(/*forced=*/true);
  }

  // Bulk construction: build the store, then publish the first view.
  ServingPMA(const key_type* start, const key_type* end,
             ServingSettings settings = {})
      : settings_(settings), store_(start, end, settings.sharded) {
    queues_ = std::vector<CombiningQueue>(store_.num_shards());
    snap_versions_.assign(store_.num_shards(), 0);
    std::lock_guard<std::mutex> lock(writer_mutex_);
    publish_locked(/*forced=*/true);
  }

  // Adopt an already-built store (the durability layer restores a
  // ShardedPMA from checkpoint + WAL replay, then starts serving on it).
  // settings.sharded is ignored — the adopted store brings its own.
  explicit ServingPMA(pma::ShardedPMA<Engine>&& store,
                      ServingSettings settings = {})
      : settings_(settings), store_(std::move(store)) {
    queues_ = std::vector<CombiningQueue>(store_.num_shards());
    snap_versions_.assign(store_.num_shards(), 0);
    std::lock_guard<std::mutex> lock(writer_mutex_);
    publish_locked(/*forced=*/true);
  }

  // ---- read side ----------------------------------------------------------

  // An epoch-pinned accessor over one immutable view. Movable; keep it only
  // as long as needed — a held pin delays reclamation of every view
  // published since (bounded memory: one engine copy per dirty shard per
  // retired view).
  class Snapshot {
   public:
    bool has(key_type key) const { return view_->has(key); }
    std::optional<key_type> successor(key_type key) const {
      return view_->successor(key);
    }
    std::optional<key_type> min() const { return view_->min(); }
    std::optional<key_type> max() const { return view_->max(); }
    uint64_t size() const { return view_->size(); }
    bool empty() const { return view_->empty(); }
    template <typename F>
    void map(F&& f) const {
      view_->map(std::forward<F>(f));
    }
    template <typename F>
    void map_range(F&& f, key_type start, key_type end) const {
      view_->map_range(std::forward<F>(f), start, end);
    }
    template <typename F>
    uint64_t map_range_length(F&& f, key_type start, uint64_t length) const {
      return view_->map_range_length(std::forward<F>(f), start, length);
    }
    // Amortized batch reads (SnapshotView::has_batch etc.): the multi-get
    // surface — one pin, one routed pass, one decode per touched leaf,
    // instead of a descent per key.
    void has_batch(const key_type* keys, uint64_t n, uint64_t* bits,
                   uint64_t bit_base = 0) const {
      view_->has_batch(keys, n, bits, bit_base);
    }
    std::vector<uint64_t> has_batch(const key_type* keys, uint64_t n) const {
      return view_->has_batch(keys, n);
    }
    void successor_batch(const key_type* keys, uint64_t n, key_type* out,
                         uint64_t* found, uint64_t bit_base = 0) const {
      view_->successor_batch(keys, n, out, found, bit_base);
    }
    template <typename F>
    void map_ranges(const std::pair<key_type, key_type>* ranges, uint64_t m,
                    F&& f) const {
      view_->map_ranges(ranges, m, std::forward<F>(f));
    }
    typename View::const_iterator begin() const { return view_->begin(); }
    typename View::const_iterator end() const { return view_->end(); }
    const View& view() const { return *view_; }

    // Which published view this pin holds, and how stale it is right now
    // (both writer-clock based; seq is monotone across publishes).
    uint64_t publish_seq() const { return view_->publish_seq(); }
    uint64_t age_ns() const {
      return steady_now_ns() - view_->publish_time_ns();
    }

   private:
    friend class ServingPMA;
    Snapshot(EpochManager::Guard guard, const View* view)
        : guard_(std::move(guard)), view_(view) {}
    EpochManager::Guard guard_;
    const View* view_;
  };

  Snapshot snapshot() const {
    // Pin FIRST, then load the pointer — the order the reclamation proof
    // rests on (serve/epoch.hpp).
    EpochManager::Guard guard = epochs_.pin();
    const View* v = holder_.acquire();
    return Snapshot(std::move(guard), v);
  }

  // Pin-per-call conveniences for single point reads.
  bool has(key_type key) const { return snapshot().has(key); }
  std::optional<key_type> successor(key_type key) const {
    return snapshot().successor(key);
  }
  uint64_t size() const { return snapshot().size(); }

  // Pin-per-call batch reads: one pin covers the whole batch, so a client
  // multi-get costs one epoch pin + one routed pass over the view.
  std::vector<uint64_t> has_batch(const key_type* keys, uint64_t n) const {
    return snapshot().has_batch(keys, n);
  }
  void successor_batch(const key_type* keys, uint64_t n, key_type* out,
                       uint64_t* found) const {
    snapshot().successor_batch(keys, n, out, found);
  }

  // ---- ingest front end (any client thread) -------------------------------

  // Returns whether the op was admitted (always true with queue_cap == 0).
  // A false return means the shard queue stayed at the cap through the
  // admission policy — the op was NOT enqueued and will never apply.
  bool insert(key_type key) {
    return enqueue(key, /*is_insert=*/true,
                   settings_.admission == Admission::kBlock);
  }
  bool remove(key_type key) {
    return enqueue(key, /*is_insert=*/false,
                   settings_.admission == Admission::kBlock);
  }

  // Never-blocking admission regardless of the configured policy: a full
  // queue fails immediately.
  bool try_insert(key_type key) {
    return enqueue(key, /*is_insert=*/true, /*allow_block=*/false);
  }
  bool try_remove(key_type key) {
    return enqueue(key, /*is_insert=*/false, /*allow_block=*/false);
  }

  // Combiner tick: drain every queue past its size/age threshold and
  // publish if due. Safe from any thread; blocks on the writer lock (use it
  // from a dedicated combiner/writer thread, not from latency-sensitive
  // clients — clients combine opportunistically via try_lock instead).
  uint64_t poll() {
    std::lock_guard<std::mutex> lock(writer_mutex_);
    return combine_locked(/*force_all=*/false);
  }

  // Drains ALL queued ops and publishes immediately: after flush() returns,
  // every op enqueued before it is visible to new snapshots.
  void flush() {
    std::lock_guard<std::mutex> lock(writer_mutex_);
    combine_locked(/*force_all=*/true);
    publish_locked(/*forced=*/true);
  }

  // flush(), then run `f` while STILL HOLDING the writer lock — so between
  // the forced publish and f's return no write can apply. The durability
  // layer uses this as its checkpoint cut: f pins the just-published
  // snapshot, records the WAL position, and rotates segments, all against
  // one quiescent point. f must not call back into write paths (deadlock)
  // — snapshot()/reads are fine.
  template <typename F>
  void flush_with(F&& f) {
    std::lock_guard<std::mutex> lock(writer_mutex_);
    combine_locked(/*force_all=*/true);
    publish_locked(/*forced=*/true);
    f();
  }

  // Installs (or clears, with nullptr) the pre-apply hook. Takes the writer
  // lock so the swap cannot race an in-flight apply.
  void set_write_observer(WriteObserver* observer) {
    std::lock_guard<std::mutex> lock(writer_mutex_);
    observer_ = observer;
  }

  // ---- synchronous batch writes (single writer thread) --------------------

  uint64_t insert_batch(key_type* input, uint64_t n, bool sorted = false) {
    std::lock_guard<std::mutex> lock(writer_mutex_);
    if (!observe_apply(input, n, /*is_insert=*/true)) return 0;
    detail_timer t;
    uint64_t delta = store_.insert_batch(input, n, sorted);
    stats_.apply_ns += t.lap();
    publish_locked(/*forced=*/false);
    return delta;
  }
  uint64_t insert_batch(std::vector<key_type> batch, bool sorted = false) {
    return insert_batch(batch.data(), batch.size(), sorted);
  }

  uint64_t remove_batch(key_type* input, uint64_t n, bool sorted = false) {
    std::lock_guard<std::mutex> lock(writer_mutex_);
    if (!observe_apply(input, n, /*is_insert=*/false)) return 0;
    detail_timer t;
    uint64_t delta = store_.remove_batch(input, n, sorted);
    stats_.apply_ns += t.lap();
    publish_locked(/*forced=*/false);
    return delta;
  }
  uint64_t remove_batch(std::vector<key_type> batch, bool sorted = false) {
    return remove_batch(batch.data(), batch.size(), sorted);
  }

  // ---- introspection (writer side) ----------------------------------------

  // The authoritative write-side structure. Mutating it directly bypasses
  // version tracking ONLY if done outside its public API; the intended use
  // is read-only inspection (phase times, invariants) from the writer.
  const pma::ShardedPMA<Engine>& store() const { return store_; }
  const ServingSettings& settings() const { return settings_; }

  ServingStats stats() const {
    ServingStats s = stats_;
    s.retired_views = holder_.retired_count();
    s.reclaimed_views = holder_.reclaimed_count();
    return s;
  }

  // Per-shard ingest queue counters — the overload observability surface
  // (depth now, ops rejected, block events). Lock-free reads; counters are
  // cumulative since construction.
  std::vector<ShardQueueStats> serving_stats() const {
    std::vector<ShardQueueStats> out(queues_.size());
    for (uint64_t s = 0; s < queues_.size(); ++s) {
      out[s].depth = queues_[s].pending();
      out[s].rejected = queues_[s].rejected();
      out[s].blocked = queues_[s].blocked();
    }
    return out;
  }

 private:
  using detail_timer = pma::detail::PhaseTimer;

  bool enqueue(key_type key, bool is_insert, bool allow_block) {
    uint64_t s;
    {
      // Route against the published splitters (stable under the pin). Drift
      // vs the store's live splitters only costs queue locality — the
      // combiner re-routes through the sharded batch dispatch.
      Snapshot snap = snapshot();
      const std::vector<key_type>& sp = snap.view().splitters();
      s = static_cast<uint64_t>(
          std::upper_bound(sp.begin(), sp.end(), key) - sp.begin());
    }
    const uint64_t cap = settings_.queue_cap;
    uint64_t pending;
    if (cap == 0) {
      pending = queues_[s].push(key, is_insert);
    } else {
      pending = queues_[s].try_push(key, is_insert, cap);
      if (pending == 0 && allow_block) {
        pending = enqueue_blocking(s, key, is_insert, cap);
      }
      if (pending == 0) {
        queues_[s].count_rejected();
        return false;
      }
    }
    if (pending >= settings_.combine_batch) {
      // Volunteer as the combiner — but never wait: a held lock means an
      // active combiner/writer will pick this queue up.
      std::unique_lock<std::mutex> lock(writer_mutex_, std::try_to_lock);
      if (lock.owns_lock()) combine_locked(/*force_all=*/false);
    }
    return true;
  }

  // Block-with-deadline admission: alternate volunteering as the combiner
  // (someone has to drain the queue we are waiting on — if every client
  // just waited, a system with no dedicated combiner thread would
  // deadlock at the cap) with bounded waits on the queue's not-full
  // signal. Returns the post-push pending count, or 0 on deadline.
  uint64_t enqueue_blocking(uint64_t s, key_type key, bool is_insert,
                            uint64_t cap) {
    queues_[s].count_blocked();
    const uint64_t deadline = steady_now_ns() + settings_.block_deadline_ns;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(writer_mutex_, std::try_to_lock);
        if (lock.owns_lock()) combine_locked(/*force_all=*/true);
      }
      uint64_t pending = queues_[s].try_push(key, is_insert, cap);
      if (pending != 0) return pending;
      const uint64_t now = steady_now_ns();
      if (now >= deadline) return 0;
      // Short wait slices keep a combine volunteer in the loop even if the
      // drain notification is missed (e.g. another client refills the
      // queue between drain and our retry).
      queues_[s].wait_below(cap, std::min(now + 1'000'000, deadline));
    }
  }

  // Drains due (or all) queues, applying each slice as FIFO-ordered maximal
  // same-op runs through the sharded batch router. Returns ops applied.
  uint64_t combine_locked(bool force_all) {
    uint64_t applied = 0;
    bool progress = true;
    // Keep sweeping until no queue is due: clients that enqueued while we
    // were applying are served by this pass instead of waiting for the next
    // threshold crossing.
    while (progress) {
      progress = false;
      const uint64_t now = steady_now_ns();
      for (CombiningQueue& q : queues_) {
        if (!force_all && !q.due(settings_.combine_batch,
                                 settings_.max_combine_delay_ns, now)) {
          continue;
        }
        if (q.drain(drain_buf_) == 0) continue;
        progress = true;
        applied += drain_buf_.size();
        detail_timer t;
        uint64_t i = 0, n = drain_buf_.size();
        while (i < n) {
          const bool is_insert = drain_buf_[i].is_insert;
          run_buf_.clear();
          while (i < n && drain_buf_[i].is_insert == is_insert) {
            run_buf_.push_back(drain_buf_[i].key);
            ++i;
          }
          if (!observe_apply(run_buf_.data(), run_buf_.size(), is_insert)) {
            continue;  // vetoed: the run is dropped, counted in vetoed_ops
          }
          if (is_insert) {
            store_.insert_batch(run_buf_.data(), run_buf_.size());
          } else {
            store_.remove_batch(run_buf_.data(), run_buf_.size());
          }
        }
        stats_.apply_ns += t.lap();
      }
    }
    if (applied > 0) {
      ++stats_.combines;
      stats_.combined_ops += applied;
      publish_locked(/*forced=*/false);
    }
    return applied;
  }

  // Pre-apply hook dispatch (writer lock held). No observer -> always OK.
  bool observe_apply(const key_type* keys, uint64_t n, bool is_insert) {
    if (n == 0) return true;
    if (observer_ != nullptr &&
        !observer_->before_apply(keys, n, is_insert)) {
      stats_.vetoed_ops += n;
      return false;
    }
    return true;
  }

  bool publish_due() const {
    if (settings_.publish_eager) return true;
    // Budget rule: total publish time stays within publish_budget of total
    // apply time. The staleness cap overrides a starved budget.
    if (static_cast<double>(stats_.publish_ns) <=
        settings_.publish_budget * static_cast<double>(stats_.apply_ns)) {
      return true;
    }
    return steady_now_ns() - last_publish_ns_ >= settings_.max_staleness_ns;
  }

  void publish_locked(bool forced) {
    if (!forced && !publish_due()) return;
    detail_timer t;
    const View* old = holder_.acquire();
    std::vector<std::shared_ptr<const Engine>> shards(store_.num_shards());
    for (uint64_t s = 0; s < store_.num_shards(); ++s) {
      const uint64_t v = store_.shard_version(s);
      if (old != nullptr && snap_versions_[s] == v) {
        shards[s] = old->shard_ref(s);  // unchanged: share with the old view
      } else {
        shards[s] = std::make_shared<const Engine>(store_.shard(s));
        snap_versions_[s] = v;
        ++stats_.shard_copies;
      }
    }
    holder_.publish(
        std::make_unique<const View>(store_.splitters(), std::move(shards),
                                     stats_.publishes + 1, steady_now_ns()),
        epochs_);
    ++stats_.publishes;
    stats_.publish_ns += t.lap();
    last_publish_ns_ = steady_now_ns();
  }

  ServingSettings settings_;
  pma::ShardedPMA<Engine> store_;   // writer-only
  mutable EpochManager epochs_;     // pin() from reader threads
  SnapshotHolder<View> holder_;     // acquire() from readers, rest writer
  std::mutex writer_mutex_;
  std::vector<CombiningQueue> queues_;    // one per shard
  std::vector<uint64_t> snap_versions_;   // shard versions in current view
  std::vector<CombiningQueue::Op> drain_buf_;  // combiner scratch (writer)
  std::vector<key_type> run_buf_;
  uint64_t last_publish_ns_ = 0;
  ServingStats stats_;
  WriteObserver* observer_ = nullptr;  // written/read under writer_mutex_
};

}  // namespace cpma::serve
