// ServingPMA<Engine> — concurrent reads while ingesting, on the sharding
// seam.
//
// Everything below pma/ is phase-based fork-join: a batch runs, then
// queries run. This layer turns the composition into a serving system:
//
//   writer side                       reader side
//   -----------                      -----------
//   ShardedPMA<Engine> store_        epoch-pinned SnapshotView
//   (single writer, full batch       (immutable; raw pointers; never
//    parallelism inside)              blocks, never takes a lock)
//
//  * READS: snapshot() pins the current epoch and returns an accessor over
//    the latest published SnapshotView — the full read API (has, successor,
//    min/max, map/map_range/map_range_length, iteration) against a frozen,
//    consistent picture of the set. The pin keeps the view (and every shard
//    engine it shares) alive across any number of concurrent batch applies,
//    rebalances, and republishes; dropping the guard lets the writer
//    reclaim. Readers NEVER block on the writer: the handoff is one atomic
//    pointer load under two atomic slot stores.
//  * WRITES: a single writer applies batches to store_ under writer_mutex_
//    (the engine pipeline keeps its internal fork-join parallelism), then
//    publishes a fresh view. Publishing is copy-on-write at shard
//    granularity: per-shard version counters (the publish hooks on
//    ShardedPMA) tell the publisher which shard engines changed; unchanged
//    shards are shared with the previous view.
//  * INGEST FRONT END: many client threads call insert()/remove(); ops are
//    routed by the published splitters into per-shard CombiningQueues and
//    applied by a flat combiner — the client whose enqueue crosses
//    combine_batch volunteers (try_lock; never blocks) or an explicit
//    poll()/flush() drains queues past their size/age thresholds. Queue
//    slices go through the sharded batch router, so splitter drift between
//    enqueue-time routing and apply time is harmless (the router re-routes).
//
// Publish cadence ("when do readers see a batch"): flush() is always
// immediate. Otherwise a publish runs after a write when EITHER
//  * publish_eager is set (tests), OR
//  * the accumulated publish cost stays within publish_budget of the
//    accumulated apply cost (self-tuning: snapshotting is bounded to a
//    fixed fraction of ingest work, whatever the machine), OR
//  * the current view is older than max_staleness_ns (hard freshness cap).
// So a reader observes a batch no later than one publish interval after its
// apply; with the defaults that is a few percent of ingest time, capped at
// max_staleness_ns.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "pma/sharded.hpp"
#include "serve/combiner.hpp"
#include "serve/epoch.hpp"
#include "serve/snapshot.hpp"

namespace cpma::serve {

struct ServingSettings {
  // Write-side composition (shard count, rebalance policy, engine bounds).
  pma::ShardedSettings sharded;

  // Flat-combining flush thresholds: a queue is due when it holds this many
  // ops, or when its oldest op is older than max_combine_delay_ns (age
  // flushes happen on the next combiner pass / poll()).
  uint64_t combine_batch = 4096;
  uint64_t max_combine_delay_ns = 2'000'000;  // 2 ms

  // Publish cadence (see file header). Budget is publish-time over
  // apply-time; 0.05 bounds snapshotting to ~5% of ingest work.
  double publish_budget = 0.05;
  uint64_t max_staleness_ns = 100'000'000;  // 100 ms
  // Publish after every write regardless of cost — deterministic visibility
  // for tests and read-mostly workloads.
  bool publish_eager = false;
};

struct ServingStats {
  uint64_t publishes = 0;      // views published
  uint64_t shard_copies = 0;   // shard engines copied across all publishes
  uint64_t combines = 0;       // combiner passes that applied ops
  uint64_t combined_ops = 0;   // ops applied through the combiner
  uint64_t publish_ns = 0;     // total time in publish (copy + swap)
  uint64_t apply_ns = 0;       // total time applying writes to the store
  uint64_t retired_views = 0;  // retired, not yet reclaimed
  uint64_t reclaimed_views = 0;
};

template <typename Engine>
class ServingPMA {
 public:
  using key_type = uint64_t;
  using engine_type = Engine;
  using View = SnapshotView<Engine>;

  explicit ServingPMA(ServingSettings settings = {})
      : settings_(settings), store_(settings.sharded) {
    queues_ = std::vector<CombiningQueue>(store_.num_shards());
    snap_versions_.assign(store_.num_shards(), 0);
    std::lock_guard<std::mutex> lock(writer_mutex_);
    publish_locked(/*forced=*/true);
  }

  // Bulk construction: build the store, then publish the first view.
  ServingPMA(const key_type* start, const key_type* end,
             ServingSettings settings = {})
      : settings_(settings), store_(start, end, settings.sharded) {
    queues_ = std::vector<CombiningQueue>(store_.num_shards());
    snap_versions_.assign(store_.num_shards(), 0);
    std::lock_guard<std::mutex> lock(writer_mutex_);
    publish_locked(/*forced=*/true);
  }

  // ---- read side ----------------------------------------------------------

  // An epoch-pinned accessor over one immutable view. Movable; keep it only
  // as long as needed — a held pin delays reclamation of every view
  // published since (bounded memory: one engine copy per dirty shard per
  // retired view).
  class Snapshot {
   public:
    bool has(key_type key) const { return view_->has(key); }
    std::optional<key_type> successor(key_type key) const {
      return view_->successor(key);
    }
    std::optional<key_type> min() const { return view_->min(); }
    std::optional<key_type> max() const { return view_->max(); }
    uint64_t size() const { return view_->size(); }
    bool empty() const { return view_->empty(); }
    template <typename F>
    void map(F&& f) const {
      view_->map(std::forward<F>(f));
    }
    template <typename F>
    void map_range(F&& f, key_type start, key_type end) const {
      view_->map_range(std::forward<F>(f), start, end);
    }
    template <typename F>
    uint64_t map_range_length(F&& f, key_type start, uint64_t length) const {
      return view_->map_range_length(std::forward<F>(f), start, length);
    }
    typename View::const_iterator begin() const { return view_->begin(); }
    typename View::const_iterator end() const { return view_->end(); }
    const View& view() const { return *view_; }

   private:
    friend class ServingPMA;
    Snapshot(EpochManager::Guard guard, const View* view)
        : guard_(std::move(guard)), view_(view) {}
    EpochManager::Guard guard_;
    const View* view_;
  };

  Snapshot snapshot() const {
    // Pin FIRST, then load the pointer — the order the reclamation proof
    // rests on (serve/epoch.hpp).
    EpochManager::Guard guard = epochs_.pin();
    const View* v = holder_.acquire();
    return Snapshot(std::move(guard), v);
  }

  // Pin-per-call conveniences for single point reads.
  bool has(key_type key) const { return snapshot().has(key); }
  std::optional<key_type> successor(key_type key) const {
    return snapshot().successor(key);
  }
  uint64_t size() const { return snapshot().size(); }

  // ---- ingest front end (any client thread) -------------------------------

  void insert(key_type key) { enqueue(key, /*is_insert=*/true); }
  void remove(key_type key) { enqueue(key, /*is_insert=*/false); }

  // Combiner tick: drain every queue past its size/age threshold and
  // publish if due. Safe from any thread; blocks on the writer lock (use it
  // from a dedicated combiner/writer thread, not from latency-sensitive
  // clients — clients combine opportunistically via try_lock instead).
  uint64_t poll() {
    std::lock_guard<std::mutex> lock(writer_mutex_);
    return combine_locked(/*force_all=*/false);
  }

  // Drains ALL queued ops and publishes immediately: after flush() returns,
  // every op enqueued before it is visible to new snapshots.
  void flush() {
    std::lock_guard<std::mutex> lock(writer_mutex_);
    combine_locked(/*force_all=*/true);
    publish_locked(/*forced=*/true);
  }

  // ---- synchronous batch writes (single writer thread) --------------------

  uint64_t insert_batch(key_type* input, uint64_t n, bool sorted = false) {
    std::lock_guard<std::mutex> lock(writer_mutex_);
    detail_timer t;
    uint64_t delta = store_.insert_batch(input, n, sorted);
    stats_.apply_ns += t.lap();
    publish_locked(/*forced=*/false);
    return delta;
  }
  uint64_t insert_batch(std::vector<key_type> batch, bool sorted = false) {
    return insert_batch(batch.data(), batch.size(), sorted);
  }

  uint64_t remove_batch(key_type* input, uint64_t n, bool sorted = false) {
    std::lock_guard<std::mutex> lock(writer_mutex_);
    detail_timer t;
    uint64_t delta = store_.remove_batch(input, n, sorted);
    stats_.apply_ns += t.lap();
    publish_locked(/*forced=*/false);
    return delta;
  }
  uint64_t remove_batch(std::vector<key_type> batch, bool sorted = false) {
    return remove_batch(batch.data(), batch.size(), sorted);
  }

  // ---- introspection (writer side) ----------------------------------------

  // The authoritative write-side structure. Mutating it directly bypasses
  // version tracking ONLY if done outside its public API; the intended use
  // is read-only inspection (phase times, invariants) from the writer.
  const pma::ShardedPMA<Engine>& store() const { return store_; }
  const ServingSettings& settings() const { return settings_; }

  ServingStats stats() const {
    ServingStats s = stats_;
    s.retired_views = holder_.retired_count();
    s.reclaimed_views = holder_.reclaimed_count();
    return s;
  }

 private:
  using detail_timer = pma::detail::PhaseTimer;

  void enqueue(key_type key, bool is_insert) {
    uint64_t pending;
    {
      // Route against the published splitters (stable under the pin). Drift
      // vs the store's live splitters only costs queue locality — the
      // combiner re-routes through the sharded batch dispatch.
      Snapshot snap = snapshot();
      const std::vector<key_type>& sp = snap.view().splitters();
      uint64_t s = static_cast<uint64_t>(
          std::upper_bound(sp.begin(), sp.end(), key) - sp.begin());
      pending = queues_[s].push(key, is_insert);
    }
    if (pending >= settings_.combine_batch) {
      // Volunteer as the combiner — but never wait: a held lock means an
      // active combiner/writer will pick this queue up.
      std::unique_lock<std::mutex> lock(writer_mutex_, std::try_to_lock);
      if (lock.owns_lock()) combine_locked(/*force_all=*/false);
    }
  }

  // Drains due (or all) queues, applying each slice as FIFO-ordered maximal
  // same-op runs through the sharded batch router. Returns ops applied.
  uint64_t combine_locked(bool force_all) {
    uint64_t applied = 0;
    bool progress = true;
    // Keep sweeping until no queue is due: clients that enqueued while we
    // were applying are served by this pass instead of waiting for the next
    // threshold crossing.
    while (progress) {
      progress = false;
      const uint64_t now = steady_now_ns();
      for (CombiningQueue& q : queues_) {
        if (!force_all && !q.due(settings_.combine_batch,
                                 settings_.max_combine_delay_ns, now)) {
          continue;
        }
        if (q.drain(drain_buf_) == 0) continue;
        progress = true;
        applied += drain_buf_.size();
        detail_timer t;
        uint64_t i = 0, n = drain_buf_.size();
        while (i < n) {
          const bool is_insert = drain_buf_[i].is_insert;
          run_buf_.clear();
          while (i < n && drain_buf_[i].is_insert == is_insert) {
            run_buf_.push_back(drain_buf_[i].key);
            ++i;
          }
          if (is_insert) {
            store_.insert_batch(run_buf_.data(), run_buf_.size());
          } else {
            store_.remove_batch(run_buf_.data(), run_buf_.size());
          }
        }
        stats_.apply_ns += t.lap();
      }
    }
    if (applied > 0) {
      ++stats_.combines;
      stats_.combined_ops += applied;
      publish_locked(/*forced=*/false);
    }
    return applied;
  }

  bool publish_due() const {
    if (settings_.publish_eager) return true;
    // Budget rule: total publish time stays within publish_budget of total
    // apply time. The staleness cap overrides a starved budget.
    if (static_cast<double>(stats_.publish_ns) <=
        settings_.publish_budget * static_cast<double>(stats_.apply_ns)) {
      return true;
    }
    return steady_now_ns() - last_publish_ns_ >= settings_.max_staleness_ns;
  }

  void publish_locked(bool forced) {
    if (!forced && !publish_due()) return;
    detail_timer t;
    const View* old = holder_.acquire();
    std::vector<std::shared_ptr<const Engine>> shards(store_.num_shards());
    for (uint64_t s = 0; s < store_.num_shards(); ++s) {
      const uint64_t v = store_.shard_version(s);
      if (old != nullptr && snap_versions_[s] == v) {
        shards[s] = old->shard_ref(s);  // unchanged: share with the old view
      } else {
        shards[s] = std::make_shared<const Engine>(store_.shard(s));
        snap_versions_[s] = v;
        ++stats_.shard_copies;
      }
    }
    holder_.publish(
        std::make_unique<const View>(store_.splitters(), std::move(shards)),
        epochs_);
    ++stats_.publishes;
    stats_.publish_ns += t.lap();
    last_publish_ns_ = steady_now_ns();
  }

  ServingSettings settings_;
  pma::ShardedPMA<Engine> store_;   // writer-only
  mutable EpochManager epochs_;     // pin() from reader threads
  SnapshotHolder<View> holder_;     // acquire() from readers, rest writer
  std::mutex writer_mutex_;
  std::vector<CombiningQueue> queues_;    // one per shard
  std::vector<uint64_t> snap_versions_;   // shard versions in current view
  std::vector<CombiningQueue::Op> drain_buf_;  // combiner scratch (writer)
  std::vector<key_type> run_buf_;
  uint64_t last_publish_ns_ = 0;
  ServingStats stats_;
};

}  // namespace cpma::serve
