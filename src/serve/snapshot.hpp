// Immutable per-shard snapshot views and their epoch-reclaimed holder.
//
// A SnapshotView is one consistent, immutable picture of a ShardedPMA: the
// splitter vector plus one engine snapshot per shard. Shard snapshots are
// whole engine copies held by shared_ptr — copy-on-write at shard
// granularity: when the writer publishes a new view it copies only the
// shards whose version advanced and SHARES the untouched shards' engines
// with the previous view (PaC-tree style functional snapshots, with whole
// pointer-free engines as the shared chunks). Only the writer ever touches
// the shared_ptr control blocks; readers receive a raw `const View*` under
// an epoch pin and navigate raw `const Engine*`s, so the read path is
// refcount-free.
//
// The view exposes the full read API of the sharded structure — has /
// successor / min / max / size / map / map_range / map_range_length /
// iteration — with the same key-order stitching as ShardedPMA (shard
// ranges are disjoint and ascending).
//
// SnapshotHolder owns the single atomic current-view pointer plus the
// retired list: publish() swaps in a new view, stamps the old one with the
// post-advance epoch, and reclaims every retired view no pinned reader can
// still reference (see serve/epoch.hpp for the safety argument).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <iterator>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "pma/flat_leaves.hpp"
#include "serve/epoch.hpp"

namespace cpma::serve {

template <typename Engine>
class SnapshotView {
 public:
  using key_type = uint64_t;
  using engine_type = Engine;

  // publish_seq / publish_time_ns identify WHICH published view a reader is
  // pinned to and WHEN it was cut (writer's steady clock): the streaming
  // graph layer reports snapshot age/staleness from them. Both default to 0
  // for directly-constructed views in tests.
  SnapshotView(std::vector<key_type> splitters,
               std::vector<std::shared_ptr<const Engine>> shards,
               uint64_t publish_seq = 0, uint64_t publish_time_ns = 0)
      : splitters_(std::move(splitters)), shards_(std::move(shards)),
        publish_seq_(publish_seq), publish_time_ns_(publish_time_ns) {}

  uint64_t num_shards() const { return shards_.size(); }
  const Engine& shard(uint64_t s) const { return *shards_[s]; }
  const std::vector<key_type>& splitters() const { return splitters_; }
  const std::shared_ptr<const Engine>& shard_ref(uint64_t s) const {
    return shards_[s];
  }
  uint64_t publish_seq() const { return publish_seq_; }
  uint64_t publish_time_ns() const { return publish_time_ns_; }

  // ---- size ---------------------------------------------------------------

  uint64_t size() const {
    uint64_t total = 0;
    for (const auto& e : shards_) total += e->size();
    return total;
  }

  bool empty() const {
    for (const auto& e : shards_) {
      if (!e->empty()) return false;
    }
    return true;
  }

  // ---- point reads --------------------------------------------------------

  bool has(key_type key) const { return shards_[shard_for(key)]->has(key); }

  std::optional<key_type> successor(key_type key) const {
    for (uint64_t s = shard_for(key); s < shards_.size(); ++s) {
      if (auto v = shards_[s]->successor(key)) return v;
    }
    return std::nullopt;
  }

  std::optional<key_type> min() const {
    for (const auto& e : shards_) {
      if (auto v = e->min()) return v;
    }
    return std::nullopt;
  }

  std::optional<key_type> max() const {
    for (uint64_t s = shards_.size(); s-- > 0;) {
      if (auto v = shards_[s]->max()) return v;
    }
    return std::nullopt;
  }

  // ---- scans --------------------------------------------------------------

  template <typename F>
  void map(F&& f) const {
    for (const auto& e : shards_) e->map(f);
  }

  template <typename F>
  void map_range(F&& f, key_type start, key_type end) const {
    if (start >= end) return;
    for (uint64_t s = shard_for(start); s < shards_.size(); ++s) {
      if (s > 0 && splitters_[s - 1] >= end) break;
      shards_[s]->map_range(f, start, end);
    }
  }

  template <typename F>
  uint64_t map_range_length(F&& f, key_type start, uint64_t length) const {
    uint64_t applied = 0;
    for (uint64_t s = shard_for(start);
         s < shards_.size() && applied < length; ++s) {
      applied += shards_[s]->map_range_length(f, start, length - applied);
    }
    return applied;
  }

  // ---- flattened-leaf iteration (graph vertex index) ----------------------
  // Same advanced-iteration surface as ShardedPMA, over the IMMUTABLE view:
  // positions stay valid for the life of the epoch pin, so the graph layer
  // builds a vertex index over a pinned snapshot while ingest continues.

  using Position = pma::FlatPosition<Engine>;
  using FlatOps = pma::FlatLeafOps<SnapshotView, Engine>;

  uint64_t num_leaves() const { return FlatOps::num_leaves(*this); }

  uint64_t leaf_element_count(uint64_t l) const {
    return FlatOps::leaf_element_count(*this, l);
  }

  template <typename F>
  void scan_leaf_positions(uint64_t l, F&& f) const {
    FlatOps::scan_leaf_positions(*this, l, std::forward<F>(f));
  }

  template <typename F>
  void scan_leaf_keys(uint64_t l, F&& f) const {
    FlatOps::scan_leaf_keys(*this, l, std::forward<F>(f));
  }

  template <typename F>
  void map_from_position(Position pos, F&& f) const {
    FlatOps::map_from_position(*this, pos, std::forward<F>(f));
  }

  // ---- iteration ----------------------------------------------------------

  class const_iterator {
   public:
    using value_type = key_type;
    using difference_type = std::ptrdiff_t;
    using reference = key_type;
    using pointer = const key_type*;
    using iterator_category = std::forward_iterator_tag;

    const_iterator() = default;
    key_type operator*() const { return *it_; }

    const_iterator& operator++() {
      ++it_;
      advance_past_empty();
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator copy = *this;
      ++*this;
      return copy;
    }

    bool operator==(const const_iterator& o) const {
      if (shard_ != o.shard_) return false;
      if (owner_ == nullptr || shard_ == owner_->shards_.size()) return true;
      return it_ == o.it_;
    }

   private:
    friend class SnapshotView;
    explicit const_iterator(const SnapshotView* owner) : owner_(owner) {}

    void advance_past_empty() {
      while (shard_ < owner_->shards_.size() &&
             it_ == owner_->shards_[shard_]->end()) {
        ++shard_;
        if (shard_ < owner_->shards_.size()) {
          it_ = owner_->shards_[shard_]->begin();
        }
      }
    }

    const SnapshotView* owner_ = nullptr;
    uint64_t shard_ = 0;
    typename Engine::const_iterator it_{};
  };

  const_iterator begin() const {
    const_iterator it(this);
    it.shard_ = 0;
    it.it_ = shards_[0]->begin();
    it.advance_past_empty();
    return it;
  }

  const_iterator end() const {
    const_iterator it(this);
    it.shard_ = shards_.size();
    return it;
  }

 private:
  uint64_t shard_for(key_type key) const {
    return static_cast<uint64_t>(
        std::upper_bound(splitters_.begin(), splitters_.end(), key) -
        splitters_.begin());
  }

  std::vector<key_type> splitters_;
  std::vector<std::shared_ptr<const Engine>> shards_;
  uint64_t publish_seq_ = 0;
  uint64_t publish_time_ns_ = 0;
};

// Writer-owned view holder: one atomic current pointer, writer-only retired
// list. All methods except acquire() must be called from the (single)
// writer; acquire() is safe from any thread holding an epoch pin.
template <typename View>
class SnapshotHolder {
 public:
  SnapshotHolder() = default;
  SnapshotHolder(const SnapshotHolder&) = delete;
  SnapshotHolder& operator=(const SnapshotHolder&) = delete;

  ~SnapshotHolder() {
    delete current_.load(std::memory_order_acquire);
    for (const Retired& r : retired_) delete r.view;
  }

  // Reader side: the current view. Caller must hold an EpochManager pin
  // taken BEFORE this load and keep it for as long as the pointer is used.
  const View* acquire() const {
    return current_.load(std::memory_order_seq_cst);
  }

  // Writer side: swap in `next`, retire the previous view stamped with the
  // post-advance epoch, then reclaim whatever became safe.
  void publish(std::unique_ptr<const View> next, EpochManager& epochs) {
    const View* old = current_.exchange(next.release(),
                                        std::memory_order_seq_cst);
    if (old != nullptr) retired_.push_back({old, epochs.advance()});
    collect(epochs);
  }

  // Frees every retired view with stamp <= min_active. Called by publish;
  // also callable directly so an idle writer can drain the list.
  void collect(EpochManager& epochs) {
    if (retired_.empty()) return;
    const uint64_t safe = epochs.min_active();
    auto keep = retired_.begin();
    for (auto it = retired_.begin(); it != retired_.end(); ++it) {
      if (it->epoch <= safe) {
        delete it->view;
        ++reclaimed_;
      } else {
        *keep++ = *it;
      }
    }
    retired_.erase(keep, retired_.end());
  }

  uint64_t retired_count() const { return retired_.size(); }
  uint64_t reclaimed_count() const { return reclaimed_; }

 private:
  struct Retired {
    const View* view;
    uint64_t epoch;  // reclaimable once min_active() >= epoch
  };

  std::atomic<const View*> current_{nullptr};
  std::vector<Retired> retired_;
  uint64_t reclaimed_ = 0;
};

}  // namespace cpma::serve
