// Immutable per-shard snapshot views and their epoch-reclaimed holder.
//
// A SnapshotView is one consistent, immutable picture of a ShardedPMA: the
// splitter vector plus one engine snapshot per shard. Shard snapshots are
// whole engine copies held by shared_ptr — copy-on-write at shard
// granularity: when the writer publishes a new view it copies only the
// shards whose version advanced and SHARES the untouched shards' engines
// with the previous view (PaC-tree style functional snapshots, with whole
// pointer-free engines as the shared chunks). Only the writer ever touches
// the shared_ptr control blocks; readers receive a raw `const View*` under
// an epoch pin and navigate raw `const Engine*`s, so the read path is
// refcount-free.
//
// The view exposes the full read API of the sharded structure — has /
// successor / min / max / size / map / map_range / map_range_length /
// iteration — with the same key-order stitching as ShardedPMA (shard
// ranges are disjoint and ascending).
//
// SnapshotHolder owns the single atomic current-view pointer plus the
// retired list: publish() swaps in a new view, stamps the old one with the
// post-advance epoch, and reclaims every retired view no pinned reader can
// still reference (see serve/epoch.hpp for the safety argument).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <iterator>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "parallel/scheduler.hpp"
#include "pma/flat_leaves.hpp"
#include "serve/epoch.hpp"

namespace cpma::serve {

template <typename Engine>
class SnapshotView {
 public:
  using key_type = uint64_t;
  using engine_type = Engine;

  // publish_seq / publish_time_ns identify WHICH published view a reader is
  // pinned to and WHEN it was cut (writer's steady clock): the streaming
  // graph layer reports snapshot age/staleness from them. Both default to 0
  // for directly-constructed views in tests.
  SnapshotView(std::vector<key_type> splitters,
               std::vector<std::shared_ptr<const Engine>> shards,
               uint64_t publish_seq = 0, uint64_t publish_time_ns = 0)
      : splitters_(std::move(splitters)), shards_(std::move(shards)),
        publish_seq_(publish_seq), publish_time_ns_(publish_time_ns) {}

  uint64_t num_shards() const { return shards_.size(); }
  const Engine& shard(uint64_t s) const { return *shards_[s]; }
  const std::vector<key_type>& splitters() const { return splitters_; }
  const std::shared_ptr<const Engine>& shard_ref(uint64_t s) const {
    return shards_[s];
  }
  uint64_t publish_seq() const { return publish_seq_; }
  uint64_t publish_time_ns() const { return publish_time_ns_; }

  // ---- size ---------------------------------------------------------------

  uint64_t size() const {
    uint64_t total = 0;
    for (const auto& e : shards_) total += e->size();
    return total;
  }

  bool empty() const {
    for (const auto& e : shards_) {
      if (!e->empty()) return false;
    }
    return true;
  }

  // ---- point reads --------------------------------------------------------

  bool has(key_type key) const { return shards_[shard_for(key)]->has(key); }

  std::optional<key_type> successor(key_type key) const {
    for (uint64_t s = shard_for(key); s < shards_.size(); ++s) {
      if (auto v = shards_[s]->successor(key)) return v;
    }
    return std::nullopt;
  }

  std::optional<key_type> min() const {
    for (const auto& e : shards_) {
      if (auto v = e->min()) return v;
    }
    return std::nullopt;
  }

  std::optional<key_type> max() const {
    for (uint64_t s = shards_.size(); s-- > 0;) {
      if (auto v = shards_[s]->max()) return v;
    }
    return std::nullopt;
  }

  // ---- scans --------------------------------------------------------------

  template <typename F>
  void map(F&& f) const {
    for (const auto& e : shards_) e->map(f);
  }

  template <typename F>
  void map_range(F&& f, key_type start, key_type end) const {
    if (start >= end) return;
    for (uint64_t s = shard_for(start); s < shards_.size(); ++s) {
      if (s > 0 && splitters_[s - 1] >= end) break;
      shards_[s]->map_range(f, start, end);
    }
  }

  template <typename F>
  uint64_t map_range_length(F&& f, key_type start, uint64_t length) const {
    uint64_t applied = 0;
    for (uint64_t s = shard_for(start);
         s < shards_.size() && applied < length; ++s) {
      applied += shards_[s]->map_range_length(f, start, length - applied);
    }
    return applied;
  }

  // ---- batch queries ------------------------------------------------------
  // ShardedPMA's amortized batch reads over the immutable view: sorted
  // queries partitioned against the splitters, per-shard slices as sibling
  // tasks, one decode per touched leaf. Because the view never mutates,
  // any number of reader threads may run these concurrently on one pinned
  // snapshot — this is the multi-get surface serving clients use.

  void has_batch(const key_type* keys, uint64_t n, uint64_t* bits,
                 uint64_t bit_base = 0) const {
    if (n == 0) return;
    std::vector<uint64_t> bounds;
    partition_batch(keys, n, bounds);
    par::parallel_for(0, shards_.size(), [&](uint64_t s) {
      const uint64_t b = bounds[s], e = bounds[s + 1];
      if (e > b) shards_[s]->has_batch(keys + b, e - b, bits, bit_base + b);
    }, 1);
  }

  std::vector<uint64_t> has_batch(const key_type* keys, uint64_t n) const {
    std::vector<uint64_t> bits((n + 63) / 64, 0);
    has_batch(keys, n, bits.data(), 0);
    return bits;
  }

  void successor_batch(const key_type* keys, uint64_t n, key_type* out,
                       uint64_t* found, uint64_t bit_base = 0) const {
    if (n == 0) return;
    const uint64_t s_count = shards_.size();
    std::vector<uint64_t> bounds;
    partition_batch(keys, n, bounds);
    par::parallel_for(0, s_count, [&](uint64_t s) {
      const uint64_t b = bounds[s], e = bounds[s + 1];
      if (e > b) {
        shards_[s]->successor_batch(keys + b, e - b, out + b, found,
                                    bit_base + b);
      }
    }, 1);
    // Stitch spill-over queries (a slice's unfound suffix) to the next
    // nonempty shard's minimum, right to left.
    std::optional<key_type> next_min;
    for (uint64_t s = s_count; s-- > 0;) {
      if (next_min) {
        for (uint64_t q = bounds[s + 1]; q-- > bounds[s];) {
          const uint64_t bit = bit_base + q;
          if ((found[bit >> 6] >> (bit & 63)) & 1) break;
          out[q] = *next_min;
          found[bit >> 6] |= uint64_t{1} << (bit & 63);
        }
      }
      if (auto v = shards_[s]->min()) next_min = v;
    }
  }

  template <typename F>
  void map_ranges(const std::pair<key_type, key_type>* ranges, uint64_t m,
                  F&& f) const {
    if (m == 0) return;
    const uint64_t s_count = shards_.size();
    std::vector<std::pair<uint64_t, uint64_t>> slices(s_count);
    uint64_t rb = 0;
    for (uint64_t s = 0; s < s_count; ++s) {
      const key_type lo = s == 0 ? 0 : splitters_[s - 1];
      while (rb < m && ranges[rb].second <= lo) ++rb;
      uint64_t re = rb;
      while (re < m &&
             (s + 1 >= s_count || ranges[re].first < splitters_[s])) {
        ++re;
      }
      slices[s] = {rb, re};
    }
    par::parallel_for(0, s_count, [&](uint64_t s) {
      auto [b, e] = slices[s];
      if (e > b) {
        shards_[s]->map_ranges(
            ranges + b, e - b,
            [&, b](uint64_t ri, key_type k) { f(b + ri, k); });
      }
    }, 1);
  }

  // ---- flattened-leaf iteration (graph vertex index) ----------------------
  // Same advanced-iteration surface as ShardedPMA, over the IMMUTABLE view:
  // positions stay valid for the life of the epoch pin, so the graph layer
  // builds a vertex index over a pinned snapshot while ingest continues.

  using Position = pma::FlatPosition<Engine>;
  using FlatOps = pma::FlatLeafOps<SnapshotView, Engine>;

  uint64_t num_leaves() const { return FlatOps::num_leaves(*this); }

  uint64_t leaf_element_count(uint64_t l) const {
    return FlatOps::leaf_element_count(*this, l);
  }

  template <typename F>
  void scan_leaf_positions(uint64_t l, F&& f) const {
    FlatOps::scan_leaf_positions(*this, l, std::forward<F>(f));
  }

  template <typename F>
  void scan_leaf_keys(uint64_t l, F&& f) const {
    FlatOps::scan_leaf_keys(*this, l, std::forward<F>(f));
  }

  template <typename F>
  void map_from_position(Position pos, F&& f) const {
    FlatOps::map_from_position(*this, pos, std::forward<F>(f));
  }

  // ---- iteration ----------------------------------------------------------

  class const_iterator {
   public:
    using value_type = key_type;
    using difference_type = std::ptrdiff_t;
    using reference = key_type;
    using pointer = const key_type*;
    using iterator_category = std::forward_iterator_tag;

    const_iterator() = default;
    key_type operator*() const { return *it_; }

    const_iterator& operator++() {
      ++it_;
      advance_past_empty();
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator copy = *this;
      ++*this;
      return copy;
    }

    bool operator==(const const_iterator& o) const {
      if (shard_ != o.shard_) return false;
      if (owner_ == nullptr || shard_ == owner_->shards_.size()) return true;
      return it_ == o.it_;
    }

   private:
    friend class SnapshotView;
    explicit const_iterator(const SnapshotView* owner) : owner_(owner) {}

    void advance_past_empty() {
      while (shard_ < owner_->shards_.size() &&
             it_ == owner_->shards_[shard_]->end()) {
        ++shard_;
        if (shard_ < owner_->shards_.size()) {
          it_ = owner_->shards_[shard_]->begin();
        }
      }
    }

    const SnapshotView* owner_ = nullptr;
    uint64_t shard_ = 0;
    typename Engine::const_iterator it_{};
  };

  const_iterator begin() const {
    const_iterator it(this);
    it.shard_ = 0;
    it.it_ = shards_[0]->begin();
    it.advance_past_empty();
    return it;
  }

  const_iterator end() const {
    const_iterator it(this);
    it.shard_ = shards_.size();
    return it;
  }

 private:
  uint64_t shard_for(key_type key) const {
    return static_cast<uint64_t>(
        std::upper_bound(splitters_.begin(), splitters_.end(), key) -
        splitters_.begin());
  }

  // bounds[i] = first query index routed to shard i; bounds[S] = n. Same
  // gallop idiom as ShardedPMA::partition_batch.
  void partition_batch(const key_type* batch, uint64_t n,
                       std::vector<uint64_t>& bounds) const {
    const uint64_t s_count = shards_.size();
    bounds.assign(s_count + 1, n);
    bounds[0] = 0;
    uint64_t pos = 0;
    for (uint64_t i = 0; i + 1 < s_count; ++i) {
      const key_type sp = splitters_[i];
      if (pos < n && batch[pos] < sp) {
        uint64_t lo = pos, step = 1;
        while (lo + step < n && batch[lo + step] < sp) {
          lo += step;
          step *= 2;
        }
        uint64_t hi = std::min(lo + step, n);
        pos = static_cast<uint64_t>(
            std::lower_bound(batch + lo, batch + hi, sp) - batch);
      }
      bounds[i + 1] = pos;
    }
  }

  std::vector<key_type> splitters_;
  std::vector<std::shared_ptr<const Engine>> shards_;
  uint64_t publish_seq_ = 0;
  uint64_t publish_time_ns_ = 0;
};

// Writer-owned view holder: one atomic current pointer, writer-only retired
// list. All methods except acquire() must be called from the (single)
// writer; acquire() is safe from any thread holding an epoch pin.
template <typename View>
class SnapshotHolder {
 public:
  SnapshotHolder() = default;
  SnapshotHolder(const SnapshotHolder&) = delete;
  SnapshotHolder& operator=(const SnapshotHolder&) = delete;

  ~SnapshotHolder() {
    delete current_.load(std::memory_order_acquire);
    for (const Retired& r : retired_) delete r.view;
  }

  // Reader side: the current view. Caller must hold an EpochManager pin
  // taken BEFORE this load and keep it for as long as the pointer is used.
  const View* acquire() const {
    return current_.load(std::memory_order_seq_cst);
  }

  // Writer side: swap in `next`, retire the previous view stamped with the
  // post-advance epoch, then reclaim whatever became safe.
  void publish(std::unique_ptr<const View> next, EpochManager& epochs) {
    const View* old = current_.exchange(next.release(),
                                        std::memory_order_seq_cst);
    if (old != nullptr) retired_.push_back({old, epochs.advance()});
    collect(epochs);
  }

  // Frees every retired view with stamp <= min_active. Called by publish;
  // also callable directly so an idle writer can drain the list.
  void collect(EpochManager& epochs) {
    if (retired_.empty()) return;
    const uint64_t safe = epochs.min_active();
    auto keep = retired_.begin();
    for (auto it = retired_.begin(); it != retired_.end(); ++it) {
      if (it->epoch <= safe) {
        delete it->view;
        ++reclaimed_;
      } else {
        *keep++ = *it;
      }
    }
    retired_.erase(keep, retired_.end());
  }

  uint64_t retired_count() const { return retired_.size(); }
  uint64_t reclaimed_count() const { return reclaimed_; }

 private:
  struct Retired {
    const View* view;
    uint64_t epoch;  // reclaimable once min_active() >= epoch
  };

  std::atomic<const View*> current_{nullptr};
  std::vector<Retired> retired_;
  uint64_t reclaimed_ = 0;
};

}  // namespace cpma::serve
