// Flat-combining ingest queues for the serving layer.
//
// Many client threads issue single-key inserts/removes; the engines eat
// sorted batches. A CombiningQueue is the per-shard meeting point: clients
// append ops under a short per-queue mutex (contention is spread across
// shards by key-routing the clients), and ONE combiner thread at a time
// drains whole queues and applies them as the batches the engine already
// optimizes for. That is the flat-combining bargain: instead of S clients
// each fighting the structure with a point update, one thread does the
// combined work of all of them through the batch pipeline, and everyone
// else just publishes its op and leaves.
//
// Flush triggers (checked by the serving layer, not the queue):
//  * size: pending() >= combine_batch — the enqueueing client that crosses
//    the threshold volunteers to combine IF the writer lock is free
//    (try_lock; a busy combiner means someone else already does the work).
//  * age: oldest_pending_ns() older than max_combine_delay_ns — applied by
//    the next combiner pass or an explicit poll() from a combiner thread.
//
// FIFO per queue is preserved: drain() hands back the ops in enqueue order
// and the serving layer applies them as maximal same-op runs, so an
// insert(k) ... remove(k) sequence through one queue lands in order.
//
// Backpressure: the queue itself is unbounded; the serving layer enforces a
// cap through try_push (fails instead of growing past the cap) plus
// wait_below (a bounded condition wait for "drained under the cap",
// notified by drain). Admission policy — whether a full queue blocks the
// client toward a deadline or rejects outright — lives in the serving
// layer; the queue just provides the bounded primitive and the
// rejected/blocked counters surfaced by serving_stats().
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace cpma::serve {

inline uint64_t steady_now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

class CombiningQueue {
 public:
  struct Op {
    uint64_t key;
    bool is_insert;
  };

  CombiningQueue() = default;
  // Queues live in a per-shard vector; moves only happen at setup time,
  // before any concurrent use.
  CombiningQueue(CombiningQueue&& o) noexcept : ops_(std::move(o.ops_)) {
    pending_.store(o.pending_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    oldest_ns_.store(o.oldest_ns_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  }

  // Appends an op; returns the number of ops now pending (so the caller can
  // compare against its combine threshold without a second lock).
  uint64_t push(uint64_t key, bool is_insert) {
    std::lock_guard<std::mutex> lock(m_);
    if (ops_.empty()) {
      oldest_ns_.store(steady_now_ns(), std::memory_order_relaxed);
    }
    ops_.push_back(Op{key, is_insert});
    uint64_t n = ops_.size();
    pending_.store(n, std::memory_order_release);
    return n;
  }

  // Bounded append: fails (returns 0, nothing enqueued) when the queue
  // already holds `cap` ops; otherwise behaves like push. cap == 0 means
  // unbounded.
  uint64_t try_push(uint64_t key, bool is_insert, uint64_t cap) {
    std::lock_guard<std::mutex> lock(m_);
    if (cap != 0 && ops_.size() >= cap) return 0;
    if (ops_.empty()) {
      oldest_ns_.store(steady_now_ns(), std::memory_order_relaxed);
    }
    ops_.push_back(Op{key, is_insert});
    uint64_t n = ops_.size();
    pending_.store(n, std::memory_order_release);
    return n;
  }

  // Moves all pending ops into `out` (cleared first); returns the count.
  // Combiner side. Wakes clients blocked in wait_below.
  uint64_t drain(std::vector<Op>& out) {
    out.clear();
    {
      std::lock_guard<std::mutex> lock(m_);
      out.swap(ops_);
      // Keep the drained vector's capacity as the next buffer: steady-state
      // combining then allocates nothing on either side.
      pending_.store(0, std::memory_order_release);
    }
    if (!out.empty()) not_full_.notify_all();
    return out.size();
  }

  // Waits until the queue holds fewer than `cap` ops or `deadline_ns`
  // (steady clock) passes; returns whether there is room. Spurious-wakeup
  // safe; callers re-try try_push regardless.
  bool wait_below(uint64_t cap, uint64_t deadline_ns) {
    std::unique_lock<std::mutex> lock(m_);
    const auto deadline = std::chrono::steady_clock::time_point(
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::nanoseconds(deadline_ns)));
    return not_full_.wait_until(lock, deadline,
                                [&] { return ops_.size() < cap; });
  }

  // Admission-policy counters, bumped by the serving layer.
  void count_rejected() { rejected_.fetch_add(1, std::memory_order_relaxed); }
  void count_blocked() { blocked_.fetch_add(1, std::memory_order_relaxed); }
  uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  uint64_t blocked() const { return blocked_.load(std::memory_order_relaxed); }

  // Lock-free probes for the flush-trigger checks.
  uint64_t pending() const { return pending_.load(std::memory_order_acquire); }
  uint64_t oldest_pending_ns() const {
    return oldest_ns_.load(std::memory_order_relaxed);
  }

  bool due(uint64_t combine_batch, uint64_t max_delay_ns,
           uint64_t now_ns) const {
    uint64_t n = pending();
    if (n == 0) return false;
    if (n >= combine_batch) return true;
    uint64_t oldest = oldest_pending_ns();
    return now_ns >= oldest && now_ns - oldest >= max_delay_ns;
  }

 private:
  std::mutex m_;
  std::condition_variable not_full_;
  std::vector<Op> ops_;
  std::atomic<uint64_t> pending_{0};
  std::atomic<uint64_t> oldest_ns_{0};  // enqueue time of the oldest op
  std::atomic<uint64_t> rejected_{0};   // ops turned away at the cap
  std::atomic<uint64_t> blocked_{0};    // block events (kBlock admission)
};

}  // namespace cpma::serve
