// P-tree baseline: a batch-parallel, join-based binary search tree in the
// style of PAM [Sun et al., PPoPP'18], the uncompressed pointer-based
// comparator in the paper's Figures 1-2 and Tables 9-10.
//
// Implementation notes. PAM uses weight-balanced trees with join-based bulk
// operations; we use the equivalent join-based family member that is simplest
// to make correct: a treap whose priorities are derived from the key hash
// (hash64(key)), i.e. a deterministic zip-tree. Expected height is O(log n),
// union/difference are the classic parallel split/join recursions with the
// same asymptotic work bounds (O(m log(n/m + 1))), and a node is
// key + two pointers = 24 bytes (32 with allocator rounding) — matching the
// paper's "P-trees take a fixed 32 bytes per element".
//
// Like PAM's in-place mode (which the paper benchmarks), updates mutate the
// tree; there is a single writer, and parallel reads phase with updates.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "parallel/scheduler.hpp"
#include "parallel/seq_ops.hpp"
#include "parallel/sort.hpp"
#include "util/random.hpp"

namespace cpma::baselines {

class PTree {
 public:
  using key_type = uint64_t;

  PTree() = default;
  ~PTree() { destroy(root_); }
  PTree(const PTree&) = delete;
  PTree& operator=(const PTree&) = delete;
  PTree(PTree&& o) noexcept : root_(o.root_), count_(o.count_) {
    o.root_ = nullptr;
    o.count_ = 0;
  }

  uint64_t size() const { return count_; }

  bool has(key_type k) const {
    const Node* n = root_;
    while (n != nullptr) {
      if (k == n->key) return true;
      n = k < n->key ? n->left : n->right;
    }
    return false;
  }

  bool insert(key_type k) {
    bool added = false;
    root_ = insert_rec(root_, k, &added);
    count_ += added ? 1 : 0;
    return added;
  }

  bool remove(key_type k) {
    bool removed = false;
    root_ = remove_rec(root_, k, &removed);
    count_ -= removed ? 1 : 0;
    return removed;
  }

  // Batch insert via build + parallel union (PAM's multi_insert). Returns the
  // number of keys newly added.
  uint64_t insert_batch(key_type* input, uint64_t n, bool sorted = false) {
    if (n == 0) return 0;
    if (!sorted) par::parallel_sort(input, n);
    std::vector<key_type> batch(input, input + n);
    par::dedupe_sorted(batch);
    std::atomic<uint64_t> dups{0};
    Node* b = build_parallel(batch.data(), batch.size());
    root_ = union_rec(root_, b, dups);
    uint64_t added = batch.size() - dups.load();
    count_ += added;
    return added;
  }

  // Batch remove via build + parallel difference. Returns #removed.
  uint64_t remove_batch(key_type* input, uint64_t n, bool sorted = false) {
    if (n == 0 || root_ == nullptr) return 0;
    if (!sorted) par::parallel_sort(input, n);
    std::vector<key_type> batch(input, input + n);
    par::dedupe_sorted(batch);
    std::atomic<uint64_t> removed{0};
    root_ = difference_rec(root_, batch.data(), batch.size(), removed);
    count_ -= removed.load();
    return removed.load();
  }

  // In-order traversal; f(key) -> void.
  template <typename F>
  void map(F&& f) const {
    map_rec(root_, f);
  }

  // Applies f to keys in [start, end), in order.
  template <typename F>
  void map_range(F&& f, key_type start, key_type end) const {
    map_range_rec(root_, start, end, f);
  }

  // Applies f to at most `length` keys >= start; returns how many.
  template <typename F>
  uint64_t map_range_length(F&& f, key_type start, uint64_t length) const {
    uint64_t applied = 0;
    map_length_rec(root_, start, length, applied, f);
    return applied;
  }

  uint64_t sum() const {
    uint64_t s = 0;
    map([&](key_type k) { s += k; });
    return s;
  }

  // Bytes used: nodes are 24B net but 32B with allocator rounding — report
  // the PAM figure the paper uses.
  uint64_t get_size() const { return count_ * 32 + sizeof(*this); }

  // Test hook: checks BST order and the priority heap property.
  bool check_invariants() const {
    uint64_t seen = 0;
    key_type prev = 0;
    bool first = true;
    bool ok = check_rec(root_, &seen, &prev, &first);
    return ok && seen == count_;
  }

 private:
  struct Node {
    key_type key;
    Node* left = nullptr;
    Node* right = nullptr;
  };

  static uint64_t prio(key_type k) { return util::hash64(k * 2 + 1); }

  static void destroy(Node* n, int par_depth = 4) {
    if (n == nullptr) return;
    if (par_depth > 0) {
      par::fork2([&] { destroy(n->left, par_depth - 1); },
                 [&] { destroy(n->right, par_depth - 1); });
    } else {
      destroy(n->left, 0);
      destroy(n->right, 0);
    }
    delete n;
  }

  static Node* insert_rec(Node* t, key_type k, bool* added) {
    if (t == nullptr) {
      *added = true;
      return new Node{k};
    }
    if (k == t->key) return t;
    if (prio(k) > prio(t->key)) {
      // k becomes the new subtree root. If the key was present below, split
      // deletes its node and we re-create it here, so the set is unchanged.
      Node* l = nullptr;
      Node* r = nullptr;
      bool absent = true;
      split(t, k, &l, &r, &absent);
      *added = absent;
      return new Node{k, l, r};
    }
    if (k < t->key) {
      t->left = insert_rec(t->left, k, added);
    } else {
      t->right = insert_rec(t->right, k, added);
    }
    return t;
  }

  static void split(Node* t, key_type k, Node** l, Node** r, bool* absent) {
    if (t == nullptr) {
      *l = *r = nullptr;
      *absent = true;
      return;
    }
    if (k == t->key) {
      // Key present: drop this node, halves are its children.
      *l = t->left;
      *r = t->right;
      *absent = false;
      delete t;
      return;
    }
    if (k < t->key) {
      split(t->left, k, l, &t->left, absent);
      *r = t;
    } else {
      split(t->right, k, &t->right, r, absent);
      *l = t;
    }
  }

  static Node* join2(Node* l, Node* r) {
    if (l == nullptr) return r;
    if (r == nullptr) return l;
    if (prio(l->key) > prio(r->key)) {
      l->right = join2(l->right, r);
      return l;
    }
    r->left = join2(l, r->left);
    return r;
  }

  static Node* remove_rec(Node* t, key_type k, bool* removed) {
    if (t == nullptr) return nullptr;
    if (k == t->key) {
      Node* merged = join2(t->left, t->right);
      delete t;
      *removed = true;
      return merged;
    }
    if (k < t->key) {
      t->left = remove_rec(t->left, k, removed);
    } else {
      t->right = remove_rec(t->right, k, removed);
    }
    return t;
  }

  // Builds a treap from sorted unique keys: halves in parallel, then a join
  // (the halves cover disjoint, ordered key ranges).
  static Node* build_parallel(const key_type* keys, uint64_t n) {
    if (n == 0) return nullptr;
    if (n <= 2048) return build_serial(keys, n);
    uint64_t mid = n / 2;
    Node* l = nullptr;
    Node* r = nullptr;
    par::fork2([&] { l = build_parallel(keys, mid); },
               [&] { r = build_parallel(keys + mid, n - mid); });
    return join2(l, r);
  }

  // Cartesian-tree stack construction: O(n) from sorted input.
  static Node* build_serial(const key_type* keys, uint64_t n) {
    Node* root = nullptr;
    std::vector<Node*> spine;  // right spine, decreasing priority
    spine.reserve(64);
    for (uint64_t i = 0; i < n; ++i) {
      Node* node = new Node{keys[i]};
      Node* last_popped = nullptr;
      while (!spine.empty() && prio(spine.back()->key) < prio(node->key)) {
        last_popped = spine.back();
        spine.pop_back();
      }
      node->left = last_popped;
      if (spine.empty()) {
        root = node;
      } else {
        spine.back()->right = node;
      }
      spine.push_back(node);
    }
    return root;
  }

  // Parallel treap union; duplicate keys (present in both) are counted in
  // `dups` and deduplicated. Forks at the top levels of the recursion (the
  // expected treap depth is O(log n), so a fixed fork depth saturates the
  // pool without size fields).
  static Node* union_rec(Node* a, Node* b, std::atomic<uint64_t>& dups,
                         int par_depth = 12) {
    if (a == nullptr) return b;
    if (b == nullptr) return a;
    if (prio(a->key) < prio(b->key)) std::swap(a, b);
    // a's root wins; split b around it.
    Node* bl = nullptr;
    Node* br = nullptr;
    bool absent = true;
    split(b, a->key, &bl, &br, &absent);
    if (!absent) dups.fetch_add(1, std::memory_order_relaxed);
    if (par_depth > 0) {
      par::fork2(
          [&] { a->left = union_rec(a->left, bl, dups, par_depth - 1); },
          [&] { a->right = union_rec(a->right, br, dups, par_depth - 1); });
    } else {
      a->left = union_rec(a->left, bl, dups, 0);
      a->right = union_rec(a->right, br, dups, 0);
    }
    return a;
  }

  // Removes from t all keys in sorted unique batch[0..n).
  static Node* difference_rec(Node* t, const key_type* batch, uint64_t n,
                              std::atomic<uint64_t>& removed) {
    if (t == nullptr || n == 0) return t;
    // Partition the batch around t->key.
    const key_type* split_pos = std::lower_bound(batch, batch + n, t->key);
    uint64_t nl = static_cast<uint64_t>(split_pos - batch);
    bool hit = (nl < n && *split_pos == t->key);
    const key_type* rb = split_pos + (hit ? 1 : 0);
    uint64_t nr = n - nl - (hit ? 1 : 0);
    if (n > 512) {
      par::fork2(
          [&] { t->left = difference_rec(t->left, batch, nl, removed); },
          [&] { t->right = difference_rec(t->right, rb, nr, removed); });
    } else {
      t->left = difference_rec(t->left, batch, nl, removed);
      t->right = difference_rec(t->right, rb, nr, removed);
    }
    if (hit) {
      removed.fetch_add(1, std::memory_order_relaxed);
      Node* merged = join2(t->left, t->right);
      delete t;
      return merged;
    }
    return t;
  }

  template <typename F>
  static void map_rec(const Node* n, F& f) {
    if (n == nullptr) return;
    map_rec(n->left, f);
    f(n->key);
    map_rec(n->right, f);
  }

  template <typename F>
  static void map_range_rec(const Node* n, key_type start, key_type end,
                            F& f) {
    if (n == nullptr) return;
    if (n->key >= start) map_range_rec(n->left, start, end, f);
    if (n->key >= start && n->key < end) f(n->key);
    if (n->key < end) map_range_rec(n->right, start, end, f);
  }

  template <typename F>
  static void map_length_rec(const Node* n, key_type start, uint64_t length,
                             uint64_t& applied, F& f) {
    if (n == nullptr || applied >= length) return;
    if (n->key >= start) map_length_rec(n->left, start, length, applied, f);
    if (applied >= length) return;
    if (n->key >= start) {
      f(n->key);
      ++applied;
    }
    map_length_rec(n->right, start, length, applied, f);
  }

  bool check_rec(const Node* n, uint64_t* seen, key_type* prev,
                 bool* first) const {
    if (n == nullptr) return true;
    if (!check_rec(n->left, seen, prev, first)) return false;
    if (!*first && n->key <= *prev) return false;
    *prev = n->key;
    *first = false;
    ++*seen;
    if (n->left != nullptr && prio(n->left->key) > prio(n->key)) return false;
    if (n->right != nullptr && prio(n->right->key) > prio(n->key)) {
      return false;
    }
    return check_rec(n->right, seen, prev, first);
  }

  Node* root_ = nullptr;
  uint64_t count_ = 0;
};

}  // namespace cpma::baselines
