// PaC-tree baseline (CPAM-like): a batch-parallel search tree whose leaves
// are BLOCKS of up to ~256 elements, in uncompressed (U-PaC) and compressed
// (C-PaC, delta + byte codes) variants — the paper's main comparator.
//
// Differences from CPAM, documented in DESIGN.md: CPAM rebalances with
// weight-balanced joins; we keep weight balance by rebuilding a subtree when
// a batch update unbalances it (scapegoat-style). Batch updates rebuild the
// merged leaves either way, so the batch work bound matches, and the
// structural properties the paper measures — pointer-chased interior nodes,
// blocked compressed leaves, ~P-element cache behaviour — are preserved.
// Like the paper's configuration, updates are in-place (single writer).
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

#include "codec/varint.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/seq_ops.hpp"
#include "parallel/sort.hpp"

namespace cpma::baselines {

template <bool Compressed>
class PacTree {
 public:
  using key_type = uint64_t;
  // The paper sets the PaC-tree block size to the library default of 256.
  static constexpr uint64_t kBlockMax = 512;
  static constexpr double kBalance = 0.75;  // weight-balance tolerance

  PacTree() = default;
  ~PacTree() { destroy(root_); }
  PacTree(const PacTree&) = delete;
  PacTree& operator=(const PacTree&) = delete;
  PacTree(PacTree&& o) noexcept : root_(o.root_) { o.root_ = nullptr; }
  PacTree& operator=(PacTree&& o) noexcept {
    if (this != &o) {
      destroy(root_);
      root_ = o.root_;
      o.root_ = nullptr;
    }
    return *this;
  }

  uint64_t size() const { return root_ == nullptr ? 0 : root_->size; }

  bool has(key_type k) const {
    const Node* n = root_;
    while (n != nullptr && !n->leaf) {
      const auto* in = static_cast<const Interior*>(n);
      n = k < in->pivot ? in->left : in->right;
    }
    if (n == nullptr) return false;
    bool found = false;
    leaf_scan(static_cast<const LeafNode*>(n), [&](key_type x) {
      if (x == k) found = true;
      return x < k;
    });
    return found;
  }

  bool insert(key_type k) { return insert_batch(&k, 1, true) == 1; }
  bool remove(key_type k) { return remove_batch(&k, 1, true) == 1; }

  uint64_t insert_batch(key_type* input, uint64_t n, bool sorted = false) {
    if (n == 0) return 0;
    if (!sorted) par::parallel_sort(input, n);
    std::vector<key_type> batch(input, input + n);
    par::dedupe_sorted(batch);
    std::atomic<uint64_t> added{0};
    root_ = insert_rec(root_, batch.data(), batch.size(), added, 12);
    return added.load();
  }

  uint64_t remove_batch(key_type* input, uint64_t n, bool sorted = false) {
    if (n == 0 || root_ == nullptr) return 0;
    if (!sorted) par::parallel_sort(input, n);
    std::vector<key_type> batch(input, input + n);
    par::dedupe_sorted(batch);
    std::atomic<uint64_t> removed{0};
    root_ = remove_rec(root_, batch.data(), batch.size(), removed, 12);
    return removed.load();
  }

  template <typename F>
  void map(F&& f) const {
    map_rec(root_, [&](key_type k) {
      f(k);
      return true;
    });
  }

  template <typename F>
  void map_range(F&& f, key_type start, key_type end) const {
    if (start >= end) return;
    range_rec(root_, start, end, f);
  }

  template <typename F>
  uint64_t map_range_length(F&& f, key_type start, uint64_t length) const {
    uint64_t applied = 0;
    if (length == 0) return 0;
    length_rec(root_, start, length, applied, f);
    return applied;
  }

  uint64_t sum() const {
    uint64_t s = 0;
    map([&](key_type k) { s += k; });
    return s;
  }

  uint64_t get_size() const { return bytes_rec(root_) + sizeof(*this); }

  // Test hook: order, size fields, block-size bounds, balance.
  bool check_invariants() const {
    key_type prev = 0;
    bool first = true;
    return check_rec(root_, &prev, &first, /*is_root=*/true);
  }

 private:
  struct Node {
    uint64_t size;
    bool leaf;
  };
  struct Interior : Node {
    key_type pivot;  // min key of the right subtree
    Node* left;
    Node* right;
  };
  struct LeafNode : Node {
    key_type head = 0;               // first key (uncompressed, like CPAM)
    std::vector<uint8_t> bytes;      // compressed: delta stream after head
    std::vector<key_type> keys;      // uncompressed: all keys
  };

  // ---- leaf encode/decode --------------------------------------------------

  static LeafNode* leaf_make(const key_type* keys, uint64_t n) {
    assert(n > 0);
    auto* l = new LeafNode();
    l->size = n;
    l->leaf = true;
    l->head = keys[0];
    if constexpr (Compressed) {
      uint8_t tmp[codec::kMaxVarintBytes];
      l->bytes.reserve(n * 2);
      for (uint64_t i = 1; i < n; ++i) {
        size_t len = codec::varint_encode(keys[i] - keys[i - 1], tmp);
        l->bytes.insert(l->bytes.end(), tmp, tmp + len);
      }
      l->bytes.shrink_to_fit();
    } else {
      l->keys.assign(keys, keys + n);
    }
    return l;
  }

  // Applies f(key) in order while f returns true; returns false if stopped.
  template <typename F>
  static bool leaf_scan(const LeafNode* l, F&& f) {
    if constexpr (Compressed) {
      key_type cur = l->head;
      if (!f(cur)) return false;
      size_t pos = 0;
      while (pos < l->bytes.size()) {
        uint64_t delta;
        pos += codec::varint_decode(l->bytes.data() + pos, &delta);
        cur += delta;
        if (!f(cur)) return false;
      }
      return true;
    } else {
      for (key_type k : l->keys) {
        if (!f(k)) return false;
      }
      return true;
    }
  }

  static void leaf_decode(const LeafNode* l, std::vector<key_type>& out) {
    leaf_scan(l, [&](key_type k) {
      out.push_back(k);
      return true;
    });
  }

  // ---- construction ----------------------------------------------------------

  static Node* build(const key_type* keys, uint64_t n, int par_depth) {
    if (n == 0) return nullptr;
    if (n <= kBlockMax) return leaf_make(keys, n);
    uint64_t mid = n / 2;
    auto* in = new Interior();
    in->leaf = false;
    in->size = n;
    in->pivot = keys[mid];
    if (par_depth > 0) {
      par::fork2(
          [&] { in->left = build(keys, mid, par_depth - 1); },
          [&] { in->right = build(keys + mid, n - mid, par_depth - 1); });
    } else {
      in->left = build(keys, mid, 0);
      in->right = build(keys + mid, n - mid, 0);
    }
    return in;
  }

  static void destroy(Node* n) {
    if (n == nullptr) return;
    if (!n->leaf) {
      auto* in = static_cast<Interior*>(n);
      destroy(in->left);
      destroy(in->right);
      delete in;
    } else {
      delete static_cast<LeafNode*>(n);
    }
  }

  // Parallel in-order flatten using the size fields for offsets.
  static void flatten(const Node* n, key_type* out, int par_depth) {
    if (n == nullptr) return;
    if (n->leaf) {
      const auto* l = static_cast<const LeafNode*>(n);
      uint64_t i = 0;
      leaf_scan(l, [&](key_type k) {
        out[i++] = k;
        return true;
      });
      return;
    }
    const auto* in = static_cast<const Interior*>(n);
    uint64_t left_size = in->left == nullptr ? 0 : in->left->size;
    if (par_depth > 0) {
      par::fork2([&] { flatten(in->left, out, par_depth - 1); },
                 [&] { flatten(in->right, out + left_size, par_depth - 1); });
    } else {
      flatten(in->left, out, 0);
      flatten(in->right, out + left_size, 0);
    }
  }

  static Node* rebuild(Node* n, int par_depth) {
    std::vector<key_type> all(n->size);
    flatten(n, all.data(), par_depth);
    destroy(n);
    return build(all.data(), all.size(), par_depth);
  }

  static bool unbalanced(const Node* n) {
    if (n == nullptr || n->leaf) return false;
    const auto* in = static_cast<const Interior*>(n);
    uint64_t ls = in->left == nullptr ? 0 : in->left->size;
    uint64_t rs = in->right == nullptr ? 0 : in->right->size;
    uint64_t total = ls + rs;
    if (total <= 2 * kBlockMax) return false;  // small subtrees: rebuild cheap anyway when merged
    return std::max(ls, rs) >
           static_cast<uint64_t>(kBalance * static_cast<double>(total)) + 4;
  }

  // ---- batch updates ----------------------------------------------------------

  static Node* insert_rec(Node* t, const key_type* batch, uint64_t n,
                          std::atomic<uint64_t>& added, int par_depth) {
    if (n == 0) return t;
    if (t == nullptr) {
      added.fetch_add(n, std::memory_order_relaxed);
      return build(batch, n, par_depth);
    }
    if (t->leaf) {
      auto* l = static_cast<LeafNode*>(t);
      std::vector<key_type> existing;
      existing.reserve(l->size + n);
      leaf_decode(l, existing);
      std::vector<key_type> merged(existing.size() + n);
      std::merge(existing.begin(), existing.end(), batch, batch + n,
                 merged.begin());
      merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
      added.fetch_add(merged.size() - existing.size(),
                      std::memory_order_relaxed);
      delete l;
      return build(merged.data(), merged.size(), par_depth);
    }
    auto* in = static_cast<Interior*>(t);
    uint64_t nl = static_cast<uint64_t>(
        std::lower_bound(batch, batch + n, in->pivot) - batch);
    if (par_depth > 0 && n > 64) {
      par::fork2(
          [&] {
            in->left = insert_rec(in->left, batch, nl, added, par_depth - 1);
          },
          [&] {
            in->right = insert_rec(in->right, batch + nl, n - nl, added,
                                   par_depth - 1);
          });
    } else {
      in->left = insert_rec(in->left, batch, nl, added, 0);
      in->right = insert_rec(in->right, batch + nl, n - nl, added, 0);
    }
    in->size = (in->left ? in->left->size : 0) +
               (in->right ? in->right->size : 0);
    if (in->left == nullptr || in->right == nullptr) {
      Node* only = in->left != nullptr ? in->left : in->right;
      delete in;
      return only;
    }
    if (unbalanced(in)) return rebuild(in, par_depth);
    return in;
  }

  static Node* remove_rec(Node* t, const key_type* batch, uint64_t n,
                          std::atomic<uint64_t>& removed, int par_depth) {
    if (t == nullptr || n == 0) return t;
    if (t->leaf) {
      auto* l = static_cast<LeafNode*>(t);
      std::vector<key_type> existing;
      existing.reserve(l->size);
      leaf_decode(l, existing);
      std::vector<key_type> kept;
      kept.reserve(existing.size());
      std::set_difference(existing.begin(), existing.end(), batch, batch + n,
                          std::back_inserter(kept));
      if (kept.size() == existing.size()) return t;
      removed.fetch_add(existing.size() - kept.size(),
                        std::memory_order_relaxed);
      delete l;
      if (kept.empty()) return nullptr;
      return build(kept.data(), kept.size(), par_depth);
    }
    auto* in = static_cast<Interior*>(t);
    uint64_t nl = static_cast<uint64_t>(
        std::lower_bound(batch, batch + n, in->pivot) - batch);
    if (par_depth > 0 && n > 64) {
      par::fork2(
          [&] {
            in->left =
                remove_rec(in->left, batch, nl, removed, par_depth - 1);
          },
          [&] {
            in->right = remove_rec(in->right, batch + nl, n - nl, removed,
                                   par_depth - 1);
          });
    } else {
      in->left = remove_rec(in->left, batch, nl, removed, 0);
      in->right = remove_rec(in->right, batch + nl, n - nl, removed, 0);
    }
    if (in->left == nullptr || in->right == nullptr) {
      Node* only = in->left != nullptr ? in->left : in->right;
      delete in;
      return only;
    }
    in->size = in->left->size + in->right->size;
    if (unbalanced(in)) return rebuild(in, par_depth);
    return in;
  }

  // ---- traversal ---------------------------------------------------------------

  template <typename F>
  static bool map_rec(const Node* n, F&& f) {
    if (n == nullptr) return true;
    if (n->leaf) return leaf_scan(static_cast<const LeafNode*>(n), f);
    const auto* in = static_cast<const Interior*>(n);
    if (!map_rec(in->left, f)) return false;
    return map_rec(in->right, f);
  }

  template <typename F>
  static bool range_rec(const Node* n, key_type start, key_type end, F& f) {
    if (n == nullptr) return true;
    if (n->leaf) {
      return leaf_scan(static_cast<const LeafNode*>(n), [&](key_type k) {
        if (k >= end) return false;
        if (k >= start) f(k);
        return true;
      });
    }
    const auto* in = static_cast<const Interior*>(n);
    if (start < in->pivot) {
      if (!range_rec(in->left, start, end, f)) return false;
    }
    if (end > in->pivot) return range_rec(in->right, start, end, f);
    return true;
  }

  template <typename F>
  static bool length_rec(const Node* n, key_type start, uint64_t length,
                         uint64_t& applied, F& f) {
    if (n == nullptr) return true;
    if (n->leaf) {
      return leaf_scan(static_cast<const LeafNode*>(n), [&](key_type k) {
        if (k < start) return true;
        f(k);
        return ++applied < length;
      });
    }
    const auto* in = static_cast<const Interior*>(n);
    if (start < in->pivot) {
      if (!length_rec(in->left, start, length, applied, f)) return false;
    }
    return length_rec(in->right, start, length, applied, f);
  }

  static uint64_t bytes_rec(const Node* n) {
    if (n == nullptr) return 0;
    if (n->leaf) {
      const auto* l = static_cast<const LeafNode*>(n);
      return sizeof(LeafNode) + l->bytes.capacity() +
             l->keys.capacity() * sizeof(key_type);
    }
    const auto* in = static_cast<const Interior*>(n);
    return sizeof(Interior) + bytes_rec(in->left) + bytes_rec(in->right);
  }

  bool check_rec(const Node* n, key_type* prev, bool* first,
                 bool is_root) const {
    if (n == nullptr) return is_root;  // only an empty tree has null root
    if (n->leaf) {
      const auto* l = static_cast<const LeafNode*>(n);
      if (l->size == 0 || l->size > kBlockMax) return false;
      uint64_t cnt = 0;
      bool ok = true;
      leaf_scan(l, [&](key_type k) {
        if (!*first && k <= *prev) ok = false;
        *prev = k;
        *first = false;
        ++cnt;
        return true;
      });
      return ok && cnt == l->size;
    }
    const auto* in = static_cast<const Interior*>(n);
    if (in->left == nullptr || in->right == nullptr) return false;
    if (in->size != in->left->size + in->right->size) return false;
    if (!check_rec(in->left, prev, first, false)) return false;
    if (!*first && *prev >= in->pivot) return false;
    return check_rec(in->right, prev, first, false);
  }

  Node* root_ = nullptr;
};

using UPacTree = PacTree<false>;
using CPacTree = PacTree<true>;

}  // namespace cpma::baselines
