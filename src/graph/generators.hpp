// Graph workload generators.
//
// The paper evaluates on real social networks plus synthetic graphs; without
// the multi-GB downloads we generate the same *shapes*: RMAT (a=.5, b=c=.1,
// d=.3 — the skewed distribution the paper samples its insert batches from)
// and Erdős–Rényi (the paper's ER graph, uniform degrees). See DESIGN.md's
// substitution table.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "graph/edge.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/seq_ops.hpp"
#include "parallel/sort.hpp"
#include "util/random.hpp"

namespace cpma::graph {

// `m` directed RMAT edges over 2^scale vertices (may contain duplicates,
// like a real edge stream). Deterministic given (seed, i).
inline std::vector<uint64_t> rmat_edges(uint32_t scale, uint64_t m,
                                        uint64_t seed, double a = 0.5,
                                        double b = 0.1, double c = 0.1) {
  std::vector<uint64_t> edges(m);
  const double ab = a + b;
  const double abc = a + b + c;
  par::parallel_for(0, m, [&](uint64_t i) {
    uint64_t u = 0, v = 0;
    uint64_t state = util::hash64(seed ^ util::hash64(i));
    for (uint32_t level = 0; level < scale; ++level) {
      state = util::hash64(state);
      double r = static_cast<double>(state >> 11) * 0x1.0p-53;
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left quadrant: no bits set
      } else if (r < ab) {
        v |= 1;
      } else if (r < abc) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    edges[i] = edge_key(static_cast<vertex_t>(u), static_cast<vertex_t>(v));
  });
  return edges;
}

// Directed Erdős–Rényi G(n, p) edges via geometric skipping over the n*n
// pair space, parallelized across row blocks (each block draws its own
// deterministic stream). Self-loops excluded.
inline std::vector<uint64_t> erdos_renyi_edges(uint32_t n, double p,
                                               uint64_t seed) {
  if (p <= 0 || n == 0) return {};
  const uint64_t rows_per_block = std::max<uint64_t>(1, n / 256);
  const uint64_t num_blocks = (n + rows_per_block - 1) / rows_per_block;
  const double log1mp = std::log1p(-p);
  std::vector<std::vector<uint64_t>> parts(num_blocks);
  par::parallel_for(0, num_blocks, [&](uint64_t blk) {
    uint64_t row_lo = blk * rows_per_block;
    uint64_t row_hi = std::min<uint64_t>(n, row_lo + rows_per_block);
    util::Rng rng(util::hash64(seed ^ (blk * 0x9e3779b97f4a7c15ULL)));
    auto& out = parts[blk];
    // Linearized index within this block of rows.
    uint64_t idx = 0;
    const uint64_t limit = (row_hi - row_lo) * n;
    while (true) {
      double u = rng.next_double();
      double skip = std::floor(std::log(1.0 - u) / log1mp);
      if (skip > static_cast<double>(limit)) break;
      idx += static_cast<uint64_t>(skip) + 1;
      if (idx > limit) break;
      uint64_t zero_based = idx - 1;
      vertex_t src = static_cast<vertex_t>(row_lo + zero_based / n);
      vertex_t dst = static_cast<vertex_t>(zero_based % n);
      if (src != dst) out.push_back(edge_key(src, dst));
    }
  }, 1);
  std::vector<uint64_t> edges;
  size_t total = 0;
  for (auto& part : parts) total += part.size();
  edges.reserve(total);
  for (auto& part : parts) {
    edges.insert(edges.end(), part.begin(), part.end());
  }
  return edges;
}

// Adds the reverse of every edge, drops self-loops, sorts, dedupes: the
// undirected input format the graph systems consume.
inline std::vector<uint64_t> symmetrize(const std::vector<uint64_t>& edges) {
  std::vector<uint64_t> out;
  out.reserve(edges.size() * 2);
  for (uint64_t e : edges) {
    vertex_t u = edge_src(e), v = edge_dst(e);
    if (u == v) continue;
    out.push_back(edge_key(u, v));
    out.push_back(edge_key(v, u));
  }
  par::parallel_sort(out);
  par::dedupe_sorted(out);
  return out;
}

// Number of vertices implied by an edge list (max endpoint + 1).
inline vertex_t max_vertex(const std::vector<uint64_t>& edges) {
  vertex_t mx = 0;
  for (uint64_t e : edges) {
    mx = std::max({mx, edge_src(e), edge_dst(e)});
  }
  return mx;
}

}  // namespace cpma::graph
