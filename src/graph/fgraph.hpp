// F-Graph: the paper's dynamic-graph system built on a SINGLE CPMA.
//
// The whole graph lives in one compressed array of (src<<32)|dst edge keys —
// no vertex array, no per-vertex trees, no pointers. Neighborhoods are
// contiguous runs of the sorted key space; the vertex index (first-edge
// position + rank per vertex) is an acceleration structure rebuilt after
// updates, exactly the protocol Section 6 describes ("this experiment
// rebuilds the vertex array with each run of the algorithm").
//
// Batch updates go straight to CPMA::insert_batch / remove_batch, which is
// where F-Graph inherits the paper's parallel batch-update algorithm.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/edge.hpp"
#include "parallel/scan.hpp"
#include "parallel/scheduler.hpp"
#include "pma/cpma.hpp"

namespace cpma::graph {

template <typename Set = cpma::CPMA>
class FGraphT {
 public:
  explicit FGraphT(vertex_t num_vertices) : n_(num_vertices) {}

  FGraphT(vertex_t num_vertices, std::vector<uint64_t> edges)
      : n_(num_vertices) {
    insert_edges(std::move(edges));
  }

  vertex_t num_vertices() const { return n_; }
  uint64_t num_edges() const { return edges_.size(); }

  // Inserts a batch of directed edge keys (duplicates allowed); returns the
  // number of new edges.
  uint64_t insert_edges(std::vector<uint64_t> edges) {
    index_valid_ = false;
    return edges_.insert_batch(edges.data(), edges.size());
  }

  uint64_t remove_edges(std::vector<uint64_t> edges) {
    index_valid_ = false;
    return edges_.remove_batch(edges.data(), edges.size());
  }

  bool has_edge(vertex_t u, vertex_t v) const {
    return edges_.has(edge_key(u, v));
  }

  // Rebuilds the vertex index (first-edge position + edge rank per vertex).
  // Algorithms call prepare(); its cost is part of algorithm time, as in the
  // paper's evaluation.
  void prepare() {
    first_.resize(n_);
    rank_.resize(static_cast<size_t>(n_) + 1);
    has_edges_.resize(n_);
    par::parallel_for(0, n_, [&](uint64_t v) {
      rank_[v] = kNoRank;
      has_edges_[v] = 0;
    });
    rank_[n_] = kNoRank;
    const uint64_t leaves = edges_.num_leaves();
    // Rank offset of each leaf.
    std::vector<uint64_t> offsets(leaves);
    par::parallel_for(0, leaves, [&](uint64_t l) {
      offsets[l] = edges_.leaf_element_count(l);
    }, 8);
    uint64_t total = par::exclusive_scan_inplace(offsets);
    // Per-leaf: record vertex starts at src changes inside the leaf, plus
    // the position of each leaf's first key; the first key starts a vertex
    // iff the previous nonempty leaf ended with a different src (stitched
    // below with no rescanning).
    std::vector<uint64_t> first_src(leaves, kNoVertex);
    std::vector<uint64_t> last_src(leaves, kNoVertex);
    std::vector<typename Set::Position> first_pos(leaves);
    par::parallel_for(0, leaves, [&](uint64_t l) {
      uint64_t idx = 0;
      uint64_t prev_src = kNoVertex;
      edges_.scan_leaf_positions(l, [&](typename Set::Position pos,
                                        uint64_t key) {
        vertex_t src = edge_src(key);
        if (idx == 0) {
          first_src[l] = src;
          first_pos[l] = pos;
        }
        if (prev_src != kNoVertex && src != prev_src) {
          first_[src] = pos;
          rank_[src] = offsets[l] + idx;
          has_edges_[src] = 1;
        }
        prev_src = src;
        last_src[l] = src;
        ++idx;
      });
    }, 4);
    // Stitch leaf boundaries: a leaf's first key starts its vertex iff no
    // earlier nonempty leaf ended with the same src.
    uint64_t prev = kNoVertex;
    for (uint64_t l = 0; l < leaves; ++l) {
      if (first_src[l] == kNoVertex) continue;  // empty leaf
      if (first_src[l] != prev) {
        vertex_t src = static_cast<vertex_t>(first_src[l]);
        first_[src] = first_pos[l];
        rank_[src] = offsets[l];
        has_edges_[src] = 1;
      }
      prev = last_src[l];
    }
    // Degrees: distance between consecutive ranks (reverse chunked carry so
    // the O(n) pass is parallel).
    rank_[n_] = total;
    degree_.resize(n_);
    const uint64_t chunk = 8192;
    const uint64_t num_chunks = (n_ + chunk - 1) / chunk;
    std::vector<uint64_t> chunk_first_rank(num_chunks + 1, total);
    par::parallel_for(0, num_chunks, [&](uint64_t c) {
      uint64_t lo = c * chunk, hi = std::min<uint64_t>(n_, lo + chunk);
      for (uint64_t v = lo; v < hi; ++v) {
        if (has_edges_[v]) {
          chunk_first_rank[c] = rank_[v];
          break;
        }
      }
    }, 1);
    // Backward carry: first set rank at or after each chunk's end.
    std::vector<uint64_t> carry(num_chunks, total);
    uint64_t run = total;
    for (uint64_t c = num_chunks; c-- > 0;) {
      carry[c] = run;
      if (chunk_first_rank[c] != total) run = chunk_first_rank[c];
    }
    par::parallel_for(0, num_chunks, [&](uint64_t c) {
      uint64_t lo = c * chunk, hi = std::min<uint64_t>(n_, lo + chunk);
      uint64_t next_rank = carry[c];
      for (uint64_t v = hi; v-- > lo;) {
        if (has_edges_[v]) {
          degree_[v] = next_rank - rank_[v];
          next_rank = rank_[v];
        } else {
          degree_[v] = 0;
        }
      }
    }, 1);
    index_valid_ = true;
  }

  uint64_t degree(vertex_t v) const { return degree_[v]; }

  // Applies f(dst) to v's neighbors in ascending order. Requires prepare().
  template <typename F>
  void map_neighbors(vertex_t v, F&& f) const {
    if (!has_edges_[v]) return;
    // Last key of v's range (avoids vertex_t overflow at v = 2^32 - 1).
    const uint64_t hi = (static_cast<uint64_t>(v) << 32) | 0xffffffffull;
    edges_.map_from_position(first_[v], [&](uint64_t key) {
      if (key > hi) return false;
      f(edge_dst(key));
      return true;
    });
  }

  // Flat arbitrary-order pass: one parallel scan over the single edge array,
  // reducing val(dst) with `comb` over each maximal same-src run within a
  // leaf and flushing via emit(src, partial). A vertex whose neighborhood
  // spans leaf boundaries gets one emit per leaf, so emit must be
  // commutative-associative (atomic add / atomic min at the caller).
  //
  // This is the paper's "arbitrary-order algorithms such as PR ... can be
  // cast as a straightforward pass through the data structure": no vertex
  // index, no per-vertex searches, pure sequential bandwidth.
  template <typename T, typename Val, typename Combine, typename Emit>
  void scan_neighbor_runs(T identity, Val&& val, Combine&& comb,
                          Emit&& emit) const {
    const uint64_t leaves = edges_.num_leaves();
    par::parallel_for(0, leaves, [&](uint64_t l) {
      uint64_t cur_src = kNoVertex;
      T acc = identity;
      edges_.scan_leaf_keys(l, [&](uint64_t key) {
        uint64_t s = edge_src(key);
        if (s != cur_src) {
          if (cur_src != kNoVertex) {
            emit(static_cast<vertex_t>(cur_src), acc);
          }
          cur_src = s;
          acc = identity;
        }
        acc = comb(acc, val(edge_dst(key)));
      });
      if (cur_src != kNoVertex) emit(static_cast<vertex_t>(cur_src), acc);
    }, 2);
  }

  // Slow-path neighborhood map that does not need the index (binary search
  // per vertex, O(log n) extra; the cost prepare() amortizes away).
  template <typename F>
  void map_neighbors_noindex(vertex_t v, F&& f) const {
    edges_.map_range([&](uint64_t key) { f(edge_dst(key)); }, edge_key(v, 0),
                     (static_cast<uint64_t>(v) + 1) << 32);
  }

  uint64_t get_size() const { return edges_.get_size() + sizeof(*this); }

  // Index memory is an acceleration structure; report it separately so the
  // space tables can show both (the paper reports graph storage).
  uint64_t get_index_size() const {
    return first_.capacity() * sizeof(typename Set::Position) +
           rank_.capacity() * 8 + degree_.capacity() * 8 +
           has_edges_.capacity();
  }

  const Set& edge_set() const { return edges_; }

 private:
  static constexpr uint64_t kNoVertex = ~uint64_t{0};
  static constexpr uint64_t kNoRank = ~uint64_t{0};

  vertex_t n_;
  Set edges_;
  bool index_valid_ = false;
  std::vector<typename Set::Position> first_;
  std::vector<uint64_t> rank_;
  std::vector<uint64_t> degree_;
  std::vector<uint8_t> has_edges_;
};

using FGraph = FGraphT<cpma::CPMA>;
// Uncompressed variant (PMA-backed), used in ablation benches.
using FGraphUncompressed = FGraphT<cpma::PMA>;

}  // namespace cpma::graph
