// F-Graph: the paper's dynamic-graph system built on one edge-key set.
//
// The whole graph lives in one compressed array of (src<<32)|dst edge keys —
// no vertex array, no per-vertex trees, no pointers. Neighborhoods are
// contiguous runs of the sorted key space; the vertex index (first-edge
// position + rank per vertex, graph/vertex_index.hpp) is an acceleration
// structure rebuilt after updates, exactly the protocol Section 6 describes
// ("this experiment rebuilds the vertex array with each run of the
// algorithm").
//
// Batch updates go straight to Set::insert_batch / remove_batch, which is
// where F-Graph inherits the paper's parallel batch-update algorithm. Set
// can be a single engine (CPMA/PMA) or a ShardedPMA — the sharded store
// exposes the same flattened-leaf surface (pma/flat_leaves.hpp). For
// serving-layer stores with concurrent readers, see graph/streaming.hpp.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/edge.hpp"
#include "graph/vertex_index.hpp"
#include "parallel/scheduler.hpp"
#include "pma/cpma.hpp"

namespace cpma::graph {

template <typename Set = cpma::CPMA>
class FGraphT {
 public:
  explicit FGraphT(vertex_t num_vertices) : n_(num_vertices) {}

  FGraphT(vertex_t num_vertices, std::vector<uint64_t> edges)
      : n_(num_vertices) {
    insert_edges(std::move(edges));
  }

  vertex_t num_vertices() const { return n_; }
  uint64_t num_edges() const { return edges_.size(); }

  // Inserts a batch of directed edge keys (duplicates allowed); returns the
  // number of new edges.
  uint64_t insert_edges(std::vector<uint64_t> edges) {
    index_.invalidate();
    return edges_.insert_batch(edges.data(), edges.size());
  }

  uint64_t remove_edges(std::vector<uint64_t> edges) {
    index_.invalidate();
    return edges_.remove_batch(edges.data(), edges.size());
  }

  bool has_edge(vertex_t u, vertex_t v) const {
    return edges_.has(edge_key(u, v));
  }

  // Rebuilds the vertex index. Algorithms call prepare(); its cost is part
  // of algorithm time, as in the paper's evaluation.
  void prepare() { index_.build(edges_, n_); }

  uint64_t degree(vertex_t v) const { return index_.degree(v); }

  // Applies f(dst) to v's neighbors in ascending order. Requires prepare().
  template <typename F>
  void map_neighbors(vertex_t v, F&& f) const {
    if (!index_.has_edges(v)) return;
    // Last key of v's range (avoids vertex_t overflow at v = 2^32 - 1).
    const uint64_t hi = (static_cast<uint64_t>(v) << 32) | 0xffffffffull;
    edges_.map_from_position(index_.first(v), [&](uint64_t key) {
      if (key > hi) return false;
      f(edge_dst(key));
      return true;
    });
  }

  // Flat arbitrary-order pass: one parallel scan over the single edge array,
  // reducing val(dst) with `comb` over each maximal same-src run within a
  // leaf and flushing via emit(src, partial). A vertex whose neighborhood
  // spans leaf boundaries gets one emit per leaf, so emit must be
  // commutative-associative (atomic add / atomic min at the caller).
  //
  // This is the paper's "arbitrary-order algorithms such as PR ... can be
  // cast as a straightforward pass through the data structure": no vertex
  // index, no per-vertex searches, pure sequential bandwidth.
  template <typename T, typename Val, typename Combine, typename Emit>
  void scan_neighbor_runs(T identity, Val&& val, Combine&& comb,
                          Emit&& emit) const {
    const uint64_t leaves = edges_.num_leaves();
    par::parallel_for(0, leaves, [&](uint64_t l) {
      uint64_t cur_src = kNoVertex;
      T acc = identity;
      edges_.scan_leaf_keys(l, [&](uint64_t key) {
        uint64_t s = edge_src(key);
        if (s != cur_src) {
          if (cur_src != kNoVertex) {
            emit(static_cast<vertex_t>(cur_src), acc);
          }
          cur_src = s;
          acc = identity;
        }
        acc = comb(acc, val(edge_dst(key)));
      });
      if (cur_src != kNoVertex) emit(static_cast<vertex_t>(cur_src), acc);
    }, 2);
  }

  // Slow-path neighborhood map that does not need the index (binary search
  // per vertex, O(log n) extra; the cost prepare() amortizes away).
  template <typename F>
  void map_neighbors_noindex(vertex_t v, F&& f) const {
    edges_.map_range([&](uint64_t key) { f(edge_dst(key)); }, edge_key(v, 0),
                     (static_cast<uint64_t>(v) + 1) << 32);
  }

  uint64_t get_size() const { return edges_.get_size() + sizeof(*this); }

  // Index memory is an acceleration structure; report it separately so the
  // space tables can show both (the paper reports graph storage).
  uint64_t get_index_size() const { return index_.bytes(); }

  const Set& edge_set() const { return edges_; }

 private:
  static constexpr uint64_t kNoVertex = ~uint64_t{0};

  vertex_t n_;
  Set edges_;
  VertexIndex<Set> index_;
};

using FGraph = FGraphT<cpma::CPMA>;
// Uncompressed variant (PMA-backed), used in ablation benches.
using FGraphUncompressed = FGraphT<cpma::PMA>;

}  // namespace cpma::graph
