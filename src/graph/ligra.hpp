// Ligra-style processing layer: VertexSubset + edge_map/vertex_map over the
// graph concept (prepare / num_vertices / degree / map_neighbors). All graph
// containers (F-Graph, C-PaC, Aspen-like, CSR) run the same algorithm code
// through this interface, mirroring the paper's setup where "all systems run
// the same algorithms via the Ligra interface".
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "graph/edge.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/worker_local.hpp"

namespace cpma::graph {

// A frontier: sparse list of vertex ids plus a dense membership bitmap.
class VertexSubset {
 public:
  explicit VertexSubset(vertex_t n) : n_(n), dense_(n, 0) {}

  static VertexSubset single(vertex_t n, vertex_t v) {
    VertexSubset s(n);
    s.add(v);
    return s;
  }

  void add(vertex_t v) {
    if (dense_[v] == 0) {
      dense_[v] = 1;
      sparse_.push_back(v);
    }
  }

  bool contains(vertex_t v) const { return dense_[v] != 0; }
  uint64_t size() const { return sparse_.size(); }
  bool empty() const { return sparse_.empty(); }
  const std::vector<vertex_t>& vertices() const { return sparse_; }
  vertex_t universe() const { return n_; }

  // Bulk construction from per-worker vectors (used by edge_map).
  static VertexSubset from_vertices(vertex_t n, std::vector<vertex_t> vs) {
    VertexSubset s(n);
    for (vertex_t v : vs) {
      if (s.dense_[v] == 0) {
        s.dense_[v] = 1;
        s.sparse_.push_back(v);
      }
    }
    return s;
  }

 private:
  vertex_t n_;
  std::vector<uint8_t> dense_;
  std::vector<vertex_t> sparse_;
};

// edge_map(G, frontier, update, cond):
//   For every edge (u, v) with u in the frontier and cond(v) true, calls
//   update(u, v); if update returns true, v joins the output frontier
//   (first-win semantics are the caller's responsibility via CAS in update).
template <typename G, typename Update, typename Cond>
VertexSubset edge_map(const G& g, const VertexSubset& frontier,
                      Update&& update, Cond&& cond) {
  par::WorkerLocal<std::vector<vertex_t>> next_local;
  const auto& vs = frontier.vertices();
  par::parallel_for(0, vs.size(), [&](uint64_t i) {
    vertex_t u = vs[i];
    auto& out = next_local.local();
    g.map_neighbors(u, [&](vertex_t v) {
      if (cond(v) && update(u, v)) out.push_back(v);
    });
  }, 1);
  return VertexSubset::from_vertices(
      frontier.universe(), next_local.template combined<std::vector<vertex_t>>());
}

// vertex_map: applies f to every vertex of the frontier in parallel.
template <typename F>
void vertex_map(const VertexSubset& frontier, F&& f) {
  const auto& vs = frontier.vertices();
  par::parallel_for(0, vs.size(), [&](uint64_t i) { f(vs[i]); }, 64);
}

}  // namespace cpma::graph
