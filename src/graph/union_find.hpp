// Concurrent union-find for streaming connectivity.
//
// Wait-free-ish randomized concurrent DSU in the style of Jayanti–Tarjan
// (PODC'16): an atomic parent array, path-splitting finds, and randomized
// linking — each node carries a fixed hash-derived priority and a CAS
// links the lower-priority root under the higher. Randomized linking
// keeps expected path lengths O(log n) without the maintenance cost of
// concurrent union-by-rank; path splitting compacts paths as a side
// effect of every find.
//
// unite() is linearizable for insert-only workloads: concurrent unite
// calls from the batch-ingest threads (graph/streaming.hpp) agree on one
// winner per root pair via CAS, and num_sets() is maintained as
// n - successful_unions, which is exact because components only merge.
// Edge REMOVAL cannot be reflected (DSU is monotone) — the streaming
// graph marks connectivity stale on removes and rebuilds from a snapshot.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "parallel/scheduler.hpp"
#include "util/random.hpp"

namespace cpma::graph {

class ConcurrentUnionFind {
 public:
  explicit ConcurrentUnionFind(uint64_t n) { reset(n); }

  // Reinitializes to n singleton sets. NOT safe concurrently with finds.
  void reset(uint64_t n) {
    n_ = n;
    parent_ = std::vector<std::atomic<uint64_t>>(n);
    par::parallel_for(0, n, [&](uint64_t i) {
      parent_[i].store(i, std::memory_order_relaxed);
    });
    unions_.store(0, std::memory_order_relaxed);
  }

  uint64_t size() const { return n_; }

  // Current root of x with path splitting: each node on the path is
  // re-pointed at its grandparent (benign CAS races just lose the
  // compaction, never correctness).
  uint64_t find(uint64_t x) const {
    uint64_t p = parent_[x].load(std::memory_order_acquire);
    while (p != x) {
      uint64_t gp = parent_[p].load(std::memory_order_acquire);
      if (gp == p) return p;
      parent_[x].compare_exchange_weak(p, gp, std::memory_order_acq_rel,
                                       std::memory_order_acquire);
      x = p;
      p = gp;
    }
    return p;
  }

  // Merges the sets of a and b; returns true iff this call performed the
  // merge (they were in different sets and our CAS won).
  bool unite(uint64_t a, uint64_t b) {
    while (true) {
      uint64_t ra = find(a);
      uint64_t rb = find(b);
      if (ra == rb) return false;
      // Link lower priority under higher (index breaks priority ties) so
      // concurrent linking cannot cycle and expected depth stays O(log n).
      if (priority(ra) > priority(rb) ||
          (priority(ra) == priority(rb) && ra > rb)) {
        std::swap(ra, rb);
      }
      uint64_t expected = ra;
      if (parent_[ra].compare_exchange_strong(expected, rb,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
        unions_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      // ra was linked elsewhere concurrently; retry from the new roots.
    }
  }

  bool same_set(uint64_t a, uint64_t b) const {
    while (true) {
      uint64_t ra = find(a);
      uint64_t rb = find(b);
      if (ra == rb) return true;
      // ra may have been linked since we found it; it is a root answer
      // only if still its own parent (standard concurrent-DSU recheck).
      if (parent_[ra].load(std::memory_order_acquire) == ra) return false;
    }
  }

  // Exact for insert-only histories: components merge exactly once per
  // successful unite, so set count is n minus successful unions.
  uint64_t num_sets() const {
    return n_ - unions_.load(std::memory_order_acquire);
  }

 private:
  // Fixed per-node priority; hashing the index gives an effectively random
  // permutation without storing per-node state.
  static uint64_t priority(uint64_t x) { return util::hash64(x); }

  uint64_t n_ = 0;
  // mutable: find() is logically const but path-splits as a side effect.
  mutable std::vector<std::atomic<uint64_t>> parent_;
  std::atomic<uint64_t> unions_{0};
};

}  // namespace cpma::graph
