// Tree-based dynamic-graph baselines.
//
// TreeGraph<T>: one search tree of destinations per vertex — the design of
// C-PaC's graph mode (vertex table + per-vertex compressed PaC-trees, used
// in-place, single writer). Instantiated with CPacTree it is our "C-PaC"
// comparator; with UPacTree, the uncompressed ablation.
//
// AspenGraph: the Aspen-like comparator — per-vertex edge sets stored as
// immutable, reference-counted compressed chunks (Aspen's C-trees are
// purely-functional trees whose nodes hold compressed edge chunks). Updates
// path-copy: untouched chunks are shared between versions; touched chunks
// are rebuilt. This reproduces the costs the paper attributes to Aspen
// relative to C-PaC and F-Graph: extra allocation and refcount traffic on
// update, extra indirection on scans, and more space.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "baselines/pactree.hpp"
#include "codec/varint.hpp"
#include "graph/edge.hpp"
#include "parallel/reduce.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/seq_ops.hpp"
#include "parallel/sort.hpp"

namespace cpma::graph {

namespace detail {
// Groups sorted edge keys by source: boundaries[i] is the start of group i.
inline std::vector<uint64_t> group_by_src(const std::vector<uint64_t>& edges) {
  std::vector<uint64_t> starts;
  for (uint64_t i = 0; i < edges.size(); ++i) {
    if (i == 0 || edge_src(edges[i]) != edge_src(edges[i - 1])) {
      starts.push_back(i);
    }
  }
  starts.push_back(edges.size());
  return starts;
}
}  // namespace detail

template <typename Tree>
class TreeGraph {
 public:
  explicit TreeGraph(vertex_t num_vertices)
      : n_(num_vertices), adj_(num_vertices) {}

  TreeGraph(vertex_t num_vertices, std::vector<uint64_t> edges)
      : TreeGraph(num_vertices) {
    insert_edges(std::move(edges));
  }

  void prepare() {}
  vertex_t num_vertices() const { return n_; }
  uint64_t num_edges() const { return m_; }
  uint64_t degree(vertex_t v) const { return adj_[v].size(); }

  uint64_t insert_edges(std::vector<uint64_t> edges) {
    par::parallel_sort(edges);
    par::dedupe_sorted(edges);
    auto starts = detail::group_by_src(edges);
    std::atomic<uint64_t> added{0};
    // Each source's tree is independent: perfect batch parallelism.
    par::parallel_for(0, starts.size() - 1, [&](uint64_t g) {
      uint64_t lo = starts[g], hi = starts[g + 1];
      vertex_t src = edge_src(edges[lo]);
      std::vector<uint64_t> dsts(hi - lo);
      for (uint64_t i = lo; i < hi; ++i) dsts[i - lo] = edge_dst(edges[i]);
      added.fetch_add(adj_[src].insert_batch(dsts.data(), dsts.size(), true),
                      std::memory_order_relaxed);
    }, 1);
    m_ += added.load();
    return added.load();
  }

  uint64_t remove_edges(std::vector<uint64_t> edges) {
    par::parallel_sort(edges);
    par::dedupe_sorted(edges);
    auto starts = detail::group_by_src(edges);
    std::atomic<uint64_t> removed{0};
    par::parallel_for(0, starts.size() - 1, [&](uint64_t g) {
      uint64_t lo = starts[g], hi = starts[g + 1];
      vertex_t src = edge_src(edges[lo]);
      std::vector<uint64_t> dsts(hi - lo);
      for (uint64_t i = lo; i < hi; ++i) dsts[i - lo] = edge_dst(edges[i]);
      removed.fetch_add(
          adj_[src].remove_batch(dsts.data(), dsts.size(), true),
          std::memory_order_relaxed);
    }, 1);
    m_ -= removed.load();
    return removed.load();
  }

  bool has_edge(vertex_t u, vertex_t v) const { return adj_[u].has(v); }

  template <typename F>
  void map_neighbors(vertex_t v, F&& f) const {
    adj_[v].map([&](uint64_t dst) { f(static_cast<vertex_t>(dst)); });
  }

  uint64_t get_size() const {
    return par::parallel_sum<uint64_t>(
               0, n_, [&](uint64_t v) { return adj_[v].get_size(); }, 64) +
           adj_.capacity() * sizeof(Tree) + sizeof(*this);
  }

 private:
  vertex_t n_;
  std::vector<Tree> adj_;
  uint64_t m_ = 0;
};

using CPacGraph = TreeGraph<baselines::CPacTree>;
using UPacGraph = TreeGraph<baselines::UPacTree>;

// ---------------------------------------------------------------------------
// Aspen-like functional graph.
// ---------------------------------------------------------------------------

class AspenGraph {
 public:
  // Target chunk size (Aspen's expected C-tree chunk is O(b) with b ~ 2^7).
  static constexpr uint64_t kChunkTarget = 128;

  explicit AspenGraph(vertex_t num_vertices)
      : n_(num_vertices), adj_(num_vertices) {}

  AspenGraph(vertex_t num_vertices, std::vector<uint64_t> edges)
      : AspenGraph(num_vertices) {
    insert_edges(std::move(edges));
  }

  void prepare() {}
  vertex_t num_vertices() const { return n_; }
  uint64_t num_edges() const { return m_; }
  uint64_t degree(vertex_t v) const {
    uint64_t d = 0;
    for (const auto& c : adj_[v]) d += c->count;
    return d;
  }

  uint64_t insert_edges(std::vector<uint64_t> edges) {
    par::parallel_sort(edges);
    par::dedupe_sorted(edges);
    auto starts = detail::group_by_src(edges);
    std::atomic<uint64_t> added{0};
    par::parallel_for(0, starts.size() - 1, [&](uint64_t g) {
      uint64_t lo = starts[g], hi = starts[g + 1];
      vertex_t src = edge_src(edges[lo]);
      std::vector<vertex_t> dsts(hi - lo);
      for (uint64_t i = lo; i < hi; ++i) {
        dsts[i - lo] = edge_dst(edges[i]);
      }
      added.fetch_add(merge_vertex(src, dsts), std::memory_order_relaxed);
    }, 1);
    m_ += added.load();
    return added.load();
  }

  bool has_edge(vertex_t u, vertex_t v) const {
    for (const auto& c : adj_[u]) {
      if (v < c->head) return false;
      bool found = false;
      bool past = false;
      chunk_scan(*c, [&](vertex_t d) {
        if (d == v) found = true;
        if (d >= v) past = true;
        return d < v;
      });
      if (found) return true;
      if (past) return false;
    }
    return false;
  }

  template <typename F>
  void map_neighbors(vertex_t v, F&& f) const {
    for (const auto& c : adj_[v]) {
      chunk_scan(*c, [&](vertex_t d) {
        f(d);
        return true;
      });
    }
  }

  uint64_t get_size() const {
    return par::parallel_sum<uint64_t>(
               0, n_,
               [&](uint64_t v) {
                 uint64_t b = adj_[v].capacity() * sizeof(ChunkPtr);
                 for (const auto& c : adj_[v]) {
                   // chunk payload + control block of the shared_ptr (the
                   // functional representation's real overhead)
                   b += sizeof(Chunk) + c->bytes.capacity() + 32;
                 }
                 return b;
               },
               64) +
           adj_.capacity() * sizeof(std::vector<ChunkPtr>) + sizeof(*this);
  }

 private:
  struct Chunk {
    vertex_t head = 0;
    uint32_t count = 0;
    std::vector<uint8_t> bytes;  // delta-encoded dsts after head
  };
  using ChunkPtr = std::shared_ptr<const Chunk>;

  template <typename F>
  static void chunk_scan(const Chunk& c, F&& f) {
    vertex_t cur = c.head;
    if (!f(cur)) return;
    size_t pos = 0;
    while (pos < c.bytes.size()) {
      uint64_t delta;
      pos += codec::varint_decode(c.bytes.data() + pos, &delta);
      cur += static_cast<vertex_t>(delta);
      if (!f(cur)) return;
    }
  }

  static ChunkPtr chunk_make(const vertex_t* dsts, uint64_t n) {
    auto c = std::make_shared<Chunk>();
    c->head = dsts[0];
    c->count = static_cast<uint32_t>(n);
    uint8_t tmp[codec::kMaxVarintBytes];
    c->bytes.reserve(n);
    for (uint64_t i = 1; i < n; ++i) {
      size_t len = codec::varint_encode(dsts[i] - dsts[i - 1], tmp);
      c->bytes.insert(c->bytes.end(), tmp, tmp + len);
    }
    c->bytes.shrink_to_fit();
    return c;
  }

  static void append_chunks(std::vector<ChunkPtr>& out, const vertex_t* dsts,
                            uint64_t n) {
    for (uint64_t off = 0; off < n; off += kChunkTarget) {
      uint64_t len = std::min<uint64_t>(kChunkTarget, n - off);
      out.push_back(chunk_make(dsts + off, len));
    }
  }

  // Path-copying merge: rebuilds only the chunks whose key range intersects
  // the new destinations; all other chunks are shared with the old version.
  uint64_t merge_vertex(vertex_t src, const std::vector<vertex_t>& dsts) {
    const std::vector<ChunkPtr>& old = adj_[src];
    std::vector<ChunkPtr> next;
    next.reserve(old.size() + dsts.size() / kChunkTarget + 1);
    uint64_t added = 0;
    size_t di = 0;
    for (size_t ci = 0; ci < old.size(); ++ci) {
      // Destinations belonging to this chunk: all < next chunk's head.
      vertex_t upper_valid = (ci + 1 < old.size()) ? 1 : 0;
      vertex_t upper = upper_valid ? old[ci + 1]->head : 0;
      size_t dj = di;
      while (dj < dsts.size() && (!upper_valid || dsts[dj] < upper)) ++dj;
      if (dj == di) {
        next.push_back(old[ci]);  // untouched: structural sharing
        continue;
      }
      std::vector<vertex_t> decoded;
      decoded.reserve(old[ci]->count + (dj - di));
      chunk_scan(*old[ci], [&](vertex_t d) {
        decoded.push_back(d);
        return true;
      });
      std::vector<vertex_t> merged(decoded.size() + (dj - di));
      std::merge(decoded.begin(), decoded.end(), dsts.begin() + di,
                 dsts.begin() + dj, merged.begin());
      merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
      added += merged.size() - decoded.size();
      append_chunks(next, merged.data(), merged.size());
      di = dj;
    }
    if (di < dsts.size()) {
      // Destinations past every existing chunk.
      std::vector<vertex_t> rest(dsts.begin() + di, dsts.end());
      added += rest.size();
      append_chunks(next, rest.data(), rest.size());
    }
    adj_[src] = std::move(next);
    return added;
  }

  vertex_t n_;
  std::vector<std::vector<ChunkPtr>> adj_;
  uint64_t m_ = 0;
};

}  // namespace cpma::graph
