// Static Compressed Sparse Row graph: the canonical baseline representation
// (Section 6's exposition contrasts F-Graph's single array against CSR's
// vertex + edge arrays). Used as the reference implementation for validating
// the dynamic containers and algorithms, and as the fastest-possible static
// scan bound.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge.hpp"
#include "parallel/scan.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/sort.hpp"

namespace cpma::graph {

class Csr {
 public:
  // Builds from sorted, deduped, symmetrized edge keys.
  Csr(vertex_t num_vertices, const std::vector<uint64_t>& edges)
      : n_(num_vertices), offsets_(static_cast<size_t>(num_vertices) + 1, 0),
        dsts_(edges.size()) {
    std::vector<uint64_t> counts(n_, 0);
    for (uint64_t e : edges) counts[edge_src(e)]++;
    uint64_t total = par::exclusive_scan_inplace(counts);
    (void)total;
    for (vertex_t v = 0; v < n_; ++v) offsets_[v] = counts[v];
    offsets_[n_] = edges.size();
    par::parallel_for(0, edges.size(), [&](uint64_t i) {
      dsts_[i] = edge_dst(edges[i]);
    });
  }

  void prepare() {}
  vertex_t num_vertices() const { return n_; }
  uint64_t num_edges() const { return dsts_.size(); }
  uint64_t degree(vertex_t v) const { return offsets_[v + 1] - offsets_[v]; }

  template <typename F>
  void map_neighbors(vertex_t v, F&& f) const {
    for (uint64_t i = offsets_[v]; i < offsets_[v + 1]; ++i) f(dsts_[i]);
  }

  uint64_t get_size() const {
    return offsets_.capacity() * 8 + dsts_.capacity() * 4 + sizeof(*this);
  }

 private:
  vertex_t n_;
  std::vector<uint64_t> offsets_;
  std::vector<vertex_t> dsts_;
};

}  // namespace cpma::graph
