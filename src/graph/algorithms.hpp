// The paper's graph-algorithm suite: PageRank (fixed 10 iterations, as in
// the evaluation), Connected Components (label propagation + shortcutting),
// and single-source Betweenness Centrality (Brandes: forward BFS via
// edge_map, backward dependency accumulation). All generic over the graph
// concept, so every container runs identical algorithm code.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "graph/ligra.hpp"
#include "parallel/scheduler.hpp"

namespace cpma::graph {

// ---------------------------------------------------------------------------
// PageRank: pull-based, 10 fixed iterations (the paper's PR "runs for a
// fixed number (10) of iterations"). Arbitrary-order kernel: one pass over
// the whole structure per iteration — the case where flat layouts shine.
// ---------------------------------------------------------------------------

// True iff the container supports the flat arbitrary-order run scan
// (F-Graph's single-array layout; Section 6's PR discussion).
template <typename G>
concept HasRunScan = requires(const G& g) {
  g.scan_neighbor_runs(
      0.0, [](vertex_t) { return 0.0; },
      [](double a, double b) { return a + b; }, [](vertex_t, double) {});
};

namespace detail {
inline void atomic_add_double(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
  }
}
}  // namespace detail

template <typename G>
std::vector<double> pagerank(G& g, int iterations = 10,
                             double damping = 0.85) {
  const vertex_t n = g.num_vertices();
  std::vector<double> rank(n, 1.0 / n), contrib(n);

  if constexpr (HasRunScan<G>) {
    // No prepare(): the paper's F-Graph skips the vertex-array rebuild for
    // PR precisely because the kernel is a pass over all edges.
    // Flat path: degrees via a run scan (no vertex index at all), then one
    // linear pass per iteration.
    std::vector<std::atomic<double>> next(n);
    std::vector<double> deg(n, 0.0);
    g.scan_neighbor_runs(
        0.0, [](vertex_t) { return 1.0; },
        [](double a, double b) { return a + b; },
        [&](vertex_t src, double cnt) { deg[src] += cnt; });
    for (int iter = 0; iter < iterations; ++iter) {
      par::parallel_for(0, n, [&](uint64_t v) {
        contrib[v] = deg[v] == 0 ? 0.0 : rank[v] / deg[v];
        next[v].store((1.0 - damping) / n, std::memory_order_relaxed);
      });
      g.scan_neighbor_runs(
          0.0, [&](vertex_t dst) { return contrib[dst]; },
          [](double a, double b) { return a + b; },
          [&](vertex_t src, double acc) {
            detail::atomic_add_double(next[src], damping * acc);
          });
      par::parallel_for(0, n, [&](uint64_t v) {
        rank[v] = next[v].load(std::memory_order_relaxed);
      });
    }
    return rank;
  } else {
    g.prepare();
    std::vector<double> next(n);
    for (int iter = 0; iter < iterations; ++iter) {
      par::parallel_for(0, n, [&](uint64_t v) {
        uint64_t d = g.degree(static_cast<vertex_t>(v));
        contrib[v] = d == 0 ? 0.0 : rank[v] / static_cast<double>(d);
      });
      par::parallel_for(0, n, [&](uint64_t v) {
        double acc = 0;
        g.map_neighbors(static_cast<vertex_t>(v),
                        [&](vertex_t u) { acc += contrib[u]; });
        next[v] = (1.0 - damping) / n + damping * acc;
      }, 16);
      std::swap(rank, next);
    }
    return rank;
  }
}

// ---------------------------------------------------------------------------
// Connected Components: min-label propagation with pointer-jumping
// shortcuts. Starts with full scans and converges to small frontiers — the
// paper's "in between arbitrary order and topology order" kernel.
// ---------------------------------------------------------------------------

template <typename G>
std::vector<vertex_t> connected_components(G& g) {
  if constexpr (!HasRunScan<G>) g.prepare();
  const vertex_t n = g.num_vertices();
  std::vector<std::atomic<vertex_t>> label(n);
  par::parallel_for(0, n, [&](uint64_t v) {
    label[v].store(static_cast<vertex_t>(v), std::memory_order_relaxed);
  });
  auto atomic_min = [&](vertex_t v, vertex_t m, std::atomic<bool>& any) {
    vertex_t cur = label[v].load(std::memory_order_relaxed);
    while (m < cur) {
      if (label[v].compare_exchange_weak(cur, m,
                                         std::memory_order_relaxed)) {
        any.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };
  bool changed = true;
  while (changed) {
    std::atomic<bool> any{false};
    if constexpr (HasRunScan<G>) {
      // Flat min-label pass over the single edge array.
      g.scan_neighbor_runs(
          ~vertex_t{0},
          [&](vertex_t dst) {
            return label[dst].load(std::memory_order_relaxed);
          },
          [](vertex_t a, vertex_t b) { return a < b ? a : b; },
          [&](vertex_t src, vertex_t m) { atomic_min(src, m, any); });
    } else {
      par::parallel_for(0, n, [&](uint64_t v) {
        vertex_t m = label[v].load(std::memory_order_relaxed);
        g.map_neighbors(static_cast<vertex_t>(v), [&](vertex_t u) {
          vertex_t lu = label[u].load(std::memory_order_relaxed);
          if (lu < m) m = lu;
        });
        if (m < label[v].load(std::memory_order_relaxed)) {
          label[v].store(m, std::memory_order_relaxed);
          any.store(true, std::memory_order_relaxed);
        }
      }, 16);
    }
    // Shortcut: hook labels to their root (pointer jumping).
    par::parallel_for(0, n, [&](uint64_t v) {
      vertex_t l = label[v].load(std::memory_order_relaxed);
      while (true) {
        vertex_t ll = label[l].load(std::memory_order_relaxed);
        if (ll == l) break;
        l = ll;
      }
      label[v].store(l, std::memory_order_relaxed);
    });
    changed = any.load();
  }
  std::vector<vertex_t> out(n);
  par::parallel_for(0, n, [&](uint64_t v) {
    out[v] = label[v].load(std::memory_order_relaxed);
  });
  return out;
}

// ---------------------------------------------------------------------------
// BFS: frontier traversal through edge_map; returns the depth of every
// vertex from `source` (-1 = unreachable). The paper's topology-order
// kernel in its simplest form, and the differential-test workhorse — depths
// are deterministic, so any two containers must agree exactly.
// ---------------------------------------------------------------------------

template <typename G>
std::vector<int32_t> bfs(G& g, vertex_t source) {
  g.prepare();
  const vertex_t n = g.num_vertices();
  std::vector<std::atomic<int32_t>> depth(n);
  par::parallel_for(0, n, [&](uint64_t v) {
    depth[v].store(-1, std::memory_order_relaxed);
  });
  depth[source].store(0, std::memory_order_relaxed);

  VertexSubset frontier = VertexSubset::single(n, source);
  int32_t d = 0;
  while (!frontier.empty()) {
    frontier = edge_map(
        g, frontier,
        [&](vertex_t, vertex_t v) {
          int32_t expected = -1;
          return depth[v].compare_exchange_strong(expected, d + 1,
                                                  std::memory_order_relaxed);
        },
        [&](vertex_t v) {
          return depth[v].load(std::memory_order_relaxed) == -1;
        });
    ++d;
  }

  std::vector<int32_t> out(n);
  par::parallel_for(0, n, [&](uint64_t v) {
    out[v] = depth[v].load(std::memory_order_relaxed);
  });
  return out;
}

// ---------------------------------------------------------------------------
// Betweenness Centrality from a single source (Brandes). The forward phase
// is a frontier BFS through edge_map (topology-order traversal); sigma
// counts are then computed per level with a pull pass (no atomics), and the
// backward phase accumulates dependencies level by level.
// ---------------------------------------------------------------------------

template <typename G>
std::vector<double> betweenness_centrality(G& g, vertex_t source) {
  g.prepare();
  const vertex_t n = g.num_vertices();
  std::vector<std::atomic<int32_t>> depth(n);
  par::parallel_for(0, n, [&](uint64_t v) {
    depth[v].store(-1, std::memory_order_relaxed);
  });
  depth[source].store(0, std::memory_order_relaxed);

  std::vector<VertexSubset> levels;
  levels.push_back(VertexSubset::single(n, source));
  int32_t d = 0;
  while (!levels.back().empty()) {
    const VertexSubset& frontier = levels.back();
    VertexSubset next = edge_map(
        g, frontier,
        [&](vertex_t, vertex_t v) {
          int32_t expected = -1;
          return depth[v].compare_exchange_strong(
              expected, d + 1, std::memory_order_relaxed);
        },
        [&](vertex_t v) {
          return depth[v].load(std::memory_order_relaxed) == -1;
        });
    ++d;
    levels.push_back(std::move(next));
  }
  levels.pop_back();  // drop the empty frontier

  // Sigma per level: pull from predecessors (depth == level - 1).
  std::vector<double> sigma(n, 0.0);
  sigma[source] = 1.0;
  for (size_t l = 1; l < levels.size(); ++l) {
    vertex_map(levels[l], [&](vertex_t v) {
      double acc = 0;
      g.map_neighbors(v, [&](vertex_t u) {
        if (depth[u].load(std::memory_order_relaxed) ==
            static_cast<int32_t>(l) - 1) {
          acc += sigma[u];
        }
      });
      sigma[v] = acc;
    });
  }

  // Backward dependency accumulation.
  std::vector<double> delta(n, 0.0);
  for (size_t l = levels.size(); l-- > 0;) {
    vertex_map(levels[l], [&](vertex_t u) {
      double acc = 0;
      g.map_neighbors(u, [&](vertex_t v) {
        if (depth[v].load(std::memory_order_relaxed) ==
            static_cast<int32_t>(l) + 1) {
          acc += (sigma[u] / sigma[v]) * (1.0 + delta[v]);
        }
      });
      delta[u] = acc;
    });
  }
  delta[source] = 0.0;
  return delta;
}

}  // namespace cpma::graph
