// Edge encoding for F-Graph: an unweighted directed edge (u, v) is one
// 64-bit key with the source in the upper 32 bits and the destination in the
// lower 32 bits, exactly the representation Section 6 describes. Sorted edge
// keys are then sorted by (source, destination), and delta compression elides
// the source in every edge except leaf heads and each vertex's first edge.
#pragma once

#include <cstdint>

namespace cpma::graph {

using vertex_t = uint32_t;

constexpr uint64_t edge_key(vertex_t u, vertex_t v) {
  return (static_cast<uint64_t>(u) << 32) | v;
}

constexpr vertex_t edge_src(uint64_t key) {
  return static_cast<vertex_t>(key >> 32);
}

constexpr vertex_t edge_dst(uint64_t key) {
  return static_cast<vertex_t>(key & 0xffffffffu);
}

}  // namespace cpma::graph
