// Streaming dynamic-graph engine on the sharded serving CPMA.
//
// The edge set is (src<<32)|dst keys in a ServingPMA (or DurablePMA):
// edges shard naturally by source vertex, batches ingest through the
// flat-combining / backpressured front end, and analytics run against an
// epoch-pinned SnapshotView — readers never block ingest and never see a
// half-applied batch. This is the paper's F-Graph protocol lifted onto
// the serving layer: instead of "stop the world, rebuild the vertex
// array", an algorithm pins the current published view, builds its vertex
// index over that immutable picture (positions stay valid for the life of
// the pin), and runs to completion while the writer keeps publishing.
//
// Layering:
//   StreamingGraph<Serve>      mutable front: insert/remove edge batches,
//                              streaming connectivity (concurrent
//                              union-find updated per batch)
//   StreamingGraph::Snapshot   one pinned view + a vertex index built over
//                              it; satisfies the full graph concept
//                              (prepare / degree / map_neighbors /
//                              scan_neighbor_runs), so bfs / pagerank /
//                              connected_components / betweenness run
//                              unchanged via the Ligra shim
//
// Staleness is first-class: every snapshot knows which publish it pinned
// (seq()) and how old that view is (age_ns()), so a monitoring loop can
// report "the running PageRank is N ms behind the ingest front".
//
// Connectivity caveats: the union-find is monotone, so remove_edges()
// marks it stale (connected() becomes an over-approximation) until
// rebuild_connectivity() re-derives it from a pinned snapshot. If a write
// observer (WAL down) vetoes a batch the union-find may also
// over-approximate — exactness is tracked by connectivity_exact().
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/edge.hpp"
#include "graph/union_find.hpp"
#include "graph/vertex_index.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/sort.hpp"
#include "pma/cpma.hpp"

namespace cpma::graph {

// An immutable graph over one epoch-pinned serving snapshot. Copies of the
// pin are not allowed (Snapshot is move-only via the underlying guard);
// keep it only as long as the algorithm runs — a held pin delays
// reclamation of every view published since.
template <typename Serve>
class StreamingGraphSnapshot {
 public:
  using View = typename Serve::View;

  StreamingGraphSnapshot(typename Serve::Snapshot snap, vertex_t n)
      : snap_(std::move(snap)), n_(n) {}

  vertex_t num_vertices() const { return n_; }
  uint64_t num_edges() const { return snap_.size(); }
  bool has_edge(vertex_t u, vertex_t v) const {
    return snap_.has(edge_key(u, v));
  }

  // Amortized batch edge-existence over the pinned view: `keys` are SORTED
  // edge keys (edge_key(u, v)); bit i of the result is set iff edge i is in
  // this snapshot's cut. One routed pass, one decode per touched leaf —
  // the bulk form of has_edge for triangle/motif-style probes.
  std::vector<uint64_t> has_edges(const uint64_t* keys, uint64_t n) const {
    return snap_.has_batch(keys, n);
  }
  std::vector<uint64_t> has_edges(const std::vector<uint64_t>& keys) const {
    return has_edges(keys.data(), keys.size());
  }

  // Staleness of this pinned view relative to the ingest front.
  uint64_t seq() const { return snap_.publish_seq(); }
  uint64_t age_ns() const { return snap_.age_ns(); }

  // Builds the vertex index over the pinned view. Unlike the mutable
  // F-Graph, positions cannot be invalidated while the pin is held, so one
  // build serves any number of algorithm runs on this snapshot.
  void prepare() {
    if (!index_.valid()) index_.build(snap_.view(), n_);
  }

  uint64_t degree(vertex_t v) const { return index_.degree(v); }

  // Applies f(dst) to v's neighbors in ascending order. Requires prepare().
  template <typename F>
  void map_neighbors(vertex_t v, F&& f) const {
    if (!index_.has_edges(v)) return;
    const uint64_t hi = (static_cast<uint64_t>(v) << 32) | 0xffffffffull;
    snap_.view().map_from_position(index_.first(v), [&](uint64_t key) {
      if (key > hi) return false;
      f(edge_dst(key));
      return true;
    });
  }

  // Flat arbitrary-order pass over the view's leaves (same contract as
  // FGraphT::scan_neighbor_runs: emit must be commutative-associative).
  // Needs no index, so PageRank/CC take this path straight off the pin.
  template <typename T, typename Val, typename Combine, typename Emit>
  void scan_neighbor_runs(T identity, Val&& val, Combine&& comb,
                          Emit&& emit) const {
    const View& view = snap_.view();
    const uint64_t leaves = view.num_leaves();
    par::parallel_for(0, leaves, [&](uint64_t l) {
      uint64_t cur_src = kNoVertex;
      T acc = identity;
      view.scan_leaf_keys(l, [&](uint64_t key) {
        uint64_t s = edge_src(key);
        if (s != cur_src) {
          if (cur_src != kNoVertex) {
            emit(static_cast<vertex_t>(cur_src), acc);
          }
          cur_src = s;
          acc = identity;
        }
        acc = comb(acc, val(edge_dst(key)));
      });
      if (cur_src != kNoVertex) emit(static_cast<vertex_t>(cur_src), acc);
    }, 2);
  }

  // Materializes every edge key of the pinned cut in ascending order — the
  // differential tests rebuild a CSR baseline from exactly this edge set.
  std::vector<uint64_t> edge_keys() const {
    std::vector<uint64_t> out;
    out.reserve(snap_.size());
    snap_.map([&](uint64_t key) { out.push_back(key); });
    return out;
  }

  const typename Serve::Snapshot& pin() const { return snap_; }

 private:
  static constexpr uint64_t kNoVertex = ~uint64_t{0};

  typename Serve::Snapshot snap_;
  vertex_t n_;
  VertexIndex<View> index_;
};

template <typename Serve = cpma::ServingCPMA>
class StreamingGraph {
 public:
  using Snapshot = StreamingGraphSnapshot<Serve>;

  // Extra args forward to the serving store's constructor: settings for
  // ServingPMA, (vfs, dir, settings) for DurablePMA.
  template <typename... Args>
  explicit StreamingGraph(vertex_t num_vertices, Args&&... args)
      : n_(num_vertices), serve_(std::forward<Args>(args)...),
        cc_(num_vertices) {}

  vertex_t num_vertices() const { return n_; }
  uint64_t num_edges() const { return serve_.size(); }
  bool has_edge(vertex_t u, vertex_t v) const {
    return serve_.has(edge_key(u, v));
  }

  // ---- ingest (any thread) ------------------------------------------------

  // Inserts a batch of directed edge keys through the serving batch path;
  // returns the number of new edges. The streaming connectivity structure
  // absorbs the batch before it is handed to the store.
  uint64_t insert_edges(std::vector<uint64_t> edges) {
    par::parallel_for(0, edges.size(), [&](uint64_t i) {
      cc_.unite(edge_src(edges[i]), edge_dst(edges[i]));
    }, 256);
    return serve_.insert_batch(std::move(edges));
  }

  // insert_edges with an ingest-side dedup pass: sorts the batch, probes it
  // against the pinned view with ONE amortized has_batch, and hands only
  // the unseen edges to the store. For append-heavy streams that mostly
  // re-send known edges (crawler re-visits, keep-alive heartbeats) this
  // removes the store's merge work entirely. The pin may be stale — edges
  // still queued or published after the pin are probed as absent — so the
  // filter is an optimization, never a correctness gate: survivors go
  // through the engine's own deduplicating merge. Returns new edges added.
  uint64_t insert_edges_dedup(std::vector<uint64_t> edges) {
    if (edges.empty()) return 0;
    par::parallel_for(0, edges.size(), [&](uint64_t i) {
      cc_.unite(edge_src(edges[i]), edge_dst(edges[i]));
    }, 256);
    par::parallel_sort(edges.data(), edges.size());
    const std::vector<uint64_t> bits =
        serve_.snapshot().has_batch(edges.data(), edges.size());
    uint64_t w = 0;
    for (uint64_t i = 0; i < edges.size(); ++i) {
      if ((bits[i >> 6] >> (i & 63)) & 1) continue;         // already stored
      if (w > 0 && edges[w - 1] == edges[i]) continue;      // in-batch dup
      edges[w++] = edges[i];
    }
    if (w == 0) return 0;
    if constexpr (requires { serve_.insert_batch(edges.data(), w, true); }) {
      return serve_.insert_batch(edges.data(), w, /*sorted=*/true);
    } else {
      // DurablePMA exposes only the vector overload (it logs the batch).
      edges.resize(w);
      return serve_.insert_batch(std::move(edges));
    }
  }

  // Removals flow through the same batch path but CANNOT be reflected in
  // the monotone union-find: connectivity goes stale until
  // rebuild_connectivity().
  uint64_t remove_edges(std::vector<uint64_t> edges) {
    cc_stale_ = true;
    return serve_.remove_batch(std::move(edges));
  }

  // Single-edge insert through the flat-combining point path. Returns
  // whether the op was admitted (false only under a full bounded queue).
  bool insert_edge(vertex_t u, vertex_t v) {
    cc_.unite(u, v);
    return serve_.insert(edge_key(u, v));
  }

  // Drain every ingest queue and publish (writer-path; see serving.hpp).
  void flush() {
    if constexpr (requires { serve_.flush(); }) {
      serve_.flush();
    } else {
      serve_.serving().flush();
    }
  }

  uint64_t poll() {
    if constexpr (requires { serve_.poll(); }) {
      return serve_.poll();
    } else {
      return serve_.serving().poll();
    }
  }

  // ---- analytics (any thread, never blocks ingest) ------------------------

  // Pins the current published view. bfs/pagerank/connected_components/
  // betweenness_centrality run directly on the returned object.
  Snapshot snapshot() const { return Snapshot(serve_.snapshot(), n_); }

  // ---- streaming connectivity ---------------------------------------------

  // O(alpha) connectivity query maintained incrementally per ingest batch —
  // no snapshot, no traversal. Exact for insert-only histories (see
  // connectivity_exact() for the staleness caveats).
  bool connected(vertex_t u, vertex_t v) const { return cc_.same_set(u, v); }

  // Component count over ALL n vertices (isolated vertices are singletons).
  uint64_t num_components() const { return cc_.num_sets(); }

  bool connectivity_exact() const { return !cc_stale_; }

  // Re-derives the union-find from a pinned snapshot of the edge set,
  // restoring exactness after removals. Safe concurrently with readers of
  // snapshots, NOT with concurrent connected() queries (the reset races).
  void rebuild_connectivity() {
    Snapshot snap = snapshot();
    cc_.reset(n_);
    const auto& view = snap.pin().view();
    const uint64_t leaves = view.num_leaves();
    par::parallel_for(0, leaves, [&](uint64_t l) {
      view.scan_leaf_keys(l, [&](uint64_t key) {
        cc_.unite(edge_src(key), edge_dst(key));
      });
    }, 2);
    cc_stale_ = false;
  }

  // ---- store access --------------------------------------------------------

  Serve& serve() { return serve_; }
  const Serve& serve() const { return serve_; }

 private:
  vertex_t n_;
  Serve serve_;
  ConcurrentUnionFind cc_;
  bool cc_stale_ = false;
};

using StreamingGraphPMA = StreamingGraph<cpma::ServingPMA>;
using StreamingGraphCPMA = StreamingGraph<cpma::ServingCPMA>;

}  // namespace cpma::graph
